#!/usr/bin/env bash
# Per-PR wall-clock trend snapshot. Runs the benchmark suite with
# --wall and writes the JSON — cycles deterministic, "wall" section
# host-dependent — to a file keyed by the current commit, so uploaded
# CI artifacts accumulate into a host-performance trend line across
# PRs (docs/PERF.md explains why wall time never gates).
#
#   scripts/bench_trend.sh [outdir] [extra bench args...]
#
# Defaults: outdir=bench_trend, the committed baseline's parameters
# (--scale 0.1 --seed 1), all experiments BENCH_seed.json covers plus
# the additive ones (churn, durset).
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-bench_trend}"
shift || true
mkdir -p "$outdir"

sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)"
out="$outdir/bench_wall_${sha}.json"

dune exec bench/main.exe -- --scale 0.1 --seed 1 --wall --json "$out" "$@"
echo "bench_trend: wrote $out"
