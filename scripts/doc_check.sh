#!/usr/bin/env bash
# Documentation consistency gate (CI step; run any time with
# scripts/doc_check.sh). Three checks, all derived from the code so the
# docs cannot silently go stale:
#
#   1. every nvmpi subcommand (the Cmd.info names in bin/nvmpi.ml) is
#      mentioned in README.md or docs/;
#   2. every registered counter prefix (the first dotted component of
#      counter names in lib/) has a catalogue entry in docs/METRICS.md;
#   3. every intra-repo markdown link in the curated docs resolves
#      (anchors stripped; http(s)/mailto links skipped).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() { echo "doc_check: $*" >&2; fail=1; }

# --- 1. subcommands ---------------------------------------------------

subcommands=$(grep -oE 'Cmd\.info "[a-z]+"' bin/nvmpi.ml | cut -d'"' -f2 \
              | grep -v '^nvmpi$' | sort -u)
[ -n "$subcommands" ] || { echo "doc_check: no subcommands found in bin/nvmpi.ml" >&2; exit 2; }
for sub in $subcommands; do
  if ! grep -rqw "$sub" README.md docs/; then
    err "subcommand 'nvmpi $sub' is not mentioned in README.md or docs/"
  fi
done

# --- 2. counter prefixes ----------------------------------------------

# Counter names are dotted lowercase string literals at the registration
# / increment idioms (Metrics.counter, Metrics.incr, Metrics.handle,
# Machine.count, the staged Machine.bump/Machine.cell, and the local
# `c "..."` alias). Dynamic names (repr.<name>.loads, built with
# sprintf) still expose their prefix in the format literal.
prefixes=$(grep -rhE 'Metrics\.(counter|incr|handle)|Machine\.(count|bump|cell)| c "[a-z]' \
             --include='*.ml' lib/ \
           | grep -oE '"[a-z][a-z0-9_-]*\.[a-z0-9_.%<>-]*"' \
           | cut -d'"' -f2 | cut -d. -f1 | sort -u)
[ -n "$prefixes" ] || { echo "doc_check: no counter prefixes found in lib/" >&2; exit 2; }
for prefix in $prefixes; do
  if ! grep -qE "\`?${prefix}\." docs/METRICS.md; then
    err "counter prefix '${prefix}.*' has no entry in docs/METRICS.md"
  fi
done

# --- 3. markdown links ------------------------------------------------

docs="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md $(ls docs/*.md)"
for doc in $docs; do
  [ -f "$doc" ] || continue
  # Extract (target) of every [text](target) / ![alt](target).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    case "$path" in
      /*) resolved=".$path" ;;
      *)  resolved="$(dirname "$doc")/$path" ;;
    esac
    if [ ! -e "$resolved" ]; then
      err "$doc links to '$target' but '$resolved' does not exist"
    fi
  done < <(grep -oE '\]\([^)[:space:]]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "doc_check: FAIL" >&2
  exit 1
fi
echo "doc_check: PASS ($(echo "$subcommands" | wc -w | tr -d ' ') subcommands, $(echo "$prefixes" | wc -w | tr -d ' ') counter prefixes, links OK)"
