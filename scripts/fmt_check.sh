#!/usr/bin/env bash
# Formatting gate: run the dune @fmt check when ocamlformat is
# available, skip (successfully, with a notice) when it is not — the
# development container does not ship ocamlformat, but CI installs the
# version pinned in .ocamlformat and enforces the check there.
set -euo pipefail
cd "$(dirname "$0")/.."
if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "fmt_check: ocamlformat not installed; skipping format check" >&2
  exit 0
fi
exec dune build @fmt
