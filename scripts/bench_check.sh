#!/usr/bin/env bash
# Regression-check the benchmark suite against the committed baseline
# snapshot. Re-runs every experiment BENCH_seed.json records, with the
# parameters it was generated with, and exits nonzero on per-cell cycle
# drift beyond the tolerance (10% unless overridden: bench_check.sh
# --tolerance 0.02). Equivalent to `dune build @bench-check`.
set -euo pipefail
cd "$(dirname "$0")/.."
exec dune exec bench/main.exe -- check BENCH_seed.json "$@"
