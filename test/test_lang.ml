module Lang = Nvmpi_lang.Lang
module Ast' = struct
  type t = Nvmpi_lang.Ast.binop =
    | Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Gt | Le | Ge | And | Or
end
module Machine = Core.Machine
module Store = Core.Store

module Ast_of = struct
  let neg n = Nvmpi_lang.Ast.Bin (Nvmpi_lang.Ast.Sub, Nvmpi_lang.Ast.Int 0, Nvmpi_lang.Ast.Int n)
end

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let machine ?(seed = 1) () =
  let store = Store.create () in
  (store, Machine.create ~seed ~store ())

let run ?(seed = 1) src =
  let _, m = machine ~seed () in
  match Lang.run_string m src with
  | Ok o -> o
  | Error msg -> Alcotest.failf "program failed: %s" msg

let output ?seed src = (run ?seed src).Lang.Eval.output
let result ?seed src = Option.get (run ?seed src).Lang.Eval.result

let expect_type_error src =
  match Lang.compile src with
  | Ok _ -> Alcotest.fail "expected a type error"
  | Error msg -> check_bool ("is type error: " ^ msg) true
      (String.length msg > 0)

let expect_runtime_error src =
  let _, m = machine () in
  match Lang.run_string m src with
  | Ok _ -> Alcotest.fail "expected a runtime error"
  | Error msg ->
      check_bool "runtime error reported" true
        (String.length msg >= 13 && String.sub msg 0 13 = "runtime error")

(* Basic language mechanics *)

let test_arith_and_control () =
  check_str "arith" "42\n"
    (output "int main() { int x = 6; int y = 7; print(x * y); return 0; }");
  check_str "if/else" "1\n"
    (output
       "int main() { int x = 3; if (x > 2) { print(1); } else { print(0); } \
        return 0; }");
  check_str "while" "10\n"
    (output
       "int main() { int i = 0; int s = 0; while (i < 5) { s = s + i; i = i \
        + 1; } print(s); return 0; }");
  check "return value" 9 (result "int main() { return 4 + 5; }");
  check_str "logic" "1\n0\n1\n"
    (output
       "int main() { print(1 && 2); print(0 || 0); print(!0); return 0; }")

let test_functions () =
  check "call" 120
    (result
       "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); \
        }\n\
        int main() { return fact(5); }");
  check_str "void fn" "7\n"
    (output
       "void emit(int x) { print(x); }\nint main() { emit(7); return 0; }")

let test_comments_and_hex () =
  check "hex + comments" 255
    (result "int main() { // line\n /* block */ return 0xFF; }")

(* Structs on NVM *)

let common_defs =
  "struct node { persistentI struct node *next; int key; }\n"

let test_new_and_fields () =
  check_str "field roundtrip" "11\n"
    (output
       (common_defs
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct node *a = new(r, struct node);\n\
         a->key = 11; print(a->key); return 0; }"))

let test_persistenti_list_in_program () =
  check_str "walk a persistentI list" "3\n2\n1\n"
    (output
       (common_defs
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct node *head = null;\n\
         int i = 1;\n\
         while (i <= 3) {\n\
        \  persistent struct node *n = new(r, struct node);\n\
        \  n->key = i;\n\
        \  n->next = head;   // p -> i conversion at the slot store\n\
        \  head = n;\n\
        \  i = i + 1;\n\
         }\n\
         persistent struct node *cur = head;\n\
         while (cur != null) { print(cur->key); cur = cur->next; }\n\
         return 0; }"))

(* Figure 8 conversion rules. Each rule exercises one assignment
   direction; correctness is observed through the values read back. *)

let conversion_defs =
  "struct cell { persistentI struct cell *i; persistentX struct cell *x;\n\
  \              int v; }\n"

let conv_prog body =
  conversion_defs
  ^ "int main() { int r = region_create(65536); region_open(r);\n\
     persistent struct cell *a = new(r, struct cell);\n\
     persistent struct cell *b = new(r, struct cell);\n\
     a->v = 100; b->v = 200;\n" ^ body ^ "\nreturn 0; }"

let test_rule_p_eq_i () =
  (* p = i: decode an off-holder slot into a volatile pointer. *)
  check_str "p = i" "200\n"
    (output
       (conv_prog
          "a->i = b;  // i = p\n\
           persistent struct cell *p = a->i;  // p = i\n\
           print(p->v);"))

let test_rule_p_eq_x () =
  check_str "p = x" "200\n"
    (output
       (conv_prog
          "a->x = b;  // x = p\n\
           persistent struct cell *p = a->x;  // p = x\n\
           print(p->v);"))

let test_rule_i_eq_x () =
  check_str "i = x" "200\n"
    (output
       (conv_prog
          "a->x = b;\n\
           a->i = a->x;  // i = x (checked)\n\
           persistent struct cell *p = a->i;\n\
           print(p->v);"))

let test_rule_x_eq_i () =
  check_str "x = i" "200\n"
    (output
       (conv_prog
          "a->i = b;\n\
           a->x = a->i;  // x = i\n\
           persistent struct cell *p = a->x;\n\
           print(p->v);"))

let test_rule_i_eq_p_and_x_eq_p () =
  check_str "i = p; x = p" "200\n200\n"
    (output
       (conv_prog
          "a->i = b;  // i = p\n\
           a->x = b;  // x = p\n\
           persistent struct cell *p1 = a->i;\n\
           persistent struct cell *p2 = a->x;\n\
           print(p1->v); print(p2->v);"))

let test_rule_null_everywhere () =
  check_str "null into i and x" "1\n1\n"
    (output
       (conv_prog
          "a->i = null; a->x = null;\n\
           print(a->i == null); print(a->x == null);"))

let test_pointer_arithmetic_keeps_type () =
  (* i op v / x op v: arithmetic on int fields behind pointers. *)
  check_str "ptr arith on int*" "30\n"
    (output
       ("struct arr { int a; int b; int c; }\n"
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct arr *s = new(r, struct arr);\n\
         s->a = 10; s->b = 30; s->c = 50;\n\
         persistent int *p = &s->a;\n\
         p = p + 1;   // advances one int\n\
         print(*p); return 0; }"))

let test_pointer_difference () =
  check_str "ptr difference" "2\n"
    (output
       ("struct arr { int a; int b; int c; }\n"
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct arr *s = new(r, struct arr);\n\
         persistent int *p = &s->a;\n\
         persistent int *q = &s->c;\n\
         print(q - p); return 0; }"))

let test_deref_and_addrof () =
  check_str "*(&x)" "5\n"
    (output
       ("struct box { int v; }\n"
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct box *b = new(r, struct box);\n\
         b->v = 5;\n\
         persistent int *p = &b->v;\n\
         print(*p); return 0; }"))

let test_arrays () =
  check_str "int array" "0\n10\n20\n30\n40\n"
    (output
       ("int main() { int r = region_create(65536); region_open(r);\n\
         persistent int *a = new(r, int, 5);\n\
         int i = 0;\n\
         while (i < 5) { a[i] = i * 10; i = i + 1; }\n\
         i = 0;\n\
         while (i < 5) { print(a[i]); i = i + 1; }\n\
         return 0; }"))

let test_struct_array_via_arrow () =
  (* Indexing yields an element; fields are reached through a pointer to
     it. *)
  check_str "array of structs via pointer" "7\n9\n"
    (output
       ("struct pt { int x; int y; }\n"
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct pt *ps = new(r, struct pt, 3);\n\
         persistent struct pt *p = ps + 2;\n\
         p->x = 7; p->y = 9;\n\
         print(p->x); print((ps + 2)->y);\n\
         return 0; }"))

let test_array_of_pointers_rejected () =
  expect_type_error
    (common_defs
   ^ "int main() { int r = region_create(65536); region_open(r);\n\
      persistent int *p = new(r, persistentI struct node*, 4);\n\
      return 0; }")

(* Dynamic checks (Section 4.4) *)

let test_cross_region_i_rejected_at_runtime () =
  expect_runtime_error
    (conversion_defs
   ^ "int main() { int r1 = region_create(65536); region_open(r1);\n\
      int r2 = region_create(65536); region_open(r2);\n\
      persistent struct cell *a = new(r1, struct cell);\n\
      persistent struct cell *b = new(r2, struct cell);\n\
      a->i = b;  // cross-region into persistentI: dynamic check fires\n\
      return 0; }")

let test_cross_region_x_allowed () =
  check_str "persistentX crosses regions" "200\n"
    (output
       (conversion_defs
      ^ "int main() { int r1 = region_create(65536); region_open(r1);\n\
         int r2 = region_create(65536); region_open(r2);\n\
         persistent struct cell *a = new(r1, struct cell);\n\
         persistent struct cell *b = new(r2, struct cell);\n\
         b->v = 200;\n\
         a->x = b;\n\
         persistent struct cell *p = a->x;\n\
         print(p->v); return 0; }"))

let test_null_deref_caught () =
  expect_runtime_error
    (common_defs
   ^ "int main() { persistent struct node *p = null; print(p->key); return \
      0; }")

(* Static rejections *)

let test_local_persistenti_rejected () =
  expect_type_error
    (common_defs ^ "int main() { persistentI struct node *p = null; return 0; }")

let test_local_persistentx_rejected () =
  expect_type_error
    (common_defs ^ "int main() { persistentX struct node *p = null; return 0; }")

let test_param_persistenti_rejected () =
  expect_type_error
    (common_defs
   ^ "int f(persistentI struct node *p) { return 0; } int main() { return \
      0; }")

let test_pointee_mismatch_rejected () =
  expect_type_error
    ("struct a { int v; } struct b { int v; }\n"
   ^ "int main() { int r = region_create(65536); region_open(r);\n\
      persistent struct a *pa = new(r, struct a);\n\
      persistent struct b *pb = pa;\n\
      return 0; }")

let test_int_to_pointer_rejected () =
  expect_type_error
    (common_defs
   ^ "int main() { persistent struct node *p = 42; return 0; }")

let test_unknown_field_rejected () =
  expect_type_error
    (common_defs
   ^ "int main() { int r = region_create(65536); region_open(r);\n\
      persistent struct node *p = new(r, struct node);\n\
      print(p->nope); return 0; }")

let test_addrof_local_rejected () =
  expect_type_error "int main() { int x = 1; int y = 0; y = *(&x); return y; }"

let test_recursive_struct_by_value_rejected () =
  expect_type_error
    "struct s { struct s inner; } int main() { return 0; }"

let test_struct_assignment_rejected () =
  expect_type_error
    ("struct s { int v; }\n"
   ^ "int main() { int r = region_create(65536); region_open(r);\n\
      persistent struct s *a = new(r, struct s);\n\
      persistent struct s *b = new(r, struct s);\n\
      *a = *b; return 0; }")

let test_qualifier_on_non_pointer_rejected () =
  expect_type_error "int main() { persistentI int x = 0; return x; }"

(* Lowering introspection: the compiler inserts the right conversions. *)

let test_lowering_inserts_slot_ops () =
  let prog =
    Lang.compile_exn
      (conversion_defs
     ^ "int main() { int r = region_create(65536); region_open(r);\n\
        persistent struct cell *a = new(r, struct cell);\n\
        a->i = a; a->x = a;\n\
        persistent struct cell *p = a->i;\n\
        persistent struct cell *q = a->x;\n\
        print(p == q);\n\
        return 0; }")
  in
  let text = Lang.Ir.to_string prog in
  check_bool "persistentI store lowered" true
    (contains text "slotstore<persistentI>");
  check_bool "persistentX store lowered" true
    (contains text "slotstore<persistentX>");
  check_bool "persistentI load lowered" true
    (contains text "slotload<persistentI>");
  check_bool "persistentX load lowered" true
    (contains text "slotload<persistentX>")

(* Figure 9: a cross-region linked list where each node holds a
   persistentI next pointer and a persistentX pointer into a second
   region. *)

let test_figure9_cross_region_list () =
  check_str "figure 9" "1\n10\n2\n20\n3\n30\n"
    (output
       ("struct product { int price; }\n\
         struct node { persistentI struct node *next;\n\
        \              persistentX struct product *prod; int key; }\n"
      ^ "int main() {\n\
         int r1 = region_create(65536); region_open(r1);\n\
         int r2 = region_create(65536); region_open(r2);\n\
         persistent struct node *head = null;\n\
         persistent struct node *tail = null;\n\
         int i = 1;\n\
         while (i <= 3) {\n\
        \  persistent struct node *n = new(r1, struct node);\n\
        \  persistent struct product *p = new(r2, struct product);\n\
        \  p->price = i * 10;\n\
        \  n->key = i; n->prod = p; n->next = null;\n\
        \  if (head == null) { head = n; } else { tail->next = n; }\n\
        \  tail = n;\n\
        \  i = i + 1;\n\
         }\n\
         persistent struct node *cur = head;\n\
         while (cur != null) {\n\
        \  print(cur->key);\n\
        \  persistent struct product *p = cur->prod;\n\
        \  print(p->price);\n\
        \  cur = cur->next;\n\
         }\n\
         return 0; }"))

(* Position independence across runs, through the language. *)

let test_cross_run_program () =
  let store = Store.create () in
  let defs =
    "struct node { persistentI struct node *next; int key; }\n"
  in
  let writer =
    defs
    ^ "int main() {\n\
       int r = region_create(1048576); region_open(r);\n\
       persistent struct node *head = null;\n\
       int i = 1;\n\
       while (i <= 5) {\n\
      \  persistent struct node *n = new(r, struct node);\n\
      \  n->key = i * i; n->next = head; head = n;\n\
      \  i = i + 1;\n\
       }\n\
       root_set(r, \"head\", head);\n\
       region_close(r);\n\
       return r; }"
  in
  let reader =
    defs
    ^ "int main(int rid) {\n\
       region_open(rid);\n\
       persistent struct node *cur = root_get(rid, \"head\");\n\
       int sum = 0;\n\
       while (cur != null) { sum = sum + cur->key; cur = cur->next; }\n\
       return sum; }"
  in
  let m1 = Machine.create ~seed:100 ~store () in
  let rid =
    match Lang.run_string m1 writer with
    | Ok { Lang.Eval.result = Some rid; _ } -> rid
    | Ok _ -> Alcotest.fail "writer returned nothing"
    | Error e -> Alcotest.failf "writer failed: %s" e
  in
  (* A different run: fresh machine, different region placement. *)
  let m2 = Machine.create ~seed:200 ~store () in
  match Lang.run_string m2 ~args:[ rid ] reader with
  | Ok { Lang.Eval.result = Some sum; _ } ->
      check "sum of squares read in run 2" (1 + 4 + 9 + 16 + 25) sum
  | Ok _ -> Alcotest.fail "reader returned nothing"
  | Error e -> Alcotest.failf "reader failed: %s" e

(* Differential testing: random integer expressions evaluated by the
   NVC pipeline must agree with a host-side reference evaluator. *)

type rexpr =
  | RInt of int
  | RBin of Ast'.t * rexpr * rexpr

and _dummy = unit

let rexpr_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun i -> RInt i) (int_range (-50) 50)
         else
           frequency
             [
               (1, map (fun i -> RInt i) (int_range (-50) 50));
               ( 3,
                 let* op =
                   oneofl
                     [ Ast'.Add; Ast'.Sub; Ast'.Mul; Ast'.Lt; Ast'.Gt;
                       Ast'.Eq; Ast'.Neq; Ast'.Le; Ast'.Ge ]
                 in
                 let* a = self (n / 2) in
                 let* b = self (n / 2) in
                 return (RBin (op, a, b)) );
             ])

let rec rexpr_to_src = function
  | RInt i -> if i < 0 then Printf.sprintf "(0 - %d)" (-i) else string_of_int i
  | RBin (op, a, b) ->
      let s =
        match op with
        | Ast'.Add -> "+" | Ast'.Sub -> "-" | Ast'.Mul -> "*" | Ast'.Lt -> "<"
        | Ast'.Gt -> ">" | Ast'.Eq -> "==" | Ast'.Neq -> "!=" | Ast'.Le -> "<="
        | Ast'.Ge -> ">=" | _ -> assert false
      in
      Printf.sprintf "(%s %s %s)" (rexpr_to_src a) s (rexpr_to_src b)

let rec rexpr_eval = function
  | RInt i -> i
  | RBin (op, a, b) ->
      let x = rexpr_eval a and y = rexpr_eval b in
      let bool v = if v then 1 else 0 in
      (match op with
      | Ast'.Add -> x + y
      | Ast'.Sub -> x - y
      | Ast'.Mul -> x * y
      | Ast'.Lt -> bool (x < y)
      | Ast'.Gt -> bool (x > y)
      | Ast'.Eq -> bool (x = y)
      | Ast'.Neq -> bool (x <> y)
      | Ast'.Le -> bool (x <= y)
      | Ast'.Ge -> bool (x >= y)
      | _ -> assert false)

let prop_expr_differential =
  QCheck2.Test.make ~name:"random expressions agree with host evaluation"
    ~count:120 rexpr_gen (fun e ->
      let src =
        Printf.sprintf "int main() { return %s; }" (rexpr_to_src e)
      in
      let _, m = machine () in
      match Lang.run_string m src with
      | Ok { Lang.Eval.result = Some v; _ } -> v = rexpr_eval e
      | _ -> false)

let test_pretty_roundtrip () =
  (* Print the Figure 9 program and parse it back: the ASTs must agree
     (e[i] desugars before printing, so the round-trip is stable). *)
  let src =
    "struct product { int price; }\n\
     struct node { persistentI struct node *next;\n\
                   persistentX struct product *prod; int key; }\n\
     int sum(persistent struct node *head) {\n\
       int s = 0;\n\
       persistent struct node *cur = head;\n\
       while (cur != null) { persistent struct product *p = cur->prod;\n\
         s = s + p->price; cur = cur->next; }\n\
       return s; }\n\
     int main() { int r = region_create(65536); region_open(r);\n\
       persistent int *a = new(r, int, 4);\n\
       a[0] = 1; a[1] = a[0] + 1;\n\
       if (a[1] > a[0]) { print(a[1]); } else { print(0 - 1); }\n\
       return a[1]; }"
  in
  let ast1 = Lang.Parser.parse src in
  let printed = Lang.Pretty.program_to_string ast1 in
  let ast2 = Lang.Parser.parse printed in
  check_bool "parse . print . parse fixpoint" true (ast1 = ast2);
  (* And printing again is stable. *)
  check_str "print idempotent" printed (Lang.Pretty.program_to_string ast2)

let prop_pretty_roundtrip_exprs =
  QCheck2.Test.make ~name:"expression print/parse roundtrip" ~count:150
    rexpr_gen (fun e ->
      let src =
        let rec to_ast = function
          | RInt i -> if i < 0 then Ast_of.neg (-i) else Nvmpi_lang.Ast.Int i
          | RBin (op, a, b) -> Nvmpi_lang.Ast.Bin (op, to_ast a, to_ast b)
        in
        to_ast e
      in
      let printed = Lang.Pretty.expr_to_string src in
      Lang.Parser.parse_expr_string printed = src)

(* A complete application written in NVC: BST wordcount over an
   LCG-generated key stream, validated against a host-side reference. *)

let nvc_wordcount probe =
  Printf.sprintf
    {|
struct node {
  persistentI struct node *l;
  persistentI struct node *r;
  int key;
  int cnt;
}
struct tree { persistentI struct node *root; }

void count(int rid, persistent struct tree *t, int key) {
  persistent struct node *cur = t->root;
  if (cur == null) {
    persistent struct node *n = new(rid, struct node);
    n->key = key; n->cnt = 1;
    t->root = n;
    return;
  }
  while (1) {
    if (key == cur->key) { cur->cnt = cur->cnt + 1; return; }
    if (key < cur->key) {
      persistent struct node *next = cur->l;
      if (next == null) {
        persistent struct node *n = new(rid, struct node);
        n->key = key; n->cnt = 1;
        cur->l = n;
        return;
      }
      cur = next;
    } else {
      persistent struct node *next = cur->r;
      if (next == null) {
        persistent struct node *n = new(rid, struct node);
        n->key = key; n->cnt = 1;
        cur->r = n;
        return;
      }
      cur = next;
    }
  }
}

int get(persistent struct tree *t, int key) {
  persistent struct node *cur = t->root;
  while (cur != null) {
    if (key == cur->key) { return cur->cnt; }
    if (key < cur->key) { cur = cur->l; } else { cur = cur->r; }
  }
  return 0;
}

int main() {
  int r = region_create(4194304);
  region_open(r);
  persistent struct tree *t = new(r, struct tree);
  int seed = 12345;
  int i = 0;
  while (i < 800) {
    seed = (seed * 1103515245 + 12345) %% 2147483648;
    count(r, t, seed %% 97 + 1);
    i = i + 1;
  }
  return get(t, %d);
}
|}
    probe

let test_nvc_wordcount_matches_host () =
  (* Host-side reference of the same LCG stream. *)
  let counts = Hashtbl.create 97 in
  let seed = ref 12345 in
  for _ = 1 to 800 do
    seed := ((!seed * 1103515245) + 12345) mod 2147483648;
    let key = (!seed mod 97) + 1 in
    Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  List.iter
    (fun probe ->
      let expected = Option.value ~default:0 (Hashtbl.find_opt counts probe) in
      check
        (Printf.sprintf "count of key %d" probe)
        expected
        (result (nvc_wordcount probe)))
    [ 1; 13; 42; 97; 7 ]

let test_region_migrate_in_program () =
  (* Fill a tiny region, migrate it bigger, keep growing the list: the
     off-holder links survive the move (Section 4.4). *)
  check_str "migration mid-program" "60\n"
    (output
       (common_defs
      ^ "int main() {\n\
         int r = region_create(8192);\n\
         region_open(r);\n\
         persistent struct node *head = null;\n\
         int i = 1;\n\
         while (i <= 30) {\n\
        \  if (i == 16) { region_migrate(r, 65536); head = root_get(r, \"h\"); }\n\
        \  persistent struct node *n = new(r, struct node);\n\
        \  n->key = i; n->next = head; head = n;\n\
        \  root_set(r, \"h\", n);\n\
        \  i = i + 1;\n\
         }\n\
         int count = 0; int sum = 0;\n\
         persistent struct node *cur = head;\n\
         while (cur != null) { count = count + 1; cur = cur->next; }\n\
         print(count * 2);\n\
         return count; }"))

let test_more_static_rejections () =
  expect_type_error "int main() { return f(1); }" (* unknown function *);
  expect_type_error
    "int f(int a) { return a; } int main() { return f(1, 2); }" (* arity *);
  expect_type_error "int main() { return x; }" (* unknown variable *);
  expect_type_error "void f() { return 1; } int main() { return 0; }"
    (* value from void *);
  expect_type_error "int f() { return; } int main() { return 0; }"
    (* void return from int *);
  expect_type_error "int main() { int x = 1; int x = 2; return x; }"
    (* duplicate local *);
  expect_type_error "void f() {} int main() { return f(); }"
    (* void used as value *)

let test_more_runtime_errors () =
  expect_runtime_error "int main() { int x = 0; return 1 / x; }";
  expect_runtime_error "int main() { int x = 0; return 1 % x; }";
  expect_runtime_error
    "int main() { region_open(42); return 0; }" (* unknown region *);
  expect_runtime_error
    "int main() { int r = region_create(65536); region_open(r);\n\
     persistent int *p = root_get(r, \"missing\"); return *p; }"

let test_recursion_and_shadowing_blocks () =
  (* Sibling blocks may reuse a name; the value does not leak. *)
  check_str "sibling block scopes" "1\n2\n"
    (output
       "int main() { int c = 1;\n\
        if (c) { int t = 1; print(t); } else { }\n\
        if (c) { int t = 2; print(t); } else { }\n\
        return 0; }");
  check "mutual recursion" 1
    (result
       "int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }\n\
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }\n\
        int main() { return is_odd(7); }")

let test_syntax_error_reported () =
  match Lang.compile "int main( { return 0; }" with
  | Ok _ -> Alcotest.fail "expected syntax error"
  | Error msg ->
      check_bool "mentions syntax" true
        (String.length msg >= 12 && String.sub msg 0 12 = "syntax error")

let test_lexer_error_reported () =
  match Lang.compile "int main() { return 0 @ 1; }" with
  | Ok _ -> Alcotest.fail "expected lexical error"
  | Error msg ->
      check_bool "mentions lexical" true
        (String.length msg >= 13 && String.sub msg 0 13 = "lexical error")

let () =
  Alcotest.run "lang"
    [
      ( "basics",
        [
          Alcotest.test_case "arith + control" `Quick test_arith_and_control;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "comments + hex" `Quick test_comments_and_hex;
          Alcotest.test_case "scoping + mutual recursion" `Quick
            test_recursion_and_shadowing_blocks;
          Alcotest.test_case "new + fields" `Quick test_new_and_fields;
          Alcotest.test_case "persistentI list" `Quick
            test_persistenti_list_in_program;
        ] );
      ( "figure8-rules",
        [
          Alcotest.test_case "p = i" `Quick test_rule_p_eq_i;
          Alcotest.test_case "p = x" `Quick test_rule_p_eq_x;
          Alcotest.test_case "i = x" `Quick test_rule_i_eq_x;
          Alcotest.test_case "x = i" `Quick test_rule_x_eq_i;
          Alcotest.test_case "i = p and x = p" `Quick
            test_rule_i_eq_p_and_x_eq_p;
          Alcotest.test_case "null conversions" `Quick
            test_rule_null_everywhere;
          Alcotest.test_case "pointer arithmetic" `Quick
            test_pointer_arithmetic_keeps_type;
          Alcotest.test_case "pointer difference" `Quick
            test_pointer_difference;
          Alcotest.test_case "deref + addrof" `Quick test_deref_and_addrof;
          Alcotest.test_case "int arrays" `Quick test_arrays;
          Alcotest.test_case "struct array pointer walk" `Quick
            test_struct_array_via_arrow;
          Alcotest.test_case "pointer-element arrays rejected" `Quick
            test_array_of_pointers_rejected;
        ] );
      ( "dynamic-checks",
        [
          Alcotest.test_case "cross-region persistentI rejected" `Quick
            test_cross_region_i_rejected_at_runtime;
          Alcotest.test_case "cross-region persistentX allowed" `Quick
            test_cross_region_x_allowed;
          Alcotest.test_case "null deref caught" `Quick test_null_deref_caught;
          Alcotest.test_case "more runtime errors" `Quick
            test_more_runtime_errors;
        ] );
      ( "static-rejections",
        [
          Alcotest.test_case "local persistentI" `Quick
            test_local_persistenti_rejected;
          Alcotest.test_case "local persistentX" `Quick
            test_local_persistentx_rejected;
          Alcotest.test_case "param persistentI" `Quick
            test_param_persistenti_rejected;
          Alcotest.test_case "pointee mismatch" `Quick
            test_pointee_mismatch_rejected;
          Alcotest.test_case "int to pointer" `Quick
            test_int_to_pointer_rejected;
          Alcotest.test_case "unknown field" `Quick test_unknown_field_rejected;
          Alcotest.test_case "addrof local" `Quick test_addrof_local_rejected;
          Alcotest.test_case "recursive struct" `Quick
            test_recursive_struct_by_value_rejected;
          Alcotest.test_case "struct assignment" `Quick
            test_struct_assignment_rejected;
          Alcotest.test_case "qualifier on non-pointer" `Quick
            test_qualifier_on_non_pointer_rejected;
          Alcotest.test_case "more static rejections" `Quick
            test_more_static_rejections;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "lowering inserts slot conversions" `Quick
            test_lowering_inserts_slot_ops;
          QCheck_alcotest.to_alcotest prop_expr_differential;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_pretty_roundtrip_exprs;
          Alcotest.test_case "syntax errors" `Quick test_syntax_error_reported;
          Alcotest.test_case "lexer errors" `Quick test_lexer_error_reported;
        ] );
      ( "programs",
        [
          Alcotest.test_case "figure 9 cross-region list" `Quick
            test_figure9_cross_region_list;
          Alcotest.test_case "cross-run program" `Quick test_cross_run_program;
          Alcotest.test_case "NVC wordcount vs host reference" `Slow
            test_nvc_wordcount_matches_host;
          Alcotest.test_case "region_migrate mid-program" `Quick
            test_region_migrate_in_program;
        ] );
    ]
