module Machine = Core.Machine
module Store = Core.Store
module Repr = Core.Repr
module Node = Nvmpi_structures.Node
module Text_gen = Nvmpi_apps.Text_gen
module Wordcount = Nvmpi_apps.Wordcount

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Text generation *)

let test_vocabulary_distinct () =
  let v = Text_gen.vocabulary ~size:500 ~seed:1 in
  check "size" 500 (Array.length v);
  let s = List.sort_uniq compare (Array.to_list v) in
  check "distinct" 500 (List.length s);
  Array.iter
    (fun w ->
      check_bool "lowercase a-z" true
        (String.for_all (fun c -> c >= 'a' && c <= 'z') w))
    v

let test_vocabulary_deterministic () =
  let a = Text_gen.vocabulary ~size:100 ~seed:5 in
  let b = Text_gen.vocabulary ~size:100 ~seed:5 in
  check_bool "same seed same vocab" true (a = b);
  let c = Text_gen.vocabulary ~size:100 ~seed:6 in
  check_bool "different seed differs" true (a <> c)

let test_zipf_skew () =
  let sample = Text_gen.zipf_sampler ~n:1000 ~s:1.0 ~seed:3 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let k = sample () in
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 must be far more frequent than rank 100. *)
  check_bool "zipf head heavy" true (counts.(0) > 5 * counts.(100));
  check_bool "rank0 plausible" true (counts.(0) > 1000)

let test_words_stream () =
  let w = Text_gen.words ~n:5000 ~vocab:200 ~seed:2 in
  check "length" 5000 (Array.length w);
  let distinct = List.sort_uniq compare (Array.to_list w) in
  check_bool "uses many words" true (List.length distinct > 50);
  check_bool "bounded by vocab" true (List.length distinct <= 200)

let test_reference_counts () =
  let counts = Text_gen.reference_counts [| "b"; "a"; "b" |] in
  Alcotest.(check (list (pair string int)))
    "counts" [ ("a", 1); ("b", 2) ] counts

(* Word/key encoding *)

let test_key_encoding_roundtrip () =
  List.iter
    (fun w ->
      Alcotest.(check string)
        ("roundtrip " ^ w) w
        (Wordcount.word_of_key (Wordcount.key_of_word w)))
    [ "a"; "z"; "hello"; "abcdefghijkl" ]

let test_key_encoding_rejects () =
  check_bool "empty" true
    (try
       ignore (Wordcount.key_of_word "");
       false
     with Invalid_argument _ -> true);
  check_bool "too long" true
    (try
       ignore (Wordcount.key_of_word "abcdefghijklm");
       false
     with Invalid_argument _ -> true);
  check_bool "bad char" true
    (try
       ignore (Wordcount.key_of_word "he-llo");
       false
     with Invalid_argument _ -> true)

let prop_key_injective =
  QCheck2.Test.make ~name:"word keys are injective" ~count:200
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 12)))
    (fun (w1, w2) ->
      w1 = w2 || Wordcount.key_of_word w1 <> Wordcount.key_of_word w2)

(* Wordcount application *)

let fresh_node ?(seed = 1) () =
  let store = Store.create () in
  let m = Machine.create ~seed ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 22)) in
  (store, m, r, Node.make m ~mode:(Node.Plain [| r |]) ~payload:32)

let test_wordcount_matches_reference () =
  let _, _, _, nd = fresh_node () in
  let stream = Text_gen.words ~n:3000 ~vocab:150 ~seed:9 in
  let result = Wordcount.count_words nd ~repr:Repr.Riv ~name:"wc" stream in
  check "total" 3000 result.Wordcount.total;
  let reference = Text_gen.reference_counts stream in
  check "distinct" (List.length reference) result.Wordcount.distinct;
  Alcotest.(check (list (pair string int)))
    "full counts match"
    reference
    (Wordcount.counts nd ~repr:Repr.Riv ~name:"wc")

let test_wordcount_all_reprs_agree () =
  let stream = Text_gen.words ~n:1000 ~vocab:80 ~seed:4 in
  let reference = Text_gen.reference_counts stream in
  List.iter
    (fun repr ->
      let _, m, r, nd = fresh_node () in
      if repr = Repr.Based then
        Machine.set_based_region m (Core.Region.rid r);
      let result = Wordcount.count_words nd ~repr ~name:"wc" stream in
      check
        (Repr.to_string repr ^ " distinct")
        (List.length reference)
        result.Wordcount.distinct;
      List.iter
        (fun (w, c) ->
          check
            (Repr.to_string repr ^ " count " ^ w)
            c
            (Wordcount.lookup nd ~repr ~name:"wc" w))
        (List.filteri (fun i _ -> i < 10) reference))
    [ Repr.Normal; Repr.Off_holder; Repr.Riv; Repr.Fat; Repr.Fat_cached;
      Repr.Based ]

let test_wordcount_incremental () =
  let _, _, _, nd = fresh_node () in
  let s1 = [| "apple"; "pear" |] in
  let s2 = [| "apple"; "plum" |] in
  ignore (Wordcount.count_words nd ~repr:Repr.Off_holder ~name:"wc" s1);
  ignore (Wordcount.count_words nd ~repr:Repr.Off_holder ~name:"wc" s2);
  check "apple counted across calls" 2
    (Wordcount.lookup nd ~repr:Repr.Off_holder ~name:"wc" "apple");
  check "plum" 1 (Wordcount.lookup nd ~repr:Repr.Off_holder ~name:"wc" "plum")

let test_wordcount_survives_remap () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:60 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 22) in
  let r1 = Machine.open_region m1 rid in
  let nd1 = Node.make m1 ~mode:(Node.Plain [| r1 |]) ~payload:32 in
  let stream = Text_gen.words ~n:2000 ~vocab:100 ~seed:8 in
  ignore (Wordcount.count_words nd1 ~repr:Repr.Riv ~name:"wc" stream);
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:61 ~store () in
  let r2 = Machine.open_region m2 rid in
  let nd2 = Node.make m2 ~mode:(Node.Plain [| r2 |]) ~payload:32 in
  Alcotest.(check (list (pair string int)))
    "counts survive the remap"
    (Text_gen.reference_counts stream)
    (Wordcount.counts nd2 ~repr:Repr.Riv ~name:"wc")

(* Key-value store *)

module Kvstore = Nvmpi_apps.Kvstore
module Objstore = Nvmpi_tx.Objstore

let fresh_kv ?(repr = Repr.Riv) ?(seed = 1) ?(buckets = 16) () =
  let store = Store.create () in
  let m = Machine.create ~seed ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 22)) in
  if repr = Repr.Based then Machine.set_based_region m (Core.Region.rid r);
  let os = Objstore.create m r () in
  (store, m, Kvstore.create os ~repr ~name:"kv" ~buckets ())

let test_kv_basics () =
  let _, _, kv = fresh_kv () in
  check "empty" 0 (Kvstore.size kv);
  Kvstore.put kv ~key:1 "one";
  Kvstore.put kv ~key:2 "two";
  Alcotest.(check (option string)) "get 1" (Some "one") (Kvstore.get kv ~key:1);
  Alcotest.(check (option string)) "get 2" (Some "two") (Kvstore.get kv ~key:2);
  Alcotest.(check (option string)) "get 3" None (Kvstore.get kv ~key:3);
  Kvstore.put kv ~key:1 "uno";
  Alcotest.(check (option string)) "replaced" (Some "uno")
    (Kvstore.get kv ~key:1);
  check "size" 2 (Kvstore.size kv);
  check_bool "delete" true (Kvstore.delete kv ~key:1);
  check_bool "delete again" false (Kvstore.delete kv ~key:1);
  Alcotest.(check (option string)) "gone" None (Kvstore.get kv ~key:1);
  Alcotest.(check (list int)) "keys" [ 2 ] (Kvstore.keys kv)

let test_kv_empty_and_large_values () =
  let _, _, kv = fresh_kv () in
  Kvstore.put kv ~key:5 "";
  Alcotest.(check (option string)) "empty value" (Some "")
    (Kvstore.get kv ~key:5);
  let big = String.init 5000 (fun i -> Char.chr (i land 0xFF)) in
  Kvstore.put kv ~key:6 big;
  Alcotest.(check (option string)) "large binary value" (Some big)
    (Kvstore.get kv ~key:6)

let test_kv_collisions () =
  (* One bucket: everything chains. *)
  let _, _, kv = fresh_kv ~buckets:1 () in
  for k = 1 to 50 do
    Kvstore.put kv ~key:k (string_of_int k)
  done;
  check "size" 50 (Kvstore.size kv);
  for k = 1 to 50 do
    Alcotest.(check (option string))
      ("chained " ^ string_of_int k)
      (Some (string_of_int k))
      (Kvstore.get kv ~key:k)
  done;
  (* Delete from the middle of the chain. *)
  check_bool "del 25" true (Kvstore.delete kv ~key:25);
  check "size after" 49 (Kvstore.size kv);
  Alcotest.(check (option string)) "neighbours intact" (Some "24")
    (Kvstore.get kv ~key:24)

let test_kv_overwrite_storm () =
  (* The store's free path must actually reclaim: after a storm of
     overwrites, deletes and re-inserts that leaves the same live keys
     behind, the heap holds exactly as many allocated blocks as it did
     at the baseline — nothing leaked, nothing double-freed. *)
  let store = Store.create () in
  let m = Machine.create ~seed:7 ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 22)) in
  let os = Objstore.create m r () in
  let kv = Kvstore.create os ~repr:Repr.Riv ~name:"kv" ~buckets:16 () in
  let keys = 32 in
  let value ~key ~len = String.make len (Char.chr (Char.code 'a' + (key mod 26))) in
  for key = 1 to keys do
    Kvstore.put kv ~key (value ~key ~len:24)
  done;
  let baseline = fst (Objstore.heap_block_count os) in
  let sizes = [| 8; 120; 480; 1500; 6000; 24 |] in
  for op = 1 to 600 do
    let key = 1 + (op mod keys) in
    if op mod 13 = 0 then begin
      ignore (Kvstore.delete kv ~key);
      Kvstore.put kv ~key (value ~key ~len:24)
    end
    else Kvstore.put kv ~key (value ~key ~len:sizes.(op mod Array.length sizes))
  done;
  (* Settle every key back onto its baseline-sized value. *)
  for key = 1 to keys do
    Kvstore.put kv ~key (value ~key ~len:24)
  done;
  Objstore.heap_check os;
  check "live blocks back to baseline" baseline
    (fst (Objstore.heap_block_count os));
  check "all keys survive the storm" keys (Kvstore.size kv);
  (* Dropping every key must release every value and entry block: the
     allocated count falls strictly below baseline. *)
  for key = 1 to keys do
    ignore (Kvstore.delete kv ~key)
  done;
  Objstore.heap_check os;
  check_bool "deletes reclaim below baseline" true
    (fst (Objstore.heap_block_count os) < baseline)

let test_kv_survives_remap () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:90 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 22) in
  let r1 = Machine.open_region m1 rid in
  let os1 = Objstore.create m1 r1 () in
  let kv1 = Kvstore.create os1 ~repr:Repr.Off_holder ~name:"kv" () in
  Kvstore.put kv1 ~key:10 "ten";
  Kvstore.put kv1 ~key:20 "twenty";
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:91 ~store () in
  let r2 = Machine.open_region m2 rid in
  let os2 = Objstore.attach m2 r2 in
  let kv2 = Kvstore.attach os2 ~repr:Repr.Off_holder ~name:"kv" in
  Alcotest.(check (option string)) "value survives" (Some "twenty")
    (Kvstore.get kv2 ~key:20);
  check "size survives" 2 (Kvstore.size kv2);
  (* Still writable in the new run. *)
  Kvstore.put kv2 ~key:30 "thirty";
  check "extended" 3 (Kvstore.size kv2)

let test_kv_crash_recovery () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:92 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 22) in
  let r1 = Machine.open_region m1 rid in
  let os1 = Objstore.create m1 r1 () in
  let kv1 = Kvstore.create os1 ~repr:Repr.Riv ~name:"kv" () in
  Kvstore.put kv1 ~key:1 "before";
  (* Crash in the middle of an overwrite AND of a fresh insert. *)
  Kvstore.simulate_crash_during_put kv1 ~key:1 "torn";
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:93 ~store () in
  let r2 = Machine.open_region m2 rid in
  let os2 = Objstore.attach m2 r2 in
  let kv2 = Kvstore.attach os2 ~repr:Repr.Riv ~name:"kv" in
  Alcotest.(check (option string)) "old value recovered" (Some "before")
    (Kvstore.get kv2 ~key:1);
  Kvstore.simulate_crash_during_put kv2 ~key:99 "phantom";
  Machine.close_region m2 rid;
  let m3 = Machine.create ~seed:94 ~store () in
  let r3 = Machine.open_region m3 rid in
  let os3 = Objstore.attach m3 r3 in
  let kv3 = Kvstore.attach os3 ~repr:Repr.Riv ~name:"kv" in
  Alcotest.(check (option string)) "phantom insert rolled back" None
    (Kvstore.get kv3 ~key:99);
  check "size consistent" 1 (Kvstore.size kv3)

let test_kv_all_reprs () =
  List.iter
    (fun repr ->
      let _, _, kv = fresh_kv ~repr () in
      Kvstore.put kv ~key:7 "seven";
      Alcotest.(check (option string))
        (Repr.to_string repr)
        (Some "seven") (Kvstore.get kv ~key:7))
    [ Repr.Normal; Repr.Off_holder; Repr.Riv; Repr.Fat; Repr.Fat_cached;
      Repr.Based; Repr.Packed_fat ]

let test_kv_iterate_complete () =
  let _, _, kv = fresh_kv () in
  for k = 1 to 30 do
    Kvstore.put kv ~key:k (String.make k 'x')
  done;
  let seen = Hashtbl.create 30 in
  Kvstore.iter kv (fun ~key ~value ->
      check ("len of " ^ string_of_int key) key (String.length value);
      Hashtbl.replace seen key ());
  check "iterated all" 30 (Hashtbl.length seen);
  Alcotest.(check (list int)) "keys sorted" (List.init 30 (fun i -> i + 1))
    (Kvstore.keys kv)

let test_kv_attach_wrong_root () =
  let store = Store.create () in
  let m = Machine.create ~seed:95 ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 22)) in
  let os = Objstore.create m r () in
  check_bool "missing root" true
    (try
       ignore (Kvstore.attach os ~repr:Repr.Riv ~name:"nope");
       false
     with Failure _ -> true)

let test_wordcount_empty_stream () =
  let _, _, _, nd = fresh_node () in
  let result = Wordcount.count_words nd ~repr:Repr.Riv ~name:"wc" [||] in
  check "no words" 0 result.Wordcount.distinct;
  check "lookup in empty" 0 (Wordcount.lookup nd ~repr:Repr.Riv ~name:"wc" "x")

let prop_kv_matches_hashtbl =
  QCheck2.Test.make ~name:"kvstore matches a reference map" ~count:30
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (pair (int_range 0 2) (pair (int_range 1 20) (string_size (int_range 0 20)))))
    (fun ops ->
      let _, _, kv = fresh_kv ~buckets:4 () in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (op, (k, v)) ->
          match op with
          | 0 | 1 ->
              Kvstore.put kv ~key:k v;
              Hashtbl.replace reference k v
          | _ ->
              let a = Kvstore.delete kv ~key:k in
              let b = Hashtbl.mem reference k in
              Hashtbl.remove reference k;
              if a <> b then failwith "delete mismatch")
        ops;
      Kvstore.size kv = Hashtbl.length reference
      && Hashtbl.fold
           (fun k v acc -> acc && Kvstore.get kv ~key:k = Some v)
           reference true)

let () =
  Alcotest.run "apps"
    [
      ( "text-gen",
        [
          Alcotest.test_case "vocabulary distinct" `Quick
            test_vocabulary_distinct;
          Alcotest.test_case "vocabulary deterministic" `Quick
            test_vocabulary_deterministic;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "word stream" `Quick test_words_stream;
          Alcotest.test_case "reference counts" `Quick test_reference_counts;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_key_encoding_roundtrip;
          Alcotest.test_case "rejects" `Quick test_key_encoding_rejects;
          QCheck_alcotest.to_alcotest prop_key_injective;
        ] );
      ( "wordcount",
        [
          Alcotest.test_case "matches reference" `Quick
            test_wordcount_matches_reference;
          Alcotest.test_case "all reprs agree" `Slow
            test_wordcount_all_reprs_agree;
          Alcotest.test_case "incremental" `Quick test_wordcount_incremental;
          Alcotest.test_case "survives remap" `Quick
            test_wordcount_survives_remap;
        ] );
      ( "kvstore",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "empty + large values" `Quick
            test_kv_empty_and_large_values;
          Alcotest.test_case "collisions" `Quick test_kv_collisions;
          Alcotest.test_case "overwrite storm reclaims" `Quick
            test_kv_overwrite_storm;
          Alcotest.test_case "survives remap" `Quick test_kv_survives_remap;
          Alcotest.test_case "crash recovery" `Quick test_kv_crash_recovery;
          Alcotest.test_case "all representations" `Quick test_kv_all_reprs;
          Alcotest.test_case "iterate complete" `Quick test_kv_iterate_complete;
          Alcotest.test_case "attach wrong root" `Quick
            test_kv_attach_wrong_root;
          Alcotest.test_case "wordcount empty stream" `Quick
            test_wordcount_empty_stream;
          QCheck_alcotest.to_alcotest prop_kv_matches_hashtbl;
        ] );
    ]
