(* Staged-vs-dispatch engine equivalence: the two call graphs must be
   observationally identical for every representation — same loaded
   values, same sanctioned faults, byte-identical counter registries.
   Also pins the per-kind registry tables in Repr against each
   representation module's own constants (repr.ml keeps them as direct
   matches for the staged paths; this is the check that keeps them
   honest). *)

module Repr = Core.Repr
module Engine = Core.Engine
module Machine = Core.Machine
module Store = Core.Store
module Region = Core.Region
module Vaddr = Core.Kinds.Vaddr
module Memsim = Nvmpi_memsim.Memsim
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Node = Nvmpi_structures.Node
module Gen = Nvmpi_conform.Gen
module Exec = Nvmpi_conform.Exec
module CEngine = Nvmpi_conform.Engine
module Instance = Nvmpi_experiments.Instance
module Workload = Nvmpi_experiments.Workload

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Every test restores the staged default, whatever happens: the mode is
   process-global and later suites assume the default. *)
let under mode f =
  Engine.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Engine.set_default_mode Engine.Staged) f

(* Registry tables: Repr's per-kind tables = each module's constants. *)

let test_registry_tables () =
  List.iter
    (fun kind ->
      let (module P : Core.Repr_sig.S) = Repr.m kind in
      let name = Repr.to_string kind in
      Alcotest.(check int)
        (name ^ " slot_size") P.slot_size (Repr.slot_size kind);
      check_bool
        (name ^ " cross_region") P.cross_region (Repr.cross_region kind);
      check_bool
        (name ^ " position_independent") P.position_independent
        (Repr.position_independent kind))
    Repr.all

(* One dereference, two call graphs, two fresh machines: the fused
   [Engine.deref] must load the same value and leave a byte-identical
   counter registry behind as the generic module chain. *)

let deref_world kind =
  let store = Store.create () in
  let metrics = Metrics.create () in
  let m = Machine.create ~seed:11 ~metrics ~store () in
  let rid = Machine.create_region m ~size:(1 lsl 20) in
  let r = Machine.open_region m rid in
  if kind = Repr.Based then Machine.set_based_region m rid;
  let holder = Region.alloc r (Repr.slot_size kind) in
  let target = Region.alloc r 64 in
  Memsim.store64 m.Machine.mem target 0xBEEF;
  (m, metrics, holder, target)

let test_deref_equivalence () =
  List.iter
    (fun kind ->
      let name = Repr.to_string kind in
      let ma, mea, ha, ta = deref_world kind in
      Engine.store kind ma ~holder:ha ta;
      let va = Engine.deref kind ma ~holder:ha in
      let mb, meb, hb, tb = deref_world kind in
      let (module P : Core.Repr_sig.S) = Repr.m kind in
      P.store mb ~holder:hb tb;
      let vb = Memsim.load64 mb.Machine.mem (P.load mb ~holder:hb) in
      Alcotest.(check int) (name ^ " deref value") vb va;
      check_str
        (name ^ " deref counters")
        (Json.to_string (Metrics.to_json meb))
        (Json.to_string (Metrics.to_json mea)))
    Repr.all

(* Cross-region stores: whichever way a representation answers one
   (a Cross_region_store raise or an encoded store), both engines must
   answer it the same way. *)

let cross_region_outcome kind ~staged =
  let store = Store.create () in
  let m = Machine.create ~seed:13 ~store () in
  let rid0 = Machine.create_region m ~size:(1 lsl 20) in
  let rid1 = Machine.create_region m ~size:(1 lsl 20) in
  let r0 = Machine.open_region m rid0 in
  let r1 = Machine.open_region m rid1 in
  if kind = Repr.Based then Machine.set_based_region m rid0;
  let holder = Region.alloc r0 (Repr.slot_size kind) in
  let target = Region.alloc r1 64 in
  let attempt () =
    if staged then begin
      Engine.store kind m ~holder target;
      Engine.load kind m ~holder
    end
    else begin
      let (module P : Core.Repr_sig.S) = Repr.m kind in
      P.store m ~holder target;
      P.load m ~holder
    end
  in
  match attempt () with
  | v -> Printf.sprintf "stored:%b" (Vaddr.equal v target)
  | exception Machine.Cross_region_store _ -> "raised"

let test_cross_region_equivalence () =
  List.iter
    (fun kind ->
      check_str
        (Repr.to_string kind ^ " cross-region outcome")
        (cross_region_outcome kind ~staged:false)
        (cross_region_outcome kind ~staged:true))
    Repr.all

(* Conformance-trace replay: the same generated traces, once per
   engine, must produce identical op observables (loaded values,
   digests, sanctioned raises), identical post-remap snapshots and
   identical fatal status for every applicable representation. *)

let result_to_string (r : Exec.result) =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i o -> Printf.bprintf b "%d:%s\n" i (Exec.obs_to_string o))
    r.Exec.obs;
  List.iter (fun (i, s) -> Printf.bprintf b "snap%d:%s\n" i s) r.Exec.snaps;
  Printf.bprintf b "fatal:%s"
    (match r.Exec.fatal with None -> "-" | Some e -> e);
  Buffer.contents b

let test_trace_replay_equivalence () =
  for index = 0 to 7 do
    let tr = Gen.trace ~seed:42 ~index () in
    List.iter
      (fun kind ->
        let run mode = under mode (fun () -> Exec.run ~kind tr) in
        check_str
          (Printf.sprintf "trace %d %s" index (Repr.to_string kind))
          (result_to_string (run Engine.Dispatch))
          (result_to_string (run Engine.Staged)))
      (CEngine.applicable tr)
  done

(* Structure workloads through the instance layer: staged and dispatch
   construction must agree on every traversal result and leave
   byte-identical counter registries, for all nine representations and
   all seven structures. *)

let structure_outcome structure kind mode =
  under mode (fun () ->
      let store = Store.create () in
      let metrics = Metrics.create () in
      let m = Machine.create ~seed:17 ~metrics ~store () in
      let rid = Machine.create_region m ~size:(1 lsl 22) in
      let r = Machine.open_region m rid in
      if kind = Repr.Based then Machine.set_based_region m rid;
      let node = Node.make m ~mode:(Node.Plain [| r |]) ~payload:32 in
      let inst = Instance.create structure kind node ~name:"eq" in
      let keys = Workload.keys ~n:120 ~seed:5 in
      Array.iter (fun k -> inst.Instance.insert k) keys;
      let n, sum = inst.Instance.traverse () in
      let hits =
        Array.fold_left
          (fun a k -> if inst.Instance.search k then a + 1 else a)
          0 keys
      in
      Printf.sprintf "n=%d sum=%d hits=%d counters=%s" n sum hits
        (Json.to_string (Metrics.to_json metrics)))

let test_structure_equivalence () =
  List.iter
    (fun structure ->
      List.iter
        (fun kind ->
          check_str
            (Printf.sprintf "%s/%s"
               (Instance.structure_name structure)
               (Repr.to_string kind))
            (structure_outcome structure kind Engine.Dispatch)
            (structure_outcome structure kind Engine.Staged))
        Repr.all)
    (Instance.structures @ Instance.extension_structures)

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "repr registry tables" `Quick
            test_registry_tables;
          Alcotest.test_case "single deref" `Quick test_deref_equivalence;
          Alcotest.test_case "cross-region outcome" `Quick
            test_cross_region_equivalence;
          Alcotest.test_case "trace replay" `Quick
            test_trace_replay_equivalence;
          Alcotest.test_case "structure workloads" `Quick
            test_structure_equivalence;
        ] );
    ]
