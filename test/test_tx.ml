module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim
module Objstore = Nvmpi_tx.Objstore
module Tx = Nvmpi_tx.Tx
module Vaddr = Core.Kinds.Vaddr

let ia (a : Vaddr.t) = (a :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_store ?(size = 1 lsl 20) ?(seed = 1) () =
  let store = Store.create () in
  let m = Machine.create ~seed ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size) in
  let os = Objstore.create m r () in
  (store, m, r, os)

(* Object store *)

let test_alloc_wrapping () =
  let _, _, _, os = with_store () in
  let a = Objstore.alloc os ~tag:7 ~size:40 () in
  check "tag" 7 (Objstore.obj_tag os a);
  check "size" 40 (Objstore.obj_size os a);
  check "alive" 1 (Objstore.objects_alive os);
  (* 128-byte wrapping: two small objects are at least 128 bytes apart. *)
  let b = Objstore.alloc os ~size:8 () in
  check_bool "wrap unit spacing" true
    (abs (Vaddr.diff b a) >= Objstore.wrap_unit);
  Objstore.free os a;
  check "alive after free" 1 (Objstore.objects_alive os)

let test_alloc_reuse () =
  let _, _, _, os = with_store () in
  let a = Objstore.alloc os ~size:64 () in
  Objstore.free os a;
  let b = Objstore.alloc os ~size:64 () in
  check "freed slot reused" (ia a) (ia b)

let test_attach_after_remap () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:10 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let os1 = Objstore.create m1 r1 () in
  let a = Objstore.alloc os1 ~tag:3 ~size:16 () in
  Memsim.store64 m1.Machine.mem a 777;
  Region.set_root r1 "obj" a;
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:20 ~store () in
  let r2 = Machine.open_region m2 rid in
  let os2 = Objstore.attach m2 r2 in
  let a' = Option.get (Region.root r2 "obj") in
  check "tag survives" 3 (Objstore.obj_tag os2 a');
  check "value survives" 777 (Memsim.load64 m2.Machine.mem a');
  check "alive count survives" 1 (Objstore.objects_alive os2);
  (* The freelist still works at the new base. *)
  let b = Objstore.alloc os2 ~size:16 () in
  check_bool "fresh alloc in new run" true (not (Vaddr.is_null b))

let test_attach_requires_store () =
  let store = Store.create () in
  let m = Machine.create ~seed:2 ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
  check_bool "no store" true
    (try
       ignore (Objstore.attach m r);
       false
     with Failure _ -> true)

(* Transactions *)

let test_commit_keeps_values () =
  let _, m, _, os = with_store () in
  let a = Objstore.alloc os ~size:16 () in
  Memsim.store64 m.Machine.mem a 1;
  let tx = Tx.create os in
  Tx.run tx (fun () ->
      Tx.store64 tx a 2;
      check "visible inside tx" 2 (Tx.load64 tx a));
  check "committed" 2 (Memsim.load64 m.Machine.mem a);
  check "log truncated" 0 (Objstore.log_entries os)

let test_abort_restores_values () =
  let _, m, _, os = with_store () in
  let a = Objstore.alloc os ~size:16 () in
  let b = Objstore.alloc os ~size:16 () in
  Memsim.store64 m.Machine.mem a 1;
  Memsim.store64 m.Machine.mem b 10;
  let tx = Tx.create os in
  Tx.begin_tx tx;
  Tx.store64 tx a 2;
  Tx.store64 tx b 20;
  Tx.store64 tx a 3;
  Tx.abort tx;
  check "a restored" 1 (Memsim.load64 m.Machine.mem a);
  check "b restored" 10 (Memsim.load64 m.Machine.mem b);
  check "log truncated" 0 (Objstore.log_entries os)

let test_exception_aborts () =
  let _, m, _, os = with_store () in
  let a = Objstore.alloc os ~size:16 () in
  Memsim.store64 m.Machine.mem a 5;
  let tx = Tx.create os in
  check_bool "exception propagates" true
    (try
       Tx.run tx (fun () ->
           Tx.store64 tx a 6;
           failwith "boom")
     with Failure _ -> true);
  check "rolled back" 5 (Memsim.load64 m.Machine.mem a);
  check_bool "tx closed" false (Tx.active tx)

let test_crash_recovery () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:30 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let os1 = Objstore.create m1 r1 () in
  let a = Objstore.alloc os1 ~size:16 () in
  Memsim.store64 m1.Machine.mem a 100;
  Region.set_root r1 "x" a;
  let tx = Tx.create os1 in
  Tx.begin_tx tx;
  Tx.store64 tx a 999;
  (* Power fails before commit; the dirty value may have reached NVM. *)
  Tx.simulate_crash tx;
  check "torn value in memory" 999 (Memsim.load64 m1.Machine.mem a);
  Machine.close_region m1 rid;
  (* Next run: attach rolls the undo log back. *)
  let m2 = Machine.create ~seed:31 ~store () in
  let r2 = Machine.open_region m2 rid in
  let _os2 = Objstore.attach m2 r2 in
  let a' = Option.get (Region.root r2 "x") in
  check "recovered pre-tx value" 100 (Memsim.load64 m2.Machine.mem a')

let test_crash_after_commit_durable () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:32 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let os1 = Objstore.create m1 r1 () in
  let a = Objstore.alloc os1 ~size:16 () in
  Region.set_root r1 "x" a;
  let tx = Tx.create os1 in
  Tx.run tx (fun () -> Tx.store64 tx a 42);
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:33 ~store () in
  let r2 = Machine.open_region m2 rid in
  let _ = Objstore.attach m2 r2 in
  let a' = Option.get (Region.root r2 "x") in
  check "committed value durable" 42 (Memsim.load64 m2.Machine.mem a')

let test_add_range () =
  let _, m, _, os = with_store () in
  let a = Objstore.alloc os ~size:64 () in
  for i = 0 to 7 do
    Memsim.store64 m.Machine.mem (Vaddr.add a (i * 8)) i
  done;
  let tx = Tx.create os in
  Tx.begin_tx tx;
  Tx.add_range tx ~addr:a ~len:64;
  for i = 0 to 7 do
    Memsim.store64 m.Machine.mem (Vaddr.add a (i * 8)) (100 + i)
  done;
  Tx.abort tx;
  for i = 0 to 7 do
    check (Printf.sprintf "word %d restored" i) i
      (Memsim.load64 m.Machine.mem (Vaddr.add a (i * 8)))
  done

let test_tx_state_errors () =
  let _, _, _, os = with_store () in
  let tx = Tx.create os in
  check_bool "commit outside tx" true
    (try
       Tx.commit tx;
       false
     with Tx.Not_in_transaction -> true);
  Tx.begin_tx tx;
  check_bool "nested begin" true
    (try
       Tx.begin_tx tx;
       false
     with Tx.Already_in_transaction -> true);
  Tx.abort tx

(* Abort midway through relinking a pointer chain: every link — however
   many objects deep the partial update got — must roll back to the
   original chain, and a traversal must still terminate on the old
   topology. *)
let test_abort_partial_pointer_chain () =
  let _, m, _, os = with_store () in
  let mem = m.Machine.mem in
  let node v =
    let n = Objstore.alloc os ~size:16 () in
    Memsim.store64 mem n v;
    n
  in
  let a = node 1 and b = node 2 and c = node 3 and d = node 4 in
  let link x y = Memsim.store64 mem (Vaddr.add x 8) (ia y) in
  (* Durable chain a -> b -> c, d detached. *)
  link a b;
  link b c;
  link c Vaddr.null;
  let tx = Tx.create os in
  Tx.begin_tx tx;
  (* Partial splice of d between a and b: the first link is redirected
     and d's next written, but b's side never happens. *)
  Tx.store64 tx (Vaddr.add a 8) (ia d);
  Tx.store64 tx (Vaddr.add d 8) (ia b);
  Tx.abort tx;
  let next x = Vaddr.v (Memsim.load64 mem (Vaddr.add x 8)) in
  check "a.next restored" (ia b) (ia (next a));
  check "b.next untouched" (ia c) (ia (next b));
  let rec walk x acc =
    if Vaddr.is_null x then List.rev acc
    else walk (next x) (Memsim.load64 mem x :: acc)
  in
  Alcotest.(check (list int)) "old topology traverses" [ 1; 2; 3 ] (walk a [])

(* Nested begin must be rejected through the run wrapper too, and the
   outer transaction must survive the rejection intact. *)
let test_nested_run_rejected () =
  let _, m, _, os = with_store () in
  let a = Objstore.alloc os ~size:16 () in
  Memsim.store64 m.Machine.mem a 1;
  let tx = Tx.create os in
  Tx.begin_tx tx;
  Tx.store64 tx a 2;
  check_bool "nested run rejected" true
    (try
       Tx.run tx (fun () -> ());
       false
     with Tx.Already_in_transaction -> true);
  check_bool "outer tx still open" true (Tx.active tx);
  Tx.commit tx;
  check "outer commit lands" 2 (Memsim.load64 m.Machine.mem a)

(* A crash with an open but empty undo log: recovery must be a no-op
   that still leaves the store attachable and consistent. *)
let test_empty_undo_log_recovery () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:40 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let os1 = Objstore.create m1 r1 () in
  let a = Objstore.alloc os1 ~size:16 () in
  Memsim.store64 m1.Machine.mem a 55;
  Region.set_root r1 "x" a;
  let tx = Tx.create os1 in
  Tx.begin_tx tx;
  (* Crash before the first tracked store: nothing was logged. *)
  Tx.simulate_crash tx;
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:41 ~store () in
  let r2 = Machine.open_region m2 rid in
  let os2 = Objstore.attach m2 r2 in
  check "log empty after recovery" 0 (Objstore.log_entries os2);
  let a' = Option.get (Region.root r2 "x") in
  check "value untouched by empty rollback" 55 (Memsim.load64 m2.Machine.mem a');
  (* The recovered store is fully usable. *)
  let tx2 = Tx.create os2 in
  Tx.run tx2 (fun () -> Tx.store64 tx2 a' 56);
  check "post-recovery tx commits" 56 (Memsim.load64 m2.Machine.mem a')

let test_persist_costs_charged () =
  let _, m, _, os = with_store () in
  let a = Objstore.alloc os ~size:16 () in
  let tx = Tx.create os in
  let stats = Core.Timing.mem_stats m.Machine.timing in
  let fences_before = stats.Core.Timing.fences in
  Tx.run tx (fun () -> Tx.store64 tx a 1);
  check_bool "fences issued for log + commit" true
    (stats.Core.Timing.fences >= fences_before + 2)

let test_log_full_detected () =
  let store = Store.create () in
  let m = Machine.create ~seed:5 ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
  (* A tiny log fills after a few records. *)
  let os = Objstore.create m r ~log_cap:128 () in
  let a = Objstore.alloc os ~size:64 () in
  let tx = Tx.create os in
  Tx.begin_tx tx;
  check_bool "log overflow detected" true
    (try
       for i = 0 to 7 do
         Tx.store64 tx (Vaddr.add a (i * 8)) i
       done;
       false
     with Failure _ -> true);
  Tx.abort tx

(* Property: random interleavings of committed and aborted transactions
   leave exactly the committed effects. *)
let prop_tx_semantics =
  QCheck2.Test.make ~name:"aborted txs leave no trace" ~count:40
    QCheck2.Gen.(list_size (int_range 1 20) (pair bool (int_range 0 7)))
    (fun script ->
      let _, m, _, os = with_store () in
      let slots = Array.init 8 (fun _ -> Objstore.alloc os ~size:16 ()) in
      Array.iter (fun a -> Memsim.store64 m.Machine.mem a 0) slots;
      let expected = Array.make 8 0 in
      let tx = Tx.create os in
      List.iteri
        (fun i (commit, slot) ->
          Tx.begin_tx tx;
          Tx.store64 tx slots.(slot) (i + 1);
          if commit then begin
            Tx.commit tx;
            expected.(slot) <- i + 1
          end
          else Tx.abort tx)
        script;
      Array.for_all2
        (fun a v -> Memsim.load64 m.Machine.mem a = v)
        slots expected)

let () =
  Alcotest.run "tx"
    [
      ( "objstore",
        [
          Alcotest.test_case "alloc wrapping" `Quick test_alloc_wrapping;
          Alcotest.test_case "alloc reuse" `Quick test_alloc_reuse;
          Alcotest.test_case "attach after remap" `Quick
            test_attach_after_remap;
          Alcotest.test_case "attach requires store" `Quick
            test_attach_requires_store;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit keeps values" `Quick
            test_commit_keeps_values;
          Alcotest.test_case "abort restores values" `Quick
            test_abort_restores_values;
          Alcotest.test_case "exception aborts" `Quick test_exception_aborts;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "commit durable across crash" `Quick
            test_crash_after_commit_durable;
          Alcotest.test_case "add_range" `Quick test_add_range;
          Alcotest.test_case "state errors" `Quick test_tx_state_errors;
          Alcotest.test_case "abort after partial pointer chain" `Quick
            test_abort_partial_pointer_chain;
          Alcotest.test_case "nested run rejected" `Quick
            test_nested_run_rejected;
          Alcotest.test_case "empty undo log recovery" `Quick
            test_empty_undo_log_recovery;
          Alcotest.test_case "persist costs charged" `Quick
            test_persist_costs_charged;
          Alcotest.test_case "log overflow detected" `Quick
            test_log_full_detected;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_tx_semantics ]);
    ]
