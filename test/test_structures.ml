module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Repr = Core.Repr
module Node = Nvmpi_structures.Node
module Objstore = Nvmpi_tx.Objstore
module Durable = Nvmpi_structures.Durable
module Metrics = Nvmpi_obs.Metrics

module L_norm = Nvmpi_structures.Linked_list.Make (Core.Normal_ptr)
module L_offh = Nvmpi_structures.Linked_list.Make (Core.Off_holder)
module L_swiz = Nvmpi_structures.Linked_list.Make (Core.Swizzle)
module B_riv = Nvmpi_structures.Bstree.Make (Core.Riv)
module B_offh = Nvmpi_structures.Bstree.Make (Core.Off_holder)
module H_riv = Nvmpi_structures.Hashset.Make (Core.Riv)
module T_offh = Nvmpi_structures.Trie.Make (Core.Off_holder)
module T_swiz = Nvmpi_structures.Trie.Make (Core.Swizzle)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let node ?(seed = 1) ?(payload = 32) ?(regions = 1) ?(size = 1 lsl 22)
    ?(tx = false) ?durability () =
  let store = Store.create () in
  let m = Machine.create ~seed ~store () in
  let rs =
    Array.init regions (fun _ ->
        Machine.open_region m (Machine.create_region m ~size))
  in
  let mode =
    if tx then Node.Wrapped (Array.map (fun r -> Objstore.create m r ()) rs)
    else Node.Plain rs
  in
  (store, m, Node.make ?durability m ~mode ~payload)

(* Linked list *)

let test_list_append_traverse () =
  let _, _, nd = node () in
  let l = L_norm.create nd ~name:"l" in
  check "empty length" 0 (L_norm.length l);
  check "empty traverse" 0 (fst (L_norm.traverse l));
  List.iter (fun k -> L_norm.append l ~key:k) [ 1; 2; 3; 4; 5 ];
  check "length" 5 (L_norm.length l);
  let keys = ref [] in
  L_norm.iter l (fun ~addr:_ ~key -> keys := key :: !keys);
  Alcotest.(check (list int)) "append order" [ 1; 2; 3; 4; 5 ] (List.rev !keys)

let test_list_push_front () =
  let _, _, nd = node () in
  let l = L_norm.create nd ~name:"l" in
  List.iter (fun k -> L_norm.push_front l ~key:k) [ 1; 2; 3 ];
  let keys = ref [] in
  L_norm.iter l (fun ~addr:_ ~key -> keys := key :: !keys);
  Alcotest.(check (list int)) "lifo order" [ 3; 2; 1 ] (List.rev !keys);
  (* Mixing push_front and append keeps the tail correct. *)
  L_norm.append l ~key:99;
  check "length" 4 (L_norm.length l);
  check_bool "find tail key" true (L_norm.find l ~key:99)

let test_list_find () =
  let _, _, nd = node () in
  let l = L_norm.create nd ~name:"l" in
  List.iter (fun k -> L_norm.append l ~key:k) [ 10; 20; 30 ];
  check_bool "present" true (L_norm.find l ~key:20);
  check_bool "absent" false (L_norm.find l ~key:25)

let test_list_attach_same_run () =
  let _, _, nd = node () in
  let l = L_offh.create nd ~name:"mylist" in
  List.iter (fun k -> L_offh.append l ~key:k) [ 7; 8; 9 ];
  let l2 = L_offh.attach nd ~name:"mylist" in
  check "attached length" 3 (L_offh.length l2);
  (* Appending through the re-attached handle works (tail recomputed). *)
  L_offh.append l2 ~key:10;
  check "after append" 4 (L_offh.length l2)

let test_list_attach_wrong_kind () =
  let _, _, nd = node () in
  let _ = L_norm.create nd ~name:"l" in
  check_bool "kind mismatch detected" true
    (try
       ignore (B_riv.attach nd ~name:"l");
       false
     with Failure _ -> true)

let test_list_payload_checksum () =
  let _, _, nd = node ~payload:64 () in
  let l = L_norm.create nd ~name:"l" in
  List.iter (fun k -> L_norm.append l ~key:k) [ 3; 14; 15 ];
  let _, sum = L_norm.traverse l in
  let expect =
    List.fold_left
      (fun acc k -> acc + k + Node.payload_checksum ~payload:64 ~seed:k)
      0 [ 3; 14; 15 ]
  in
  check "checksum matches host computation" expect sum

(* BST *)

let test_bst_insert_search () =
  let _, _, nd = node () in
  let t = B_riv.create nd ~name:"t" in
  let keys = [ 50; 30; 70; 20; 40; 60; 80 ] in
  List.iter (fun k -> check_bool "fresh" true (B_riv.insert t ~key:k)) keys;
  check_bool "duplicate" false (B_riv.insert t ~key:30);
  check "size" 7 (B_riv.size t);
  check "depth" 3 (B_riv.depth t);
  List.iter (fun k -> check_bool "found" true (B_riv.search t ~key:k)) keys;
  check_bool "absent" false (B_riv.search t ~key:55)

let test_bst_traverse_counts () =
  let _, _, nd = node () in
  let t = B_riv.create nd ~name:"t" in
  for k = 1 to 100 do
    ignore (B_riv.insert t ~key:(k * 37 mod 101))
  done;
  let n, _ = B_riv.traverse t in
  check "traverse count = size" (B_riv.size t) n

let test_bst_insert_count () =
  let _, _, nd = node () in
  let t = B_offh.create nd ~name:"t" in
  B_offh.insert_count t ~key:5;
  B_offh.insert_count t ~key:5;
  B_offh.insert_count t ~key:9;
  check "count 5" 2 (B_offh.count t ~key:5);
  check "count 9" 1 (B_offh.count t ~key:9);
  check "count absent" 0 (B_offh.count t ~key:11)

(* Hash set *)

let test_hashset_basics () =
  let _, _, nd = node () in
  let h = H_riv.create nd ~name:"h" ~buckets:16 in
  check "buckets" 16 (H_riv.buckets h);
  check_bool "fresh" true (H_riv.add h ~key:1);
  check_bool "dup" false (H_riv.add h ~key:1);
  for k = 2 to 200 do
    ignore (H_riv.add h ~key:k)
  done;
  check "size" 200 (H_riv.size h);
  check_bool "contains" true (H_riv.contains h ~key:137);
  check_bool "not contains" false (H_riv.contains h ~key:999);
  let n, _ = H_riv.traverse h in
  check "traverse count" 200 n

let test_hashset_chain_order () =
  (* Keys in one bucket chain in insertion order (appended at end). *)
  let _, _, nd = node () in
  let h = H_riv.create nd ~name:"h" ~buckets:1 in
  List.iter (fun k -> ignore (H_riv.add h ~key:k)) [ 5; 3; 8 ];
  let keys = ref [] in
  H_riv.iter h (fun ~addr:_ ~key -> keys := key :: !keys);
  Alcotest.(check (list int)) "chain order" [ 5; 3; 8 ] (List.rev !keys)

(* Trie *)

let test_trie_insert_contains () =
  let _, _, nd = node () in
  let t = T_offh.create nd ~name:"t" in
  check_bool "fresh" true (T_offh.insert t "hello");
  check_bool "dup" false (T_offh.insert t "hello");
  check_bool "prefix-sharing word" true (T_offh.insert t "help");
  check_bool "prefix itself" true (T_offh.insert t "hell");
  check "word count" 3 (T_offh.word_count t);
  check_bool "contains hello" true (T_offh.contains t "hello");
  check_bool "contains hell" true (T_offh.contains t "hell");
  check_bool "no hel" false (T_offh.contains t "hel");
  check_bool "no h" false (T_offh.contains t "h");
  check_bool "no unrelated" false (T_offh.contains t "world");
  (* "hello"(5) + "p" = 6 nodes + root *)
  check "node count" 7 (T_offh.node_count t)

let test_trie_rejects_bad_words () =
  let _, _, nd = node () in
  let t = T_offh.create nd ~name:"t" in
  check_bool "empty" true
    (try
       ignore (T_offh.insert t "");
       false
     with Invalid_argument _ -> true);
  check_bool "uppercase" true
    (try
       ignore (T_offh.insert t "Hello");
       false
     with Invalid_argument _ -> true)

let test_trie_iter_words_sorted () =
  let _, _, nd = node () in
  let t = T_offh.create nd ~name:"t" in
  List.iter
    (fun w -> ignore (T_offh.insert t w))
    [ "banana"; "apple"; "app"; "cherry" ];
  let out = ref [] in
  T_offh.iter_words t (fun w -> out := w :: !out);
  Alcotest.(check (list string))
    "dfs yields lexicographic order"
    [ "app"; "apple"; "banana"; "cherry" ]
    (List.rev !out)

(* Cross-run persistence of whole structures, for every PI repr *)

let structure_survives_remap kind =
  let store = Store.create () in
  let m1 = Machine.create ~seed:50 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 22) in
  let r1 = Machine.open_region m1 rid in
  if kind = Repr.Based then Machine.set_based_region m1 rid;
  let nd1 = Node.make m1 ~mode:(Node.Plain [| r1 |]) ~payload:32 in
  let keys = Array.to_list (Nvmpi_experiments.Workload.keys ~n:200 ~seed:5) in
  let checksum1 =
    let open Nvmpi_experiments in
    let inst = Instance.create Instance.Btree kind nd1 ~name:"bst" in
    List.iter (fun k -> inst.Instance.insert k) keys;
    if kind = Repr.Swizzle then inst.Instance.unswizzle ();
    if kind = Repr.Swizzle then inst.Instance.swizzle ();
    let _, sum = inst.Instance.traverse () in
    if kind = Repr.Swizzle then inst.Instance.unswizzle ();
    sum
  in
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:51 ~store () in
  let r2 = Machine.open_region m2 rid in
  if kind = Repr.Based then Machine.set_based_region m2 rid;
  let nd2 = Node.make m2 ~mode:(Node.Plain [| r2 |]) ~payload:32 in
  let open Nvmpi_experiments in
  let inst = Instance.attach Instance.Btree kind nd2 ~name:"bst" in
  if kind = Repr.Swizzle then inst.Instance.swizzle ();
  let n, sum = inst.Instance.traverse () in
  n = List.length keys && sum = checksum1
  && List.for_all (fun k -> inst.Instance.search k) keys

let test_structures_survive_remap () =
  List.iter
    (fun kind ->
      check_bool (Repr.to_string kind ^ " bst survives") true
        (structure_survives_remap kind))
    [ Repr.Off_holder; Repr.Riv; Repr.Fat; Repr.Fat_cached; Repr.Based;
      Repr.Swizzle ]

(* Multi-region structures *)

let test_multi_region_roundrobin () =
  let _, m, nd = node ~regions:4 () in
  let module L = Nvmpi_structures.Linked_list.Make (Core.Riv) in
  let l = L.create nd ~name:"l" in
  for k = 1 to 20 do
    L.append l ~key:k
  done;
  check "all nodes reachable" 20 (L.length l);
  (* Consecutive nodes live in different regions. *)
  let rids = ref [] in
  L.iter l (fun ~addr ~key:_ ->
      rids := Machine.rid_of_addr_exn m addr :: !rids);
  let distinct = List.sort_uniq compare !rids in
  check "nodes spread over 4 regions" 4 (List.length distinct)

let test_multi_region_cross_pointers_work () =
  let _, _, nd = node ~regions:2 () in
  let module B = Nvmpi_structures.Bstree.Make (Core.Fat) in
  let t = B.create nd ~name:"t" in
  for k = 1 to 50 do
    ignore (B.insert t ~key:(k * 13 mod 53))
  done;
  check "size" 50 (B.size t);
  for k = 1 to 50 do
    check_bool "search" true (B.search t ~key:(k * 13 mod 53))
  done

(* Wrapped (transactional object store) mode *)

let test_wrapped_mode_structures () =
  let _, _, nd = node ~tx:true () in
  let module B = Nvmpi_structures.Bstree.Make (Core.Riv) in
  let t = B.create nd ~name:"t" in
  for k = 1 to 100 do
    ignore (B.insert t ~key:(k * 7 mod 101))
  done;
  check "size" 100 (B.size t);
  let n, _ = B.traverse t in
  check "traverse" 100 n

(* Swizzle passes over whole structures *)

let test_swizzle_list_pass () =
  let _, _, nd = node () in
  let l = L_swiz.create nd ~name:"l" in
  List.iter (fun k -> L_swiz.append l ~key:k) [ 1; 2; 3 ];
  let _, sum_before = L_swiz.traverse l in
  L_swiz.unswizzle l;
  L_swiz.swizzle l;
  let n, sum = L_swiz.traverse l in
  check "count" 3 n;
  check "checksum stable" sum_before sum

let test_swizzle_trie_pass () =
  let _, _, nd = node () in
  let t = T_swiz.create nd ~name:"t" in
  List.iter (fun w -> ignore (T_swiz.insert t w)) [ "cat"; "car"; "dog" ];
  let _, sum_before = T_swiz.traverse t in
  T_swiz.unswizzle t;
  T_swiz.swizzle t;
  check "words" 3 (T_swiz.word_count t);
  check "checksum stable" sum_before (snd (T_swiz.traverse t))

let test_swizzle_guard () =
  let _, _, nd = node () in
  let l = L_offh.create nd ~name:"l" in
  check_bool "non-swizzle repr rejected" true
    (try
       L_offh.swizzle l;
       false
     with Invalid_argument _ -> true)

(* Doubly linked list *)

module D_offh = Nvmpi_structures.Dllist.Make (Core.Off_holder)
module D_riv = Nvmpi_structures.Dllist.Make (Core.Riv)
module D_swiz = Nvmpi_structures.Dllist.Make (Core.Swizzle)

let test_dllist_push_and_walk () =
  let _, _, nd = node () in
  let d = D_offh.create nd ~name:"d" in
  D_offh.check d;
  List.iter (fun k -> D_offh.push_back d ~key:k) [ 1; 2; 3 ];
  D_offh.push_front d ~key:0;
  check "length" 4 (D_offh.length d);
  Alcotest.(check (list int)) "forward" [ 0; 1; 2; 3 ] (D_offh.to_list d);
  Alcotest.(check (list int)) "backward mirrors forward" [ 0; 1; 2; 3 ]
    (D_offh.to_list_rev d);
  D_offh.check d

let test_dllist_remove () =
  let _, _, nd = node () in
  let d = D_riv.create nd ~name:"d" in
  List.iter (fun k -> D_riv.push_back d ~key:k) [ 1; 2; 3; 4; 5 ];
  check_bool "remove middle" true (D_riv.remove d ~key:3);
  D_riv.check d;
  check_bool "remove head" true (D_riv.remove d ~key:1);
  D_riv.check d;
  check_bool "remove tail" true (D_riv.remove d ~key:5);
  D_riv.check d;
  check_bool "remove absent" false (D_riv.remove d ~key:99);
  Alcotest.(check (list int)) "rest" [ 2; 4 ] (D_riv.to_list d);
  Alcotest.(check (list int)) "rest backward" [ 2; 4 ] (D_riv.to_list_rev d);
  check_bool "remove all" true (D_riv.remove d ~key:2 && D_riv.remove d ~key:4);
  check "empty" 0 (D_riv.length d);
  D_riv.check d;
  (* Reusable after emptying. *)
  D_riv.push_back d ~key:7;
  Alcotest.(check (list int)) "reuse" [ 7 ] (D_riv.to_list d)

let test_dllist_attach_and_remap () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:70 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let nd1 = Node.make m1 ~mode:(Node.Plain [| r1 |]) ~payload:16 in
  let d1 = D_offh.create nd1 ~name:"d" in
  List.iter (fun k -> D_offh.push_back d1 ~key:k) [ 9; 8; 7 ];
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:71 ~store () in
  let r2 = Machine.open_region m2 rid in
  let nd2 = Node.make m2 ~mode:(Node.Plain [| r2 |]) ~payload:16 in
  let d2 = D_offh.attach nd2 ~name:"d" in
  D_offh.check d2;
  Alcotest.(check (list int)) "after remap" [ 9; 8; 7 ] (D_offh.to_list d2);
  Alcotest.(check (list int)) "backward after remap" [ 9; 8; 7 ]
    (D_offh.to_list_rev d2)

let test_dllist_swizzle_pass () =
  let _, _, nd = node () in
  let d = D_swiz.create nd ~name:"d" in
  List.iter (fun k -> D_swiz.push_back d ~key:k) [ 4; 5; 6 ];
  let before = D_swiz.to_list d in
  D_swiz.unswizzle d;
  D_swiz.swizzle d;
  Alcotest.(check (list int)) "stable" before (D_swiz.to_list d);
  D_swiz.check d

let prop_dllist_matches_reference =
  QCheck2.Test.make ~name:"dllist matches a reference deque" ~count:40
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (pair (int_range 0 2) (int_range 1 30)))
    (fun ops ->
      let _, _, nd = node () in
      let d = D_riv.create nd ~name:"d" in
      let reference = ref [] in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
              D_riv.push_front d ~key:k;
              reference := k :: !reference
          | 1 ->
              D_riv.push_back d ~key:k;
              reference := !reference @ [ k ]
          | _ ->
              let removed = D_riv.remove d ~key:k in
              let found = List.mem k !reference in
              if removed <> found then failwith "remove result mismatch";
              if found then begin
                let rec drop = function
                  | [] -> []
                  | x :: tl -> if x = k then tl else x :: drop tl
                in
                reference := drop !reference
              end)
        ops;
      D_riv.check d;
      D_riv.to_list d = !reference && D_riv.to_list_rev d = !reference)

(* Graph *)

module G_riv = Nvmpi_structures.Graph.Make (Core.Riv)
module G_fat = Nvmpi_structures.Graph.Make (Core.Fat)
module G_swiz = Nvmpi_structures.Graph.Make (Core.Swizzle)

let test_graph_basics () =
  let _, _, nd = node () in
  let g = G_riv.create nd ~name:"g" in
  check_bool "v1" true (G_riv.add_vertex g ~key:1);
  check_bool "v2" true (G_riv.add_vertex g ~key:2);
  check_bool "v3" true (G_riv.add_vertex g ~key:3);
  check_bool "dup vertex" false (G_riv.add_vertex g ~key:1);
  G_riv.add_edge g ~src:1 ~dst:2;
  G_riv.add_edge g ~src:1 ~dst:3;
  G_riv.add_edge g ~src:2 ~dst:3;
  check "vertices" 3 (G_riv.vertex_count g);
  check "edges" 3 (G_riv.edge_count g);
  Alcotest.(check (list int)) "successors newest-first" [ 3; 2 ]
    (G_riv.successors g ~key:1);
  check "reachable from 1" 3 (G_riv.reachable g ~from:1);
  check "reachable from 3" 1 (G_riv.reachable g ~from:3);
  check_bool "edge to missing vertex" true
    (try
       G_riv.add_edge g ~src:1 ~dst:99;
       false
     with Failure _ -> true)

let test_graph_cycle_bfs_terminates () =
  let _, _, nd = node () in
  let g = G_riv.create nd ~name:"g" in
  List.iter (fun k -> ignore (G_riv.add_vertex g ~key:k)) [ 1; 2; 3 ];
  G_riv.add_edge g ~src:1 ~dst:2;
  G_riv.add_edge g ~src:2 ~dst:3;
  G_riv.add_edge g ~src:3 ~dst:1;
  check "cycle reachable" 3 (G_riv.reachable g ~from:2);
  let n, _ = G_riv.traverse g in
  check "traverse counts vertices+edges" 6 n

let test_graph_cross_region () =
  (* Round-robin over 3 regions: edges constantly cross regions. *)
  let _, _, nd = node ~regions:3 () in
  let g = G_fat.create nd ~name:"g" in
  for k = 1 to 30 do
    ignore (G_fat.add_vertex g ~key:k)
  done;
  for k = 1 to 29 do
    G_fat.add_edge g ~src:k ~dst:(k + 1)
  done;
  check "chain reachable" 30 (G_fat.reachable g ~from:1);
  check "edges" 29 (G_fat.edge_count g)

let test_graph_survives_remap () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:80 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let nd1 = Node.make m1 ~mode:(Node.Plain [| r1 |]) ~payload:16 in
  let g1 = G_riv.create nd1 ~name:"g" in
  List.iter (fun k -> ignore (G_riv.add_vertex g1 ~key:k)) [ 1; 2; 3; 4 ];
  List.iter
    (fun (s, d) -> G_riv.add_edge g1 ~src:s ~dst:d)
    [ (1, 2); (2, 3); (3, 4); (4, 1); (1, 3) ];
  let sum1 = snd (G_riv.traverse g1) in
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:81 ~store () in
  let r2 = Machine.open_region m2 rid in
  let nd2 = Node.make m2 ~mode:(Node.Plain [| r2 |]) ~payload:16 in
  let g2 = G_riv.attach nd2 ~name:"g" in
  check "vertices survive" 4 (G_riv.vertex_count g2);
  check "edges survive" 5 (G_riv.edge_count g2);
  check "checksum stable" sum1 (snd (G_riv.traverse g2));
  check "reachability stable" 4 (G_riv.reachable g2 ~from:1)

let test_graph_swizzle_pass () =
  let _, _, nd = node () in
  let g = G_swiz.create nd ~name:"g" in
  List.iter (fun k -> ignore (G_swiz.add_vertex g ~key:k)) [ 1; 2; 3 ];
  G_swiz.add_edge g ~src:1 ~dst:2;
  G_swiz.add_edge g ~src:2 ~dst:3;
  G_swiz.add_edge g ~src:1 ~dst:3;
  let before = snd (G_swiz.traverse g) in
  G_swiz.unswizzle g;
  G_swiz.swizzle g;
  check "checksum stable" before (snd (G_swiz.traverse g));
  check "reachable" 3 (G_swiz.reachable g ~from:1)

let prop_graph_matches_reference =
  QCheck2.Test.make ~name:"graph reachability matches a reference BFS"
    ~count:25
    QCheck2.Gen.(
      pair (int_range 2 15)
        (list_size (int_range 1 40) (pair (int_range 1 15) (int_range 1 15))))
    (fun (nv, edges) ->
      let _, _, nd = node () in
      let g = G_riv.create nd ~name:"g" in
      for k = 1 to nv do
        ignore (G_riv.add_vertex g ~key:k)
      done;
      let edges =
        List.filter (fun (s, d) -> s <= nv && d <= nv) edges
      in
      List.iter (fun (s, d) -> G_riv.add_edge g ~src:s ~dst:d) edges;
      (* Host-side reference BFS. *)
      let adj = Array.make (nv + 1) [] in
      List.iter (fun (s, d) -> adj.(s) <- d :: adj.(s)) edges;
      let reference from =
        let seen = Array.make (nv + 1) false in
        let q = Queue.create () in
        seen.(from) <- true;
        Queue.push from q;
        let n = ref 0 in
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          incr n;
          List.iter
            (fun d ->
              if not seen.(d) then begin
                seen.(d) <- true;
                Queue.push d q
              end)
            adj.(v)
        done;
        !n
      in
      List.for_all
        (fun from -> G_riv.reachable g ~from = reference from)
        (List.init nv (fun i -> i + 1)))

(* B+ tree *)

module Bp_riv = Nvmpi_structures.Bplus.Make (Core.Riv)
module Bp_offh = Nvmpi_structures.Bplus.Make (Core.Off_holder)
module Bp_swiz = Nvmpi_structures.Bplus.Make (Core.Swizzle)

let test_bplus_basics () =
  let _, _, nd = node () in
  let t = Bp_riv.create nd ~name:"bp" ~order:4 () in
  Bp_riv.check t;
  check_bool "empty lookup" true (Bp_riv.lookup t ~key:1 = None);
  for k = 1 to 100 do
    Bp_riv.insert t ~key:(k * 17 mod 101) ~value:(k * 17 mod 101 * 2);
    Bp_riv.check t
  done;
  check "size" 100 (Bp_riv.size t);
  check_bool "depth grew" true (Bp_riv.depth t > 1);
  for k = 1 to 100 do
    let key = k * 17 mod 101 in
    check_bool "found" true (Bp_riv.lookup t ~key = Some (key * 2))
  done;
  check_bool "absent" true (Bp_riv.lookup t ~key:999 = None);
  (* Overwrite. *)
  Bp_riv.insert t ~key:50 ~value:777;
  check_bool "overwrite" true (Bp_riv.lookup t ~key:50 = Some 777);
  check "size unchanged" 100 (Bp_riv.size t)

let test_bplus_sorted_iteration_and_range () =
  let _, _, nd = node () in
  let t = Bp_offh.create nd ~name:"bp" ~order:5 () in
  let keys = [ 50; 10; 90; 30; 70; 20; 80; 40; 60; 100 ] in
  List.iter (fun k -> Bp_offh.insert t ~key:k ~value:(-k)) keys;
  Bp_offh.check t;
  Alcotest.(check (list (pair int int)))
    "to_list ascending"
    (List.map (fun k -> (k, -k)) (List.sort compare keys))
    (Bp_offh.to_list t);
  Alcotest.(check (list (pair int int)))
    "range [25,75]"
    [ (30, -30); (40, -40); (50, -50); (60, -60); (70, -70) ]
    (Bp_offh.range t ~lo:25 ~hi:75);
  Alcotest.(check (option (pair int int)))
    "min binding" (Some (10, -10)) (Bp_offh.min_binding t);
  Alcotest.(check (list (pair int int))) "empty range" []
    (Bp_offh.range t ~lo:101 ~hi:200)

let test_bplus_delete () =
  let _, _, nd = node () in
  let t = Bp_riv.create nd ~name:"bp" ~order:4 () in
  for k = 1 to 60 do
    Bp_riv.insert t ~key:k ~value:k
  done;
  check_bool "delete present" true (Bp_riv.delete t ~key:30);
  check_bool "delete absent" false (Bp_riv.delete t ~key:30);
  Bp_riv.check t;
  check "size after delete" 59 (Bp_riv.size t);
  check_bool "gone" true (Bp_riv.lookup t ~key:30 = None);
  check_bool "neighbours intact" true
    (Bp_riv.lookup t ~key:29 = Some 29 && Bp_riv.lookup t ~key:31 = Some 31)

let test_bplus_survives_remap () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:85 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 21) in
  let r1 = Machine.open_region m1 rid in
  let nd1 = Node.make m1 ~mode:(Node.Plain [| r1 |]) ~payload:0 in
  let t1 = Bp_offh.create nd1 ~name:"bp" ~order:4 () in
  for k = 1 to 200 do
    Bp_offh.insert t1 ~key:k ~value:(k * 3)
  done;
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:86 ~store () in
  let r2 = Machine.open_region m2 rid in
  let nd2 = Node.make m2 ~mode:(Node.Plain [| r2 |]) ~payload:0 in
  let t2 = Bp_offh.attach nd2 ~name:"bp" in
  Bp_offh.check t2;
  check "size survives" 200 (Bp_offh.size t2);
  check_bool "values survive" true (Bp_offh.lookup t2 ~key:123 = Some 369);
  (* Keep inserting in the new run; splits still work. *)
  for k = 201 to 300 do
    Bp_offh.insert t2 ~key:k ~value:(k * 3)
  done;
  Bp_offh.check t2;
  check "extended" 300 (Bp_offh.size t2)

let test_bplus_swizzle_pass () =
  let _, _, nd = node () in
  let t = Bp_swiz.create nd ~name:"bp" ~order:4 () in
  for k = 1 to 80 do
    Bp_swiz.insert t ~key:k ~value:(k + 1000)
  done;
  let before = Bp_swiz.to_list t in
  Bp_swiz.unswizzle t;
  Bp_swiz.swizzle t;
  Bp_swiz.check t;
  Alcotest.(check (list (pair int int))) "stable" before (Bp_swiz.to_list t)

let prop_bplus_range_matches_filter =
  QCheck2.Test.make ~name:"b+ tree range queries match list filtering"
    ~count:30
    QCheck2.Gen.(
      tup3
        (list_size (int_range 1 120) (int_range 1 200))
        (int_range 0 210) (int_range 0 210))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let _, _, nd = node () in
      let t = Bp_riv.create nd ~name:"bp" ~order:4 () in
      List.iter (fun k -> Bp_riv.insert t ~key:k ~value:(k * 2)) keys;
      let expected =
        List.sort_uniq compare keys
        |> List.filter (fun k -> k >= lo && k <= hi)
        |> List.map (fun k -> (k, k * 2))
      in
      Bp_riv.range t ~lo ~hi = expected)

let prop_bplus_matches_map =
  QCheck2.Test.make ~name:"b+ tree matches a reference map" ~count:30
    QCheck2.Gen.(
      pair (int_range 3 9)
        (list_size (int_range 1 250)
           (pair (int_range 0 2) (int_range 1 120))))
    (fun (order, ops) ->
      let _, _, nd = node () in
      let t = Bp_riv.create nd ~name:"bp" ~order () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 | 1 ->
              Bp_riv.insert t ~key:k ~value:(k * 7);
              Hashtbl.replace reference k (k * 7)
          | _ ->
              let a = Bp_riv.delete t ~key:k in
              let b = Hashtbl.mem reference k in
              Hashtbl.remove reference k;
              if a <> b then failwith "delete mismatch")
        ops;
      Bp_riv.check t;
      Bp_riv.size t = Hashtbl.length reference
      && Hashtbl.fold
           (fun k v acc -> acc && Bp_riv.lookup t ~key:k = Some v)
           reference true
      && Bp_riv.to_list t
         = List.sort compare
             (Hashtbl.fold (fun k v acc -> (k, v) :: acc) reference []))

(* Edge cases *)

let test_empty_structures () =
  let _, _, nd = node () in
  let l = L_norm.create nd ~name:"l" in
  check_bool "empty find" false (L_norm.find l ~key:1);
  let h = H_riv.create nd ~name:"h" ~buckets:4 in
  check "empty hashset traverse" 0 (fst (H_riv.traverse h));
  check_bool "empty contains" false (H_riv.contains h ~key:1);
  let t = B_riv.create nd ~name:"b" in
  check "empty bst size" 0 (B_riv.size t);
  check "empty bst depth" 0 (B_riv.depth t);
  let tr = T_offh.create nd ~name:"t" in
  check "empty trie words" 0 (T_offh.word_count tr);
  check "empty trie nodes" 0 (T_offh.node_count tr);
  let d = D_riv.create nd ~name:"d" in
  Alcotest.(check (list int)) "empty dllist" [] (D_riv.to_list d);
  check_bool "empty dllist remove" false (D_riv.remove d ~key:1);
  let bp = Bp_riv.create nd ~name:"bp" () in
  check "empty bplus size" 0 (Bp_riv.size bp);
  Alcotest.(check (option (pair int int))) "empty min" None
    (Bp_riv.min_binding bp)

let test_trie_long_and_single () =
  let _, _, nd = node () in
  let t = T_offh.create nd ~name:"t" in
  ignore (T_offh.insert t "a");
  ignore (T_offh.insert t "abcdefghijklmnopqrstuvwxyz");
  check "two words" 2 (T_offh.word_count t);
  check_bool "single letter" true (T_offh.contains t "a");
  check_bool "alphabet" true (T_offh.contains t "abcdefghijklmnopqrstuvwxyz");
  (* root node + one node per letter of the alphabet *)
  check "nodes = root + 26" 27 (T_offh.node_count t)

let test_bplus_minimum_order () =
  let _, _, nd = node () in
  let t = Bp_riv.create nd ~name:"bp" ~order:3 () in
  for k = 1 to 50 do
    Bp_riv.insert t ~key:k ~value:k;
    Bp_riv.check t
  done;
  check "all present at order 3" 50 (Bp_riv.size t);
  check_bool "bad order rejected" true
    (try
       ignore (Bp_riv.create nd ~name:"bp2" ~order:2 ());
       false
     with Invalid_argument _ -> true)

let test_payload_zero () =
  (* Structures work with no payload at all. *)
  let _, _, nd = node ~payload:0 () in
  let l = L_norm.create nd ~name:"l" in
  List.iter (fun k -> L_norm.append l ~key:k) [ 1; 2; 3 ];
  let n, sum = L_norm.traverse l in
  check "count" 3 n;
  check "checksum = key sum" 6 sum

(* Fault injection: corrupting a stored pointer must surface as a fault
   or an exception, never as a silent wrong traversal. *)

let test_corrupt_normal_pointer_faults () =
  let _, m, nd = node () in
  let l = L_norm.create nd ~name:"l" in
  List.iter (fun k -> L_norm.append l ~key:k) [ 1; 2; 3; 4 ];
  (* Overwrite the second node's next-slot with a wild absolute address
     (unmapped virtual memory). *)
  let second = ref Core.Kinds.Vaddr.null in
  L_norm.iter l (fun ~addr ~key -> if key = 2 then second := addr);
  Core.Memsim.store64 m.Machine.mem !second 0x1234_5678_0000;
  check_bool "traverse faults on wild pointer" true
    (try
       ignore (L_norm.traverse l);
       false
     with Core.Memsim.Fault _ -> true)

let test_corrupt_riv_pointer_detected () =
  let _, m, nd = node () in
  let module L = Nvmpi_structures.Linked_list.Make (Core.Riv) in
  let l = L.create nd ~name:"l" in
  List.iter (fun k -> L.append l ~key:k) [ 1; 2; 3 ];
  let second = ref Core.Kinds.Vaddr.null in
  L.iter l (fun ~addr ~key -> if key = 2 then second := addr);
  (* A packed RIV value naming a region that is not open. *)
  Core.Memsim.store64 m.Machine.mem !second
    (Core.Layout.riv_pack m.Machine.layout ~rid:999 ~offset:4096);
  check_bool "riv names the bogus region" true
    (try
       ignore (L.traverse l);
       false
     with Core.Nvspace.Unknown_region { rid } -> (rid :> int) = 999)

let test_corrupt_payload_changes_checksum () =
  let _, m, nd = node ~payload:32 () in
  let l = L_norm.create nd ~name:"l" in
  List.iter (fun k -> L_norm.append l ~key:k) [ 1; 2; 3 ];
  let _, sum_before = L_norm.traverse l in
  let second = ref Core.Kinds.Vaddr.null in
  L_norm.iter l (fun ~addr ~key -> if key = 2 then second := addr);
  (* Flip one payload byte (payload starts after next-slot and key). *)
  let payload_addr = Core.Kinds.Vaddr.add !second (8 + 8) in
  let b = Core.Memsim.load8 m.Machine.mem payload_addr in
  Core.Memsim.store8 m.Machine.mem payload_addr (b lxor 0xFF);
  let _, sum_after = L_norm.traverse l in
  check_bool "checksum detects payload corruption" true
    (sum_before <> sum_after)

(* Properties *)

(* Bstree removal: leaf, one-child, two-child (root and interior). *)

let expected_checksum ?(payload = 32) keys =
  List.fold_left
    (fun acc k -> acc + k + Node.payload_checksum ~payload ~seed:k)
    0 keys

let test_bst_remove_cases () =
  let _, _, nd = node () in
  let t = B_riv.create nd ~name:"t" in
  let keys = [ 50; 30; 70; 20; 40; 60; 80; 35; 45 ] in
  List.iter (fun k -> ignore (B_riv.insert t ~key:k)) keys;
  check_bool "absent" false (B_riv.remove t ~key:99);
  check_bool "leaf" true (B_riv.remove t ~key:20);
  check_bool "two children (interior)" true (B_riv.remove t ~key:40);
  check_bool "one child" true (B_riv.remove t ~key:30);
  check_bool "two children (root)" true (B_riv.remove t ~key:50);
  check_bool "removed gone" false (B_riv.search t ~key:50);
  let live = [ 35; 45; 60; 70; 80 ] in
  List.iter (fun k -> check_bool "survivor" true (B_riv.search t ~key:k)) live;
  check "size" 5 (B_riv.size t);
  let n, sum = B_riv.traverse t in
  check "traverse count" 5 n;
  check "traverse checksum" (expected_checksum live) sum;
  check_bool "re-insert after remove" true (B_riv.insert t ~key:50);
  check "size after re-insert" 6 (B_riv.size t)

let prop_bst_remove_matches_set =
  QCheck2.Test.make ~name:"bst insert/remove matches a reference set"
    ~count:40
    QCheck2.Gen.(list_size (int_range 1 150) (int_range 1 40))
    (fun keys ->
      let _, _, nd = node () in
      let t = B_offh.create nd ~name:"t" in
      let reference = Hashtbl.create 64 in
      List.iteri
        (fun i k ->
          if i mod 3 = 2 then begin
            let present = Hashtbl.mem reference k in
            Hashtbl.remove reference k;
            if B_offh.remove t ~key:k <> present then
              failwith "remove result mismatch"
          end
          else begin
            let fresh = not (Hashtbl.mem reference k) in
            Hashtbl.replace reference k ();
            if B_offh.insert t ~key:k <> fresh then
              failwith "insert result mismatch"
          end)
        keys;
      B_offh.size t = Hashtbl.length reference
      && Hashtbl.fold
           (fun k () acc -> acc && B_offh.search t ~key:k)
           reference true
      && not (B_offh.search t ~key:0))

(* Durable (link-and-persist) mode: docs/DURABLE.md. *)

(* The same insert/remove history must yield identical observable state
   under both disciplines — durability actions never change contents. *)
let test_durable_matches_eager () =
  let drive_bst nd =
    let t = B_riv.create nd ~name:"t" in
    List.iter (fun k -> ignore (B_riv.insert t ~key:k)) [ 5; 3; 9; 1; 4; 7 ];
    List.iter (fun k -> ignore (B_riv.remove t ~key:k)) [ 3; 9 ];
    B_riv.traverse t
  in
  let drive_hash nd =
    let h = H_riv.create nd ~name:"h" ~buckets:4 in
    List.iter (fun k -> ignore (H_riv.add h ~key:k)) [ 2; 6; 10; 14; 18 ];
    List.iter (fun k -> ignore (H_riv.remove h ~key:k)) [ 6; 18 ];
    H_riv.traverse h
  in
  let _, _, nd_e = node ~durability:Durable.Eager () in
  let _, _, nd_t = node ~durability:Durable.Traverse () in
  Alcotest.(check (pair int int))
    "bstree digests equal" (drive_bst nd_e) (drive_bst nd_t);
  let _, _, nd_e = node ~durability:Durable.Eager () in
  let _, _, nd_t = node ~durability:Durable.Traverse () in
  Alcotest.(check (pair int int))
    "hashset digests equal" (drive_hash nd_e) (drive_hash nd_t)

(* Traversal freedom + window accounting: reads flush nothing; each
   mutation pays a bounded window; marks never stay set. *)
let test_durable_flush_accounting () =
  let _, m, nd = node ~durability:Durable.Traverse () in
  let h = H_riv.create nd ~name:"h" ~buckets:4 in
  List.iter (fun k -> ignore (H_riv.add h ~key:k)) [ 1; 5; 9; 13; 17; 21 ];
  let counter name snap = Option.value ~default:0 (List.assoc_opt name snap) in
  let metrics = Machine.metrics m in
  let before = Metrics.snapshot metrics in
  for k = 1 to 24 do
    ignore (H_riv.contains h ~key:k)
  done;
  let reads = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  check "reads flush nothing" 0 (counter "timing.flushes" reads);
  check "reads fence nothing" 0 (counter "timing.fences" reads);
  check_bool "traversal loads counted" true
    (counter "dur.traversal_loads" reads > 0);
  let before = Metrics.snapshot metrics in
  ignore (H_riv.add h ~key:2);
  ignore (H_riv.remove h ~key:2);
  let writes = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  check_bool "windows flush" true (counter "dur.window_flushes" writes > 0);
  check_bool "windows fence" true (counter "timing.fences" writes > 0);
  let snap = Metrics.snapshot metrics in
  check "marks all cleared" (counter "dur.marks_set" snap)
    (counter "dur.marks_cleared" snap);
  check "no helper flush without a crash" 0 (counter "dur.helper_flushes" snap)

(* Eager-mode structures must not even register the dur.* counters —
   the guarantee that keeps BENCH_seed.json byte-identical. *)
let test_eager_registers_no_dur_counters () =
  let _, m, nd = node ~durability:Durable.Eager () in
  let h = H_riv.create nd ~name:"h" ~buckets:4 in
  List.iter (fun k -> ignore (H_riv.add h ~key:k)) [ 1; 5; 9 ];
  ignore (H_riv.remove h ~key:5);
  ignore (H_riv.contains h ~key:1);
  let snap = Metrics.snapshot (Machine.metrics m) in
  check_bool "no dur.* counter registered" true
    (List.for_all
       (fun (name, _) -> not (String.length name >= 4 && String.sub name 0 4 = "dur."))
       snap)

let prop_bst_matches_set_semantics =
  QCheck2.Test.make ~name:"bst matches a reference set" ~count:40
    QCheck2.Gen.(list_size (int_range 1 150) (int_range 1 80))
    (fun keys ->
      let _, _, nd = node () in
      let t = B_riv.create nd ~name:"t" in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun k ->
          let fresh = not (Hashtbl.mem reference k) in
          Hashtbl.replace reference k ();
          let inserted = B_riv.insert t ~key:k in
          if inserted <> fresh then failwith "insert result mismatch")
        keys;
      B_riv.size t = Hashtbl.length reference
      && Hashtbl.fold (fun k () acc -> acc && B_riv.search t ~key:k) reference true
      && not (B_riv.search t ~key:0))

let prop_hashset_matches_set_semantics =
  QCheck2.Test.make ~name:"hashset matches a reference set" ~count:40
    QCheck2.Gen.(list_size (int_range 1 150) (int_range 1 80))
    (fun keys ->
      let _, _, nd = node () in
      let h = H_riv.create nd ~name:"h" ~buckets:8 in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun k ->
          Hashtbl.replace reference k ();
          ignore (H_riv.add h ~key:k))
        keys;
      H_riv.size h = Hashtbl.length reference
      && Hashtbl.fold
           (fun k () acc -> acc && H_riv.contains h ~key:k)
           reference true)

let prop_trie_matches_reference =
  QCheck2.Test.make ~name:"trie matches a reference set of words" ~count:30
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 10_000))
    (fun keys ->
      let _, _, nd = node () in
      let t = T_offh.create nd ~name:"t" in
      let words = List.map Nvmpi_experiments.Workload.key_word keys in
      let reference = List.sort_uniq compare words in
      List.iter (fun w -> ignore (T_offh.insert t w)) words;
      T_offh.word_count t = List.length reference
      && List.for_all (fun w -> T_offh.contains t w) reference)

let () =
  Alcotest.run "structures"
    [
      ( "list",
        [
          Alcotest.test_case "append + traverse" `Quick
            test_list_append_traverse;
          Alcotest.test_case "push_front" `Quick test_list_push_front;
          Alcotest.test_case "find" `Quick test_list_find;
          Alcotest.test_case "attach" `Quick test_list_attach_same_run;
          Alcotest.test_case "attach kind mismatch" `Quick
            test_list_attach_wrong_kind;
          Alcotest.test_case "payload checksum" `Quick
            test_list_payload_checksum;
        ] );
      ( "bstree",
        [
          Alcotest.test_case "insert + search" `Quick test_bst_insert_search;
          Alcotest.test_case "traverse counts" `Quick test_bst_traverse_counts;
          Alcotest.test_case "insert_count" `Quick test_bst_insert_count;
          Alcotest.test_case "remove" `Quick test_bst_remove_cases;
        ] );
      ( "durable",
        [
          Alcotest.test_case "traverse matches eager" `Quick
            test_durable_matches_eager;
          Alcotest.test_case "flush accounting" `Quick
            test_durable_flush_accounting;
          Alcotest.test_case "eager registers no dur counters" `Quick
            test_eager_registers_no_dur_counters;
        ] );
      ( "hashset",
        [
          Alcotest.test_case "basics" `Quick test_hashset_basics;
          Alcotest.test_case "chain order" `Quick test_hashset_chain_order;
        ] );
      ( "trie",
        [
          Alcotest.test_case "insert + contains" `Quick
            test_trie_insert_contains;
          Alcotest.test_case "bad words rejected" `Quick
            test_trie_rejects_bad_words;
          Alcotest.test_case "words sorted" `Quick test_trie_iter_words_sorted;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "all PI reprs survive remap" `Slow
            test_structures_survive_remap;
        ] );
      ( "multi-region",
        [
          Alcotest.test_case "round-robin placement" `Quick
            test_multi_region_roundrobin;
          Alcotest.test_case "cross-region pointers" `Quick
            test_multi_region_cross_pointers_work;
        ] );
      ( "wrapped",
        [ Alcotest.test_case "objstore-backed bst" `Quick
            test_wrapped_mode_structures ] );
      ( "swizzle",
        [
          Alcotest.test_case "list pass" `Quick test_swizzle_list_pass;
          Alcotest.test_case "trie pass" `Quick test_swizzle_trie_pass;
          Alcotest.test_case "guard" `Quick test_swizzle_guard;
        ] );
      ( "dllist",
        [
          Alcotest.test_case "push + walk both ways" `Quick
            test_dllist_push_and_walk;
          Alcotest.test_case "remove" `Quick test_dllist_remove;
          Alcotest.test_case "attach + remap" `Quick
            test_dllist_attach_and_remap;
          Alcotest.test_case "swizzle pass" `Quick test_dllist_swizzle_pass;
          QCheck_alcotest.to_alcotest prop_dllist_matches_reference;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "cycles terminate" `Quick
            test_graph_cycle_bfs_terminates;
          Alcotest.test_case "cross-region edges" `Quick
            test_graph_cross_region;
          Alcotest.test_case "survives remap" `Quick test_graph_survives_remap;
          Alcotest.test_case "swizzle pass" `Quick test_graph_swizzle_pass;
          QCheck_alcotest.to_alcotest prop_graph_matches_reference;
        ] );
      ( "bplus",
        [
          Alcotest.test_case "basics + splits" `Quick test_bplus_basics;
          Alcotest.test_case "sorted iteration + range" `Quick
            test_bplus_sorted_iteration_and_range;
          Alcotest.test_case "delete" `Quick test_bplus_delete;
          Alcotest.test_case "survives remap" `Quick test_bplus_survives_remap;
          Alcotest.test_case "swizzle pass" `Quick test_bplus_swizzle_pass;
          QCheck_alcotest.to_alcotest prop_bplus_matches_map;
          QCheck_alcotest.to_alcotest prop_bplus_range_matches_filter;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty structures" `Quick test_empty_structures;
          Alcotest.test_case "trie extremes" `Quick test_trie_long_and_single;
          Alcotest.test_case "bplus minimum order" `Quick
            test_bplus_minimum_order;
          Alcotest.test_case "zero payload" `Quick test_payload_zero;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "wild absolute pointer faults" `Quick
            test_corrupt_normal_pointer_faults;
          Alcotest.test_case "corrupt RIV value detected" `Quick
            test_corrupt_riv_pointer_detected;
          Alcotest.test_case "payload corruption detected" `Quick
            test_corrupt_payload_changes_checksum;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bst_matches_set_semantics;
          QCheck_alcotest.to_alcotest prop_bst_remove_matches_set;
          QCheck_alcotest.to_alcotest prop_hashset_matches_set_semantics;
          QCheck_alcotest.to_alcotest prop_trie_matches_reference;
        ] );
    ]
