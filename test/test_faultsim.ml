module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim
module Timing = Core.Timing
module Vaddr = Core.Kinds.Vaddr
module Metrics = Core.Metrics
module Objstore = Nvmpi_tx.Objstore
module Tx = Nvmpi_tx.Tx
open Nvmpi_faultsim

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let line = 64

let fresh_machine ?(seed = 1) () =
  let store = Store.create () in
  let m = Machine.create ~seed ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
  (m, r)

(* Durability state machine ------------------------------------------- *)

let snap_of b lo = Events.Flush { lo; snap = b }

let test_image_store_not_durable () =
  let img = Image.create ~base:0 ~size:256 ~line ~init:(Bytes.make 256 '\000') in
  Image.apply img (Events.Store { addr = 8; size = 8 });
  check "store alone leaves image untouched" 0
    (Char.code (Bytes.get (Image.image img) 8));
  check "dirty bytes are volatile" 8 (Image.volatile_bytes img);
  check "nothing durable yet" 0 (Image.durable_bytes img)

let test_image_flush_needs_fence () =
  let img = Image.create ~base:0 ~size:256 ~line ~init:(Bytes.make 256 '\000') in
  Image.apply img (Events.Store { addr = 0; size = 8 });
  Image.apply img (snap_of (Bytes.make line 'x') 0);
  check "flushed-not-fenced image untouched" 0
    (Char.code (Bytes.get (Image.image img) 0));
  check_bool "staged bytes still volatile" true (Image.volatile_bytes img > 0);
  Image.apply img Events.Fence;
  check "fence lands the line snapshot" (Char.code 'x')
    (Char.code (Bytes.get (Image.image img) 0));
  (* durable_bytes counts newly durable bytes — the 8 stored ones; the
     rest of the line was already durable from the init image. *)
  check "stored bytes are durable" 8 (Image.durable_bytes img);
  check "nothing volatile after fence" 0 (Image.volatile_bytes img)

let test_image_snapshot_semantics () =
  (* The fence persists the line contents at flush time, not the last
     store: a store after the flush stays volatile. *)
  let img = Image.create ~base:0 ~size:256 ~line ~init:(Bytes.make 256 '\000') in
  Image.apply img (Events.Store { addr = 0; size = 8 });
  Image.apply img (snap_of (Bytes.make line 'a') 0);
  Image.apply img (Events.Store { addr = 0; size = 8 });
  Image.apply img Events.Fence;
  check "post-flush store not included" (Char.code 'a')
    (Char.code (Bytes.get (Image.image img) 0));
  check_bool "post-flush store is volatile again" true
    (Image.volatile_bytes img > 0)

let test_image_pending_lines () =
  let img = Image.create ~base:0 ~size:1024 ~line ~init:(Bytes.make 1024 '\000') in
  Image.apply img (Events.Store { addr = 10; size = 4 });
  Image.apply img (Events.Store { addr = 300; size = 4 });
  (match Image.pending_lines img with
  | [ 0; 256 ] -> ()
  | l ->
      Alcotest.failf "pending lines [%s]"
        (String.concat ";" (List.map string_of_int l)));
  Image.reset_volatile img;
  check "reset drops pending" 0 (List.length (Image.pending_lines img));
  check "reset keeps durable image size" 1024 (Bytes.length (Image.image img))

let test_image_out_of_range_ignored () =
  let img =
    Image.create ~base:4096 ~size:256 ~line ~init:(Bytes.make 256 '\000')
  in
  Image.apply img (Events.Store { addr = 0; size = 8 });
  Image.apply img (snap_of (Bytes.make line 'z') 0);
  Image.apply img Events.Fence;
  check "events outside the region do nothing" 0 (Image.durable_bytes img);
  check "image unchanged" 0 (Char.code (Bytes.get (Image.image img) 0))

(* Tracker ------------------------------------------------------------- *)

let test_tracker_records_and_materializes () =
  let m, r = fresh_machine () in
  let a = Region.alloc r 64 in
  Machine.store64 m a 111;
  Timing.flush m.Machine.timing ~addr:(a :> int);
  Timing.fence m.Machine.timing;
  let tr = Tracker.attach m in
  Tracker.arm tr;
  check "log empty at arm" 0 (Tracker.seq tr);
  Machine.store64 m a 222;
  check_bool "store recorded" true (Tracker.seq tr > 0);
  (* Not flushed: the durable image still holds the pre-arm value. *)
  let img = Tracker.crash_image tr (Region.rid r) in
  check "durable image holds pre-crash value" 111
    (Bytes.get_int64_le img (Region.offset_of_addr r a) |> Int64.to_int);
  Tracker.checkpoint tr;
  let img = Tracker.crash_image tr (Region.rid r) in
  check "checkpoint makes the store durable" 222
    (Bytes.get_int64_le img (Region.offset_of_addr r a) |> Int64.to_int)

let test_tracker_crash_hook_reverts_memory () =
  let m, r = fresh_machine () in
  let a = Region.alloc r 64 in
  Machine.store64 m a 7;
  let tr = Tracker.attach m in
  Tracker.arm tr;
  Machine.store64 m a 8;
  check "live memory sees the new value" 8 (Machine.load64 m a);
  Tracker.apply_crash tr;
  check "crash reverts unflushed store" 7 (Machine.load64 m a);
  (* After the crash the dropped store is gone from the volatile sets
     too: a checkpoint immediately after must be a no-op. *)
  check "nothing volatile after crash" 0 (Tracker.volatile_bytes tr)

let test_simulate_crash_with_tracker () =
  let m, r = fresh_machine () in
  let os = Objstore.create m r () in
  let cell = Objstore.alloc os ~size:8 () in
  let tx = Tx.create os in
  Tx.begin_tx tx;
  Tx.store64 tx cell 1;
  Tx.commit tx;
  let tr = Tracker.attach m in
  Tracker.arm tr;
  Tx.begin_tx tx;
  Tx.store64 tx cell 2;
  (* Power fails before commit: with a tracker attached, simulate_crash
     reverts memory to durable bytes (full cache loss), and the undo
     record persisted by store64 rolls the cell back on attach. *)
  Tx.simulate_crash tx;
  let os' = Objstore.attach m r in
  check "undo log drained by attach" 0 (Objstore.log_entries os');
  check "in-flight tx rolled back" 1 (Memsim.load64 m.Machine.mem cell)

let test_attached_unarmed_is_cycle_neutral () =
  let run ~with_tracker =
    let m, r = fresh_machine ~seed:3 () in
    if with_tracker then ignore (Tracker.attach m : Tracker.t);
    let a = Region.alloc r 256 in
    for i = 0 to 31 do
      Machine.store64 m (Vaddr.add a (8 * (i mod 8))) i
    done;
    Timing.flush m.Machine.timing ~addr:(a :> int);
    Timing.fence m.Machine.timing;
    for i = 0 to 31 do
      ignore (Machine.load64 m (Vaddr.add a (8 * (i mod 8))))
    done;
    Machine.cycles m
  in
  check "attached tracker leaves cycle accounting unchanged"
    (run ~with_tracker:false) (run ~with_tracker:true)

(* Replay -------------------------------------------------------------- *)

let test_replay_matches_tracker () =
  let m, r = fresh_machine () in
  let a = Region.alloc r 64 in
  let tr = Tracker.attach m in
  Tracker.arm tr;
  Machine.store64 m a 41;
  Tracker.checkpoint tr;
  Machine.store64 m a 42;
  let cur = Replay.create tr in
  Replay.advance cur ~upto:(Tracker.seq tr);
  let _, size, img = List.hd (Replay.images cur) in
  check "replayed image size" (Region.size r) size;
  check "replay at log end equals live durable image" 41
    (Bytes.get_int64_le img (Region.offset_of_addr r a) |> Int64.to_int);
  Alcotest.check_raises "cursor cannot move backwards"
    (Invalid_argument "Replay.advance: cursor only moves forward") (fun () ->
      Replay.advance cur ~upto:0)

(* Sweep --------------------------------------------------------------- *)

let test_sweep_structure_clean () =
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:11 ~mode:Sweep.After_fences
      (Scenario.structure_scenario ~keys:8 Nvmpi_experiments.Instance.List
         Core.Repr.Riv)
  in
  check_bool "at least the endpoints and one fence" true (r.Sweep.points >= 3);
  check "no violations on a correct structure" 0
    (List.length r.Sweep.failures);
  check_bool "scenario verdict ok" true (Sweep.scenario_ok r);
  check_bool "crash points counted" true
    (Metrics.get metrics "faultsim.crash_points" >= r.Sweep.points)

let test_sweep_catches_fence_dropper () =
  let metrics = Metrics.create () in
  let report =
    Sweep.run ~metrics ~seed:11 ~mode:Sweep.Exhaustive (Scenario.selftests ())
  in
  List.iter
    (fun r ->
      check_bool "double is marked expect_fail" true r.Sweep.expect_fail;
      check_bool "missing fences produce violations" true
        (r.Sweep.failures <> []);
      check_bool "inverted verdict passes" true (Sweep.scenario_ok r))
    report.Sweep.scenarios;
  check_bool "report ok (doubles caught)" true (Sweep.ok report)

let test_sweep_tx_atomicity_exhaustive () =
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:19 ~mode:Sweep.Exhaustive
      (Scenario.tx_cells_scenario ~txs:3 ())
  in
  check "no torn transaction at any event index" 0
    (List.length r.Sweep.failures)

let test_swizzle_midwalk_crash_pinned () =
  (* Satellite: crash at every event of the save-time unswizzle walk
     (and the load-time swizzle walk). Inside the window the durable
     image holds absolute pointers and recovery at a fresh segment must
     detectably fail; outside it must recover exactly. The scenario
     oracle encodes both, so zero failures means both behaviours hold. *)
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:23 ~mode:Sweep.Exhaustive
      (Scenario.swizzle_window_scenario ~keys:6 ())
  in
  check_bool "every unswizzle-walk event is a crash point" true
    (r.Sweep.points > 10);
  check "swizzle window behaviour pinned at every point" 0
    (List.length r.Sweep.failures)

let test_sweep_kv_sampled () =
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:29 ~mode:(Sweep.Sampled 6)
      (Scenario.kv_scenario ~ops:5 Core.Repr.Off_holder)
  in
  check "kvstore read-your-writes holds at sampled points" 0
    (List.length r.Sweep.failures)

let test_sweep_alloc_exhaustive () =
  (* Satellite: crash at every persistence event of the palloc churn
     scenario. Recovery must always produce a heap whose walk passes and
     whose allocated set equals the rooted set — the allocator's no-leak
     / no-double-map invariants hold at every single crash point. *)
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:31 ~mode:Sweep.Exhaustive
      (Scenario.alloc_scenario ~ops:8 ())
  in
  check_bool "allocator churn generates many crash points" true
    (r.Sweep.points > 50);
  check "allocator invariants hold at every crash point" 0
    (List.length r.Sweep.failures)

let test_sweep_alloc_leak_caught () =
  (* The leak double durably unroots a live block before freeing it; the
     sweep must observe the leak at some crash point, proving the oracle
     can actually see allocator bugs. *)
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:31 ~mode:Sweep.After_fences
      (Scenario.alloc_leak_selftest ())
  in
  check_bool "double is marked expect_fail" true r.Sweep.expect_fail;
  check_bool "leak observed at some crash point" true (r.Sweep.failures <> []);
  check_bool "inverted verdict passes" true (Sweep.scenario_ok r)

let test_sweep_durable_sets_clean () =
  (* Link-and-persist hashset/bstree (docs/DURABLE.md): at every crash
     point the recovered set must equal the durable commit prefix of the
     op log, with the single in-flight op all-or-nothing. The recovery
     attach runs in traverse mode, so marked-link repair is exercised at
     the points that crash inside a modification window. *)
  let metrics = Metrics.create () in
  List.iter
    (fun (structure, repr) ->
      let r =
        Sweep.run_scenario ~metrics ~seed:37 ~mode:Sweep.Exhaustive
          (Scenario.durable_scenario ~ops:8 structure repr)
      in
      check_bool "durable churn generates many crash points" true
        (r.Sweep.points > 20);
      check "durable prefix holds at every crash point" 0
        (List.length r.Sweep.failures))
    [
      (Nvmpi_experiments.Instance.Hashset, Core.Repr.Riv);
      (Nvmpi_experiments.Instance.Btree, Core.Repr.Off_holder);
    ]

let test_sweep_durable_dropflush_caught () =
  (* The double suppresses every window flush/fence, so completed ops
     never become durable; the oracle must flag the loss somewhere. *)
  let metrics = Metrics.create () in
  let r =
    Sweep.run_scenario ~metrics ~seed:37 ~mode:Sweep.After_fences
      (Scenario.durable_scenario ~ops:8 ~drop_flushes:true
         Nvmpi_experiments.Instance.Hashset Core.Repr.Riv)
  in
  check_bool "double is marked expect_fail" true r.Sweep.expect_fail;
  check_bool "dropped windows observed at some crash point" true
    (r.Sweep.failures <> []);
  check_bool "inverted verdict passes" true (Sweep.scenario_ok r)

let test_report_json_roundtrip () =
  let metrics = Metrics.create () in
  let report =
    Sweep.run ~metrics ~seed:11
      [ Scenario.structure_scenario ~keys:6 Nvmpi_experiments.Instance.List
          Core.Repr.Off_holder ]
  in
  let j = Sweep.json_of_report report in
  let open Core.Json in
  (match member "ok" j with
  | Some (Bool true) -> ()
  | _ -> Alcotest.fail "report json lacks ok=true");
  match member "scenarios" j with
  | Some (List [ _ ]) -> ()
  | _ -> Alcotest.fail "report json lacks the scenario entry"

let () =
  Alcotest.run "faultsim"
    [
      ( "image",
        [
          Alcotest.test_case "store alone is not durable" `Quick
            test_image_store_not_durable;
          Alcotest.test_case "flush needs a fence" `Quick
            test_image_flush_needs_fence;
          Alcotest.test_case "fences persist flush-time snapshots" `Quick
            test_image_snapshot_semantics;
          Alcotest.test_case "pending lines and reset" `Quick
            test_image_pending_lines;
          Alcotest.test_case "events outside the region ignored" `Quick
            test_image_out_of_range_ignored;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "records and materializes durability" `Quick
            test_tracker_records_and_materializes;
          Alcotest.test_case "crash hook reverts live memory" `Quick
            test_tracker_crash_hook_reverts_memory;
          Alcotest.test_case "Tx.simulate_crash goes through the tracker"
            `Quick test_simulate_crash_with_tracker;
          Alcotest.test_case "attached-but-unarmed is cycle neutral" `Quick
            test_attached_unarmed_is_cycle_neutral;
        ] );
      ( "replay",
        [
          Alcotest.test_case "cursor reproduces the live durable image"
            `Quick test_replay_matches_tracker;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "clean structure survives all points" `Quick
            test_sweep_structure_clean;
          Alcotest.test_case "fence-dropping double is caught" `Quick
            test_sweep_catches_fence_dropper;
          Alcotest.test_case "tx atomicity, exhaustive" `Quick
            test_sweep_tx_atomicity_exhaustive;
          Alcotest.test_case "swizzle mid-walk crash window" `Quick
            test_swizzle_midwalk_crash_pinned;
          Alcotest.test_case "kvstore sampled points" `Quick
            test_sweep_kv_sampled;
          Alcotest.test_case "allocator exhaustive" `Quick
            test_sweep_alloc_exhaustive;
          Alcotest.test_case "allocator leak double caught" `Quick
            test_sweep_alloc_leak_caught;
          Alcotest.test_case "durable sets exhaustive" `Quick
            test_sweep_durable_sets_clean;
          Alcotest.test_case "durable drop-flush double caught" `Quick
            test_sweep_durable_dropflush_caught;
          Alcotest.test_case "json report" `Quick test_report_json_roundtrip;
        ] );
    ]
