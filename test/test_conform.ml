(* The conformance harness testing itself: trace round-trips, engine
   determinism and coverage, the acceptance-critical injected-bug
   demonstration (an off-by-8 RIV copy must be caught and shrunk to a
   tiny repro), and the NVC evaluator checked against the same oracle
   the nine representations answer to. *)

module Trace = Nvmpi_conform.Trace
module Gen = Nvmpi_conform.Gen
module Model = Nvmpi_conform.Model
module Exec = Nvmpi_conform.Exec
module Engine = Nvmpi_conform.Engine
module Shrink = Nvmpi_conform.Shrink
module Repr = Core.Repr
module Machine = Core.Machine
module Store = Core.Store
module Vaddr = Core.Kinds.Vaddr
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Lang = Nvmpi_lang.Lang

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Traces and their s-expression form *)

let arb_trace =
  QCheck.make ~print:Trace.to_string (fun st -> Gen.trace_rand st)

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"trace sexp round-trips" ~count:200 arb_trace
    (fun tr -> Trace.of_string (Trace.to_string tr) = Ok tr)

let prop_generated_traces_valid =
  QCheck.Test.make ~name:"generated traces are well-formed" ~count:200
    arb_trace Trace.valid

let test_sexp_rejects_garbage () =
  let bad s =
    match Trace.of_string s with Ok _ -> false | Error _ -> true
  in
  check_bool "not a sexp" true (bad "(trace");
  check_bool "not a trace" true (bad "(remap 0)");
  check_bool "trailing input" true
    (bad "(trace (mseed 1) (slots 1) (objs 1 0) (structures) (ops)) x");
  check_bool "unknown op" true
    (bad "(trace (mseed 1) (slots 1) (objs 1 0) (structures) (ops (poke 3)))")

let test_gen_is_pure () =
  for i = 0 to 9 do
    let a = Gen.trace ~seed:7 ~index:i () in
    let b = Gen.trace ~seed:7 ~index:i () in
    check_bool "same seed+index, same trace" true (a = b)
  done;
  check_bool "different indices differ" true
    (Gen.trace ~seed:7 ~index:0 () <> Gen.trace ~seed:7 ~index:1 ())

(* Engine: clean run, coverage, parallel determinism *)

let engine_traces = 25

let report_jobs jobs =
  Engine.run ~jobs ~seed:42 ~traces:engine_traces ()

let test_engine_clean_and_covering () =
  let r = report_jobs 1 in
  check "no divergences on seed 42" 0 (List.length r.Engine.failures);
  check_bool "some traces remap" true (r.Engine.traces_with_remap > 0);
  check_bool "some traces don't" true
    (r.Engine.traces_with_remap < engine_traces);
  List.iter
    (fun k ->
      let n = List.assoc (Repr.to_string k) r.Engine.repr_traces in
      check_bool (Repr.to_string k ^ " exercised") true (n > 0);
      if k = Repr.Normal then
        check "normal skips remap traces"
          (engine_traces - r.Engine.traces_with_remap)
          n
      else check (Repr.to_string k ^ " runs everything") engine_traces n)
    Repr.all;
  check "conform.traces counter" engine_traces
    (List.assoc "conform.traces" r.Engine.counters)

let test_engine_deterministic_across_jobs () =
  let render r = Json.to_string (Engine.report_to_json r) in
  let r1 = render (report_jobs 1) in
  let r2 = render (report_jobs 2) in
  check_str "jobs 1 = jobs 2" r1 r2;
  check_str "rerun is byte-identical" r1 (render (report_jobs 1))

let test_engine_clean_under_traverse () =
  (* Satellite: the whole conformance sweep — structure inserts and
     removes included — re-run with link-and-persist durability as the
     process default (docs/DURABLE.md). Durability actions must never
     change an observable, so the report is as clean as the eager one. *)
  let module Durable = Nvmpi_structures.Durable in
  let saved = Durable.mode () in
  Fun.protect
    ~finally:(fun () -> Durable.set_default_mode saved)
    (fun () ->
      Durable.set_default_mode Durable.Traverse;
      let r = report_jobs 1 in
      check "no divergences under traverse durability" 0
        (List.length r.Engine.failures);
      check "conform.traces counter" engine_traces
        (List.assoc "conform.traces" r.Engine.counters))

let test_check_trace_replay () =
  (* A handwritten repro through the same entry --replay uses. *)
  let src =
    "(trace (mseed 5) (slots 2) (objs 2 1) (structures list hash)\n\
    \ (ops (pstore 0 (obj 2)) (remap 0) (ins list 3) (ins hash 3)\n\
    \ (pload 0) (del hash 3) (dig list) (dig hash) (pstore 0 null)\n\
    \ (pload 0)))"
  in
  match Trace.of_string src with
  | Error e -> Alcotest.failf "repro did not parse: %s" e
  | Ok tr ->
      check "replay is clean" 0 (List.length (Engine.check_trace ~index:(-1) tr))

(* The injected bug: a scratch copy of RIV whose store lands 8 bytes
   past the intended target. The harness must notice (the decoded load
   is off the object table) and shrink the repro to a handful of ops. *)

module Buggy_riv : Core.Repr_sig.S = struct
  include Core.Riv

  let store m ~holder target =
    let target =
      if Vaddr.is_null target then target else Vaddr.add target 8
    in
    Core.Riv.store m ~holder target
end

let buggy_run tr = Exec.run ~repr:(module Buggy_riv) ~kind:Repr.Riv tr

let buggy_diverges tr = Engine.diverges tr Repr.Riv (buggy_run tr)

let test_injected_bug_caught_and_shrunk () =
  (* Plain pointer traces: the bug is in the store path, structures
     would only add noise (and a corrupted repr can derail walks). *)
  let rec find i =
    if i >= 50 then Alcotest.fail "no trace tripped the injected bug"
    else
      let tr = Gen.trace ~structures:false ~seed:2024 ~index:i () in
      if buggy_diverges tr then tr else find (i + 1)
  in
  let tr = find 0 in
  let metrics = Metrics.create () in
  let shrunk = Shrink.minimize ~metrics ~still_fails:buggy_diverges tr in
  check_bool "shrunk repro still diverges" true (buggy_diverges shrunk);
  check_bool
    (Printf.sprintf "shrunk to <= 12 ops (got %d: %s)"
       (List.length shrunk.Trace.ops) (Trace.to_string shrunk))
    true
    (List.length shrunk.Trace.ops <= 12);
  check_bool "shrinking was measured" true
    (Metrics.get metrics "conform.shrink_steps" > 0);
  check_bool "repro replays from its sexp" true
    (Trace.of_string (Trace.to_string shrunk) = Ok shrunk);
  (* And the detail pinpoints the first diverging op. *)
  match Engine.compare_to_model shrunk Repr.Riv (buggy_run shrunk) with
  | None -> Alcotest.fail "expected a divergence detail"
  | Some d -> check_bool "detail names an op" true (String.length d > 0)

let test_unmodified_riv_is_clean () =
  (* The same traces through the real RIV: the finder above must owe
     its hits to the injected bug, not to the trace population. *)
  for i = 0 to 9 do
    let tr = Gen.trace ~structures:false ~seed:2024 ~index:i () in
    check_bool "clean RIV conforms" false
      (Engine.diverges tr Repr.Riv
         (Exec.run ~repr:(module Core.Riv) ~kind:Repr.Riv tr))
  done

(* The NVC evaluator against the same oracle (satellite: lang layer).

   Each program's final heap is predicted by a hand-mapped model trace:
   slot i models node i's [next] field, obj o models node o. The
   program's printed walk must equal the walk of the model's final
   slot states. *)

let machine () =
  let store = Store.create () in
  (store, Machine.create ~seed:1 ~store ())

let run_lang src =
  let _, m = machine () in
  Lang.run_string m src

let output_exn src =
  match run_lang src with
  | Ok o -> o.Lang.Eval.output
  | Error e -> Alcotest.failf "program failed: %s" e

(* Walk the model's final heap: follow slot o (= node o's next) from
   [start], collecting node keys (key of node o is o + 1). *)
let model_walk obs ~loads ~start =
  let next = Array.make (List.length loads) None in
  List.iteri
    (fun li (op_idx, slot) ->
      ignore li;
      match obs.(op_idx) with
      | Model.Ptr v -> next.(slot) <- v
      | o -> Alcotest.failf "expected a pload obs, got %s" (Model.obs_to_string o))
    loads;
  let b = Buffer.create 16 in
  let rec go = function
    | None -> ()
    | Some o ->
        Buffer.add_string b (string_of_int (o + 1));
        Buffer.add_char b '\n';
        go next.(o)
  in
  go (Some start);
  Buffer.contents b

let test_lang_chain_matches_model () =
  (* Three persistentI-linked nodes; the program walks from node 3. *)
  let tr =
    {
      Trace.mseed = 1;
      slots = 3;
      objs0 = 3;
      objs1 = 0;
      structures = [];
      ops =
        [
          Trace.Pstore (0, None);      (* node1.next = null *)
          Trace.Pstore (1, Some 0);    (* node2.next = node1 *)
          Trace.Pstore (2, Some 1);    (* node3.next = node2 *)
          Trace.Pload 0; Trace.Pload 1; Trace.Pload 2;
        ];
    }
  in
  (* persistentI is the off-holder encoding: intra-region only. *)
  let obs =
    Model.run ~caps:{ Model.cross_region = false } ~payload:Exec.payload tr
  in
  let expected =
    model_walk obs ~loads:[ (3, 0); (4, 1); (5, 2) ] ~start:2
  in
  check_str "model predicts the walk" "3\n2\n1\n" expected;
  check_str "evaluator agrees" expected
    (output_exn
       ("struct node { persistentI struct node *next; int key; }\n"
      ^ "int main() { int r = region_create(65536); region_open(r);\n\
         persistent struct node *n1 = new(r, struct node);\n\
         persistent struct node *n2 = new(r, struct node);\n\
         persistent struct node *n3 = new(r, struct node);\n\
         n1->key = 1; n2->key = 2; n3->key = 3;\n\
         n1->next = null; n2->next = n1; n3->next = n2;\n\
         persistent struct node *cur = n3;\n\
         while (cur != null) { print(cur->key); cur = cur->next; }\n\
         return 0; }"))

let cross_defs =
  "struct cell { persistentI struct cell *i; persistentX struct cell *x;\n\
  \              int v; }\n"

let cross_trace =
  (* One slot in region 0, target object in region 1. *)
  {
    Trace.mseed = 1;
    slots = 1;
    objs0 = 1;
    objs1 = 1;
    structures = [];
    ops = [ Trace.Pstore (0, Some 1); Trace.Pload 0 ];
  }

let test_lang_cross_region_i_matches_model () =
  (* The model under off-holder caps rejects the store and leaves the
     slot null — exactly the evaluator's Section 4.4 dynamic check. *)
  let obs =
    Model.run ~caps:{ Model.cross_region = false } ~payload:Exec.payload
      cross_trace
  in
  check_str "model rejects the store" "raised" (Model.obs_to_string obs.(0));
  check_str "slot stays null" "null" (Model.obs_to_string obs.(1));
  match
    run_lang
      (cross_defs
     ^ "int main() { int r1 = region_create(65536); region_open(r1);\n\
        int r2 = region_create(65536); region_open(r2);\n\
        persistent struct cell *a = new(r1, struct cell);\n\
        persistent struct cell *b = new(r2, struct cell);\n\
        a->i = b;\n\
        return 0; }")
  with
  | Ok _ -> Alcotest.fail "evaluator accepted a cross-region persistentI store"
  | Error _ -> ()

let test_lang_cross_region_x_matches_model () =
  (* Under cross-region caps the same trace is clean and the load
     resolves to the region-1 object; persistentX must deliver it. *)
  let obs =
    Model.run ~caps:{ Model.cross_region = true } ~payload:Exec.payload
      cross_trace
  in
  check_str "model accepts the store" "done" (Model.obs_to_string obs.(0));
  check_str "load finds the region-1 object" "obj1"
    (Model.obs_to_string obs.(1));
  check_str "evaluator reaches it too" "200\n"
    (output_exn
       (cross_defs
      ^ "int main() { int r1 = region_create(65536); region_open(r1);\n\
         int r2 = region_create(65536); region_open(r2);\n\
         persistent struct cell *a = new(r1, struct cell);\n\
         persistent struct cell *b = new(r2, struct cell);\n\
         b->v = 200;\n\
         a->x = b;\n\
         persistent struct cell *p = a->x;\n\
         print(p->v); return 0; }"))

let () =
  Alcotest.run "conform"
    [
      ( "traces",
        [
          QCheck_alcotest.to_alcotest prop_sexp_roundtrip;
          QCheck_alcotest.to_alcotest prop_generated_traces_valid;
          Alcotest.test_case "parser rejects garbage" `Quick
            test_sexp_rejects_garbage;
          Alcotest.test_case "generation is pure" `Quick test_gen_is_pure;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clean and covering" `Quick
            test_engine_clean_and_covering;
          Alcotest.test_case "clean under traverse durability" `Quick
            test_engine_clean_under_traverse;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_engine_deterministic_across_jobs;
          Alcotest.test_case "replay a handwritten repro" `Quick
            test_check_trace_replay;
        ] );
      ( "bug-injection",
        [
          Alcotest.test_case "off-by-8 RIV caught and shrunk" `Quick
            test_injected_bug_caught_and_shrunk;
          Alcotest.test_case "unmodified RIV is clean" `Quick
            test_unmodified_riv_is_clean;
        ] );
      ( "lang-vs-model",
        [
          Alcotest.test_case "persistentI chain" `Quick
            test_lang_chain_matches_model;
          Alcotest.test_case "cross-region persistentI" `Quick
            test_lang_cross_region_i_matches_model;
          Alcotest.test_case "cross-region persistentX" `Quick
            test_lang_cross_region_x_matches_model;
        ] );
    ]
