(* Every Kinds conversion checked against the Layout bit math it wraps.
   Kinds is the typed facade over Layout's untyped words; these tests
   pin the facade to the substrate so neither can drift from Figure 8's
   rules without a failure here.

   Tests bless host integers at the Figure 8 trust boundary and coerce
   typed results back out for Alcotest's int checkers. *)

module Layout = Core.Layout
module K = Core.Kinds
module Vaddr = K.Vaddr
module Off = K.Off
module Riv = K.Riv
module Rid = K.Rid
module Seg = K.Seg

let va = Vaddr.v
let ia (a : Vaddr.t) = (a :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let layouts =
  [ ("default", Layout.default); ("small", Layout.small);
    ("large", Layout.large_segments) ]

(* A data-area address to exercise the conversions with: segment 3 of
   the data area, 0x1234 bytes in. *)
let sample l =
  let nb = Layout.data_nvbase_min l + 3 in
  let base = Layout.segment_base_of_nvbase l nb in
  (nb, base, base + 0x1234)

(* Wrapper algebra: add/diff/offset_in are plain word arithmetic. *)

let test_vaddr_algebra () =
  check "to_int inverts v" 0xABCD (Vaddr.to_int (va 0xABCD));
  check "add" 0x1010 (ia (Vaddr.add (va 0x1000) 0x10));
  check "add negative" 0xFF0 (ia (Vaddr.add (va 0x1000) (-0x10)));
  check "diff" 0x10 (Vaddr.diff (va 0x1010) (va 0x1000));
  check "offset_in" 0x234 (Vaddr.offset_in (va 0x1234) ~base:(va 0x1000));
  check_bool "null is 0" true (ia Vaddr.null = 0);
  check_bool "is_null" true (Vaddr.is_null (va 0));
  check_bool "not null" false (Vaddr.is_null (va 8));
  check_bool "equal" true (Vaddr.equal (va 5) (va 5));
  check_bool "compare" true (Vaddr.compare (va 4) (va 5) < 0);
  check "off null" 0 (Off.to_int Off.null);
  check_bool "off is_null" true (Off.is_null (Off.v 0));
  check "riv null matches Layout" Layout.riv_null (Riv.to_int Riv.null);
  check_bool "riv is_null" true (Riv.is_null (Riv.v Layout.riv_null));
  check "rid none" 0 (Rid.to_int Rid.none);
  check_bool "rid is_none" true (Rid.is_none (Rid.v 0));
  check_bool "rid equal" true (Rid.equal (Rid.v 9) (Rid.v 9));
  check "seg to_int" 7 (Seg.to_int (Seg.v 7))

(* Figure 8 persistentI rules: encode is target - holder, decode is the
   inverse. *)

let test_off_holder_rules () =
  let holder = va 0x2000 and target = va 0x2A40 in
  let o = K.off_of_vaddr ~holder target in
  check "encode is target - holder" (0x2A40 - 0x2000) (Off.to_int o);
  check "decode inverts encode" (ia target) (ia (K.vaddr_of_off ~holder o));
  (* Backward links encode as negative deltas. *)
  let back = K.off_of_vaddr ~holder:target holder in
  check "backward delta" (0x2000 - 0x2A40) (Off.to_int back);
  check "backward decode" (ia holder)
    (ia (K.vaddr_of_off ~holder:target back))

(* Figure 8 persistentX rules: pack/unpack agree with Layout.riv_*, and
   the decode's final step rebuilds the address from the segment base
   id2addr returned. *)

let test_riv_rules () =
  List.iter
    (fun (name, l) ->
      let _, base, addr = sample l in
      let rid = 42 and offset = Layout.seg_offset l addr in
      let v = K.riv_of_rid_off l ~rid:(Rid.v rid) ~offset in
      check (name ^ " pack matches Layout") (Layout.riv_pack l ~rid ~offset)
        (Riv.to_int v);
      check (name ^ " rid field") (Layout.riv_rid l (Riv.to_int v))
        (Rid.to_int (K.rid_of_riv l v));
      check (name ^ " offset field") (Layout.riv_offset l (Riv.to_int v))
        (K.offset_of_riv l v);
      check (name ^ " decode rebuilds address") addr
        (ia (K.vaddr_of_riv l ~via:(va base) v)))
    layouts

(* Segment-number conversions (Figures 6 and 7). *)

let test_seg_rules () =
  List.iter
    (fun (name, l) ->
      let nb, base, addr = sample l in
      check (name ^ " seg_of_vaddr is the nvbase field") (Layout.nvbase l addr)
        (Seg.to_int (K.seg_of_vaddr l (va addr)));
      check (name ^ " seg field value") nb
        (Seg.to_int (K.seg_of_vaddr l (va addr)));
      check (name ^ " vaddr_of_seg rebuilds the base")
        (Layout.segment_base_of_nvbase l nb)
        (ia (K.vaddr_of_seg l (Seg.v nb)));
      check (name ^ " base_of_vaddr is getBase") (Layout.get_base l addr)
        (ia (K.base_of_vaddr l (va addr)));
      check (name ^ " getBase of a base is itself") base
        (ia (K.base_of_vaddr l (va base)));
      check (name ^ " seg_offset") (Layout.seg_offset l addr)
        (K.seg_offset l (va addr));
      check (name ^ " vaddr_in_segment recombines") addr
        (ia
           (K.vaddr_in_segment l ~base:(va base)
              ~offset:(Layout.seg_offset l addr))))
    layouts

(* Direct-mapped table addressing (Figure 7). *)

let test_table_rules () =
  List.iter
    (fun (name, l) ->
      let _, base, addr = sample l in
      check (name ^ " rid entry matches Layout") (Layout.rid_entry_addr l addr)
        (ia (K.rid_entry_vaddr l (va addr)));
      check (name ^ " rid entry uniform in segment")
        (ia (K.rid_entry_vaddr l (va base)))
        (ia (K.rid_entry_vaddr l (va addr)));
      check (name ^ " base entry matches Layout")
        (Layout.base_entry_addr l ~rid:42)
        (ia (K.base_entry_vaddr l ~rid:(Rid.v 42))))
    layouts

(* Typed predicates agree with Layout's on both sides of each border. *)

let test_typed_predicates () =
  List.iter
    (fun (name, l) ->
      let _, _, addr = sample l in
      let probes =
        [ 0; 0x10000; Layout.nv_start l - 1; Layout.nv_start l; addr;
          Layout.rid_entry_addr l addr; Layout.base_entry_addr l ~rid:1 ]
      in
      List.iter
        (fun a ->
          let t = va a in
          check_bool (Printf.sprintf "%s in_nv_space 0x%x" name a)
            (Layout.in_nv_space l a) (K.in_nv_space l t);
          check_bool (Printf.sprintf "%s is_volatile 0x%x" name a)
            (Layout.is_volatile l a) (K.is_volatile l t);
          check_bool (Printf.sprintf "%s is_data_addr 0x%x" name a)
            (Layout.is_data_addr l a) (K.is_data_addr l t);
          check_bool (Printf.sprintf "%s is_rid_table_addr 0x%x" name a)
            (Layout.is_rid_table_addr l a) (K.is_rid_table_addr l t);
          check_bool (Printf.sprintf "%s is_base_table_addr 0x%x" name a)
            (Layout.is_base_table_addr l a) (K.is_base_table_addr l t))
        probes;
      check (name ^ " nv_start") (Layout.nv_start l) (ia (K.nv_start l)))
    layouts

(* Property: for random data-area addresses, encode/decode through the
   typed functions is the identity, exactly as through raw Layout math. *)

let prop_roundtrips =
  QCheck2.Test.make ~name:"typed conversions roundtrip" ~count:1000
    QCheck2.Gen.(
      tup3 (int_range 0 1000000) (int_range 1 100000) (int_range 0 0xFFFFF))
    (fun (nb_off, rid, off) ->
      let l = Layout.default in
      let nb = Layout.data_nvbase_min l + (nb_off mod Layout.usable_segments l) in
      let rid = Rid.v (1 + (rid mod Layout.max_rid l)) in
      let base = K.vaddr_of_seg l (Seg.v nb) in
      let addr = K.vaddr_in_segment l ~base ~offset:off in
      (* persistentI *)
      let holder = Vaddr.add base 8 in
      let i = K.off_of_vaddr ~holder addr in
      (* persistentX *)
      let x = K.riv_of_rid_off l ~rid ~offset:(K.seg_offset l addr) in
      Vaddr.equal addr (K.vaddr_of_off ~holder i)
      && Rid.equal rid (K.rid_of_riv l x)
      && Vaddr.equal addr (K.vaddr_of_riv l ~via:(K.base_of_vaddr l addr) x)
      && Seg.equal (Seg.v nb) (K.seg_of_vaddr l addr)
      && Vaddr.equal base (K.base_of_vaddr l addr))

let () =
  Alcotest.run "kinds"
    [
      ( "wrappers",
        [ Alcotest.test_case "vaddr algebra + nulls" `Quick test_vaddr_algebra ]
      );
      ( "figure8",
        [
          Alcotest.test_case "persistentI encode/decode" `Quick
            test_off_holder_rules;
          Alcotest.test_case "persistentX pack/unpack" `Quick test_riv_rules;
          Alcotest.test_case "segment conversions" `Quick test_seg_rules;
          Alcotest.test_case "table addressing" `Quick test_table_rules;
          Alcotest.test_case "typed predicates" `Quick test_typed_predicates;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrips ]);
    ]
