module Memsim = Core.Memsim
module Vaddr = Core.Kinds.Vaddr

(* Tests bless literal addresses at the Figure 8 trust boundary. *)
let va = Vaddr.v

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh ?(base = 0x1000) ?(size = 0x10000) () =
  let m = Memsim.create () in
  let base = va base in
  Memsim.map m ~addr:base ~size;
  (m, base)

let test_roundtrip_sizes () =
  let m, base = fresh () in
  Memsim.store8 m base 0xAB;
  check "load8" 0xAB (Memsim.load8 m base);
  Memsim.store16 m (Vaddr.add base 2) 0xBEEF;
  check "load16" 0xBEEF (Memsim.load16 m (Vaddr.add base 2));
  Memsim.store32 m (Vaddr.add base 4) 0xDEADBEEF;
  check "load32" 0xDEADBEEF (Memsim.load32 m (Vaddr.add base 4));
  Memsim.store64 m (Vaddr.add base 8) 0x123456789ABCDEF;
  check "load64" 0x123456789ABCDEF (Memsim.load64 m (Vaddr.add base 8))

let test_negative_int64 () =
  let m, base = fresh () in
  Memsim.store64 m base (-42);
  check "negative" (-42) (Memsim.load64 m base);
  Memsim.store64 m base min_int;
  check "min_int" min_int (Memsim.load64 m base)

let test_zero_fill () =
  let m, base = fresh () in
  check "untouched page reads zero" 0 (Memsim.load64 m (Vaddr.add base 0x800))

let test_truncation () =
  let m, base = fresh () in
  Memsim.store8 m base 0x1FF;
  check "store8 truncates" 0xFF (Memsim.load8 m base);
  Memsim.store16 m base 0x1FFFF;
  check "store16 truncates" 0xFFFF (Memsim.load16 m base)

let test_unmapped_faults () =
  let m, _ = fresh () in
  check_bool "fault"
    true
    (try
       ignore (Memsim.load64 m (va 0x999998));
       false
     with Memsim.Fault _ -> true)

let test_misaligned_faults () =
  let m, base = fresh () in
  check_bool "misaligned 64" true
    (try
       ignore (Memsim.load64 m (Vaddr.add base 4));
       false
     with Memsim.Fault _ -> true);
  check_bool "misaligned 16" true
    (try
       Memsim.store16 m (Vaddr.add base 1) 3;
       false
     with Memsim.Fault _ -> true)

let test_map_overlap_rejected () =
  let m, base = fresh () in
  check_bool "overlap rejected" true
    (try
       Memsim.map m ~addr:(Vaddr.add base 0x100) ~size:16;
       false
     with Invalid_argument _ -> true)

let test_unmap () =
  let m, base = fresh () in
  Memsim.store64 m base 7;
  Memsim.unmap m ~addr:base;
  check_bool "unmapped faults" true
    (try
       ignore (Memsim.load64 m base);
       false
     with Memsim.Fault _ -> true);
  (* Remapping gives a zeroed page again. *)
  Memsim.map m ~addr:base ~size:0x1000;
  check "zero after remap" 0 (Memsim.load64 m base)

let test_blit () =
  let m, base = fresh () in
  let src = Bytes.of_string "hello, simulated world.." in
  Memsim.blit_from_bytes m ~addr:base src;
  let out = Memsim.blit_to_bytes m ~addr:base ~len:(Bytes.length src) in
  Alcotest.(check string) "blit roundtrip" (Bytes.to_string src)
    (Bytes.to_string out)

let test_blit_unaligned () =
  let m, base = fresh () in
  let src = Bytes.of_string "abcdefghijk" in
  Memsim.blit_from_bytes m ~addr:(Vaddr.add base 3) src;
  let out = Memsim.blit_to_bytes m ~addr:(Vaddr.add base 3) ~len:11 in
  Alcotest.(check string) "unaligned blit" "abcdefghijk" (Bytes.to_string out)

let test_blit_cross_page () =
  let m = Memsim.create () in
  Memsim.map m ~addr:(va 0x1000) ~size:0x3000;
  let src = Bytes.make 0x1800 'x' in
  Bytes.set src 0x17FF 'y';
  Memsim.blit_from_bytes m ~addr:(va 0x1800) src;
  check "last byte" (Char.code 'y') (Memsim.load8 m (va (0x1800 + 0x17FF)))

let test_observers () =
  let m, base = fresh () in
  let loads = ref 0 and stores = ref 0 in
  Memsim.add_observer m (fun ~write ~addr:_ ~size:_ ->
      if write then incr stores else incr loads);
  Memsim.store64 m base 1;
  ignore (Memsim.load64 m base);
  ignore (Memsim.load8 m base);
  check "stores" 1 !stores;
  check "loads" 2 !loads;
  Memsim.observed m false;
  ignore (Memsim.load64 m base);
  check "suppressed" 2 !loads;
  Memsim.observed m true;
  ignore (Memsim.load64 m base);
  check "restored" 3 !loads

let test_stats () =
  let m, base = fresh () in
  let s = Memsim.stats m in
  let l0 = s.Memsim.loads in
  ignore (Memsim.load64 m base);
  ignore (Memsim.load64 m (Vaddr.add base 0x1000));
  check "loads counted" (l0 + 2) s.Memsim.loads;
  check_bool "pages materialized" true (s.Memsim.pages >= 2)

let test_high_addresses () =
  (* NV-space-like addresses near the top of the 62-bit space. *)
  let m = Memsim.create () in
  let base = va (Core.Layout.nv_start Core.Layout.default) in
  Memsim.map m ~addr:base ~size:0x2000;
  Memsim.store64 m (Vaddr.add base 0x100) 0xCAFE;
  check "high addr" 0xCAFE (Memsim.load64 m (Vaddr.add base 0x100))

let test_fill () =
  let m, base = fresh () in
  Memsim.fill m ~addr:base ~len:32 'z';
  check "fill" (Char.code 'z') (Memsim.load8 m (Vaddr.add base 31));
  check "fill end" 0 (Memsim.load8 m (Vaddr.add base 32))

let test_sized_dispatch () =
  let m, base = fresh () in
  List.iter
    (fun size ->
      Memsim.store_sized m ~size base 0x7F;
      check (Printf.sprintf "sized %d" size) 0x7F
        (Memsim.load_sized m ~size base))
    [ 1; 2; 4; 8 ];
  check_bool "bad size rejected" true
    (try
       ignore (Memsim.load_sized m ~size:3 base);
       false
     with Invalid_argument _ -> true)

let test_multiple_observers () =
  let m, base = fresh () in
  let a = ref 0 and b = ref 0 in
  Memsim.add_observer m (fun ~write:_ ~addr:_ ~size:_ -> incr a);
  Memsim.add_observer m (fun ~write:_ ~addr:_ ~size:_ -> incr b);
  ignore (Memsim.load64 m base);
  check "first observer" 1 !a;
  check "second observer" 1 !b

let test_many_observers_in_order () =
  (* The growable observer array must preserve registration order and
     notify every observer (regression for the former quadratic list
     append). *)
  let m, base = fresh () in
  let seen = ref [] in
  for i = 0 to 9 do
    Memsim.add_observer m (fun ~write:_ ~addr:_ ~size:_ ->
        seen := i :: !seen)
  done;
  ignore (Memsim.load64 m base);
  Alcotest.(check (list int))
    "all observers fire in registration order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !seen)

let test_map_after_unmap_overlapping () =
  (* Regression: unmap must really drop the range (and its pages), so an
     overlapping range can be mapped afterwards and reads back zeroed. *)
  let m = Memsim.create () in
  Memsim.map m ~addr:(va 0x4000) ~size:0x3000;
  Memsim.store64 m (va 0x5000) 0xFEED;
  Memsim.unmap m ~addr:(va 0x4000);
  (* Overlaps the dropped [0x4000, 0x7000) range with a shifted window. *)
  Memsim.map m ~addr:(va 0x5000) ~size:0x3000;
  check "remapped page reads zero" 0 (Memsim.load64 m (va 0x5000));
  Memsim.store64 m (va 0x7008) 0xBEE;
  check "new tail page works" 0xBEE (Memsim.load64 m (va 0x7008));
  check_bool "old head page is gone" true
    (try
       ignore (Memsim.load64 m (va 0x4000));
       false
     with Memsim.Fault _ -> true)

let test_mappings_listing () =
  let m = Memsim.create () in
  Memsim.map m ~addr:(va 0x1000) ~size:0x1000;
  Memsim.map m ~addr:(va 0x10000) ~size:0x2000;
  Alcotest.(check (list (pair int int)))
    "sorted ranges"
    [ (0x1000, 0x1000); (0x10000, 0x2000) ]
    (List.map (fun (a, n) -> ((a : Vaddr.t :> int), n)) (Memsim.mappings m));
  check "page size" 4096 (Memsim.page_size m)

let prop_store_load_64 =
  QCheck2.Test.make ~name:"64-bit store/load roundtrip at random offsets"
    ~count:500
    QCheck2.Gen.(pair (int_range 0 8190) int)
    (fun (woff, v) ->
      let m, base = fresh () in
      let a = Vaddr.add base (woff * 8) in
      Memsim.store64 m a v;
      Memsim.load64 m a = v)

let prop_blit_arbitrary_bytes =
  QCheck2.Test.make ~name:"blit roundtrips arbitrary bytes (incl. high bits)"
    ~count:200
    QCheck2.Gen.(pair (string_size (int_range 1 9000)) (int_range 0 64))
    (fun (payload, off) ->
      let m = Memsim.create () in
      Memsim.map m ~addr:(va 0x1000) ~size:0x4000;
      let b = Bytes.of_string payload in
      Memsim.blit_from_bytes m ~addr:(va (0x1000 + off)) b;
      Bytes.equal b
        (Memsim.blit_to_bytes m ~addr:(va (0x1000 + off)) ~len:(Bytes.length b)))

(* The TLB'd fast path must be observationally identical to a reference
   slow path (a byte map plus a mapped-slot table) over arbitrary
   interleavings of map / unmap / store / load — unmap in particular
   must invalidate the last-page cache. Four disjoint page-aligned
   slots keep map overlap decidable per slot. *)
let prop_tlb_matches_reference =
  let slot_base s = 0x4000 * (s + 1) in
  let slot_size = 0x2000 in
  let op_gen =
    QCheck2.Gen.(
      let slot = int_range 0 3 in
      let off = int_range 0 (slot_size - 1) in
      oneof
        [
          map (fun s -> `Map s) slot;
          map (fun s -> `Unmap s) slot;
          map3 (fun s o v -> `Store (s, o, v)) slot off (int_range 0 255);
          map2 (fun s o -> `Load (s, o)) slot off;
        ])
  in
  QCheck2.Test.make
    ~name:"TLB'd fast path matches the reference model on random traces"
    ~count:300
    QCheck2.Gen.(list_size (int_range 10 200) op_gen)
    (fun ops ->
      let m = Memsim.create () in
      let mapped = Array.make 4 false in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      List.for_all
        (fun op ->
          match op with
          | `Map s ->
              let expect_ok = not mapped.(s) in
              let got_ok =
                try
                  Memsim.map m ~addr:(va (slot_base s)) ~size:slot_size;
                  true
                with Invalid_argument _ -> false
              in
              if got_ok then mapped.(s) <- true;
              got_ok = expect_ok
          | `Unmap s ->
              let expect_ok = mapped.(s) in
              let got_ok =
                try
                  Memsim.unmap m ~addr:(va (slot_base s));
                  true
                with Invalid_argument _ -> false
              in
              if got_ok then begin
                mapped.(s) <- false;
                for a = slot_base s to slot_base s + slot_size - 1 do
                  Hashtbl.remove model a
                done
              end;
              got_ok = expect_ok
          | `Store (s, o, v) -> (
              let a = slot_base s + o in
              match Memsim.store8 m (va a) v with
              | () ->
                  Hashtbl.replace model a v;
                  mapped.(s)
              | exception Memsim.Fault _ -> not mapped.(s))
          | `Load (s, o) -> (
              let a = slot_base s + o in
              match Memsim.load8 m (va a) with
              | got ->
                  mapped.(s)
                  && got
                     = Option.value ~default:0 (Hashtbl.find_opt model a)
              | exception Memsim.Fault _ -> not mapped.(s)))
        ops)

let prop_disjoint_writes =
  QCheck2.Test.make ~name:"writes to distinct words do not interfere"
    ~count:200
    QCheck2.Gen.(
      pair (pair (int_range 0 1000) (int_range 0 1000)) (pair int int))
    (fun ((w1, w2), (v1, v2)) ->
      QCheck2.assume (w1 <> w2);
      let m, base = fresh () in
      Memsim.store64 m (Vaddr.add base (w1 * 8)) v1;
      Memsim.store64 m (Vaddr.add base (w2 * 8)) v2;
      Memsim.load64 m (Vaddr.add base (w1 * 8)) = v1
      && Memsim.load64 m (Vaddr.add base (w2 * 8)) = v2)

let () =
  Alcotest.run "memsim"
    [
      ( "accesses",
        [
          Alcotest.test_case "typed roundtrips" `Quick test_roundtrip_sizes;
          Alcotest.test_case "negative 64-bit values" `Quick test_negative_int64;
          Alcotest.test_case "demand-zero pages" `Quick test_zero_fill;
          Alcotest.test_case "narrow stores truncate" `Quick test_truncation;
          Alcotest.test_case "high addresses" `Quick test_high_addresses;
          Alcotest.test_case "fill" `Quick test_fill;
        ] );
      ( "faults",
        [
          Alcotest.test_case "unmapped access faults" `Quick
            test_unmapped_faults;
          Alcotest.test_case "misaligned access faults" `Quick
            test_misaligned_faults;
          Alcotest.test_case "overlapping map rejected" `Quick
            test_map_overlap_rejected;
          Alcotest.test_case "unmap drops pages" `Quick test_unmap;
          Alcotest.test_case "map after unmap of overlapping range" `Quick
            test_map_after_unmap_overlapping;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "blit roundtrip" `Quick test_blit;
          Alcotest.test_case "unaligned blit" `Quick test_blit_unaligned;
          Alcotest.test_case "cross-page blit" `Quick test_blit_cross_page;
        ] );
      ( "observation",
        [
          Alcotest.test_case "observers see accesses" `Quick test_observers;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "sized dispatch" `Quick test_sized_dispatch;
          Alcotest.test_case "multiple observers" `Quick
            test_multiple_observers;
          Alcotest.test_case "many observers in order" `Quick
            test_many_observers_in_order;
          Alcotest.test_case "mappings listing" `Quick test_mappings_listing;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_store_load_64;
          QCheck_alcotest.to_alcotest prop_blit_arbitrary_bytes;
          QCheck_alcotest.to_alcotest prop_tlb_matches_reference;
          QCheck_alcotest.to_alcotest prop_disjoint_writes;
        ] );
    ]
