module Memsim = Core.Memsim
module Vaddr = Core.Kinds.Vaddr

(* Tests bless literal addresses at the Figure 8 trust boundary. *)
let va = Vaddr.v

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh ?(base = 0x1000) ?(size = 0x10000) () =
  let m = Memsim.create () in
  let base = va base in
  Memsim.map m ~addr:base ~size;
  (m, base)

let test_roundtrip_sizes () =
  let m, base = fresh () in
  Memsim.store8 m base 0xAB;
  check "load8" 0xAB (Memsim.load8 m base);
  Memsim.store16 m (Vaddr.add base 2) 0xBEEF;
  check "load16" 0xBEEF (Memsim.load16 m (Vaddr.add base 2));
  Memsim.store32 m (Vaddr.add base 4) 0xDEADBEEF;
  check "load32" 0xDEADBEEF (Memsim.load32 m (Vaddr.add base 4));
  Memsim.store64 m (Vaddr.add base 8) 0x123456789ABCDEF;
  check "load64" 0x123456789ABCDEF (Memsim.load64 m (Vaddr.add base 8))

let test_negative_int64 () =
  let m, base = fresh () in
  Memsim.store64 m base (-42);
  check "negative" (-42) (Memsim.load64 m base);
  Memsim.store64 m base min_int;
  check "min_int" min_int (Memsim.load64 m base)

let test_zero_fill () =
  let m, base = fresh () in
  check "untouched page reads zero" 0 (Memsim.load64 m (Vaddr.add base 0x800))

let test_truncation () =
  let m, base = fresh () in
  Memsim.store8 m base 0x1FF;
  check "store8 truncates" 0xFF (Memsim.load8 m base);
  Memsim.store16 m base 0x1FFFF;
  check "store16 truncates" 0xFFFF (Memsim.load16 m base)

let test_unmapped_faults () =
  let m, _ = fresh () in
  check_bool "fault"
    true
    (try
       ignore (Memsim.load64 m (va 0x999998));
       false
     with Memsim.Fault _ -> true)

let test_misaligned_faults () =
  let m, base = fresh () in
  check_bool "misaligned 64" true
    (try
       ignore (Memsim.load64 m (Vaddr.add base 4));
       false
     with Memsim.Fault _ -> true);
  check_bool "misaligned 16" true
    (try
       Memsim.store16 m (Vaddr.add base 1) 3;
       false
     with Memsim.Fault _ -> true)

let test_map_overlap_rejected () =
  let m, base = fresh () in
  check_bool "overlap rejected" true
    (try
       Memsim.map m ~addr:(Vaddr.add base 0x100) ~size:16;
       false
     with Invalid_argument _ -> true)

let test_unmap () =
  let m, base = fresh () in
  Memsim.store64 m base 7;
  Memsim.unmap m ~addr:base;
  check_bool "unmapped faults" true
    (try
       ignore (Memsim.load64 m base);
       false
     with Memsim.Fault _ -> true);
  (* Remapping gives a zeroed page again. *)
  Memsim.map m ~addr:base ~size:0x1000;
  check "zero after remap" 0 (Memsim.load64 m base)

let test_blit () =
  let m, base = fresh () in
  let src = Bytes.of_string "hello, simulated world.." in
  Memsim.blit_from_bytes m ~addr:base src;
  let out = Memsim.blit_to_bytes m ~addr:base ~len:(Bytes.length src) in
  Alcotest.(check string) "blit roundtrip" (Bytes.to_string src)
    (Bytes.to_string out)

let test_blit_unaligned () =
  let m, base = fresh () in
  let src = Bytes.of_string "abcdefghijk" in
  Memsim.blit_from_bytes m ~addr:(Vaddr.add base 3) src;
  let out = Memsim.blit_to_bytes m ~addr:(Vaddr.add base 3) ~len:11 in
  Alcotest.(check string) "unaligned blit" "abcdefghijk" (Bytes.to_string out)

let test_blit_cross_page () =
  let m = Memsim.create () in
  Memsim.map m ~addr:(va 0x1000) ~size:0x3000;
  let src = Bytes.make 0x1800 'x' in
  Bytes.set src 0x17FF 'y';
  Memsim.blit_from_bytes m ~addr:(va 0x1800) src;
  check "last byte" (Char.code 'y') (Memsim.load8 m (va (0x1800 + 0x17FF)))

let test_observers () =
  let m, base = fresh () in
  let loads = ref 0 and stores = ref 0 in
  Memsim.add_observer m (fun a ->
      match a.Memsim.op with
      | Memsim.Load -> incr loads
      | Memsim.Store -> incr stores);
  Memsim.store64 m base 1;
  ignore (Memsim.load64 m base);
  ignore (Memsim.load8 m base);
  check "stores" 1 !stores;
  check "loads" 2 !loads;
  Memsim.observed m false;
  ignore (Memsim.load64 m base);
  check "suppressed" 2 !loads;
  Memsim.observed m true;
  ignore (Memsim.load64 m base);
  check "restored" 3 !loads

let test_stats () =
  let m, base = fresh () in
  let s = Memsim.stats m in
  let l0 = s.Memsim.loads in
  ignore (Memsim.load64 m base);
  ignore (Memsim.load64 m (Vaddr.add base 0x1000));
  check "loads counted" (l0 + 2) s.Memsim.loads;
  check_bool "pages materialized" true (s.Memsim.pages >= 2)

let test_high_addresses () =
  (* NV-space-like addresses near the top of the 62-bit space. *)
  let m = Memsim.create () in
  let base = va (Core.Layout.nv_start Core.Layout.default) in
  Memsim.map m ~addr:base ~size:0x2000;
  Memsim.store64 m (Vaddr.add base 0x100) 0xCAFE;
  check "high addr" 0xCAFE (Memsim.load64 m (Vaddr.add base 0x100))

let test_fill () =
  let m, base = fresh () in
  Memsim.fill m ~addr:base ~len:32 'z';
  check "fill" (Char.code 'z') (Memsim.load8 m (Vaddr.add base 31));
  check "fill end" 0 (Memsim.load8 m (Vaddr.add base 32))

let test_sized_dispatch () =
  let m, base = fresh () in
  List.iter
    (fun size ->
      Memsim.store_sized m ~size base 0x7F;
      check (Printf.sprintf "sized %d" size) 0x7F
        (Memsim.load_sized m ~size base))
    [ 1; 2; 4; 8 ];
  check_bool "bad size rejected" true
    (try
       ignore (Memsim.load_sized m ~size:3 base);
       false
     with Invalid_argument _ -> true)

let test_multiple_observers () =
  let m, base = fresh () in
  let a = ref 0 and b = ref 0 in
  Memsim.add_observer m (fun _ -> incr a);
  Memsim.add_observer m (fun _ -> incr b);
  ignore (Memsim.load64 m base);
  check "first observer" 1 !a;
  check "second observer" 1 !b

let test_mappings_listing () =
  let m = Memsim.create () in
  Memsim.map m ~addr:(va 0x1000) ~size:0x1000;
  Memsim.map m ~addr:(va 0x10000) ~size:0x2000;
  Alcotest.(check (list (pair int int)))
    "sorted ranges"
    [ (0x1000, 0x1000); (0x10000, 0x2000) ]
    (List.map (fun (a, n) -> ((a : Vaddr.t :> int), n)) (Memsim.mappings m));
  check "page size" 4096 (Memsim.page_size m)

let prop_store_load_64 =
  QCheck2.Test.make ~name:"64-bit store/load roundtrip at random offsets"
    ~count:500
    QCheck2.Gen.(pair (int_range 0 8190) int)
    (fun (woff, v) ->
      let m, base = fresh () in
      let a = Vaddr.add base (woff * 8) in
      Memsim.store64 m a v;
      Memsim.load64 m a = v)

let prop_blit_arbitrary_bytes =
  QCheck2.Test.make ~name:"blit roundtrips arbitrary bytes (incl. high bits)"
    ~count:200
    QCheck2.Gen.(pair (string_size (int_range 1 9000)) (int_range 0 64))
    (fun (payload, off) ->
      let m = Memsim.create () in
      Memsim.map m ~addr:(va 0x1000) ~size:0x4000;
      let b = Bytes.of_string payload in
      Memsim.blit_from_bytes m ~addr:(va (0x1000 + off)) b;
      Bytes.equal b
        (Memsim.blit_to_bytes m ~addr:(va (0x1000 + off)) ~len:(Bytes.length b)))

let prop_disjoint_writes =
  QCheck2.Test.make ~name:"writes to distinct words do not interfere"
    ~count:200
    QCheck2.Gen.(
      pair (pair (int_range 0 1000) (int_range 0 1000)) (pair int int))
    (fun ((w1, w2), (v1, v2)) ->
      QCheck2.assume (w1 <> w2);
      let m, base = fresh () in
      Memsim.store64 m (Vaddr.add base (w1 * 8)) v1;
      Memsim.store64 m (Vaddr.add base (w2 * 8)) v2;
      Memsim.load64 m (Vaddr.add base (w1 * 8)) = v1
      && Memsim.load64 m (Vaddr.add base (w2 * 8)) = v2)

let () =
  Alcotest.run "memsim"
    [
      ( "accesses",
        [
          Alcotest.test_case "typed roundtrips" `Quick test_roundtrip_sizes;
          Alcotest.test_case "negative 64-bit values" `Quick test_negative_int64;
          Alcotest.test_case "demand-zero pages" `Quick test_zero_fill;
          Alcotest.test_case "narrow stores truncate" `Quick test_truncation;
          Alcotest.test_case "high addresses" `Quick test_high_addresses;
          Alcotest.test_case "fill" `Quick test_fill;
        ] );
      ( "faults",
        [
          Alcotest.test_case "unmapped access faults" `Quick
            test_unmapped_faults;
          Alcotest.test_case "misaligned access faults" `Quick
            test_misaligned_faults;
          Alcotest.test_case "overlapping map rejected" `Quick
            test_map_overlap_rejected;
          Alcotest.test_case "unmap drops pages" `Quick test_unmap;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "blit roundtrip" `Quick test_blit;
          Alcotest.test_case "unaligned blit" `Quick test_blit_unaligned;
          Alcotest.test_case "cross-page blit" `Quick test_blit_cross_page;
        ] );
      ( "observation",
        [
          Alcotest.test_case "observers see accesses" `Quick test_observers;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "sized dispatch" `Quick test_sized_dispatch;
          Alcotest.test_case "multiple observers" `Quick
            test_multiple_observers;
          Alcotest.test_case "mappings listing" `Quick test_mappings_listing;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_store_load_64;
          QCheck_alcotest.to_alcotest prop_blit_arbitrary_bytes;
          QCheck_alcotest.to_alcotest prop_disjoint_writes;
        ] );
    ]
