(* The observability layer: counter registry semantics, the counters
   each pointer representation charges per operation, the JSON codec,
   and the invariant tying the counter breakdown to measured cycles. *)

module Machine = Core.Machine
module Metrics = Core.Metrics
module Json = Core.Json
module Repr = Core.Repr
module Region = Core.Region
module Store = Core.Store
module Timing_config = Core.Timing_config
module Runner = Nvmpi_experiments.Runner
module Vaddr = Core.Kinds.Vaddr

let ia (a : Vaddr.t) = (a :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine ?seed () =
  let store = Store.create () in
  (store, Machine.create ?seed ~store ())

let with_region ?seed ?(size = 1 lsl 20) () =
  let store, m = machine ?seed () in
  let rid = Machine.create_region m ~size in
  let r = Machine.open_region m rid in
  (store, m, r)

(* Counter delta of one action on a machine. *)
let delta m f =
  let before = Metrics.snapshot (Machine.metrics m) in
  let result = f () in
  ( result,
    Metrics.diff ~before ~after:(Metrics.snapshot (Machine.metrics m)) )

let get name d = Option.value ~default:0 (List.assoc_opt name d)

(* A machine that has done nothing has counted nothing: Machine.create
   builds the registry and maps memory but performs no simulated
   loads, stores or ALU work. *)
let test_fresh_machine_zero () =
  let _, m = machine ~seed:1 () in
  let snap = Metrics.snapshot (Machine.metrics m) in
  check_bool "some counters registered" true (List.length snap > 0);
  List.iter (fun (name, v) -> check ("fresh " ^ name) 0 v) snap

(* One load under every representation charges exactly one
   repr.<name>.loads; stores likewise. *)
let test_repr_op_counters () =
  List.iter
    (fun kind ->
      let _, m, r = with_region ~seed:5 () in
      if kind = Repr.Based then Machine.set_based_region m (Region.rid r);
      let (module P) = Repr.m kind in
      let holder = Region.alloc r P.slot_size in
      let target = Region.alloc r 64 in
      let (), ds = delta m (fun () -> P.store m ~holder target) in
      check (P.name ^ " stores counter") 1 (get ("repr." ^ P.name ^ ".stores") ds);
      check (P.name ^ " store counts no loads") 0
        (get ("repr." ^ P.name ^ ".loads") ds);
      let v, dl = delta m (fun () -> P.load m ~holder) in
      check (P.name ^ " load value") (ia target) (ia v);
      check (P.name ^ " loads counter") 1 (get ("repr." ^ P.name ^ ".loads") dl);
      check (P.name ^ " load counts no stores") 0
        (get ("repr." ^ P.name ^ ".stores") dl))
    Repr.all

(* The RIV read path: one x2p conversion, one direct-mapped base-table
   load, and exactly two simulated memory loads (the holder and the
   table entry) — the paper's point that RIV adds a single extra load. *)
let test_riv_load_breakdown () =
  let _, m, r = with_region ~seed:6 () in
  let (module P) = Repr.m Repr.Riv in
  let holder = Region.alloc r P.slot_size in
  let target = Region.alloc r 64 in
  P.store m ~holder target;
  let v, d = delta m (fun () -> P.load m ~holder) in
  check "target" (ia target) (ia v);
  check "riv.x2p" 1 (get "riv.x2p" d);
  check "riv.base_table_loads" 1 (get "riv.base_table_loads" d);
  check "mem.loads" 2 (get "mem.loads" d)

(* The fat-pointer read path: one hashtable lookup whose probes are real
   simulated loads — holder (2 words) + probes + base word. *)
let test_fat_load_breakdown () =
  let _, m, r = with_region ~seed:7 () in
  let (module P) = Repr.m Repr.Fat in
  let holder = Region.alloc r P.slot_size in
  let target = Region.alloc r 64 in
  P.store m ~holder target;
  let v, d = delta m (fun () -> P.load m ~holder) in
  check "target" (ia target) (ia v);
  check "fat.lookups" 1 (get "fat.lookups" d);
  let probes = get "fat.probe_loads" d in
  check_bool "at least one probe" true (probes >= 1);
  check "mem.loads" (3 + probes) (get "mem.loads" d)

(* The one-entry fat cache: first dereference misses and fills lastID,
   the second hits and skips the hashtable entirely. *)
let test_fat_cache_hit_miss () =
  let _, m, r = with_region ~seed:8 () in
  let (module P) = Repr.m Repr.Fat_cached in
  let holder = Region.alloc r P.slot_size in
  let target = Region.alloc r 64 in
  P.store m ~holder target;
  let _, d1 = delta m (fun () -> P.load m ~holder) in
  check "first load misses" 1 (get "fat.cache_misses" d1);
  check "first load no hit" 0 (get "fat.cache_hits" d1);
  check "first load consults table" 1 (get "fat.lookups" d1);
  let _, d2 = delta m (fun () -> P.load m ~holder) in
  check "second load hits" 1 (get "fat.cache_hits" d2);
  check "second load no miss" 0 (get "fat.cache_misses" d2);
  check "second load skips table" 0 (get "fat.lookups" d2)

(* Null loads count the dereference but neither a cache hit nor miss. *)
let test_fat_cache_null () =
  let _, m, r = with_region ~seed:9 () in
  let (module P) = Repr.m Repr.Fat_cached in
  let holder = Region.alloc r P.slot_size in
  P.store m ~holder Vaddr.null;
  let v, d = delta m (fun () -> P.load m ~holder) in
  check "null" 0 (ia v);
  check "null lookup" 1 (get "fat.null_lookups" d);
  check "no hit" 0 (get "fat.cache_hits" d);
  check "no miss" 0 (get "fat.cache_misses" d)

(* Section 4.4's dynamic same-region check, observationally: for the
   representations that cannot encode a cross-region target
   ([cross_region = false]), a cross-region store raises
   [Machine.Cross_region_store] — and does so before any simulated work,
   so the failed store charges no cycles and bumps no counters. The
   counter claim is a metrics-snapshot diff ([Metrics.diff] drops zero
   deltas, so the empty list asserts every registered counter is
   untouched); the cycle claim compares [Machine.cycles]. *)
let test_cross_region_store_raises_free () =
  List.iter
    (fun kind ->
      let _, m, r1 = with_region ~seed:11 () in
      let rid2 = Machine.create_region m ~size:(1 lsl 20) in
      let r2 = Machine.open_region m rid2 in
      if kind = Repr.Based then Machine.set_based_region m (Region.rid r1);
      let (module P) = Repr.m kind in
      check_bool (P.name ^ " declares intra-region only") false P.cross_region;
      let holder = Region.alloc r1 P.slot_size in
      let target = Region.alloc r2 64 in
      let cycles_before = Machine.cycles m in
      let raised, d =
        delta m (fun () ->
            match P.store m ~holder target with
            | () -> false
            | exception Machine.Cross_region_store payload ->
                check (P.name ^ " fault holder") (ia holder) (ia payload.holder);
                check (P.name ^ " fault target") (ia target) (ia payload.target);
                Alcotest.(check string)
                  (P.name ^ " fault repr") P.name payload.repr;
                true)
      in
      check_bool (P.name ^ " cross-region store raises") true raised;
      check_bool (P.name ^ " raise bumps no counters") true (d = []);
      check (P.name ^ " raise charges no cycles") cycles_before
        (Machine.cycles m);
      (* The same slot still accepts an intra-region target: the check
         rejects the store, not the holder. *)
      let ok_target = Region.alloc r1 64 in
      P.store m ~holder ok_target;
      check (P.name ^ " intra-region store still works") (ia ok_target)
        (ia (P.load m ~holder)))
    (List.filter (fun k -> not (Repr.cross_region k)) Repr.all)

(* Registry semantics. *)
let test_metrics_registry () =
  let t = Metrics.create () in
  let c = Metrics.counter t "a.b" in
  incr c;
  incr c;
  Metrics.incr ~by:3 t "a.b";
  check "get" 5 (Metrics.get t "a.b");
  check "untouched reads zero" 0 (Metrics.get t "zzz");
  Metrics.incr t "a.a";
  check_bool "sorted snapshot" true
    (Metrics.snapshot t = [ ("a.a", 1); ("a.b", 5) ]);
  Metrics.reset t;
  check "reset" 0 (Metrics.get t "a.b");
  check_bool "cell survives reset" true (Metrics.counter t "a.b" == c)

let test_metrics_json_roundtrip () =
  let t = Metrics.create () in
  Metrics.incr ~by:42 t "cache.l1.hits";
  Metrics.incr t "mem.loads";
  ignore (Metrics.counter t "riv.x2p");
  match Metrics.counters_of_json (Metrics.to_json t) with
  | Error msg -> Alcotest.fail msg
  | Ok counters ->
      check_bool "round-trips" true (counters = Metrics.snapshot t)

let test_json_codec_roundtrip () =
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("pi", Json.Float 3.5);
        ("neg", Json.Int (-7));
        ("name", Json.String "quote \" backslash \\ newline \n tab \t");
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ( "list",
          Json.List [ Json.Int 1; Json.Float 2.0; Json.Obj []; Json.List [] ]
        );
      ]
  in
  (match Json.of_string (Json.to_string doc) with
  | Ok parsed -> check_bool "pretty round-trip" true (parsed = doc)
  | Error msg -> Alcotest.fail msg);
  (match Json.of_string (Json.to_string ~compact:true doc) with
  | Ok parsed -> check_bool "compact round-trip" true (parsed = doc)
  | Error msg -> Alcotest.fail msg);
  check_bool "trailing input rejected" true
    (Result.is_error (Json.of_string "{} x"));
  check_bool "bad escape rejected" true
    (Result.is_error (Json.of_string "\"\\q\""))

(* The books balance: a measured phase's cycles decompose exactly into
   the counter deltas times the timing-model prices (the identity
   docs/METRICS.md documents). *)
let test_cycle_identity () =
  let cfg =
    {
      Runner.default with
      Runner.repr = Repr.Riv;
      elems = 500;
      traversals = 3;
    }
  in
  let m = Runner.run cfg in
  let d = m.Runner.counters in
  let p = cfg.Runner.timing in
  let expected =
    get "timing.alu_cycles" d
    + (get "timing.flushes" d * p.Timing_config.clflush)
    + (get "timing.fences" d * p.Timing_config.wbarrier)
    + ((get "cache.l1.hits" d + get "cache.l1.misses" d)
      * p.Timing_config.l1_hit)
    + ((get "cache.l2.hits" d + get "cache.l2.misses" d)
      * p.Timing_config.l2_hit)
    + ((get "cache.l3.hits" d + get "cache.l3.misses" d)
      * p.Timing_config.l3_hit)
    + (get "mem.dram_reads" d * p.Timing_config.dram_read)
    + (get "mem.dram_writes" d * p.Timing_config.dram_write)
    + (get "mem.nvm_reads" d * p.Timing_config.nvm_read)
    + (get "mem.nvm_writes" d * p.Timing_config.nvm_write)
  in
  check "cycles decompose into counters" m.Runner.measured_cycles expected

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "fresh machine zero" `Quick
            test_fresh_machine_zero;
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "json round-trip" `Quick
            test_metrics_json_roundtrip;
        ] );
      ( "repr counters",
        [
          Alcotest.test_case "one op one counter" `Quick
            test_repr_op_counters;
          Alcotest.test_case "riv load breakdown" `Quick
            test_riv_load_breakdown;
          Alcotest.test_case "fat load breakdown" `Quick
            test_fat_load_breakdown;
          Alcotest.test_case "fat cache hit/miss" `Quick
            test_fat_cache_hit_miss;
          Alcotest.test_case "fat cache null" `Quick test_fat_cache_null;
          Alcotest.test_case "cross-region store raises, free" `Quick
            test_cross_region_store_raises_free;
        ] );
      ( "json",
        [ Alcotest.test_case "codec round-trip" `Quick
            test_json_codec_roundtrip ] );
      ( "cycles",
        [ Alcotest.test_case "identity" `Quick test_cycle_identity ] );
    ]
