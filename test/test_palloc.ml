module Palloc = Nvmpi_palloc.Palloc
module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Repr = Core.Repr
module Memsim = Core.Memsim
module Clock = Core.Clock
module Timing = Core.Timing
module Metrics = Core.Metrics
module Vaddr = Core.Kinds.Vaddr

(* Tests bless host integers at the Figure 8 trust boundary. *)
let va = Vaddr.v
let ia (a : Vaddr.t) = (a :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A bare heap over raw simulated memory (no Machine): memsim + a
   timing model for the clwb/fence traffic palloc issues. *)
let fresh ?(size = 256 * 1024) ?(base = 0x1000) () =
  let mem = Memsim.create () in
  Memsim.map mem ~addr:(va base) ~size;
  let clock = Clock.create () in
  let timing = Timing.create ~clock ~is_nvm:(fun _ -> true) () in
  Timing.attach timing mem;
  let metrics = Metrics.create () in
  let t =
    Palloc.init ~mem ~timing ~metrics ~lo:(va base) ~hi:(va (base + size))
  in
  (mem, timing, metrics, t)

let reattach mem timing metrics ?(recover = false) ~base ~size () =
  (if recover then Palloc.recover else Palloc.attach)
    ~mem ~timing ~metrics ~lo:(va base) ~hi:(va (base + size))

(* {1 Small path} *)

let test_small_classes_route () =
  let _, _, _, t = fresh () in
  Array.iter
    (fun cs ->
      let a = Palloc.alloc t cs in
      check (Printf.sprintf "usable %d" cs) cs (Palloc.usable_size t a);
      let b = Palloc.alloc t (cs - 1) in
      check (Printf.sprintf "usable %d-1 rounds up" cs) cs
        (Palloc.usable_size t b);
      Palloc.check t)
    Palloc.class_sizes;
  (* One over a class boundary lands in the next class. *)
  let a = Palloc.alloc t 17 in
  check "17 -> 32" 32 (Palloc.usable_size t a);
  Palloc.check t

let test_small_reuse_lifo () =
  let _, _, _, t = fresh () in
  let a = Palloc.alloc t 64 in
  Palloc.free t a;
  let b = Palloc.alloc t 64 in
  check "freed small block reused" (ia a) (ia b);
  Palloc.check t

let test_slab_refill_carves_blocks () =
  let _, _, m, t = fresh () in
  (* Drain one slab's worth of a class: a second refill must happen. *)
  let snap = Metrics.snapshot m in
  let refills0 = try List.assoc "alloc.slab_refills" snap with Not_found -> 0 in
  let blocks = Array.init 200 (fun _ -> Palloc.alloc t 16) in
  Palloc.check t;
  let snap = Metrics.snapshot m in
  let refills1 = List.assoc "alloc.slab_refills" snap in
  check_bool "at least two slab refills" true (refills1 - refills0 >= 2);
  Array.iter (Palloc.free t) blocks;
  Palloc.check t

let test_double_free_small_detected () =
  let _, _, _, t = fresh () in
  let a = Palloc.alloc t 64 in
  Palloc.free t a;
  check_bool "double free raises" true
    (try
       Palloc.free t a;
       false
     with Palloc.Corrupted _ -> true)

(* {1 Large path} *)

let test_large_split_and_coalesce () =
  let _, _, _, t = fresh () in
  let blocks = Array.init 6 (fun _ -> Palloc.alloc t 8000) in
  Palloc.check t;
  let allocated0, _ = Palloc.block_count t in
  check "six live blocks" 6 allocated0;
  (* Free out of order: middle, neighbours — must coalesce. *)
  Palloc.free t blocks.(3);
  Palloc.check t;
  Palloc.free t blocks.(2);
  Palloc.check t;
  Palloc.free t blocks.(4);
  Palloc.check t;
  Palloc.free t blocks.(0);
  Palloc.free t blocks.(1);
  Palloc.free t blocks.(5);
  Palloc.check t;
  let allocated, free = Palloc.block_count t in
  check "all freed" 0 allocated;
  check "fully coalesced" 1 free

let test_double_free_large_detected () =
  let _, _, _, t = fresh () in
  let a = Palloc.alloc t 8000 in
  Palloc.free t a;
  check_bool "double free raises" true
    (try
       Palloc.free t a;
       false
     with Palloc.Corrupted _ -> true)

let test_out_of_memory () =
  let _, _, _, t = fresh ~size:4096 () in
  check_bool "oom raises with accounting" true
    (try
       for _ = 1 to 1024 do
         ignore (Palloc.alloc t 3000)
       done;
       false
     with Palloc.Out_of_memory { requested; free } ->
       requested > 0 && free >= 0)

let test_free_and_frag_accounting () =
  let _, _, m, t = fresh () in
  let f0 = Palloc.free_bytes t in
  let a = Palloc.alloc t 10000 in
  check_bool "large alloc shrinks free bytes" true (Palloc.free_bytes t < f0);
  let b = Palloc.alloc t 64 in
  (* The refill carved a slab: its other blocks are captive free bytes. *)
  let frag = Palloc.frag_bytes t in
  check_bool "slab leftovers are fragmentation" true (frag > 0);
  let snap = Metrics.snapshot m in
  check "frag gauge mirrors sweep" frag (List.assoc "alloc.frag_bytes" snap);
  Palloc.free t a;
  Palloc.free t b;
  (* The slab is not retired: its per-block state words stay as
     metadata overhead, so free bytes land just under the baseline. *)
  let f1 = Palloc.free_bytes t in
  check_bool "free bytes back modulo slab metadata" true
    (f1 <= f0 && f0 - f1 < 1024);
  let allocated, _ = Palloc.block_count t in
  check "nothing left allocated" 0 allocated;
  Palloc.check t

(* {1 Root cells} *)

let test_alloc_into_publishes_root () =
  let _, _, _, t = fresh () in
  let a = Palloc.alloc_into t ~root:3 100 in
  check "root holds payload offset" (ia a - 0x1000) (Palloc.root_get t 3);
  check_bool "occupied root rejected" true
    (try
       ignore (Palloc.alloc_into t ~root:3 100);
       false
     with Invalid_argument _ -> true);
  Palloc.free_from t ~root:3;
  check "root cleared" 0 (Palloc.root_get t 3);
  check_bool "empty root free raises" true
    (try
       Palloc.free_from t ~root:3;
       false
     with Palloc.Corrupted _ -> true);
  Palloc.check t

(* {1 Reattach / recover / position independence} *)

let test_attach_preserves_state () =
  let mem, timing, m, t = fresh () in
  let a = Palloc.alloc t 64 in
  let b = Palloc.alloc t 9000 in
  Palloc.free t a;
  let t' = reattach mem timing m ~base:0x1000 ~size:(256 * 1024) () in
  Palloc.check t';
  let c = Palloc.alloc t' 64 in
  check "clean attach reuses the freed small block" (ia a) (ia c);
  Palloc.free t' b;
  Palloc.free t' c;
  Palloc.check t'

let test_recover_on_clean_image () =
  let mem, timing, m, t = fresh () in
  let a = Palloc.alloc t 64 in
  let b = Palloc.alloc t 9000 in
  Palloc.free t a;
  let before = Palloc.allocated_payloads t in
  let t' = reattach mem timing m ~recover:true ~base:0x1000 ~size:(256 * 1024) () in
  Palloc.check t';
  Alcotest.(check (list int))
    "recover preserves the allocated set" before
    (Palloc.allocated_payloads t');
  Palloc.free t' b;
  Palloc.check t'

let test_attach_after_move () =
  (* Format, allocate (both paths), copy the bytes elsewhere, attach at
     the new base: every offset must still make sense — the palloc twin
     of the Freelist remap test. *)
  let size = 64 * 1024 in
  let mem, timing, m, t = fresh ~size () in
  Memsim.map mem ~addr:(va 0x100000) ~size;
  let small = Palloc.alloc t 64 in
  let large = Palloc.alloc t 9000 in
  Memsim.store64 mem small 0xBEEF;
  Memsim.store64 mem large 0xCAFE;
  let gone = Palloc.alloc t 128 in
  Palloc.free t gone;
  let image = Memsim.blit_to_bytes mem ~addr:(va 0x1000) ~len:size in
  Memsim.blit_from_bytes mem ~addr:(va 0x100000) image;
  let t' = reattach mem timing m ~base:0x100000 ~size () in
  Palloc.check t';
  let move a = va (ia a - 0x1000 + 0x100000) in
  check "small payload moved intact" 0xBEEF (Memsim.load64 mem (move small));
  check "large payload moved intact" 0xCAFE (Memsim.load64 mem (move large));
  check "usable size survives the move" 64 (Palloc.usable_size t' (move small));
  Palloc.free t' (move small);
  Palloc.free t' (move large);
  Palloc.check t';
  let allocated, _ = Palloc.block_count t' in
  check "all freed after move" 0 allocated

(* Every representation's placement pattern: open a region under a
   seeded machine, format a palloc heap inside it, fill it through
   alloc_into roots, then move the region the way that representation
   would see it move (self-contained reprs ride Machine.remap_region to
   a guaranteed-fresh segment; normal/swizzle — pinned in the server
   for exactly this reason — close and reopen in place), re-attach and
   keep allocating. *)
let test_position_independence_all_reprs () =
  List.iteri
    (fun i kind ->
      let store = Store.create () in
      let m = Machine.create ~seed:(1000 + i) ~store () in
      let rid = Machine.create_region m ~size:(1 lsl 17) in
      let r = Machine.open_region m rid in
      let heap_bytes = 1 lsl 16 in
      let lo = Region.alloc r ~align:16 heap_bytes in
      let heap_off = Region.offset_of_addr r lo in
      let mem = m.Machine.mem and timing = m.Machine.timing in
      let metrics = Machine.metrics m in
      let hi = va (ia lo + heap_bytes) in
      let t = Palloc.init ~mem ~timing ~metrics ~lo ~hi in
      let sizes = [| 24; 4096; 9000; 120; 500 |] in
      Array.iteri
        (fun root n ->
          let a = Palloc.alloc_into t ~root n in
          Memsim.store64 mem a (0xA110C + root))
        sizes;
      Palloc.check t;
      let r' =
        match Repr.remap_safety kind with
        | `Self_contained | `Via_passes -> Machine.remap_region m rid
        | `Dangles ->
            (* Pinned placement: survive close/reopen at the same base. *)
            let seg = Core.Kinds.seg_of_vaddr m.Machine.layout (Region.base r) in
            Machine.close_region m rid;
            Machine.open_region ~at_nvbase:seg m rid
      in
      let lo' = Region.addr_of_offset r' heap_off in
      let hi' = va (ia lo' + heap_bytes) in
      check_bool
        (Printf.sprintf "%s: magic found at the new base" (Repr.to_string kind))
        true
        (Palloc.is_formatted mem ~lo:lo');
      let t' = Palloc.attach ~mem ~timing ~metrics ~lo:lo' ~hi:hi' in
      Palloc.check t';
      Array.iteri
        (fun root n ->
          let p = Palloc.payload_of_offset t' (Palloc.root_get t' root) in
          check
            (Printf.sprintf "%s: root %d payload survived" (Repr.to_string kind) root)
            (0xA110C + root) (Memsim.load64 mem p);
          check_bool
            (Printf.sprintf "%s: root %d usable" (Repr.to_string kind) root)
            true
            (Palloc.usable_size t' p >= n))
        sizes;
      (* Keep allocating and churning at the new base. *)
      Palloc.free_from t' ~root:1;
      let a = Palloc.alloc t' 2000 in
      Palloc.free t' a;
      ignore (Palloc.alloc_into t' ~root:1 64);
      Palloc.check t')
    Repr.all

(* {1 Randomized differential model}

   The pure reference: a list of (payload offset, usable size) for live
   blocks. Palloc must agree on the allocated set after every op, and
   [check] must hold throughout. *)
let prop_random_ops =
  QCheck.Test.make ~name:"palloc random alloc/free vs model" ~count:60
    QCheck.(
      pair (int_bound 0x3FFFFFF)
        (list_of_size Gen.(return 120) (int_range 1 9000)))
    (fun (seed, sizes) ->
      let rng = Random.State.make [| seed; 0x9A110C |] in
      let _, _, _, t = fresh ~size:(512 * 1024) () in
      let live = ref [] in
      List.iter
        (fun n ->
          (if Random.State.bool rng || !live = [] then (
             match Palloc.alloc t n with
             | a -> live := (ia a - 0x1000, Palloc.usable_size t a) :: !live
             | exception Palloc.Out_of_memory _ -> ())
           else
             let i = Random.State.int rng (List.length !live) in
             let off, _ = List.nth !live i in
             live := List.filteri (fun j _ -> j <> i) !live;
             Palloc.free t (va (0x1000 + off)));
          Palloc.check t;
          let expect = List.sort compare (List.map fst !live) in
          if Palloc.allocated_payloads t <> expect then
            QCheck.Test.fail_report "allocated set diverged from model")
        sizes;
      (* No two live blocks may share a byte. *)
      let sorted = List.sort compare !live in
      let rec no_overlap = function
        | (o1, s1) :: ((o2, _) :: _ as rest) ->
            o1 + s1 <= o2 && no_overlap rest
        | _ -> true
      in
      no_overlap sorted)

let () =
  Alcotest.run "palloc"
    [
      ( "small",
        [
          Alcotest.test_case "class routing" `Quick test_small_classes_route;
          Alcotest.test_case "LIFO reuse" `Quick test_small_reuse_lifo;
          Alcotest.test_case "slab refills" `Quick
            test_slab_refill_carves_blocks;
          Alcotest.test_case "double free detected" `Quick
            test_double_free_small_detected;
        ] );
      ( "large",
        [
          Alcotest.test_case "split and coalesce" `Quick
            test_large_split_and_coalesce;
          Alcotest.test_case "double free detected" `Quick
            test_double_free_large_detected;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "free/frag accounting" `Quick
            test_free_and_frag_accounting;
        ] );
      ( "roots",
        [
          Alcotest.test_case "alloc_into/free_from" `Quick
            test_alloc_into_publishes_root;
        ] );
      ( "position independence",
        [
          Alcotest.test_case "clean attach" `Quick test_attach_preserves_state;
          Alcotest.test_case "recover on clean image" `Quick
            test_recover_on_clean_image;
          Alcotest.test_case "reattach after move" `Quick test_attach_after_move;
          Alcotest.test_case "all nine representations" `Quick
            test_position_independence_all_reprs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_ops ]);
    ]
