module Clock = Core.Clock
module Cache_level = Core.Cache_level
module Timing = Core.Timing
module Timing_config = Core.Timing_config
module Memsim = Core.Memsim
module Vaddr = Core.Kinds.Vaddr

(* Tests bless literal addresses at the Figure 8 trust boundary. *)
let va = Vaddr.v

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Clock *)

let test_clock () =
  let c = Clock.create () in
  check "zero" 0 (Clock.cycles c);
  Clock.tick c 5;
  Clock.tick c 7;
  check "accumulates" 12 (Clock.cycles c);
  let (), d = Clock.delta c (fun () -> Clock.tick c 100) in
  check "delta" 100 d;
  Clock.reset c;
  check "reset" 0 (Clock.cycles c);
  Alcotest.check_raises "negative tick" (Invalid_argument "Clock.tick")
    (fun () -> Clock.tick c (-1))

let test_clock_seconds () =
  let c = Clock.create () in
  Clock.tick c 2_600_000_000;
  Alcotest.(check (float 1e-9)) "1 second at 2.6GHz" 1.0 (Clock.to_seconds c)

(* Cache level *)

(* [Cache_level.access] returns an unboxed int: [Cache_level.hit],
   [Cache_level.miss_clean], or the line-aligned address (>= 0) of the
   dirty victim written back. *)
let is_hit r = r = Cache_level.hit
let is_miss r = r <> Cache_level.hit

let test_cache_hit_miss () =
  let c = Cache_level.create ~size_bytes:1024 ~ways:2 ~line_bits:6 in
  check "sets" 8 (Cache_level.sets c);
  check_bool "cold access must miss" true
    (is_miss (Cache_level.access c ~addr:0x100 ~write:false));
  check_bool "second access must hit" true
    (is_hit (Cache_level.access c ~addr:0x100 ~write:false));
  (* Same line, different byte. *)
  check_bool "same-line access must hit" true
    (is_hit (Cache_level.access c ~addr:0x13F ~write:false))

let test_cache_lru_eviction () =
  let c = Cache_level.create ~size_bytes:1024 ~ways:2 ~line_bits:6 in
  (* Three lines mapping to the same set (stride = sets*line = 512). *)
  let a0 = 0 and a1 = 512 and a2 = 1024 in
  ignore (Cache_level.access c ~addr:a0 ~write:true);
  ignore (Cache_level.access c ~addr:a1 ~write:false);
  (* Touch a0 so a1 is LRU. *)
  ignore (Cache_level.access c ~addr:a0 ~write:false);
  check "a2 must miss; evicted line a1 was clean" Cache_level.miss_clean
    (Cache_level.access c ~addr:a2 ~write:false);
  (* a0 must still be resident, a1 evicted. *)
  check_bool "a0 was evicted against LRU" true
    (is_hit (Cache_level.access c ~addr:a0 ~write:false));
  check_bool "a1 must have been evicted" true
    (is_miss (Cache_level.access c ~addr:a1 ~write:false))

let test_cache_dirty_eviction () =
  let c = Cache_level.create ~size_bytes:128 ~ways:1 ~line_bits:6 in
  (* Direct-mapped, 2 sets: 0 and 128 collide. *)
  ignore (Cache_level.access c ~addr:0 ~write:true);
  check "dirty line 0 must be written back" 0
    (Cache_level.access c ~addr:128 ~write:false);
  (* Flushing a clean line reports no write-back. *)
  ignore (Cache_level.access c ~addr:64 ~write:false);
  check_bool "clean flush" false (Cache_level.flush_line c ~addr:64);
  ignore (Cache_level.access c ~addr:64 ~write:true);
  check_bool "dirty flush" true (Cache_level.flush_line c ~addr:64)

let test_cache_stats_and_invalidate () =
  let c = Cache_level.create ~size_bytes:1024 ~ways:2 ~line_bits:6 in
  ignore (Cache_level.access c ~addr:0 ~write:false);
  ignore (Cache_level.access c ~addr:0 ~write:false);
  let s = Cache_level.stats c in
  check "hits" 1 s.Cache_level.hits;
  check "misses" 1 s.Cache_level.misses;
  Cache_level.invalidate_all c;
  check_bool "hit after invalidate_all" true
    (is_miss (Cache_level.access c ~addr:0 ~write:false));
  Cache_level.reset_stats c;
  check "stats reset" 0 (Cache_level.stats c).Cache_level.hits

(* Timing over memsim *)

let layout = Core.Layout.default

let machine_parts () =
  let mem = Memsim.create () in
  let clock = Clock.create () in
  let timing =
    Timing.create ~clock ~is_nvm:(Core.Layout.in_nv_space layout) ()
  in
  Timing.attach timing mem;
  (mem, clock, timing)

let cfg = Timing_config.default

let test_dram_vs_nvm_latency () =
  let mem, clock, _ = machine_parts () in
  let dram = va 0x10000 in
  let nvm = va (Core.Layout.nv_start layout) in
  Memsim.map mem ~addr:dram ~size:0x1000;
  Memsim.map mem ~addr:nvm ~size:0x1000;
  let (), d_dram = Clock.delta clock (fun () -> ignore (Memsim.load64 mem dram)) in
  let (), d_nvm = Clock.delta clock (fun () -> ignore (Memsim.load64 mem nvm)) in
  check "cold DRAM load"
    (cfg.Timing_config.l1_hit + cfg.Timing_config.l2_hit
   + cfg.Timing_config.l3_hit + cfg.Timing_config.dram_read)
    d_dram;
  check "cold NVM load"
    (cfg.Timing_config.l1_hit + cfg.Timing_config.l2_hit
   + cfg.Timing_config.l3_hit + cfg.Timing_config.nvm_read)
    d_nvm

let test_warm_hit_cost () =
  let mem, clock, _ = machine_parts () in
  let a = va 0x10000 in
  Memsim.map mem ~addr:a ~size:0x1000;
  ignore (Memsim.load64 mem a);
  let (), d = Clock.delta clock (fun () -> ignore (Memsim.load64 mem a)) in
  check "L1 hit" cfg.Timing_config.l1_hit d

let test_alu_flush_fence () =
  let mem, clock, timing = machine_parts () in
  let nvm = va (Core.Layout.nv_start layout) in
  Memsim.map mem ~addr:nvm ~size:0x1000;
  let (), d = Clock.delta clock (fun () -> Timing.alu timing 3) in
  check "alu" 3 d;
  let (), d = Clock.delta clock (fun () -> Timing.fence timing) in
  check "fence" cfg.Timing_config.wbarrier d;
  (* Flush of a dirty NVM line costs clflush + NVM write. *)
  Memsim.store64 mem nvm 1;
  let (), d = Clock.delta clock (fun () -> Timing.flush timing ~addr:(nvm :> int)) in
  check "dirty flush"
    (cfg.Timing_config.clflush + cfg.Timing_config.nvm_write)
    d;
  (* Second flush: line no longer cached, only issue cost. *)
  let (), d = Clock.delta clock (fun () -> Timing.flush timing ~addr:(nvm :> int)) in
  check "clean flush" cfg.Timing_config.clflush d

let test_mem_stats () =
  let mem, _, timing = machine_parts () in
  let nvm = va (Core.Layout.nv_start layout) in
  Memsim.map mem ~addr:(va 0x10000) ~size:0x1000;
  Memsim.map mem ~addr:nvm ~size:0x1000;
  ignore (Memsim.load64 mem (va 0x10000));
  ignore (Memsim.load64 mem nvm);
  ignore (Memsim.load64 mem nvm);
  let s = Timing.mem_stats timing in
  check "dram reads" 1 s.Timing.dram_reads;
  check "nvm reads" 1 s.Timing.nvm_reads;
  Timing.reset_stats timing;
  check "reset" 0 (Timing.mem_stats timing).Timing.nvm_reads

let test_working_set_behaviour () =
  (* A working set larger than L1 but within L2 should mostly hit L2 on a
     second pass. *)
  let mem, clock, _ = machine_parts () in
  let a = va 0x100000 in
  let n = 1024 (* 64 KiB of lines: 2x L1, well within L2 *) in
  Memsim.map mem ~addr:a ~size:(n * 64);
  let pass () =
    for i = 0 to n - 1 do
      ignore (Memsim.load64 mem (Vaddr.add a (i * 64)))
    done
  in
  pass ();
  let (), warm = Clock.delta clock pass in
  let per_line = warm / n in
  check_bool "second pass cheaper than DRAM" true
    (per_line < cfg.Timing_config.dram_read);
  check_bool "second pass dearer than pure L1" true
    (per_line > cfg.Timing_config.l1_hit)

let test_dirty_writeback_charged () =
  (* Write enough distinct NVM lines to force dirty evictions through
     L1/L2/L3; the model must charge NVM writes for them. *)
  let mem, _, timing = machine_parts () in
  let nvm = va (Core.Layout.nv_start layout) in
  let lines = (2 * cfg.Timing_config.l3_size) / 64 in
  Memsim.map mem ~addr:nvm ~size:(lines * 64);
  for i = 0 to lines - 1 do
    Memsim.store64 mem (Vaddr.add nvm (i * 64)) i
  done;
  let s = Timing.mem_stats timing in
  check_bool "dirty evictions reached NVM" true (s.Timing.nvm_writes > 0)

let test_pp_stats_renders () =
  let _, _, timing = machine_parts () in
  let out = Format.asprintf "%a" Timing.pp_stats timing in
  check_bool "stats render" true (String.length out > 0)

let test_invalidate_caches_forces_misses () =
  let mem, clock, timing = machine_parts () in
  Memsim.map mem ~addr:(va 0x10000) ~size:0x1000;
  ignore (Memsim.load64 mem (va 0x10000));
  ignore (Memsim.load64 mem (va 0x10000));
  Timing.invalidate_caches timing;
  let (), d = Clock.delta clock (fun () -> ignore (Memsim.load64 mem (va 0x10000))) in
  check_bool "miss after invalidation" true (d > cfg.Timing_config.l1_hit)

(* Property: the cache level agrees with a naive reference model (a
   per-set LRU list) on hit/miss for random access streams. *)
let prop_cache_matches_reference =
  QCheck2.Test.make ~name:"cache level matches a reference LRU model"
    ~count:60
    QCheck2.Gen.(list_size (int_range 20 300) (int_range 0 127))
    (fun lines ->
      let ways = 2 and sets = 4 in
      let c =
        Cache_level.create ~size_bytes:(ways * sets * 64) ~ways ~line_bits:6
      in
      (* reference: per set, a most-recent-first list of lines *)
      let reference = Array.make sets [] in
      List.for_all
        (fun line ->
          let addr = line * 64 in
          let s = line mod sets in
          let hit_ref = List.mem line reference.(s) in
          reference.(s) <-
            line :: List.filter (fun l -> l <> line) reference.(s);
          if List.length reference.(s) > ways then
            reference.(s) <-
              List.filteri (fun i _ -> i < ways) reference.(s);
          let hit_c =
            Cache_level.access c ~addr ~write:false = Cache_level.hit
          in
          hit_c = hit_ref)
        lines)

let () =
  Alcotest.run "cachesim"
    [
      ( "clock",
        [
          Alcotest.test_case "tick/delta/reset" `Quick test_clock;
          Alcotest.test_case "seconds conversion" `Quick test_clock_seconds;
        ] );
      ( "cache-level",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "dirty eviction + flush" `Quick
            test_cache_dirty_eviction;
          Alcotest.test_case "stats + invalidate" `Quick
            test_cache_stats_and_invalidate;
          QCheck_alcotest.to_alcotest prop_cache_matches_reference;
        ] );
      ( "timing",
        [
          Alcotest.test_case "DRAM vs NVM latency" `Quick
            test_dram_vs_nvm_latency;
          Alcotest.test_case "warm hit cost" `Quick test_warm_hit_cost;
          Alcotest.test_case "alu/flush/fence" `Quick test_alu_flush_fence;
          Alcotest.test_case "memory stats" `Quick test_mem_stats;
          Alcotest.test_case "working-set behaviour" `Quick
            test_working_set_behaviour;
          Alcotest.test_case "dirty write-back charged" `Quick
            test_dirty_writeback_charged;
          Alcotest.test_case "pp_stats" `Quick test_pp_stats_renders;
          Alcotest.test_case "invalidate forces misses" `Quick
            test_invalidate_caches_forces_misses;
        ] );
    ]
