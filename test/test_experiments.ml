open Nvmpi_experiments
module Repr = Core.Repr

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Workloads *)

let test_keys_distinct_deterministic () =
  let a = Workload.keys ~n:500 ~seed:1 in
  let b = Workload.keys ~n:500 ~seed:1 in
  check_bool "deterministic" true (a = b);
  check "distinct" 500
    (List.length (List.sort_uniq compare (Array.to_list a)));
  Array.iter (fun k -> check_bool "positive" true (k > 0)) a

let test_search_sample_from_keys () =
  let keys = Workload.keys ~n:100 ~seed:2 in
  let sample = Workload.search_sample ~keys ~n:1000 ~seed:3 in
  check "sample size" 1000 (Array.length sample);
  let keyset = Hashtbl.create 100 in
  Array.iter (fun k -> Hashtbl.replace keyset k ()) keys;
  Array.iter
    (fun k -> check_bool "sampled from keys" true (Hashtbl.mem keyset k))
    sample

let test_key_word_total_injective () =
  let seen = Hashtbl.create 100 in
  for k = 1 to 5000 do
    let w = Workload.key_word k in
    check_bool "nonempty" true (String.length w > 0);
    check_bool "a-z" true (String.for_all (fun c -> c >= 'a' && c <= 'z') w);
    if Hashtbl.mem seen w then Alcotest.failf "collision at %d: %s" k w;
    Hashtbl.add seen w k
  done

let test_shuffle_permutes () =
  let a = Array.init 100 Fun.id in
  let b = Workload.shuffle a ~seed:4 in
  check_bool "same multiset" true
    (List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b));
  check_bool "actually shuffled" true (a <> b)

(* Runner *)

let small cfg = { cfg with Runner.elems = 300; traversals = 3 }

let test_run_counts_nodes () =
  let m = Runner.run (small Runner.default) in
  check "list nodes" 300 m.Runner.nodes;
  check_bool "cycles measured" true (m.Runner.measured_cycles > 0);
  check_bool "populate measured" true (m.Runner.populate_cycles > 0)

let test_checksum_invariant_across_reprs () =
  let base = Runner.run (small Runner.default) in
  List.iter
    (fun repr ->
      let m = Runner.run (small { Runner.default with Runner.repr = repr }) in
      check (Repr.to_string repr ^ " checksum") base.Runner.checksum
        m.Runner.checksum)
    Repr.all

let test_inapplicable_raises () =
  check_bool "off-holder multi-region" true
    (try
       ignore
         (Runner.run
            (small
               { Runner.default with Runner.repr = Repr.Off_holder; regions = 2 }));
       false
     with Invalid_argument _ -> true);
  check_bool "applicable flags" true
    (Runner.applicable Repr.Riv ~regions:10
    && (not (Runner.applicable Repr.Based ~regions:2))
    && Runner.applicable Repr.Based ~regions:1)

let test_search_workload () =
  let cfg =
    { (small Runner.default) with Runner.traversals = 0; searches = 200 }
  in
  let m = Runner.run cfg in
  check_bool "search cycles measured" true (m.Runner.measured_cycles > 0)

let test_tx_mode_runs () =
  let cfg = { (small Runner.default) with Runner.mode = Runner.Tx } in
  let m = Runner.run cfg in
  check "nodes" 300 m.Runner.nodes

let test_multi_region_runs () =
  let cfg =
    { (small Runner.default) with Runner.regions = 4; repr = Repr.Riv }
  in
  let m = Runner.run cfg in
  check "nodes" 300 m.Runner.nodes

let test_slowdown_sane () =
  let _, s =
    Runner.slowdown (small { Runner.default with Runner.repr = Repr.Fat })
  in
  check_bool "fat slower than normal" true (s > 1.0);
  let _, s =
    Runner.slowdown (small { Runner.default with Runner.repr = Repr.Based })
  in
  check_bool "based close to normal" true (s < 1.3)

let test_slowdown_ordering_all_structures () =
  List.iter
    (fun structure ->
      let cfg = small { Runner.default with Runner.structure } in
      let s repr = snd (Runner.slowdown { cfg with Runner.repr = repr }) in
      let offh = s Repr.Off_holder and riv = s Repr.Riv and fat = s Repr.Fat in
      check_bool
        (Instance.structure_name structure ^ ": off-holder <= riv")
        true (offh <= riv +. 0.02);
      check_bool
        (Instance.structure_name structure ^ ": riv < fat")
        true (riv < fat))
    Instance.structures

(* Figures (tiny scale: exercises the harness end to end) *)

let test_tables_render () =
  List.iter
    (fun (t : Table.t) ->
      check_bool (t.Table.title ^ " has rows") true (List.length t.Table.rows > 0);
      let cols = List.length t.Table.header in
      List.iter
        (fun r -> check (t.Table.title ^ " row width") cols (List.length r))
        t.Table.rows;
      (* Rendering must not raise. *)
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Table.render ppf t;
      Format.pp_print_flush ppf ();
      check_bool "rendered" true (Buffer.length buf > 0))
    [
      Figures.fig12 ~scale:0.02 ();
      Figures.table1 ~scale:0.02 ();
      Figures.breakdown ~scale:0.02 ();
    ]

let test_fig14_skips_intra_region_methods () =
  let t = Figures.fig14 ~scale:0.02 () in
  (* off-holder and based columns must be "-" in every row. *)
  let header = t.Table.header in
  let idx name =
    let rec go i = function
      | [] -> Alcotest.failf "column %s missing" name
      | h :: _ when h = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 header
  in
  let off_i = idx "off-holder" and based_i = idx "based" in
  List.iter
    (fun row ->
      Alcotest.(check string) "off-holder n/a" "-" (List.nth row off_i);
      Alcotest.(check string) "based n/a" "-" (List.nth row based_i))
    t.Table.rows

let test_fig15_runs () =
  let t = Figures.fig15 ~scale:0.02 () in
  check "two input sizes" 2 (List.length t.Table.rows)

let test_ablations_render () =
  List.iter
    (fun (t : Table.t) ->
      check_bool (t.Table.title ^ " has rows") true
        (List.length t.Table.rows > 0);
      let cols = List.length t.Table.header in
      List.iter
        (fun r -> check (t.Table.title ^ " row width") cols (List.length r))
        t.Table.rows)
    (Ablations.all ~scale:0.02 ())

let test_cold_mode_costs_more () =
  let base = { Runner.default with Runner.elems = 500; traversals = 1 } in
  let warm = Runner.run base in
  let cold = Runner.run { base with Runner.cold = true } in
  check_bool "cold traversal dearer than warm" true
    (cold.Runner.measured_cycles > warm.Runner.measured_cycles)

let test_extension_structures_run () =
  List.iter
    (fun structure ->
      let cfg =
        { Runner.default with Runner.structure; elems = 200; traversals = 2 }
      in
      let m = Runner.run cfg in
      check_bool
        (Instance.structure_name structure ^ " measured")
        true
        (m.Runner.measured_cycles > 0 && m.Runner.nodes > 0))
    Instance.extension_structures

let () =
  Alcotest.run "experiments"
    [
      ( "workload",
        [
          Alcotest.test_case "keys" `Quick test_keys_distinct_deterministic;
          Alcotest.test_case "search sample" `Quick test_search_sample_from_keys;
          Alcotest.test_case "key_word injective" `Quick
            test_key_word_total_injective;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
        ] );
      ( "runner",
        [
          Alcotest.test_case "run counts nodes" `Quick test_run_counts_nodes;
          Alcotest.test_case "checksums invariant" `Slow
            test_checksum_invariant_across_reprs;
          Alcotest.test_case "inapplicable raises" `Quick
            test_inapplicable_raises;
          Alcotest.test_case "search workload" `Quick test_search_workload;
          Alcotest.test_case "tx mode" `Quick test_tx_mode_runs;
          Alcotest.test_case "multi-region" `Quick test_multi_region_runs;
          Alcotest.test_case "slowdown sane" `Slow test_slowdown_sane;
          Alcotest.test_case "cost ordering per structure" `Slow
            test_slowdown_ordering_all_structures;
        ] );
      ( "figures",
        [
          Alcotest.test_case "tables render" `Slow test_tables_render;
          Alcotest.test_case "fig14 skips intra-region" `Slow
            test_fig14_skips_intra_region_methods;
          Alcotest.test_case "fig15 runs" `Slow test_fig15_runs;
          Alcotest.test_case "ablations render" `Slow test_ablations_render;
          Alcotest.test_case "cold mode" `Quick test_cold_mode_costs_more;
          Alcotest.test_case "extension structures run" `Quick
            test_extension_structures_run;
        ] );
    ]
