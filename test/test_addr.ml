module Bitops = Core.Bitops
module Layout = Core.Layout

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Bitops *)

let test_ceil_div () =
  check "7/2" 4 (Bitops.ceil_div 7 2);
  check "8/2" 4 (Bitops.ceil_div 8 2);
  check "0/5" 0 (Bitops.ceil_div 0 5);
  check "1/8" 1 (Bitops.ceil_div 1 8);
  Alcotest.check_raises "negative" (Invalid_argument "Bitops.ceil_div")
    (fun () -> ignore (Bitops.ceil_div (-1) 2))

let test_pow2 () =
  check_bool "1" true (Bitops.is_pow2 1);
  check_bool "2" true (Bitops.is_pow2 2);
  check_bool "3" false (Bitops.is_pow2 3);
  check_bool "0" false (Bitops.is_pow2 0);
  check_bool "neg" false (Bitops.is_pow2 (-4));
  check "next 1" 1 (Bitops.next_pow2 1);
  check "next 3" 4 (Bitops.next_pow2 3);
  check "next 4" 4 (Bitops.next_pow2 4);
  check "next 1000" 1024 (Bitops.next_pow2 1000);
  check "log2 1" 0 (Bitops.log2_exact 1);
  check "log2 1024" 10 (Bitops.log2_exact 1024);
  check "ceil_log2 5" 3 (Bitops.ceil_log2 5)

let test_mask_extract () =
  check "mask 0" 0 (Bitops.mask 0);
  check "mask 4" 15 (Bitops.mask 4);
  check_bool "mask 62 positive" true (Bitops.mask 62 > 0);
  check "extract" 0xB (Bitops.extract 0xAB3 ~lo:4 ~len:4);
  check "deposit" 0xAF3 (Bitops.deposit 0xAB3 ~lo:4 ~len:4 ~field:0xF);
  check "align_up 13 8" 16 (Bitops.align_up 13 8);
  check "align_up 16 8" 16 (Bitops.align_up 16 8);
  check_bool "aligned" true (Bitops.is_aligned 64 8);
  check_bool "unaligned" false (Bitops.is_aligned 63 8);
  check "popcount" 3 (Bitops.popcount 0b1011)

(* Layout validity *)

let test_layout_presets () =
  List.iter
    (fun (name, l) ->
      check_bool name true (Layout.in_nv_space l (Layout.nv_start l));
      check (name ^ " sum") l.Layout.word_bits
        (l.Layout.l1 + l.Layout.l2 + l.Layout.l3))
    [ ("default", Layout.default); ("small", Layout.small);
      ("large", Layout.large_segments) ]

let test_layout_rejects () =
  let bad ~l1 ~l2 ~l3 ~l4 =
    match Layout.v ~l1 ~l2 ~l3 ~l4 () with
    | Ok _ -> Alcotest.failf "layout l1=%d l2=%d l3=%d l4=%d accepted" l1 l2 l3 l4
    | Error _ -> ()
  in
  bad ~l1:4 ~l2:26 ~l3:33 ~l4:30 (* sum <> word_bits *);
  bad ~l1:4 ~l2:26 ~l3:32 ~l4:20 (* l4 < l2 *);
  bad ~l1:4 ~l2:26 ~l3:32 ~l4:40 (* riv value does not fit *);
  bad ~l1:4 ~l2:2 ~l3:56 ~l4:30 (* l2 too small *)

let test_layout_fields () =
  let l = Layout.default in
  let base = Layout.segment_base_of_nvbase l (Layout.data_nvbase_min l) in
  check_bool "data addr" true (Layout.is_data_addr l base);
  check "nvbase roundtrip" (Layout.data_nvbase_min l) (Layout.nvbase l base);
  check "get_base" base (Layout.get_base l (base + 12345));
  check "seg_offset" 12345 (Layout.seg_offset l (base + 12345));
  check_bool "volatile" true (Layout.is_volatile l 0x10000);
  check_bool "not volatile" false (Layout.is_volatile l base)

let test_rid_entry_same_for_all_addrs_in_segment () =
  let l = Layout.default in
  let base = Layout.segment_base_of_nvbase l (Layout.data_nvbase_min l + 7) in
  check "entry from base vs interior" (Layout.rid_entry_addr l base)
    (Layout.rid_entry_addr l (base + 0x12345678));
  check "entry from last byte" (Layout.rid_entry_addr l base)
    (Layout.rid_entry_addr l (base + Layout.segment_size l - 1))

let test_riv_pack () =
  let l = Layout.default in
  let v = Layout.riv_pack l ~rid:42 ~offset:0xDEAD0 in
  check "rid" 42 (Layout.riv_rid l v);
  check "offset" 0xDEAD0 (Layout.riv_offset l v);
  Alcotest.check_raises "rid 0" (Invalid_argument "Layout.riv_pack: bad rid")
    (fun () -> ignore (Layout.riv_pack l ~rid:0 ~offset:0));
  Alcotest.check_raises "offset too big"
    (Invalid_argument "Layout.riv_pack: bad offset") (fun () ->
      ignore (Layout.riv_pack l ~rid:1 ~offset:(Layout.segment_size l)))

(* Exact-boundary checks for the five classification predicates: the
   first/last address of each area is classified correctly and the
   address one byte outside is not. Run on every preset so the bit math
   is exercised at three different field widths. *)
let test_classification_boundaries () =
  List.iter
    (fun (name, l) ->
      let nv = Layout.nv_start l in
      let chk msg = check_bool (name ^ ": " ^ msg) in
      (* NV-space border: nv_start is the first NV address; nv_start - 1
         is the last volatile one. *)
      chk "nv_start in nv space" true (Layout.in_nv_space l nv);
      chk "nv_start - 1 volatile" true (Layout.is_volatile l (nv - 1));
      chk "nv_start - 1 not nv" false (Layout.in_nv_space l (nv - 1));
      chk "nv_start not volatile" false (Layout.is_volatile l nv);
      chk "top of address space in nv" true
        (Layout.in_nv_space l ((1 lsl l.Layout.word_bits) - 1));
      (* Data area: the first data address is the base of the first
         data-area segment; one byte below it is not data. *)
      let first_data =
        Layout.segment_base_of_nvbase l (Layout.data_nvbase_min l)
      in
      chk "first data address" true (Layout.is_data_addr l first_data);
      chk "below first data address" false
        (Layout.is_data_addr l (first_data - 1));
      let last_data =
        Layout.segment_base_of_nvbase l ((1 lsl l.Layout.l2) - 1)
        + Layout.segment_size l - 1
      in
      chk "last data address" true (Layout.is_data_addr l last_data);
      (* RID table: entries exist for data-area nvbases only. The first
         entry is the one for the first data segment; the last entry's
         last byte is the table's last byte. *)
      let s_r = Bitops.log2_exact (Layout.rid_entry_bytes l) in
      let rid_lo = nv + (Layout.data_nvbase_min l lsl s_r) in
      let rid_hi = nv + (1 lsl (l.Layout.l2 + s_r)) - 1 in
      chk "first rid entry" true (Layout.is_rid_table_addr l rid_lo);
      chk "below first rid entry" false
        (Layout.is_rid_table_addr l (rid_lo - 1));
      chk "last rid table byte" true (Layout.is_rid_table_addr l rid_hi);
      chk "past rid table" false (Layout.is_rid_table_addr l (rid_hi + 1));
      chk "first rid entry from entry_addr" true
        (Layout.is_rid_table_addr l (Layout.rid_entry_addr l first_data));
      chk "last rid entry from entry_addr" true
        (Layout.is_rid_table_addr l (Layout.rid_entry_addr l last_data));
      (* Base table: one entry per region ID up to max_rid. *)
      let s_b = Bitops.log2_exact (Layout.base_entry_bytes l) in
      let base_lo = nv + (1 lsl (l.Layout.l4 + s_b)) in
      let base_hi = nv + (1 lsl (l.Layout.l4 + s_b + 1)) - 1 in
      chk "first base entry" true (Layout.is_base_table_addr l base_lo);
      chk "below first base entry" false
        (Layout.is_base_table_addr l (base_lo - 1));
      chk "last base table byte" true (Layout.is_base_table_addr l base_hi);
      chk "past base table" false (Layout.is_base_table_addr l (base_hi + 1));
      (* The max_rid entry is the last one: its final byte is the final
         byte of the table. *)
      let last_entry = Layout.base_entry_addr l ~rid:(Layout.max_rid l) in
      chk "max_rid entry in table" true
        (Layout.is_base_table_addr l last_entry);
      check (name ^ ": max_rid entry is the last entry") base_hi
        (last_entry + Layout.base_entry_bytes l - 1);
      (* The areas are mutually exclusive at their boundaries. *)
      List.iter
        (fun a ->
          let d = Layout.is_data_addr l a
          and r = Layout.is_rid_table_addr l a
          and b = Layout.is_base_table_addr l a in
          chk (Printf.sprintf "0x%x in at most one area" a) true
            ((if d then 1 else 0) + (if r then 1 else 0)
             + (if b then 1 else 0) <= 1))
        [ first_data; first_data - 1; last_data; rid_lo; rid_hi; rid_hi + 1;
          base_lo; base_hi; base_hi + 1 ])
    [ ("default", Layout.default); ("small", Layout.small);
      ("large", Layout.large_segments) ]

let test_space_formulas () =
  let l = Layout.default in
  check "physical overhead 20 regions"
    (20 * (Layout.rid_entry_bytes l + Layout.base_entry_bytes l))
    (Layout.physical_overhead_bytes l ~regions:20);
  check_bool "virtual table space positive" true (Layout.table_virtual_bytes l > 0)

(* Property: for random valid layouts, the three NV-space areas never
   overlap, and table entry addresses stay inside their own areas. *)

let layout_gen =
  let open QCheck2.Gen in
  let* word_bits = int_range 24 62 in
  let* l1 = int_range 1 4 in
  let* l2 = int_range 3 (min 20 (word_bits - l1 - 8)) in
  let l3 = word_bits - l1 - l2 in
  let* l4 = int_range l2 (min 24 (word_bits - l3)) in
  return (word_bits, l1, l2, l3, l4)

let prop_no_overlap =
  QCheck2.Test.make ~name:"layout areas never overlap" ~count:500 layout_gen
    (fun (word_bits, l1, l2, l3, l4) ->
      match Layout.v ~word_bits ~l1 ~l2 ~l3 ~l4 () with
      | Error _ -> QCheck2.assume_fail ()
      | Ok l ->
          let st = Random.State.make [| word_bits; l1; l2; l4 |] in
          let ok = ref true in
          for _ = 1 to 50 do
            let nb =
              Layout.data_nvbase_min l
              + Random.State.full_int st (Layout.usable_segments l)
            in
            let rid =
              1 + Random.State.full_int st (min 1_000_000 (Layout.max_rid l))
            in
            let seg = Layout.segment_base_of_nvbase l nb in
            let data = seg + Random.State.full_int st (Layout.segment_size l) in
            let re = Layout.rid_entry_addr l data in
            let be = Layout.base_entry_addr l ~rid in
            if not (Layout.is_rid_table_addr l re) then ok := false;
            if not (Layout.is_base_table_addr l be) then ok := false;
            if Layout.is_data_addr l re || Layout.is_data_addr l be then
              ok := false;
            if Layout.is_rid_table_addr l be || Layout.is_base_table_addr l re
            then ok := false;
            if Layout.is_rid_table_addr l data
               || Layout.is_base_table_addr l data
            then ok := false
          done;
          !ok)

let prop_riv_roundtrip =
  QCheck2.Test.make ~name:"riv pack/unpack roundtrip" ~count:1000
    QCheck2.Gen.(pair (int_range 1 1000000) (int_range 0 0xFFFFFFF))
    (fun (rid, offset) ->
      let l = Layout.default in
      let rid = min rid (Layout.max_rid l) in
      let v = Layout.riv_pack l ~rid ~offset in
      Layout.riv_rid l v = rid && Layout.riv_offset l v = offset)

let test_large_segments_preset () =
  let l = Layout.large_segments in
  check "64GiB segments" (1 lsl 36) (Layout.segment_size l);
  check_bool "riv fits" true (l.Layout.l4 + l.Layout.l3 <= l.Layout.word_bits)

let prop_extract_deposit_inverse =
  QCheck2.Test.make ~name:"deposit then extract returns the field" ~count:500
    QCheck2.Gen.(
      tup4 (int_range 0 40) (int_range 1 16) (int_bound 0xFFFF)
        (int_bound 0x3FFFFFFF))
    (fun (lo, len, field, v) ->
      QCheck2.assume (lo + len <= 62);
      Bitops.extract (Bitops.deposit v ~lo ~len ~field) ~lo ~len
      = field land Bitops.mask len)

module Two_level = Core.Two_level
module Kinds = Core.Kinds

(* Two-level layouts (Section 4.3 extension) *)

let test_two_level_default_valid () =
  let t = Two_level.default in
  check_bool "small smaller than large" true
    (Two_level.segment_size t Two_level.Small
    < Two_level.segment_size t Two_level.Large);
  check_bool "many small segments" true
    (Two_level.usable_segments t Two_level.Small
    > Two_level.usable_segments t Two_level.Large)

let test_two_level_rejects () =
  let bad ~l4 ~small_l3 ~large_l3 =
    match Two_level.v ~l1:2 ~l4 ~small_l3 ~large_l3 () with
    | Ok _ -> Alcotest.failf "accepted l4=%d %d/%d" l4 small_l3 large_l3
    | Error _ -> ()
  in
  bad ~l4:26 ~small_l3:34 ~large_l3:28 (* large must exceed small *);
  bad ~l4:40 ~small_l3:28 ~large_l3:34 (* packed value does not fit *);
  bad ~l4:26 ~small_l3:3 ~large_l3:34 (* small l3 too small *)

let test_two_level_classify_and_fields () =
  let t = Two_level.default in
  List.iter
    (fun c ->
      let nb = Two_level.data_nvbase_min t c + 9 in
      let base = Two_level.segment_base t c ~nvbase:(Kinds.Seg.v nb) in
      check_bool "in nv space" true (Two_level.in_nv_space t base);
      check_bool "classified" true (Two_level.class_of t base = c);
      check_bool "data addr" true (Two_level.is_data_addr t base);
      check "nvbase" nb (Two_level.nvbase t base :> int);
      check "offset" 4242 (Two_level.seg_offset t (Kinds.Vaddr.add base 4242));
      check "get_base" (base :> int)
        (Two_level.get_base t (Kinds.Vaddr.add base 4242) :> int))
    [ Two_level.Small; Two_level.Large ]

let test_two_level_pack_roundtrip () =
  let t = Two_level.default in
  List.iter
    (fun c ->
      let v = Two_level.pack t c ~rid:(Kinds.Rid.v 77) ~offset:0xBEEF0 in
      check_bool "class" true (Two_level.unpack_cls t v = c);
      check "rid" 77 (Two_level.unpack_rid t v :> int);
      check "offset" 0xBEEF0 (Two_level.unpack_offset t v))
    [ Two_level.Small; Two_level.Large ]

let test_two_level_migration () =
  let t = Two_level.default in
  check_bool "small fits small" true
    (Two_level.class_for_size t (1 lsl 20) = Ok Two_level.Small);
  check_bool "big needs large" true
    (Two_level.class_for_size t (1 lsl 30) = Ok Two_level.Large);
  check_bool "too big fails" true
    (match Two_level.class_for_size t (1 lsl 40) with
    | Error _ -> true
    | Ok _ -> false)

let prop_two_level_no_overlap =
  QCheck2.Test.make ~name:"two-level areas never overlap" ~count:300
    QCheck2.Gen.(pair (int_range 0 1) (pair (int_range 1 100000) (int_range 1 100000)))
    (fun (ci, (nb_off, rid)) ->
      let t = Two_level.default in
      let c = if ci = 0 then Two_level.Small else Two_level.Large in
      let other = if ci = 0 then Two_level.Large else Two_level.Small in
      let nb =
        Two_level.data_nvbase_min t c
        + (nb_off mod Two_level.usable_segments t c)
      in
      let rid = 1 + (rid mod Two_level.max_rid t) in
      let base = Two_level.segment_base t c ~nvbase:(Kinds.Seg.v nb) in
      let data = Kinds.Vaddr.add base 12345 in
      let re = Two_level.rid_entry_addr t data in
      let be = Two_level.base_entry_addr t c ~rid:(Kinds.Rid.v rid) in
      let be_other = Two_level.base_entry_addr t other ~rid:(Kinds.Rid.v rid) in
      (* Entries stay in their own class and their own area, and the two
         classes' tables never collide. *)
      Two_level.class_of t re = c
      && Two_level.class_of t be = c
      && Two_level.class_of t be_other = other
      && be <> be_other
      && Two_level.is_rid_table_addr t re
      && Two_level.is_base_table_addr t be
      && (not (Two_level.is_data_addr t re))
      && (not (Two_level.is_data_addr t be))
      && (not (Two_level.is_base_table_addr t re))
      && (not (Two_level.is_rid_table_addr t be))
      && (not (Two_level.is_rid_table_addr t data))
      && not (Two_level.is_base_table_addr t data))

let () =
  Alcotest.run "addr"
    [
      ( "bitops",
        [
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "mask/extract" `Quick test_mask_extract;
        ] );
      ( "layout",
        [
          Alcotest.test_case "presets valid" `Quick test_layout_presets;
          Alcotest.test_case "invalid layouts rejected" `Quick
            test_layout_rejects;
          Alcotest.test_case "field extraction" `Quick test_layout_fields;
          Alcotest.test_case "rid entry uniform in segment" `Quick
            test_rid_entry_same_for_all_addrs_in_segment;
          Alcotest.test_case "riv pack" `Quick test_riv_pack;
          Alcotest.test_case "classification boundaries" `Quick
            test_classification_boundaries;
          Alcotest.test_case "space formulas" `Quick test_space_formulas;
          Alcotest.test_case "large-segments preset" `Quick
            test_large_segments_preset;
        ] );
      ( "two-level",
        [
          Alcotest.test_case "default valid" `Quick
            test_two_level_default_valid;
          Alcotest.test_case "rejects" `Quick test_two_level_rejects;
          Alcotest.test_case "classify + fields" `Quick
            test_two_level_classify_and_fields;
          Alcotest.test_case "pack roundtrip" `Quick
            test_two_level_pack_roundtrip;
          Alcotest.test_case "migration classes" `Quick
            test_two_level_migration;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_extract_deposit_inverse;
          QCheck_alcotest.to_alcotest prop_no_overlap;
          QCheck_alcotest.to_alcotest prop_riv_roundtrip;
          QCheck_alcotest.to_alcotest prop_two_level_no_overlap;
        ] );
    ]
