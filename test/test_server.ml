(* The multi-tenant region server: zipfian generator statistics, the
   determinism contract (byte-identical reports at any --jobs and across
   reruns), residency eviction/remap correctness per representation, and
   counter bookkeeping. *)

open Nvmpi_server
module Repr = Core.Repr
module Machine = Core.Machine
module Json = Nvmpi_obs.Json

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* {1 Zipf} *)

let test_zipf_validate () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.v: n must be >= 1")
    (fun () -> ignore (Zipf.v ~n:0 ~theta:0.5));
  Alcotest.check_raises "theta = 1"
    (Invalid_argument "Zipf.v: theta must be in [0, 1)") (fun () ->
      ignore (Zipf.v ~n:10 ~theta:1.0));
  Alcotest.check_raises "theta < 0"
    (Invalid_argument "Zipf.v: theta must be in [0, 1)") (fun () ->
      ignore (Zipf.v ~n:10 ~theta:(-0.1)))

let test_zipf_range () =
  let z = Zipf.v ~n:7 ~theta:0.99 in
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 10_000 do
    let r = Zipf.next z st in
    if r < 0 || r >= 7 then
      Alcotest.failf "draw %d outside [0, 7)" r
  done

let test_zipf_determinism () =
  let draws seed =
    let z = Zipf.v ~n:100 ~theta:0.9 in
    let st = Random.State.make [| seed |] in
    List.init 200 (fun _ -> Zipf.next z st)
  in
  check (Alcotest.list Alcotest.int) "same seed, same sequence" (draws 5)
    (draws 5);
  check_bool "different seed, different sequence" false (draws 5 = draws 6)

(* Pearson chi-square of 50k draws against the generator's own
   closed-form rank probabilities. 19 degrees of freedom: the critical
   value at p = 0.001 is 43.8; the seed is fixed, so the statistic is a
   constant of the implementation and the margin only has to absorb
   implementation changes, not sampling noise. *)
let chi_square ~n ~theta ~draws ~seed =
  let z = Zipf.v ~n ~theta in
  let st = Random.State.make [| seed |] in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Zipf.next z st in
    counts.(r) <- counts.(r) + 1
  done;
  let chi2 = ref 0.0 in
  for r = 0 to n - 1 do
    let expected = Zipf.expected_prob z r *. float_of_int draws in
    let d = float_of_int counts.(r) -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  done;
  !chi2

let test_zipf_chi_square () =
  let chi2 = chi_square ~n:20 ~theta:0.99 ~draws:50_000 ~seed:42 in
  if chi2 > 43.8 then
    Alcotest.failf "chi-square %.1f exceeds 43.8 (p=0.001, 19 dof)" chi2

let test_zipf_uniform_chi_square () =
  let chi2 = chi_square ~n:20 ~theta:0.0 ~draws:50_000 ~seed:42 in
  if chi2 > 43.8 then
    Alcotest.failf "uniform chi-square %.1f exceeds 43.8 (p=0.001, 19 dof)"
      chi2

let test_zipf_skew () =
  (* Rank probabilities decrease; at theta 0.99 rank 0 dominates. *)
  let z = Zipf.v ~n:50 ~theta:0.99 in
  for r = 0 to 48 do
    if Zipf.expected_prob z r < Zipf.expected_prob z (r + 1) then
      Alcotest.failf "expected_prob not decreasing at rank %d" r
  done;
  check_bool "head rank takes > 20%% of the mass" true
    (Zipf.expected_prob z 0 > 0.2);
  let u = Zipf.v ~n:50 ~theta:0.0 in
  check (Alcotest.float 1e-12) "uniform prob" 0.02 (Zipf.expected_prob u 0)

(* {1 Mixes} *)

let test_mix_parsing () =
  let ok s = match Server.mix_of_string s with
    | Ok m -> m
    | Error e -> Alcotest.failf "mix %S rejected: %s" s e
  in
  check (Alcotest.float 0.0) "preset a" 0.5 (ok "a").Server.read;
  check (Alcotest.float 0.0) "preset b" 0.95 (ok "b").Server.read;
  check (Alcotest.float 0.0) "preset c" 1.0 (ok "c").Server.read;
  check (Alcotest.float 0.0) "preset insert" 0.25 (ok "insert").Server.insert;
  let m = ok "read:0.6,update:0.3,insert:0.1" in
  check (Alcotest.float 1e-12) "explicit read" 0.6 m.Server.read;
  check (Alcotest.float 1e-12) "explicit insert" 0.1 m.Server.insert;
  (* Canonical form round-trips. *)
  let rt = ok (Server.mix_to_string m) in
  check_bool "round-trip" true (rt = m);
  let bad s = match Server.mix_of_string s with
    | Ok _ -> Alcotest.failf "mix %S accepted" s
    | Error _ -> ()
  in
  bad "read:0.5,update:0.2,insert:0.2" (* sums to 0.9 *);
  bad "read:1.5,update:-0.5,insert:0" (* negative class *);
  bad "read:0.5,scan:0.5" (* unknown class *);
  bad "frobnicate"

let test_churn_mix () =
  let ok s = match Server.mix_of_string s with
    | Ok m -> m
    | Error e -> Alcotest.failf "mix %S rejected: %s" s e
  in
  let m = ok "churn" in
  check (Alcotest.float 0.0) "churn read" 0.3 m.Server.read;
  check (Alcotest.float 0.0) "churn delete" 0.15 m.Server.delete;
  check_bool "churn preset = mix_churn" true (m = Server.mix_churn);
  (* Explicit four-class form parses and round-trips with delete kept. *)
  let e = ok "read:0.3,update:0.4,insert:0.15,delete:0.15" in
  check_bool "explicit churn" true (e = Server.mix_churn);
  check_bool "round-trip keeps delete" true (ok (Server.mix_to_string e) = e);
  (* Delete-free mixes render exactly as before the delete class
     existed, so pre-churn reports stay byte-identical. *)
  let contains s sub =
    let n = String.length s and k = String.length sub in
    let rec has i = i + k <= n && (String.sub s i k = sub || has (i + 1)) in
    has 0
  in
  check_bool "delete:0 omitted" false
    (contains (Server.mix_to_string (ok "a")) "delete");
  check_bool "delete rendered when set" true
    (contains (Server.mix_to_string e) "delete:0.15");
  match Server.mix_of_string "read:0.3,update:0.4,insert:0.15,delete:0.2" with
  | Ok _ -> Alcotest.fail "over-unity churn mix accepted"
  | Error _ -> ()

let test_validate () =
  let d = Server.default in
  check_bool "default valid" true (Server.validate d = Ok ());
  let bad c = match Server.validate c with
    | Ok () -> Alcotest.fail "invalid config accepted"
    | Error _ -> ()
  in
  bad { d with Server.theta = 1.0 };
  bad { d with Server.tenants = 0 };
  bad { d with Server.shards = d.Server.tenants + 1 };
  bad { d with Server.resident = 0 };
  bad { d with Server.region_size = 1024 };
  bad { d with Server.reprs = [] }

(* {1 Server determinism} *)

(* Small but representative: multiple shards, residency churn, three
   representations spanning all remap-safety classes. *)
let small_config =
  { Server.default with
    Server.tenants = 60;
    ops = 400;
    shards = 2;
    resident = 6;
    seed = 9;
    reprs = Repr.[ Normal; Riv; Fat_cached ] }

let report_string ~jobs c = Json.to_string (Server.report_to_json (Server.run ~jobs c))

let test_churn_run () =
  (* A churn run must actually exercise the delete path — and stay
     deterministic across --jobs like every other mix. *)
  let c = { small_config with Server.mix = Server.mix_churn } in
  let r = Server.run ~jobs:1 c in
  List.iter
    (fun res ->
      let get name =
        Option.value ~default:0 (List.assoc_opt name res.Server.counters)
      in
      let name = Repr.to_string res.Server.repr in
      check_bool (name ^ ": deletes happened") true (get "server.deletes" > 0);
      check_bool (name ^ ": misses bounded") true
        (get "server.delete_misses" <= get "server.deletes"))
    r.Server.results;
  check_bool "churn jobs byte-identical" true
    (report_string ~jobs:1 c = report_string ~jobs:2 c)

let test_jobs_byte_identical () =
  let serial = report_string ~jobs:1 small_config in
  check Alcotest.string "jobs 2 = jobs 1" serial (report_string ~jobs:2 small_config);
  check Alcotest.string "jobs 5 = jobs 1" serial (report_string ~jobs:5 small_config);
  check Alcotest.string "rerun identical" serial (report_string ~jobs:1 small_config)

let test_seed_changes_report () =
  let a = report_string ~jobs:1 small_config in
  let b = report_string ~jobs:1 { small_config with Server.seed = 10 } in
  check_bool "different seed, different report" false (a = b)

let test_reprs_same_stream () =
  (* Every representation must see the identical request stream: the
     workload counters (requests, reads, creates, maps, evictions) agree
     across representations even though cycle counts differ. *)
  let r = Server.run ~jobs:1 small_config in
  let get res name =
    match List.assoc_opt name res.Server.counters with
    | Some v -> v
    | None -> Alcotest.failf "missing counter %s" name
  in
  match r.Server.results with
  | [] -> Alcotest.fail "no results"
  | first :: rest ->
      List.iter
        (fun res ->
          List.iter
            (fun name ->
              check_int
                (Printf.sprintf "%s agrees for %s" name
                   (Repr.to_string res.Server.repr))
                (get first name) (get res name))
            [ "server.requests"; "server.reads"; "server.updates";
              "server.inserts"; "server.tenant_creates"; "server.maps";
              "server.evictions" ])
        rest

let test_counter_relations () =
  let r = Server.run ~jobs:1 small_config in
  List.iter
    (fun res ->
      let get name = Option.value ~default:0 (List.assoc_opt name res.Server.counters) in
      let name = Repr.to_string res.Server.repr in
      check_int (name ^ ": requests = reads + updates + inserts")
        (get "server.requests")
        (get "server.reads" + get "server.updates" + get "server.inserts");
      check_int (name ^ ": requests = hits + misses")
        (get "server.requests")
        (get "server.residency_hits" + get "server.residency_misses");
      check_int (name ^ ": every map eventually unmapped (close_all drains)")
        (get "server.maps") (get "server.unmaps");
      check_bool (name ^ ": maps >= creates") true
        (get "server.maps" >= get "server.tenant_creates");
      check_bool (name ^ ": churn happened") true (get "server.evictions" > 0);
      check_int (name ^ ": requests field mirrors counter")
        res.Server.requests (get "server.requests"))
    r.Server.results

(* {1 Residency} *)

let vaddr_opt =
  Alcotest.testable
    (fun fmt v ->
      Format.fprintf fmt "%s"
        (match v with
        | None -> "None"
        | Some a -> Printf.sprintf "0x%x" (a : Nvmpi_addr.Kinds.Vaddr.t :> int)))
    ( = )

(* Evict a tenant, touch another, come back: the value must survive the
   unmap/remap cycle under every representation. Self-contained
   representations must come back at a different base (that is the churn
   the server measures); pinned ones (normal, swizzle) at the same. *)
let test_evict_then_reaccess () =
  List.iter
    (fun repr ->
      let name = Repr.to_string repr in
      let store = Core.Store.create () in
      let machine = Machine.create ~seed:77 ~store () in
      let res =
        Residency.create ~machine ~repr ~cap:1 ~region_size:(64 * 1024)
          ~buckets:8 ~log_cap:2048 ()
      in
      let kv0, provisioned = Residency.kv res ~tenant:0 in
      check_bool (name ^ ": first touch provisions") true provisioned;
      Nvmpi_apps.Kvstore.put kv0 ~key:3 "persists-across-eviction";
      let base0 = Residency.region_base res ~tenant:0 in
      check_bool (name ^ ": base known while resident") true (base0 <> None);
      (* cap = 1: touching tenant 1 must evict tenant 0. *)
      let _kv1, _ = Residency.kv res ~tenant:1 in
      check_bool (name ^ ": tenant 0 evicted") false
        (Residency.is_resident res ~tenant:0);
      check_bool (name ^ ": tenant 0 still provisioned") true
        (Residency.is_provisioned res ~tenant:0);
      check_int (name ^ ": one resident") 1 (Residency.resident_count res);
      (* Reaccess: remap (evicting tenant 1) and read the value back. *)
      let kv0', provisioned = Residency.kv res ~tenant:0 in
      check_bool (name ^ ": reaccess is not a provision") false provisioned;
      check (Alcotest.option Alcotest.string)
        (name ^ ": value survives eviction + remap")
        (Some "persists-across-eviction")
        (Nvmpi_apps.Kvstore.get kv0' ~key:3);
      let base0' = Residency.region_base res ~tenant:0 in
      (match Repr.remap_safety repr with
      | `Self_contained ->
          check_bool (name ^ ": self-contained tenant moved") false
            (base0 = base0')
      | _ -> check vaddr_opt (name ^ ": pinned tenant did not move") base0 base0');
      Residency.close_all res;
      check_int (name ^ ": drained") 0 (Residency.resident_count res))
    Repr.all

let test_lru_order () =
  let store = Core.Store.create () in
  let machine = Machine.create ~seed:5 ~store () in
  let res =
    Residency.create ~machine ~repr:Repr.Riv ~cap:2 ~region_size:(64 * 1024)
      ~buckets:8 ~log_cap:2048 ()
  in
  ignore (Residency.kv res ~tenant:0);
  ignore (Residency.kv res ~tenant:1);
  (* Touch 0 so 1 becomes the LRU victim. *)
  ignore (Residency.kv res ~tenant:0);
  ignore (Residency.kv res ~tenant:2);
  check_bool "tenant 1 was the LRU victim" false
    (Residency.is_resident res ~tenant:1);
  check_bool "tenant 0 survived" true (Residency.is_resident res ~tenant:0);
  check_bool "tenant 2 resident" true (Residency.is_resident res ~tenant:2)

let () =
  Alcotest.run "server"
    [
      ( "zipf",
        [
          Alcotest.test_case "validate" `Quick test_zipf_validate;
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "determinism" `Quick test_zipf_determinism;
          Alcotest.test_case "chi-square (theta 0.99)" `Quick
            test_zipf_chi_square;
          Alcotest.test_case "chi-square (uniform)" `Quick
            test_zipf_uniform_chi_square;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
        ] );
      ( "config",
        [
          Alcotest.test_case "mix parsing" `Quick test_mix_parsing;
          Alcotest.test_case "churn mix" `Quick test_churn_mix;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "churn run" `Quick test_churn_run;
          Alcotest.test_case "jobs byte-identical" `Quick
            test_jobs_byte_identical;
          Alcotest.test_case "seed changes report" `Quick
            test_seed_changes_report;
          Alcotest.test_case "reprs share the stream" `Quick
            test_reprs_same_stream;
          Alcotest.test_case "counter relations" `Quick test_counter_relations;
        ] );
      ( "residency",
        [
          Alcotest.test_case "evict then reaccess" `Quick
            test_evict_then_reaccess;
          Alcotest.test_case "lru order" `Quick test_lru_order;
        ] );
    ]
