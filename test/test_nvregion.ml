module Store = Core.Store
module Region = Core.Region
module Manager = Core.Manager
module Memsim = Core.Memsim
module Layout = Core.Layout
module Kinds = Core.Kinds
module Vaddr = Kinds.Vaddr

(* Tests bless host integers at the Figure 8 trust boundary and coerce
   typed results back out for Alcotest's int checkers. *)
let va = Vaddr.v
let ia (a : Vaddr.t) = (a :> int)
let ri = Kinds.Rid.v
let ir (r : Kinds.Rid.t) = (r :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let layout = Layout.default

let manager ?seed () =
  let store = Store.create () in
  let mem = Memsim.create () in
  let mgr = Manager.create ?seed ~layout ~mem ~store () in
  (store, mgr)

(* Store *)

let test_store_ids () =
  let s = Store.create () in
  let r1 = Store.add s ~size:65536 in
  let r2 = Store.add s ~size:65536 in
  check "first id" 1 (ir r1);
  check "second id" 2 (ir r2);
  check_bool "mem" true (Store.mem s r1);
  Alcotest.(check (list int)) "ids" [ 1; 2 ] (List.map ir (Store.ids s));
  Store.remove s r1;
  check_bool "removed" false (Store.mem s r1);
  Store.add_with_rid s ~rid:(ri 100) ~size:65536;
  check "next after explicit" 101 (ir (Store.next_rid s))

let test_store_rejects () =
  let s = Store.create () in
  Alcotest.check_raises "rid 0"
    (Invalid_argument "Store.add_with_rid: rid must be positive") (fun () ->
      Store.add_with_rid s ~rid:(ri 0) ~size:65536);
  let _ = Store.add s ~size:65536 in
  check_bool "duplicate rejected" true
    (try
       Store.add_with_rid s ~rid:(ri 1) ~size:65536;
       false
     with Invalid_argument _ -> true);
  check_bool "too small rejected" true
    (try
       ignore (Store.add s ~size:16);
       false
     with Invalid_argument _ -> true)

let test_store_header () =
  let s = Store.create () in
  let rid = Store.add s ~size:65536 in
  let b = Store.find_exn s rid in
  check "header rid" (ir rid) (ir (Store.blob_rid b));
  check "blob size" 65536 b.Store.size

let test_store_file_roundtrip () =
  let s = Store.create () in
  let rid = Store.add s ~size:65536 in
  let b = Store.find_exn s rid in
  Bytes.set b.Store.data 8192 'Q';
  let path = Filename.temp_file "nvmpi" ".store" in
  Store.save_file s path;
  let s' = Store.load_file path in
  Sys.remove path;
  let b' = Store.find_exn s' rid in
  Alcotest.(check char) "payload byte" 'Q' (Bytes.get b'.Store.data 8192);
  check "next_rid preserved" (ir (Store.next_rid s)) (ir (Store.next_rid s'))

(* Regions through a manager *)

let test_open_place_and_header () =
  let _, mgr = manager ~seed:1 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r = Manager.open_region mgr rid in
  check "rid" (ir rid) (ir (Region.rid r));
  check_bool "base in data area" true
    (Layout.is_data_addr layout (ia (Region.base r)));
  check_bool "base segment-aligned" true
    (Layout.seg_offset layout (ia (Region.base r)) = 0);
  Region.check_header r

let test_open_twice_same_handle () =
  let _, mgr = manager ~seed:1 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r1 = Manager.open_region mgr rid in
  let r2 = Manager.open_region mgr rid in
  check "same base" (ia (Region.base r1)) (ia (Region.base r2))

let test_alloc_and_roots () =
  let _, mgr = manager ~seed:2 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r = Manager.open_region mgr rid in
  let a = Region.alloc r 100 in
  let b = Region.alloc r 8 in
  check_bool "allocations ordered" true (ia b >= ia a + 100);
  check_bool "aligned" true (ia a land 7 = 0 && ia b land 7 = 0);
  Region.set_root r "head" a;
  Region.set_root r "tail" ~tag:7 b;
  check "root head" (ia a) (ia (Option.get (Region.root r "head")));
  check "root tail" (ia b) (ia (Option.get (Region.root r "tail")));
  check "tag" 7 (Option.get (Region.root_tag r "tail"));
  Alcotest.(check (option int)) "missing root" None
    (Option.map ia (Region.root r "nope"));
  (* Replacing a root keeps the table size. *)
  Region.set_root r "head" b;
  check "replaced" (ia b) (ia (Option.get (Region.root r "head")));
  check "two roots" 2 (List.length (Region.roots r))

let test_alloc_exhaustion () =
  let _, mgr = manager ~seed:3 () in
  let rid = Manager.create_region mgr ~size:8192 in
  let r = Manager.open_region mgr rid in
  check_bool "out of memory raised" true
    (try
       ignore (Region.alloc r 100000);
       false
     with Region.Out_of_region_memory _ -> true)

let test_root_table_overflow () =
  let _, mgr = manager ~seed:19 () in
  let rid = Manager.create_region mgr ~size:(1 lsl 20) in
  let r = Manager.open_region mgr rid in
  for i = 0 to 63 do
    Region.set_root r (Printf.sprintf "r%02d" i) (Region.alloc r 8)
  done;
  check "table full" 64 (List.length (Region.roots r));
  check_bool "65th root rejected" true
    (try
       Region.set_root r "overflow" (Region.alloc r 8);
       false
     with Invalid_argument _ -> true);
  (* Replacing an existing root still works when full. *)
  let a = Region.alloc r 8 in
  Region.set_root r "r00" a;
  check "replace works when full" (ia a) (ia (Option.get (Region.root r "r00")))

let test_persistence_across_runs () =
  let store = Store.create () in
  (* Run 1: create, populate, close. *)
  let base1 =
    let mem = Memsim.create () in
    let mgr = Manager.create ~seed:10 ~layout ~mem ~store () in
    let rid = Manager.create_region mgr ~size:65536 in
    let r = Manager.open_region mgr rid in
    let a = Region.alloc r 64 in
    Memsim.store64 mem a 0xFEED;
    Region.set_root r "data" a;
    Manager.close_region mgr rid;
    Region.base r
  in
  (* Run 2: reopen under a different placement seed. *)
  let mem = Memsim.create () in
  let mgr = Manager.create ~seed:11 ~layout ~mem ~store () in
  let r = Manager.open_region mgr (ri 1) in
  check_bool "different base across runs" true
    (not (Vaddr.equal (Region.base r) base1));
  let a = Option.get (Region.root r "data") in
  check "payload survived" 0xFEED (Memsim.load64 mem a);
  (* Heap cursor persisted: the next allocation does not overlap. *)
  let b = Region.alloc r 8 in
  check_bool "alloc continues past old data" true (ia b > ia a)

let test_close_unmaps () =
  let _, mgr = manager ~seed:4 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r = Manager.open_region mgr rid in
  let base = Region.base r in
  Manager.close_region mgr rid;
  check_bool "not open" false (Manager.is_open mgr rid);
  check_bool "unmapped" true
    (try
       ignore (Memsim.load64 (Manager.mem mgr) base);
       false
     with Memsim.Fault _ -> true)

let test_save_region_checkpoint () =
  let store, mgr = manager ~seed:5 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r = Manager.open_region mgr rid in
  let a = Region.alloc r 8 in
  Memsim.store64 (Manager.mem mgr) a 42;
  Manager.save_region mgr rid;
  (* The blob now contains the value even though the region stays open. *)
  let blob = Store.find_exn store rid in
  let off = Vaddr.offset_in a ~base:(Region.base r) in
  check "checkpointed" 42
    (Int64.to_int (Bytes.get_int64_le blob.Store.data off))

let test_pinned_placement () =
  let _, mgr = manager ~seed:6 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let nb = Layout.data_nvbase_min layout + 5 in
  let r = Manager.open_region ~at_nvbase:(Kinds.Seg.v nb) mgr rid in
  check "pinned" (Layout.segment_base_of_nvbase layout nb) (ia (Region.base r));
  let rid2 = Manager.create_region mgr ~size:65536 in
  check_bool "occupied nvbase rejected" true
    (try
       ignore (Manager.open_region ~at_nvbase:(Kinds.Seg.v nb) mgr rid2);
       false
     with Invalid_argument _ -> true)

let test_region_of_addr () =
  let _, mgr = manager ~seed:7 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r = Manager.open_region mgr rid in
  (match Manager.region_of_addr mgr (Vaddr.add (Region.base r) 100) with
  | Some r' -> check "found" (ir rid) (ir (Region.rid r'))
  | None -> Alcotest.fail "region_of_addr missed");
  check_bool "miss outside" true
    (Manager.region_of_addr mgr (va 0x10000) = None)

let test_too_large_region_rejected () =
  let _, mgr = manager ~seed:8 () in
  let size = Layout.segment_size layout + 4096 in
  (* Creating the blob would need 4 GiB of host memory under the default
     layout; use the small layout instead. *)
  let small = Layout.small in
  let store = Store.create () in
  let mem = Memsim.create () in
  let mgr2 = Manager.create ~seed:8 ~layout:small ~mem ~store () in
  let rid =
    Manager.create_region mgr2 ~size:(Layout.segment_size small + 4096)
  in
  check_bool "oversized rejected" true
    (try
       ignore (Manager.open_region mgr2 rid);
       false
     with Invalid_argument _ -> true);
  ignore mgr;
  ignore size

let test_offset_addr_conversions () =
  let _, mgr = manager ~seed:9 () in
  let rid = Manager.create_region mgr ~size:65536 in
  let r = Manager.open_region mgr rid in
  let a = Region.addr_of_offset r 4096 in
  check "roundtrip" 4096 (Region.offset_of_addr r a);
  check_bool "bad offset" true
    (try
       ignore (Region.addr_of_offset r 65536);
       false
     with Invalid_argument _ -> true);
  check_bool "bad addr" true
    (try
       ignore (Region.offset_of_addr r (Vaddr.add (Region.base r) (-8)));
       false
     with Invalid_argument _ -> true)

let prop_roots_random =
  QCheck2.Test.make ~name:"root table stores many distinct roots" ~count:50
    QCheck2.Gen.(int_range 1 60)
    (fun n ->
      let _, mgr = manager ~seed:n () in
      let rid = Manager.create_region mgr ~size:(1 lsl 20) in
      let r = Manager.open_region mgr rid in
      let addrs =
        List.init n (fun i ->
            let a = Region.alloc r 16 in
            Region.set_root r (Printf.sprintf "root%02d" i) a;
            a)
      in
      List.for_all2
        (fun i a ->
          match Region.root r (Printf.sprintf "root%02d" i) with
          | Some b -> Vaddr.equal a b
          | None -> false)
        (List.init n Fun.id) addrs)

let () =
  Alcotest.run "nvregion"
    [
      ( "store",
        [
          Alcotest.test_case "id allocation" `Quick test_store_ids;
          Alcotest.test_case "rejects" `Quick test_store_rejects;
          Alcotest.test_case "header init" `Quick test_store_header;
          Alcotest.test_case "file roundtrip" `Quick test_store_file_roundtrip;
        ] );
      ( "regions",
        [
          Alcotest.test_case "open places in data area" `Quick
            test_open_place_and_header;
          Alcotest.test_case "open twice" `Quick test_open_twice_same_handle;
          Alcotest.test_case "alloc + roots" `Quick test_alloc_and_roots;
          Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "offset conversions" `Quick
            test_offset_addr_conversions;
          Alcotest.test_case "root table overflow" `Quick
            test_root_table_overflow;
          Alcotest.test_case "persistence across runs" `Quick
            test_persistence_across_runs;
          Alcotest.test_case "close unmaps" `Quick test_close_unmaps;
          Alcotest.test_case "checkpoint" `Quick test_save_region_checkpoint;
          Alcotest.test_case "pinned placement" `Quick test_pinned_placement;
          Alcotest.test_case "region_of_addr" `Quick test_region_of_addr;
          Alcotest.test_case "oversized region rejected" `Quick
            test_too_large_region_rejected;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roots_random ]);
    ]
