module Machine = Core.Machine
module Nvspace = Core.Nvspace
module Fat_table = Core.Fat_table
module Repr = Core.Repr
module Region = Core.Region
module Store = Core.Store
module Layout = Core.Layout
module Memsim = Core.Memsim
module Clock = Core.Clock
module Kinds = Core.Kinds
module Vaddr = Kinds.Vaddr

(* Tests bless host integers at the Figure 8 trust boundary and coerce
   typed results back out for Alcotest's int checkers. *)
let va = Vaddr.v
let ia (a : Vaddr.t) = (a :> int)
let ri = Kinds.Rid.v
let ir (r : Kinds.Rid.t) = (r :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine ?seed () =
  let store = Store.create () in
  (store, Machine.create ?seed ~store ())

let with_region ?seed ?(size = 1 lsl 20) () =
  let store, m = machine ?seed () in
  let rid = Machine.create_region m ~size in
  let r = Machine.open_region m rid in
  (store, m, r)

(* Nvspace: the RIV tables *)

let test_nvspace_register_and_convert () =
  let _, m, r = with_region ~seed:1 () in
  let base = Region.base r in
  check "id2addr" (ia base)
    (ia (Nvspace.id2addr m.Machine.nvspace (Region.rid r)));
  check "addr2id" (ir (Region.rid r))
    (ir (Nvspace.addr2id m.Machine.nvspace (Vaddr.add base 12345)));
  check "get_base" (ia base)
    (ia (Nvspace.get_base m.Machine.nvspace (Vaddr.add base 12345)))

let test_nvspace_x2p_p2x_roundtrip () =
  let _, m, r = with_region ~seed:2 () in
  let a = Region.alloc r 64 in
  let v = Nvspace.p2x m.Machine.nvspace a in
  check "roundtrip" (ia a) (ia (Nvspace.x2p m.Machine.nvspace v));
  check "null p2x" 0 (Nvspace.p2x m.Machine.nvspace Vaddr.null :> int);
  check "null x2p" 0 (ia (Nvspace.x2p m.Machine.nvspace Kinds.Riv.null))

let test_nvspace_unknown_region () =
  let _, m, _ = with_region ~seed:3 () in
  check_bool "unknown rid" true
    (try
       ignore (Nvspace.id2addr m.Machine.nvspace (ri 999));
       false
     with Nvspace.Unknown_region _ -> true);
  check_bool "non-data addr" true
    (try
       ignore (Nvspace.addr2id m.Machine.nvspace (va 0x10000));
       false
     with Nvspace.Not_nv_data _ -> true)

let test_nvspace_unregister () =
  let _, m, r = with_region ~seed:4 () in
  let rid = Region.rid r in
  Machine.close_region m rid;
  check_bool "closed region unknown" true
    (try
       ignore (Nvspace.id2addr m.Machine.nvspace rid);
       false
     with Nvspace.Unknown_region _ -> true)

let test_nvspace_multi_region () =
  let _, m = machine ~seed:5 () in
  let regions =
    List.init 10 (fun _ ->
        let rid = Machine.create_region m ~size:65536 in
        Machine.open_region m rid)
  in
  List.iter
    (fun r ->
      check "each id resolves" (ia (Region.base r))
        (ia (Nvspace.id2addr m.Machine.nvspace (Region.rid r)));
      check "each base resolves" (ir (Region.rid r))
        (ir (Nvspace.addr2id m.Machine.nvspace (Vaddr.add (Region.base r) 8000))))
    regions

(* Fat table *)

let test_fat_table_basic () =
  let _, m, r = with_region ~seed:6 () in
  check "lookup" (ia (Region.base r))
    (ia (Fat_table.lookup m.Machine.fat (Region.rid r)));
  check "rid_of_addr" (ir (Region.rid r))
    (ir (Fat_table.rid_of_addr m.Machine.fat (Vaddr.add (Region.base r) 512)));
  check_bool "unknown" true
    (try
       ignore (Fat_table.lookup m.Machine.fat (ri 777));
       false
     with Fat_table.Unknown_region _ -> true);
  check_bool "no region for addr" true
    (try
       ignore (Fat_table.rid_of_addr m.Machine.fat (va 0x40000));
       false
     with Fat_table.No_region_for_addr _ -> true)

let test_fat_table_many_regions () =
  let _, m = machine ~seed:7 () in
  let rs =
    List.init 20 (fun _ ->
        let rid = Machine.create_region m ~size:65536 in
        Machine.open_region m rid)
  in
  List.iter
    (fun r ->
      check "lookup" (ia (Region.base r))
        (ia (Fat_table.lookup m.Machine.fat (Region.rid r)));
      check "reverse" (ir (Region.rid r))
        (ir (Fat_table.rid_of_addr m.Machine.fat (Region.base r))))
    rs;
  (* Close half, the rest still resolves. *)
  List.iteri
    (fun i r -> if i mod 2 = 0 then Machine.close_region m (Region.rid r))
    rs;
  List.iteri
    (fun i r ->
      if i mod 2 = 1 then
        check "survivor" (ia (Region.base r))
          (ia (Fat_table.lookup m.Machine.fat (Region.rid r)))
      else
        check_bool "closed gone" true
          (try
             ignore (Fat_table.lookup m.Machine.fat (Region.rid r));
             false
           with Fat_table.Unknown_region _ -> true))
    rs

(* Pointer representations: store/load roundtrips *)

let all_reprs = Repr.all

let test_roundtrip_same_region () =
  List.iter
    (fun kind ->
      let _, m, r = with_region ~seed:8 () in
      if kind = Repr.Based then Machine.set_based_region m (Region.rid r);
      let (module P) = Repr.m kind in
      let holder = Region.alloc r P.slot_size in
      let target = Region.alloc r 64 in
      P.store m ~holder target;
      check (Repr.to_string kind ^ " roundtrip") (ia target)
        (ia (P.load m ~holder)))
    all_reprs

let test_null_roundtrip () =
  List.iter
    (fun kind ->
      let _, m, r = with_region ~seed:9 () in
      if kind = Repr.Based then Machine.set_based_region m (Region.rid r);
      let (module P) = Repr.m kind in
      let holder = Region.alloc r P.slot_size in
      P.store m ~holder Vaddr.null;
      check (Repr.to_string kind ^ " null") 0 (ia (P.load m ~holder)))
    all_reprs

let test_backward_pointer () =
  (* Off-holder must handle a target before the holder (negative diff). *)
  let _, m, r = with_region ~seed:10 () in
  let target = Region.alloc r 64 in
  let holder = Region.alloc r 8 in
  Core.Off_holder.store m ~holder target;
  check "backward off-holder" (ia target) (ia (Core.Off_holder.load m ~holder))

let test_cross_region_raises_for_intra_only () =
  let _, m = machine ~seed:11 () in
  let r1 = Machine.open_region m (Machine.create_region m ~size:65536) in
  let r2 = Machine.open_region m (Machine.create_region m ~size:65536) in
  Machine.set_based_region m (Region.rid r1);
  let holder = Region.alloc r1 8 in
  let target = Region.alloc r2 64 in
  List.iter
    (fun kind ->
      let (module P) = Repr.m kind in
      check_bool (Repr.to_string kind ^ " cross rejected") true
        (try
           P.store m ~holder target;
           false
         with Machine.Cross_region_store _ -> true))
    [ Repr.Off_holder; Repr.Based ]

let test_cross_region_works_for_riv_fat () =
  let _, m = machine ~seed:12 () in
  let r1 = Machine.open_region m (Machine.create_region m ~size:65536) in
  let r2 = Machine.open_region m (Machine.create_region m ~size:65536) in
  let target = Region.alloc r2 64 in
  List.iter
    (fun kind ->
      let (module P) = Repr.m kind in
      let holder = Region.alloc r1 P.slot_size in
      P.store m ~holder target;
      check (Repr.to_string kind ^ " cross") (ia target) (ia (P.load m ~holder)))
    [ Repr.Riv; Repr.Fat; Repr.Fat_cached; Repr.Packed_fat; Repr.Hw_oid ]

let test_based_requires_base () =
  let _, m, r = with_region ~seed:13 () in
  let holder = Region.alloc r 8 in
  check_bool "based without base fails" true
    (try
       ignore (Core.Based_ptr.load m ~holder);
       false
     with Failure _ -> true)

(* Swizzling slot conversions *)

let test_swizzle_slot_roundtrip () =
  let _, m, r = with_region ~seed:14 () in
  let holder = Region.alloc r 8 in
  let target = Region.alloc r 64 in
  Core.Swizzle.store_packed m ~holder target;
  (* Packed form is not an absolute address. *)
  check_bool "packed differs" true (Machine.load64 m holder <> ia target);
  check "swizzle returns target" (ia target)
    (ia (Core.Swizzle.swizzle_slot m ~holder));
  check "now absolute" (ia target) (Machine.load64 m holder);
  check "steady-state load" (ia target) (ia (Core.Swizzle.load m ~holder));
  check "unswizzle returns target" (ia target)
    (ia (Core.Swizzle.unswizzle_slot m ~holder));
  check_bool "packed again" true (Machine.load64 m holder <> ia target);
  (* Null slots pass through both directions. *)
  let nholder = Region.alloc r 8 in
  Core.Swizzle.store_packed m ~holder:nholder Vaddr.null;
  check "null swizzle" 0 (ia (Core.Swizzle.swizzle_slot m ~holder:nholder));
  check "null unswizzle" 0 (ia (Core.Swizzle.unswizzle_slot m ~holder:nholder))

(* Position independence across runs *)

let repr_survives kind =
  let store = Store.create () in
  (* Run 1. *)
  let m1 = Machine.create ~seed:100 ~store () in
  let rid = Machine.create_region m1 ~size:65536 in
  let r1 = Machine.open_region m1 rid in
  if kind = Repr.Based then Machine.set_based_region m1 rid;
  let (module P) = Repr.m kind in
  let holder = Region.alloc r1 P.slot_size in
  let target = Region.alloc r1 64 in
  Memsim.store64 m1.Machine.mem target 0xABCD;
  P.store m1 ~holder target;
  Region.set_root r1 "holder" holder;
  Region.set_root r1 "target" target;
  let base1 = Region.base r1 in
  Machine.close_region m1 rid;
  (* Run 2: different placement. *)
  let m2 = Machine.create ~seed:200 ~store () in
  let r2 = Machine.open_region m2 rid in
  if kind = Repr.Based then Machine.set_based_region m2 rid;
  assert (not (Vaddr.equal (Region.base r2) base1));
  let holder' = Option.get (Region.root r2 "holder") in
  let target' = Option.get (Region.root r2 "target") in
  match P.load m2 ~holder:holder' with
  | loaded ->
      Vaddr.equal loaded target'
      && Memsim.load64 m2.Machine.mem target' = 0xABCD
  | exception Memsim.Fault _ -> false

let test_position_independent_reprs_survive_remap () =
  List.iter
    (fun kind ->
      check_bool (Repr.to_string kind ^ " survives remap") true
        (repr_survives kind))
    [ Repr.Off_holder; Repr.Riv; Repr.Fat; Repr.Fat_cached; Repr.Based;
      Repr.Packed_fat; Repr.Hw_oid ]

let test_normal_pointer_breaks_on_remap () =
  check_bool "normal pointer dangles" false (repr_survives Repr.Normal)

let test_swizzle_survives_via_passes () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:101 ~store () in
  let rid = Machine.create_region m1 ~size:65536 in
  let r1 = Machine.open_region m1 rid in
  let holder = Region.alloc r1 8 in
  let target = Region.alloc r1 64 in
  Core.Swizzle.store_packed m1 ~holder target;
  Region.set_root r1 "holder" holder;
  Region.set_root r1 "target" target;
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:202 ~store () in
  let r2 = Machine.open_region m2 rid in
  let holder' = Option.get (Region.root r2 "holder") in
  let target' = Option.get (Region.root r2 "target") in
  check "swizzle pass resolves new target" (ia target')
    (ia (Core.Swizzle.swizzle_slot m2 ~holder:holder'));
  check "steady state" (ia target') (ia (Core.Swizzle.load m2 ~holder:holder'))

(* The cross-region audit: every representation either crosses regions
   and round-trips, or rejects the store with the one sanctioned
   exception — [Machine.Cross_region_store], carrying the offending
   addresses and the repr's name, raised before any cycle is charged.
   The registry flag is the single source of truth for which side each
   repr falls on. *)

let test_cross_region_audit_all_reprs () =
  List.iter
    (fun kind ->
      let _, m = machine ~seed:41 () in
      let r1 = Machine.open_region m (Machine.create_region m ~size:65536) in
      let r2 = Machine.open_region m (Machine.create_region m ~size:65536) in
      if kind = Repr.Based then Machine.set_based_region m (Region.rid r1);
      let (module P) = Repr.m kind in
      let name = Repr.to_string kind in
      let holder = Region.alloc r1 P.slot_size in
      let target = Region.alloc r2 64 in
      P.store m ~holder Vaddr.null;
      if Repr.cross_region kind then begin
        P.store m ~holder target;
        check (name ^ " crosses regions") (ia target) (ia (P.load m ~holder))
      end
      else begin
        let c0 = Machine.cycles m in
        check_bool (name ^ " raises the sanctioned exception") true
          (try
             P.store m ~holder target;
             false
           with Machine.Cross_region_store { holder = h; target = t; repr } ->
             Vaddr.equal h holder && Vaddr.equal t target
             && repr = P.name);
        check (name ^ " charges no cycles for the rejected store")
          c0 (Machine.cycles m);
        check (name ^ " leaves the slot untouched") 0 (ia (P.load m ~holder))
      end)
    all_reprs

(* Machine.remap_region: close + reopen at a guaranteed-fresh base,
   within one run — the move every conformance trace leans on. *)

let test_remap_region_moves_and_preserves () =
  let _, m, r = with_region ~seed:42 ~size:65536 () in
  let rid = Region.rid r in
  let target = Region.alloc r 64 in
  let holder = Region.alloc r 8 in
  Core.Off_holder.store m ~holder target;
  Region.set_root r "t" target;
  let t_off = Region.offset_of_addr r target in
  let h_off = Region.offset_of_addr r holder in
  let base0 = Region.base r in
  let r' = Machine.remap_region m rid in
  check_bool "base moved" true (ia (Region.base r') <> ia base0);
  let target' = Region.addr_of_offset r' t_off in
  check "named root retargeted" (ia target')
    (ia (Option.get (Region.root r' "t")));
  check "off-holder slot survives in place" (ia target')
    (ia (Core.Off_holder.load m ~holder:(Region.addr_of_offset r' h_off)))

let test_remap_region_requires_open () =
  let _, m = machine ~seed:43 () in
  let rid = Machine.create_region m ~size:65536 in
  check_bool "remap of a closed region rejected" true
    (try
       ignore (Machine.remap_region m rid);
       false
     with Invalid_argument _ -> true)

let test_remap_region_retargets_based_base () =
  let _, m, r = with_region ~seed:44 ~size:65536 () in
  let rid = Region.rid r in
  Machine.set_based_region m rid;
  let target = Region.alloc r 64 in
  let holder = Region.alloc r 8 in
  Core.Based_ptr.store m ~holder target;
  let t_off = Region.offset_of_addr r target in
  let h_off = Region.offset_of_addr r holder in
  let r' = Machine.remap_region m rid in
  check "based pointer follows its base register"
    (ia (Region.addr_of_offset r' t_off))
    (ia (Core.Based_ptr.load m ~holder:(Region.addr_of_offset r' h_off)))

let test_remap_region_invalidates_fat_cache () =
  (* Regression the conformance harness flushed out: lastID/lastAddr
     used to survive close_region, so a fat-cached load after a
     same-run remap resolved at the vacated base. *)
  let _, m, r = with_region ~seed:45 ~size:65536 () in
  let rid = Region.rid r in
  let target = Region.alloc r 64 in
  let holder = Region.alloc r Core.Fat_cached.slot_size in
  Core.Fat_cached.store m ~holder target;
  check "cache primed at the old base" (ia target)
    (ia (Core.Fat_cached.load m ~holder));
  let t_off = Region.offset_of_addr r target in
  let h_off = Region.offset_of_addr r holder in
  let r' = Machine.remap_region m rid in
  check "load resolves at the new base"
    (ia (Region.addr_of_offset r' t_off))
    (ia (Core.Fat_cached.load m ~holder:(Region.addr_of_offset r' h_off)))

(* The swizzle window (Section 5): remaps are safe exactly when
   bracketed by unswizzle-before / swizzle-after passes. *)

let test_swizzle_window_roundtrips_back_to_back () =
  let _, m, r = with_region ~seed:46 ~size:65536 () in
  let rid = Region.rid r in
  let target = Region.alloc r 64 in
  let holder = Region.alloc r 8 in
  Core.Swizzle.store_packed m ~holder target;
  ignore (Core.Swizzle.swizzle_slot m ~holder);
  let t_off = Region.offset_of_addr r target in
  let h_off = Region.offset_of_addr r holder in
  let remap_in_window r =
    ignore
      (Core.Swizzle.unswizzle_slot m ~holder:(Region.addr_of_offset r h_off));
    let r' = Machine.remap_region m rid in
    ignore
      (Core.Swizzle.swizzle_slot m ~holder:(Region.addr_of_offset r' h_off));
    r'
  in
  let r1 = remap_in_window r in
  check "survives the first bracketed remap"
    (ia (Region.addr_of_offset r1 t_off))
    (ia (Core.Swizzle.load m ~holder:(Region.addr_of_offset r1 h_off)));
  let r2 = remap_in_window r1 in
  check "and a second one back-to-back"
    (ia (Region.addr_of_offset r2 t_off))
    (ia (Core.Swizzle.load m ~holder:(Region.addr_of_offset r2 h_off)))

let test_swizzle_outside_window_dangles () =
  (* The documented failure mode: move the region while a slot is still
     swizzled (absolute form at rest) and it dangles exactly like a
     normal pointer — the old absolute address, not the moved target. *)
  let _, m, r = with_region ~seed:47 ~size:65536 () in
  let rid = Region.rid r in
  let target = Region.alloc r 64 in
  let holder = Region.alloc r 8 in
  Core.Swizzle.store_packed m ~holder target;
  ignore (Core.Swizzle.swizzle_slot m ~holder);
  let t_off = Region.offset_of_addr r target in
  let h_off = Region.offset_of_addr r holder in
  let r' = Machine.remap_region m rid in
  let stale = Core.Swizzle.load m ~holder:(Region.addr_of_offset r' h_off) in
  check "slot still holds the vacated address" (ia target) (ia stale);
  check_bool "which misses the moved target" true
    (ia stale <> ia (Region.addr_of_offset r' t_off))

(* The Mnemosyne alternative (related work): pinning a region to the
   same virtual address in every run makes even normal pointers survive —
   but only while the address is free, which is exactly the paper's
   argument against it. *)

let test_pinned_mapping_mnemosyne_style () =
  let store = Store.create () in
  let nb = Layout.data_nvbase_min Layout.default + 42 in
  let m1 = Machine.create ~seed:300 ~store () in
  let rid = Machine.create_region m1 ~size:65536 in
  let r1 = Machine.open_region ~at_nvbase:(Kinds.Seg.v nb) m1 rid in
  let holder = Region.alloc r1 8 in
  let target = Region.alloc r1 8 in
  Memsim.store64 m1.Machine.mem target 1234;
  Core.Normal_ptr.store m1 ~holder target;
  Region.set_root r1 "h" holder;
  Machine.close_region m1 rid;
  (* Run 2 pins the same segment: normal pointers keep working. *)
  let m2 = Machine.create ~seed:301 ~store () in
  let r2 = Machine.open_region ~at_nvbase:(Kinds.Seg.v nb) m2 rid in
  let holder' = Option.get (Region.root r2 "h") in
  check "pinned mapping keeps normal pointers alive" 1234
    (Memsim.load64 m2.Machine.mem (Core.Normal_ptr.load m2 ~holder:holder'));
  (* ...but the scheme collapses when the address is already taken. *)
  let m3 = Machine.create ~seed:302 ~store () in
  let other = Machine.create_region m3 ~size:65536 in
  let _ = Machine.open_region ~at_nvbase:(Kinds.Seg.v nb) m3 other in
  check_bool "pinned address already occupied" true
    (try
       ignore (Machine.open_region ~at_nvbase:(Kinds.Seg.v nb) m3 rid);
       false
     with Invalid_argument _ -> true)

(* Section 5 / Figure 11: the based-pointer usability pitfall. A based
   pointer is meaningless without its base variable; decode it against
   the wrong base and it silently resolves to the wrong object. The
   self-contained representations cannot be misused this way. *)

let test_based_wrong_base_misresolves () =
  let _, m = machine ~seed:320 () in
  let r1 = Machine.open_region m (Machine.create_region m ~size:65536) in
  let r2 = Machine.open_region m (Machine.create_region m ~size:65536) in
  Machine.set_based_region m (Region.rid r1);
  let holder = Region.alloc r1 8 in
  let target = Region.alloc r1 8 in
  Memsim.store64 m.Machine.mem target 111;
  Core.Based_ptr.store m ~holder target;
  (* "Passing the pointer without its base": rebinding the base variable
     changes what the same slot resolves to. *)
  Machine.set_based_region m (Region.rid r2);
  let wrong = Core.Based_ptr.load m ~holder in
  check_bool "resolves into the wrong region" true (Region.contains r2 wrong);
  check_bool "silently wrong, not faulting" true
    (not (Vaddr.equal wrong target));
  (* Restoring the right base restores correctness — the caller must
     carry the base around, which is Figure 11's point. *)
  Machine.set_based_region m (Region.rid r1);
  check "correct with the right base" (ia target)
    (ia (Core.Based_ptr.load m ~holder));
  (* The same slot under off-holder needs no external state at all. *)
  let holder2 = Region.alloc r1 8 in
  Core.Off_holder.store m ~holder:holder2 target;
  Machine.set_based_region m (Region.rid r2);
  check "off-holder immune to base rebinding" (ia target)
    (ia (Core.Off_holder.load m ~holder:holder2))

(* Section 4.4 migration: growing a full region and remapping it. *)

let test_migrate_region_grows_and_survives () =
  let store = Store.create () in
  let m = Machine.create ~seed:310 ~store () in
  let rid = Machine.create_region m ~size:16384 in
  let r = Machine.open_region m rid in
  (* Build an off-holder chain until the region fills up. *)
  let module L = Nvmpi_structures.Linked_list.Make (Core.Off_holder) in
  let nd =
    Nvmpi_structures.Node.make m
      ~mode:(Nvmpi_structures.Node.Plain [| r |])
      ~payload:64
  in
  let l = L.create nd ~name:"chain" in
  let inserted = ref 0 in
  (try
     while true do
       L.append l ~key:!inserted;
       incr inserted
     done
   with Region.Out_of_region_memory _ -> ());
  check_bool "region filled" true (!inserted > 10);
  (* Migrate to a 4x larger region; the structure must survive and keep
     growing. *)
  let r2 = Machine.migrate_region m rid ~size:65536 in
  check "same rid" (ir rid) (ir (Region.rid r2));
  check_bool "moved" true
    (not (Vaddr.equal (Region.base r2) (Region.base r)));
  let nd2 =
    Nvmpi_structures.Node.make m
      ~mode:(Nvmpi_structures.Node.Plain [| r2 |])
      ~payload:64
  in
  let l2 = L.attach nd2 ~name:"chain" in
  check "chain intact after migration" !inserted (L.length l2);
  for k = 0 to 99 do
    L.append l2 ~key:(100000 + k)
  done;
  check "chain keeps growing" (!inserted + 100) (L.length l2);
  (* Growing to a smaller size is rejected. *)
  check_bool "shrink rejected" true
    (try
       ignore (Machine.migrate_region m rid ~size:1024);
       false
     with Invalid_argument _ -> true)

(* Cost-profile sanity: cheap things cheaper than expensive things. *)

let warm_load_cycles kind =
  let _, m, r = with_region ~seed:15 () in
  if kind = Repr.Based then Machine.set_based_region m (Region.rid r);
  let (module P) = Repr.m kind in
  let holder = Region.alloc r P.slot_size in
  let target = Region.alloc r 64 in
  P.store m ~holder target;
  for _ = 1 to 3 do
    ignore (P.load m ~holder)
  done;
  let (), d =
    Clock.delta m.Machine.clock (fun () -> ignore (P.load m ~holder))
  in
  d

let test_cost_ordering () =
  let normal = warm_load_cycles Repr.Normal in
  let based = warm_load_cycles Repr.Based in
  let offh = warm_load_cycles Repr.Off_holder in
  let riv = warm_load_cycles Repr.Riv in
  let fat = warm_load_cycles Repr.Fat in
  check_bool "normal <= based" true (normal <= based);
  check_bool "based <= off-holder" true (based <= offh);
  check_bool "off-holder < riv" true (offh < riv);
  check_bool "riv < fat" true (riv < fat)

let test_riv_phase_breakdown_counts () =
  let _, m, r = with_region ~seed:16 () in
  Nvspace.reset_phases m.Machine.nvspace;
  let holder = Region.alloc r 8 in
  let target = Region.alloc r 64 in
  Core.Riv.store m ~holder target;
  for _ = 1 to 10 do
    ignore (Core.Riv.load m ~holder)
  done;
  let p = Nvspace.phases m.Machine.nvspace in
  check_bool "extract phase counted" true (p.Nvspace.extract_cycles > 0);
  check_bool "id2addr phase counted" true (p.Nvspace.id2addr_cycles > 0);
  check_bool "final phase counted" true (p.Nvspace.final_cycles > 0);
  check_bool "final dominates extract (memory access)" true
    (p.Nvspace.final_cycles > p.Nvspace.extract_cycles)

(* Machine odds and ends *)

let test_dram_alloc () =
  let _, m = machine ~seed:17 () in
  let a = Machine.dram_alloc m 100 in
  let b = Machine.dram_alloc m ~align:64 8 in
  check_bool "dram volatile" true (not (Machine.is_nvm m a));
  check_bool "ordered" true (ia b >= ia a + 100);
  check "alignment" 0 (ia b land 63)

let test_rid_of_addr_exn () =
  let _, m, r = with_region ~seed:18 () in
  check "found" (ir (Region.rid r))
    (ir (Machine.rid_of_addr_exn m (Vaddr.add (Region.base r) 64)));
  check_bool "not found" true
    (try
       ignore (Machine.rid_of_addr_exn m (va 0x40000));
       false
     with Invalid_argument _ -> true)

let test_repr_registry () =
  check "9 representations" 9 (List.length Repr.all);
  List.iter
    (fun k ->
      check_bool
        ("of_string . to_string " ^ Repr.to_string k)
        true
        (Repr.of_string (Repr.to_string k) = Some k))
    Repr.all;
  check_bool "riv is implicit self-contained" true
    (Repr.implicit_self_contained Repr.Riv);
  check_bool "off-holder is implicit self-contained" true
    (Repr.implicit_self_contained Repr.Off_holder);
  check_bool "fat is not (size)" false (Repr.implicit_self_contained Repr.Fat);
  check_bool "based is not (external base)" false
    (Repr.implicit_self_contained Repr.Based);
  check_bool "normal is not (not PI)" false
    (Repr.implicit_self_contained Repr.Normal);
  check "fat slot is 16" 16 (Repr.slot_size Repr.Fat);
  check "riv slot is 8" 8 (Repr.slot_size Repr.Riv)

let test_fat_cache_effectiveness () =
  (* With one region, repeated fat-cached loads are much cheaper than
     uncached fat loads; the cache pays for itself. *)
  let _, m, r = with_region ~seed:21 () in
  let holder = Region.alloc r 16 in
  let target = Region.alloc r 64 in
  Core.Fat.store m ~holder target;
  let warm (load : Machine.t -> holder:Vaddr.t -> Vaddr.t) =
    for _ = 1 to 3 do
      ignore (load m ~holder)
    done;
    snd (Clock.delta m.Machine.clock (fun () -> ignore (load m ~holder)))
  in
  let fat = warm Core.Fat.load in
  let cached = warm Core.Fat_cached.load in
  check_bool "cache hit cheaper than hash lookup" true (cached < fat)

let test_deterministic_placement_with_seed () =
  let base_of seed =
    let store = Store.create () in
    let m = Machine.create ~seed ~store () in
    Region.base (Machine.open_region m (Machine.create_region m ~size:65536))
  in
  check "same seed, same placement" (ia (base_of 1234)) (ia (base_of 1234));
  check_bool "different seed, different placement" true
    (not (Vaddr.equal (base_of 1234) (base_of 4321)))

let test_registry_flags_for_ablation_reprs () =
  check_bool "packed-fat is implicit self-contained (but slow)" true
    (Repr.implicit_self_contained Repr.Packed_fat);
  check_bool "hw-oid is implicit self-contained" true
    (Repr.implicit_self_contained Repr.Hw_oid);
  check_bool "swizzle is not (not PI in memory)" false
    (Repr.implicit_self_contained Repr.Swizzle);
  check_bool "hw-oid cheaper than riv" true
    (warm_load_cycles Repr.Hw_oid < warm_load_cycles Repr.Riv)

(* Property: random pointer graphs roundtrip under every PI representation. *)
let prop_random_pointer_graph =
  QCheck2.Test.make ~name:"random pointer graphs roundtrip" ~count:30
    QCheck2.Gen.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      List.for_all
        (fun kind ->
          let _, m, r = with_region ~seed () in
          if kind = Repr.Based then Machine.set_based_region m (Region.rid r);
          let (module P) = Repr.m kind in
          let targets = Array.init n (fun _ -> Region.alloc r 32) in
          let holders = Array.init n (fun _ -> Region.alloc r P.slot_size) in
          let st = Random.State.make [| n; seed |] in
          let links = Array.init n (fun _ -> Random.State.int st n) in
          Array.iteri
            (fun i j -> P.store m ~holder:holders.(i) targets.(j))
            links;
          Array.for_all
            (fun i ->
              Vaddr.equal (P.load m ~holder:holders.(i)) targets.(links.(i)))
            (Array.init n Fun.id))
        [ Repr.Off_holder; Repr.Riv; Repr.Fat; Repr.Fat_cached; Repr.Based;
          Repr.Packed_fat; Repr.Hw_oid ])

let () =
  Alcotest.run "core"
    [
      ( "nvspace",
        [
          Alcotest.test_case "register + convert" `Quick
            test_nvspace_register_and_convert;
          Alcotest.test_case "x2p/p2x roundtrip" `Quick
            test_nvspace_x2p_p2x_roundtrip;
          Alcotest.test_case "unknown region" `Quick test_nvspace_unknown_region;
          Alcotest.test_case "unregister" `Quick test_nvspace_unregister;
          Alcotest.test_case "ten regions" `Quick test_nvspace_multi_region;
        ] );
      ( "fat-table",
        [
          Alcotest.test_case "basic" `Quick test_fat_table_basic;
          Alcotest.test_case "many regions + close" `Quick
            test_fat_table_many_regions;
        ] );
      ( "representations",
        [
          Alcotest.test_case "roundtrip same region" `Quick
            test_roundtrip_same_region;
          Alcotest.test_case "null" `Quick test_null_roundtrip;
          Alcotest.test_case "backward pointer" `Quick test_backward_pointer;
          Alcotest.test_case "cross-region rejected (intra-only)" `Quick
            test_cross_region_raises_for_intra_only;
          Alcotest.test_case "cross-region works (riv/fat)" `Quick
            test_cross_region_works_for_riv_fat;
          Alcotest.test_case "cross-region audit (all nine)" `Quick
            test_cross_region_audit_all_reprs;
          Alcotest.test_case "based requires base" `Quick
            test_based_requires_base;
          Alcotest.test_case "swizzle slot conversions" `Quick
            test_swizzle_slot_roundtrip;
          Alcotest.test_case "registry" `Quick test_repr_registry;
          Alcotest.test_case "registry flags (ablation reprs)" `Quick
            test_registry_flags_for_ablation_reprs;
          Alcotest.test_case "fat cache effectiveness" `Quick
            test_fat_cache_effectiveness;
        ] );
      ( "position-independence",
        [
          Alcotest.test_case "PI reprs survive remap" `Quick
            test_position_independent_reprs_survive_remap;
          Alcotest.test_case "normal pointers dangle" `Quick
            test_normal_pointer_breaks_on_remap;
          Alcotest.test_case "swizzle survives via passes" `Quick
            test_swizzle_survives_via_passes;
          Alcotest.test_case "remap_region moves and preserves" `Quick
            test_remap_region_moves_and_preserves;
          Alcotest.test_case "remap_region requires an open region" `Quick
            test_remap_region_requires_open;
          Alcotest.test_case "remap_region retargets the base register"
            `Quick test_remap_region_retargets_based_base;
          Alcotest.test_case "remap_region invalidates the fat cache" `Quick
            test_remap_region_invalidates_fat_cache;
          Alcotest.test_case "swizzle window round-trips back-to-back" `Quick
            test_swizzle_window_roundtrips_back_to_back;
          Alcotest.test_case "swizzle outside the window dangles" `Quick
            test_swizzle_outside_window_dangles;
          Alcotest.test_case "pinned mapping (Mnemosyne-style)" `Quick
            test_pinned_mapping_mnemosyne_style;
          Alcotest.test_case "region migration (section 4.4)" `Quick
            test_migrate_region_grows_and_survives;
          Alcotest.test_case "based-pointer pitfall (figure 11)" `Quick
            test_based_wrong_base_misresolves;
        ] );
      ( "costs",
        [
          Alcotest.test_case "cost ordering" `Quick test_cost_ordering;
          Alcotest.test_case "riv phase breakdown" `Quick
            test_riv_phase_breakdown_counts;
        ] );
      ( "machine",
        [
          Alcotest.test_case "dram alloc" `Quick test_dram_alloc;
          Alcotest.test_case "rid_of_addr" `Quick test_rid_of_addr_exn;
          Alcotest.test_case "deterministic placement" `Quick
            test_deterministic_placement_with_seed;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_pointer_graph ]);
    ]
