module Freelist = Core.Freelist
module Memsim = Core.Memsim
module Vaddr = Core.Kinds.Vaddr

(* Tests drive the typed API with host integers: [va] blesses a literal
   at the Figure 8 trust boundary, [ia] reads an address back out. *)
let va = Vaddr.v
let ia (a : Vaddr.t) = (a :> int)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh ?(size = 64 * 1024) () =
  let mem = Memsim.create () in
  Memsim.map mem ~addr:(va 0x1000) ~size;
  (mem, Freelist.init mem ~lo:(va 0x1000) ~hi:(va (0x1000 + size)))

let test_basic_alloc_free () =
  let _, fl = fresh () in
  let a = Freelist.alloc fl 100 in
  let b = Freelist.alloc fl 100 in
  check_bool "distinct" true (ia b >= ia a + 100 || ia a >= ia b + 100);
  check_bool "aligned" true (ia a land 7 = 0 && ia b land 7 = 0);
  Freelist.check fl;
  Freelist.free fl a;
  Freelist.check fl;
  Freelist.free fl b;
  Freelist.check fl;
  let alloc_blocks, free_blocks = Freelist.block_count fl in
  check "no allocated blocks" 0 alloc_blocks;
  check "fully coalesced" 1 free_blocks

let test_reuse_after_free () =
  let _, fl = fresh () in
  let a = Freelist.alloc fl 64 in
  Freelist.free fl a;
  let b = Freelist.alloc fl 64 in
  check "freed block reused" (ia a) (ia b)

let test_usable_size () =
  let _, fl = fresh () in
  let a = Freelist.alloc fl 30 in
  check_bool "usable >= requested" true (Freelist.usable_size fl a >= 30);
  check_bool "usable aligned" true (Freelist.usable_size fl a land 7 = 0)

let test_split_and_coalesce_middle () =
  let _, fl = fresh () in
  let blocks = Array.init 8 (fun _ -> Freelist.alloc fl 64) in
  (* Free the middle, then its neighbours; everything must coalesce. *)
  Freelist.free fl blocks.(3);
  Freelist.check fl;
  Freelist.free fl blocks.(4);
  Freelist.check fl;
  Freelist.free fl blocks.(2);
  Freelist.check fl;
  let _, free_blocks = Freelist.block_count fl in
  (* blocks 2,3,4 coalesced into one + the big tail block. *)
  check "coalesced run" 2 free_blocks

let test_out_of_memory () =
  let _, fl = fresh ~size:4096 () in
  check_bool "oom raised" true
    (try
       ignore (Freelist.alloc fl 100_000);
       false
     with Freelist.Out_of_memory _ -> true);
  (* The heap stays usable after a failed allocation. *)
  let a = Freelist.alloc fl 64 in
  Freelist.free fl a;
  Freelist.check fl

let test_double_free_detected () =
  let _, fl = fresh () in
  let a = Freelist.alloc fl 64 in
  Freelist.free fl a;
  check_bool "double free" true
    (try
       Freelist.free fl a;
       false
     with Freelist.Corrupted _ -> true)

let test_bogus_free_detected () =
  let _, fl = fresh () in
  let _ = Freelist.alloc fl 64 in
  check_bool "bogus pointer" true
    (try
       Freelist.free fl (va 0x1008);
       false
     with Freelist.Corrupted _ -> true)

let test_attach_after_move () =
  (* Format a heap, copy its bytes elsewhere (as if the region were
     remapped), re-attach: all offsets must still make sense. *)
  let mem = Memsim.create () in
  Memsim.map mem ~addr:(va 0x1000) ~size:8192;
  Memsim.map mem ~addr:(va 0x100000) ~size:8192;
  let fl = Freelist.init mem ~lo:(va 0x1000) ~hi:(va (0x1000 + 8192)) in
  let a = Freelist.alloc fl 64 in
  let b = Freelist.alloc fl 128 in
  Freelist.free fl a;
  let image = Memsim.blit_to_bytes mem ~addr:(va 0x1000) ~len:8192 in
  Memsim.blit_from_bytes mem ~addr:(va 0x100000) image;
  let fl' = Freelist.attach mem ~lo:(va 0x100000) ~hi:(va (0x100000 + 8192)) in
  Freelist.check fl';
  (* The same logical blocks exist at the new base. *)
  Freelist.free fl' (va (ia b - 0x1000 + 0x100000));
  Freelist.check fl';
  let alloc_blocks, _ = Freelist.block_count fl' in
  check "all freed after move" 0 alloc_blocks

let test_free_bytes_monotonic () =
  let _, fl = fresh () in
  let f0 = Freelist.free_bytes fl in
  let a = Freelist.alloc fl 256 in
  let f1 = Freelist.free_bytes fl in
  check_bool "alloc shrinks free bytes" true (f1 < f0);
  Freelist.free fl a;
  check "free restores bytes" f0 (Freelist.free_bytes fl)

let test_iter_blocks_tiles_heap () =
  let _, fl = fresh ~size:16384 () in
  let _ = Freelist.alloc fl 100 in
  let _ = Freelist.alloc fl 200 in
  let total = ref 0 in
  Freelist.iter_blocks fl (fun ~addr:_ ~size ~free:_ ->
      total := !total + size + 16);
  check "blocks tile heap" (16384 - 16) !total

(* Property: random alloc/free interleavings keep all invariants. *)
let prop_random_ops =
  QCheck2.Test.make ~name:"random alloc/free keeps heap invariants" ~count:60
    QCheck2.Gen.(list_size (int_range 10 120) (int_range 1 400))
    (fun sizes ->
      let _, fl = fresh ~size:(256 * 1024) () in
      let live = ref [] in
      let st = Random.State.make [| List.length sizes |] in
      List.iter
        (fun sz ->
          (* Interleave: sometimes free a random live block first. *)
          (if !live <> [] && Random.State.bool st then begin
             let i = Random.State.int st (List.length !live) in
             let a = List.nth !live i in
             Freelist.free fl a;
             live := List.filteri (fun j _ -> j <> i) !live
           end);
          let a = Freelist.alloc fl sz in
          live := a :: !live;
          Freelist.check fl)
        sizes;
      List.iter (fun a -> Freelist.free fl a) !live;
      Freelist.check fl;
      fst (Freelist.block_count fl) = 0)

(* Differential property: drive the freelist and a pure reference model
   with the same operation trace and demand they agree after every step.
   The model is just the set of live (payload address, usable size)
   pairs plus its own disjointness/bounds judgement — it shares no code
   with the allocator, so any divergence (a lost block, a double-mapped
   byte, a block leaking past the heap) fails the property, and QCheck2's
   integrated shrinking reduces the trace to a minimal counterexample. *)
let heap_lo = 0x1000
let heap_size = 256 * 1024

let model_ok live =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) live in
  let in_bounds (a, s) = a >= heap_lo && a + s <= heap_lo + heap_size in
  let rec disjoint = function
    | (a, s) :: ((b, _) :: _ as rest) -> a + s <= b && disjoint rest
    | _ -> true
  in
  List.for_all in_bounds sorted && disjoint sorted

let fl_allocated fl =
  let out = ref [] in
  Freelist.iter_blocks fl (fun ~addr ~size ~free ->
      if not free then out := (ia addr, size) :: !out);
  List.sort compare !out

let prop_differential_model =
  QCheck2.Test.make ~name:"freelist agrees with pure reference model"
    ~count:80
    QCheck2.Gen.(list_size (int_range 1 150) (int_range 0 2000))
    (fun trace ->
      let _, fl = fresh ~size:heap_size () in
      let live = ref [] in
      let step n =
        (if n mod 4 = 0 && !live <> [] then begin
           (* Free the (n/4 mod live)-th live block, model first. *)
           let i = n / 4 mod List.length !live in
           let a, _ = List.nth !live i in
           live := List.filteri (fun j _ -> j <> i) !live;
           Freelist.free fl (va a)
         end
         else
           let sz = 1 + (n mod 500) in
           let a = Freelist.alloc fl sz in
           let us = Freelist.usable_size fl a in
           if us < sz then failwith "usable_size below request";
           live := (ia a, us) :: !live);
        Freelist.check fl;
        if not (model_ok !live) then failwith "model invariant broken";
        (* The heap's allocated set must be exactly the model's. *)
        fl_allocated fl = List.sort compare !live
      in
      List.for_all step trace
      &&
      (List.iter (fun (a, _) -> Freelist.free fl (va a)) !live;
       Freelist.check fl;
       fl_allocated fl = []))

let prop_no_overlap =
  QCheck2.Test.make ~name:"live blocks never overlap" ~count:60
    QCheck2.Gen.(list_size (int_range 5 60) (int_range 1 300))
    (fun sizes ->
      let _, fl = fresh ~size:(256 * 1024) () in
      let blocks = List.map (fun sz -> (Freelist.alloc fl sz, sz)) sizes in
      List.for_all
        (fun (a, sa) ->
          List.for_all
            (fun (b, _) ->
              Vaddr.equal a b
              || ia b >= ia a + sa
              || ia a >= ia b + Freelist.usable_size fl b)
            blocks)
        blocks)

let () =
  Alcotest.run "alloc"
    [
      ( "freelist",
        [
          Alcotest.test_case "alloc/free/coalesce" `Quick test_basic_alloc_free;
          Alcotest.test_case "reuse after free" `Quick test_reuse_after_free;
          Alcotest.test_case "usable size" `Quick test_usable_size;
          Alcotest.test_case "middle coalescing" `Quick
            test_split_and_coalesce_middle;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "double free detected" `Quick
            test_double_free_detected;
          Alcotest.test_case "bogus free detected" `Quick
            test_bogus_free_detected;
          Alcotest.test_case "reattach after move" `Quick test_attach_after_move;
          Alcotest.test_case "free bytes accounting" `Quick
            test_free_bytes_monotonic;
          Alcotest.test_case "blocks tile heap" `Quick
            test_iter_blocks_tiles_heap;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_ops;
          QCheck_alcotest.to_alcotest prop_differential_model;
          QCheck_alcotest.to_alcotest prop_no_overlap;
        ] );
    ]
