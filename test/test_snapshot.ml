module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim
module Repr = Core.Repr
module Vaddr = Core.Kinds.Vaddr
module Snapshot = Nvmpi_snapshot.Snapshot
module Objstore = Nvmpi_tx.Objstore
module Kvstore = Nvmpi_apps.Kvstore

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_machine ?(size = 1 lsl 20) ?(seed = 1) () =
  let store = Store.create () in
  let m = Machine.create ~seed ~store () in
  let rid = Machine.create_region m ~size in
  let r = Machine.open_region m rid in
  (store, m, rid, r)

(* Dirty tracking *)

let test_dirty_granularity () =
  let _, m, _, r = with_machine () in
  (* Allocate first: Region.alloc writes heap_top into the (tracked)
     region header, which would add a line of its own. *)
  let a = Region.alloc r 8192 in
  let snap = Snapshot.create m r () in
  (* Two words in one line: one dirty line. *)
  Memsim.store64 m.Machine.mem a 1;
  Memsim.store64 m.Machine.mem (Vaddr.add a 8) 2;
  check "one line" 1 (Snapshot.dirty_lines snap);
  (* A word one page later: a second page, a second line. *)
  Memsim.store64 m.Machine.mem (Vaddr.add a 4096) 3;
  check "two lines" 2 (Snapshot.dirty_lines snap);
  check "two pages" 2 (Snapshot.dirty_pages snap)

let test_protocol_pages_excluded () =
  let _, m, _, r = with_machine () in
  let snap = Snapshot.create m r () in
  (* The meta/log pages are written by sync itself; they must never
     enter the dirty set or sync would feed on its own traffic. *)
  Snapshot.sync snap;
  check "no dirty lines" 0 (Snapshot.dirty_lines snap);
  check "no pending bytes" 0 (Snapshot.pending_log_bytes snap);
  check "nothing committed" 0 (Snapshot.committed_bytes snap)

let test_line_vs_page_pending () =
  let _, m, _, r = with_machine () in
  let a = Region.alloc r (4 * 4096) in
  let line = Snapshot.create m r ~granularity:Snapshot.Line () in
  let store2, m2, _, r2 = with_machine ~seed:2 () in
  ignore store2;
  let b = Region.alloc r2 (4 * 4096) in
  let page = Snapshot.create m2 r2 ~granularity:Snapshot.Page () in
  (* One word per page: four sparse small updates. *)
  for i = 0 to 3 do
    Memsim.store64 m.Machine.mem (Vaddr.add a (i * 4096)) i;
    Memsim.store64 m2.Machine.mem (Vaddr.add b (i * 4096)) i
  done;
  check "line logs 4 lines" (4 * (16 + 64)) (Snapshot.pending_log_bytes line);
  check "page logs 4 pages" (4 * (16 + 4096)) (Snapshot.pending_log_bytes page);
  check_bool "page amplifies sparse updates" true
    (Snapshot.pending_log_bytes page > Snapshot.pending_log_bytes line)

(* Sync protocol *)

let test_sync_clears_and_truncates () =
  let _, m, _, r = with_machine () in
  let snap = Snapshot.create m r () in
  let a = Region.alloc r 256 in
  Region.set_root r "a" a;
  Memsim.store64 m.Machine.mem a 41;
  Memsim.store64 m.Machine.mem (Vaddr.add a 128) 42;
  Snapshot.sync snap;
  check "value intact" 41 (Memsim.load64 m.Machine.mem a);
  check "dirty cleared" 0 (Snapshot.dirty_lines snap);
  check "log truncated" 0 (Snapshot.committed_bytes snap);
  check "pending cleared" 0 (Snapshot.pending_log_bytes snap)

let test_replay_restores_logged_image () =
  let _, m, _, r = with_machine () in
  let snap = Snapshot.create m r () in
  let a = Region.alloc r 64 in
  Memsim.store64 m.Machine.mem a 7;
  Snapshot.sync ~stop_after:`Commit snap;
  check_bool "log committed" true (Snapshot.committed_bytes snap > 0);
  (* Clobber the line after the commit point: replay must reinstall the
     logged image — this is the write-back recovery depends on. *)
  Memsim.store64 m.Machine.mem a 999;
  Snapshot.replay snap;
  check "logged image reinstalled" 7 (Memsim.load64 m.Machine.mem a);
  check "truncated after replay" 0 (Snapshot.committed_bytes snap);
  (* Idempotent: a second replay of the empty log changes nothing. *)
  Snapshot.replay snap;
  check "still installed" 7 (Memsim.load64 m.Machine.mem a)

let test_attach_replays_committed_log () =
  let store = Store.create () in
  let m1 = Machine.create ~seed:3 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let snap1 = Snapshot.create m1 r1 ~granularity:Snapshot.Page () in
  let a = Region.alloc r1 64 in
  Region.set_root r1 "a" a;
  Memsim.store64 m1.Machine.mem a 11;
  (* Crash between commit and write-back: the next attach owns replay. *)
  Snapshot.sync ~stop_after:`Commit snap1;
  Snapshot.disable snap1;
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:4 ~store () in
  let r2 = Machine.open_region m2 rid in
  let snap2 = Snapshot.attach m2 r2 in
  check "granularity recovered" 0
    (match Snapshot.granularity snap2 with Page -> 0 | Line -> 1);
  check "log truncated by attach" 0 (Snapshot.committed_bytes snap2);
  let a' = Option.get (Region.root r2 "a") in
  check "epoch replayed" 11 (Memsim.load64 m2.Machine.mem a');
  (* A third open finds an empty log and the same state. *)
  Snapshot.disable snap2;
  Machine.close_region m2 rid;
  let m3 = Machine.create ~seed:5 ~store () in
  let r3 = Machine.open_region m3 rid in
  let snap3 = Snapshot.attach m3 r3 in
  check "idempotent reattach" 0 (Snapshot.committed_bytes snap3);
  check "state stable" 11
    (Memsim.load64 m3.Machine.mem (Option.get (Region.root r3 "a")))

let test_log_full_detected () =
  let _, m, _, r = with_machine () in
  (* One page of log fills after ~50 line records. *)
  let snap = Snapshot.create m r ~log_cap:4096 () in
  let a = Region.alloc r (80 * 64) in
  check_bool "overflow detected" true
    (try
       for i = 0 to 79 do
         Memsim.store64 m.Machine.mem (Vaddr.add a (i * 64)) i
       done;
       Snapshot.sync snap;
       false
     with Failure _ -> true)

(* Kvstore plain write path *)

let test_kvstore_plain_path () =
  let _, m, _, r = with_machine () in
  let snap = Snapshot.create m r () in
  let os = Objstore.create m r ~heap:`Freelist () in
  let kv = Kvstore.create os ~repr:Repr.Off_holder ~name:"kv" ~write_path:`Plain () in
  check_bool "plain path" true (Kvstore.write_path kv = `Plain);
  Kvstore.put kv ~key:1 "one";
  Kvstore.put kv ~key:2 "two";
  Kvstore.put kv ~key:1 "uno";
  Snapshot.sync snap;
  Alcotest.(check (option string)) "overwrite" (Some "uno") (Kvstore.get kv ~key:1);
  Alcotest.(check (option string)) "second key" (Some "two") (Kvstore.get kv ~key:2);
  check_bool "delete" true (Kvstore.delete kv ~key:2);
  Snapshot.sync snap;
  Alcotest.(check (option string)) "deleted" None (Kvstore.get kv ~key:2);
  check_bool "tx crash hook rejected on plain path" true
    (try
       Kvstore.simulate_crash_during_put kv ~key:9 "x";
       false
     with Invalid_argument _ -> true)

(* Differential property: the same op sequence through the snapshot-mode
   kvstore (plain write path + sync epochs), the undo-log Tx kvstore and
   a pure assoc-list model must agree key-for-key — both live and after
   the snapshot side re-attaches (replaying any committed log). *)

type kv_op = Put of int * string | Del of int | SyncPoint

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 30)
      (int_range 0 9 >>= fun r ->
       int_range 1 8 >>= fun k ->
       int_range 0 999 >>= fun v ->
       return
         (if r < 6 then Put (k, Printf.sprintf "v%03d" v)
          else if r < 8 then Del k
          else SyncPoint)))

let prop_snapshot_tx_model_agree =
  QCheck2.Test.make ~name:"snapshot, undo-log tx and model agree" ~count:30
    gen_ops
    (fun ops ->
      (* Snapshot arm, on a store we can re-open for the recovery leg. *)
      let store = Store.create () in
      let m1 = Machine.create ~seed:7 ~store () in
      let rid = Machine.create_region m1 ~size:(1 lsl 20) in
      let r1 = Machine.open_region m1 rid in
      let snap = Snapshot.create m1 r1 () in
      let os1 = Objstore.create m1 r1 ~heap:`Freelist () in
      let kv_snap =
        Kvstore.create os1 ~repr:Repr.Off_holder ~name:"kv" ~write_path:`Plain ()
      in
      (* Undo-log arm. *)
      let _, m2, _, r2 = with_machine ~seed:8 () in
      let os2 = Objstore.create m2 r2 () in
      let kv_tx = Kvstore.create os2 ~repr:Repr.Off_holder ~name:"kv" () in
      let model = ref [] in
      List.iter
        (function
          | Put (k, v) ->
              Kvstore.put kv_snap ~key:k v;
              Kvstore.put kv_tx ~key:k v;
              model := (k, v) :: List.remove_assoc k !model
          | Del k ->
              ignore (Kvstore.delete kv_snap ~key:k);
              ignore (Kvstore.delete kv_tx ~key:k);
              model := List.remove_assoc k !model
          | SyncPoint -> Snapshot.sync snap)
        ops;
      let agree kv =
        List.for_all
          (fun k -> Kvstore.get kv ~key:k = List.assoc_opt k !model)
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      let live = agree kv_snap && agree kv_tx in
      (* Recovery leg: close the epoch at its commit point and re-attach,
         so the final state is reconstructed through log replay. *)
      Snapshot.sync ~stop_after:`Commit snap;
      Snapshot.disable snap;
      Machine.close_region m1 rid;
      let m1' = Machine.create ~seed:9 ~store () in
      let r1' = Machine.open_region m1' rid in
      ignore (Snapshot.attach m1' r1');
      let os1' = Objstore.attach m1' r1' in
      let kv' =
        Kvstore.attach ~write_path:`Plain os1' ~repr:Repr.Off_holder ~name:"kv"
      in
      live && agree kv')

let () =
  Alcotest.run "snapshot"
    [
      ( "tracking",
        [
          Alcotest.test_case "dirty granularity" `Quick test_dirty_granularity;
          Alcotest.test_case "protocol pages excluded" `Quick
            test_protocol_pages_excluded;
          Alcotest.test_case "line vs page pending" `Quick
            test_line_vs_page_pending;
        ] );
      ( "sync",
        [
          Alcotest.test_case "sync clears and truncates" `Quick
            test_sync_clears_and_truncates;
          Alcotest.test_case "replay restores logged image" `Quick
            test_replay_restores_logged_image;
          Alcotest.test_case "attach replays committed log" `Quick
            test_attach_replays_committed_log;
          Alcotest.test_case "log overflow detected" `Quick
            test_log_full_detected;
        ] );
      ( "kvstore",
        [ Alcotest.test_case "plain write path" `Quick test_kvstore_plain_path ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_snapshot_tx_model_agree ] );
    ]
