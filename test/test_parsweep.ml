(* The parallel sweep engine: pool semantics, and the determinism
   contract — [--jobs N] must produce byte-identical documents to a
   serial run for both the faultsim sweep and the bench matrix. *)

open Nvmpi_parsweep

let check = Alcotest.check
let check_int = check Alcotest.int

(* {1 Pool} *)

let test_map_order () =
  let tasks = List.init 20 (fun i () -> i * i) in
  let expect = List.init 20 (fun i -> i * i) in
  check (Alcotest.list Alcotest.int) "jobs=1" expect (Pool.map ~jobs:1 tasks);
  check (Alcotest.list Alcotest.int) "jobs=4" expect (Pool.map ~jobs:4 tasks);
  check (Alcotest.list Alcotest.int) "jobs > tasks" expect
    (Pool.map ~jobs:64 tasks);
  check (Alcotest.list Alcotest.int) "empty" [] (Pool.map ~jobs:4 [])

let test_map_side_effects_complete () =
  let hits = Array.make 50 0 in
  let tasks = List.init 50 (fun i () -> hits.(i) <- hits.(i) + 1) in
  ignore (Pool.map ~jobs:4 tasks);
  Array.iteri
    (fun i n -> check_int (Printf.sprintf "task %d ran once" i) 1 n)
    hits

exception Boom of int

let test_map_exception_lowest_index () =
  let tasks =
    List.init 16 (fun i () -> if i = 3 || i = 11 then raise (Boom i) else i)
  in
  (match Pool.map ~jobs:4 tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
      check_int "lowest-indexed failure wins deterministically" 3 i);
  match Pool.map ~jobs:1 tasks with
  | _ -> Alcotest.fail "expected Boom (serial)"
  | exception Boom i -> check_int "serial raises the same" 3 i

let test_chunks () =
  let lst = List.init 13 Fun.id in
  List.iter
    (fun jobs ->
      let cs = Pool.chunks ~jobs lst in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "concat preserves order (jobs=%d)" jobs)
        lst (List.concat cs);
      check_int
        (Printf.sprintf "at most %d chunks" jobs)
        (min jobs 13) (List.length cs);
      let sizes = List.map List.length cs in
      let mn = List.fold_left min max_int sizes in
      let mx = List.fold_left max 0 sizes in
      if mx - mn > 1 then
        Alcotest.failf "chunk sizes differ by %d (jobs=%d)" (mx - mn) jobs)
    [ 1; 2; 3; 4; 13; 64 ];
  check_int "empty input yields no chunks" 0
    (List.length (Pool.chunks ~jobs:4 []))

(* {1 Wall} *)

let test_wall_monotonic () =
  let a = Wall.now_ns () in
  let b = Wall.now_ns () in
  if b < a then Alcotest.fail "monotonic clock went backwards";
  let (v, ns) = Wall.time (fun () -> 42) in
  check_int "time returns the result" 42 v;
  if ns < 0 then Alcotest.fail "negative elapsed time"

(* {1 Determinism: faultsim sweep} *)

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let sweep_json ~jobs =
  let open Nvmpi_faultsim in
  let metrics = Nvmpi_obs.Metrics.create () in
  let scenarios = take 4 (Scenario.defaults ()) in
  let report =
    Sweep.run ~jobs ~mode:(Sweep.Sampled 10) ~metrics ~seed:7 scenarios
  in
  (Nvmpi_obs.Json.to_string (Sweep.json_of_report report), metrics)

let test_faultsim_parallel_determinism () =
  let serial, m1 = sweep_json ~jobs:1 in
  List.iter
    (fun jobs ->
      let parallel, mj = sweep_json ~jobs in
      check Alcotest.string
        (Printf.sprintf "sweep JSON byte-identical at jobs=%d" jobs)
        serial parallel;
      check Alcotest.string
        (Printf.sprintf "shared metrics registry identical at jobs=%d" jobs)
        (Nvmpi_obs.Json.to_string (Nvmpi_obs.Metrics.to_json m1))
        (Nvmpi_obs.Json.to_string (Nvmpi_obs.Metrics.to_json mj)))
    [ 2; 4 ]

(* {1 Determinism: bench experiment matrix} *)

let bench_json ~jobs =
  let open Nvmpi_experiments in
  let params = { Suite.scale = 0.05; seed = Some 1; wordcount_full = false } in
  let names = [ "fig12"; "breakdown" ] in
  let results = Suite.run_all ~jobs params names in
  (* Compare without the wall section — the only field allowed to
     differ between runs. *)
  Nvmpi_obs.Json.to_string (Suite.snapshot_of params results)

let test_bench_parallel_determinism () =
  let serial = bench_json ~jobs:1 in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "bench snapshot byte-identical at jobs=%d" jobs)
        serial (bench_json ~jobs))
    [ 2; 4 ]

let () =
  Alcotest.run "parsweep"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map runs every task once" `Quick
            test_map_side_effects_complete;
          Alcotest.test_case "map re-raises lowest-indexed failure" `Quick
            test_map_exception_lowest_index;
          Alcotest.test_case "chunks are contiguous and balanced" `Quick
            test_chunks;
        ] );
      ( "wall",
        [ Alcotest.test_case "monotonic, measures" `Quick test_wall_monotonic ]
      );
      ( "determinism",
        [
          Alcotest.test_case "faultsim sweep serial = parallel" `Slow
            test_faultsim_parallel_determinism;
          Alcotest.test_case "bench matrix serial = parallel" `Slow
            test_bench_parallel_determinism;
        ] );
    ]
