(* nvmpi: command-line front end.

   - [nvmpi bench ...]    regenerate the paper's tables/figures
   - [nvmpi run FILE]     compile and run an NVC program against a
                          (optionally file-backed) NVM store
   - [nvmpi inspect FILE] list the regions and roots of a store image
   - [nvmpi layout]       print the NV-space layout parameters *)

open Cmdliner

let experiments =
  [ "fig12"; "payload"; "table1"; "fig13"; "fig14"; "regions"; "fig15";
    "breakdown"; "ablations"; "all" ]

(* bench *)

let bench_cmd =
  let names =
    Arg.(value & pos_all (enum (List.map (fun e -> (e, e)) experiments)) [ "all" ]
         & info [] ~docv:"EXPERIMENT")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "scale" ] ~doc:"Scale factor on workload sizes.")
  in
  let full =
    Arg.(value & flag
         & info [ "full-wordcount" ]
             ~doc:"Run wordcount at the paper's 1M/2M-word sizes.")
  in
  let run names scale full =
    let open Nvmpi_experiments in
    let one = function
      | "fig12" -> Table.print (Figures.fig12 ~scale ())
      | "payload" -> Table.print (Figures.payload_sweep ~scale ())
      | "table1" -> Table.print (Figures.table1 ~scale ())
      | "fig13" -> Table.print (Figures.fig13 ~scale ())
      | "fig14" -> Table.print (Figures.fig14 ~scale ())
      | "regions" -> Table.print (Figures.regions_sweep ~scale ())
      | "fig15" -> Table.print (Figures.fig15 ~scale ~full ())
      | "breakdown" -> Table.print (Figures.breakdown ~scale ())
      | "ablations" -> List.iter Table.print (Ablations.all ~scale ())
      | "all" ->
          List.iter Table.print (Figures.all ~scale ~wordcount_full:full ());
          List.iter Table.print (Ablations.all ~scale ())
      | _ -> assert false
    in
    List.iter one names
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's evaluation tables/figures.")
    Term.(const run $ names $ scale $ full)

(* run *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.nvc" ~doc:"NVC source file.")
  in
  let store_path =
    Arg.(value & opt (some string) None
         & info [ "store" ]
             ~doc:"NVM store image to load (created if missing) and save \
                   back after the run — regions persist across invocations.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~doc:"Fix region placement (default: randomized).")
  in
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~doc:"Entry function.")
  in
  let args =
    Arg.(value & opt (list int) [] & info [ "args" ] ~doc:"Integer arguments.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Log region open/close events.")
  in
  let run file store_path seed entry args verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    let store =
      match store_path with
      | Some p when Sys.file_exists p -> Nvmpi_nvregion.Store.load_file p
      | _ -> Nvmpi_nvregion.Store.create ()
    in
    let machine = Core.Machine.create ?seed ~store () in
    let src = In_channel.with_open_text file In_channel.input_all in
    match Nvmpi_lang.Lang.run_string machine ~entry ~args src with
    | Error msg ->
        prerr_endline msg;
        exit 1
    | Ok { Nvmpi_lang.Lang.Eval.result; output } ->
        print_string output;
        Core.Machine.close_all machine;
        (match store_path with
        | Some p -> Nvmpi_nvregion.Store.save_file store p
        | None -> ());
        (match result with
        | Some v -> Printf.printf "-> %d\n" v
        | None -> ())
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile and run an NVC program on the simulated machine.")
    Term.(const run $ file $ store_path $ seed $ entry $ args $ verbose)

(* inspect *)

let inspect_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"STORE" ~doc:"Store image written by 'run --store'.")
  in
  let run file =
    let store = Nvmpi_nvregion.Store.load_file file in
    let machine = Core.Machine.create ~seed:1 ~store () in
    let ids = Nvmpi_nvregion.Store.ids store in
    Printf.printf "store %s: %d region(s)\n" file (List.length ids);
    List.iter
      (fun rid ->
        let r = Core.Machine.open_region machine rid in
        let module R = Nvmpi_nvregion.Region in
        Printf.printf "  region %d: %d bytes, heap top 0x%x, %d root(s)\n" rid
          (R.size r) (R.heap_top r)
          (List.length (R.roots r));
        List.iter
          (fun (name, addr) ->
            Printf.printf "    root %-24s offset 0x%x\n" name
              (R.offset_of_addr r addr))
          (R.roots r);
        (* If the region hosts a transactional object store, validate its
           heap and report occupancy. *)
        if List.mem_assoc "__objstore" (R.roots r) then begin
          match Nvmpi_tx.Objstore.attach machine r with
          | os ->
              Printf.printf
                "    object store: %d object(s) alive, %d pending undo \
                 record(s)\n"
                (Nvmpi_tx.Objstore.objects_alive os)
                (Nvmpi_tx.Objstore.log_entries os)
          | exception Failure msg ->
              Printf.printf "    object store: CORRUPT (%s)\n" msg
        end)
      ids
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"List the regions and roots of a store image.")
    Term.(const run $ file)

(* layout *)

let layout_cmd =
  let run () =
    let l = Core.Layout.default in
    Format.printf "layout: %a@." Core.Layout.pp l;
    Format.printf "  NV space starts at 0x%x@." (Core.Layout.nv_start l);
    Format.printf "  segment size: %d MiB@."
      (Core.Layout.segment_size l / 1024 / 1024);
    Format.printf "  usable data segments: %d@." (Core.Layout.usable_segments l);
    Format.printf "  max region id: %d@." (Core.Layout.max_rid l);
    Format.printf "  table virtual footprint: %d MiB@."
      (Core.Layout.table_virtual_bytes l / 1024 / 1024);
    Format.printf "  physical table bytes for 20 open regions: %d@."
      (Core.Layout.physical_overhead_bytes l ~regions:20)
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print the NV-space layout parameters.")
    Term.(const run $ const ())

let () =
  let doc = "position-independent pointers on simulated NVM (MICRO'17)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "nvmpi" ~doc)
          [ bench_cmd; run_cmd; inspect_cmd; layout_cmd ]))
