(* nvmpi: command-line front end.

   - [nvmpi bench ...]    regenerate the paper's tables/figures
   - [nvmpi check FILE]   regression-check against a benchmark snapshot
   - [nvmpi run FILE]     compile and run an NVC program against a
                          (optionally file-backed) NVM store
   - [nvmpi crash ...]    sweep crash points with the fault-injection
                          harness and verify recovery invariants
   - [nvmpi fuzz ...]     differential conformance fuzzing against the
                          pure reference model
   - [nvmpi serve ...]    multi-tenant region server under a zipfian
                          YCSB-style workload
   - [nvmpi inspect FILE] list the regions and roots of a store image
   - [nvmpi layout]       print the NV-space layout parameters *)

open Cmdliner

let experiments = Nvmpi_experiments.Suite.names @ [ "all" ]

(* --engine: which instance-construction call graph the process uses —
   staged (pre-instantiated per-representation modules, the default) or
   dispatch (the historical first-class-module path). Process-global,
   set at command start before any domains spawn; the two are
   observationally identical, so every JSON artifact is byte-identical
   across engines and only host time differs. Shared by the subcommands
   that construct representation-parameterized structures. *)
let engine =
  let engine_conv =
    Arg.enum
      [ ("staged", Core.Engine.Staged); ("dispatch", Core.Engine.Dispatch) ]
  in
  Arg.(value & opt engine_conv Core.Engine.Staged
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,staged) (pre-instantiated \
                 per-representation modules, the default) or \
                 $(b,dispatch) (first-class-module dispatch). Results \
                 are identical; only host time differs.")

(* --durability: which persistence discipline the structures use —
   eager (the legacy behaviour: structure code issues no persistence
   actions, the default) or traverse (link-and-persist: flush-free
   traversals, clwb+fence confined to the modification window;
   docs/DURABLE.md). Process-global like --engine, set at command start
   before any domains spawn. Only hashset and bstree under 8-byte-slot
   representations change behaviour; the committed BENCH_seed.json is
   recorded (and checked) under the eager default. *)
type durability_choice =
  | Structure of Nvmpi_structures.Durable.mode
  | Snapshot_epochs of Nvmpi_snapshot.Snapshot.granularity

(* Applied at command start, before any domains spawn. The snapshot
   modes run structure code flush-free (Eager) and move all durability
   to explicit sync epochs; components that know about the process-wide
   default (kvstore write path, residency heap choice, conform exec)
   pick it up through [Snapshot.enabled]. *)
let set_durability = function
  | Structure m ->
      Nvmpi_structures.Durable.set_default_mode m;
      Nvmpi_snapshot.Snapshot.set_default None
  | Snapshot_epochs g ->
      Nvmpi_structures.Durable.set_default_mode Nvmpi_structures.Durable.Eager;
      Nvmpi_snapshot.Snapshot.set_default (Some g)

let durability =
  let durability_conv =
    Arg.enum
      [
        ("eager", Structure Nvmpi_structures.Durable.Eager);
        ("traverse", Structure Nvmpi_structures.Durable.Traverse);
        ("snapshot", Snapshot_epochs Nvmpi_snapshot.Snapshot.Line);
        ("snapshot-page", Snapshot_epochs Nvmpi_snapshot.Snapshot.Page);
      ]
  in
  Arg.(value & opt durability_conv (Structure Nvmpi_structures.Durable.Eager)
       & info [ "durability" ] ~docv:"MODE"
           ~doc:"Persistence discipline: $(b,eager) (legacy, the \
                 default), $(b,traverse) (link-and-persist \
                 flush-minimized durability for hashset/bstree; \
                 docs/DURABLE.md), $(b,snapshot) (failure-atomic \
                 sync epochs, line-granular WAL) or \
                 $(b,snapshot-page) (the same at page granularity; \
                 docs/SNAPSHOT.md).")

(* bench *)

let bench_cmd =
  let names =
    Arg.(value & pos_all (enum (List.map (fun e -> (e, e)) experiments)) [ "all" ]
         & info [] ~docv:"EXPERIMENT")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "scale" ] ~doc:"Scale factor on workload sizes.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ]
             ~doc:"Override the workload seed (default: each experiment's \
                   fixed seed).")
  in
  let full =
    Arg.(value & flag
         & info [ "full-wordcount" ]
             ~doc:"Run wordcount at the paper's 1M/2M-word sizes.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write a schema-versioned JSON snapshot of the \
                   results (cycle counts, baselines, per-counter \
                   breakdowns; see docs/METRICS.md).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Run experiments on N domains. Results (and the JSON \
                   snapshot) are identical to a serial run; only \
                   wall-clock changes.")
  in
  let run engine durability names scale seed full json jobs =
    Core.Engine.set_default_mode engine;
    set_durability durability;
    let open Nvmpi_experiments in
    let params = { Suite.scale; seed; wordcount_full = full } in
    let names =
      List.concat_map
        (fun n -> if n = "all" then Suite.names else [ n ])
        names
    in
    let results =
      if jobs > 1 then begin
        let results = Suite.run_all ~jobs params names in
        List.iter
          (fun r -> List.iter Table.print r.Suite.tables)
          results;
        results
      end
      else
        List.map
          (fun name ->
            let r = Suite.run params name in
            List.iter Table.print r.Suite.tables;
            r)
          names
    in
    match json with
    | None -> ()
    | Some path ->
        Core.Json.to_file path (Suite.snapshot_of params results);
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's evaluation tables/figures.")
    Term.(const run $ engine $ durability $ names $ scale $ seed $ full
          $ json $ jobs)

(* check *)

let check_cmd =
  let baseline =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASELINE.json"
             ~doc:"Snapshot written by 'bench --json'.")
  in
  let tolerance =
    Arg.(value & opt float 0.10
         & info [ "tolerance" ]
             ~doc:"Allowed relative deviation per cycle count.")
  in
  let run engine durability path tolerance =
    Core.Engine.set_default_mode engine;
    set_durability durability;
    let open Nvmpi_experiments in
    let ( let* ) r f =
      match r with
      | Ok v -> f v
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
    in
    let* baseline = Core.Json.of_file path in
    let* params = Suite.params_of_json baseline in
    let* names = Suite.names_of_json baseline in
    let fresh = Suite.snapshot_of params (Suite.run_all params names) in
    let* compared, mismatches = Suite.check ~tolerance ~baseline ~fresh () in
    if mismatches = [] then
      Printf.printf "check: PASS (%d cells within %g%% of %s)\n" compared
        (100.0 *. tolerance) path
    else begin
      List.iter (fun m -> Printf.printf "  %s\n" m) mismatches;
      Printf.printf "check: FAIL (%d of %d cells deviate from %s)\n"
        (List.length mismatches) compared path;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Re-run the experiments a benchmark snapshot records and fail \
             on cycle-count regressions beyond the tolerance.")
    Term.(const run $ engine $ durability $ baseline $ tolerance)

(* run *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.nvc" ~doc:"NVC source file.")
  in
  let store_path =
    Arg.(value & opt (some string) None
         & info [ "store" ]
             ~doc:"NVM store image to load (created if missing) and save \
                   back after the run — regions persist across invocations.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~doc:"Fix region placement (default: randomized).")
  in
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~doc:"Entry function.")
  in
  let args =
    Arg.(value & opt (list int) [] & info [ "args" ] ~doc:"Integer arguments.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Log region open/close events.")
  in
  let run file store_path seed entry args verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    let store =
      match store_path with
      | Some p when Sys.file_exists p -> Nvmpi_nvregion.Store.load_file p
      | _ -> Nvmpi_nvregion.Store.create ()
    in
    let machine = Core.Machine.create ?seed ~store () in
    let src = In_channel.with_open_text file In_channel.input_all in
    match Nvmpi_lang.Lang.run_string machine ~entry ~args src with
    | Error msg ->
        prerr_endline msg;
        exit 1
    | Ok { Nvmpi_lang.Lang.Eval.result; output } ->
        print_string output;
        Core.Machine.close_all machine;
        (match store_path with
        | Some p -> Nvmpi_nvregion.Store.save_file store p
        | None -> ());
        (match result with
        | Some v -> Printf.printf "-> %d\n" v
        | None -> ())
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile and run an NVC program on the simulated machine.")
    Term.(const run $ file $ store_path $ seed $ entry $ args $ verbose)

(* crash *)

let crash_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ]
             ~doc:"Workload and region-placement seed; recovery machines \
                   derive per-crash-point seeds from it, so a run is fully \
                   reproducible.")
  in
  let exhaustive =
    Arg.(value & flag
         & info [ "exhaustive" ]
             ~doc:"Inject a crash after every recorded event (store, flush, \
                   fence) instead of only after fences.")
  in
  let sample =
    Arg.(value & opt (some int) None
         & info [ "sample" ] ~docv:"N"
             ~doc:"Inject crashes at N seeded random event indices per \
                   scenario (plus the endpoints). Overrides --exhaustive.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the sweep report as JSON (see docs/FAULTSIM.md).")
  in
  let skip_selftest =
    Arg.(value & flag
         & info [ "skip-selftest" ]
             ~doc:"Skip the fence-dropping doubles that prove the harness \
                   catches real durability bugs.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Evaluate each scenario's crash points on N domains. \
                   The report (and its JSON) is identical to a serial \
                   sweep; only wall-clock changes.")
  in
  let wall_json =
    Arg.(value & opt (some string) None
         & info [ "wall-json" ] ~docv:"FILE"
             ~doc:"Write host wall-clock timings (total and per scenario) \
                   as a separate JSON document. Kept apart from --json, \
                   which stays deterministic.")
  in
  let only =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"SUBSTR"
             ~doc:"Sweep only scenarios whose name contains SUBSTR (e.g. \
                   'palloc' for the allocator oracles). Selftest doubles \
                   are filtered too.")
  in
  let list_names =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"Print the scenario names the sweep would run (after \
                   --only/--skip-selftest filtering), one per line, and \
                   exit without sweeping.")
  in
  let run engine durability seed exhaustive sample json skip_selftest jobs
      wall_json only list_names =
    Core.Engine.set_default_mode engine;
    set_durability durability;
    let open Nvmpi_faultsim in
    let mode =
      match sample with
      | Some n -> Sweep.Sampled n
      | None -> if exhaustive then Sweep.Exhaustive else Sweep.After_fences
    in
    let scenarios =
      Scenario.defaults ()
      @ (if skip_selftest then [] else Scenario.selftests ())
    in
    let scenarios =
      match only with
      | None -> scenarios
      | Some substr ->
          let matches s =
            let n = String.length substr and m = String.length s.Scenario.name in
            let rec at i =
              i + n <= m && (String.sub s.Scenario.name i n = substr || at (i + 1))
            in
            at 0
          in
          (match List.filter matches scenarios with
          | [] ->
              Printf.eprintf "nvmpi crash: no scenario matches --only %s\n"
                substr;
              exit 2
          | l -> l)
    in
    if list_names then begin
      List.iter (fun s -> print_endline s.Scenario.name) scenarios;
      exit 0
    end;
    let metrics = Core.Metrics.create () in
    let report = Sweep.run ~jobs ~mode ~metrics ~seed scenarios in
    Format.printf "%a" Sweep.pp_report report;
    (match json with
    | None -> ()
    | Some path ->
        Core.Json.to_file path (Sweep.json_of_report report);
        Printf.printf "wrote %s\n" path);
    (match wall_json with
    | None -> ()
    | Some path ->
        Core.Json.to_file path (Sweep.wall_json_of_report ~jobs report);
        Printf.printf "wrote %s\n" path);
    if not (Sweep.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Sweep crash points over the durability event log: materialize \
             the durable image at each point, reopen it at fresh segments \
             and verify recovery invariants for every pointer \
             representation.")
    Term.(const run $ engine $ durability $ seed $ exhaustive $ sample
          $ json $ skip_selftest $ jobs $ wall_json $ only $ list_names)

(* fuzz *)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ]
             ~doc:"Trace-generation seed; every trace (including machine \
                   placement) derives from it, so a run is fully \
                   reproducible.")
  in
  let traces =
    Arg.(value & opt int 200
         & info [ "traces" ] ~docv:"K" ~doc:"Number of random traces.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the conformance report as JSON (deterministic: \
                   byte-identical across runs and across --jobs; see \
                   docs/CONFORM.md).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Check traces on N domains. The report (and its JSON) is \
                   identical to a serial run; only wall-clock changes.")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Instead of generating traces, replay one failing-trace \
                   s-expression (as printed in a failure report) against \
                   every applicable representation.")
  in
  let run engine durability seed traces json jobs replay =
    Core.Engine.set_default_mode engine;
    set_durability durability;
    let open Nvmpi_conform in
    match replay with
    | Some path -> (
        let src = In_channel.with_open_text path In_channel.input_all in
        match Trace.of_string (String.trim src) with
        | Error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 2
        | Ok tr ->
            let fails = Engine.check_trace ~index:(-1) tr in
            if fails = [] then print_endline "replay: PASS (no divergence)"
            else begin
              List.iter
                (fun f ->
                  Printf.printf "replay: FAIL [%s] %s\n"
                    (String.concat ","
                       (List.map Core.Repr.to_string f.Engine.f_reprs))
                    f.Engine.f_detail)
                fails;
              exit 1
            end)
    | None ->
        let metrics = Core.Metrics.create () in
        let report = Engine.run ~jobs ~metrics ~seed ~traces () in
        Printf.printf
          "conform: %d traces (seed %d, %d with remaps), %d divergence(s)\n"
          report.Engine.traces report.Engine.seed
          report.Engine.traces_with_remap
          (List.length report.Engine.failures);
        List.iter
          (fun f ->
            Printf.printf "  trace %d [%s] %s\n    shrunk to %d op(s): %s\n"
              f.Engine.f_trace
              (String.concat ","
                 (List.map Core.Repr.to_string f.Engine.f_reprs))
              f.Engine.f_detail
              (List.length f.Engine.f_shrunk.Trace.ops)
              (Trace.to_string f.Engine.f_shrunk))
          report.Engine.failures;
        (match json with
        | None -> ()
        | Some path ->
            Core.Json.to_file path (Engine.report_to_json report);
            Printf.printf "wrote %s\n" path);
        if report.Engine.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential conformance fuzzing: run random map/remap/pointer/\
             structure traces simultaneously against the pure reference \
             model and every applicable pointer representation on a real \
             simulated machine, cross-check the position-independent \
             representations pairwise after each remap, and shrink any \
             divergence to a replayable s-expression.")
    Term.(const run $ engine $ durability $ seed $ traces $ json $ jobs
          $ replay)

(* serve *)

let serve_cmd =
  let open Nvmpi_server in
  let d = Server.default in
  let tenants =
    Arg.(value & opt int d.Server.tenants
         & info [ "tenants" ] ~docv:"N" ~doc:"Total tenant count.")
  in
  let theta =
    Arg.(value & opt float d.Server.theta
         & info [ "theta" ]
             ~doc:"Zipfian skew for tenant and key popularity; 0 is \
                   uniform, must be < 1.")
  in
  let mix =
    Arg.(value & opt string "b"
         & info [ "mix" ]
             ~doc:"Operation mix: a preset (a = 50/50 read/update, \
                   b = 95/5, c = read-only, insert = 50/25/25, churn = \
                   30/40/15/15 with deletes) or an explicit \
                   read:F,update:F,insert:F[,delete:F] list.")
  in
  let churn =
    Arg.(value & flag
         & info [ "churn" ]
             ~doc:"Shorthand for --mix churn: overwrite- and \
                   delete-heavy traffic with value-size churn, driving \
                   the allocator's free/reuse paths.")
  in
  let ops =
    Arg.(value & opt int d.Server.ops
         & info [ "ops" ] ~docv:"N"
             ~doc:"Requests per representation (split across shards).")
  in
  let seed =
    Arg.(value & opt int d.Server.seed
         & info [ "seed" ]
             ~doc:"Workload seed; every RNG (tenant/key draws, op \
                   classes, machine placement) derives from it.")
  in
  let shards =
    Arg.(value & opt int d.Server.shards
         & info [ "shards" ] ~docv:"S"
             ~doc:"Static tenant shards. A workload parameter, never \
                   derived from --jobs: changing it changes the \
                   workload, changing --jobs never does.")
  in
  let resident =
    Arg.(value & opt int d.Server.resident
         & info [ "resident" ] ~docv:"R"
             ~doc:"LRU residency capacity per shard (max concurrently \
                   mapped tenants).")
  in
  let keys =
    Arg.(value & opt int d.Server.keys_per_tenant
         & info [ "keys" ] ~docv:"K" ~doc:"Base keyspace size per tenant.")
  in
  let value_bytes =
    Arg.(value & opt int d.Server.value_bytes
         & info [ "value-bytes" ] ~docv:"B" ~doc:"Payload size of values.")
  in
  let reprs =
    Arg.(value & opt (some string) None
         & info [ "reprs" ] ~docv:"R1,R2,..."
             ~doc:"Comma-separated representations to drive (default: \
                   all nine).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the server report as JSON (deterministic: \
                   byte-identical across reruns and across --jobs; see \
                   docs/SERVER.md).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Run the (representation, shard) work items on N \
                   domains. The report (and its JSON) is identical to a \
                   serial run; only wall-clock changes.")
  in
  let run engine durability tenants theta mix churn ops seed shards resident
      keys value_bytes reprs json jobs =
    Core.Engine.set_default_mode engine;
    set_durability durability;
    let fail msg =
      Printf.eprintf "serve: %s\n" msg;
      exit 2
    in
    let mix = if churn then "churn" else mix in
    let mix =
      match Server.mix_of_string mix with Ok m -> m | Error msg -> fail msg
    in
    let reprs =
      match reprs with
      | None -> d.Server.reprs
      | Some s ->
          List.map
            (fun name ->
              match Core.Repr.of_string (String.trim name) with
              | Some r -> r
              | None -> fail (Printf.sprintf "unknown representation %S" name))
            (String.split_on_char ',' s)
    in
    let config =
      { d with Server.tenants; theta; mix; ops; seed; shards; resident;
        keys_per_tenant = keys; value_bytes; reprs }
    in
    (match Server.validate config with
    | Ok () -> ()
    | Error msg -> fail msg);
    let report = Server.run ~jobs config in
    Server.print_report report;
    match json with
    | None -> ()
    | Some path ->
        Core.Json.to_file path (Server.report_to_json report);
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Host one NVRegion-backed kvstore per tenant behind a \
             deterministic request loop and drive a YCSB-style zipfian \
             workload across every pointer representation, with LRU \
             map/unmap residency churn.")
    Term.(const run $ engine $ durability $ tenants $ theta $ mix $ churn
          $ ops $ seed $ shards
          $ resident $ keys $ value_bytes $ reprs $ json $ jobs)

(* inspect *)

let inspect_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"STORE" ~doc:"Store image written by 'run --store'.")
  in
  let run file =
    let store = Nvmpi_nvregion.Store.load_file file in
    let machine = Core.Machine.create ~seed:1 ~store () in
    let ids = Nvmpi_nvregion.Store.ids store in
    Printf.printf "store %s: %d region(s)\n" file (List.length ids);
    List.iter
      (fun rid ->
        let r = Core.Machine.open_region machine rid in
        let module R = Nvmpi_nvregion.Region in
        Printf.printf "  region %d: %d bytes, heap top 0x%x, %d root(s)\n"
          (rid :> int)
          (R.size r) (R.heap_top r)
          (List.length (R.roots r));
        List.iter
          (fun (name, addr) ->
            Printf.printf "    root %-24s offset 0x%x\n" name
              (R.offset_of_addr r addr))
          (R.roots r);
        (* If the region hosts a transactional object store, validate its
           heap and report occupancy. *)
        if List.mem_assoc "__objstore" (R.roots r) then begin
          match Nvmpi_tx.Objstore.attach machine r with
          | os ->
              Printf.printf
                "    object store: %d object(s) alive, %d pending undo \
                 record(s)\n"
                (Nvmpi_tx.Objstore.objects_alive os)
                (Nvmpi_tx.Objstore.log_entries os)
          | exception Failure msg ->
              Printf.printf "    object store: CORRUPT (%s)\n" msg
        end)
      ids
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"List the regions and roots of a store image.")
    Term.(const run $ file)

(* layout *)

let layout_cmd =
  let run () =
    let l = Core.Layout.default in
    Format.printf "layout: %a@." Core.Layout.pp l;
    Format.printf "  NV space starts at 0x%x@." (Core.Layout.nv_start l);
    Format.printf "  segment size: %d MiB@."
      (Core.Layout.segment_size l / 1024 / 1024);
    Format.printf "  usable data segments: %d@." (Core.Layout.usable_segments l);
    Format.printf "  max region id: %d@." (Core.Layout.max_rid l);
    Format.printf "  table virtual footprint: %d MiB@."
      (Core.Layout.table_virtual_bytes l / 1024 / 1024);
    Format.printf "  physical table bytes for 20 open regions: %d@."
      (Core.Layout.physical_overhead_bytes l ~regions:20)
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print the NV-space layout parameters.")
    Term.(const run $ const ())

let () =
  let doc = "position-independent pointers on simulated NVM (MICRO'17)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "nvmpi" ~doc)
          [ bench_cmd; check_cmd; run_cmd; crash_cmd; fuzz_cmd; serve_cmd;
            inspect_cmd; layout_cmd ]))
