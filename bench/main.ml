(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated machine and prints measured
   slowdowns next to the paper's reported values.

   Usage:
     dune exec bench/main.exe                  # everything, paper scale
     dune exec bench/main.exe -- fig12 fig13   # selected experiments
     dune exec bench/main.exe -- --scale 0.2   # quick pass
     dune exec bench/main.exe -- --full-wordcount  # 1M/2M-word inputs
     dune exec bench/main.exe -- --json out.json fig12  # + JSON snapshot
     dune exec bench/main.exe -- check BENCH_seed.json  # regression check
     dune exec bench/main.exe -- bechamel      # host-time micro-benchmarks
     dune exec bench/main.exe -- faultsim      # crash-point recovery sweep *)

open Nvmpi_experiments

let usage_text =
  "usage: main.exe [--scale F] [--seed N] [--full-wordcount] [--json FILE] \
   [experiment ...]\n\
  \       main.exe check BASELINE.json [--tolerance F]\n\
   experiments: fig12 payload table1 fig13 fig14 regions fig15 breakdown \
   ablations bechamel faultsim all\n\
   check re-runs the experiments recorded in BASELINE.json with its own \
   parameters\n\
   and fails on per-cell cycle deviations beyond the tolerance (default \
   0.10)."

let usage () =
  print_endline usage_text;
  exit 1

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "main.exe: %s\n" msg;
      prerr_endline usage_text;
      exit 1)
    fmt

(* Bechamel micro-benchmarks: host-side cost of one simulated pointer
   load under each representation (one Test.make per representation),
   and of one traversal per structure. These measure the simulator
   itself, complementing the cycle-model numbers above — which is why
   they are not part of the Suite and never appear in JSON snapshots:
   host nanoseconds are not deterministic. *)
let bechamel_suite () =
  let open Bechamel in
  let module Machine = Core.Machine in
  let module Region = Core.Region in
  let load_test kind =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
    if kind = Core.Repr.Based then Machine.set_based_region m (Region.rid r);
    let (module P) = Core.Repr.m kind in
    let holder = Region.alloc r P.slot_size in
    let target = Region.alloc r 64 in
    P.store m ~holder target;
    Test.make ~name:(Core.Repr.to_string kind)
      (Staged.stage (fun () -> ignore (P.load m ~holder)))
  in
  let traverse_test structure =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 24)) in
    let node =
      Nvmpi_structures.Node.make m
        ~mode:(Nvmpi_structures.Node.Plain [| r |])
        ~payload:32
    in
    let inst = Instance.create structure Core.Repr.Riv node ~name:"bench" in
    Array.iter (fun k -> inst.Instance.insert k) (Workload.keys ~n:1000 ~seed:3);
    Test.make
      ~name:("traverse-" ^ Instance.structure_name structure)
      (Staged.stage (fun () -> ignore (inst.Instance.traverse ())))
  in
  let tests =
    [
      Test.make_grouped ~name:"pointer-load" ~fmt:"%s/%s"
        (List.map load_test Core.Repr.all);
      Test.make_grouped ~name:"riv-traversal" ~fmt:"%s/%s"
        (List.map traverse_test Instance.structures);
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  Printf.printf "\n== Bechamel micro-benchmarks (host ns per simulated op) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) analyzed [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        (List.sort compare rows))
    tests;
  print_newline ()

(* Crash-consistency sweep: like bechamel, not part of the Suite — its
   result is a pass/fail verdict over crash points, not a cycle table,
   so it never enters (or perturbs) BENCH JSON snapshots. *)
let faultsim_suite ~seed =
  let open Nvmpi_faultsim in
  let seed = Option.value seed ~default:42 in
  let metrics = Nvmpi_obs.Metrics.create () in
  let report =
    Sweep.run ~metrics ~seed (Scenario.defaults () @ Scenario.selftests ())
  in
  Format.printf "%a" Sweep.pp_report report;
  if not (Sweep.ok report) then exit 1

(* Run mode ---------------------------------------------------------- *)

let run_main args =
  let scale = ref 1.0 in
  let seed = ref None in
  let full_wordcount = ref false in
  let json_path = ref None in
  let picked = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := f
        | _ -> fail "--scale needs a positive number, got %S" v);
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> seed := Some s
        | None -> fail "--seed needs an integer, got %S" v);
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | [ (("--scale" | "--seed" | "--json") as flag) ] ->
        fail "option %s needs a value" flag
    | "--full-wordcount" :: rest ->
        full_wordcount := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        fail "unknown option %S" flag
    | name :: rest ->
        picked := name :: !picked;
        parse rest
  in
  parse args;
  let picked = if !picked = [] then [ "all" ] else List.rev !picked in
  (* Validate every name before running anything: a typo should not
     surface only after minutes of earlier experiments. *)
  List.iter
    (fun name ->
      if not (Suite.mem name || name = "bechamel" || name = "faultsim"
              || name = "all")
      then fail "unknown experiment %S" name)
    picked;
  let suite_names =
    List.concat_map
      (fun name ->
        if name = "all" then Suite.names
        else if name = "bechamel" || name = "faultsim" then []
        else [ name ])
      picked
  in
  let want_bechamel = List.exists (fun n -> n = "bechamel" || n = "all") picked in
  let want_faultsim = List.exists (fun n -> n = "faultsim" || n = "all") picked in
  let params =
    {
      Suite.scale = !scale;
      seed = !seed;
      wordcount_full = !full_wordcount;
    }
  in
  let results =
    List.map
      (fun name ->
        let r = Suite.run params name in
        List.iter Table.print r.Suite.tables;
        r)
      suite_names
  in
  if want_bechamel then bechamel_suite ();
  if want_faultsim then faultsim_suite ~seed:!seed;
  match !json_path with
  | None -> ()
  | Some path ->
      Nvmpi_obs.Json.to_file path (Suite.snapshot_of params results);
      Printf.printf "wrote %s (%d experiment(s), schema_version %d)\n" path
        (List.length results) Suite.schema_version

(* Check mode -------------------------------------------------------- *)

let check_main args =
  let tolerance = ref 0.10 in
  let baseline_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> tolerance := f
        | _ -> fail "--tolerance needs a non-negative number, got %S" v);
        parse rest
    | [ "--tolerance" ] -> fail "option --tolerance needs a value"
    | ("--help" | "-h") :: _ -> usage ()
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        fail "unknown option %S" flag
    | path :: rest ->
        (match !baseline_path with
        | None -> baseline_path := Some path
        | Some _ -> fail "check takes a single baseline file");
        parse rest
  in
  parse args;
  let path =
    match !baseline_path with
    | Some p -> p
    | None -> fail "check needs a baseline file"
  in
  let baseline =
    match Nvmpi_obs.Json.of_file path with
    | Ok doc -> doc
    | Error msg -> fail "cannot read %s: %s" path msg
  in
  let ( let* ) r f =
    match r with Ok v -> f v | Error msg -> fail "%s: %s" path msg
  in
  let* params = Suite.params_of_json baseline in
  let* names = Suite.names_of_json baseline in
  List.iter
    (fun name ->
      if not (Suite.mem name) then
        fail "%s records unknown experiment %S" path name)
    names;
  Printf.printf
    "check: re-running %s (scale %g, seed %s%s) against %s, tolerance %g%%\n%!"
    (String.concat " " names) params.Suite.scale
    (match params.Suite.seed with Some s -> string_of_int s | None -> "default")
    (if params.Suite.wordcount_full then ", full wordcount" else "")
    path (100.0 *. !tolerance);
  let fresh = Suite.snapshot_of params (Suite.run_all params names) in
  let* compared, mismatches =
    Suite.check ~tolerance:!tolerance ~baseline ~fresh ()
  in
  if mismatches = [] then begin
    Printf.printf "check: PASS (%d cells within %g%% of %s)\n" compared
      (100.0 *. !tolerance) path;
    exit 0
  end
  else begin
    List.iter (fun m -> Printf.printf "  %s\n" m) mismatches;
    Printf.printf "check: FAIL (%d of %d cells deviate from %s)\n"
      (List.length mismatches) compared path;
    exit 1
  end

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "check" :: rest -> check_main rest
  | args -> run_main args
