(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated machine and prints measured
   slowdowns next to the paper's reported values.

   Usage:
     dune exec bench/main.exe                  # everything, paper scale
     dune exec bench/main.exe -- fig12 fig13   # selected experiments
     dune exec bench/main.exe -- --scale 0.2   # quick pass
     dune exec bench/main.exe -- --full-wordcount  # 1M/2M-word inputs
     dune exec bench/main.exe -- --json out.json fig12  # + JSON snapshot
     dune exec bench/main.exe -- check BENCH_seed.json  # regression check
     dune exec bench/main.exe -- bechamel      # host-time micro-benchmarks
     dune exec bench/main.exe -- faultsim      # crash-point recovery sweep
     dune exec bench/main.exe -- conform       # conformance smoke run
     dune exec bench/main.exe -- server        # multi-tenant server smoke run

   The last four are "extra" experiments: they live outside the Suite
   (their results are verdicts/host-times/separate JSON kinds, not cycle
   tables), so BENCH JSON snapshots never see them. They register in the
   [extras] table below; adding one more is a single table entry. *)

open Nvmpi_experiments

let usage_text =
  "usage: main.exe [--scale F] [--seed N] [--full-wordcount] [--json FILE] \
   [--jobs N] [--wall] [--engine staged|dispatch] [--durability \
   eager|traverse|snapshot|snapshot-page] [experiment ...]\n\
  \       main.exe check BASELINE.json [--tolerance F] [--jobs N] [--engine \
   staged|dispatch] [--durability eager|traverse|snapshot|snapshot-page]\n\
  \       main.exe perf [--ops N]\n\
   experiments: fig12 payload table1 fig13 fig14 regions fig15 breakdown \
   ablations churn durset snapshot bechamel faultsim conform server all\n\
   check re-runs the experiments recorded in BASELINE.json with its own \
   parameters\n\
   and fails on per-cell cycle deviations beyond the tolerance (default \
   0.10);\n\
   --jobs runs independent work items on N domains (identical results, \
   wall-clock only);\n\
   --wall adds a host wall-clock section (with per-representation deref \
   ns) to the JSON snapshot;\n\
   --engine selects the staged (pre-instantiated, default) or dispatch \
   (first-class-module) call graph;\n\
   --durability selects the persistence discipline: eager (legacy, \
   default), traverse (link-and-persist, docs/DURABLE.md) or \
   snapshot/snapshot-page (failure-atomic sync epochs, docs/SNAPSHOT.md);\n\
   perf prints a host-nanosecond profile of the simulator's access hot \
   path."

let usage () =
  print_endline usage_text;
  exit 1

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "main.exe: %s\n" msg;
      prerr_endline usage_text;
      exit 1)
    fmt

(* Bechamel micro-benchmarks: host-side cost of one simulated pointer
   load under each representation (one Test.make per representation),
   and of one traversal per structure. These measure the simulator
   itself, complementing the cycle-model numbers above — which is why
   they are not part of the Suite and never appear in JSON snapshots:
   host nanoseconds are not deterministic. *)
let bechamel_suite () =
  let open Bechamel in
  let module Machine = Core.Machine in
  let module Region = Core.Region in
  let load_test kind =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
    if kind = Core.Repr.Based then Machine.set_based_region m (Region.rid r);
    let (module P) = Core.Repr.m kind in
    let holder = Region.alloc r P.slot_size in
    let target = Region.alloc r 64 in
    P.store m ~holder target;
    Test.make ~name:(Core.Repr.to_string kind)
      (Staged.stage (fun () -> ignore (P.load m ~holder)))
  in
  let traverse_test structure =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 24)) in
    let node =
      Nvmpi_structures.Node.make m
        ~mode:(Nvmpi_structures.Node.Plain [| r |])
        ~payload:32
    in
    let inst = Instance.create structure Core.Repr.Riv node ~name:"bench" in
    Array.iter (fun k -> inst.Instance.insert k) (Workload.keys ~n:1000 ~seed:3);
    Test.make
      ~name:("traverse-" ^ Instance.structure_name structure)
      (Staged.stage (fun () -> ignore (inst.Instance.traverse ())))
  in
  (* One full dereference — translate the stored pointer, then read 8
     bytes through the resulting absolute address. Unlike pointer-load
     this includes the data access the translation exists to serve, so
     it is the host-side cost of the simulator's per-deref fast path
     (TLB'd page lookup + single-observer dispatch + L1 hit). Measured
     under both engines for every representation: [staged] runs the
     fused [Core.Engine.deref] (per-kind direct dispatch into the
     specialized path); [dispatch] unpacks the first-class module and
     chains the generic [Memsim.load64] — the historical call graph. *)
  let deref_test ~staged kind =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
    if kind = Core.Repr.Based then Machine.set_based_region m (Region.rid r);
    let holder = Region.alloc r (Core.Repr.slot_size kind) in
    let target = Region.alloc r 64 in
    Core.Engine.store kind m ~holder target;
    let name = Core.Repr.to_string kind in
    if staged then
      Test.make ~name
        (Staged.stage (fun () -> ignore (Core.Engine.deref kind m ~holder)))
    else
      let (module P) = Core.Repr.m kind in
      let mem = m.Machine.mem in
      Test.make ~name
        (Staged.stage (fun () ->
             ignore (Nvmpi_memsim.Memsim.load64 mem (P.load m ~holder))))
  in
  let tests =
    [
      Test.make_grouped ~name:"pointer-load" ~fmt:"%s/%s"
        (List.map load_test Core.Repr.all);
      Test.make_grouped ~name:"single-deref-staged" ~fmt:"%s/%s"
        (List.map (deref_test ~staged:true) Core.Repr.all);
      Test.make_grouped ~name:"single-deref-dispatch" ~fmt:"%s/%s"
        (List.map (deref_test ~staged:false) Core.Repr.all);
      Test.make_grouped ~name:"riv-traversal" ~fmt:"%s/%s"
        (List.map traverse_test Instance.structures);
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  Printf.printf "\n== Bechamel micro-benchmarks (host ns per simulated op) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) analyzed [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        (List.sort compare rows))
    tests;
  print_newline ()

(* Crash-consistency sweep: like bechamel, not part of the Suite — its
   result is a pass/fail verdict over crash points, not a cycle table,
   so it never enters (or perturbs) BENCH JSON snapshots. *)
let faultsim_suite ~jobs ~seed =
  let open Nvmpi_faultsim in
  let seed = Option.value seed ~default:42 in
  let metrics = Nvmpi_obs.Metrics.create () in
  let report =
    Sweep.run ~jobs ~metrics ~seed (Scenario.defaults () @ Scenario.selftests ())
  in
  Format.printf "%a" Sweep.pp_report report;
  if not (Sweep.ok report) then exit 1

(* Conformance smoke run: a short differential sweep of every pointer
   representation against the reference model (lib/conform). Like
   bechamel and faultsim it is not part of the Suite — its result is a
   divergence count, not a cycle table, so BENCH JSON snapshots never
   see it. The full-size sweep lives in `nvmpi fuzz` and CI. *)
let conform_suite ~jobs ~seed =
  let module Engine = Nvmpi_conform.Engine in
  let seed = Option.value seed ~default:42 in
  let traces = 30 in
  let report = Engine.run ~jobs ~seed ~traces () in
  Printf.printf
    "conform: %d traces (seed %d, %d with remaps), %d divergence(s)\n" traces
    seed report.Engine.traces_with_remap
    (List.length report.Engine.failures);
  List.iter
    (fun f ->
      Printf.printf "  trace %d: %s\n    repro: %s\n" f.Engine.f_trace
        f.Engine.f_detail
        (Nvmpi_conform.Trace.to_string f.Engine.f_shrunk))
    report.Engine.failures;
  if report.Engine.failures <> [] then exit 1

(* Multi-tenant server smoke run: a small zipfian workload with enough
   tenants and a tight residency cap to force map/unmap churn on every
   representation. The full-size knobbed run lives in `nvmpi serve`
   (see docs/SERVER.md). *)
let server_suite ~jobs ~seed =
  let open Nvmpi_server in
  let config =
    { Server.default with
      Server.tenants = 300;
      ops = 1500;
      resident = 24;
      seed = Option.value seed ~default:Server.default.Server.seed }
  in
  Server.print_report (Server.run ~jobs config)

(* The extra experiments: everything runnable from this harness that is
   NOT a Suite cycle-table experiment. Run in table order when selected
   (or under "all"), after the Suite experiments. *)
let extras =
  [
    ("bechamel", fun ~jobs:_ ~seed:_ -> bechamel_suite ());
    ("faultsim", fun ~jobs ~seed -> faultsim_suite ~jobs ~seed);
    ("conform", fun ~jobs ~seed -> conform_suite ~jobs ~seed);
    ("server", fun ~jobs ~seed -> server_suite ~jobs ~seed);
  ]

(* Perf mode ---------------------------------------------------------- *)

(* A host-nanosecond profile of the simulator's access hot path: raw
   loads/stores with no observers (the Memsim fast path alone), the same
   accesses with the timing model attached (the common configuration for
   every experiment), and the full faultsim pipeline with an armed
   tracker. All numbers are host wall-clock — nothing here reads or
   perturbs simulated cycles. *)
let perf_main args =
  let module Memsim = Nvmpi_memsim.Memsim in
  let module Vaddr = Nvmpi_addr.Kinds.Vaddr in
  let module Wall = Nvmpi_parsweep.Wall in
  let ops = ref 1_000_000 in
  let rec parse = function
    | [] -> ()
    | "--ops" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> ops := n
        | _ -> fail "--ops needs a positive integer, got %S" v);
        parse rest
    | [ "--ops" ] -> fail "option --ops needs a value"
    | ("--help" | "-h") :: _ -> usage ()
    | flag :: _ -> fail "perf: unknown argument %S" flag
  in
  parse args;
  let n = !ops in
  let measure name f =
    f (n / 100);
    (* warm-up: materialize pages, settle caches *)
    let (), ns = Wall.time (fun () -> f n) in
    Printf.printf "  %-44s %7.1f ns/op\n%!" name (float_of_int ns /. float_of_int n)
  in
  let base = 0x100000 in
  let page = 4096 in
  let fresh_mem () =
    let mem = Memsim.create () in
    Memsim.map mem ~addr:(Vaddr.v base) ~size:(4 * page);
    mem
  in
  (* Sequential loads inside one page: every access hits the one-entry
     page TLB. The 0x7f mask keeps 128 slots of 8 bytes in play. *)
  let seq_addr i = Vaddr.v (base + (i land 0x7f) * 8) in
  (* Alternating pages: every access misses the TLB and pays the
     Hashtbl lookup. *)
  let alt_addr i = Vaddr.v (base + (i land 1) * page) in
  Printf.printf "== simulator hot-path profile (%d ops per row, host ns) ==\n" n;
  let mem = fresh_mem () in
  measure "load64, no observers, same page (TLB hit)" (fun k ->
      for i = 0 to k - 1 do
        ignore (Memsim.load64 mem (seq_addr i))
      done);
  measure "load64, no observers, alternating pages" (fun k ->
      for i = 0 to k - 1 do
        ignore (Memsim.load64 mem (alt_addr i))
      done);
  measure "store64, no observers, same page" (fun k ->
      for i = 0 to k - 1 do
        Memsim.store64 mem (seq_addr i) i
      done);
  let mem_t = fresh_mem () in
  let clock = Nvmpi_cachesim.Clock.create () in
  let timing =
    Nvmpi_cachesim.Timing.create ~clock ~is_nvm:(fun _ -> false) ()
  in
  Nvmpi_cachesim.Timing.attach timing mem_t;
  measure "load64, timing attached, same page (L1 hit)" (fun k ->
      for i = 0 to k - 1 do
        ignore (Memsim.load64 mem_t (seq_addr i))
      done);
  measure "store64, timing attached, same page" (fun k ->
      for i = 0 to k - 1 do
        Memsim.store64 mem_t (seq_addr i) i
      done);
  let module Machine = Core.Machine in
  let module Region = Core.Region in
  let store = Core.Store.create () in
  let m = Machine.create ~seed:1 ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
  let buf = Region.alloc r 1024 in
  let tracker = Nvmpi_faultsim.Tracker.attach m in
  Nvmpi_faultsim.Tracker.arm tracker;
  measure "store64, machine + armed tracker" (fun k ->
      for i = 0 to k - 1 do
        Memsim.store64 m.Machine.mem (Vaddr.add buf ((i land 0x7f) * 8)) i
      done);
  Printf.printf
    "  (tracker rows grow the event log; re-run perf rather than \
     comparing across --ops values)\n"

(* Per-representation single-dereference cost in host nanoseconds,
   measured with plain deterministic loops under the active engine.
   This backs the ["deref_ns_per_op"] object of the --wall JSON section:
   unlike the bechamel estimates (sampling-based, and implausibly
   inflated on some virtualized hosts), a fixed-count loop over the
   fused path divides two monotonic-clock readings — crude, but honest
   and reproducible enough to track the staged engine's regression
   budget per representation. *)
let deref_ns_per_op () =
  let module Machine = Core.Machine in
  let module Region = Core.Region in
  let module Wall = Nvmpi_parsweep.Wall in
  let ops = 2_000_000 in
  List.map
    (fun kind ->
      let store = Core.Store.create () in
      let m = Machine.create ~seed:1 ~store () in
      let r =
        Machine.open_region m (Machine.create_region m ~size:(1 lsl 20))
      in
      if kind = Core.Repr.Based then
        Machine.set_based_region m (Region.rid r);
      let holder = Region.alloc r (Core.Repr.slot_size kind) in
      let target = Region.alloc r 64 in
      Core.Engine.store kind m ~holder target;
      let loop k =
        for _ = 1 to k do
          ignore (Core.Engine.deref kind m ~holder)
        done
      in
      loop (ops / 10);
      let (), ns = Wall.time (fun () -> loop ops) in
      (Core.Repr.to_string kind, float_of_int ns /. float_of_int ops))
    Core.Repr.all

(* Run mode ---------------------------------------------------------- *)

let run_main args =
  let scale = ref 1.0 in
  let seed = ref None in
  let full_wordcount = ref false in
  let json_path = ref None in
  let jobs = ref 1 in
  let wall = ref false in
  let picked = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := f
        | _ -> fail "--scale needs a positive number, got %S" v);
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> seed := Some s
        | None -> fail "--seed needs an integer, got %S" v);
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some j when j >= 1 -> jobs := j
        | _ -> fail "--jobs needs a positive integer, got %S" v);
        parse rest
    | [ (("--scale" | "--seed" | "--json" | "--jobs") as flag) ] ->
        fail "option %s needs a value" flag
    | "--wall" :: rest ->
        wall := true;
        parse rest
    | "--full-wordcount" :: rest ->
        full_wordcount := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        fail "unknown option %S" flag
    | name :: rest ->
        picked := name :: !picked;
        parse rest
  in
  parse args;
  let picked = if !picked = [] then [ "all" ] else List.rev !picked in
  (* Validate every name before running anything: a typo should not
     surface only after minutes of earlier experiments. *)
  List.iter
    (fun name ->
      if not (Suite.mem name || List.mem_assoc name extras || name = "all")
      then fail "unknown experiment %S" name)
    picked;
  let suite_names =
    List.concat_map
      (fun name ->
        if name = "all" then Suite.names
        else if List.mem_assoc name extras then []
        else [ name ])
      picked
  in
  let wanted_extras =
    let want name = List.exists (fun n -> n = name || n = "all") picked in
    List.filter (fun (name, _) -> want name) extras
  in
  let params =
    {
      Suite.scale = !scale;
      seed = !seed;
      wordcount_full = !full_wordcount;
    }
  in
  let results =
    if !jobs > 1 then begin
      (* Parallel: run everything first, then print in request order. *)
      let results = Suite.run_all ~jobs:!jobs params suite_names in
      List.iter
        (fun r -> List.iter Table.print r.Suite.tables)
        results;
      results
    end
    else
      List.map
        (fun name ->
          let r = Suite.run params name in
          List.iter Table.print r.Suite.tables;
          r)
        suite_names
  in
  List.iter (fun (_, run) -> run ~jobs:!jobs ~seed:!seed) wanted_extras;
  match !json_path with
  | None -> ()
  | Some path ->
      let deref_ns = if !wall then deref_ns_per_op () else [] in
      Nvmpi_obs.Json.to_file path
        (Suite.snapshot_of ~wall:!wall ~deref_ns params results);
      Printf.printf "wrote %s (%d experiment(s), schema_version %d)\n" path
        (List.length results) Suite.schema_version

(* Check mode -------------------------------------------------------- *)

let check_main args =
  let tolerance = ref 0.10 in
  let jobs = ref 1 in
  let baseline_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> tolerance := f
        | _ -> fail "--tolerance needs a non-negative number, got %S" v);
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some j when j >= 1 -> jobs := j
        | _ -> fail "--jobs needs a positive integer, got %S" v);
        parse rest
    | [ (("--tolerance" | "--jobs") as flag) ] ->
        fail "option %s needs a value" flag
    | ("--help" | "-h") :: _ -> usage ()
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        fail "unknown option %S" flag
    | path :: rest ->
        (match !baseline_path with
        | None -> baseline_path := Some path
        | Some _ -> fail "check takes a single baseline file");
        parse rest
  in
  parse args;
  let path =
    match !baseline_path with
    | Some p -> p
    | None -> fail "check needs a baseline file"
  in
  let baseline =
    match Nvmpi_obs.Json.of_file path with
    | Ok doc -> doc
    | Error msg -> fail "cannot read %s: %s" path msg
  in
  let ( let* ) r f =
    match r with Ok v -> f v | Error msg -> fail "%s: %s" path msg
  in
  let* params = Suite.params_of_json baseline in
  let* names = Suite.names_of_json baseline in
  List.iter
    (fun name ->
      if not (Suite.mem name) then
        fail "%s records unknown experiment %S" path name)
    names;
  Printf.printf
    "check: re-running %s (scale %g, seed %s%s) against %s, tolerance %g%%\n%!"
    (String.concat " " names) params.Suite.scale
    (match params.Suite.seed with Some s -> string_of_int s | None -> "default")
    (if params.Suite.wordcount_full then ", full wordcount" else "")
    path (100.0 *. !tolerance);
  let fresh =
    Suite.snapshot_of params (Suite.run_all ~jobs:!jobs params names)
  in
  let* compared, mismatches =
    Suite.check ~tolerance:!tolerance ~baseline ~fresh ()
  in
  if mismatches = [] then begin
    Printf.printf "check: PASS (%d cells within %g%% of %s)\n" compared
      (100.0 *. !tolerance) path;
    exit 0
  end
  else begin
    List.iter (fun m -> Printf.printf "  %s\n" m) mismatches;
    Printf.printf "check: FAIL (%d of %d cells deviate from %s)\n"
      (List.length mismatches) compared path;
    exit 1
  end

let () =
  (* --engine is process-global: it selects the instance-construction
     call graph for the whole run (set here, before any domain spawns),
     so it is stripped ahead of mode dispatch and is accepted by run and
     check alike. Recorded parameters and snapshot schemas do not
     mention it — staged and dispatch runs stay byte-comparable. *)
  let rec strip_engine acc = function
    | [] -> List.rev acc
    | "--engine" :: v :: rest ->
        (match Core.Engine.mode_of_string v with
        | Some m ->
            Core.Engine.set_default_mode m;
            strip_engine acc rest
        | None -> fail "--engine needs staged or dispatch, got %S" v)
    | [ "--engine" ] -> fail "option --engine needs a value"
    | "--durability" :: v :: rest -> (
        match v with
        | "snapshot" | "snapshot-page" ->
            (* Failure-atomic sync epochs (docs/SNAPSHOT.md): structure
               code runs flush-free, durability moves to Snapshot.sync. *)
            Nvmpi_structures.Durable.set_default_mode
              Nvmpi_structures.Durable.Eager;
            Nvmpi_snapshot.Snapshot.set_default
              (Some
                 (if v = "snapshot" then Nvmpi_snapshot.Snapshot.Line
                  else Nvmpi_snapshot.Snapshot.Page));
            strip_engine acc rest
        | _ -> (
            match Nvmpi_structures.Durable.mode_of_string v with
            | Some m ->
                Nvmpi_structures.Durable.set_default_mode m;
                Nvmpi_snapshot.Snapshot.set_default None;
                strip_engine acc rest
            | None ->
                fail
                  "--durability needs eager, traverse, snapshot or \
                   snapshot-page, got %S"
                  v))
    | [ "--durability" ] -> fail "option --durability needs a value"
    | a :: rest -> strip_engine (a :: acc) rest
  in
  match strip_engine [] (List.tl (Array.to_list Sys.argv)) with
  | "check" :: rest -> check_main rest
  | "perf" :: rest -> perf_main rest
  | args -> run_main args
