(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated machine and prints measured
   slowdowns next to the paper's reported values.

   Usage:
     dune exec bench/main.exe                  # everything, paper scale
     dune exec bench/main.exe -- fig12 fig13   # selected experiments
     dune exec bench/main.exe -- --scale 0.2   # quick pass
     dune exec bench/main.exe -- --full-wordcount  # 1M/2M-word inputs
     dune exec bench/main.exe -- bechamel      # host-time micro-benchmarks *)

open Nvmpi_experiments

let usage () =
  print_endline
    "usage: main.exe [--scale F] [--full-wordcount] [experiment ...]\n\
     experiments: fig12 payload table1 fig13 fig14 regions fig15 breakdown \
     ablations bechamel all";
  exit 1

(* Bechamel micro-benchmarks: host-side cost of one simulated pointer
   load under each representation (one Test.make per representation),
   and of one traversal per structure. These measure the simulator
   itself, complementing the cycle-model numbers above. *)
let bechamel_suite () =
  let open Bechamel in
  let module Machine = Core.Machine in
  let module Region = Core.Region in
  let load_test kind =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 20)) in
    if kind = Core.Repr.Based then Machine.set_based_region m (Region.rid r);
    let (module P) = Core.Repr.m kind in
    let holder = Region.alloc r P.slot_size in
    let target = Region.alloc r 64 in
    P.store m ~holder target;
    Test.make ~name:(Core.Repr.to_string kind)
      (Staged.stage (fun () -> ignore (P.load m ~holder)))
  in
  let traverse_test structure =
    let store = Core.Store.create () in
    let m = Machine.create ~seed:1 ~store () in
    let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 24)) in
    let node =
      Nvmpi_structures.Node.make m
        ~mode:(Nvmpi_structures.Node.Plain [| r |])
        ~payload:32
    in
    let inst = Instance.create structure Core.Repr.Riv node ~name:"bench" in
    Array.iter (fun k -> inst.Instance.insert k) (Workload.keys ~n:1000 ~seed:3);
    Test.make
      ~name:("traverse-" ^ Instance.structure_name structure)
      (Staged.stage (fun () -> ignore (inst.Instance.traverse ())))
  in
  let tests =
    [
      Test.make_grouped ~name:"pointer-load" ~fmt:"%s/%s"
        (List.map load_test Core.Repr.all);
      Test.make_grouped ~name:"riv-traversal" ~fmt:"%s/%s"
        (List.map traverse_test Instance.structures);
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  Printf.printf "\n== Bechamel micro-benchmarks (host ns per simulated op) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) analyzed [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        (List.sort compare rows))
    tests;
  print_newline ()

let () =
  let scale = ref 1.0 in
  let full_wordcount = ref false in
  let picked = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := f
        | _ -> usage ());
        parse rest
    | "--full-wordcount" :: rest ->
        full_wordcount := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | name :: rest ->
        picked := name :: !picked;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let picked = if !picked = [] then [ "all" ] else List.rev !picked in
  let scale = !scale in
  let run_one = function
    | "fig12" -> Table.print (Figures.fig12 ~scale ())
    | "payload" -> Table.print (Figures.payload_sweep ~scale ())
    | "table1" -> Table.print (Figures.table1 ~scale ())
    | "fig13" -> Table.print (Figures.fig13 ~scale ())
    | "fig14" -> Table.print (Figures.fig14 ~scale ())
    | "regions" -> Table.print (Figures.regions_sweep ~scale ())
    | "fig15" -> Table.print (Figures.fig15 ~scale ~full:!full_wordcount ())
    | "breakdown" -> Table.print (Figures.breakdown ~scale ())
    | "ablations" -> List.iter Table.print (Ablations.all ~scale ())
    | "bechamel" -> bechamel_suite ()
    | "all" ->
        List.iter Table.print
          (Figures.all ~scale ~wordcount_full:!full_wordcount ());
        List.iter Table.print (Ablations.all ~scale ());
        bechamel_suite ()
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        usage ()
  in
  List.iter run_one picked
