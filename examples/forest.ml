(* The forest scenario from Section 4.4: "Consider a forest consisting
   of some trees. Each tree could be put into a region. Cross-region
   pointers are needed only for the few connections between trees. All
   other pointers would be the default persistentI pointers."

   Each tree is a BST of off-holder pointers in its own NVRegion; a
   directory array of RIV pointers links the trees together. The whole
   forest is rebuilt correctly after every region moves.

   Run with:  dune exec examples/forest.exe *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Node = Nvmpi_structures.Node
module Bst = Nvmpi_structures.Bstree.Make (Core.Off_holder)
module Riv = Core.Riv
module Vaddr = Core.Kinds.Vaddr

let trees = 5
let keys_per_tree = 200

let build store =
  let m = Machine.create ~seed:11 ~store () in
  (* One region per tree + a directory region. *)
  let dir_rid = Machine.create_region m ~size:65536 in
  let dir = Machine.open_region m dir_rid in
  let slots = Region.alloc dir (trees * 8) in
  Region.set_root dir "forest" slots;
  for i = 0 to trees - 1 do
    let rid = Machine.create_region m ~size:(1 lsl 20) in
    let r = Machine.open_region m rid in
    let node = Node.make m ~mode:(Node.Plain [| r |]) ~payload:16 in
    let t = Bst.create node ~name:"tree" in
    let keys = Nvmpi_experiments.Workload.keys ~n:keys_per_tree ~seed:i in
    Array.iter (fun k -> ignore (Bst.insert t ~key:k)) keys;
    (* The only cross-region pointer per tree: directory -> tree meta. *)
    let meta = Option.get (Region.root r "tree") in
    Riv.store m ~holder:(Vaddr.add slots (i * 8)) meta
  done;
  Printf.printf "writer: built %d trees of %d keys, one region each\n" trees
    keys_per_tree;
  Machine.close_all m;
  dir_rid

let read store dir_rid =
  let m = Machine.create ~seed:12 ~store () in
  let dir = Machine.open_region m dir_rid in
  (* Trees are opened lazily through the directory's RIV pointers: the
     RIV value names the region by ID, so we can open before following. *)
  let slots = Option.get (Region.root dir "forest") in
  let total = ref 0 in
  for i = 0 to trees - 1 do
    let holder = Vaddr.add slots (i * 8) in
    (* Peek at the packed value to learn the region ID, open it, then
       resolve the pointer. *)
    let packed = Core.Memsim.load64 m.Machine.mem holder in
    let rid = Core.Layout.riv_rid m.Machine.layout packed in
    let r = Machine.open_region m (Core.Kinds.Rid.v rid) in
    let node = Node.make m ~mode:(Node.Plain [| r |]) ~payload:16 in
    let t = Bst.attach node ~name:"tree" in
    let meta = Riv.load m ~holder in
    assert (Region.contains r meta);
    let n, _ = Bst.traverse t in
    Printf.printf "  tree %d: region %d at 0x%x, %d keys\n" i rid
      (Region.base r :> int)
      n;
    total := !total + n
  done;
  Printf.printf "reader: forest total %d keys\n" !total;
  assert (!total = trees * keys_per_tree)

let () =
  let store = Store.create () in
  let dir_rid = build store in
  read store dir_rid;
  print_endline
    "intra-tree pointers stayed off-holder (zero overhead); only the\n\
     directory needed cross-region RIV pointers."
