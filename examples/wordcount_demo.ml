(* The paper's wordcount application (Section 6.3, Figure 15): count
   word frequencies of a text stream in a BST that lives on NVM, under
   several pointer representations, and compare their simulated
   execution times.

   Run with:  dune exec examples/wordcount_demo.exe *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Node = Nvmpi_structures.Node
module Text_gen = Nvmpi_apps.Text_gen
module Wordcount = Nvmpi_apps.Wordcount
module Clock = Core.Clock

let nwords = 50_000
let vocab = 5_000

let run_one repr stream =
  let store = Store.create () in
  let m = Machine.create ~seed:3 ~store () in
  let r = Machine.open_region m (Machine.create_region m ~size:(1 lsl 22)) in
  if repr = Core.Repr.Based then Machine.set_based_region m (Region.rid r);
  let node = Node.make m ~mode:(Node.Plain [| r |]) ~payload:32 in
  let result, cycles =
    Clock.delta m.Machine.clock (fun () ->
        Wordcount.count_words node ~repr ~name:"wc" stream)
  in
  (result, cycles, node)

let () =
  Printf.printf "wordcount: %d words, %d-word Zipf vocabulary\n\n" nwords vocab;
  let stream = Text_gen.words ~n:nwords ~vocab ~seed:17 in
  let reference = Text_gen.reference_counts stream in
  let baseline = ref 0 in
  List.iter
    (fun repr ->
      let result, cycles, node = run_one repr stream in
      if repr = Core.Repr.Normal then baseline := cycles;
      (* Validate against a host-side count: same distinct words and
         identical per-word counts. *)
      assert (result.Wordcount.distinct = List.length reference);
      List.iteri
        (fun i (w, c) ->
          if i < 5 then
            assert (Wordcount.lookup node ~repr ~name:"wc" w = c))
        reference;
      Printf.printf "  %-12s %10.3f ms   (%.2fx normal)\n"
        (Core.Repr.to_string repr)
        (Clock.seconds_of_cycles cycles *. 1000.0)
        (float_of_int cycles /. float_of_int !baseline))
    [ Core.Repr.Normal; Core.Repr.Based; Core.Repr.Off_holder; Core.Repr.Riv;
      Core.Repr.Fat_cached; Core.Repr.Fat ];
  let _, _, node = run_one Core.Repr.Riv stream in
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a)
      (Wordcount.counts node ~repr:Core.Repr.Riv ~name:"wc")
  in
  print_endline "\n  most frequent words:";
  List.iteri
    (fun i (w, c) -> if i < 5 then Printf.printf "    %-16s %d\n" w c)
    top
