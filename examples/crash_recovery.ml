(* Crash consistency and position independence interact: the paper
   notes that swizzled structures are position-DEPENDENT between the
   swizzle and unswizzle passes, so a crash in that window corrupts
   them — while off-holder/RIV structures plus an undo-logged object
   store recover cleanly.

   This example drives both claims through the fault-injection harness
   (lib/faultsim, see docs/FAULTSIM.md): a durability tracker records
   the persistence event log (stores, clwb flushes, fences), crash
   points materialize only the provably durable bytes, and recovery
   reopens that image at a freshly randomized segment.

   Run with:  dune exec examples/crash_recovery.exe *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim
module Metrics = Core.Metrics
module Objstore = Nvmpi_tx.Objstore
module Tx = Nvmpi_tx.Tx
open Nvmpi_faultsim

(* Part 1: an undo-logged transfer crashes mid-transaction. The tracker
   defines the crash precisely — memory reverts to durable bytes, the
   caches are lost — and recovery happens in a NEW address space, so
   rollback must also survive the remap. *)
let part1_tx_recovery () =
  print_endline "== undo-logged transaction vs power failure ==";
  let store = Store.create () in
  let m1 = Machine.create ~seed:1 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let os = Objstore.create m1 r1 () in
  let account_a = Objstore.alloc os ~size:8 () in
  let account_b = Objstore.alloc os ~size:8 () in
  Memsim.store64 m1.Machine.mem account_a 1000;
  Memsim.store64 m1.Machine.mem account_b 0;
  Region.set_root r1 "a" account_a;
  Region.set_root r1 "b" account_b;
  let tracker = Tracker.attach m1 in
  Tracker.arm tracker;
  (* A transfer that never commits: power fails mid-transaction. *)
  let tx = Tx.create os in
  Tx.begin_tx tx;
  Tx.store64 tx account_a 400;
  Tx.store64 tx account_b 600;
  Printf.printf "  mid-tx (torn): a=%d b=%d, %d bytes not yet durable\n"
    (Memsim.load64 m1.Machine.mem account_a)
    (Memsim.load64 m1.Machine.mem account_b)
    (Tracker.volatile_bytes tracker);
  Tx.simulate_crash tx;
  Printf.printf "  crash: %d events logged, memory reverted to durable bytes\n"
    (Tracker.seq tracker);
  (* Next run: boot a fresh machine from the durable image. The region
     lands at a different segment; attaching rolls the undo log back. *)
  let images =
    List.map
      (fun (rid, _, _, _) ->
        let img = Tracker.crash_image tracker rid in
        (rid, Bytes.length img, img))
      (Tracker.tracked tracker)
  in
  let m2, regions = Recovery.boot ~seed:2 images in
  let r2 = List.assoc rid regions in
  Printf.printf "  region remapped: 0x%x -> 0x%x\n"
    (Region.base r1 :> int)
    (Region.base r2 :> int);
  let _os2 = Objstore.attach m2 r2 in
  let a = Option.get (Region.root r2 "a") in
  let b = Option.get (Region.root r2 "b") in
  Printf.printf "  after recovery: a=%d b=%d\n"
    (Memsim.load64 m2.Machine.mem a)
    (Memsim.load64 m2.Machine.mem b);
  assert (Memsim.load64 m2.Machine.mem a = 1000);
  assert (Memsim.load64 m2.Machine.mem b = 0);
  print_endline "  uncommitted transfer rolled back cleanly.\n"

(* Part 2: the same question asked exhaustively. The sweep injects a
   crash after EVERY persistence event of a scenario and verifies the
   recovery invariants at each point — including the swizzle scenario
   whose oracle demands detectable corruption inside the
   swizzle..unswizzle window and exact recovery outside it. *)
let part2_sweep () =
  print_endline "== crash-point sweep: every event, every invariant ==";
  let metrics = Metrics.create () in
  let scenarios =
    [
      Scenario.structure_scenario ~keys:8 Nvmpi_experiments.Instance.List
        Core.Repr.Riv;
      Scenario.structure_scenario ~keys:8 Nvmpi_experiments.Instance.Btree
        Core.Repr.Off_holder;
      Scenario.tx_cells_scenario ~txs:3 ();
      Scenario.swizzle_window_scenario ~keys:6 ();
    ]
  in
  let report = Sweep.run ~mode:Sweep.Exhaustive ~metrics ~seed:7 scenarios in
  Format.printf "%a" Sweep.pp_report report;
  assert (Sweep.ok report);
  Printf.printf
    "  (%d stores, %d flushes, %d fences observed across the runs)\n"
    (Metrics.get metrics "faultsim.events.stores")
    (Metrics.get metrics "faultsim.events.flushes")
    (Metrics.get metrics "faultsim.events.fences");
  print_endline
    "  position-independent structures recover at every crash point;\n\
     the swizzled image is corrupt exactly inside its two-pass window,\n\
     which is the paper's argument against swizzling on NVM."

let () =
  part1_tx_recovery ();
  part2_sweep ()
