(* Crash consistency and position independence interact: the paper
   notes that swizzled structures are position-DEPENDENT between the
   swizzle and unswizzle passes, so a crash in that window corrupts
   them — while off-holder/RIV structures plus an undo-logged object
   store recover cleanly.

   This example crashes a transaction halfway and shows recovery, then
   shows why crashing a swizzled structure is not recoverable.

   Run with:  dune exec examples/crash_recovery.exe *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim
module Vaddr = Core.Kinds.Vaddr
module Objstore = Nvmpi_tx.Objstore
module Tx = Nvmpi_tx.Tx

let part1_tx_recovery () =
  print_endline "== undo-logged transaction vs power failure ==";
  let store = Store.create () in
  let m1 = Machine.create ~seed:1 ~store () in
  let rid = Machine.create_region m1 ~size:(1 lsl 20) in
  let r1 = Machine.open_region m1 rid in
  let os = Objstore.create m1 r1 () in
  let account_a = Objstore.alloc os ~size:8 () in
  let account_b = Objstore.alloc os ~size:8 () in
  Memsim.store64 m1.Machine.mem account_a 1000;
  Memsim.store64 m1.Machine.mem account_b 0;
  Region.set_root r1 "a" account_a;
  Region.set_root r1 "b" account_b;
  (* A transfer that never commits: power fails mid-transaction. *)
  let tx = Tx.create os in
  Tx.begin_tx tx;
  Tx.store64 tx account_a 400;
  Tx.store64 tx account_b 600;
  Printf.printf "  mid-tx (torn): a=%d b=%d\n"
    (Memsim.load64 m1.Machine.mem account_a)
    (Memsim.load64 m1.Machine.mem account_b);
  Tx.simulate_crash tx;
  Machine.close_region m1 rid;
  (* Next run: attaching the store rolls the undo log back. *)
  let m2 = Machine.create ~seed:2 ~store () in
  let r2 = Machine.open_region m2 rid in
  let _os2 = Objstore.attach m2 r2 in
  let a = Option.get (Region.root r2 "a") in
  let b = Option.get (Region.root r2 "b") in
  Printf.printf "  after recovery: a=%d b=%d\n"
    (Memsim.load64 m2.Machine.mem a)
    (Memsim.load64 m2.Machine.mem b);
  assert (Memsim.load64 m2.Machine.mem a = 1000);
  assert (Memsim.load64 m2.Machine.mem b = 0);
  print_endline "  uncommitted transfer rolled back cleanly.\n"

let part2_swizzle_crash () =
  print_endline "== swizzled structure vs power failure ==";
  let store = Store.create () in
  let m1 = Machine.create ~seed:3 ~store () in
  let rid = Machine.create_region m1 ~size:65536 in
  let r1 = Machine.open_region m1 rid in
  let holder = Region.alloc r1 8 in
  let target = Region.alloc r1 8 in
  Memsim.store64 m1.Machine.mem target 55;
  Core.Swizzle.store_packed m1 ~holder target;
  Region.set_root r1 "holder" holder;
  (* The program swizzles for fast access... *)
  ignore (Core.Swizzle.swizzle_slot m1 ~holder);
  Printf.printf "  swizzled: slot now holds raw address 0x%x\n"
    (Memsim.load64 m1.Machine.mem holder);
  (* ...and crashes before unswizzling: the absolute address persists. *)
  Machine.close_region m1 rid;
  let m2 = Machine.create ~seed:4 ~store () in
  let r2 = Machine.open_region m2 rid in
  let holder' = Option.get (Region.root r2 "holder") in
  let stale = Memsim.load64 m2.Machine.mem holder' in
  Printf.printf "  next run: region moved to 0x%x, slot still holds 0x%x\n"
    (Region.base r2 :> int)
    stale;
  (match Memsim.load64 m2.Machine.mem (Vaddr.v stale) with
  | v -> Printf.printf "  following it reads garbage (%d != 55)\n" v
  | exception Memsim.Fault _ ->
      print_endline "  following it faults: the pointer dangles");
  print_endline
    "  swizzling leaves a position-dependent image on NVM between its\n\
     two passes, which is exactly the paper's argument against it."

let () =
  part1_tx_recovery ();
  part2_swizzle_crash ()
