(* A persistent key-value store session: put/get/delete with
   crash-consistent updates, surviving a crash, a remap and a file
   round-trip — the "key-value stores on NVM" use case the paper's
   introduction cites.

   Run with:  dune exec examples/kv_demo.exe *)

module Machine = Core.Machine
module Store = Core.Store
module Objstore = Nvmpi_tx.Objstore
module Kvstore = Nvmpi_apps.Kvstore

let repr = Core.Repr.Riv

let () =
  let store = Store.create () in
  (* Session 1: create and populate. *)
  let rid =
    let m = Machine.create ~seed:1 ~store () in
    let rid = Machine.create_region m ~size:(1 lsl 22) in
    let r = Machine.open_region m rid in
    let os = Objstore.create m r () in
    let kv = Kvstore.create os ~repr ~name:"config" () in
    Kvstore.put kv ~key:1 "alpha";
    Kvstore.put kv ~key:2 "beta";
    Kvstore.put kv ~key:3 "gamma";
    Printf.printf "session 1: stored %d entries in region %d at 0x%x\n"
      (Kvstore.size kv)
      (rid :> int)
      (Core.Region.base r :> int);
    (* Power fails in the middle of overwriting key 2... *)
    Kvstore.simulate_crash_during_put kv ~key:2 "CORRUPTED";
    print_endline "session 1: power failed mid-update of key 2";
    Machine.close_region m rid;
    rid
  in
  (* The device image travels through a file, like a real NVDIMM dump. *)
  let path = Filename.temp_file "kv" ".nvm" in
  Store.save_file store path;
  let store = Store.load_file path in
  Sys.remove path;
  (* Session 2: recovery + reads at a different mapping. *)
  let m = Machine.create ~seed:99 ~store () in
  let r = Machine.open_region m rid in
  Printf.printf "session 2: region %d now at 0x%x\n"
    (rid :> int)
    (Core.Region.base r :> int);
  let os = Objstore.attach m r in
  let kv = Kvstore.attach os ~repr ~name:"config" in
  List.iter
    (fun k ->
      Printf.printf "  key %d -> %s\n" k
        (Option.value ~default:"(absent)" (Kvstore.get kv ~key:k)))
    [ 1; 2; 3 ];
  assert (Kvstore.get kv ~key:2 = Some "beta");
  print_endline "session 2: interrupted update rolled back, store intact";
  Kvstore.put kv ~key:4 "delta";
  assert (Kvstore.delete kv ~key:1);
  Printf.printf "session 2: after edits, keys = [%s]\n"
    (String.concat "; " (List.map string_of_int (Kvstore.keys kv)))
