(* Quickstart: position-independent pointers in five minutes.

   Run with:  dune exec examples/quickstart.exe

   The scenario the paper opens with (Figure 1): a linked structure is
   written to NVM in one run and mapped at a different virtual address
   in the next. Normal pointers dangle; off-holder and RIV pointers keep
   working. *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim

let build_pair (module P : Core.Repr_sig.S) store name =
  (* Run 1: create a region, store a value, point at it. *)
  let m = Machine.create ~seed:1 ~store () in
  let rid = Machine.create_region m ~size:65536 in
  let r = Machine.open_region m rid in
  let holder = Region.alloc r P.slot_size in
  let target = Region.alloc r 8 in
  Memsim.store64 m.Machine.mem target 4242;
  P.store m ~holder target;
  Region.set_root r "holder" holder;
  Printf.printf "  run 1 (%s): region %d mapped at 0x%x, target holds 4242\n"
    name
    (rid :> int)
    (Region.base r :> int);
  Machine.close_region m rid;
  rid

let reopen_pair (module P : Core.Repr_sig.S) store name rid =
  (* Run 2: same store, new address space, different placement. *)
  let m = Machine.create ~seed:99 ~store () in
  let r = Machine.open_region m rid in
  Printf.printf "  run 2 (%s): region %d now mapped at 0x%x\n" name
    (rid :> int)
    (Region.base r :> int);
  let holder = Option.get (Region.root r "holder") in
  match P.load m ~holder with
  | target -> begin
      match Memsim.load64 m.Machine.mem target with
      | 4242 -> Printf.printf "  run 2 (%s): pointer resolved, read 4242  OK\n" name
      | v -> Printf.printf "  run 2 (%s): pointer dangles, read %d  BROKEN\n" name v
      | exception Memsim.Fault _ ->
          Printf.printf "  run 2 (%s): pointer dangles (segfault)  BROKEN\n" name
    end
  | exception Memsim.Fault _ ->
      Printf.printf "  run 2 (%s): pointer dangles (segfault)  BROKEN\n" name

let demo kind =
  let name = Core.Repr.to_string kind in
  Printf.printf "== %s pointers ==\n" name;
  let store = Store.create () in
  let rid = build_pair (Core.Repr.m kind) store name in
  reopen_pair (Core.Repr.m kind) store name rid;
  print_newline ()

let () =
  print_endline "Position independence on (simulated) NVM\n";
  List.iter demo [ Core.Repr.Normal; Core.Repr.Off_holder; Core.Repr.Riv ];
  print_endline
    "off-holder stores target-minus-holder; RIV packs {region ID | offset}\n\
     and resolves through two direct-mapped tables. Both survive the remap;\n\
     the normal pointer still holds the old virtual address."
