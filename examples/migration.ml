(* Section 4.4's region migration: "If a tree grows too large to fit
   into a basic NVRegion, it could be migrated to a higher-level larger
   NVRegion."

   A BST of off-holder pointers fills a small region; we migrate the
   region to a larger image and keep inserting. This only works because
   every link is position independent — the migrated image lands at a
   completely different virtual address.

   Run with:  dune exec examples/migration.exe *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Node = Nvmpi_structures.Node
module Bst = Nvmpi_structures.Bstree.Make (Core.Off_holder)
module Two_level = Core.Two_level

let () =
  let store = Store.create () in
  let m = Machine.create ~seed:9 ~store () in
  let rid = Machine.create_region m ~size:16384 in
  let r = Machine.open_region m rid in
  Printf.printf "small region (%d bytes) at 0x%x\n" (Region.size r)
    (Region.base r :> int);
  let node = Node.make m ~mode:(Node.Plain [| r |]) ~payload:32 in
  let t = Bst.create node ~name:"tree" in
  let inserted = ref 0 in
  (try
     while true do
       ignore (Bst.insert t ~key:((!inserted * 7919) mod 100003));
       incr inserted
     done
   with Region.Out_of_region_memory _ ->
     Printf.printf "region full after %d keys\n" !inserted);
  (* Migrate to a 16x larger image. The two-level layout's class logic
     picks the segment class a size needs. *)
  let new_size = 16 * 16384 in
  (match Two_level.class_for_size Two_level.default new_size with
  | Ok c ->
      Printf.printf "two-level layout: %d bytes fits the %s class\n" new_size
        (match c with Two_level.Small -> "small" | Two_level.Large -> "large")
  | Error e -> print_endline e);
  let r2 = Machine.migrate_region m rid ~size:new_size in
  Printf.printf "migrated to %d bytes at 0x%x (moved!)\n" (Region.size r2)
    (Region.base r2 :> int);
  let node2 = Node.make m ~mode:(Node.Plain [| r2 |]) ~payload:32 in
  let t2 = Bst.attach node2 ~name:"tree" in
  assert (Bst.size t2 = !inserted);
  Printf.printf "tree intact: %d keys still reachable\n" (Bst.size t2);
  for i = 0 to 499 do
    ignore (Bst.insert t2 ~key:(200000 + i))
  done;
  Printf.printf "kept growing: %d keys after migration\n" (Bst.size t2);
  assert (Bst.size t2 = !inserted + 500);
  print_endline "off-holder links survived the move; no fixups were needed."
