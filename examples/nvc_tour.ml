(* A tour of NVC, the mini-language implementing the paper's
   persistentI / persistentX type extension (Section 4.4): the compiler
   inserts every address conversion, so the program manipulates
   persistent pointers exactly like normal ones.

   Run with:  dune exec examples/nvc_tour.exe *)

module Machine = Core.Machine
module Store = Core.Store
module Lang = Nvmpi_lang.Lang

let program =
  {|
// An inventory: a persistentI-linked list of items in one region,
// each pointing at a persistentX description record in another.

struct desc { int weight; }
struct item {
  persistentI struct item *next;   // intra-region: off-holder
  persistentX struct desc *info;   // cross-region: RIV
  int id;
}

int total_weight(persistent struct item *head) {
  int sum = 0;
  persistent struct item *cur = head;
  while (cur != null) {
    persistent struct desc *d = cur->info;   // p = x conversion
    sum = sum + d->weight;
    cur = cur->next;                          // p = i conversion
  }
  return sum;
}

int main() {
  int items_r = region_create(65536);
  int descs_r = region_create(65536);
  region_open(items_r);
  region_open(descs_r);

  persistent struct item *head = null;
  int i = 1;
  while (i <= 4) {
    persistent struct item *it = new(items_r, struct item);
    persistent struct desc *d  = new(descs_r, struct desc);
    d->weight = i * 5;
    it->id = i;
    it->info = d;       // x = p
    it->next = head;    // i = p
    head = it;
    i = i + 1;
  }

  root_set(items_r, "inventory", head);
  print(total_weight(head));
  return total_weight(head);
}
|}

let bad_program =
  {|
struct item { persistentI struct item *next; int id; }

int main() {
  int r1 = region_create(65536);
  int r2 = region_create(65536);
  region_open(r1);
  region_open(r2);
  persistent struct item *a = new(r1, struct item);
  persistent struct item *b = new(r2, struct item);
  a->next = b;   // persistentI across regions: the generated check fires
  return 0;
}
|}

let static_bad = "int main() { persistentI int *p = null; return 0; }"

let () =
  let store = Store.create () in
  let m = Machine.create ~seed:5 ~store () in
  print_endline "== compiling and running the inventory program ==";
  (match Lang.run_string m program with
  | Ok { Lang.Eval.result; output } ->
      Printf.printf "  program printed: %s  returned: %s\n"
        (String.trim output)
        (match result with Some v -> string_of_int v | None -> "(void)");
      assert (result = Some (5 + 10 + 15 + 20))
  | Error e -> failwith e);
  print_endline "\n== the generated IR makes the conversions visible ==";
  let ir = Lang.compile_exn program in
  String.split_on_char '\n' (Lang.Ir.to_string ir)
  |> List.filter (fun l ->
         let has s =
           let n = String.length s in
           let rec go i =
             i + n <= String.length l && (String.sub l i n = s || go (i + 1))
           in
           go 0
         in
         has "slotstore<persistentI>" || has "slotstore<persistentX>")
  |> List.iteri (fun i l -> if i < 4 then Printf.printf "  %s\n" (String.trim l));
  print_endline "\n== dynamic check: persistentI cannot cross regions ==";
  let m2 = Machine.create ~seed:6 ~store:(Store.create ()) () in
  (match Lang.run_string m2 bad_program with
  | Ok _ -> failwith "should have failed"
  | Error e -> Printf.printf "  %s\n" e);
  print_endline "\n== static check: persistentI needs an NVM-resident holder ==";
  match Lang.compile static_bad with
  | Ok _ -> failwith "should have been rejected"
  | Error e -> Printf.printf "  %s\n" e
