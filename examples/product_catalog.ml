(* The paper's Figure 9 scenario, as a library user would write it: a
   linked list of order records in one NVRegion whose nodes also point
   into a second NVRegion holding a shared product catalog.

   - intra-region "next" links are persistentI (off-holder);
   - cross-region "product" links are persistentX (RIV);

   and the whole thing survives both regions being remapped, including
   persistence of the store to a file between "processes".

   Run with:  dune exec examples/product_catalog.exe *)

module Machine = Core.Machine
module Region = Core.Region
module Store = Core.Store
module Memsim = Core.Memsim
module OffH = Core.Off_holder
module Riv = Core.Riv
module Vaddr = Core.Kinds.Vaddr

(* Node layout: [next (off-holder, 8)] [product (RIV, 8)] [qty (8)].
   Product layout: [price (8)]. *)
let next_off = 0
let prod_off = 8
let qty_off = 16
let node_size = 24

let build store =
  let m = Machine.create ~seed:2026 ~store () in
  let orders_rid = Machine.create_region m ~size:65536 in
  let catalog_rid = Machine.create_region m ~size:65536 in
  let orders = Machine.open_region m orders_rid in
  let catalog = Machine.open_region m catalog_rid in
  (* Three catalog products. *)
  let products =
    Array.init 3 (fun i ->
        let p = Region.alloc catalog 8 in
        Memsim.store64 m.Machine.mem p ((i + 1) * 100);
        p)
  in
  (* Orders: each points to its product across regions. *)
  let head = ref Vaddr.null in
  for i = 2 downto 0 do
    let n = Region.alloc orders node_size in
    OffH.store m ~holder:(Vaddr.add n next_off) !head;
    Riv.store m ~holder:(Vaddr.add n prod_off) products.(i);
    Memsim.store64 m.Machine.mem (Vaddr.add n qty_off) (i + 1);
    head := n
  done;
  Region.set_root orders "orders" !head;
  Printf.printf "writer: orders at 0x%x, catalog at 0x%x\n"
    (Region.base orders :> int)
    (Region.base catalog :> int);
  Machine.close_region m orders_rid;
  Machine.close_region m catalog_rid;
  (orders_rid, catalog_rid)

let walk m orders =
  let cur = ref (Option.get (Region.root orders "orders")) in
  let total = ref 0 in
  while not (Vaddr.is_null !cur) do
    let qty = Memsim.load64 m.Machine.mem (Vaddr.add !cur qty_off) in
    let product = Riv.load m ~holder:(Vaddr.add !cur prod_off) in
    let price = Memsim.load64 m.Machine.mem product in
    Printf.printf "  order: qty=%d price=%d (product in region %d)\n" qty price
      (Machine.rid_of_addr_exn m product :> int);
    total := !total + (qty * price);
    cur := OffH.load m ~holder:(Vaddr.add !cur next_off)
  done;
  !total

let read store (orders_rid, catalog_rid) =
  let m = Machine.create ~seed:777 ~store () in
  let orders = Machine.open_region m orders_rid in
  let catalog = Machine.open_region m catalog_rid in
  Printf.printf "reader: orders at 0x%x, catalog at 0x%x (both moved)\n"
    (Region.base orders :> int)
    (Region.base catalog :> int);
  let total = walk m orders in
  Printf.printf "reader: order total = %d\n" total;
  assert (total = (1 * 100) + (2 * 200) + (3 * 300));
  (* Same process, regions moved again under our feet: remap_region
     closes and reopens each region at a fresh base in one call. The
     off-holder/RIV links don't care. *)
  let orders = Machine.remap_region m orders_rid in
  let catalog = Machine.remap_region m catalog_rid in
  Printf.printf "reader: remapped in-run to 0x%x and 0x%x\n"
    (Region.base orders :> int)
    (Region.base catalog :> int);
  let total' = walk m orders in
  Printf.printf "reader: order total after remap = %d\n" total';
  assert (total' = total)

let () =
  let store = Store.create () in
  let rids = build store in
  (* Persist the device image to a file and load it back, as if a second
     process picked it up later. *)
  let path = Filename.temp_file "catalog" ".nvm" in
  Store.save_file store path;
  let store2 = Store.load_file path in
  Sys.remove path;
  read store2 rids;
  print_endline "cross-region references held across remap + file roundtrip."
