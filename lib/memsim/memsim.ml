type op = Load | Store
type access = { op : op; addr : int; size : int }
type stats = { mutable loads : int; mutable stores : int; mutable pages : int }

exception Fault of { addr : int; size : int; reason : string }

module Metrics = Nvmpi_obs.Metrics

type t = {
  page_bits : int;
  pages : (int, Bytes.t) Hashtbl.t;
  mutable ranges : (int * int) array; (* (first_page, last_page) sorted *)
  mutable observers : (access -> unit) list;
  mutable notify : bool;
  stats : stats;
  (* Counter cells resolved once at creation: [notify] runs on every
     simulated access, so it must not pay a registry lookup. *)
  c_loads : int ref;
  c_stores : int ref;
}

let create ?(page_bits = 12) ?metrics () =
  if page_bits < 4 || page_bits > 24 then invalid_arg "Memsim.create";
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    page_bits;
    pages = Hashtbl.create 1024;
    ranges = [||];
    observers = [];
    notify = true;
    stats = { loads = 0; stores = 0; pages = 0 };
    c_loads = Metrics.counter metrics "mem.loads";
    c_stores = Metrics.counter metrics "mem.stores";
  }

let page_size t = 1 lsl t.page_bits
let stats t = t.stats

let fault addr size reason = raise (Fault { addr; size; reason })

(* Binary search: does page index [p] fall inside a mapped range? *)
let page_in_ranges t p =
  let ranges = t.ranges in
  let lo = ref 0 and hi = ref (Array.length ranges - 1) and found = ref false in
  while !lo <= !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let first, last = ranges.(mid) in
    if p < first then hi := mid - 1
    else if p > last then lo := mid + 1
    else found := true
  done;
  !found

let map t ~addr ~size =
  if addr < 0 || size <= 0 then invalid_arg "Memsim.map: bad range";
  let first = addr lsr t.page_bits in
  let last = (addr + size - 1) lsr t.page_bits in
  Array.iter
    (fun (f, l) ->
      if not (last < f || first > l) then
        invalid_arg
          (Printf.sprintf "Memsim.map: range at 0x%x overlaps existing mapping"
             addr))
    t.ranges;
  let ranges = Array.append t.ranges [| (first, last) |] in
  Array.sort compare ranges;
  t.ranges <- ranges

let unmap t ~addr =
  let first = addr lsr t.page_bits in
  let found = ref None in
  Array.iter
    (fun (f, l) -> if f = first then found := Some (f, l))
    t.ranges;
  match !found with
  | None ->
      invalid_arg (Printf.sprintf "Memsim.unmap: no mapping at 0x%x" addr)
  | Some (f, l) ->
      for p = f to l do
        if Hashtbl.mem t.pages p then begin
          Hashtbl.remove t.pages p;
          t.stats.pages <- t.stats.pages - 1
        end
      done;
      t.ranges <- Array.of_list
          (List.filter (fun r -> r <> (f, l)) (Array.to_list t.ranges))

let is_mapped t a = a >= 0 && page_in_ranges t (a lsr t.page_bits)

let mappings t =
  Array.to_list t.ranges
  |> List.map (fun (f, l) ->
         (f lsl t.page_bits, (l - f + 1) lsl t.page_bits))

let add_observer t f = t.observers <- t.observers @ [ f ]
let observed t b = t.notify <- b

let notify t op addr size =
  (match op with
  | Load ->
      t.stats.loads <- t.stats.loads + 1;
      incr t.c_loads
  | Store ->
      t.stats.stores <- t.stats.stores + 1;
      incr t.c_stores);
  if t.notify then
    match t.observers with
    | [] -> ()
    | [ f ] -> f { op; addr; size }
    | fs -> List.iter (fun f -> f { op; addr; size }) fs

let get_page t addr size =
  let p = addr lsr t.page_bits in
  match Hashtbl.find_opt t.pages p with
  | Some page -> page
  | None ->
      if not (page_in_ranges t p) then fault addr size "unmapped";
      let page = Bytes.make (page_size t) '\000' in
      Hashtbl.add t.pages p page;
      t.stats.pages <- t.stats.pages + 1;
      page

let check_align addr size =
  if addr land (size - 1) <> 0 then fault addr size "misaligned"

let off t addr = addr land (page_size t - 1)

let load8 t a =
  if a < 0 then fault a 1 "negative address";
  let page = get_page t a 1 in
  notify t Load a 1;
  Char.code (Bytes.get page (off t a))

let load16 t a =
  check_align a 2;
  let page = get_page t a 2 in
  notify t Load a 2;
  Bytes.get_uint16_le page (off t a)

let load32 t a =
  check_align a 4;
  let page = get_page t a 4 in
  notify t Load a 4;
  Int32.to_int (Bytes.get_int32_le page (off t a)) land 0xFFFFFFFF

let load64 t a =
  check_align a 8;
  let page = get_page t a 8 in
  notify t Load a 8;
  Int64.to_int (Bytes.get_int64_le page (off t a))

let store8 t a v =
  if a < 0 then fault a 1 "negative address";
  let page = get_page t a 1 in
  notify t Store a 1;
  Bytes.set page (off t a) (Char.chr (v land 0xFF))

let store16 t a v =
  check_align a 2;
  let page = get_page t a 2 in
  notify t Store a 2;
  Bytes.set_uint16_le page (off t a) (v land 0xFFFF)

let store32 t a v =
  check_align a 4;
  let page = get_page t a 4 in
  notify t Store a 4;
  Bytes.set_int32_le page (off t a) (Int32.of_int (v land 0xFFFFFFFF))

let store64 t a v =
  check_align a 8;
  let page = get_page t a 8 in
  notify t Store a 8;
  Bytes.set_int64_le page (off t a) (Int64.of_int v)

let load_sized t ~size a =
  match size with
  | 1 -> load8 t a
  | 2 -> load16 t a
  | 4 -> load32 t a
  | 8 -> load64 t a
  | _ -> invalid_arg "Memsim.load_sized"

let store_sized t ~size a v =
  match size with
  | 1 -> store8 t a v
  | 2 -> store16 t a v
  | 4 -> store32 t a v
  | 8 -> store64 t a v
  | _ -> invalid_arg "Memsim.store_sized"

(* Bulk transfers copy raw page chunks (so arbitrary byte patterns
   roundtrip exactly, including 64-bit words that would overflow a native
   int) and report one observer access per chunk; the timing model
   charges every cache line the chunk touches. *)

let blit_from_bytes t ~addr b =
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let page = get_page t a 1 in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    Bytes.blit b !i page poff chunk;
    notify t Store a chunk;
    i := !i + chunk
  done

let blit_to_bytes t ~addr ~len =
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let page = get_page t a 1 in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    Bytes.blit page poff b !i chunk;
    notify t Load a chunk;
    i := !i + chunk
  done;
  b

let fill t ~addr ~len c =
  for i = 0 to len - 1 do
    store8 t (addr + i) (Char.code c)
  done

(* Debug port: raw access that bypasses the access pipeline entirely —
   no observers, no load/store statistics or counters. Harness-only
   (the fault-injection subsystem's snapshot/restore machinery); never
   use it to model a program access. *)

let peek_bytes t ~addr ~len =
  if addr < 0 || len < 0 then invalid_arg "Memsim.peek_bytes";
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let p = a lsr t.page_bits in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    (match Hashtbl.find_opt t.pages p with
    | Some page -> Bytes.blit page poff b !i chunk
    | None ->
        if not (page_in_ranges t p) then fault a chunk "unmapped (peek)";
        Bytes.fill b !i chunk '\000');
    i := !i + chunk
  done;
  b

let poke_bytes t ~addr b =
  if addr < 0 then invalid_arg "Memsim.poke_bytes";
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let page = get_page t a 1 in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    Bytes.blit b !i page poff chunk;
    i := !i + chunk
  done

(* Typed facade (Kinds discipline, see Nvmpi_addr.Kinds): the public
   signature takes typed virtual addresses; the wrappers are zero-cost
   coercions over the int-based engine above. *)

module Vaddr = Nvmpi_addr.Kinds.Vaddr

let map t ~addr:(a : Vaddr.t) ~size = map t ~addr:(a :> int) ~size
let unmap t ~addr:(a : Vaddr.t) = unmap t ~addr:(a :> int)
let is_mapped t (a : Vaddr.t) = is_mapped t (a :> int)
let mappings t = List.map (fun (a, s) -> (Vaddr.v a, s)) (mappings t)
let load8 t (a : Vaddr.t) = load8 t (a :> int)
let load16 t (a : Vaddr.t) = load16 t (a :> int)
let load32 t (a : Vaddr.t) = load32 t (a :> int)
let load64 t (a : Vaddr.t) = load64 t (a :> int)
let store8 t (a : Vaddr.t) v = store8 t (a :> int) v
let store16 t (a : Vaddr.t) v = store16 t (a :> int) v
let store32 t (a : Vaddr.t) v = store32 t (a :> int) v
let store64 t (a : Vaddr.t) v = store64 t (a :> int) v
let load_sized t ~size (a : Vaddr.t) = load_sized t ~size (a :> int)
let store_sized t ~size (a : Vaddr.t) v = store_sized t ~size (a :> int) v
let blit_from_bytes t ~addr:(a : Vaddr.t) b = blit_from_bytes t ~addr:(a :> int) b
let blit_to_bytes t ~addr:(a : Vaddr.t) ~len = blit_to_bytes t ~addr:(a :> int) ~len
let fill t ~addr:(a : Vaddr.t) ~len c = fill t ~addr:(a :> int) ~len c
let peek_bytes t ~addr:(a : Vaddr.t) ~len = peek_bytes t ~addr:(a :> int) ~len
let poke_bytes t ~addr:(a : Vaddr.t) b = poke_bytes t ~addr:(a :> int) b
