type stats = { mutable loads : int; mutable stores : int; mutable pages : int }

exception Fault of { addr : int; size : int; reason : string }

module Metrics = Nvmpi_obs.Metrics

type observer = write:bool -> addr:int -> size:int -> unit

let no_observer : observer = fun ~write:_ ~addr:_ ~size:_ -> ()
let no_page = Bytes.create 0

type t = {
  page_bits : int;
  page_mask : int; (* page_size - 1, precomputed for the access path *)
  pages : (int, Bytes.t) Hashtbl.t;
  mutable ranges : (int * int) array; (* (first_page, last_page) sorted *)
  (* Observers live in a growable array: O(1) amortized registration and
     index-loop dispatch with no list cells on the notify path. [obs0]
     mirrors slot 0 so the common single-observer machine pays one
     direct closure call per access. *)
  mutable obs : observer array;
  mutable n_obs : int;
  mutable obs0 : observer;
  mutable notify : bool;
  (* Single-entry TLB: the last page touched through the access path.
     Invalidated by unmap (the only operation that drops pages). *)
  mutable tlb_page : int; (* -1 = invalid *)
  mutable tlb_bytes : Bytes.t;
  stats : stats;
  (* Counter cells resolved once at creation: the access path runs on
     every simulated load/store, so it must not pay a registry lookup. *)
  c_loads : int ref;
  c_stores : int ref;
}

let create ?(page_bits = 12) ?metrics () =
  if page_bits < 4 || page_bits > 24 then invalid_arg "Memsim.create";
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    page_bits;
    page_mask = (1 lsl page_bits) - 1;
    pages = Hashtbl.create 1024;
    ranges = [||];
    obs = [||];
    n_obs = 0;
    obs0 = no_observer;
    notify = true;
    tlb_page = -1;
    tlb_bytes = no_page;
    stats = { loads = 0; stores = 0; pages = 0 };
    c_loads = Metrics.counter metrics "mem.loads";
    c_stores = Metrics.counter metrics "mem.stores";
  }

let page_size t = 1 lsl t.page_bits
let stats t = t.stats

let fault addr size reason = raise (Fault { addr; size; reason })

(* Binary search: does page index [p] fall inside a mapped range? *)
let page_in_ranges t p =
  let ranges = t.ranges in
  let lo = ref 0 and hi = ref (Array.length ranges - 1) and found = ref false in
  while !lo <= !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let first, last = ranges.(mid) in
    if p < first then hi := mid - 1
    else if p > last then lo := mid + 1
    else found := true
  done;
  !found

let map t ~addr ~size =
  if addr < 0 || size <= 0 then invalid_arg "Memsim.map: bad range";
  let first = addr lsr t.page_bits in
  let last = (addr + size - 1) lsr t.page_bits in
  Array.iter
    (fun (f, l) ->
      if not (last < f || first > l) then
        invalid_arg
          (Printf.sprintf "Memsim.map: range at 0x%x overlaps existing mapping"
             addr))
    t.ranges;
  let ranges = Array.append t.ranges [| (first, last) |] in
  (* Ranges are disjoint, so ordering by first page is a total order;
     the monomorphic comparator avoids polymorphic compare. *)
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) ranges;
  t.ranges <- ranges

let unmap t ~addr =
  let first = addr lsr t.page_bits in
  let found = ref None in
  Array.iter
    (fun (f, l) -> if f = first then found := Some (f, l))
    t.ranges;
  match !found with
  | None ->
      invalid_arg (Printf.sprintf "Memsim.unmap: no mapping at 0x%x" addr)
  | Some (f, l) ->
      for p = f to l do
        if Hashtbl.mem t.pages p then begin
          Hashtbl.remove t.pages p;
          t.stats.pages <- t.stats.pages - 1
        end
      done;
      (* Drop the range in place: [f] is unique among disjoint ranges. *)
      let n = Array.length t.ranges in
      let out = Array.make (n - 1) (0, 0) in
      let j = ref 0 in
      Array.iter
        (fun ((rf, _) as r) ->
          if rf <> f then begin
            out.(!j) <- r;
            incr j
          end)
        t.ranges;
      t.ranges <- out;
      t.tlb_page <- -1;
      t.tlb_bytes <- no_page

let is_mapped t a = a >= 0 && page_in_ranges t (a lsr t.page_bits)

let mappings t =
  Array.to_list t.ranges
  |> List.map (fun (f, l) ->
         (f lsl t.page_bits, (l - f + 1) lsl t.page_bits))

let add_observer t f =
  if t.n_obs = Array.length t.obs then begin
    let grown = Array.make (max 4 (2 * t.n_obs)) no_observer in
    Array.blit t.obs 0 grown 0 t.n_obs;
    t.obs <- grown
  end;
  t.obs.(t.n_obs) <- f;
  if t.n_obs = 0 then t.obs0 <- f;
  t.n_obs <- t.n_obs + 1

let observed t b = t.notify <- b

let notify t write addr size =
  if write then begin
    t.stats.stores <- t.stats.stores + 1;
    incr t.c_stores
  end
  else begin
    t.stats.loads <- t.stats.loads + 1;
    incr t.c_loads
  end;
  if t.notify then begin
    let n = t.n_obs in
    if n = 1 then t.obs0 ~write ~addr ~size
    else if n > 1 then
      let obs = t.obs in
      for i = 0 to n - 1 do
        (Array.unsafe_get obs i) ~write ~addr ~size
      done
  end

let materialize t p addr size =
  if not (page_in_ranges t p) then fault addr size "unmapped";
  let page = Bytes.make (t.page_mask + 1) '\000' in
  Hashtbl.add t.pages p page;
  t.stats.pages <- t.stats.pages + 1;
  page

let[@inline] get_page t addr size =
  let p = addr lsr t.page_bits in
  if p = t.tlb_page then t.tlb_bytes
  else begin
    let page =
      match Hashtbl.find t.pages p with
      | page -> page
      | exception Not_found -> materialize t p addr size
    in
    t.tlb_page <- p;
    t.tlb_bytes <- page;
    page
  end

let check_align addr size =
  if addr land (size - 1) <> 0 then fault addr size "misaligned"

let off t addr = addr land t.page_mask

let load8 t a =
  if a < 0 then fault a 1 "negative address";
  let page = get_page t a 1 in
  notify t false a 1;
  Char.code (Bytes.get page (a land t.page_mask))

let load16 t a =
  check_align a 2;
  let page = get_page t a 2 in
  notify t false a 2;
  Bytes.get_uint16_le page (a land t.page_mask)

let load32 t a =
  check_align a 4;
  let page = get_page t a 4 in
  notify t false a 4;
  Int32.to_int (Bytes.get_int32_le page (a land t.page_mask)) land 0xFFFFFFFF

let load64 t a =
  check_align a 8;
  let page = get_page t a 8 in
  notify t false a 8;
  Int64.to_int (Bytes.get_int64_le page (a land t.page_mask))

let store8 t a v =
  if a < 0 then fault a 1 "negative address";
  let page = get_page t a 1 in
  notify t true a 1;
  Bytes.set page (a land t.page_mask) (Char.chr (v land 0xFF))

let store16 t a v =
  check_align a 2;
  let page = get_page t a 2 in
  notify t true a 2;
  Bytes.set_uint16_le page (a land t.page_mask) (v land 0xFFFF)

let store32 t a v =
  check_align a 4;
  let page = get_page t a 4 in
  notify t true a 4;
  Bytes.set_int32_le page (a land t.page_mask) (Int32.of_int (v land 0xFFFFFFFF))

let store64 t a v =
  check_align a 8;
  let page = get_page t a 8 in
  notify t true a 8;
  Bytes.set_int64_le page (a land t.page_mask) (Int64.of_int v)

let load_sized t ~size a =
  match size with
  | 1 -> load8 t a
  | 2 -> load16 t a
  | 4 -> load32 t a
  | 8 -> load64 t a
  | _ -> invalid_arg "Memsim.load_sized"

let store_sized t ~size a v =
  match size with
  | 1 -> store8 t a v
  | 2 -> store16 t a v
  | 4 -> store32 t a v
  | 8 -> store64 t a v
  | _ -> invalid_arg "Memsim.store_sized"

(* Fused entry points (staged engine): the full access pipeline minus
   observer dispatch. A caller that *is* the sole observer — the staged
   per-representation engines hold the machine's timing model directly —
   performs the data access here and charges the cache model itself,
   skipping one closure indirection per access. [solo_observed] is the
   guard: it holds exactly when generic [load64] would have made a
   single direct [obs0] call, so fused + caller-side charge is
   observationally identical to the generic path. *)

let[@inline] solo_observed t = t.notify && t.n_obs = 1

let[@inline] note t write =
  if write then begin
    t.stats.stores <- t.stats.stores + 1;
    incr t.c_stores
  end
  else begin
    t.stats.loads <- t.stats.loads + 1;
    incr t.c_loads
  end

let load8_fused t a =
  if a < 0 then fault a 1 "negative address";
  let page = get_page t a 1 in
  note t false;
  Char.code (Bytes.get page (a land t.page_mask))

let load16_fused t a =
  check_align a 2;
  let page = get_page t a 2 in
  note t false;
  Bytes.get_uint16_le page (a land t.page_mask)

let load32_fused t a =
  check_align a 4;
  let page = get_page t a 4 in
  note t false;
  Int32.to_int (Bytes.get_int32_le page (a land t.page_mask)) land 0xFFFFFFFF

let load64_fused t a =
  check_align a 8;
  let page = get_page t a 8 in
  note t false;
  Int64.to_int (Bytes.get_int64_le page (a land t.page_mask))

let store64_fused t a v =
  check_align a 8;
  let page = get_page t a 8 in
  note t true;
  Bytes.set_int64_le page (a land t.page_mask) (Int64.of_int v)

let load_sized_fused t ~size a =
  match size with
  | 1 -> load8_fused t a
  | 2 -> load16_fused t a
  | 4 -> load32_fused t a
  | 8 -> load64_fused t a
  | _ -> invalid_arg "Memsim.load_sized_fused"

(* Bulk transfers copy raw page chunks (so arbitrary byte patterns
   roundtrip exactly, including 64-bit words that would overflow a native
   int) and report one observer access per chunk; the timing model
   charges every cache line the chunk touches. *)

let blit_from_bytes t ~addr b =
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let page = get_page t a 1 in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    Bytes.blit b !i page poff chunk;
    notify t true a chunk;
    i := !i + chunk
  done

let blit_to_bytes t ~addr ~len =
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let page = get_page t a 1 in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    Bytes.blit page poff b !i chunk;
    notify t false a chunk;
    i := !i + chunk
  done;
  b

let fill t ~addr ~len c =
  for i = 0 to len - 1 do
    store8 t (addr + i) (Char.code c)
  done

(* Debug port: raw access that bypasses the access pipeline entirely —
   no observers, no load/store statistics or counters. Harness-only
   (the fault-injection subsystem's snapshot/restore machinery); never
   use it to model a program access. *)

let peek_bytes t ~addr ~len =
  if addr < 0 || len < 0 then invalid_arg "Memsim.peek_bytes";
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let p = a lsr t.page_bits in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    (match Hashtbl.find_opt t.pages p with
    | Some page -> Bytes.blit page poff b !i chunk
    | None ->
        if not (page_in_ranges t p) then fault a chunk "unmapped (peek)";
        Bytes.fill b !i chunk '\000');
    i := !i + chunk
  done;
  b

let poke_bytes t ~addr b =
  if addr < 0 then invalid_arg "Memsim.poke_bytes";
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let page = get_page t a 1 in
    let poff = off t a in
    let chunk = min (len - !i) (page_size t - poff) in
    Bytes.blit b !i page poff chunk;
    i := !i + chunk
  done

(* Typed facade (Kinds discipline, see Nvmpi_addr.Kinds): the public
   signature takes typed virtual addresses; the wrappers are zero-cost
   coercions over the int-based engine above. *)

module Vaddr = Nvmpi_addr.Kinds.Vaddr

let map t ~addr:(a : Vaddr.t) ~size = map t ~addr:(a :> int) ~size
let unmap t ~addr:(a : Vaddr.t) = unmap t ~addr:(a :> int)
let is_mapped t (a : Vaddr.t) = is_mapped t (a :> int)
let mappings t = List.map (fun (a, s) -> (Vaddr.v a, s)) (mappings t)
let load8 t (a : Vaddr.t) = load8 t (a :> int)
let load16 t (a : Vaddr.t) = load16 t (a :> int)
let load32 t (a : Vaddr.t) = load32 t (a :> int)
let load64 t (a : Vaddr.t) = load64 t (a :> int)
let store8 t (a : Vaddr.t) v = store8 t (a :> int) v
let store16 t (a : Vaddr.t) v = store16 t (a :> int) v
let store32 t (a : Vaddr.t) v = store32 t (a :> int) v
let store64 t (a : Vaddr.t) v = store64 t (a :> int) v
let load_sized t ~size (a : Vaddr.t) = load_sized t ~size (a :> int)
let store_sized t ~size (a : Vaddr.t) v = store_sized t ~size (a :> int) v
let load64_fused t (a : Vaddr.t) = load64_fused t (a :> int)
let store64_fused t (a : Vaddr.t) v = store64_fused t (a :> int) v
let load_sized_fused t ~size (a : Vaddr.t) = load_sized_fused t ~size (a :> int)
let blit_from_bytes t ~addr:(a : Vaddr.t) b = blit_from_bytes t ~addr:(a :> int) b
let blit_to_bytes t ~addr:(a : Vaddr.t) ~len = blit_to_bytes t ~addr:(a :> int) ~len
let fill t ~addr:(a : Vaddr.t) ~len c = fill t ~addr:(a :> int) ~len c
let peek_bytes t ~addr:(a : Vaddr.t) ~len = peek_bytes t ~addr:(a :> int) ~len
let poke_bytes t ~addr:(a : Vaddr.t) b = poke_bytes t ~addr:(a :> int) b
