(** A simulated byte-addressable virtual address space.

    This stands in for the native virtual memory the paper's C/C++
    prototype manipulates directly. Memory is demand-paged: backing pages
    are materialized on first touch, but only inside ranges registered
    with {!map} — any access outside a mapped range raises {!Fault},
    which is how the tests detect dangling (position-dependent) pointers
    after a region moves.

    Every load and store is reported to registered observers; the timing
    model ({!module:Nvmpi_cachesim}) attaches itself as an observer to
    charge cycles organically. *)

type t

type observer = write:bool -> addr:int -> size:int -> unit
(** One memory access as seen on the simulated bus, delivered as three
    unboxed arguments — no record or variant is allocated per access.
    [write] is [true] for a store; [size] is in bytes (1, 2, 4 or 8 for
    typed accesses, up to a page for bulk-transfer chunks). The address
    is deliberately a raw [int] — observers (the cache model) operate
    below the typed discipline, where every word is untyped bit
    traffic. *)

exception Fault of { addr : int; size : int; reason : string }
(** Raised on an access to unmapped memory or a misaligned access. *)

val create : ?page_bits:int -> ?metrics:Nvmpi_obs.Metrics.t -> unit -> t
(** Fresh, empty address space. [page_bits] defaults to 12 (4 KiB pages).
    Every load and store increments [mem.loads] / [mem.stores] in
    [metrics] (a private registry if none is given). *)

val page_size : t -> int

(** {1 Mappings} *)

val map : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> size:int -> unit
(** [map t ~addr ~size] makes the byte range [[addr, addr+size)]
    accessible. The range is rounded outward to page boundaries. Raises
    [Invalid_argument] if it overlaps an existing mapping. *)

val unmap : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [unmap t ~addr] removes the mapping that was created at exactly
    [addr] and drops its backing pages. Raises [Invalid_argument] if no
    mapping starts at [addr]. *)

val is_mapped : t -> Nvmpi_addr.Kinds.Vaddr.t -> bool
(** [is_mapped t a] is [true] iff address [a] falls inside a mapped
    range. *)

val mappings : t -> (Nvmpi_addr.Kinds.Vaddr.t * int) list
(** All mapped ranges as [(addr, size)] pairs, sorted by address
    (page-rounded). *)

(** {1 Observers} *)

val add_observer : t -> observer -> unit
(** Registers a callback invoked on every load and store, after the
    access has been validated. Registration is O(1) amortized; a memory
    with a single observer (the common case: the timing model) pays one
    direct closure call per access. *)

val observed : t -> bool -> unit
(** [observed t false] temporarily disables observer notification (used
    when the harness performs bookkeeping accesses that should not be
    charged by the timing model); [observed t true] re-enables it. *)

(** {1 Typed accesses}

    All accesses must be naturally aligned ([addr] a multiple of the
    access size), which guarantees they never straddle a page. 64-bit
    stores accept any native [int] (including negative values, used by
    off-holder pointers for backward offsets); loads return exactly the
    stored [int]. *)

val load8 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val load16 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val load32 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val load64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val store8 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
val store16 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
val store32 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
val store64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit

val load_sized : t -> size:int -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Dispatches to [load8/16/32/64] on [size]. *)

val store_sized : t -> size:int -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit

(** {1 Fused entry points (staged engine)}

    The full access pipeline — alignment check, page walk through the
    single-entry TLB, statistics and counter-cell bumps — minus observer
    dispatch. Contract: call these only when {!solo_observed} holds and
    you hold that sole observer's model (in practice: the machine's
    timing model, attached as observer 0 at creation), and charge it
    yourself via [Timing.access_line]. Under that contract the fused
    path is observationally identical to the generic one: the generic
    path would have made exactly one direct [obs0] call with the same
    [(write, addr, size)], and every naturally aligned power-of-two
    access of at most a cache line reduces observer-side to a single
    line charge. *)

val solo_observed : t -> bool
(** True iff notification is on and exactly one observer is registered —
    the precondition for the fused entry points. *)

val load64_fused : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val store64_fused : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
val load_sized_fused : t -> size:int -> Nvmpi_addr.Kinds.Vaddr.t -> int

(** {1 Bulk transfers}

    Bulk transfers are observed as a sequence of 8-byte (then byte-sized)
    accesses. *)

val blit_from_bytes : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> bytes -> unit
(** Copies an OCaml [bytes] into simulated memory at [addr]. *)

val blit_to_bytes : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> bytes
(** Copies [len] bytes of simulated memory starting at [addr] out into a
    fresh OCaml [bytes]. *)

val fill : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> char -> unit

(** {1 Debug port}

    Raw access below the access pipeline: no observers fire, no
    statistics or counters move. The fault-injection harness uses these
    to snapshot line contents at flush time and to overwrite live memory
    with a materialized crash image; they must never stand in for a
    program access. *)

val peek_bytes : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> bytes
(** [peek_bytes t ~addr ~len] copies [len] bytes out without observing
    or materializing pages (untouched mapped pages read as zeros).
    Raises {!Fault} if the range leaves mapped memory. *)

val poke_bytes : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> bytes -> unit
(** [poke_bytes t ~addr b] overwrites simulated memory with [b] without
    observing. Raises {!Fault} if the range leaves mapped memory. *)

(** {1 Statistics} *)

type stats = { mutable loads : int; mutable stores : int; mutable pages : int }

val stats : t -> stats
(** Cumulative access counts and number of materialized pages. *)
