(** The introduction's strawman: RIV's packed single-word format, but
    translated through the fat-pointer hashtable instead of the
    direct-mapped tables. Used by the ablation benchmarks to isolate
    where RIV's win comes from. Satisfies {!Repr_sig.S}. *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
