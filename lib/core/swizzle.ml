(** Pointer swizzling (Section 5): pointers are persisted in a
    position-independent packed [{regionID | offset}] form; when a data
    structure is loaded, a one-time pass converts every slot in place to
    an absolute address (swizzling), and a closing pass converts them
    back (unswizzling). Between the two passes, dereferences are as fast
    as normal pointers — but the passes traverse the whole structure, and
    a crash between them leaves the structure position-dependent.

    The conversion passes use the direct-mapped NV-space tables for the
    ID/base translations (the cheapest mapping available); the cost that
    makes swizzling expensive is structural — every slot is read,
    converted and written once per direction.

    [store]/[load] are the steady-state (swizzled) operations; the
    per-slot conversion passes are driven by each data structure's
    walker. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Riv = K.Riv

let name = "swizzle"
let slot_size = 8
let cross_region = true
let position_independent = false (* in its in-memory, swizzled form *)

let store m ~holder (target : Vaddr.t) =
  Machine.bump m Machine.Cell.swizzle_stores "repr.swizzle.stores";
  Machine.store64_fast m holder (target :> int)

let load m ~holder =
  Machine.bump m Machine.Cell.swizzle_loads "repr.swizzle.loads";
  Vaddr.v (Machine.load64_fast m holder)

(** [store_packed m ~holder target] writes the persisted (unswizzled)
    form directly; used when producing the on-NVM form a freshly opened
    structure starts from. *)
let store_packed m ~holder target =
  Machine.bump m Machine.Cell.swizzle_packed_stores "swizzle.packed_stores";
  Machine.store64_fast m holder (Nvspace.p2x m.Machine.nvspace target :> int)

(** [swizzle_slot m ~holder] converts the packed slot at [holder] to an
    absolute address in place and returns that address (null for a
    stored null). *)
let swizzle_slot m ~holder =
  Machine.bump m Machine.Cell.swizzle_swizzled "swizzle.swizzled_slots";
  let v = Riv.v (Machine.load64_fast m holder) in
  let a = Nvspace.x2p m.Machine.nvspace v in
  Machine.store64_fast m holder (a :> int);
  a

(** [unswizzle_slot m ~holder] converts the absolute slot at [holder]
    back to the packed persisted form and returns the absolute target it
    held (so a walker can keep traversing). *)
let unswizzle_slot m ~holder =
  Machine.bump m Machine.Cell.swizzle_unswizzled "swizzle.unswizzled_slots";
  let a = Vaddr.v (Machine.load64_fast m holder) in
  Machine.store64_fast m holder (Nvspace.p2x m.Machine.nvspace a :> int);
  a
