(** Registry of all pointer representations evaluated in the paper
    (plus the two ablation-only ones), as both a plain enumeration and
    first-class {!Repr_sig.S} modules. *)

type kind =
  | Normal  (** absolute virtual addresses (baseline) *)
  | Off_holder  (** self-relative offsets (Section 4.2) *)
  | Riv  (** region ID in value (Section 4.3) *)
  | Fat  (** [{regionID; offset}] struct + hashtable *)
  | Fat_cached  (** fat pointer with [lastID]/[lastAddr] cache *)
  | Based  (** offset from a register-resident base variable *)
  | Swizzle  (** swizzled at load, unswizzled at close *)
  | Packed_fat
      (** the intro's strawman: RIV's packed format, hashtable
          translation (ablations only) *)
  | Hw_oid
      (** hypothetical hardware-assisted translation (ablations only) *)

val all : kind list
val to_string : kind -> string
val of_string : string -> kind option
val pp : Format.formatter -> kind -> unit

val m : kind -> (module Repr_sig.S)
(** The representation as a first-class module. *)

val slot_size : kind -> int
val cross_region : kind -> bool
val position_independent : kind -> bool

val remap_safety : kind -> [ `Self_contained | `Via_passes | `Dangles ]
(** What a persisted slot means across an unmap/remap of its region:
    [`Self_contained] slots stay valid with no load-time work (all the
    position-independent encodings except swizzling), [`Via_passes]
    slots survive only when bracketed by unswizzle-before/swizzle-after
    passes ({!Swizzle}), and [`Dangles] slots (absolute {!Normal}
    pointers) are invalidated by any move. The conformance harness
    ([lib/conform]) keys trace applicability on exactly this. *)

val self_contained : kind -> bool
(** Whether the persisted image survives remapping without a load-time
    pass. *)

val implicit_self_contained : kind -> bool
(** The Section 4.1 concept: position independent, pointer-sized, and
    usable with no external base variable. True exactly for off-holder,
    RIV, and the packed translations sharing RIV's format. *)
