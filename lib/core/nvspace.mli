(** The RIV runtime: the two direct-mapped lookup tables of Section 4.3.

    Table entries live in simulated NV-space memory at addresses computed
    by pure bit transformations ({!Nvmpi_addr.Layout.rid_entry_addr} and
    {!Nvmpi_addr.Layout.base_entry_addr}); a conversion is therefore a
    couple of ALU operations plus one table load, which is exactly the
    cost profile the paper claims for RIV.

    ALU work is charged explicitly to the timing model; the table loads
    and stores are charged organically by the attached cache model. *)

type t

exception Unknown_region of { rid : Nvmpi_addr.Kinds.Rid.t }
exception Not_nv_data of { addr : Nvmpi_addr.Kinds.Vaddr.t }

val create :
  layout:Nvmpi_addr.Layout.t ->
  mem:Nvmpi_memsim.Memsim.t ->
  timing:Nvmpi_cachesim.Timing.t ->
  ?metrics:Nvmpi_obs.Metrics.t ->
  unit ->
  t
(** Creates the runtime and maps the two table areas (demand-paged, so
    only touched entries consume backing memory). Conversions report
    into [metrics]: [riv.x2p] / [riv.p2x] per conversion (nulls
    included) and [riv.base_table_loads] / [riv.rid_table_loads] per
    table access. *)

val layout : t -> Nvmpi_addr.Layout.t

val register_region :
  t -> rid:Nvmpi_addr.Kinds.Rid.t -> base:Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Called when a region is opened at segment base [base]: writes the
    RID-table entry (segment base -> ID) and the base-table entry
    (ID -> nvbase). *)

val unregister_region :
  t -> rid:Nvmpi_addr.Kinds.Rid.t -> base:Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Zeroes both entries when the region is closed. *)

val id2addr : t -> Nvmpi_addr.Kinds.Rid.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [id2addr t rid] is the base address of the open region [rid]
    (Figure 5 (b)). Charges: entry-address computation (2 ALU) + one
    table load + nothing else.
    @raise Unknown_region if the table holds no entry for [rid]. *)

val addr2id : t -> Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Rid.t
(** [addr2id t a] is the region ID owning data-area address [a]
    (Figure 5 (c)). Charges: 2 ALU + one table load.
    @raise Not_nv_data if [a] is not a data-area address.
    @raise Unknown_region if the segment has no registered region. *)

val get_base : t -> Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [get_base t a] masks the low [l3] bits of [a] (1 ALU). *)

val x2p : t -> Nvmpi_addr.Kinds.Riv.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [x2p t v] converts a packed RIV value to an absolute address —
    Figure 8's [persistentX] decode, composed from
    {!Nvmpi_addr.Kinds.rid_of_riv}/{!Nvmpi_addr.Kinds.offset_of_riv}
    (unpack, 2 ALU), the base-table load ({!id2addr}) and the final or
    (1 ALU). Null maps to null. *)

val p2x : t -> Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Riv.t
(** [p2x t a] converts an absolute address to a packed RIV value —
    Figure 8's [persistentX] encode: {!addr2id}, offset extraction
    ({!Nvmpi_addr.Kinds.seg_offset}, 1 ALU), pack
    ({!Nvmpi_addr.Kinds.riv_of_rid_off}, 2 ALU). Null maps to null. *)

(** {1 Cost-phase instrumentation}

    Used by the RIV overhead-breakdown experiment (Section 6.2): cycles
    spent in each of the three phases of a RIV read. *)

type phases = {
  mutable extract_cycles : int;  (** getting ID and offset fields *)
  mutable id2addr_cycles : int;  (** computing the base-table entry address *)
  mutable final_cycles : int;  (** reading the base and adding the offset *)
}

val phases : t -> phases
val reset_phases : t -> unit
