(** Staged per-representation execution engines.

    Each of the nine pointer representations gets a dedicated engine
    module: the representation's own [store]/[load] (which already run
    on the staged primitives — pre-resolved counter cells via
    {!Machine.bump}, fused memory accesses via {!Machine.load64_fast})
    plus a fused [deref] composing pointer decode with the dependent
    data load. Because the engine modules are ordinary static modules
    (not first-class values unpacked per call), every call into one is
    a direct, known call the compiler can inline through — no module
    projection on the hot path.

    The dynamic path stays available: {!Repr.m} still hands out the
    same representation modules as first-class values, and {!store}/
    {!load}/{!deref} below give per-kind direct dispatch (one match, no
    module unpacking) for callers that select the representation at
    runtime. [--engine dispatch] on the benchmark harness forces the
    first-class-module path so the two can be compared and bisected;
    both are observationally identical by construction — they are the
    same representation code reached through different call graphs. *)

module Vaddr = Nvmpi_addr.Kinds.Vaddr

(** An engine: a representation plus the fused dereference. *)
module type S = sig
  include Repr_sig.S

  val kind : Repr.kind

  val deref : Machine.t -> holder:Vaddr.t -> int
  (** [deref m ~holder] decodes the pointer in [holder] and loads the
      64-bit word it targets — the paper's unit of comparison (a few
      bit transformations plus the dependent load). The holder must
      hold a non-null pointer. *)
end

module Make (R : sig
  include Repr_sig.S

  val kind : Repr.kind
end) : S = struct
  include R

  let[@inline] deref m ~holder = Machine.load64_fast m (R.load m ~holder)
end

module Normal = Make (struct
  include Normal_ptr

  let kind = Repr.Normal
end)

module Off_holder_e = Make (struct
  include Off_holder

  let kind = Repr.Off_holder
end)

module Riv_e = Make (struct
  include Riv

  let kind = Repr.Riv
end)

module Fat_e = Make (struct
  include Fat

  let kind = Repr.Fat
end)

module Fat_cached_e = Make (struct
  include Fat_cached

  let kind = Repr.Fat_cached
end)

module Based = Make (struct
  include Based_ptr

  let kind = Repr.Based
end)

module Swizzle_e = Make (struct
  include Swizzle

  let kind = Repr.Swizzle
end)

module Packed_fat_e = Make (struct
  include Packed_fat

  let kind = Repr.Packed_fat
end)

module Hw_oid_e = Make (struct
  include Hw_oid

  let kind = Repr.Hw_oid
end)

let of_kind : Repr.kind -> (module S) = function
  | Repr.Normal -> (module Normal)
  | Repr.Off_holder -> (module Off_holder_e)
  | Repr.Riv -> (module Riv_e)
  | Repr.Fat -> (module Fat_e)
  | Repr.Fat_cached -> (module Fat_cached_e)
  | Repr.Based -> (module Based)
  | Repr.Swizzle -> (module Swizzle_e)
  | Repr.Packed_fat -> (module Packed_fat_e)
  | Repr.Hw_oid -> (module Hw_oid_e)

(* Per-kind direct dispatch: one match on the kind, then a direct call
   into the representation module. This is the staged replacement for
   [let (module R) = Repr.m k in R.store ...] at call sites that keep
   the kind as a runtime value (the conformance executor, the KV store):
   no first-class module is unpacked, no closure is built per call. *)

let store k m ~holder target =
  match k with
  | Repr.Normal -> Normal_ptr.store m ~holder target
  | Repr.Off_holder -> Off_holder.store m ~holder target
  | Repr.Riv -> Riv.store m ~holder target
  | Repr.Fat -> Fat.store m ~holder target
  | Repr.Fat_cached -> Fat_cached.store m ~holder target
  | Repr.Based -> Based_ptr.store m ~holder target
  | Repr.Swizzle -> Swizzle.store m ~holder target
  | Repr.Packed_fat -> Packed_fat.store m ~holder target
  | Repr.Hw_oid -> Hw_oid.store m ~holder target

let load k m ~holder =
  match k with
  | Repr.Normal -> Normal_ptr.load m ~holder
  | Repr.Off_holder -> Off_holder.load m ~holder
  | Repr.Riv -> Riv.load m ~holder
  | Repr.Fat -> Fat.load m ~holder
  | Repr.Fat_cached -> Fat_cached.load m ~holder
  | Repr.Based -> Based_ptr.load m ~holder
  | Repr.Swizzle -> Swizzle.load m ~holder
  | Repr.Packed_fat -> Packed_fat.load m ~holder
  | Repr.Hw_oid -> Hw_oid.load m ~holder

let deref k m ~holder =
  match k with
  | Repr.Normal -> Normal.deref m ~holder
  | Repr.Off_holder -> Off_holder_e.deref m ~holder
  | Repr.Riv -> Riv_e.deref m ~holder
  | Repr.Fat -> Fat_e.deref m ~holder
  | Repr.Fat_cached -> Fat_cached_e.deref m ~holder
  | Repr.Based -> Based.deref m ~holder
  | Repr.Swizzle -> Swizzle_e.deref m ~holder
  | Repr.Packed_fat -> Packed_fat_e.deref m ~holder
  | Repr.Hw_oid -> Hw_oid_e.deref m ~holder

(** {1 Engine selection}

    Which call graph instance construction uses: [Staged] goes through
    the pre-instantiated specialized modules, [Dispatch] through the
    historical first-class-module path ({!Repr.m} unpacked at
    construction). The selector is a process-wide default (set once at
    startup by the benchmark harness's [--engine] flag, before any
    domains are spawned) rather than a per-suite parameter, so the
    recorded experiment parameters — and hence every snapshot and
    report schema — are unchanged. *)

type mode = Staged | Dispatch

let mode_to_string = function Staged -> "staged" | Dispatch -> "dispatch"

let mode_of_string = function
  | "staged" -> Some Staged
  | "dispatch" -> Some Dispatch
  | _ -> None

let default_mode = ref Staged
let set_default_mode m = default_mode := m
let mode () = !default_mode
