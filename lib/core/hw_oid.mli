(** Hypothetical hardware-assisted translation (the related work of
    Wang et al., MICRO 2017): RIV's format with the ID-to-base
    translation charged at a fixed {!translation_cycles} instead of a
    memory access. Bounds the headroom hardware leaves over the paper's
    software tables. Satisfies {!Repr_sig.S}. *)

val translation_cycles : int

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
