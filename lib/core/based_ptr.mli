(** Based pointers (Section 5): offsets from a register-resident base
    variable naming one region ({!Machine.set_based_region}). Fast but
    intra-region only, with the usability pitfalls Section 5 and
    Figure 11 catalogue. Satisfies {!Repr_sig.S}. *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
