module Layout = Nvmpi_addr.Layout
module Bitops = Nvmpi_addr.Bitops
module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Riv = K.Riv
module Rid = K.Rid
module Seg = K.Seg
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Clock = Nvmpi_cachesim.Clock
module Metrics = Nvmpi_obs.Metrics

type phases = {
  mutable extract_cycles : int;
  mutable id2addr_cycles : int;
  mutable final_cycles : int;
}

type t = {
  layout : Layout.t;
  mem : Memsim.t;
  timing : Timing.t;
  rid_entry : int; (* entry sizes in bytes *)
  base_entry : int;
  phases : phases;
  c_x2p : int ref;
  c_p2x : int ref;
  c_base_loads : int ref;
  c_rid_loads : int ref;
}

exception Unknown_region of { rid : Rid.t }
exception Not_nv_data of { addr : Vaddr.t }

let create ~layout ~mem ~timing ?metrics () =
  let rid_entry = Layout.rid_entry_bytes layout in
  let base_entry = Layout.base_entry_bytes layout in
  (* Map the two table areas. Entries exist only for data-area segment
     bases / valid region IDs, so the mapped ranges below cover every
     entry either table can contain. *)
  let s_r = Bitops.log2_exact rid_entry in
  let s_b = Bitops.log2_exact base_entry in
  let nv = Layout.nv_start layout in
  let rid_lo = nv + (Layout.data_nvbase_min layout lsl s_r) in
  let rid_size = Layout.data_nvbase_min layout lsl s_r in
  Memsim.map mem ~addr:(Vaddr.v rid_lo) ~size:rid_size;
  let base_lo = nv + (1 lsl (layout.Layout.l4 + s_b)) in
  let base_size = 1 lsl (layout.Layout.l4 + s_b) in
  Memsim.map mem ~addr:(Vaddr.v base_lo) ~size:base_size;
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    layout;
    mem;
    timing;
    rid_entry;
    base_entry;
    phases = { extract_cycles = 0; id2addr_cycles = 0; final_cycles = 0 };
    c_x2p = Metrics.counter metrics "riv.x2p";
    c_p2x = Metrics.counter metrics "riv.p2x";
    c_base_loads = Metrics.counter metrics "riv.base_table_loads";
    c_rid_loads = Metrics.counter metrics "riv.rid_table_loads";
  }

let layout t = t.layout
let phases t = t.phases

(* Fused table load (staged engine). Nvspace is only constructed by
   [Machine.create], where [timing] is the memory's observer 0 — so
   whenever [solo_observed] holds, the sole observer is exactly
   [t.timing], and a fused data load plus a direct single-line charge
   (table entries are naturally aligned power-of-two words) matches the
   generic observed load bit-for-bit. *)
let[@inline] table_load t ~size entry =
  if Memsim.solo_observed t.mem then begin
    let v = Memsim.load_sized_fused t.mem ~size entry in
    Timing.access_line t.timing ~addr:(entry : Vaddr.t :> int) ~write:false;
    v
  end
  else Memsim.load_sized t.mem ~size entry

let reset_phases t =
  t.phases.extract_cycles <- 0;
  t.phases.id2addr_cycles <- 0;
  t.phases.final_cycles <- 0

let register_region t ~rid ~base =
  let l = t.layout in
  if not (K.is_data_addr l base) then raise (Not_nv_data { addr = base });
  Memsim.store_sized t.mem ~size:t.rid_entry
    (K.rid_entry_vaddr l base)
    (rid : Rid.t :> int);
  Memsim.store_sized t.mem ~size:t.base_entry
    (K.base_entry_vaddr l ~rid)
    (Seg.to_int (K.seg_of_vaddr l base))

let unregister_region t ~rid ~base =
  let l = t.layout in
  Memsim.store_sized t.mem ~size:t.rid_entry (K.rid_entry_vaddr l base) 0;
  Memsim.store_sized t.mem ~size:t.base_entry (K.base_entry_vaddr l ~rid) 0

let id2addr t rid =
  let l = t.layout in
  Timing.alu t.timing 2;
  let entry = K.base_entry_vaddr l ~rid in
  incr t.c_base_loads;
  let nvbase = table_load t ~size:t.base_entry entry in
  if nvbase = 0 then raise (Unknown_region { rid });
  Timing.alu t.timing 1;
  K.vaddr_of_seg l (Seg.v nvbase)

let addr2id t a =
  let l = t.layout in
  if not (K.is_data_addr l a) then raise (Not_nv_data { addr = a });
  Timing.alu t.timing 2;
  let entry = K.rid_entry_vaddr l a in
  incr t.c_rid_loads;
  let rid = table_load t ~size:t.rid_entry entry in
  if rid = 0 then raise (Unknown_region { rid = Rid.none });
  Rid.v rid

let get_base t a =
  Timing.alu t.timing 1;
  K.base_of_vaddr t.layout a

(* The three phases of a RIV read are timed separately so the breakdown
   experiment (Section 6.2) can report their shares. *)
let x2p t v =
  incr t.c_x2p;
  if Riv.is_null v then begin
    Timing.alu t.timing 2;
    Vaddr.null
  end
  else begin
    let l = t.layout in
    let clock = Timing.clock t.timing in
    let c0 = Clock.cycles clock in
    Timing.alu t.timing 3;
    let rid = K.rid_of_riv l v in
    let offset = K.offset_of_riv l v in
    let c1 = Clock.cycles clock in
    Timing.alu t.timing 3;
    let entry = K.base_entry_vaddr l ~rid in
    let c2 = Clock.cycles clock in
    incr t.c_base_loads;
    let nvbase = table_load t ~size:t.base_entry entry in
    if nvbase = 0 then raise (Unknown_region { rid });
    Timing.alu t.timing 2;
    let addr =
      K.vaddr_in_segment l ~base:(K.vaddr_of_seg l (Seg.v nvbase)) ~offset
    in
    let c3 = Clock.cycles clock in
    t.phases.extract_cycles <- t.phases.extract_cycles + c1 - c0;
    t.phases.id2addr_cycles <- t.phases.id2addr_cycles + c2 - c1;
    t.phases.final_cycles <- t.phases.final_cycles + c3 - c2;
    addr
  end

let p2x t a =
  incr t.c_p2x;
  if Vaddr.is_null a then Riv.null
  else begin
    let l = t.layout in
    let rid = addr2id t a in
    Timing.alu t.timing 2;
    let offset = K.seg_offset l a in
    Timing.alu t.timing 1;
    K.riv_of_rid_off l ~rid ~offset
  end
