(** Fat pointers with the one-entry software cache of Section 6.3: two
    globals, [lastID] and [lastAddr], short-circuit the hashtable lookup
    when consecutive dereferences hit the same region. Effective with a
    single region; defeated when accesses alternate between regions. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Rid = K.Rid

let name = "fat-cached"
let slot_size = 16
let cross_region = true
let position_independent = true

let store m ~holder target =
  Machine.bump m Machine.Cell.fat_cached_stores "repr.fat-cached.stores";
  Fat.store_into m ~holder target

let load m ~holder =
  Machine.bump m Machine.Cell.fat_cached_loads "repr.fat-cached.loads";
  let rid = Machine.load64_fast m holder in
  if rid = 0 then begin
    Fat_table.charge_null_lookup m.Machine.fat;
    Vaddr.null
  end
  else begin
    let offset = Machine.load64_fast m (Vaddr.add holder 8) in
    let last_id = Machine.load64_fast m (Machine.lastid_addr m) in
    Machine.alu m 1;
    let base =
      if last_id = rid then begin
        Machine.bump m Machine.Cell.fat_cache_hits "fat.cache_hits";
        Vaddr.v (Machine.load64_fast m (Machine.lastaddr_addr m))
      end
      else begin
        Machine.bump m Machine.Cell.fat_cache_misses "fat.cache_misses";
        let b = Fat_table.lookup m.Machine.fat (Rid.v rid) in
        Machine.store64_fast m (Machine.lastid_addr m) rid;
        Machine.store64_fast m (Machine.lastaddr_addr m) (b :> int);
        b
      end
    in
    Machine.alu m 1;
    Vaddr.add base offset
  end
