(** Region-ID-in-Value pointers (Section 4.3): the slot stores
    [{region ID | offset}]; conversions go through the direct-mapped
    NV-space tables of {!Nvspace}. Supports intra- and cross-region
    targets. Satisfies {!Repr_sig.S}. *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
