(** NVMPI: position-independent pointers for (simulated) non-volatile
    memory.

    This library reproduces the system of {e Efficient Support of
    Position Independence on Non-Volatile Memory} (Chen et al.,
    MICRO-50 2017): the off-holder and RIV implicit self-contained
    pointer representations, the baselines they are evaluated against,
    and the simulated NVM machine they run on.

    Typical use:
    {[
      let store = Core.Store.create () in
      let m = Core.Machine.create ~store () in
      let rid = Core.Machine.create_region m ~size:(1 lsl 20) in
      let r = Core.Machine.open_region m rid in
      let (module P) = Core.Repr.m Core.Repr.Off_holder in
      let slot = Core.Region.alloc r 8 in
      let obj = Core.Region.alloc r 64 in
      P.store m ~holder:slot obj;
      assert (P.load m ~holder:slot = obj)
    ]} *)

module Machine = Machine
module Nvspace = Nvspace
module Fat_table = Fat_table
module Repr = Repr
module Repr_sig = Repr_sig
module Engine = Engine
module Normal_ptr = Normal_ptr
module Off_holder = Off_holder
module Riv = Riv
module Fat = Fat
module Fat_cached = Fat_cached
module Based_ptr = Based_ptr
module Swizzle = Swizzle
module Packed_fat = Packed_fat
module Hw_oid = Hw_oid

(** Substrate re-exports, so users need only depend on [core]. *)

module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Layout = Nvmpi_addr.Layout
module Kinds = Nvmpi_addr.Kinds
module Two_level = Nvmpi_addr.Two_level
module Bitops = Nvmpi_addr.Bitops
module Memsim = Nvmpi_memsim.Memsim
module Clock = Nvmpi_cachesim.Clock
module Timing = Nvmpi_cachesim.Timing
module Timing_config = Nvmpi_cachesim.Timing_config
module Cache_level = Nvmpi_cachesim.Cache_level
module Store = Nvmpi_nvregion.Store
module Region = Nvmpi_nvregion.Region
module Manager = Nvmpi_nvregion.Manager
module Freelist = Nvmpi_alloc.Freelist
