(** Off-holder (Section 4.2): the slot stores the difference between the
    target address and the slot's own address. Zero space overhead; the
    conversion is a single add/subtract against an address the CPU
    already has (the holder's). Intra-region only: a cross-region
    difference would depend on where both regions happen to be mapped. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Off = K.Off

let name = "off-holder"
let slot_size = 8
let cross_region = false
let position_independent = true

(* A stored 0 encodes null: no live pointer can point at its own slot. *)

let store m ~holder (target : Vaddr.t) =
  if Vaddr.is_null target then begin
    Machine.bump m Machine.Cell.off_holder_stores "repr.off-holder.stores";
    Machine.store64_fast m holder 0
  end
  else begin
    (* Section 4.4's dynamic same-region check. It runs before any
       cycle is charged or counter bumped, so a faulting store is
       observationally free. *)
    (match Machine.region_of_addr m holder with
    | Some r when Nvmpi_nvregion.Region.contains r target -> ()
    | _ -> raise (Machine.Cross_region_store { holder; target; repr = name }));
    Machine.bump m Machine.Cell.off_holder_stores "repr.off-holder.stores";
    Machine.alu m 2;
    (* Figure 8, persistentI encode: i = target - holder. *)
    Machine.store64_fast m holder (Off.to_int (K.off_of_vaddr ~holder target))
  end

let load m ~holder =
  Machine.bump m Machine.Cell.off_holder_loads "repr.off-holder.loads";
  let v = Off.v (Machine.load64_fast m holder) in
  Machine.alu m 2;
  (* Figure 8, persistentI decode: p = holder + i. *)
  if Off.is_null v then Vaddr.null else K.vaddr_of_off ~holder v
