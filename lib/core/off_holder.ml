(** Off-holder (Section 4.2): the slot stores the difference between the
    target address and the slot's own address. Zero space overhead; the
    conversion is a single add/subtract against an address the CPU
    already has (the holder's). Intra-region only: a cross-region
    difference would depend on where both regions happen to be mapped. *)

let name = "off-holder"
let slot_size = 8
let cross_region = false
let position_independent = true

(* A stored 0 encodes null: no live pointer can point at its own slot. *)

let store m ~holder target =
  Machine.count m "repr.off-holder.stores";
  if target = 0 then Machine.store64 m holder 0
  else begin
    (match Machine.region_of_addr m holder with
    | Some r when Nvmpi_nvregion.Region.contains r target -> ()
    | _ ->
        Machine.count m "machine.cross_region_faults";
        raise (Machine.Cross_region_store { holder; target; repr = name }));
    Machine.alu m 2;
    Machine.store64 m holder (target - holder)
  end

let load m ~holder =
  Machine.count m "repr.off-holder.loads";
  let v = Machine.load64 m holder in
  Machine.alu m 2;
  if v = 0 then 0 else v + holder
