module Layout = Nvmpi_addr.Layout
module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Rid = K.Rid
module Memsim = Nvmpi_memsim.Memsim
module Clock = Nvmpi_cachesim.Clock
module Timing = Nvmpi_cachesim.Timing
module Timing_config = Nvmpi_cachesim.Timing_config
module Manager = Nvmpi_nvregion.Manager
module Region = Nvmpi_nvregion.Region
module Store = Nvmpi_nvregion.Store
module Metrics = Nvmpi_obs.Metrics

(* Per-machine counter cells for the staged engines: one slot per
   hot-path counter, indexed by the constants below. Slots start as the
   [Metrics.Handle.unresolved] sentinel and are resolved on first bump,
   so a counter registers (and appears in snapshots) at exactly the
   moment the string-keyed [count] path would have registered it. *)
module Cell = struct
  let normal_stores = 0
  let normal_loads = 1
  let off_holder_stores = 2
  let off_holder_loads = 3
  let riv_stores = 4
  let riv_loads = 5
  let fat_stores = 6
  let fat_loads = 7
  let fat_cached_stores = 8
  let fat_cached_loads = 9
  let fat_cache_hits = 10
  let fat_cache_misses = 11
  let based_stores = 12
  let based_loads = 13
  let swizzle_stores = 14
  let swizzle_loads = 15
  let swizzle_packed_stores = 16
  let swizzle_swizzled = 17
  let swizzle_unswizzled = 18
  let packed_fat_stores = 19
  let packed_fat_loads = 20
  let hw_oid_stores = 21
  let hw_oid_loads = 22
  let dur_traversal_loads = 23
  let dur_window_flushes = 24
  let dur_helper_flushes = 25
  let dur_marks_set = 26
  let dur_marks_cleared = 27
  let slots = 28
end

type t = {
  layout : Layout.t;
  mem : Memsim.t;
  clock : Clock.t;
  timing : Timing.t;
  manager : Manager.t;
  nvspace : Nvspace.t;
  fat : Fat_table.t;
  metrics : Metrics.t;
  cells : Metrics.Handle.t array;
  mutable based_base : Vaddr.t;
      (* Vaddr.null = unset; the data area never contains address 0 *)
  mutable crash_hook : (unit -> unit) option;
  mutable dram_cursor : int;
  dram_limit : int;
}

exception
  Cross_region_store of { holder : Vaddr.t; target : Vaddr.t; repr : string }

(* Fixed carve-outs in the simulated DRAM (volatile) address range. *)
let dram_base = 0x10_0000 (* 1 MiB *)
let fat_table_off = 0
let fat_slots = 4096
let fat_list_off = fat_slots * 16
let fat_list_cap = 4096
let globals_off = fat_list_off + (fat_list_cap * 16)
let heap_off = globals_off + 4096
let dram_size = 512 * 1024 * 1024

let create ?(layout = Layout.default) ?cfg ?metrics ?seed ~store () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let mem = Memsim.create ~metrics () in
  let clock = Clock.create () in
  let timing =
    Timing.create ?cfg ~metrics ~clock
      ~is_nvm:(fun a -> Layout.in_nv_space layout a)
      ()
  in
  Timing.attach timing mem;
  Memsim.map mem ~addr:(Vaddr.v dram_base) ~size:dram_size;
  let manager = Manager.create ?seed ~layout ~mem ~store () in
  let nvspace = Nvspace.create ~layout ~mem ~timing ~metrics () in
  let fat =
    Fat_table.create ~mem ~timing ~layout ~metrics
      ~table_base:(Vaddr.v (dram_base + fat_table_off))
      ~slots:fat_slots
      ~list_base:(Vaddr.v (dram_base + fat_list_off))
      ~list_cap:fat_list_cap
  in
  {
    layout;
    mem;
    clock;
    timing;
    manager;
    nvspace;
    fat;
    metrics;
    cells = Array.make Cell.slots Metrics.Handle.unresolved;
    based_base = Vaddr.null;
    crash_hook = None;
    dram_cursor = dram_base + heap_off;
    dram_limit = dram_base + dram_size;
  }

let create_region t ~size = Manager.create_region t.manager ~size

let open_region ?at_nvbase t rid =
  let r = Manager.open_region ?at_nvbase t.manager rid in
  Nvspace.register_region t.nvspace ~rid ~base:(Region.base r);
  Fat_table.put t.fat ~rid ~base:(Region.base r);
  r

(* The one-entry fat-pointer cache ([lastID]/[lastAddr]) may hold the
   region being unmapped; a later reopen at a different segment must not
   resolve through the stale base. The drop goes through the unobserved
   debug port: like the manager's image copies, unmapping is an OS-level
   operation whose bookkeeping is not part of any measured pointer
   operation (region IDs are never 0, so zeroing means "empty"). *)
let invalidate_fat_cache t rid =
  let lastid = Vaddr.v (dram_base + globals_off) in
  let cached =
    Bytes.get_int64_le (Memsim.peek_bytes t.mem ~addr:lastid ~len:8) 0
  in
  if Int64.to_int cached = (rid : Rid.t :> int) then
    Memsim.poke_bytes t.mem ~addr:lastid (Bytes.make 16 '\000')

let close_region t rid =
  let r = Manager.region_exn t.manager rid in
  let base = Region.base r in
  Manager.close_region t.manager rid;
  Nvspace.unregister_region t.nvspace ~rid ~base;
  Fat_table.remove t.fat ~rid;
  invalidate_fat_cache t rid;
  if Vaddr.equal t.based_base base then t.based_base <- Vaddr.null

(* Section 4.4's migration to a larger region: persist, grow the image,
   remap. All position-independent contents survive the move. *)
let migrate_region t rid ~size =
  let was_based =
    match Manager.region t.manager rid with
    | Some r -> Vaddr.equal t.based_base (Region.base r)
    | None -> false
  in
  if Manager.region t.manager rid <> None then close_region t rid;
  Store.grow (Manager.store t.manager) ~rid ~size;
  let r = open_region t rid in
  if was_based then t.based_base <- Region.base r;
  r

(* Remap within one run: close (persisting the image) and reopen at a
   fresh randomized segment, retrying until the segment actually differs
   — the manager's placement is random and may repeat. Deterministic
   under a seeded manager; replaces the unmap+map-at-new-base sequences
   previously copy-pasted by examples and tests. *)
let remap_region t rid =
  let old_base = Region.base (Manager.region_exn t.manager rid) in
  let was_based = Vaddr.equal t.based_base old_base in
  close_region t rid;
  let rec reopen tries =
    let r = open_region t rid in
    if Vaddr.equal (Region.base r) old_base && tries > 0 then begin
      close_region t rid;
      reopen (tries - 1)
    end
    else r
  in
  let r = reopen 64 in
  if was_based then t.based_base <- Region.base r;
  r

let close_all t =
  List.iter (fun r -> close_region t (Region.rid r))
    (Manager.open_regions t.manager)

let region t rid = Manager.region t.manager rid
let region_exn t rid = Manager.region_exn t.manager rid
let region_of_addr t a = Manager.region_of_addr t.manager a

let rid_of_addr_exn t a =
  match region_of_addr t a with
  | Some r -> Region.rid r
  | None ->
      invalid_arg
        (Printf.sprintf "no open region contains 0x%x" (a : Vaddr.t :> int))

let set_based_region t rid = t.based_base <- Region.base (region_exn t rid)

let dram_alloc t ?(align = 8) n =
  if n <= 0 then invalid_arg "Machine.dram_alloc";
  let a = Nvmpi_addr.Bitops.align_up t.dram_cursor align in
  if a + n > t.dram_limit then failwith "Machine.dram_alloc: out of DRAM";
  t.dram_cursor <- a + n;
  Vaddr.v a

let lastid_addr t = ignore t; Vaddr.v (dram_base + globals_off)
let lastaddr_addr t = ignore t; Vaddr.v (dram_base + globals_off + 8)

let load64 t a = Memsim.load64 t.mem a
let store64 t a v = Memsim.store64 t.mem a v
let alu t n = Timing.alu t.timing n
let cycles t = Clock.cycles t.clock
let is_nvm t a = K.in_nv_space t.layout a
let metrics t = t.metrics
let count ?by t name = Metrics.incr ?by t.metrics name

(* Staged fast paths. [create] attaches the timing model as observer 0
   before anything else can register, so whenever [Memsim.solo_observed]
   holds, the sole observer *is* [t.timing] and the fused data access
   plus a direct [Timing.access_line] charge is exactly what the generic
   path's observer dispatch would have done. Any second observer (the
   fault-injection tracker) or [Memsim.observed false] window makes the
   guard false and falls back to the generic path, preserving observer
   semantics and event order bit-for-bit. *)

let[@inline never] resolve_cell t i name =
  let c = Metrics.handle t.metrics name in
  t.cells.(i) <- c;
  c

let[@inline] cell t i name =
  let c = Array.unsafe_get t.cells i in
  if Metrics.Handle.resolved c then c else resolve_cell t i name

let[@inline] bump t i name = Metrics.Handle.bump (cell t i name)

let[@inline] load64_fast t a =
  if Memsim.solo_observed t.mem then begin
    let v = Memsim.load64_fused t.mem a in
    Timing.access_line t.timing ~addr:(a : Vaddr.t :> int) ~write:false;
    v
  end
  else Memsim.load64 t.mem a

let[@inline] store64_fast t a v =
  if Memsim.solo_observed t.mem then begin
    Memsim.store64_fused t.mem a v;
    Timing.access_line t.timing ~addr:(a : Vaddr.t :> int) ~write:true
  end
  else Memsim.store64 t.mem a v
