(** The strawman from the paper's introduction: "Concatenating the two
    fields of a fat pointer (regionID and offset) into one 64-bit word
    ... can make the pointer self contained. But it would still require
    translations between the regionID and the address of the region at
    runtime, which, without a careful implementation, could easily incur
    large overhead."

    Same stored format as RIV ([{region ID | offset}]), but translated
    through the fat-pointer hashtable instead of the direct-mapped
    NV-space tables. The ablation benchmark compares it against RIV to
    isolate how much of RIV's win comes from the table design. *)

module Layout = Nvmpi_addr.Layout

let name = "packed-fat"
let slot_size = 8
let cross_region = true
let position_independent = true

let store m ~holder target =
  Machine.count m "repr.packed-fat.stores";
  if target = 0 then Machine.store64 m holder 0
  else begin
    let rid = Fat_table.rid_of_addr m.Machine.fat target in
    Machine.alu m 3;
    let v =
      Layout.riv_pack m.Machine.layout ~rid
        ~offset:(Layout.seg_offset m.Machine.layout target)
    in
    Machine.store64 m holder v
  end

let load m ~holder =
  Machine.count m "repr.packed-fat.loads";
  let v = Machine.load64 m holder in
  if v = 0 then begin
    Fat_table.charge_null_lookup m.Machine.fat;
    0
  end
  else begin
    Machine.alu m 2;
    let rid = Layout.riv_rid m.Machine.layout v in
    let offset = Layout.riv_offset m.Machine.layout v in
    let base = Fat_table.lookup m.Machine.fat rid in
    Machine.alu m 1;
    base + offset
  end
