(** The strawman from the paper's introduction: "Concatenating the two
    fields of a fat pointer (regionID and offset) into one 64-bit word
    ... can make the pointer self contained. But it would still require
    translations between the regionID and the address of the region at
    runtime, which, without a careful implementation, could easily incur
    large overhead."

    Same stored format as RIV ([{region ID | offset}]), but translated
    through the fat-pointer hashtable instead of the direct-mapped
    NV-space tables. The ablation benchmark compares it against RIV to
    isolate how much of RIV's win comes from the table design. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Riv = K.Riv

let name = "packed-fat"
let slot_size = 8
let cross_region = true
let position_independent = true

let store m ~holder (target : Vaddr.t) =
  Machine.bump m Machine.Cell.packed_fat_stores "repr.packed-fat.stores";
  if Vaddr.is_null target then Machine.store64_fast m holder 0
  else begin
    let rid = Fat_table.rid_of_addr m.Machine.fat target in
    Machine.alu m 3;
    (* The Figure 5 packing, with the ID produced by the hashtable
       runtime's reverse search rather than the RID table. *)
    let v =
      K.riv_of_rid_off m.Machine.layout ~rid
        ~offset:(K.seg_offset m.Machine.layout target)
    in
    Machine.store64_fast m holder (v :> int)
  end

let load m ~holder =
  Machine.bump m Machine.Cell.packed_fat_loads "repr.packed-fat.loads";
  let v = Riv.v (Machine.load64_fast m holder) in
  if Riv.is_null v then begin
    Fat_table.charge_null_lookup m.Machine.fat;
    Vaddr.null
  end
  else begin
    Machine.alu m 2;
    let rid = K.rid_of_riv m.Machine.layout v in
    let offset = K.offset_of_riv m.Machine.layout v in
    let base = Fat_table.lookup m.Machine.fat rid in
    Machine.alu m 1;
    Vaddr.add base offset
  end
