(** Normal (volatile) pointers: the absolute virtual address is stored
    verbatim. This is the paper's baseline — fastest, but not position
    independent: after a region is remapped, stored targets are dangling. *)

let name = "normal"
let slot_size = 8
let cross_region = true
let position_independent = false

let store m ~holder target =
  Machine.count m "repr.normal.stores";
  Machine.store64 m holder target

let load m ~holder =
  Machine.count m "repr.normal.loads";
  Machine.load64 m holder
