(** Normal (volatile) pointers: the absolute virtual address is stored
    verbatim. This is the paper's baseline — fastest, but not position
    independent: after a region is remapped, stored targets are dangling. *)

module Vaddr = Nvmpi_addr.Kinds.Vaddr

let name = "normal"
let slot_size = 8
let cross_region = true
let position_independent = false

let store m ~holder (target : Vaddr.t) =
  Machine.bump m Machine.Cell.normal_stores "repr.normal.stores";
  Machine.store64_fast m holder (target :> int)

let load m ~holder =
  Machine.bump m Machine.Cell.normal_loads "repr.normal.loads";
  Vaddr.v (Machine.load64_fast m holder)
