(** Fat pointers with the one-entry [lastID]/[lastAddr] software cache
    of Section 6.3: effective with one region, defeated when accesses
    alternate regions. Satisfies {!Repr_sig.S}. *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
