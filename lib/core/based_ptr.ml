(** Based pointers (Section 5, Microsoft C++ [__based]): the slot stores
    the offset from a base variable that names one region and lives in a
    register, so a dereference costs one add. Fastest after normal
    pointers, but confined to the single region the base names, with the
    usability problems Section 5 catalogues. *)

let name = "based"
let slot_size = 8
let cross_region = false
let position_independent = true

let base_of m ~holder ~target =
  let b = m.Machine.based_base in
  if b = 0 then failwith "based pointer used with no based region set";
  ignore holder;
  ignore target;
  b

let store m ~holder target =
  Machine.count m "repr.based.stores";
  let b = base_of m ~holder ~target in
  if target = 0 then Machine.store64 m holder 0
  else begin
    (match Machine.region_of_addr m target with
    | Some r when Nvmpi_nvregion.Region.base r = b -> ()
    | _ ->
        Machine.count m "machine.cross_region_faults";
        raise (Machine.Cross_region_store { holder; target; repr = name }));
    Machine.alu m 1;
    Machine.store64 m holder (target - b)
  end

let load m ~holder =
  Machine.count m "repr.based.loads";
  let b = base_of m ~holder ~target:0 in
  let v = Machine.load64 m holder in
  Machine.alu m 1;
  if v = 0 then 0 else b + v
