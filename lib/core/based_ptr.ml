(** Based pointers (Section 5, Microsoft C++ [__based]): the slot stores
    the offset from a base variable that names one region and lives in a
    register, so a dereference costs one add. Fastest after normal
    pointers, but confined to the single region the base names, with the
    usability problems Section 5 catalogues. *)

module Vaddr = Nvmpi_addr.Kinds.Vaddr

let name = "based"
let slot_size = 8
let cross_region = false
let position_independent = true

let base_of m ~holder ~target =
  let b = m.Machine.based_base in
  if Vaddr.is_null b then
    failwith "based pointer used with no based region set";
  ignore holder;
  ignore target;
  b

let store m ~holder (target : Vaddr.t) =
  if Vaddr.is_null target then begin
    (* Encoding NULL is base-independent (Figure 8 stores the constant),
       so it must work before any based region is selected. *)
    Machine.bump m Machine.Cell.based_stores "repr.based.stores";
    Machine.store64_fast m holder 0
  end
  else begin
    let b = base_of m ~holder ~target in
    (* Section 4.4's dynamic check, before any cycle or counter: a
       faulting store is observationally free. *)
    (match Machine.region_of_addr m target with
    | Some r when Vaddr.equal (Nvmpi_nvregion.Region.base r) b -> ()
    | _ -> raise (Machine.Cross_region_store { holder; target; repr = name }));
    Machine.bump m Machine.Cell.based_stores "repr.based.stores";
    Machine.alu m 1;
    Machine.store64_fast m holder (Vaddr.offset_in target ~base:b)
  end

let load m ~holder =
  Machine.bump m Machine.Cell.based_loads "repr.based.loads";
  let b = base_of m ~holder ~target:Vaddr.null in
  let v = Machine.load64_fast m holder in
  Machine.alu m 1;
  if v = 0 then Vaddr.null else Vaddr.add b v
