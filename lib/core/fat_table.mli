(** The fat-pointer runtime, as used by PMEM.IO-style persistent object
    libraries: a hashtable mapping region ID to base address (consulted
    on every fat-pointer dereference) and a base-sorted region list
    (consulted when an absolute address must be turned back into a
    [{regionID; offset}] pair on a fat-pointer assignment).

    Both structures live in {e simulated DRAM}, so every probe is a real
    simulated memory access charged by the cache model — the hashtable's
    cost disadvantage against RIV's direct-mapped tables is measured, not
    asserted. *)

type t

exception Unknown_region of { rid : Nvmpi_addr.Kinds.Rid.t }
exception No_region_for_addr of { addr : Nvmpi_addr.Kinds.Vaddr.t }

val create :
  mem:Nvmpi_memsim.Memsim.t ->
  timing:Nvmpi_cachesim.Timing.t ->
  layout:Nvmpi_addr.Layout.t ->
  metrics:Nvmpi_obs.Metrics.t ->
  table_base:Nvmpi_addr.Kinds.Vaddr.t ->
  slots:int ->
  list_base:Nvmpi_addr.Kinds.Vaddr.t ->
  list_cap:int ->
  t
(** [slots] must be a power of two; the caller provides DRAM placement
    for the [slots * 16]-byte hashtable and the [list_cap * 16]-byte
    region list. Lookups report into [metrics]: [fat.lookups] /
    [fat.probe_loads] (hashtable), [fat.null_lookups],
    [fat.reverse_lookups] / [fat.reverse_steps] (address-to-ID binary
    search). *)

val put :
  t -> rid:Nvmpi_addr.Kinds.Rid.t -> base:Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Registers an opened region (hashtable insert + sorted-list insert). *)

val remove : t -> rid:Nvmpi_addr.Kinds.Rid.t -> unit

val charge_null_lookup : t -> unit
(** Charges the cost of testing a fat pointer for null (PMEM.IO's
    [TOID_IS_NULL]: an inlined two-field comparison, no library call). *)

val lookup : t -> Nvmpi_addr.Kinds.Rid.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [lookup t rid] is the base address of region [rid]: hash (6 ALU) +
    linear probing with one 8-byte load per probe.
    @raise Unknown_region when absent. *)

val rid_of_addr : t -> Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Rid.t
(** [rid_of_addr t a] finds the region containing [a] by binary search
    over the base-sorted region list (2 ALU + one load per step).
    @raise No_region_for_addr when no open region contains [a]. *)

val count : t -> int
