(** Off-holder pointers (Section 4.2): the slot stores
    [target - holder]. Zero space overhead, one add per dereference,
    intra-region only — a cross-region store raises
    {!Machine.Cross_region_store} (the dynamic check of Section 4.4).
    Satisfies {!Repr_sig.S}. *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
