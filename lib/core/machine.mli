(** The simulated machine: one virtual address space ("one run") wired to
    the NVM device, the timing model and the runtime state that the
    pointer representations need.

    A machine bundles:
    - a {!Nvmpi_memsim.Memsim.t} address space with the NV space mapped
      per a {!Nvmpi_addr.Layout.t};
    - a {!Nvmpi_cachesim.Timing.t} cycle model attached to it;
    - a {!Nvmpi_nvregion.Manager.t} that opens NVRegions from a shared
      {!Nvmpi_nvregion.Store.t} at randomized segments;
    - the RIV lookup tables ({!Nvspace}), populated on region open;
    - the fat-pointer runtime ({!Fat_table}: ID-to-base hashtable and
      base-sorted region list, both living in simulated DRAM);
    - the one-entry fat-pointer cache ([lastID]/[lastAddr] globals in
      simulated DRAM) and the based-pointer base register.

    Creating a second machine over the same store and re-opening the
    regions models a new run in which every region lands at a different
    virtual address. *)

(** Indices into the machine's staged counter-cell table; see {!cell}.
    One constant per hot-path counter name. *)
module Cell : sig
  val normal_stores : int
  val normal_loads : int
  val off_holder_stores : int
  val off_holder_loads : int
  val riv_stores : int
  val riv_loads : int
  val fat_stores : int
  val fat_loads : int
  val fat_cached_stores : int
  val fat_cached_loads : int
  val fat_cache_hits : int
  val fat_cache_misses : int
  val based_stores : int
  val based_loads : int
  val swizzle_stores : int
  val swizzle_loads : int
  val swizzle_packed_stores : int
  val swizzle_swizzled : int
  val swizzle_unswizzled : int
  val packed_fat_stores : int
  val packed_fat_loads : int
  val hw_oid_stores : int
  val hw_oid_loads : int
  val dur_traversal_loads : int
  val dur_window_flushes : int
  val dur_helper_flushes : int
  val dur_marks_set : int
  val dur_marks_cleared : int
  val slots : int
end

type t = {
  layout : Nvmpi_addr.Layout.t;
  mem : Nvmpi_memsim.Memsim.t;
  clock : Nvmpi_cachesim.Clock.t;
  timing : Nvmpi_cachesim.Timing.t;
  manager : Nvmpi_nvregion.Manager.t;
  nvspace : Nvspace.t;
  fat : Fat_table.t;
  metrics : Nvmpi_obs.Metrics.t;
      (** the machine-wide counter registry every layer reports into;
          catalogue in [docs/METRICS.md] *)
  cells : Nvmpi_obs.Metrics.Handle.t array;
      (** lazily resolved counter handles, indexed by {!Cell} constants;
          use {!bump}/{!cell}, never index directly *)
  mutable based_base : Nvmpi_addr.Kinds.Vaddr.t;
      (** base register for based pointers; {!Nvmpi_addr.Kinds.Vaddr.null}
          = unset *)
  mutable crash_hook : (unit -> unit) option;
      (** materializes a power failure on this machine: reverts every
          tracked region to its durable bytes and cold-starts the caches.
          Installed by [Nvmpi_faultsim.Tracker.attach]; [None] (the
          default) means no durability tracker is attached and
          [Tx.simulate_crash] conservatively leaves memory as-is. *)
  mutable dram_cursor : int;
  dram_limit : int;
}

exception
  Cross_region_store of {
    holder : Nvmpi_addr.Kinds.Vaddr.t;
    target : Nvmpi_addr.Kinds.Vaddr.t;
    repr : string;
  }
(** Raised when an intra-region-only representation (off-holder, based)
    is asked to store a pointer whose target lives in a different region
    than the holder. *)

val create :
  ?layout:Nvmpi_addr.Layout.t ->
  ?cfg:Nvmpi_cachesim.Timing_config.t ->
  ?metrics:Nvmpi_obs.Metrics.t ->
  ?seed:int ->
  store:Nvmpi_nvregion.Store.t ->
  unit ->
  t
(** A fresh address space over [store]. [seed] fixes region placement
    (tests); without it placement is randomized per machine. [metrics]
    lets several machines share one counter registry; by default each
    machine owns a fresh one. *)

(** {1 Regions} *)

val create_region : t -> size:int -> Nvmpi_addr.Kinds.Rid.t

val open_region :
  ?at_nvbase:Nvmpi_addr.Kinds.Seg.t ->
  t ->
  Nvmpi_addr.Kinds.Rid.t ->
  Nvmpi_nvregion.Region.t
(** Opens the region, places it at a (random) NV segment, and registers
    it with the RIV tables and the fat-pointer runtime. *)

val migrate_region :
  t -> Nvmpi_addr.Kinds.Rid.t -> size:int -> Nvmpi_nvregion.Region.t
(** Section 4.4's migration: grows the region's image to [size] bytes
    and remaps it (at a fresh segment). Only position-independent
    contents survive, which is the point: off-holder/RIV structures keep
    working after migration, absolute pointers would dangle.
    @raise Invalid_argument if [size] does not exceed the current size
    or exceeds a segment. *)

val remap_region :
  t -> Nvmpi_addr.Kinds.Rid.t -> Nvmpi_nvregion.Region.t
(** Closes the region (persisting its image) and reopens it at a fresh
    randomized NV segment, guaranteed different from the one it just
    vacated. Models "the region moved" within a single run — the
    adversarial event every position-independent representation must
    survive and absolute pointers must not. Preserves the based-pointer
    base register if it pointed at this region (retargeting it to the
    new base). Deterministic under a seeded machine.
    @raise Invalid_argument if the region is not open. *)

val close_region : t -> Nvmpi_addr.Kinds.Rid.t -> unit
(** Persists the image back to the store, unmaps the region, and drops
    it from the RIV tables, the fat runtime and — if it holds this
    region — the one-entry [lastID]/[lastAddr] fat-pointer cache (an
    unobserved bookkeeping write, like the manager's image copies). *)

val close_all : t -> unit
val region : t -> Nvmpi_addr.Kinds.Rid.t -> Nvmpi_nvregion.Region.t option
val region_exn : t -> Nvmpi_addr.Kinds.Rid.t -> Nvmpi_nvregion.Region.t

val region_of_addr :
  t -> Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_nvregion.Region.t option

val rid_of_addr_exn :
  t -> Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Rid.t
(** Region ID of the open region containing the address.
    @raise Invalid_argument if no open region contains it. *)

val set_based_region : t -> Nvmpi_addr.Kinds.Rid.t -> unit
(** Selects the region whose base the based-pointer representation uses
    as its (register-resident) base variable. *)

(** {1 Simulated DRAM} *)

val dram_alloc : t -> ?align:int -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Bump-allocates volatile simulated memory (never persisted). *)

val lastid_addr : t -> Nvmpi_addr.Kinds.Vaddr.t
val lastaddr_addr : t -> Nvmpi_addr.Kinds.Vaddr.t
(** DRAM addresses of the fat-pointer-cache globals. *)

(** {1 Shorthands} *)

val load64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val store64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
val alu : t -> int -> unit
val cycles : t -> int
val is_nvm : t -> Nvmpi_addr.Kinds.Vaddr.t -> bool

(** {1 Observability} *)

val metrics : t -> Nvmpi_obs.Metrics.t

val count : ?by:int -> t -> string -> unit
(** [count t name] bumps counter [name] in the machine's registry —
    the hook the pointer representations use to report events at the
    point of cost. *)

(** {1 Staged fast paths}

    The pre-resolved-counter and fused-access machinery behind the
    staged per-representation engines ({!Engine}). Observational
    contract: every entry point here is bit-for-bit equivalent to its
    generic counterpart ([count] / [load64] / [store64]) — same
    counters registered at the same moments, same cycles charged in the
    same order — it only skips host-side indirections (the string
    lookup, the observer closure). *)

val cell : t -> int -> string -> Nvmpi_obs.Metrics.Handle.t
(** [cell t i name] is the handle for counter [name] cached in cell
    slot [i] (a {!Cell} constant), resolving and registering it on
    first use. *)

val bump : t -> int -> string -> unit
(** [bump t i name] increments the counter behind cell slot [i] —
    the staged equivalent of [count t name]. *)

val load64_fast : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val store64_fast : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
(** Fused 64-bit accesses: when the machine's timing model is the sole
    enabled observer (the steady state — [create] attaches it as
    observer 0), the data access and the single-line cache charge are
    made directly, skipping the observer closure. Otherwise (durability
    tracker attached, or an [observed false] bookkeeping window) they
    fall back to the generic [load64]/[store64], so observer semantics
    and event order are preserved exactly. *)
