(** The implicit-self-contained pointer interface (Section 4.1).

    A representation is a pair of [store]/[load] operations over a
    {e holder} — the memory slot where the pointer value lives. Data
    structures are functorized over this signature, so the same list,
    tree, hash set and trie code runs under every representation.

    Conventions common to all representations:
    - a target address of [0] is the null pointer, and [load] returns
      [0] for a stored null;
    - [slot_size] is the number of bytes a stored pointer occupies
      (8 for every implicit self-contained representation as required by
      the concept's first condition, 16 for fat pointers);
    - [store]/[load] charge their conversion work to the machine's
      timing model: ALU operations explicitly, memory accesses through
      the cache simulator. *)

module type S = sig
  val name : string

  val slot_size : int
  (** Bytes occupied by a stored pointer. *)

  val cross_region : bool
  (** Whether the representation supports targets in a different
      NVRegion than the holder. *)

  val position_independent : bool
  (** Whether a stored pointer survives the region being remapped at a
      different base address. Normal pointers (and swizzled pointers in
      their in-memory form) are not position independent. *)

  val store :
    Machine.t ->
    holder:Nvmpi_addr.Kinds.Vaddr.t ->
    Nvmpi_addr.Kinds.Vaddr.t ->
    unit
  (** [store m ~holder target] writes a pointer to absolute address
      [target] into the slot at [holder] — Figure 8's encode on store:
      in-flight pointers are absolute ({!Nvmpi_addr.Kinds.Vaddr.t});
      only the slot holds the representation's encoded form.
      @raise Machine.Cross_region_store if the representation is
      intra-region-only ([cross_region = false]: off-holder and based)
      and [target] lies outside the holder's region. This is the {e one}
      sanctioned store exception — no representation signals the
      condition with an ad-hoc [Failure]/[Invalid_argument], so callers
      (the conformance harness in particular) can match on it precisely.
      The raise happens before any cycle is charged or counter bumped:
      a faulting store is observationally free. *)

  val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
  (** [load m ~holder] reads the slot and returns the absolute target
      address — Figure 8's decode on load ({!Nvmpi_addr.Kinds.Vaddr.null}
      for a stored null). *)
end
