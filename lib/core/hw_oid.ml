(** A hypothetical hardware-assisted representation, modelling the
    related work the paper contrasts with (Wang et al., MICRO 2017:
    hardware support for persistent-object address translation) and its
    own future-work note on combining the software methods with hardware
    support.

    Stored format is identical to RIV ([{region ID | offset}]); the
    difference is that the ID-to-base translation is performed by a
    dedicated hardware table, charged at a fixed {!translation_cycles}
    (a TLB-like hit) instead of a memory load through the cache
    hierarchy. Comparing it against RIV in the ablation benchmarks
    bounds how much headroom hardware support leaves over the paper's
    pure-software tables. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Riv = K.Riv

let name = "hw-oid"
let slot_size = 8
let cross_region = true
let position_independent = true

let translation_cycles = 2
(** Hardware translation-table hit latency. *)

(* The hardware table is backed by the same software state (the
   NV-space base table contents) so correctness is identical; only the
   charged cost differs. *)

let store m ~holder (target : Vaddr.t) =
  Machine.bump m Machine.Cell.hw_oid_stores "repr.hw-oid.stores";
  if Vaddr.is_null target then Machine.store64_fast m holder 0
  else begin
    let rid = Machine.rid_of_addr_exn m target in
    Machine.alu m translation_cycles;
    let v =
      K.riv_of_rid_off m.Machine.layout ~rid
        ~offset:(K.seg_offset m.Machine.layout target)
    in
    Machine.store64_fast m holder (v :> int)
  end

let load m ~holder =
  Machine.bump m Machine.Cell.hw_oid_loads "repr.hw-oid.loads";
  let v = Riv.v (Machine.load64_fast m holder) in
  if Riv.is_null v then Vaddr.null
  else begin
    Machine.alu m translation_cycles;
    let rid = K.rid_of_riv m.Machine.layout v in
    match Machine.region m rid with
    | Some r ->
        (* Figure 8's persistentX decode closing step, with the base
           produced by the hardware table instead of id2addr. *)
        K.vaddr_of_riv m.Machine.layout ~via:(Nvmpi_nvregion.Region.base r) v
    | None -> raise (Nvspace.Unknown_region { rid })
  end
