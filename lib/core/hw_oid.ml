(** A hypothetical hardware-assisted representation, modelling the
    related work the paper contrasts with (Wang et al., MICRO 2017:
    hardware support for persistent-object address translation) and its
    own future-work note on combining the software methods with hardware
    support.

    Stored format is identical to RIV ([{region ID | offset}]); the
    difference is that the ID-to-base translation is performed by a
    dedicated hardware table, charged at a fixed {!translation_cycles}
    (a TLB-like hit) instead of a memory load through the cache
    hierarchy. Comparing it against RIV in the ablation benchmarks
    bounds how much headroom hardware support leaves over the paper's
    pure-software tables. *)

module Layout = Nvmpi_addr.Layout

let name = "hw-oid"
let slot_size = 8
let cross_region = true
let position_independent = true

let translation_cycles = 2
(** Hardware translation-table hit latency. *)

(* The hardware table is backed by the same software state (the
   NV-space base table contents) so correctness is identical; only the
   charged cost differs. *)

let store m ~holder target =
  Machine.count m "repr.hw-oid.stores";
  if target = 0 then Machine.store64 m holder 0
  else begin
    let rid = Machine.rid_of_addr_exn m target in
    Machine.alu m translation_cycles;
    let v =
      Layout.riv_pack m.Machine.layout ~rid
        ~offset:(Layout.seg_offset m.Machine.layout target)
    in
    Machine.store64 m holder v
  end

let load m ~holder =
  Machine.count m "repr.hw-oid.loads";
  let v = Machine.load64 m holder in
  if v = 0 then 0
  else begin
    Machine.alu m translation_cycles;
    let rid = Layout.riv_rid m.Machine.layout v in
    match Machine.region m rid with
    | Some r ->
        Nvmpi_nvregion.Region.base r lor Layout.riv_offset m.Machine.layout v
    | None -> raise (Nvspace.Unknown_region { rid })
  end
