(** Registry of all pointer representations evaluated in the paper. *)

type kind =
  | Normal  (** absolute virtual addresses (baseline) *)
  | Off_holder  (** self-relative offsets (Section 4.2) *)
  | Riv  (** region ID in value (Section 4.3) *)
  | Fat  (** [{regionID; offset}] struct + hashtable *)
  | Fat_cached  (** fat pointer with [lastID]/[lastAddr] cache *)
  | Based  (** offset from a register-resident base variable *)
  | Swizzle  (** swizzled at load, unswizzled at close *)
  | Packed_fat
      (** the intro's strawman: RIV's packed format translated through
          the fat-pointer hashtable instead of direct-mapped tables *)
  | Hw_oid
      (** hypothetical hardware-assisted translation (related work:
          Wang et al., MICRO 2017), charged at a fixed TLB-like hit *)

let all = [ Normal; Off_holder; Riv; Fat; Fat_cached; Based; Swizzle;
            Packed_fat; Hw_oid ]

let to_string = function
  | Normal -> "normal"
  | Off_holder -> "off-holder"
  | Riv -> "riv"
  | Fat -> "fat"
  | Fat_cached -> "fat-cached"
  | Based -> "based"
  | Swizzle -> "swizzle"
  | Packed_fat -> "packed-fat"
  | Hw_oid -> "hw-oid"

let of_string = function
  | "normal" -> Some Normal
  | "off-holder" | "offholder" | "off_holder" -> Some Off_holder
  | "riv" -> Some Riv
  | "fat" -> Some Fat
  | "fat-cached" | "fat_cached" -> Some Fat_cached
  | "based" -> Some Based
  | "swizzle" | "swizzling" -> Some Swizzle
  | "packed-fat" | "packed_fat" -> Some Packed_fat
  | "hw-oid" | "hw_oid" -> Some Hw_oid
  | _ -> None

let pp ppf k = Format.pp_print_string ppf (to_string k)

let m : kind -> (module Repr_sig.S) = function
  | Normal -> (module Normal_ptr)
  | Off_holder -> (module Off_holder)
  | Riv -> (module Riv)
  | Fat -> (module Fat)
  | Fat_cached -> (module Fat_cached)
  | Based -> (module Based_ptr)
  | Swizzle -> (module Swizzle)
  | Packed_fat -> (module Packed_fat)
  | Hw_oid -> (module Hw_oid)

(* Per-kind attribute tables: direct matches compiling to constant
   loads, so callers that size slots or filter kinds per element (the
   experiment runner, the structures) never unpack a first-class module
   just to read a constant. Values restate each module's constants and
   are pinned to them by test_engine's registry check. *)
let slot_size = function
  | Fat | Fat_cached -> 16
  | Normal | Off_holder | Riv | Based | Swizzle | Packed_fat | Hw_oid -> 8

let cross_region = function
  | Off_holder | Based -> false
  | Normal | Riv | Fat | Fat_cached | Swizzle | Packed_fat | Hw_oid -> true

let position_independent = function
  | Normal | Swizzle -> false
  | Off_holder | Riv | Fat | Fat_cached | Based | Packed_fat | Hw_oid -> true

(** Representations whose persisted image survives remapping without any
    load-time pass. *)
let self_contained k = position_independent k

(** What a persisted slot means across an unmap/remap of its region:
    the applicability predicate the conformance harness keys trace
    generation on. *)
let remap_safety = function
  | Normal -> `Dangles
  | Swizzle -> `Via_passes
  | Off_holder | Riv | Fat | Fat_cached | Based | Packed_fat | Hw_oid ->
      `Self_contained

(** Implicit self-contained representations per Section 4.1: position
    independent, no larger than a normal pointer, usable like a normal
    pointer. *)
let implicit_self_contained k =
  position_independent k && slot_size k = 8
  && match k with Based -> false (* needs an external base variable *)
     | _ -> true
