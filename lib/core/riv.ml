(** Region-ID-in-Value (Section 4.3): the slot stores
    [{region ID | offset}] packed into one word. Conversions go through
    the direct-mapped RID and base tables maintained by {!Nvspace} —
    a few bit transformations plus one table load each way. Supports
    both intra- and cross-region targets. *)

module K = Nvmpi_addr.Kinds
module Riv = K.Riv

let name = "riv"
let slot_size = 8
let cross_region = true
let position_independent = true

(* Figure 8, persistentX encode (x = p): Nvspace.p2x is addr2id plus
   the Figure 5 packing. *)
let store m ~holder target =
  Machine.bump m Machine.Cell.riv_stores "repr.riv.stores";
  Machine.store64_fast m holder (Nvspace.p2x m.Machine.nvspace target :> int)

(* Figure 8, persistentX decode (p = x): Nvspace.x2p is the field
   extraction, id2addr and the final or. *)
let load m ~holder =
  Machine.bump m Machine.Cell.riv_loads "repr.riv.loads";
  Nvspace.x2p m.Machine.nvspace (Riv.v (Machine.load64_fast m holder))
