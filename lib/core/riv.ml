(** Region-ID-in-Value (Section 4.3): the slot stores
    [{region ID | offset}] packed into one word. Conversions go through
    the direct-mapped RID and base tables maintained by {!Nvspace} —
    a few bit transformations plus one table load each way. Supports
    both intra- and cross-region targets. *)

let name = "riv"
let slot_size = 8
let cross_region = true
let position_independent = true

let store m ~holder target =
  Machine.count m "repr.riv.stores";
  Machine.store64 m holder (Nvspace.p2x m.Machine.nvspace target)

let load m ~holder =
  Machine.count m "repr.riv.loads";
  Nvspace.x2p m.Machine.nvspace (Machine.load64 m holder)
