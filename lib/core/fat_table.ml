module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Layout = Nvmpi_addr.Layout
module Bitops = Nvmpi_addr.Bitops
module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Rid = K.Rid
module Metrics = Nvmpi_obs.Metrics

type t = {
  mem : Memsim.t;
  timing : Timing.t;
  layout : Layout.t;
  table_base : int;
  slots : int;
  list_base : int;
  list_cap : int;
  mutable count : int;
  mutable list_len : int;
  c_lookups : int ref;
  c_probe_loads : int ref;
  c_null_lookups : int ref;
  c_reverse_lookups : int ref;
  c_reverse_steps : int ref;
}

exception Unknown_region of { rid : Rid.t }
exception No_region_for_addr of { addr : Vaddr.t }

let empty_key = 0
let tombstone = -1

(* The hashtable lives behind a library entry point (PMEM.IO's
   pmemobj_direct and friends): a dereference pays the call, argument
   validation and hashing before the first probe. *)
let lookup_call_overhead = 62
let null_check_overhead = 2 (* OID_IS_NULL is an inlined two-field test *)
let reverse_call_overhead = 40

let create ~mem ~timing ~layout ~metrics ~table_base:(table_base : Vaddr.t)
    ~slots ~list_base:(list_base : Vaddr.t) ~list_cap =
  let table_base = (table_base :> int) and list_base = (list_base :> int) in
  if not (Bitops.is_pow2 slots) then invalid_arg "Fat_table.create: slots";
  { mem; timing; layout; table_base; slots; list_base; list_cap;
    count = 0; list_len = 0;
    c_lookups = Metrics.counter metrics "fat.lookups";
    c_probe_loads = Metrics.counter metrics "fat.probe_loads";
    c_null_lookups = Metrics.counter metrics "fat.null_lookups";
    c_reverse_lookups = Metrics.counter metrics "fat.reverse_lookups";
    c_reverse_steps = Metrics.counter metrics "fat.reverse_steps" }

let count t = t.count

(* Both structures live in simulated DRAM; slot indices become typed
   addresses here, at the point they hit the memory. *)
let slot_addr t i = Vaddr.v (t.table_base + (i * 16))
let list_addr t i = Vaddr.v (t.list_base + (i * 16))

(* Fibonacci hashing; charged as the handful of ALU ops a real hash
   function costs. *)
let hash t rid =
  Timing.alu t.timing 6;
  let h = rid * 0x2545F4914F6CDD1 in
  let h = h lxor (h lsr 29) in
  h land max_int land (t.slots - 1)

let put t ~rid:(rid : Rid.t) ~base:(base : Vaddr.t) =
  let rid = (rid :> int) and base = (base :> int) in
  if rid <= 0 then invalid_arg "Fat_table.put: bad rid";
  if t.count * 2 >= t.slots then failwith "Fat_table.put: table full";
  let rec probe i steps =
    if steps > t.slots then failwith "Fat_table.put: no slot"
    else
      let k = Memsim.load64 t.mem (slot_addr t i) in
      if k = empty_key || k = tombstone || k = rid then i
      else probe ((i + 1) land (t.slots - 1)) (steps + 1)
  in
  let i = probe (hash t rid) 0 in
  let fresh = Memsim.load64 t.mem (slot_addr t i) <> rid in
  Memsim.store64 t.mem (slot_addr t i) rid;
  Memsim.store64 t.mem (Vaddr.add (slot_addr t i) 8) base;
  if fresh then t.count <- t.count + 1;
  (* Sorted-by-base insertion into the region list. *)
  if t.list_len >= t.list_cap then failwith "Fat_table.put: region list full";
  let pos = ref t.list_len in
  (try
     for j = 0 to t.list_len - 1 do
       if Memsim.load64 t.mem (list_addr t j) > base then begin
         pos := j;
         raise Exit
       end
     done
   with Exit -> ());
  for j = t.list_len - 1 downto !pos do
    Memsim.store64 t.mem (list_addr t (j + 1)) (Memsim.load64 t.mem (list_addr t j));
    Memsim.store64 t.mem
      (Vaddr.add (list_addr t (j + 1)) 8)
      (Memsim.load64 t.mem (Vaddr.add (list_addr t j) 8))
  done;
  Memsim.store64 t.mem (list_addr t !pos) base;
  Memsim.store64 t.mem (Vaddr.add (list_addr t !pos) 8) rid;
  t.list_len <- t.list_len + 1

let remove t ~rid:(rid : Rid.t) =
  let rid = (rid :> int) in
  let rec probe i steps =
    if steps > t.slots then ()
    else
      let k = Memsim.load64 t.mem (slot_addr t i) in
      if k = rid then begin
        Memsim.store64 t.mem (slot_addr t i) tombstone;
        t.count <- t.count - 1
      end
      else if k = empty_key then ()
      else probe ((i + 1) land (t.slots - 1)) (steps + 1)
  in
  probe (hash t rid) 0;
  (* Delete from the region list. *)
  let pos = ref (-1) in
  for j = 0 to t.list_len - 1 do
    if !pos < 0 && Memsim.load64 t.mem (Vaddr.add (list_addr t j) 8) = rid then pos := j
  done;
  if !pos >= 0 then begin
    for j = !pos to t.list_len - 2 do
      Memsim.store64 t.mem (list_addr t j) (Memsim.load64 t.mem (list_addr t (j + 1)));
      Memsim.store64 t.mem (Vaddr.add (list_addr t j) 8)
        (Memsim.load64 t.mem (Vaddr.add (list_addr t (j + 1)) 8))
    done;
    t.list_len <- t.list_len - 1
  end

(* Fused table load (staged engine): same contract as Nvspace's —
   Fat_table is only constructed by [Machine.create], where [timing] is
   the memory's observer 0, so under [solo_observed] the fused load plus
   a direct single-line charge equals the generic observed load. Used
   on the hot read paths (probe loop, reverse binary search); the cold
   put/remove paths keep the generic accessors. *)
let[@inline] table_load64 t a =
  if Memsim.solo_observed t.mem then begin
    let v = Memsim.load64_fused t.mem a in
    Timing.access_line t.timing ~addr:(a : Vaddr.t :> int) ~write:false;
    v
  end
  else Memsim.load64 t.mem a

let charge_null_lookup t =
  incr t.c_null_lookups;
  Timing.alu t.timing null_check_overhead

let lookup t (rid : Rid.t) =
  incr t.c_lookups;
  Timing.alu t.timing lookup_call_overhead;
  let rec probe i steps =
    if steps > t.slots then raise (Unknown_region { rid })
    else begin
      Timing.alu t.timing 1;
      incr t.c_probe_loads;
      let k = table_load64 t (slot_addr t i) in
      if k = (rid :> int) then
        Vaddr.v (table_load64 t (Vaddr.add (slot_addr t i) 8))
      else if k = empty_key then raise (Unknown_region { rid })
      else probe ((i + 1) land (t.slots - 1)) (steps + 1)
    end
  in
  probe (hash t (rid :> int)) 0

let rid_of_addr t (a : Vaddr.t) =
  incr t.c_reverse_lookups;
  Timing.alu t.timing reverse_call_overhead;
  (* getBase (Figure 8's persistentX-encode helper) names the segment
     the binary search compares region bases against. *)
  let seg = (K.base_of_vaddr t.layout a :> int) in
  Timing.alu t.timing 1;
  let lo = ref 0 and hi = ref (t.list_len - 1) and found = ref (-1) in
  while !lo <= !hi && !found < 0 do
    incr t.c_reverse_steps;
    Timing.alu t.timing 2;
    let mid = (!lo + !hi) / 2 in
    let base = table_load64 t (list_addr t mid) in
    if base = seg then
      found := table_load64 t (Vaddr.add (list_addr t mid) 8)
    else if base < seg then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then raise (No_region_for_addr { addr = a })
  else Rid.v !found
