(** Pointer swizzling (Section 5): pointers persist in a packed
    position-independent form; a load-time pass converts every slot of a
    structure to an absolute address in place, and a closing pass
    converts them back. Between the passes, [load]/[store] behave like
    normal pointers — and the structure's on-NVM image is position
    {e dependent}, which is why a crash in that window is unrecoverable
    (see [examples/crash_recovery.ml]). The per-slot passes are driven
    by each data structure's walker. Satisfies {!Repr_sig.S}. *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Steady-state (swizzled) store: the absolute address. *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** Steady-state (swizzled) load. *)

val store_packed : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Writes the persisted (unswizzled) form directly. *)

val swizzle_slot : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** Converts the packed slot to an absolute address in place and
    returns that address ({!Nvmpi_addr.Kinds.Vaddr.null} for a stored
    null). *)

val unswizzle_slot : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** Converts the absolute slot back to packed form and returns the
    absolute target it held, so a walker can keep traversing. *)
