(** Fat pointers (Section 5): a two-word [{regionID; offset}] struct as
    in PMEM.IO/NV-Heaps; dereferences pay a hashtable lookup, stores a
    reverse region search. Satisfies {!Repr_sig.S} (with
    [slot_size = 16]). *)

val name : string
val slot_size : int
val cross_region : bool
val position_independent : bool

val store : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [store m ~holder target] encodes a pointer to [target] into the
    slot at [holder] ({!Nvmpi_addr.Kinds.Vaddr.null} stores null). *)

val store_into : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** The encoding behind {!store}, without the [repr.fat.stores] counter
    bump — shared with {!Fat_cached}, whose stores are identical. *)

val load : Machine.t -> holder:Nvmpi_addr.Kinds.Vaddr.t -> Nvmpi_addr.Kinds.Vaddr.t
(** [load m ~holder] decodes the slot and returns the absolute target
    address ({!Nvmpi_addr.Kinds.Vaddr.null} for null). *)
