(** Fat pointers (Section 5): a two-word [{regionID; offset}] struct, as
    used by PMEM.IO's PMEMoid and NV-Heaps' smart pointers. Every
    dereference pays a hashtable lookup from region ID to base address;
    every assignment pays a reverse search from address to region. *)

module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Rid = K.Rid

let name = "fat"
let slot_size = 16
let cross_region = true
let position_independent = true

(* The encoding shared with {!Fat_cached}: kept separate from [store]
   so each representation counts its own [repr.*.stores]. The shape is
   Figure 8's persistentX encode, but the address-to-ID step goes
   through the fat runtime's reverse search instead of the RID table. *)
let store_into m ~holder (target : Vaddr.t) =
  if Vaddr.is_null target then begin
    Machine.store64_fast m holder 0;
    Machine.store64_fast m (Vaddr.add holder 8) 0
  end
  else begin
    let rid = Fat_table.rid_of_addr m.Machine.fat target in
    Machine.alu m 1;
    let offset = K.seg_offset m.Machine.layout target in
    Machine.store64_fast m holder (rid :> int);
    Machine.store64_fast m (Vaddr.add holder 8) offset
  end

let store m ~holder target =
  Machine.bump m Machine.Cell.fat_stores "repr.fat.stores";
  store_into m ~holder target

let load m ~holder =
  Machine.bump m Machine.Cell.fat_loads "repr.fat.loads";
  let rid = Machine.load64_fast m holder in
  if rid = 0 then begin
    Fat_table.charge_null_lookup m.Machine.fat;
    Vaddr.null
  end
  else begin
    let offset = Machine.load64_fast m (Vaddr.add holder 8) in
    let base = Fat_table.lookup m.Machine.fat (Rid.v rid) in
    Machine.alu m 1;
    Vaddr.add base offset
  end
