(** The experiment runner: builds a fresh simulated machine per
    configuration, populates the chosen structure under the chosen
    pointer representation, and measures the workload in simulated
    cycles.

    Workload timing follows the paper's methodology: population is
    excluded; the measured phase is [traversals] full walks plus
    [searches] random lookups. For the swizzle representation the
    measured phase additionally begins with the swizzling pass and ends
    with the unswizzling pass, since both are part of using a swizzled
    structure exactly once per open. *)

type mode = Nontx | Tx

type config = {
  structure : Instance.structure;
  repr : Core.Repr.kind;
  elems : int;
  payload : int;  (** payload bytes per element *)
  regions : int;  (** elements are striped round-robin across regions *)
  mode : mode;
  traversals : int;
  searches : int;
  seed : int;
  timing : Nvmpi_cachesim.Timing_config.t;  (** machine timing parameters *)
  cold : bool;
      (** invalidate all caches between population and measurement,
          modelling a freshly mapped region whose contents only exist in
          NVM *)
}

val default : config
(** list / normal / 10000 elements / 32-byte payload / 1 region /
    non-transactional / 10 traversals / 0 searches / seed 42. *)

type measurement = {
  config : config;
  populate_cycles : int;
  measured_cycles : int;
  per_op : float;  (** measured cycles per traversal (or per search) *)
  nodes : int;  (** nodes visited by one traversal *)
  checksum : int;  (** traversal checksum (representation-invariant) *)
  counters : (string * int) list;
      (** machine metric deltas ({!Core.Metrics.diff}) over the measured
          phase only — population is excluded, like [measured_cycles].
          Sorted by counter name; zero deltas omitted. See
          [docs/METRICS.md] for the counter catalogue. *)
  machine : Core.Machine.t;
      (** the machine the experiment ran on, for post-run inspection
          (RIV phase counters, cache statistics) *)
}

val run : config -> measurement
(** Runs one configuration on a fresh machine.
    @raise Invalid_argument for inapplicable combinations (off-holder or
    based pointers with [regions > 1]). *)

val slowdown : config -> measurement * float
(** Runs the configuration and its normal-pointer baseline; returns the
    measurement and the ratio of measured cycles. Fails if the two
    traversal checksums disagree (which would mean a representation
    corrupted the structure). *)

val applicable : Core.Repr.kind -> regions:int -> bool
(** Whether a representation supports the given region count. *)
