(** Deterministic workload generators for the evaluation experiments. *)

val keys : n:int -> seed:int -> int array
(** [n] distinct positive keys in pseudo-random order. *)

val shuffle : 'a array -> seed:int -> 'a array
(** A shuffled copy. *)

val search_sample : keys:int array -> n:int -> seed:int -> int array
(** [n] keys drawn uniformly (with replacement) from [keys] — the
    random-search workload of Section 6.3. *)

val trie_words : n:int -> seed:int -> string array
(** [n] distinct lowercase words for populating tries. *)

val word_key : string -> int
(** Injective word-to-key encoding (re-exported from
    {!Nvmpi_apps.Wordcount}). *)

val key_word : int -> string
(** Total injective mapping from positive keys to lowercase words (the
    key's base-26 digit string); used to drive tries with integer
    workloads. Not the inverse of {!word_key}. *)
