(** Uniform handle over any (data structure, pointer representation)
    pair, so the experiment runner can sweep both dimensions without
    knowing the concrete functor instantiations.

    Integer keys drive every structure; the trie converts them to words
    through the injective encoding of {!Workload.key_word}. *)

type structure = List | Btree | Hashset | Trie | Dllist | Graph | Bplus

val structures : structure list
(** The paper's four evaluated structures. *)

val extension_structures : structure list
(** The additional structures this library ships: doubly linked list,
    directed graph, B+ tree. *)

val structure_name : structure -> string
val structure_of_string : string -> structure option

val default_buckets : int
(** Bucket count used for hash-set instances (512). *)

type t = {
  insert : int -> unit;
  remove : int -> bool;
      (** [true] if the key was present; always [false] for structures
          without an integer-keyed removal API (trie, graph) *)
  traverse : unit -> int * int;  (** (nodes visited, checksum) *)
  search : int -> bool;
  swizzle : unit -> unit;  (** swizzle-representation instances only *)
  unswizzle : unit -> unit;
}

val create :
  structure -> Core.Repr.kind -> Nvmpi_structures.Node.t -> name:string -> t
(** Creates an empty structure anchored at root [name]. *)

val attach :
  structure -> Core.Repr.kind -> Nvmpi_structures.Node.t -> name:string -> t
(** Re-opens a structure created earlier (possibly in another run). *)
