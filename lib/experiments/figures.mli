(** One harness per table/figure of the paper's evaluation (Section 6).

    Every function runs the corresponding experiment on the simulated
    machine and renders a table of measured slowdowns next to the
    paper's reported values. [scale] shrinks element counts for quick
    runs; [1.0] reproduces the paper's sizes (10 000 elements; the
    wordcount defaults are scaled down from the paper's 1M/2M words —
    pass [wordcount_full:true] for the full sizes). [seed] overrides the
    workload seed (default {!Runner.default}'s 42; the wordcount app
    uses its own fixed machine seed unless overridden).

    Alongside the rendered rows, every table carries machine-readable
    [records]: one JSON object per measured row holding raw cycle
    counts, the baseline they are normalized to, and the
    {!Runner.measurement.counters} breakdown. [bench/main.exe --json]
    serializes them and [check] mode regresses against them; the schema
    is documented in [docs/METRICS.md].

    The paper's numbers come from PMEP hardware; ours from a cache/cycle
    model, so the claim being reproduced is the {e shape}: which method
    wins, by roughly what factor, and where the crossovers fall. *)

val slowdowns :
  ?swizzle_single_use:bool ->
  Runner.config ->
  Core.Repr.kind list ->
  Runner.measurement
  * (Core.Repr.kind * (Runner.measurement * Runner.measurement) option) list
(** Runs one configuration under each representation against a shared
    normal-pointer baseline. Returns the baseline measurement and, per
    representation, [Some (measurement, baseline)] — the baseline being
    the measurement the slowdown is computed against — or [None] for
    representations inapplicable to the configuration
    (intra-region-only methods with several regions). Verifies every
    representation reproduces the baseline's traversal checksum.

    With [swizzle_single_use] (Figure 12's setting), the swizzle
    representation is measured at one use — swizzle + 1 traversal +
    unswizzle against 1 normal traversal — regardless of the config's
    traversal count (its returned baseline is then the 1-traversal
    normal run, not the shared one); Table 1 keeps the default and
    sweeps the amortization instead. *)

val ratio : Runner.measurement -> Runner.measurement -> float
(** [ratio m b] is [m]'s measured cycles over [b]'s: the slowdown. *)

val value :
  (Runner.measurement * Runner.measurement) option -> float option
(** The slowdown of one {!slowdowns} result cell, when applicable. *)

val cell_json :
  ?baseline:Runner.measurement ->
  label:string ->
  Runner.measurement ->
  Core.Json.t
(** One record cell: [{label; cycles; baseline_cycles?; slowdown?;
    counters}]. *)

val row_json : row:string -> Core.Json.t list -> Core.Json.t
(** One table record: [{row; cells}]. *)

val sweep_record :
  row:string ->
  Runner.measurement
  * (Core.Repr.kind * (Runner.measurement * Runner.measurement) option) list ->
  Core.Json.t
(** The standard record for one {!slowdowns} row: a ["normal"] baseline
    cell followed by one cell per applicable representation. *)

val fig12 : ?scale:float -> ?seed:int -> unit -> Table.t
(** Figure 12: non-transactional traversal slowdowns, one NVRegion,
    32-byte payload, for the four data structures. *)

val payload_sweep : ?scale:float -> ?seed:int -> unit -> Table.t
(** Section 6.2's payload experiment: average slowdown per method at 32-
    and 256-byte payloads. Records carry the per-structure runs the
    rendered averages are taken over. *)

val table1 : ?scale:float -> ?seed:int -> unit -> Table.t
(** Table 1: pointer-swizzling overhead after 1, 10 and 100 traversals.
    One record per (structure, traversal-count) run. *)

val fig13 : ?scale:float -> ?seed:int -> unit -> Table.t
(** Figure 13: transactional (PMEM.IO-like object store), one NVRegion,
    traversal and random-search workloads. *)

val fig14 : ?scale:float -> ?seed:int -> unit -> Table.t
(** Figure 14: transactional, elements striped over 10 NVRegions. *)

val regions_sweep : ?scale:float -> ?seed:int -> unit -> Table.t
(** Section 6.3's region-count sweep (2/4/8/10 regions). *)

val wordcount_run :
  ?seed:int ->
  repr:Core.Repr.kind ->
  nwords:int ->
  vocab:int ->
  unit ->
  Nvmpi_apps.Wordcount.result * int * (string * int) list
(** One wordcount execution: the distinct/total word summary, its cost
    in simulated cycles, and the metric deltas over the counting
    phase. *)

val fig15 : ?scale:float -> ?seed:int -> ?full:bool -> unit -> Table.t
(** Figure 15: wordcount execution times at two input sizes.
    [full] uses the paper's 1M/2M-word inputs (slow). *)

val breakdown : ?scale:float -> ?seed:int -> unit -> Table.t
(** Section 6.2's RIV read-cost breakdown: share of cycles spent
    extracting fields, computing the base address, and finishing the
    read. Its record carries the absolute per-phase cycle counts. *)

val all : ?scale:float -> ?seed:int -> ?wordcount_full:bool -> unit -> Table.t list
(** Every experiment, in paper order. *)
