(** One harness per table/figure of the paper's evaluation (Section 6).

    Every function runs the corresponding experiment on the simulated
    machine and renders a table of measured slowdowns next to the
    paper's reported values. [scale] shrinks element counts for quick
    runs; [1.0] reproduces the paper's sizes (10 000 elements; the
    wordcount defaults are scaled down from the paper's 1M/2M words —
    pass [wordcount_full:true] for the full sizes).

    The paper's numbers come from PMEP hardware; ours from a cache/cycle
    model, so the claim being reproduced is the {e shape}: which method
    wins, by roughly what factor, and where the crossovers fall. *)

val slowdowns :
  ?swizzle_single_use:bool ->
  Runner.config -> Core.Repr.kind list -> (Core.Repr.kind * float option) list
(** Runs one configuration under each representation against a shared
    normal-pointer baseline; [None] marks representations inapplicable
    to the configuration (intra-region-only methods with several
    regions). Verifies every representation reproduces the baseline's
    traversal checksum.

    With [swizzle_single_use] (Figure 12's setting), the swizzle
    representation is measured at one use — swizzle + 1 traversal +
    unswizzle against 1 normal traversal — regardless of the config's
    traversal count; Table 1 keeps the default and sweeps the
    amortization instead. *)

val fig12 : ?scale:float -> unit -> Table.t
(** Figure 12: non-transactional traversal slowdowns, one NVRegion,
    32-byte payload, for the four data structures. *)

val payload_sweep : ?scale:float -> unit -> Table.t
(** Section 6.2's payload experiment: average slowdown per method at 32-
    and 256-byte payloads. *)

val table1 : ?scale:float -> unit -> Table.t
(** Table 1: pointer-swizzling overhead after 1, 10 and 100 traversals. *)

val fig13 : ?scale:float -> unit -> Table.t
(** Figure 13: transactional (PMEM.IO-like object store), one NVRegion,
    traversal and random-search workloads. *)

val fig14 : ?scale:float -> unit -> Table.t
(** Figure 14: transactional, elements striped over 10 NVRegions. *)

val regions_sweep : ?scale:float -> unit -> Table.t
(** Section 6.3's region-count sweep (2/4/8/10 regions). *)

val fig15 : ?scale:float -> ?full:bool -> unit -> Table.t
(** Figure 15: wordcount execution times at two input sizes.
    [full] uses the paper's 1M/2M-word inputs (slow). *)

val breakdown : ?scale:float -> unit -> Table.t
(** Section 6.2's RIV read-cost breakdown: share of cycles spent
    extracting fields, computing the base address, and finishing the
    read. *)

val all : ?scale:float -> ?wordcount_full:bool -> unit -> Table.t list
(** Every experiment, in paper order. *)
