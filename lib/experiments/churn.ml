module Machine = Core.Machine
module Repr = Core.Repr
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Store = Nvmpi_nvregion.Store
module Objstore = Nvmpi_tx.Objstore
module Kvstore = Nvmpi_apps.Kvstore
module Zipf = Nvmpi_server.Zipf

(* Allocator churn under every pointer representation: a zipfian-keyed
   kvstore whose values cycle through the palloc size classes (and into
   the large path), with periodic deletes, so value blocks are freed,
   split and reallocated all run long. Reported per representation —
   allocator placement interacts with each encoding's reach (off-holder
   locality vs RIV cross-region form) — alongside the alloc.* counter
   family the run generated.

   This experiment is additive: it never appears in the committed bench
   baseline (check only re-runs experiments its snapshot records), and
   it is the one Suite entry that runs the object store on the palloc
   backend — the pinned figures stay on the freelist. *)

let keys = 64
let theta = 0.9
let value_sizes = [| 24; 120; 480; 1500; 6000 |]
let delete_every = 9

let counter_cols =
  [
    "alloc.allocs";
    "alloc.frees";
    "alloc.splits";
    "alloc.slab_refills";
    "alloc.frag_bytes";
  ]

let scaled scale n = max 200 (int_of_float (float_of_int n *. scale))

let value_for ~key ~op ~len =
  let base = Printf.sprintf "k%d.op%d." key op in
  let n = String.length base in
  if n >= len then String.sub base 0 len else base ^ String.make (len - n) 'x'

let run_repr ~ops ~seed repr =
  let store = Store.create () in
  (* Same placement seed for every representation: identical region
     draws, identical request stream — apples-to-apples. *)
  let machine = Machine.create ~seed ~store () in
  let rid = Machine.create_region machine ~size:(1 lsl 20) in
  let region = Machine.open_region machine rid in
  if repr = Repr.Based then Machine.set_based_region machine rid;
  let os = Objstore.create machine region () in
  let kv = Kvstore.create os ~repr ~name:"churn" ~buckets:64 () in
  for key = 1 to keys do
    Kvstore.put kv ~key (value_for ~key ~op:0 ~len:24)
  done;
  let metrics = Machine.metrics machine in
  let before = Metrics.snapshot metrics in
  let c0 = Machine.cycles machine in
  let rng = Random.State.make [| seed; 0xC4A9 |] in
  let z = Zipf.v ~n:keys ~theta in
  for op = 1 to ops do
    let key = 1 + Zipf.next z rng in
    if op mod delete_every = 0 then ignore (Kvstore.delete kv ~key)
    else
      let len = value_sizes.(op mod Array.length value_sizes) in
      Kvstore.put kv ~key (value_for ~key ~op ~len)
  done;
  let cycles = Machine.cycles machine - c0 in
  let counters = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  (* The heap must still be coherent after the storm. *)
  Objstore.heap_check os;
  (cycles, counters)

let table ?(scale = 1.0) ?seed () =
  let seed = Option.value seed ~default:11 in
  let ops = scaled scale 4000 in
  let rows, records =
    List.split
      (List.map
         (fun repr ->
           let cycles, counters = run_repr ~ops ~seed repr in
           let col name =
             string_of_int (Option.value ~default:0 (List.assoc_opt name counters))
           in
           let name = Repr.to_string repr in
           let cell =
             Json.Obj
               [
                 ("label", Json.String name);
                 ("cycles", Json.Int cycles);
                 ("counters", Metrics.json_of_counters counters);
               ]
           in
           ( name :: string_of_int cycles :: List.map col counter_cols,
             Json.Obj
               [ ("row", Json.String name); ("cells", Json.List [ cell ]) ] ))
         Repr.all)
  in
  {
    Table.title =
      "Churn: zipfian-keyed kvstore with value-size churn and deletes on \
       the palloc heap";
    header = "repr" :: "cycles" :: counter_cols;
    rows;
    notes =
      [
        Printf.sprintf
          "%d ops over %d keys (theta %g), values cycle %s bytes, every \
           %dth op deletes; palloc-backed object store"
          ops keys theta
          (String.concat "/"
             (Array.to_list (Array.map string_of_int value_sizes)))
          delete_every;
      ];
    records;
  }
