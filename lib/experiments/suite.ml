module Json = Nvmpi_obs.Json

let schema_version = 2

(* v1 snapshots differ from v2 only by the optional "wall" section, which
   the cycle check never reads, so both remain checkable. *)
let readable_versions = [ 1; 2 ]

type params = { scale : float; seed : int option; wordcount_full : bool }

let default = { scale = 1.0; seed = None; wordcount_full = false }

let experiments =
  [
    ( "fig12",
      fun p -> [ Figures.fig12 ~scale:p.scale ?seed:p.seed () ] );
    ( "payload",
      fun p -> [ Figures.payload_sweep ~scale:p.scale ?seed:p.seed () ] );
    ( "table1",
      fun p -> [ Figures.table1 ~scale:p.scale ?seed:p.seed () ] );
    ( "fig13",
      fun p -> [ Figures.fig13 ~scale:p.scale ?seed:p.seed () ] );
    ( "fig14",
      fun p -> [ Figures.fig14 ~scale:p.scale ?seed:p.seed () ] );
    ( "regions",
      fun p -> [ Figures.regions_sweep ~scale:p.scale ?seed:p.seed () ] );
    ( "fig15",
      fun p ->
        [ Figures.fig15 ~scale:p.scale ?seed:p.seed ~full:p.wordcount_full () ]
    );
    ( "breakdown",
      fun p -> [ Figures.breakdown ~scale:p.scale ?seed:p.seed () ] );
    ( "ablations",
      fun p -> Ablations.all ~scale:p.scale ?seed:p.seed () );
    ( "churn",
      fun p -> [ Churn.table ~scale:p.scale ?seed:p.seed () ] );
    ( "durset",
      fun p -> [ Durset.table ~scale:p.scale ?seed:p.seed () ] );
    ( "snapshot",
      fun p -> [ Snapexp.table ~scale:p.scale ?seed:p.seed () ] );
  ]

let names = List.map fst experiments
let mem name = List.mem_assoc name experiments

type result = { name : string; tables : Table.t list; wall_ns : int }

let run p name =
  match List.assoc_opt name experiments with
  | Some f ->
      let tables, wall_ns = Nvmpi_parsweep.Wall.time (fun () -> f p) in
      { name; tables; wall_ns }
  | None -> invalid_arg (Printf.sprintf "Suite.run: unknown experiment %S" name)

(* Experiments build private machines and metrics registries, so they can
   run on separate domains; results come back in request order either way. *)
let run_all ?(jobs = 1) p names =
  if jobs <= 1 then List.map (run p) names
  else
    Nvmpi_parsweep.Pool.map ~jobs
      (List.map (fun name () -> run p name) names)

(* Snapshot (de)serialization -------------------------------------- *)

let params_to_json p =
  Json.Obj
    [
      ("scale", Json.Float p.scale);
      ("seed", (match p.seed with Some s -> Json.Int s | None -> Json.Null));
      ("wordcount_full", Json.Bool p.wordcount_full);
    ]

let snapshot_of ?(wall = false) ?(deref_ns = []) p results =
  let base =
    [
      ("schema_version", Json.Int schema_version);
      ("params", params_to_json p);
      ( "experiments",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.String r.name);
                   ("tables", Json.List (List.map Table.to_json r.tables));
                 ])
             results) );
    ]
  in
  (* Wall-clock is host noise, not simulated time: it lives in its own
     section, off by default, so snapshots stay byte-comparable and the
     cycle check below never sees it. *)
  let wall_section =
    if not wall then []
    else
      [
        ( "wall",
          Json.Obj
            ([
               ( "engine",
                 Json.String
                   (Core.Engine.mode_to_string (Core.Engine.mode ())) );
               ( "total_ns",
                 Json.Int
                   (List.fold_left (fun a r -> a + r.wall_ns) 0 results) );
               ( "experiments",
                 Json.List
                   (List.map
                      (fun r ->
                        Json.Obj
                          [
                            ("name", Json.String r.name);
                            ("wall_ns", Json.Int r.wall_ns);
                          ])
                      results) );
             ]
            @
            if deref_ns = [] then []
            else
              [
                ( "deref_ns_per_op",
                  Json.Obj
                    (List.map (fun (n, v) -> (n, Json.Float v)) deref_ns) );
              ]) );
      ]
  in
  Json.Obj (base @ wall_section)

let ( let* ) = Result.bind

let field name doc =
  match Json.member name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing field %S" name)

let params_of_json doc =
  let* params = field "params" doc in
  let* scale =
    let* v = field "scale" params in
    Option.to_result ~none:"snapshot: params.scale is not a number"
      (Json.as_float v)
  in
  let* seed =
    match Json.member "seed" params with
    | None | Some Json.Null -> Ok None
    | Some v ->
        Option.to_result ~none:"snapshot: params.seed is not an integer"
          (Option.map Option.some (Json.as_int v))
  in
  let* wordcount_full =
    match Json.member "wordcount_full" params with
    | None -> Ok false
    | Some v ->
        Option.to_result ~none:"snapshot: params.wordcount_full is not a bool"
          (Json.as_bool v)
  in
  Ok { scale; seed; wordcount_full }

let check_version doc =
  let* v = field "schema_version" doc in
  match Json.as_int v with
  | Some v when List.mem v readable_versions -> Ok ()
  | Some v ->
      Error
        (Printf.sprintf "snapshot: schema_version %d, this binary reads %s" v
           (String.concat ", "
              (List.map string_of_int readable_versions)))
  | None -> Error "snapshot: schema_version is not an integer"

let names_of_json doc =
  let* exps = field "experiments" doc in
  match Json.as_list exps with
  | None -> Error "snapshot: experiments is not a list"
  | Some exps ->
      let names =
        List.filter_map
          (fun e ->
            Option.bind (Json.member "name" e) Json.as_string)
          exps
      in
      if List.length names = List.length exps then Ok names
      else Error "snapshot: an experiment entry has no name"

(* Regression check -------------------------------------------------- *)

(* Every record cell carrying a "cycles" number, keyed by
   experiment / table title / record row / cell label. *)
let index_cells doc =
  let* () = check_version doc in
  let* exps = field "experiments" doc in
  let* exps =
    Option.to_result ~none:"snapshot: experiments is not a list"
      (Json.as_list exps)
  in
  let cells = ref [] in
  List.iter
    (fun e ->
      let ename =
        Option.value ~default:"?"
          (Option.bind (Json.member "name" e) Json.as_string)
      in
      let tables =
        Option.value ~default:[]
          (Option.bind (Json.member "tables" e) Json.as_list)
      in
      List.iter
        (fun t ->
          let title =
            Option.value ~default:"?"
              (Option.bind (Json.member "title" t) Json.as_string)
          in
          let records =
            Option.value ~default:[]
              (Option.bind (Json.member "records" t) Json.as_list)
          in
          List.iter
            (fun r ->
              let row =
                Option.value ~default:"?"
                  (Option.bind (Json.member "row" r) Json.as_string)
              in
              let rcells =
                Option.value ~default:[]
                  (Option.bind (Json.member "cells" r) Json.as_list)
              in
              List.iter
                (fun c ->
                  match
                    ( Option.bind (Json.member "label" c) Json.as_string,
                      Option.bind (Json.member "cycles" c) Json.as_int )
                  with
                  | Some label, Some cycles ->
                      let key =
                        Printf.sprintf "%s / %s / %s / %s" ename title row
                          label
                      in
                      cells := (key, cycles) :: !cells
                  | _ -> ())
                rcells)
            records)
        tables)
    exps;
  Ok (List.rev !cells)

type mismatch = { key : string; baseline : int; fresh : int option }

let pp_mismatch m =
  match m.fresh with
  | None ->
      Printf.sprintf "MISSING  %s: in baseline (%d cycles) but not in this run"
        m.key m.baseline
  | Some fresh ->
      let pct =
        100.0
        *. (float_of_int fresh -. float_of_int m.baseline)
        /. float_of_int m.baseline
      in
      Printf.sprintf "%s %s: %d -> %d cycles (%+.1f%%)"
        (if fresh > m.baseline then "SLOWER  " else "FASTER  ")
        m.key m.baseline fresh pct

let check ?(tolerance = 0.10) ~baseline ~fresh () =
  let* base_cells = index_cells baseline in
  let* fresh_cells = index_cells fresh in
  let tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) fresh_cells;
  let mismatches =
    List.filter_map
      (fun (key, baseline) ->
        match Hashtbl.find_opt tbl key with
        | None -> Some { key; baseline; fresh = None }
        | Some fresh ->
            if baseline = 0 then
              if fresh = 0 then None else Some { key; baseline; fresh = Some fresh }
            else
              let dev =
                Float.abs (float_of_int fresh -. float_of_int baseline)
                /. float_of_int baseline
              in
              if dev > tolerance then Some { key; baseline; fresh = Some fresh }
              else None)
      base_cells
  in
  Ok (List.length base_cells, List.map pp_mismatch mismatches)
