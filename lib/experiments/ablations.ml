module Repr = Core.Repr
module Timing_config = Nvmpi_cachesim.Timing_config

let scaled scale n = max 100 (int_of_float (float_of_int n *. scale))

(* Shared slowdown runner against a per-structure normal baseline. *)
let sweep cfg reprs =
  Figures.slowdowns cfg reprs

let translation ?(scale = 1.0) () =
  let reprs = [ Repr.Hw_oid; Repr.Riv; Repr.Packed_fat; Repr.Fat ] in
  let rows =
    List.map
      (fun structure ->
        let cfg =
          {
            Runner.default with
            Runner.structure;
            elems = scaled scale 10_000;
            traversals = 10;
          }
        in
        Instance.structure_name structure
        :: List.map
             (fun (_, v) -> Table.cell_opt v)
             (sweep cfg reprs))
      Instance.structures
  in
  {
    Table.title =
      "Ablation: translation mechanism (same packed format, different \
       ID-to-base translation)";
    header = [ "structure"; "hw-oid (hypothetical)"; "riv (direct-mapped)";
               "packed-fat (hashtable)"; "fat (2-word + hashtable)" ];
    rows;
    notes =
      [
        "riv vs packed-fat isolates the direct-mapped tables; packed-fat \
         vs fat isolates the slot size";
        "hw-oid models hardware-assisted translation (Wang et al. 2017) at \
         a fixed 2-cycle table hit: the headroom left above RIV";
      ];
  }

let latency_sweep ?(scale = 1.0) () =
  let latencies = [ 150; 300; 600; 1200 ] in
  let reprs = [ Repr.Off_holder; Repr.Riv; Repr.Fat ] in
  let rows =
    List.map
      (fun nvm_read ->
        (* Cold caches + a single traversal: every node load actually
           reaches the emulated NVM. *)
        let cfg =
          {
            Runner.default with
            Runner.elems = scaled scale 10_000;
            traversals = 1;
            cold = true;
          }
        in
        let cfg =
          { cfg with
            Runner.timing =
              { Timing_config.default with Timing_config.nvm_read;
                nvm_write = 2 * nvm_read } }
        in
        string_of_int nvm_read
        :: List.map
             (fun (_, v) -> Table.cell_opt v)
             (Figures.slowdowns cfg reprs))
      latencies
  in
  {
    Table.title = "Ablation: sensitivity to emulated NVM read latency (cycles)";
    header = [ "nvm read lat"; "off-holder"; "riv"; "fat" ];
    rows;
    notes =
      [
        "cold-cache single traversal; NVM write latency follows at 2x the \
         read latency";
        "higher NVM latency shrinks every method's relative overhead, as \
         misses dominate";
      ];
  }

let cache_pressure ?(scale = 1.0) () =
  let sizes = [ 1_000; 10_000; 50_000 ] in
  let reprs = [ Repr.Off_holder; Repr.Riv; Repr.Fat ] in
  let rows =
    List.map
      (fun n ->
        let cfg =
          {
            Runner.default with
            Runner.elems = scaled scale n;
            traversals = 10;
          }
        in
        string_of_int (scaled scale n)
        :: List.map
             (fun (_, v) -> Table.cell_opt v)
             (Figures.slowdowns cfg reprs))
      sizes
  in
  {
    Table.title =
      "Ablation: working-set size (fat pointers double slot bytes, \
       spilling caches earlier)";
    header = [ "elements"; "off-holder"; "riv"; "fat" ];
    rows;
    notes = [ "list traversal, 32 B payload, single region" ];
  }

(* Where the cycles go: per-representation memory-system behaviour for
   one traversal workload. *)
let cache_stats ?(scale = 1.0) () =
  let module Timing = Nvmpi_cachesim.Timing in
  let module Cache_level = Nvmpi_cachesim.Cache_level in
  let reprs =
    [ Repr.Normal; Repr.Based; Repr.Off_holder; Repr.Riv; Repr.Fat ]
  in
  let rows =
    List.map
      (fun repr ->
        let cfg =
          {
            Runner.default with
            Runner.repr;
            elems = scaled scale 10_000;
            traversals = 10;
          }
        in
        let m = Runner.run cfg in
        let timing = m.Runner.machine.Core.Machine.timing in
        let rate c =
          let s = Cache_level.stats c in
          let total = s.Cache_level.hits + s.Cache_level.misses in
          if total = 0 then "-"
          else
            Printf.sprintf "%.1f%%"
              (100.0 *. float_of_int s.Cache_level.hits /. float_of_int total)
        in
        let ms = Timing.mem_stats timing in
        [
          Repr.to_string repr;
          rate (Timing.l1 timing);
          rate (Timing.l2 timing);
          rate (Timing.l3 timing);
          string_of_int ms.Timing.nvm_reads;
          string_of_int ms.Timing.alu_cycles;
          Printf.sprintf "%.0f" m.Runner.per_op;
        ])
      reprs
  in
  {
    Table.title = "Ablation: memory-system behaviour per representation \
                   (list traversal, measured phase only)";
    header =
      [ "repr"; "L1 hit"; "L2 hit"; "L3 hit"; "nvm reads"; "alu cycles";
        "cycles/traversal" ];
    rows;
    notes =
      [
        "fat pointers double slot bytes and add hashtable work: visible as \
         extra ALU cycles and lower hit rates";
      ];
  }

(* The Figure 12 experiment repeated on the structures this library adds
   beyond the paper's four. *)
let extension_structures ?(scale = 1.0) () =
  let reprs = [ Repr.Swizzle; Repr.Fat; Repr.Riv; Repr.Off_holder; Repr.Based ] in
  let rows =
    List.map
      (fun structure ->
        (* Vertex insertion scans the vertex registry, so graph
           population is quadratic in element count; 2000 vertices keep
           the populate phase tractable without changing the measured
           traversal shape. *)
        let elems =
          match structure with
          | Instance.Graph -> scaled scale 2_000
          | _ -> scaled scale 10_000
        in
        let cfg =
          { Runner.default with Runner.structure; elems; traversals = 10 }
        in
        Instance.structure_name structure
        :: List.map
             (fun (_, v) -> Table.cell_opt v)
             (Figures.slowdowns ~swizzle_single_use:true cfg reprs))
      Instance.extension_structures
  in
  {
    Table.title =
      "Extension structures: slowdown vs normal pointers (same setting as \
       Figure 12)";
    header =
      "structure" :: List.map Repr.to_string reprs;
    rows;
    notes =
      [
        "doubly linked list, directed graph (vertex chain) and B+ tree; \
         not part of the paper's evaluation";
      ];
  }

let all ?(scale = 1.0) () =
  [ translation ~scale (); latency_sweep ~scale (); cache_pressure ~scale ();
    cache_stats ~scale (); extension_structures ~scale () ]
