module Repr = Core.Repr
module Timing_config = Nvmpi_cachesim.Timing_config
module Json = Nvmpi_obs.Json

let scaled scale n = max 100 (int_of_float (float_of_int n *. scale))
let seeded seed cfg = match seed with None -> cfg | Some seed -> { cfg with Runner.seed }

(* Shared slowdown runner against a per-structure normal baseline. *)
let sweep cfg reprs = Figures.slowdowns cfg reprs

let cells results =
  List.map (fun (_, o) -> Table.cell_opt (Figures.value o)) results

let translation ?(scale = 1.0) ?seed () =
  let reprs = [ Repr.Hw_oid; Repr.Riv; Repr.Packed_fat; Repr.Fat ] in
  let rows, records =
    List.split
      (List.map
         (fun structure ->
           let cfg =
             seeded seed
               {
                 Runner.default with
                 Runner.structure;
                 elems = scaled scale 10_000;
                 traversals = 10;
               }
           in
           let (_, results) as run = sweep cfg reprs in
           let name = Instance.structure_name structure in
           (name :: cells results, Figures.sweep_record ~row:name run))
         Instance.structures)
  in
  {
    Table.title =
      "Ablation: translation mechanism (same packed format, different \
       ID-to-base translation)";
    header = [ "structure"; "hw-oid (hypothetical)"; "riv (direct-mapped)";
               "packed-fat (hashtable)"; "fat (2-word + hashtable)" ];
    rows;
    notes =
      [
        "riv vs packed-fat isolates the direct-mapped tables; packed-fat \
         vs fat isolates the slot size";
        "hw-oid models hardware-assisted translation (Wang et al. 2017) at \
         a fixed 2-cycle table hit: the headroom left above RIV";
      ];
    records;
  }

let latency_sweep ?(scale = 1.0) ?seed () =
  let latencies = [ 150; 300; 600; 1200 ] in
  let reprs = [ Repr.Off_holder; Repr.Riv; Repr.Fat ] in
  let rows, records =
    List.split
      (List.map
         (fun nvm_read ->
           (* Cold caches + a single traversal: every node load actually
              reaches the emulated NVM. *)
           let cfg =
             seeded seed
               {
                 Runner.default with
                 Runner.elems = scaled scale 10_000;
                 traversals = 1;
                 cold = true;
               }
           in
           let cfg =
             { cfg with
               Runner.timing =
                 { Timing_config.default with Timing_config.nvm_read;
                   nvm_write = 2 * nvm_read } }
           in
           let (_, results) as run = Figures.slowdowns cfg reprs in
           ( string_of_int nvm_read :: cells results,
             Figures.sweep_record
               ~row:(Printf.sprintf "nvm_read %d" nvm_read)
               run ))
         latencies)
  in
  {
    Table.title = "Ablation: sensitivity to emulated NVM read latency (cycles)";
    header = [ "nvm read lat"; "off-holder"; "riv"; "fat" ];
    rows;
    notes =
      [
        "cold-cache single traversal; NVM write latency follows at 2x the \
         read latency";
        "higher NVM latency shrinks every method's relative overhead, as \
         misses dominate";
      ];
    records;
  }

let cache_pressure ?(scale = 1.0) ?seed () =
  let sizes = [ 1_000; 10_000; 50_000 ] in
  let reprs = [ Repr.Off_holder; Repr.Riv; Repr.Fat ] in
  let rows, records =
    List.split
      (List.map
         (fun n ->
           let cfg =
             seeded seed
               {
                 Runner.default with
                 Runner.elems = scaled scale n;
                 traversals = 10;
               }
           in
           let (_, results) as run = Figures.slowdowns cfg reprs in
           let name = string_of_int (scaled scale n) in
           ( name :: cells results,
             Figures.sweep_record ~row:(name ^ " elements") run ))
         sizes)
  in
  {
    Table.title =
      "Ablation: working-set size (fat pointers double slot bytes, \
       spilling caches earlier)";
    header = [ "elements"; "off-holder"; "riv"; "fat" ];
    rows;
    notes = [ "list traversal, 32 B payload, single region" ];
    records;
  }

(* Where the cycles go: per-representation memory-system behaviour for
   one traversal workload. *)
let cache_stats ?(scale = 1.0) ?seed () =
  let module Timing = Nvmpi_cachesim.Timing in
  let module Cache_level = Nvmpi_cachesim.Cache_level in
  let reprs =
    [ Repr.Normal; Repr.Based; Repr.Off_holder; Repr.Riv; Repr.Fat ]
  in
  let rows, records =
    List.split
      (List.map
         (fun repr ->
           let cfg =
             seeded seed
               {
                 Runner.default with
                 Runner.repr;
                 elems = scaled scale 10_000;
                 traversals = 10;
               }
           in
           let m = Runner.run cfg in
           let timing = m.Runner.machine.Core.Machine.timing in
           let rate c =
             let s = Cache_level.stats c in
             let total = s.Cache_level.hits + s.Cache_level.misses in
             if total = 0 then "-"
             else
               Printf.sprintf "%.1f%%"
                 (100.0 *. float_of_int s.Cache_level.hits
                 /. float_of_int total)
           in
           let ms = Timing.mem_stats timing in
           ( [
               Repr.to_string repr;
               rate (Timing.l1 timing);
               rate (Timing.l2 timing);
               rate (Timing.l3 timing);
               string_of_int ms.Timing.nvm_reads;
               string_of_int ms.Timing.alu_cycles;
               Printf.sprintf "%.0f" m.Runner.per_op;
             ],
             Figures.row_json ~row:(Repr.to_string repr)
               [ Figures.cell_json ~label:(Repr.to_string repr) m ] ))
         reprs)
  in
  {
    Table.title = "Ablation: memory-system behaviour per representation \
                   (list traversal, measured phase only)";
    header =
      [ "repr"; "L1 hit"; "L2 hit"; "L3 hit"; "nvm reads"; "alu cycles";
        "cycles/traversal" ];
    rows;
    notes =
      [
        "fat pointers double slot bytes and add hashtable work: visible as \
         extra ALU cycles and lower hit rates";
      ];
    records;
  }

(* The Figure 12 experiment repeated on the structures this library adds
   beyond the paper's four. *)
let extension_structures ?(scale = 1.0) ?seed () =
  let reprs = [ Repr.Swizzle; Repr.Fat; Repr.Riv; Repr.Off_holder; Repr.Based ] in
  let rows, records =
    List.split
      (List.map
         (fun structure ->
           (* Vertex insertion scans the vertex registry, so graph
              population is quadratic in element count; 2000 vertices keep
              the populate phase tractable without changing the measured
              traversal shape. *)
           let elems =
             match structure with
             | Instance.Graph -> scaled scale 2_000
             | _ -> scaled scale 10_000
           in
           let cfg =
             seeded seed
               { Runner.default with Runner.structure; elems; traversals = 10 }
           in
           let (_, results) as run =
             Figures.slowdowns ~swizzle_single_use:true cfg reprs
           in
           let name = Instance.structure_name structure in
           (name :: cells results, Figures.sweep_record ~row:name run))
         Instance.extension_structures)
  in
  {
    Table.title =
      "Extension structures: slowdown vs normal pointers (same setting as \
       Figure 12)";
    header =
      "structure" :: List.map Repr.to_string reprs;
    rows;
    notes =
      [
        "doubly linked list, directed graph (vertex chain) and B+ tree; \
         not part of the paper's evaluation";
      ];
    records;
  }

let all ?(scale = 1.0) ?seed () =
  [ translation ~scale ?seed (); latency_sweep ~scale ?seed ();
    cache_pressure ~scale ?seed (); cache_stats ~scale ?seed ();
    extension_structures ~scale ?seed () ]
