module Machine = Core.Machine
module Repr = Core.Repr
module Store = Nvmpi_nvregion.Store
module Region = Nvmpi_nvregion.Region
module Clock = Nvmpi_cachesim.Clock
module Node = Nvmpi_structures.Node
module Objstore = Nvmpi_tx.Objstore

type mode = Nontx | Tx

type config = {
  structure : Instance.structure;
  repr : Repr.kind;
  elems : int;
  payload : int;
  regions : int;
  mode : mode;
  traversals : int;
  searches : int;
  seed : int;
  timing : Nvmpi_cachesim.Timing_config.t;
  cold : bool;  (* invalidate caches between populate and measurement *)
}

let default =
  {
    structure = Instance.List;
    repr = Repr.Normal;
    elems = 10_000;
    payload = 32;
    regions = 1;
    mode = Nontx;
    traversals = 10;
    searches = 0;
    seed = 42;
    timing = Nvmpi_cachesim.Timing_config.default;
    cold = false;
  }

type measurement = {
  config : config;
  populate_cycles : int;
  measured_cycles : int;
  per_op : float;
  nodes : int;
  checksum : int;
  counters : (string * int) list;
      (* metric deltas over the measured phase only (sorted by name) *)
  machine : Machine.t;
      (* kept so callers can inspect post-run state (RIV phase counters,
         cache statistics) *)
}

let applicable kind ~regions = regions <= 1 || Repr.cross_region kind

(* Upper bound on the bytes one element contributes, used to size
   regions. Trie keys expand to one node per letter (7 letters cover any
   30-bit key under the base-27 encoding). *)
let bytes_per_elem cfg =
  let slot = Repr.slot_size cfg.repr in
  let node =
    match cfg.structure with
    | Instance.List | Instance.Hashset -> slot + 8 + cfg.payload
    | Instance.Btree -> (2 * slot) + 8 + cfg.payload
    | Instance.Trie -> (26 * slot) + 8 + cfg.payload
    | Instance.Dllist -> (2 * slot) + 8 + cfg.payload
    | Instance.Graph ->
        (* vertex + one chain edge per element *)
        (4 * slot) + 8 + cfg.payload
    | Instance.Bplus ->
        (* interior fan-out amortizes; leaves dominate: ~2 words per key
           plus a share of node headers and child slots *)
        32 + (2 * slot)
  in
  let per_node =
    match cfg.mode with
    | Nontx -> node + 8 (* bump-allocator alignment slack *)
    | Tx ->
        (* Wrapped object rounded to 128 B + freelist block header. *)
        ((node + Objstore.header_bytes + Objstore.wrap_unit - 1)
         / Objstore.wrap_unit * Objstore.wrap_unit)
        + 16
  in
  let nodes_per_elem =
    match cfg.structure with Instance.Trie -> 8 | Instance.Bplus -> 2 | _ -> 1
  in
  per_node * nodes_per_elem

let region_size cfg =
  let payload_bytes = bytes_per_elem cfg * cfg.elems / cfg.regions in
  let fixed =
    65536
    + (Instance.default_buckets * 16)
    + (match cfg.mode with Tx -> 512 * 1024 | Nontx -> 0)
  in
  let size = (payload_bytes * 3 / 2) + fixed in
  (* Page-round for tidiness. *)
  (size + 4095) land lnot 4095

let setup cfg =
  if not (applicable cfg.repr ~regions:cfg.regions) then
    invalid_arg
      (Printf.sprintf "Runner: %s does not support %d regions"
         (Repr.to_string cfg.repr) cfg.regions);
  let store = Store.create () in
  let machine = Machine.create ~cfg:cfg.timing ~seed:cfg.seed ~store () in
  let size = region_size cfg in
  let regions =
    Array.init cfg.regions (fun _ ->
        Machine.open_region machine (Machine.create_region machine ~size))
  in
  let mode =
    match cfg.mode with
    | Nontx -> Node.Plain regions
    | Tx ->
        (* Pinned to the legacy freelist: the committed cycle baseline
           (BENCH_seed.json, checked at --tolerance 0) was captured with
           freelist object placement, and the measured phases are
           sensitive to where populate put the nodes. The palloc backend
           is exercised by the churn experiment, the server and the
           faultsim scenarios instead. *)
        Node.Wrapped
          (Array.map
             (fun r -> Objstore.create machine r ~heap:`Freelist ())
             regions)
  in
  if cfg.repr = Repr.Based then
    Machine.set_based_region machine (Region.rid regions.(0));
  let node = Node.make machine ~mode ~payload:cfg.payload in
  (machine, node)

let run cfg =
  let machine, node = setup cfg in
  let inst = Instance.create cfg.structure cfg.repr node ~name:"bench" in
  let keys = Workload.keys ~n:cfg.elems ~seed:cfg.seed in
  let clock = machine.Machine.clock in
  let populate_cycles =
    snd (Clock.delta clock (fun () -> Array.iter (fun k -> inst.Instance.insert k) keys))
  in
  (* A freshly opened swizzle structure starts in its persisted (packed)
     form: population ran in swizzled form, so unswizzle once, untimed. *)
  if cfg.repr = Repr.Swizzle then inst.Instance.unswizzle ();
  let searches = Workload.search_sample ~keys ~n:cfg.searches ~seed:cfg.seed in
  Core.Nvspace.reset_phases machine.Machine.nvspace;
  Nvmpi_cachesim.Timing.reset_stats machine.Machine.timing;
  if cfg.cold then
    Nvmpi_cachesim.Timing.invalidate_caches machine.Machine.timing;
  let nodes = ref 0 and checksum = ref 0 and found = ref 0 in
  let before = Core.Metrics.snapshot (Machine.metrics machine) in
  let (), measured_cycles =
    Clock.delta clock (fun () ->
        if cfg.repr = Repr.Swizzle then inst.Instance.swizzle ();
        for _ = 1 to cfg.traversals do
          let n, sum = inst.Instance.traverse () in
          nodes := n;
          checksum := sum
        done;
        Array.iter
          (fun k -> if inst.Instance.search k then incr found)
          searches;
        if cfg.repr = Repr.Swizzle then inst.Instance.unswizzle ())
  in
  let counters =
    Core.Metrics.diff ~before
      ~after:(Core.Metrics.snapshot (Machine.metrics machine))
  in
  if cfg.searches > 0 && !found <> cfg.searches then
    failwith "Runner.run: a search for an inserted key failed";
  let ops = max 1 (cfg.traversals + if cfg.traversals = 0 then cfg.searches else 0) in
  {
    config = cfg;
    populate_cycles;
    measured_cycles;
    per_op = float_of_int measured_cycles /. float_of_int ops;
    nodes = !nodes;
    checksum = !checksum;
    counters;
    machine;
  }

let slowdown cfg =
  let m = run cfg in
  let base = run { cfg with repr = Repr.Normal } in
  if cfg.traversals > 0 && m.checksum <> base.checksum then
    failwith
      (Printf.sprintf "Runner.slowdown: checksum mismatch (%s vs normal)"
         (Repr.to_string cfg.repr));
  (m, float_of_int m.measured_cycles /. float_of_int base.measured_cycles)
