module Repr = Core.Repr
module Clock = Nvmpi_cachesim.Clock
module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Store = Nvmpi_nvregion.Store
module Node = Nvmpi_structures.Node
module Wordcount = Nvmpi_apps.Wordcount
module Text_gen = Nvmpi_apps.Text_gen
module Json = Nvmpi_obs.Json

let scaled scale n = max 100 (int_of_float (float_of_int n *. scale))
let seeded seed cfg = match seed with None -> cfg | Some seed -> { cfg with Runner.seed }

let ratio m b =
  float_of_int m.Runner.measured_cycles /. float_of_int b.Runner.measured_cycles

(* Run one structure under a list of representations against a shared
   normal-pointer baseline, verifying that every representation produces
   the baseline's traversal checksum. Returns the baseline measurement
   and, per representation, the measurement paired with the baseline it
   is normalized to.

   Swizzling is measured at a single use (swizzle + 1 traversal +
   unswizzle against 1 normal traversal), matching the paper's Figure 12
   setting: "traversals ... are subject to 3-4X slowdowns with the use
   of swizzling at the loading time and unswizzling at the end"; its
   amortization over repeated traversals is Table 1's subject. *)
let slowdowns ?(swizzle_single_use = false) cfg reprs =
  let base = Runner.run { cfg with Runner.repr = Repr.Normal } in
  let swizzle_base =
    lazy
      (Runner.run { cfg with Runner.repr = Repr.Normal; traversals = 1 })
  in
  let results =
    List.map
      (fun repr ->
        if not (Runner.applicable repr ~regions:cfg.Runner.regions) then
          (repr, None)
        else if
          repr = Repr.Swizzle && swizzle_single_use && cfg.Runner.traversals > 1
        then begin
          let m =
            Runner.run { cfg with Runner.repr = repr; traversals = 1 }
          in
          (repr, Some (m, Lazy.force swizzle_base))
        end
        else begin
          let m = Runner.run { cfg with Runner.repr = repr } in
          if cfg.Runner.traversals > 0 && m.Runner.checksum <> base.Runner.checksum
          then
            failwith
              (Printf.sprintf "checksum mismatch: %s on %s"
                 (Repr.to_string repr)
                 (Instance.structure_name cfg.Runner.structure));
          (repr, Some (m, base))
        end)
      reprs
  in
  (base, results)

let value o = Option.map (fun (m, b) -> ratio m b) o

let meas_vs_paper meas paper =
  match (meas, paper) with
  | None, _ -> "-"
  | Some m, Some p -> Printf.sprintf "%.2f (%.2f)" m p
  | Some m, None -> Printf.sprintf "%.2f" m

(* Row records: the machine-readable face of each table row (see
   docs/METRICS.md for the schema). *)

let cell_json ?baseline ~label (m : Runner.measurement) =
  let base_fields =
    match baseline with
    | Some b ->
        [ ("baseline_cycles", Json.Int b.Runner.measured_cycles);
          ("slowdown", Json.Float (ratio m b)) ]
    | None -> []
  in
  Json.Obj
    ((("label", Json.String label)
      :: ("cycles", Json.Int m.Runner.measured_cycles)
      :: base_fields)
    @ [ ("counters", Core.Metrics.json_of_counters m.Runner.counters) ])

let row_json ~row cells =
  Json.Obj [ ("row", Json.String row); ("cells", Json.List cells) ]

let sweep_record ~row (base, results) =
  row_json ~row
    (cell_json ~label:"normal" base
    :: List.filter_map
         (fun (repr, o) ->
           Option.map
             (fun (m, b) ->
               cell_json ~label:(Repr.to_string repr) ~baseline:b m)
             o)
         results)

(* Figure 12 ------------------------------------------------------- *)

let fig12_reprs = [ Repr.Swizzle; Repr.Fat; Repr.Riv; Repr.Off_holder; Repr.Based ]

(* Paper values: per-structure swizzling numbers from Table 1; the other
   methods are the averages quoted in Section 6.2. *)
let fig12_paper structure repr =
  match (repr, structure) with
  | Repr.Swizzle, Instance.List -> Some 3.76
  | Repr.Swizzle, Instance.Btree -> Some 3.85
  | Repr.Swizzle, Instance.Hashset -> Some 3.07
  | Repr.Swizzle, Instance.Trie -> Some 3.67
  | Repr.Fat, _ -> Some 3.6
  | Repr.Riv, _ -> Some 1.24
  | Repr.Off_holder, _ -> Some 1.13
  | Repr.Based, _ -> Some 1.03
  | _ -> None

let fig12 ?(scale = 1.0) ?seed () =
  let cfg =
    seeded seed
      { Runner.default with Runner.elems = scaled scale 10_000; traversals = 10 }
  in
  let rows, records =
    List.split
      (List.map
         (fun structure ->
           let cfg = { cfg with Runner.structure } in
           let (_, results) as run =
             slowdowns ~swizzle_single_use:true cfg fig12_reprs
           in
           let name = Instance.structure_name structure in
           ( name
             :: List.map
                  (fun (repr, o) ->
                    meas_vs_paper (value o) (fig12_paper structure repr))
                  results,
             sweep_record ~row:name run ))
         Instance.structures)
  in
  {
    Table.title =
      "Figure 12: slowdown vs normal pointers (non-transactional, 1 \
       NVRegion, 32 B payload)";
    header =
      "structure" :: List.map Repr.to_string fig12_reprs;
    rows;
    notes =
      [
        "cells are measured (paper); paper per-structure values only \
         published for swizzling";
        Printf.sprintf "traversal workload, 10 repetitions, %d elements"
          (scaled scale 10_000);
      ];
    records;
  }

(* Payload sweep ---------------------------------------------------- *)

let payload_paper payload repr =
  match (payload, repr) with
  | 32, r -> fig12_paper Instance.List r
  | 256, Repr.Riv -> Some 1.15
  | 256, Repr.Off_holder -> Some 1.07
  | 256, Repr.Based -> Some 1.01
  | 256, Repr.Fat -> Some 3.0
  | 256, Repr.Swizzle -> Some 3.0
  | _ -> None

let payload_sweep ?(scale = 1.0) ?seed () =
  let payloads = [ 32; 256 ] in
  let rows, records =
    List.split
      (List.map
         (fun payload ->
           let cfg =
             seeded seed
               {
                 Runner.default with
                 Runner.elems = scaled scale 10_000;
                 traversals = 10;
                 payload;
               }
           in
           let runs =
             List.map
               (fun structure ->
                 ( structure,
                   slowdowns ~swizzle_single_use:true
                     { cfg with Runner.structure } fig12_reprs ))
               Instance.structures
           in
           (* Average across the four structures, as the paper reports. *)
           let avg repr =
             let vs =
               List.filter_map
                 (fun (_, (_, results)) -> value (List.assoc repr results))
                 runs
             in
             match vs with
             | [] -> None
             | _ ->
                 Some
                   (List.fold_left ( +. ) 0.0 vs
                   /. float_of_int (List.length vs))
           in
           ( string_of_int payload
             :: List.map
                  (fun repr ->
                    meas_vs_paper (avg repr) (payload_paper payload repr))
                  fig12_reprs,
             List.map
               (fun (structure, run) ->
                 sweep_record
                   ~row:
                     (Printf.sprintf "payload %d %s" payload
                        (Instance.structure_name structure))
                   run)
               runs ))
         payloads)
  in
  {
    Table.title = "Section 6.2: average slowdown vs payload size";
    header = "payload" :: List.map Repr.to_string fig12_reprs;
    rows;
    notes =
      [ "averages over list/btree/hashset/trie; cells are measured (paper)";
        "records carry the per-structure runs the averages are taken over" ];
    records = List.concat records;
  }

(* Table 1 ----------------------------------------------------------- *)

let table1_paper =
  [
    (Instance.List, [ 3.76; 1.29; 1.05 ]);
    (Instance.Btree, [ 3.85; 1.34; 1.06 ]);
    (Instance.Hashset, [ 3.07; 1.20; 1.01 ]);
    (Instance.Trie, [ 3.67; 1.30; 1.04 ]);
  ]

let table1 ?(scale = 1.0) ?seed () =
  let traversal_counts = [ 1; 10; 100 ] in
  let rows, records =
    List.split
      (List.map
         (fun structure ->
           let paper = List.assoc structure table1_paper in
           let name = Instance.structure_name structure in
           let cells, records =
             List.split
               (List.map2
                  (fun traversals paper ->
                    let cfg =
                      seeded seed
                        {
                          Runner.default with
                          Runner.structure;
                          elems = scaled scale 10_000;
                          traversals;
                        }
                    in
                    let (_, results) as run = slowdowns cfg [ Repr.Swizzle ] in
                    match results with
                    | [ (_, o) ] ->
                        ( meas_vs_paper (value o) (Some paper),
                          sweep_record
                            ~row:(Printf.sprintf "%s x%d" name traversals)
                            run )
                    | _ -> assert false)
                  traversal_counts paper)
           in
           (name :: cells, records))
         Instance.structures)
  in
  {
    Table.title = "Table 1: pointer-swizzling overhead vs number of traversals";
    header =
      "structure"
      :: List.map (fun k -> Printf.sprintf "x%d" k) traversal_counts;
    rows;
    notes =
      [
        "swizzle + k traversals + unswizzle, normalized to k normal \
         traversals; measured (paper)";
      ];
    records = List.concat records;
  }

(* Figures 13 and 14 ------------------------------------------------- *)

(* Swizzling is omitted as in the paper's Figures 13/14 ("as swizzling
   shows large slowdowns as in the non-transactional cases, for
   legibility, we omit its bars"). *)
let tx_reprs =
  [ Repr.Fat; Repr.Fat_cached; Repr.Riv; Repr.Off_holder; Repr.Based ]

let fig13_paper repr =
  match repr with
  | Repr.Fat -> Some 3.0
  | Repr.Fat_cached -> Some 1.11
  | Repr.Riv -> Some 1.15
  | Repr.Off_holder -> Some 1.13
  | Repr.Based -> Some 1.06
  | _ -> None

let fig14_paper repr =
  match repr with
  | Repr.Fat -> Some 2.65
  | Repr.Fat_cached -> Some 2.2
  | Repr.Riv -> Some 1.4
  | _ -> None

let tx_figure ~title ~regions ~paper ~scale ~seed ~notes =
  let elems = scaled scale 10_000 in
  let workloads =
    [ ("traverse", 10, 0); ("search", 0, scaled scale 10_000) ]
  in
  let rows, records =
    List.split
      (List.concat_map
         (fun structure ->
           List.map
             (fun (wname, traversals, searches) ->
               let cfg =
                 seeded seed
                   {
                     Runner.default with
                     Runner.structure;
                     elems;
                     regions;
                     mode = Runner.Tx;
                     traversals;
                     searches;
                   }
               in
               let (_, results) as run = slowdowns cfg tx_reprs in
               let name = Instance.structure_name structure ^ " " ^ wname in
               ( name
                 :: List.map
                      (fun (repr, o) -> meas_vs_paper (value o) (paper repr))
                      results,
                 sweep_record ~row:name run ))
             workloads)
         Instance.structures)
  in
  {
    Table.title = title;
    header = "workload" :: List.map Repr.to_string tx_reprs;
    rows;
    notes;
    records;
  }

let fig13 ?(scale = 1.0) ?seed () =
  tx_figure
    ~title:
      "Figure 13: slowdown vs normal pointers (transactional object store, \
       1 NVRegion)"
    ~regions:1 ~paper:fig13_paper ~scale ~seed
    ~notes:
      [
        "PMEM.IO-like store: 128 B wrapped objects, read-accessor \
         bookkeeping; paper averages in parens";
      ]

let fig14 ?(scale = 1.0) ?seed () =
  tx_figure
    ~title:
      "Figure 14: slowdown vs normal pointers (transactional, 10 NVRegions, \
       round-robin)"
    ~regions:10 ~paper:fig14_paper ~scale ~seed
    ~notes:
      [
        "off-holder and based pointers are intra-region only: not \
         applicable (-)";
        "the fat-pointer cache is defeated because consecutive accesses \
         alternate regions";
      ]

(* Region-count sweep ------------------------------------------------ *)

let regions_sweep ?(scale = 1.0) ?seed () =
  let counts = [ 1; 2; 4; 8; 10 ] in
  let reprs = [ Repr.Fat; Repr.Fat_cached; Repr.Riv ] in
  let rows, records =
    List.split
      (List.map
         (fun regions ->
           let cfg =
             seeded seed
               {
                 Runner.default with
                 Runner.elems = scaled scale 10_000;
                 regions;
                 mode = Runner.Tx;
                 traversals = 10;
               }
           in
           let (_, results) as run = slowdowns cfg reprs in
           ( string_of_int regions
             :: List.map
                  (fun (repr, o) ->
                    let paper =
                      match (regions, repr) with
                      | 1, r -> fig13_paper r
                      | _, Repr.Fat -> Some 2.65
                      | _, Repr.Fat_cached -> Some 2.3
                      | _, Repr.Riv -> Some 1.4
                      | _ -> None
                    in
                    meas_vs_paper (value o) paper)
                  results,
             sweep_record ~row:(string_of_int regions ^ " regions") run ))
         counts)
  in
  {
    Table.title =
      "Section 6.3: slowdown vs number of NVRegions (transactional list \
       traversal)";
    header = "regions" :: List.map Repr.to_string reprs;
    rows;
    notes =
      [
        "paper: cached fat 2.1-2.5x and uncached 2.3-3x for 2-10 regions; \
         RIV much lower";
      ];
    records;
  }

(* Figure 15: wordcount ---------------------------------------------- *)

let fig15_reprs =
  [ Repr.Normal; Repr.Fat; Repr.Fat_cached; Repr.Riv; Repr.Off_holder;
    Repr.Based ]

(* Paper Figure 15 reports absolute times; the reproducible shape is the
   ratio to the fat-pointer version. *)
let fig15_paper_vs_fat = function
  | Repr.Off_holder -> Some 0.5
  | Repr.Based -> Some 0.5
  | Repr.Riv -> Some 0.67
  | _ -> None

let wordcount_run ?(seed = 7) ~repr ~nwords ~vocab () =
  let store = Store.create () in
  let machine = Machine.create ~seed ~store () in
  let slot = Repr.slot_size repr in
  let size = (vocab * ((2 * slot) + 8 + 32 + 64) * 2) + (1 lsl 20) in
  let r = Machine.open_region machine (Machine.create_region machine ~size) in
  if repr = Repr.Based then Machine.set_based_region machine (Region.rid r);
  let node = Node.make machine ~mode:(Node.Plain [| r |]) ~payload:32 in
  let stream = Text_gen.words ~n:nwords ~vocab ~seed:11 in
  let before = Core.Metrics.snapshot (Machine.metrics machine) in
  let result, cycles =
    Clock.delta machine.Machine.clock (fun () ->
        Wordcount.count_words node ~repr ~name:"wordcount" stream)
  in
  let counters =
    Core.Metrics.diff ~before
      ~after:(Core.Metrics.snapshot (Machine.metrics machine))
  in
  (result, cycles, counters)

let fig15 ?(scale = 1.0) ?seed ?(full = false) () =
  let sizes =
    if full then [ 1_000_000; 2_000_000 ]
    else [ scaled scale 200_000; scaled scale 400_000 ]
  in
  let vocab = 20_000 in
  let rows, records =
    List.split
      (List.map
         (fun nwords ->
           let results =
             List.map
               (fun repr ->
                 let _, cycles, counters =
                   wordcount_run ?seed ~repr ~nwords ~vocab ()
                 in
                 (repr, cycles, counters))
               fig15_reprs
           in
           let fat_cycles =
             let _, c, _ =
               List.find (fun (r, _, _) -> r = Repr.Fat) results
             in
             c
           in
           let row_name = Printf.sprintf "%d words" nwords in
           ( row_name
             :: List.map
                  (fun (repr, cycles, _) ->
                    let secs = Clock.seconds_of_cycles cycles in
                    let vs_fat =
                      float_of_int cycles /. float_of_int fat_cycles
                    in
                    match fig15_paper_vs_fat repr with
                    | Some p ->
                        Printf.sprintf "%.3fs %.2fxFat (%.2f)" secs vs_fat p
                    | None -> Printf.sprintf "%.3fs %.2fxFat" secs vs_fat)
                  results,
             row_json ~row:row_name
               (List.map
                  (fun (repr, cycles, counters) ->
                    Json.Obj
                      [
                        ("label", Json.String (Repr.to_string repr));
                        ("cycles", Json.Int cycles);
                        ( "seconds",
                          Json.Float (Clock.seconds_of_cycles cycles) );
                        ( "vs_fat",
                          Json.Float
                            (float_of_int cycles /. float_of_int fat_cycles) );
                        ("counters", Core.Metrics.json_of_counters counters);
                      ])
                  results) ))
         sizes)
  in
  {
    Table.title = "Figure 15: wordcount execution time (BST on one NVRegion)";
    header = "input" :: List.map Repr.to_string fig15_reprs;
    rows;
    notes =
      [
        "seconds are simulated cycles at 2.6 GHz; parenthesized values are \
         the paper's time ratio to the fat-pointer version";
        "paper uses 1M/2M-word English inputs; default here is a scaled \
         Zipf corpus (use the full flag for 1M/2M)";
      ];
    records;
  }

(* RIV read-cost breakdown ------------------------------------------- *)

let breakdown ?(scale = 1.0) ?seed () =
  let cfg =
    seeded seed
      {
        Runner.default with
        Runner.repr = Repr.Riv;
        elems = scaled scale 10_000;
        traversals = 10;
      }
  in
  let m = Runner.run cfg in
  let p = Core.Nvspace.phases m.Runner.machine.Machine.nvspace in
  let total =
    p.Core.Nvspace.extract_cycles + p.Core.Nvspace.id2addr_cycles
    + p.Core.Nvspace.final_cycles
  in
  let pct v = 100.0 *. float_of_int v /. float_of_int (max 1 total) in
  let phase_cell label cycles =
    Json.Obj [ ("label", Json.String label); ("cycles", Json.Int cycles) ]
  in
  {
    Table.title = "Section 6.2: RIV read-overhead breakdown";
    header = [ "phase"; "measured"; "paper" ];
    rows =
      [
        [ "(1) extract ID and offset fields";
          Printf.sprintf "%.0f%%" (pct p.Core.Nvspace.extract_cycles); "32%" ];
        [ "(2) compute base address from ID";
          Printf.sprintf "%.0f%%" (pct p.Core.Nvspace.id2addr_cycles); "23%" ];
        [ "(3) read base, add offset";
          Printf.sprintf "%.0f%%" (pct p.Core.Nvspace.final_cycles); "48%" ];
      ];
    notes = [ "shares of the cycles spent inside RIV-to-pointer conversion" ];
    records =
      [
        row_json ~row:"riv traversal"
          [
            cell_json ~label:"riv" m;
            phase_cell "phase: extract" p.Core.Nvspace.extract_cycles;
            phase_cell "phase: id2addr" p.Core.Nvspace.id2addr_cycles;
            phase_cell "phase: final" p.Core.Nvspace.final_cycles;
          ];
      ];
  }

let all ?(scale = 1.0) ?seed ?(wordcount_full = false) () =
  [
    fig12 ~scale ?seed ();
    payload_sweep ~scale ?seed ();
    table1 ~scale ?seed ();
    fig13 ~scale ?seed ();
    fig14 ~scale ?seed ();
    regions_sweep ~scale ?seed ();
    fig15 ~scale ?seed ~full:wordcount_full ();
    breakdown ~scale ?seed ();
  ]
