module Repr = Core.Repr
module Clock = Nvmpi_cachesim.Clock
module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Store = Nvmpi_nvregion.Store
module Node = Nvmpi_structures.Node
module Wordcount = Nvmpi_apps.Wordcount
module Text_gen = Nvmpi_apps.Text_gen

let scaled scale n = max 100 (int_of_float (float_of_int n *. scale))

(* Run one structure under a list of representations against a shared
   normal-pointer baseline, verifying that every representation produces
   the baseline's traversal checksum.

   Swizzling is measured at a single use (swizzle + 1 traversal +
   unswizzle against 1 normal traversal), matching the paper's Figure 12
   setting: "traversals ... are subject to 3-4X slowdowns with the use
   of swizzling at the loading time and unswizzling at the end"; its
   amortization over repeated traversals is Table 1's subject. *)
let slowdowns ?(swizzle_single_use = false) cfg reprs =
  let base = Runner.run { cfg with Runner.repr = Repr.Normal } in
  let swizzle_base =
    lazy
      (Runner.run { cfg with Runner.repr = Repr.Normal; traversals = 1 })
  in
  List.map
    (fun repr ->
      if not (Runner.applicable repr ~regions:cfg.Runner.regions) then
        (repr, None)
      else if
        repr = Repr.Swizzle && swizzle_single_use && cfg.Runner.traversals > 1
      then begin
        let m =
          Runner.run { cfg with Runner.repr = repr; traversals = 1 }
        in
        let base = Lazy.force swizzle_base in
        ( repr,
          Some
            (float_of_int m.Runner.measured_cycles
            /. float_of_int base.Runner.measured_cycles) )
      end
      else begin
        let m = Runner.run { cfg with Runner.repr = repr } in
        if cfg.Runner.traversals > 0 && m.Runner.checksum <> base.Runner.checksum
        then
          failwith
            (Printf.sprintf "checksum mismatch: %s on %s"
               (Repr.to_string repr)
               (Instance.structure_name cfg.Runner.structure));
        ( repr,
          Some
            (float_of_int m.Runner.measured_cycles
            /. float_of_int base.Runner.measured_cycles) )
      end)
    reprs

let meas_vs_paper meas paper =
  match (meas, paper) with
  | None, _ -> "-"
  | Some m, Some p -> Printf.sprintf "%.2f (%.2f)" m p
  | Some m, None -> Printf.sprintf "%.2f" m

(* Figure 12 ------------------------------------------------------- *)

let fig12_reprs = [ Repr.Swizzle; Repr.Fat; Repr.Riv; Repr.Off_holder; Repr.Based ]

(* Paper values: per-structure swizzling numbers from Table 1; the other
   methods are the averages quoted in Section 6.2. *)
let fig12_paper structure repr =
  match (repr, structure) with
  | Repr.Swizzle, Instance.List -> Some 3.76
  | Repr.Swizzle, Instance.Btree -> Some 3.85
  | Repr.Swizzle, Instance.Hashset -> Some 3.07
  | Repr.Swizzle, Instance.Trie -> Some 3.67
  | Repr.Fat, _ -> Some 3.6
  | Repr.Riv, _ -> Some 1.24
  | Repr.Off_holder, _ -> Some 1.13
  | Repr.Based, _ -> Some 1.03
  | _ -> None

let fig12 ?(scale = 1.0) () =
  let cfg =
    { Runner.default with Runner.elems = scaled scale 10_000; traversals = 10 }
  in
  let rows =
    List.map
      (fun structure ->
        let cfg = { cfg with Runner.structure } in
        let results = slowdowns ~swizzle_single_use:true cfg fig12_reprs in
        Instance.structure_name structure
        :: List.map
             (fun (repr, v) -> meas_vs_paper v (fig12_paper structure repr))
             results)
      Instance.structures
  in
  {
    Table.title =
      "Figure 12: slowdown vs normal pointers (non-transactional, 1 \
       NVRegion, 32 B payload)";
    header =
      "structure" :: List.map Repr.to_string fig12_reprs;
    rows;
    notes =
      [
        "cells are measured (paper); paper per-structure values only \
         published for swizzling";
        Printf.sprintf "traversal workload, 10 repetitions, %d elements"
          (scaled scale 10_000);
      ];
  }

(* Payload sweep ---------------------------------------------------- *)

let payload_paper payload repr =
  match (payload, repr) with
  | 32, r -> fig12_paper Instance.List r
  | 256, Repr.Riv -> Some 1.15
  | 256, Repr.Off_holder -> Some 1.07
  | 256, Repr.Based -> Some 1.01
  | 256, Repr.Fat -> Some 3.0
  | 256, Repr.Swizzle -> Some 3.0
  | _ -> None

let payload_sweep ?(scale = 1.0) () =
  let payloads = [ 32; 256 ] in
  let rows =
    List.map
      (fun payload ->
        let cfg =
          {
            Runner.default with
            Runner.elems = scaled scale 10_000;
            traversals = 10;
            payload;
          }
        in
        (* Average across the four structures, as the paper reports. *)
        let sums = Hashtbl.create 8 in
        List.iter
          (fun structure ->
            List.iter
              (fun (repr, v) ->
                match v with
                | Some v ->
                    let s, n =
                      Option.value ~default:(0.0, 0)
                        (Hashtbl.find_opt sums repr)
                    in
                    Hashtbl.replace sums repr (s +. v, n + 1)
                | None -> ())
              (slowdowns ~swizzle_single_use:true
                 { cfg with Runner.structure } fig12_reprs))
          Instance.structures;
        string_of_int payload
        :: List.map
             (fun repr ->
               let avg =
                 Option.map
                   (fun (s, n) -> s /. float_of_int n)
                   (Hashtbl.find_opt sums repr)
               in
               meas_vs_paper avg (payload_paper payload repr))
             fig12_reprs)
      payloads
  in
  {
    Table.title = "Section 6.2: average slowdown vs payload size";
    header = "payload" :: List.map Repr.to_string fig12_reprs;
    rows;
    notes =
      [ "averages over list/btree/hashset/trie; cells are measured (paper)" ];
  }

(* Table 1 ----------------------------------------------------------- *)

let table1_paper =
  [
    (Instance.List, [ 3.76; 1.29; 1.05 ]);
    (Instance.Btree, [ 3.85; 1.34; 1.06 ]);
    (Instance.Hashset, [ 3.07; 1.20; 1.01 ]);
    (Instance.Trie, [ 3.67; 1.30; 1.04 ]);
  ]

let table1 ?(scale = 1.0) () =
  let traversal_counts = [ 1; 10; 100 ] in
  let rows =
    List.map
      (fun structure ->
        let paper = List.assoc structure table1_paper in
        let cells =
          List.map2
            (fun traversals paper ->
              let cfg =
                {
                  Runner.default with
                  Runner.structure;
                  elems = scaled scale 10_000;
                  traversals;
                }
              in
              match slowdowns cfg [ Repr.Swizzle ] with
              | [ (_, v) ] -> meas_vs_paper v (Some paper)
              | _ -> assert false)
            traversal_counts paper
        in
        Instance.structure_name structure :: cells)
      Instance.structures
  in
  {
    Table.title = "Table 1: pointer-swizzling overhead vs number of traversals";
    header =
      "structure"
      :: List.map (fun k -> Printf.sprintf "x%d" k) traversal_counts;
    rows;
    notes =
      [
        "swizzle + k traversals + unswizzle, normalized to k normal \
         traversals; measured (paper)";
      ];
  }

(* Figures 13 and 14 ------------------------------------------------- *)

(* Swizzling is omitted as in the paper's Figures 13/14 ("as swizzling
   shows large slowdowns as in the non-transactional cases, for
   legibility, we omit its bars"). *)
let tx_reprs =
  [ Repr.Fat; Repr.Fat_cached; Repr.Riv; Repr.Off_holder; Repr.Based ]

let fig13_paper repr =
  match repr with
  | Repr.Fat -> Some 3.0
  | Repr.Fat_cached -> Some 1.11
  | Repr.Riv -> Some 1.15
  | Repr.Off_holder -> Some 1.13
  | Repr.Based -> Some 1.06
  | _ -> None

let fig14_paper repr =
  match repr with
  | Repr.Fat -> Some 2.65
  | Repr.Fat_cached -> Some 2.2
  | Repr.Riv -> Some 1.4
  | _ -> None

let tx_figure ~title ~regions ~paper ~scale ~notes =
  let elems = scaled scale 10_000 in
  let workloads =
    [ ("traverse", 10, 0); ("search", 0, scaled scale 10_000) ]
  in
  let rows =
    List.concat_map
      (fun structure ->
        List.map
          (fun (wname, traversals, searches) ->
            let cfg =
              {
                Runner.default with
                Runner.structure;
                elems;
                regions;
                mode = Runner.Tx;
                traversals;
                searches;
              }
            in
            let results = slowdowns cfg tx_reprs in
            (Instance.structure_name structure ^ " " ^ wname)
            :: List.map (fun (repr, v) -> meas_vs_paper v (paper repr)) results)
          workloads)
      Instance.structures
  in
  {
    Table.title = title;
    header = "workload" :: List.map Repr.to_string tx_reprs;
    rows;
    notes;
  }

let fig13 ?(scale = 1.0) () =
  tx_figure
    ~title:
      "Figure 13: slowdown vs normal pointers (transactional object store, \
       1 NVRegion)"
    ~regions:1 ~paper:fig13_paper ~scale
    ~notes:
      [
        "PMEM.IO-like store: 128 B wrapped objects, read-accessor \
         bookkeeping; paper averages in parens";
      ]

let fig14 ?(scale = 1.0) () =
  tx_figure
    ~title:
      "Figure 14: slowdown vs normal pointers (transactional, 10 NVRegions, \
       round-robin)"
    ~regions:10 ~paper:fig14_paper ~scale
    ~notes:
      [
        "off-holder and based pointers are intra-region only: not \
         applicable (-)";
        "the fat-pointer cache is defeated because consecutive accesses \
         alternate regions";
      ]

(* Region-count sweep ------------------------------------------------ *)

let regions_sweep ?(scale = 1.0) () =
  let counts = [ 1; 2; 4; 8; 10 ] in
  let reprs = [ Repr.Fat; Repr.Fat_cached; Repr.Riv ] in
  let rows =
    List.map
      (fun regions ->
        let cfg =
          {
            Runner.default with
            Runner.elems = scaled scale 10_000;
            regions;
            mode = Runner.Tx;
            traversals = 10;
          }
        in
        let results = slowdowns cfg reprs in
        string_of_int regions
        :: List.map
             (fun (repr, v) ->
               let paper =
                 match (regions, repr) with
                 | 1, r -> fig13_paper r
                 | _, Repr.Fat -> Some 2.65
                 | _, Repr.Fat_cached -> Some 2.3
                 | _, Repr.Riv -> Some 1.4
                 | _ -> None
               in
               meas_vs_paper v paper)
             results)
      counts
  in
  {
    Table.title =
      "Section 6.3: slowdown vs number of NVRegions (transactional list \
       traversal)";
    header = "regions" :: List.map Repr.to_string reprs;
    rows;
    notes =
      [
        "paper: cached fat 2.1-2.5x and uncached 2.3-3x for 2-10 regions; \
         RIV much lower";
      ];
  }

(* Figure 15: wordcount ---------------------------------------------- *)

let fig15_reprs =
  [ Repr.Normal; Repr.Fat; Repr.Fat_cached; Repr.Riv; Repr.Off_holder;
    Repr.Based ]

(* Paper Figure 15 reports absolute times; the reproducible shape is the
   ratio to the fat-pointer version. *)
let fig15_paper_vs_fat = function
  | Repr.Off_holder -> Some 0.5
  | Repr.Based -> Some 0.5
  | Repr.Riv -> Some 0.67
  | _ -> None

let wordcount_run ~repr ~nwords ~vocab =
  let store = Store.create () in
  let machine = Machine.create ~seed:7 ~store () in
  let slot = Repr.slot_size repr in
  let size = (vocab * ((2 * slot) + 8 + 32 + 64) * 2) + (1 lsl 20) in
  let r = Machine.open_region machine (Machine.create_region machine ~size) in
  if repr = Repr.Based then Machine.set_based_region machine (Region.rid r);
  let node = Node.make machine ~mode:(Node.Plain [| r |]) ~payload:32 in
  let stream = Text_gen.words ~n:nwords ~vocab ~seed:11 in
  let result, cycles =
    Clock.delta machine.Machine.clock (fun () ->
        Wordcount.count_words node ~repr ~name:"wordcount" stream)
  in
  (result, cycles)

let fig15 ?(scale = 1.0) ?(full = false) () =
  let sizes =
    if full then [ 1_000_000; 2_000_000 ]
    else [ scaled scale 200_000; scaled scale 400_000 ]
  in
  let vocab = 20_000 in
  let rows =
    List.map
      (fun nwords ->
        let results =
          List.map
            (fun repr ->
              let _, cycles = wordcount_run ~repr ~nwords ~vocab in
              (repr, cycles))
            fig15_reprs
        in
        let fat_cycles = List.assoc Repr.Fat results in
        Printf.sprintf "%d words" nwords
        :: List.map
             (fun (repr, cycles) ->
               let secs = Clock.seconds_of_cycles cycles in
               let vs_fat = float_of_int cycles /. float_of_int fat_cycles in
               match fig15_paper_vs_fat repr with
               | Some p -> Printf.sprintf "%.3fs %.2fxFat (%.2f)" secs vs_fat p
               | None -> Printf.sprintf "%.3fs %.2fxFat" secs vs_fat)
             results)
      sizes
  in
  {
    Table.title = "Figure 15: wordcount execution time (BST on one NVRegion)";
    header = "input" :: List.map Repr.to_string fig15_reprs;
    rows;
    notes =
      [
        "seconds are simulated cycles at 2.6 GHz; parenthesized values are \
         the paper's time ratio to the fat-pointer version";
        "paper uses 1M/2M-word English inputs; default here is a scaled \
         Zipf corpus (use the full flag for 1M/2M)";
      ];
  }

(* RIV read-cost breakdown ------------------------------------------- *)

let breakdown ?(scale = 1.0) () =
  let cfg =
    {
      Runner.default with
      Runner.repr = Repr.Riv;
      elems = scaled scale 10_000;
      traversals = 10;
    }
  in
  let m = Runner.run cfg in
  let p = Core.Nvspace.phases m.Runner.machine.Machine.nvspace in
  let total =
    p.Core.Nvspace.extract_cycles + p.Core.Nvspace.id2addr_cycles
    + p.Core.Nvspace.final_cycles
  in
  let pct v = 100.0 *. float_of_int v /. float_of_int (max 1 total) in
  {
    Table.title = "Section 6.2: RIV read-overhead breakdown";
    header = [ "phase"; "measured"; "paper" ];
    rows =
      [
        [ "(1) extract ID and offset fields";
          Printf.sprintf "%.0f%%" (pct p.Core.Nvspace.extract_cycles); "32%" ];
        [ "(2) compute base address from ID";
          Printf.sprintf "%.0f%%" (pct p.Core.Nvspace.id2addr_cycles); "23%" ];
        [ "(3) read base, add offset";
          Printf.sprintf "%.0f%%" (pct p.Core.Nvspace.final_cycles); "48%" ];
      ];
    notes = [ "shares of the cycles spent inside RIV-to-pointer conversion" ];
  }

let all ?(scale = 1.0) ?(wordcount_full = false) () =
  [
    fig12 ~scale ();
    payload_sweep ~scale ();
    table1 ~scale ();
    fig13 ~scale ();
    fig14 ~scale ();
    regions_sweep ~scale ();
    fig15 ~scale ~full:wordcount_full ();
    breakdown ~scale ();
  ]
