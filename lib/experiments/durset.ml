module Machine = Core.Machine
module Repr = Core.Repr
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Store = Nvmpi_nvregion.Store
module Layout = Nvmpi_addr.Layout
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Node = Nvmpi_structures.Node
module Durable = Nvmpi_structures.Durable
module Zipf = Nvmpi_server.Zipf

(* Flush-minimization measurement for the durable sets (docs/DURABLE.md):
   the same read-mostly zipfian workload on hashset and bstree, run
   twice per representation —

   - [eager]: the Izraelevitz-style eager-durability baseline. The
     structure code itself issues no persistence actions (the legacy
     discipline), so the baseline is emulated at the op boundary: a
     Memsim observer records every NVM cache line the op touches, and
     after the op each line is flushed once and a single fence issued —
     exactly the clwb-everything-you-touched cost the motivation cites.
   - [traverse]: the link-and-persist discipline. Traversals flush
     nothing; each mutating op pays one modification window (fresh-node
     lines + one marked link flush + fence).

   Both phases replay an identical op stream (same seed, same draws), so
   the flush-count and simulated-cycle columns are directly comparable.
   Like churn, this experiment is additive: it has its own committed
   baseline (BENCH_durable.json) and never appears in BENCH_seed.json. *)

let keys = 96
let theta = 0.9
let read_pct = 95
let line_bytes = 64

let structures = [ Instance.Hashset; Instance.Btree ]

(* The 8-byte-slot encodings the mark bit fits; mirrors
   [Nvmpi_faultsim.Scenario.durable_reprs]. *)
let reprs =
  [ Repr.Off_holder; Repr.Riv; Repr.Based; Repr.Packed_fat; Repr.Hw_oid ]

let counter_cols = [ "timing.flushes"; "timing.fences" ]

let scaled scale n = max 300 (int_of_float (float_of_int n *. scale))

let run_one ~ops ~seed structure repr ~durability =
  let store = Store.create () in
  let machine = Machine.create ~seed ~store () in
  let rid = Machine.create_region machine ~size:(1 lsl 21) in
  let region = Machine.open_region machine rid in
  if repr = Repr.Based then Machine.set_based_region machine rid;
  let node =
    Node.make ~durability machine ~mode:(Node.Plain [| region |]) ~payload:32
  in
  let inst = Instance.create structure repr node ~name:"durset" in
  (* Eager-baseline plumbing: record each op's touched NVM lines in
     first-touch order (deterministic), then flush them + fence at the
     op boundary. The observer is attached before the preload so both
     phases run the measured ops on the generic (observed) access path —
     the cycle columns differ only by the persistence actions. *)
  let lines = ref [] in
  let seen = Hashtbl.create 64 in
  let recording = ref false in
  let layout = machine.Machine.layout in
  if durability = Durable.Eager then
    Memsim.add_observer machine.Machine.mem (fun ~write:_ ~addr ~size:_ ->
        if !recording && Layout.in_nv_space layout addr then begin
          let l = addr land lnot (line_bytes - 1) in
          if not (Hashtbl.mem seen l) then begin
            Hashtbl.add seen l ();
            lines := l :: !lines
          end
        end);
  let flush_touched () =
    List.iter
      (fun l -> Timing.flush machine.Machine.timing ~addr:l)
      (List.rev !lines);
    Timing.fence machine.Machine.timing;
    lines := [];
    Hashtbl.reset seen
  in
  for k = 1 to keys do
    inst.Instance.insert k
  done;
  let eager = durability = Durable.Eager in
  let rng = Random.State.make [| seed; 0xD5E7 |] in
  let z = Zipf.v ~n:keys ~theta in
  let metrics = Machine.metrics machine in
  let before = Metrics.snapshot metrics in
  let c0 = Machine.cycles machine in
  recording := true;
  for op = 1 to ops do
    let key = 1 + Zipf.next z rng in
    let r = Random.State.int rng 100 in
    if r < read_pct then ignore (inst.Instance.search key)
    else if r mod 2 = 0 then inst.Instance.insert (keys + op)
    else ignore (inst.Instance.remove key);
    if eager then flush_touched ()
  done;
  recording := false;
  let cycles = Machine.cycles machine - c0 in
  let counters = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  (cycles, counters)

let counter name counters =
  Option.value ~default:0 (List.assoc_opt name counters)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

type pair = {
  eager_cycles : int;
  traverse_cycles : int;
  eager_counters : (string * int) list;
  traverse_counters : (string * int) list;
}

let run_pair ~ops ~seed structure repr =
  let eager_cycles, eager_counters =
    run_one ~ops ~seed structure repr ~durability:Durable.Eager
  in
  let traverse_cycles, traverse_counters =
    run_one ~ops ~seed structure repr ~durability:Durable.Traverse
  in
  { eager_cycles; traverse_cycles; eager_counters; traverse_counters }

let table ?(scale = 1.0) ?seed () =
  let seed = Option.value seed ~default:11 in
  let ops = scaled scale 3000 in
  let rows, records =
    List.split
      (List.concat_map
         (fun structure ->
           List.map
             (fun repr ->
               let p = run_pair ~ops ~seed structure repr in
               let name =
                 Printf.sprintf "%s/%s"
                   (Instance.structure_name structure)
                   (Repr.to_string repr)
               in
               let ef = counter "timing.flushes" p.eager_counters in
               let tf = counter "timing.flushes" p.traverse_counters in
               let cell label cycles counters =
                 Json.Obj
                   [
                     ("label", Json.String label);
                     ("cycles", Json.Int cycles);
                     ("counters", Metrics.json_of_counters counters);
                   ]
               in
               ( [
                   name;
                   string_of_int p.eager_cycles;
                   string_of_int p.traverse_cycles;
                   string_of_int ef;
                   string_of_int tf;
                   Printf.sprintf "%.1fx" (ratio ef tf);
                   Printf.sprintf "%.2fx"
                     (ratio p.eager_cycles p.traverse_cycles);
                 ],
                 Json.Obj
                   [
                     ("row", Json.String name);
                     ( "cells",
                       Json.List
                         [
                           cell "eager" p.eager_cycles p.eager_counters;
                           cell "traverse" p.traverse_cycles
                             p.traverse_counters;
                         ] );
                   ] ))
             reprs)
         structures)
  in
  {
    Table.title =
      "Durable sets: eager whole-path flushing vs link-and-persist \
       traversal-free persistence";
    header =
      [
        "structure/repr";
        "eager cycles";
        "traverse cycles";
        "eager flushes";
        "traverse flushes";
        "flush reduction";
        "cycle reduction";
      ];
    rows;
    notes =
      [
        Printf.sprintf
          "%d ops over %d keys (theta %g), %d%% reads; eager = clwb every \
           touched NVM line + fence per op, traverse = modification-window \
           flushes only (dur.* counters in the traverse cells)"
          ops keys theta read_pct;
      ];
    records;
  }
