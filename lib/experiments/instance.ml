module Repr = Core.Repr
module Engine = Core.Engine
module S = Nvmpi_structures

type structure = List | Btree | Hashset | Trie | Dllist | Graph | Bplus

let structures = [ List; Btree; Hashset; Trie ]
let extension_structures = [ Dllist; Graph; Bplus ]

let structure_name = function
  | List -> "list"
  | Btree -> "btree"
  | Hashset -> "hashset"
  | Trie -> "trie"
  | Dllist -> "dllist"
  | Graph -> "graph"
  | Bplus -> "b+tree"

let structure_of_string = function
  | "list" -> Some List
  | "btree" | "tree" | "bst" -> Some Btree
  | "hashset" | "hash" -> Some Hashset
  | "trie" -> Some Trie
  | "dllist" -> Some Dllist
  | "graph" -> Some Graph
  | "b+tree" | "bplus" -> Some Bplus
  | _ -> None

type t = {
  insert : int -> unit;
  remove : int -> bool;
      (* [true] if the key was present; always [false] for structures
         without a removal API (trie, graph) or with a value-oriented
         one the integer workloads do not drive (b+tree's leaf delete) *)
  traverse : unit -> int * int;
  search : int -> bool;
  swizzle : unit -> unit;
  unswizzle : unit -> unit;
}

(* The hash set mirrors the paper's setup: N entries with chains; a
   bucket count well below the element count keeps chains non-trivial. *)
let default_buckets = 512

(* Tries are driven by the same integer workloads as the other
   structures, but store words: keys index a fixed syllable-built
   vocabulary whose prefix sharing resembles English (the paper stores
   English words). The vocabulary is shared across instances so every
   representation inserts exactly the same words. *)
let trie_vocab =
  lazy (Nvmpi_apps.Text_gen.vocabulary ~size:(1 lsl 17) ~seed:7)

let trie_word key = (Lazy.force trie_vocab).(key land ((1 lsl 17) - 1))

(* The instance constructor for one representation, written once and
   applied two ways: statically to each of the nine representation
   modules below (the staged engine's pre-instantiated structure × repr
   set) and dynamically to [(val Repr.m kind)] (the dispatch engine,
   the historical first-class-module path). *)
module Of (P : Core.Repr_sig.S) = struct
  module SP = S.Specialized.Spec (P)

  let make structure node ~name ~fresh =
    match structure with
    | List ->
        let module L = SP.List in
        let t = if fresh then L.create node ~name else L.attach node ~name in
        {
          insert = (fun key -> L.append t ~key);
          remove = (fun key -> L.remove t ~key);
          traverse = (fun () -> L.traverse t);
          search = (fun key -> L.find t ~key);
          swizzle = (fun () -> L.swizzle t);
          unswizzle = (fun () -> L.unswizzle t);
        }
    | Btree ->
        let module B = SP.Btree in
        let t = if fresh then B.create node ~name else B.attach node ~name in
        {
          insert = (fun key -> ignore (B.insert t ~key));
          remove = (fun key -> B.remove t ~key);
          traverse = (fun () -> B.traverse t);
          search = (fun key -> B.search t ~key);
          swizzle = (fun () -> B.swizzle t);
          unswizzle = (fun () -> B.unswizzle t);
        }
    | Hashset ->
        let module H = SP.Hashset in
        let t =
          if fresh then H.create node ~name ~buckets:default_buckets
          else H.attach node ~name
        in
        {
          insert = (fun key -> ignore (H.add t ~key));
          remove = (fun key -> H.remove t ~key);
          traverse = (fun () -> H.traverse t);
          search = (fun key -> H.contains t ~key);
          swizzle = (fun () -> H.swizzle t);
          unswizzle = (fun () -> H.unswizzle t);
        }
    | Trie ->
        let module T = SP.Trie in
        let t = if fresh then T.create node ~name else T.attach node ~name in
        {
          insert = (fun key -> ignore (T.insert t (trie_word key)));
          remove = (fun _ -> false);
          traverse = (fun () -> T.traverse t);
          search = (fun key -> T.contains t (trie_word key));
          swizzle = (fun () -> T.swizzle t);
          unswizzle = (fun () -> T.unswizzle t);
        }
    | Dllist ->
        let module D = SP.Dllist in
        let t = if fresh then D.create node ~name else D.attach node ~name in
        {
          insert = (fun key -> D.push_back t ~key);
          remove = (fun key -> D.remove t ~key);
          traverse = (fun () -> D.traverse t);
          search = (fun key -> D.find t ~key);
          swizzle = (fun () -> D.swizzle t);
          unswizzle = (fun () -> D.unswizzle t);
        }
    | Graph ->
        let module G = SP.Graph in
        let t = if fresh then G.create node ~name else G.attach node ~name in
        (* Each inserted key becomes a vertex chained to the previous one
           (deterministic, so all representations build the same graph). *)
        let prev = ref 0 in
        {
          insert =
            (fun key ->
              ignore (G.add_vertex t ~key);
              if !prev <> 0 then G.add_edge t ~src:key ~dst:!prev;
              prev := key);
          remove = (fun _ -> false);
          traverse = (fun () -> G.traverse t);
          search = (fun key -> G.mem_vertex t ~key);
          swizzle = (fun () -> G.swizzle t);
          unswizzle = (fun () -> G.unswizzle t);
        }
    | Bplus ->
        let module B = SP.Bplus in
        let t =
          if fresh then B.create node ~name () else B.attach node ~name
        in
        {
          insert = (fun key -> B.insert t ~key ~value:(key * 3));
          remove = (fun key -> B.delete t ~key);
          traverse = (fun () -> B.traverse t);
          search = (fun key -> B.lookup t ~key <> None);
          swizzle = (fun () -> B.swizzle t);
          unswizzle = (fun () -> B.unswizzle t);
        }
end

(* The staged engine's pre-instantiated set: one [Of] application per
   representation, performed once at module initialization. *)
module I_normal = Of (Core.Normal_ptr)
module I_off_holder = Of (Core.Off_holder)
module I_riv = Of (Core.Riv)
module I_fat = Of (Core.Fat)
module I_fat_cached = Of (Core.Fat_cached)
module I_based = Of (Core.Based_ptr)
module I_swizzle = Of (Core.Swizzle)
module I_packed_fat = Of (Core.Packed_fat)
module I_hw_oid = Of (Core.Hw_oid)

let make_staged structure kind node ~name ~fresh =
  match kind with
  | Repr.Normal -> I_normal.make structure node ~name ~fresh
  | Repr.Off_holder -> I_off_holder.make structure node ~name ~fresh
  | Repr.Riv -> I_riv.make structure node ~name ~fresh
  | Repr.Fat -> I_fat.make structure node ~name ~fresh
  | Repr.Fat_cached -> I_fat_cached.make structure node ~name ~fresh
  | Repr.Based -> I_based.make structure node ~name ~fresh
  | Repr.Swizzle -> I_swizzle.make structure node ~name ~fresh
  | Repr.Packed_fat -> I_packed_fat.make structure node ~name ~fresh
  | Repr.Hw_oid -> I_hw_oid.make structure node ~name ~fresh

let make_dispatch structure kind node ~name ~fresh =
  let (module P : Core.Repr_sig.S) = Repr.m kind in
  let module I = Of (P) in
  I.make structure node ~name ~fresh

let make structure kind node ~name ~fresh =
  match Engine.mode () with
  | Engine.Staged -> make_staged structure kind node ~name ~fresh
  | Engine.Dispatch -> make_dispatch structure kind node ~name ~fresh

let create structure kind node ~name = make structure kind node ~name ~fresh:true

let attach structure kind node ~name =
  make structure kind node ~name ~fresh:false
