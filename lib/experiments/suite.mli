(** The experiment suite as a unit: named experiments, JSON snapshots
    of their results, and regression checking of one snapshot against
    another.

    A snapshot is the schema-versioned document [bench/main.exe --json]
    writes (see [docs/METRICS.md] for the full schema):

    {v
    { "schema_version": 2,
      "params": { "scale": ..., "seed": ..., "wordcount_full": ... },
      "experiments": [ { "name": "fig12", "tables": [ ... ] }, ... ],
      "wall": { ... }   (optional, host wall-clock — never checked) }
    v}

    [check] compares the per-cell ["cycles"] values of two snapshots'
    table records; because the simulator is deterministic, a fresh run
    with a snapshot's own [params] reproduces it exactly, and any drift
    beyond the tolerance signals a behavioural change in the simulator
    or a representation. *)

val schema_version : int

type params = { scale : float; seed : int option; wordcount_full : bool }
(** What a snapshot captures about how it was produced. [seed = None]
    leaves each experiment's default seed in effect. *)

val default : params
(** scale 1.0, default seeds, scaled wordcount inputs. *)

val names : string list
(** Every experiment name, in paper order: fig12, payload, table1,
    fig13, fig14, regions, fig15, breakdown, ablations. The bechamel
    host-time micro-benchmarks are not part of the suite — they measure
    the simulator, not the simulated machine, so they have no
    deterministic cycle numbers to snapshot. *)

val mem : string -> bool
(** Whether a string names a suite experiment. *)

type result = { name : string; tables : Table.t list; wall_ns : int }
(** [wall_ns] is the host wall-clock the experiment took to {e run};
    it never appears in the table cells. *)

val run : params -> string -> result
(** Runs one named experiment.
    @raise Invalid_argument on an unknown name (check {!mem} first). *)

val run_all : ?jobs:int -> params -> string list -> result list
(** [jobs > 1] runs the experiments on a {!Nvmpi_parsweep.Pool} — each
    experiment already builds private machines and metrics registries —
    and returns results in request order, identical to the serial run
    except for [wall_ns]. *)

val snapshot_of :
  ?wall:bool ->
  ?deref_ns:(string * float) list ->
  params -> result list -> Nvmpi_obs.Json.t
(** The schema-versioned snapshot document for a set of results.
    [~wall:true] (default false) appends a ["wall"] section with the
    active engine name, per-experiment and total [wall_ns], and — when
    [deref_ns] is non-empty — a ["deref_ns_per_op"] object mapping each
    representation to its measured host-nanosecond single-dereference
    cost. {!check} ignores the whole section, and determinism tests
    compare snapshots without it. *)

val params_of_json :
  Nvmpi_obs.Json.t -> (params, string) Stdlib.result
(** Reads a snapshot's [params], so a check can re-run with the exact
    configuration the baseline was produced with. *)

val names_of_json :
  Nvmpi_obs.Json.t -> (string list, string) Stdlib.result
(** The experiment names a snapshot contains, in order. *)

val check :
  ?tolerance:float ->
  baseline:Nvmpi_obs.Json.t ->
  fresh:Nvmpi_obs.Json.t ->
  unit ->
  (int * string list, string) Stdlib.result
(** [check ~baseline ~fresh ()] compares every record cell of
    [baseline] that carries a ["cycles"] value against the same cell of
    [fresh] (keyed by experiment name, table title, record row and cell
    label). [Ok (compared, mismatches)] gives the number of cells
    compared and a human-readable line per cell that is missing from
    [fresh] or whose cycles deviate by more than [tolerance]
    (default 0.10, i.e. 10%) in either direction — a large speedup is
    as suspicious as a slowdown when the simulator is deterministic.
    [Error] means a snapshot is malformed or from another schema
    version. *)
