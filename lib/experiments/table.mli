(** Minimal fixed-width table rendering for experiment reports. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val cell_f : float -> string
(** Formats a ratio/overhead with two decimals ("1.24"). *)

val cell_opt : float option -> string
(** "-" for [None]. *)

val render : Format.formatter -> t -> unit
val print : t -> unit
(** Renders to stdout. *)
