(** Minimal fixed-width table rendering for experiment reports, plus
    the machine-readable face of the same results.

    [rows] are the human-formatted cells that {!print} renders;
    [records] carry the underlying numbers — typically one JSON record
    per table row, each an object [{"row": label, "cells": [...]}]
    whose cells hold raw simulated cycle counts, slowdown ratios and
    counter breakdowns (see [docs/METRICS.md] for the schema). Rendered
    rows that aggregate several runs (averages) instead carry one
    record per underlying run. The [check] bench mode regresses against
    the records, never the rendered strings. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  records : Nvmpi_obs.Json.t list;
      (** machine-readable records, one per measured row/run *)
}

val cell_f : float -> string
(** Formats a ratio/overhead with two decimals ("1.24"). *)

val cell_opt : float option -> string
(** "-" for [None]. *)

val render : Format.formatter -> t -> unit
val print : t -> unit
(** Renders to stdout. *)

val to_json : t -> Nvmpi_obs.Json.t
(** The full table — title, header, rendered rows, notes and row
    records — as one JSON object. *)
