(** Ablation studies for the design choices DESIGN.md calls out. Not
    figures from the paper — they answer "which part of the design buys
    the win?" questions the paper argues qualitatively.

    - {!translation}: isolates RIV's direct-mapped tables by comparing
      RIV against the packed-fat strawman from the paper's introduction
      (same 8-byte self-contained format, hashtable translation instead).
    - {!latency_sweep}: overheads as the emulated NVM read latency
      varies, showing the conclusions are not an artifact of one PMEP
      latency point.
    - {!cache_pressure}: off-holder/RIV/fat at growing element counts,
      showing how fat pointers' doubled slot size spills working sets
      out of cache earlier. *)

val translation : ?scale:float -> ?seed:int -> unit -> Table.t
val latency_sweep : ?scale:float -> ?seed:int -> unit -> Table.t
val cache_pressure : ?scale:float -> ?seed:int -> unit -> Table.t

val cache_stats : ?scale:float -> ?seed:int -> unit -> Table.t
(** Memory-system behaviour per representation on one workload: cache
    hit rates per level, NVM reads and ALU cycles of the measured phase,
    and absolute cycles per traversal. *)

val extension_structures : ?scale:float -> ?seed:int -> unit -> Table.t
(** The Figure 12 experiment on the structures this library adds beyond
    the paper's four (doubly linked list, graph, B+ tree). *)

val all : ?scale:float -> ?seed:int -> unit -> Table.t list
