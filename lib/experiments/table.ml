module Json = Nvmpi_obs.Json

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
  records : Json.t list;
}

let cell_f v = Printf.sprintf "%.2f" v
let cell_opt = function None -> "-" | Some v -> cell_f v

let render ppf t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let print_row row =
    let cells = List.mapi (fun c s -> pad s (List.nth widths c)) row in
    Format.fprintf ppf "  %s@." (String.concat "  " cells)
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  print_row t.header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes

let print t = render Format.std_formatter t

let to_json t =
  Json.Obj
    [
      ("title", Json.String t.title);
      ("header", Json.List (List.map (fun s -> Json.String s) t.header));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun s -> Json.String s) row))
             t.rows) );
      ("notes", Json.List (List.map (fun s -> Json.String s) t.notes));
      ("records", Json.List t.records);
    ]
