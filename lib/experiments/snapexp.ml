module Machine = Core.Machine
module Repr = Core.Repr
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Store = Nvmpi_nvregion.Store
module Region = Nvmpi_nvregion.Region
module Layout = Nvmpi_addr.Layout
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Vaddr = Nvmpi_addr.Kinds.Vaddr
module Node = Nvmpi_structures.Node
module Durable = Nvmpi_structures.Durable
module Objstore = Nvmpi_tx.Objstore
module Kvstore = Nvmpi_apps.Kvstore
module Snapshot = Nvmpi_snapshot.Snapshot
module Zipf = Nvmpi_server.Zipf

(* Write-amplification measurement for the snapshot durability mode
   (docs/SNAPSHOT.md): the same small-update workload run three times —

   - [undo]: per-op undo-log durability. The kvstore rows use the real
     [lib/tx] write path (undo records + clwb/fence per put). The
     structure rows emulate the same discipline at the op boundary: an
     observer records every NVM line the op dirties, and the op then
     appends an old-image undo record per line to a log, flushes it,
     fences, flushes the dirty lines in place and fences again.
   - [snap-line]: un-instrumented mutations, [Snapshot.sync] per op at
     line granularity — only the 64-byte lines actually dirtied are
     logged and written back.
   - [snap-page]: the same sync at page granularity — the
     FAMS/msync-style unit. Every dirtied 4 KiB page is logged whole,
     which is exactly the amplification the snapshot mode exists to
     measure: on small scattered updates, bytes-written(line) must come
     out below bytes-written(page).

   All three arms replay an identical op stream (same seed, same
   draws). "bytes written" is media traffic: 64 bytes per clwb
   ([timing.flushes]) — log appends, write-backs and metadata alike go
   through explicit flushes in every arm, so the column is directly
   comparable. Cycle cells are the regression gate; the experiment is
   additive, with its own committed baseline (BENCH_snapshot.json) and
   never appears in BENCH_seed.json. *)

let keys = 64
let theta = 0.9
let line_bytes = 64

let structures = [ Instance.Hashset; Instance.Btree ]
let structure_reprs = [ Repr.Off_holder; Repr.Riv ]
let kv_reprs = [ Repr.Off_holder; Repr.Riv; Repr.Based ]

type arm = Undo | Snap of Snapshot.granularity

let arm_label = function
  | Undo -> "undo"
  | Snap g -> "snap-" ^ Snapshot.granularity_to_string g

let scaled scale n = max 120 (int_of_float (float_of_int n *. scale))

let counter name counters =
  Option.value ~default:0 (List.assoc_opt name counters)

let boot ~seed repr =
  let store = Store.create () in
  let machine = Machine.create ~seed ~store () in
  let rid = Machine.create_region machine ~size:(1 lsl 21) in
  let region = Machine.open_region machine rid in
  if repr = Repr.Based then Machine.set_based_region machine rid;
  (machine, region)

(* Emulated undo-log discipline for the structure rows: old-image
   records ([8-byte header | 64-byte line image]) appended through the
   observed access path so the log traffic costs real stores and real
   flushes, mirroring lib/tx's add_range choreography. *)
let undo_logger machine region =
  let mem = machine.Machine.mem in
  let layout = machine.Machine.layout in
  let log_cap = 256 * 1024 in
  let log = Region.alloc region log_cap in
  let cursor = ref 0 in
  let lines = ref [] in
  let seen = Hashtbl.create 64 in
  let recording = ref false in
  Memsim.add_observer mem (fun ~write ~addr ~size:_ ->
      if write && !recording && Layout.in_nv_space layout addr then begin
        let l = addr land lnot (line_bytes - 1) in
        if not (Hashtbl.mem seen l) then begin
          Hashtbl.add seen l ();
          lines := l :: !lines
        end
      end);
  let op_boundary () =
    recording := false;
    let dirty = List.rev !lines in
    lines := [];
    Hashtbl.reset seen;
    if dirty <> [] then begin
      let timing = machine.Machine.timing in
      (* Undo records first: old images must be durable before the
         mutated lines may be written back. *)
      List.iter
        (fun l ->
          if !cursor + 8 + line_bytes > log_cap then cursor := 0;
          let rec_base = Vaddr.add log !cursor in
          Memsim.store64 mem rec_base l;
          for w = 0 to (line_bytes / 8) - 1 do
            Memsim.store64 mem
              (Vaddr.add rec_base (8 + (w * 8)))
              (Memsim.load64 mem (Vaddr.v (l + (w * 8))))
          done;
          let lo = (rec_base :> int) land lnot (line_bytes - 1) in
          let hi = (rec_base :> int) + 8 + line_bytes - 1 in
          let rec flush_at a =
            if a <= hi then begin
              Timing.flush timing ~addr:a;
              flush_at (a + line_bytes)
            end
          in
          flush_at lo;
          cursor := !cursor + 8 + line_bytes)
        dirty;
      Timing.fence timing;
      List.iter (fun l -> Timing.flush timing ~addr:l) dirty;
      Timing.fence timing
    end
  in
  (recording, op_boundary)

let run_structure ~ops ~seed structure repr arm =
  let machine, region = boot ~seed repr in
  let node =
    Node.make ~durability:Durable.Eager machine
      ~mode:(Node.Plain [| region |]) ~payload:32
  in
  let inst = Instance.create structure repr node ~name:"snapexp" in
  let per_op =
    match arm with
    | Undo ->
        let recording, op_boundary = undo_logger machine region in
        fun f ->
          recording := true;
          f ();
          op_boundary ()
    | Snap granularity ->
        let snap = Snapshot.create machine region ~granularity () in
        fun f ->
          f ();
          Snapshot.sync snap
  in
  for k = 1 to keys do
    inst.Instance.insert k
  done;
  (match arm with
  | Undo -> ()
  | Snap _ ->
      (* Drain the preload out of the dirty set so the measured epochs
         start clean, matching the undo arm's empty log. *)
      per_op (fun () -> ()));
  let rng = Random.State.make [| seed; 0x5A9E |] in
  let z = Zipf.v ~n:keys ~theta in
  let metrics = Machine.metrics machine in
  let before = Metrics.snapshot metrics in
  let c0 = Machine.cycles machine in
  for op = 1 to ops do
    let key = 1 + Zipf.next z rng in
    let r = Random.State.int rng 100 in
    per_op (fun () ->
        if r < 50 then ignore (inst.Instance.search key)
        else if r mod 2 = 0 then inst.Instance.insert (keys + op)
        else ignore (inst.Instance.remove key))
  done;
  let cycles = Machine.cycles machine - c0 in
  let counters = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  (cycles, counters)

let run_kv ~ops ~seed repr arm =
  let machine, region = boot ~seed repr in
  let snap =
    match arm with
    | Undo -> None
    | Snap granularity -> Some (Snapshot.create machine region ~granularity ())
  in
  (* The undo arm keeps the default palloc heap (its op log is part of
     the discipline being measured); the snapshot arms pin the
     flush-free freelist so nothing but sync touches durability. *)
  let heap, write_path =
    match arm with Undo -> (`Palloc, `Tx) | Snap _ -> (`Freelist, `Plain)
  in
  let os = Objstore.create machine region ~heap () in
  let kv = Kvstore.create os ~repr ~name:"kv" ~buckets:32 ~write_path () in
  for k = 1 to keys do
    Kvstore.put kv ~key:k (Printf.sprintf "v0-%04d" k)
  done;
  Option.iter Snapshot.sync snap;
  let rng = Random.State.make [| seed; 0x5A9F |] in
  let z = Zipf.v ~n:keys ~theta in
  let metrics = Machine.metrics machine in
  let before = Metrics.snapshot metrics in
  let c0 = Machine.cycles machine in
  for op = 1 to ops do
    let key = 1 + Zipf.next z rng in
    let r = Random.State.int rng 100 in
    if r < 30 then ignore (Kvstore.get kv ~key)
    else if r mod 5 = 0 then ignore (Kvstore.delete kv ~key)
    else Kvstore.put kv ~key (Printf.sprintf "v%d-%04d" op key);
    Option.iter Snapshot.sync snap
  done;
  let cycles = Machine.cycles machine - c0 in
  let counters = Metrics.diff ~before ~after:(Metrics.snapshot metrics) in
  (cycles, counters)

let arms = [ Undo; Snap Snapshot.Line; Snap Snapshot.Page ]

let table ?(scale = 1.0) ?seed () =
  let seed = Option.value seed ~default:19 in
  let ops = scaled scale 600 in
  let row name runner =
    let results = List.map (fun arm -> (arm, runner arm)) arms in
    let bytes counters = counter "timing.flushes" counters * line_bytes in
    let cell (arm, (cycles, counters)) =
      Json.Obj
        [
          ("label", Json.String (arm_label arm));
          ("cycles", Json.Int cycles);
          ("bytes_written", Json.Int (bytes counters));
          ("counters", Metrics.json_of_counters counters);
        ]
    in
    let get arm = List.assoc arm results in
    let line_b = bytes (snd (get (Snap Snapshot.Line))) in
    let page_b = bytes (snd (get (Snap Snapshot.Page))) in
    ( [
        name;
        string_of_int (fst (get Undo));
        string_of_int (fst (get (Snap Snapshot.Line)));
        string_of_int (fst (get (Snap Snapshot.Page)));
        string_of_int (bytes (snd (get Undo)));
        string_of_int line_b;
        string_of_int page_b;
        (if line_b = 0 then "-"
         else Printf.sprintf "%.1fx" (float_of_int page_b /. float_of_int line_b));
      ],
      Json.Obj
        [
          ("row", Json.String name);
          ("cells", Json.List (List.map cell results));
        ] )
  in
  let structure_rows =
    List.concat_map
      (fun structure ->
        List.map
          (fun repr ->
            row
              (Printf.sprintf "%s/%s"
                 (Instance.structure_name structure)
                 (Repr.to_string repr))
              (fun arm -> run_structure ~ops ~seed structure repr arm))
          structure_reprs)
      structures
  in
  let kv_rows =
    List.map
      (fun repr ->
        row
          (Printf.sprintf "kvstore/%s" (Repr.to_string repr))
          (fun arm -> run_kv ~ops ~seed repr arm))
      kv_reprs
  in
  let rows, records = List.split (structure_rows @ kv_rows) in
  {
    Table.title =
      "Snapshot durability: per-op undo logging vs line- and \
       page-granular snapshot sync";
    header =
      [
        "workload/repr";
        "undo cycles";
        "snap-line cycles";
        "snap-page cycles";
        "undo bytes";
        "snap-line bytes";
        "snap-page bytes";
        "page/line";
      ];
    rows;
    notes =
      [
        Printf.sprintf
          "%d ops over %d keys (theta %g), sync per op; bytes = \
           timing.flushes x %d (media line write-backs: undo records, \
           WAL appends, in-place write-backs and metadata alike); \
           snap.* counters in the snapshot cells break the WAL traffic \
           out (docs/SNAPSHOT.md, docs/METRICS.md)"
          ops keys theta line_bytes;
      ];
    records;
  }
