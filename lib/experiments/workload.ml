let shuffle a ~seed =
  let st = Random.State.make [| seed; 0x5487 |] in
  let b = Array.copy a in
  for i = Array.length b - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = b.(i) in
    b.(i) <- b.(j);
    b.(j) <- t
  done;
  b

let keys ~n ~seed =
  let st = Random.State.make [| seed; 0x11C5 |] in
  let seen = Hashtbl.create n in
  let out = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let k = 1 + Random.State.int st 0x3FFF_FFFF in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out.(!i) <- k;
      incr i
    end
  done;
  out

let search_sample ~keys ~n ~seed =
  let st = Random.State.make [| seed; 0x9DB3 |] in
  Array.init n (fun _ -> keys.(Random.State.int st (Array.length keys)))

let word_key = Nvmpi_apps.Wordcount.key_of_word

(* Total injective mapping from positive keys to lowercase words: the
   key's base-26 digit string. (Distinct from the wordcount encoding,
   which is only defined on strings it produced.) *)
let key_word k =
  if k <= 0 then invalid_arg "Workload.key_word";
  let b = Buffer.create 8 in
  let rec go k =
    if k > 0 then begin
      go (k / 26);
      Buffer.add_char b (Char.chr (Char.code 'a' + (k mod 26)))
    end
  in
  go k;
  Buffer.contents b

let trie_words ~n ~seed =
  (* The vocabulary generator already produces distinct words. *)
  Nvmpi_apps.Text_gen.vocabulary ~size:n ~seed
