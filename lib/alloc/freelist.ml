module Memsim = Nvmpi_memsim.Memsim
module Bitops = Nvmpi_addr.Bitops
module Vaddr = Nvmpi_addr.Kinds.Vaddr

(* The handle keeps the range bounds as raw ints: every persistent link
   is an offset from [lo], and the block math below is offset
   arithmetic. Absolute addresses ({!Vaddr.t}) appear exactly at the
   [abs]/[off] trust boundary and in the public signature. *)
type t = { mem : Memsim.t; lo : int; hi : int }

exception Out_of_memory of { requested : int; free : int }
exception Corrupted of string

let head_cell_bytes = 16
let header_bytes = 16
let min_block = 32 (* header + one payload word for the free-list link *)
let st_free = 0
let st_alloc = 1

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupted s)) fmt

(* All persistent links are offsets from [lo]; 0 is the end of the list
   (no block can start at offset 0, the head cell lives there). *)
let abs t off = Vaddr.v (t.lo + off)
let off t a = a - t.lo
let heap_size t = t.hi - t.lo
let get_head t = Memsim.load64 t.mem (Vaddr.v t.lo)
let set_head t v = Memsim.store64 t.mem (Vaddr.v t.lo) v
let get_size t off = Memsim.load64 t.mem (abs t off)
let set_size t off v = Memsim.store64 t.mem (abs t off) v
let get_status t off = Memsim.load64 t.mem (Vaddr.add (abs t off) 8)
let set_status t off v = Memsim.store64 t.mem (Vaddr.add (abs t off) 8) v
let get_next t off = Memsim.load64 t.mem (Vaddr.add (abs t off) header_bytes)

let set_next t off v =
  Memsim.store64 t.mem (Vaddr.add (abs t off) header_bytes) v

let check_range mem ~lo ~hi =
  if not (Bitops.is_aligned lo 8 && Bitops.is_aligned hi 8) then
    invalid_arg "Freelist: range must be 8-aligned";
  if hi - lo < head_cell_bytes + min_block + min_block then
    invalid_arg "Freelist: range too small";
  ignore mem

let init mem ~lo:(lo : Vaddr.t) ~hi:(hi : Vaddr.t) =
  let lo = (lo :> int) and hi = (hi :> int) in
  check_range mem ~lo ~hi;
  let t = { mem; lo; hi } in
  let first = head_cell_bytes in
  set_head t first;
  set_size t first (heap_size t - head_cell_bytes);
  set_status t first st_free;
  set_next t first 0;
  t

let attach mem ~lo:(lo : Vaddr.t) ~hi:(hi : Vaddr.t) =
  let lo = (lo :> int) and hi = (hi :> int) in
  check_range mem ~lo ~hi;
  { mem; lo; hi }

let block_ok t o =
  o >= head_cell_bytes && o + min_block <= heap_size t && o land 7 = 0

let validate_block t o ctx =
  if not (block_ok t o) then corrupt "%s: bad block offset 0x%x" ctx o;
  let size = get_size t o in
  if size < min_block || o + size > heap_size t || size land 7 <> 0 then
    corrupt "%s: bad block size %d at 0x%x" ctx size o

let alloc t n =
  if n <= 0 then invalid_arg "Freelist.alloc: non-positive size";
  let payload = max (Bitops.align_up n 8) (min_block - header_bytes) in
  let need = payload + header_bytes in
  (* First fit: [prev] is the offset of the block whose [next] points at
     [cur] (0 when [cur] is the head). *)
  let rec find prev cur =
    if cur = 0 then None
    else begin
      validate_block t cur "alloc";
      if get_status t cur <> st_free then
        corrupt "alloc: block 0x%x on free list is not free" cur;
      if get_size t cur >= need then Some (prev, cur)
      else find cur (get_next t cur)
    end
  in
  let set_link prev v = if prev = 0 then set_head t v else set_next t prev v in
  match find 0 (get_head t) with
  | None ->
      let free =
        let rec total cur acc =
          if cur = 0 then acc
          else total (get_next t cur) (acc + get_size t cur - header_bytes)
        in
        total (get_head t) 0
      in
      raise (Out_of_memory { requested = n; free })
  | Some (prev, cur) ->
      let size = get_size t cur in
      let next = get_next t cur in
      if size - need >= min_block then begin
        (* Split: the tail remains free and takes [cur]'s place in the
           address-ordered list. *)
        let tail = cur + need in
        set_size t tail (size - need);
        set_status t tail st_free;
        set_next t tail next;
        set_link prev tail;
        set_size t cur need
      end
      else set_link prev next;
      set_status t cur st_alloc;
      Vaddr.add (abs t cur) header_bytes

let free t (payload_addr : Vaddr.t) =
  let o = off t ((payload_addr :> int) - header_bytes) in
  validate_block t o "free";
  if get_status t o <> st_alloc then
    corrupt "free: block 0x%x is not allocated (double free?)" o;
  set_status t o st_free;
  (* Address-ordered insertion. *)
  let rec find_spot prev cur =
    if cur = 0 || cur > o then (prev, cur) else find_spot cur (get_next t cur)
  in
  let prev, next = find_spot 0 (get_head t) in
  set_next t o next;
  if prev = 0 then set_head t o else set_next t prev o;
  (* Coalesce with the physical successor. *)
  if next <> 0 && o + get_size t o = next then begin
    set_size t o (get_size t o + get_size t next);
    set_next t o (get_next t next)
  end;
  (* Coalesce with the physical predecessor. *)
  if prev <> 0 && prev + get_size t prev = o then begin
    set_size t prev (get_size t prev + get_size t o);
    set_next t prev (get_next t o)
  end

let usable_size t (payload_addr : Vaddr.t) =
  let o = off t ((payload_addr :> int) - header_bytes) in
  validate_block t o "usable_size";
  if get_status t o <> st_alloc then corrupt "usable_size: block not allocated";
  get_size t o - header_bytes

let free_bytes t =
  let rec go cur acc =
    if cur = 0 then acc
    else go (get_next t cur) (acc + get_size t cur - header_bytes)
  in
  go (get_head t) 0

let iter_blocks t f =
  let rec go o =
    if o < heap_size t then begin
      validate_block t o "iter_blocks";
      let size = get_size t o in
      f
        ~addr:(Vaddr.add (abs t o) header_bytes)
        ~size:(size - header_bytes)
        ~free:(get_status t o = st_free);
      go (o + size)
    end
  in
  go head_cell_bytes

let block_count t =
  let a = ref 0 and f = ref 0 in
  iter_blocks t (fun ~addr:_ ~size:_ ~free ->
      if free then incr f else incr a);
  (!a, !f)

let check t =
  (* Physical walk: sizes tile the heap exactly; statuses are sane; no
     two adjacent free blocks (coalescing invariant). *)
  let phys_free = ref [] in
  let prev_free = ref false in
  let last_end = ref head_cell_bytes in
  iter_blocks t (fun ~addr ~size ~free ->
      let o = off t ((addr :> int) - header_bytes) in
      if o <> !last_end then corrupt "check: block gap at 0x%x" o;
      last_end := o + size + header_bytes;
      let status = get_status t o in
      if status <> st_free && status <> st_alloc then
        corrupt "check: bad status %d at 0x%x" status o;
      if free && !prev_free then corrupt "check: adjacent free blocks at 0x%x" o;
      prev_free := free;
      if free then phys_free := o :: !phys_free);
  if !last_end <> heap_size t then
    corrupt "check: heap walk ended at 0x%x, expected 0x%x" !last_end
      (heap_size t);
  let phys_free = List.rev !phys_free in
  (* Free-list walk: sorted, acyclic, and exactly the physical free set. *)
  let rec walk cur acc steps =
    if cur = 0 then List.rev acc
    else if steps > heap_size t then corrupt "check: free list cycle"
    else begin
      validate_block t cur "check";
      (match acc with
      | prev :: _ when prev >= cur -> corrupt "check: free list not sorted"
      | _ -> ());
      walk (get_next t cur) (cur :: acc) (steps + 1)
    end
  in
  let list_free = walk (get_head t) [] 0 in
  if list_free <> phys_free then
    corrupt "check: free list (%d entries) disagrees with heap walk (%d)"
      (List.length list_free) (List.length phys_free)
