(** A first-fit free-list allocator with splitting and physical
    coalescing, whose entire state lives {e inside simulated memory} as
    intra-range offsets.

    Because every link is an offset from the managed range's base, the
    allocator state is itself position independent: a region formatted
    with this allocator can be closed, reopened at a different virtual
    address, re-{!attach}ed and keep allocating — which the tests
    exercise. This is the persistent-heap building block used by the
    transactional object store.

    Layout: the first 16 bytes of the managed range are the list head
    cell; each block carries a 16-byte header [{size; status}] where
    [size] includes the header. Free blocks keep their successor (an
    offset, 0 = end of list) in the first payload word; the free list is
    kept sorted by address so freeing can coalesce with both physical
    neighbours. *)

type t

exception Out_of_memory of { requested : int; free : int }
exception Corrupted of string

val init : Nvmpi_memsim.Memsim.t -> lo:Nvmpi_addr.Kinds.Vaddr.t -> hi:Nvmpi_addr.Kinds.Vaddr.t -> t
(** Formats the range [[lo, hi)] (both 8-aligned, at least 64 bytes) as
    one big free block and returns a handle. *)

val attach : Nvmpi_memsim.Memsim.t -> lo:Nvmpi_addr.Kinds.Vaddr.t -> hi:Nvmpi_addr.Kinds.Vaddr.t -> t
(** Re-attaches to a previously formatted range, possibly mapped at a
    different virtual address than when it was formatted. *)

val alloc : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** [alloc t n] returns the absolute address of an 8-aligned block of at
    least [n] bytes. @raise Out_of_memory if no block fits. *)

val free : t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Releases a block by its payload address, coalescing with adjacent
    free blocks. @raise Corrupted if the address is not an allocated
    block. *)

val usable_size : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Payload capacity of the allocated block at the given address. *)

val free_bytes : t -> int
(** Total payload bytes on the free list. *)

val block_count : t -> int * int
(** [(allocated, free)] block counts from a full heap walk. *)

val check : t -> unit
(** Walks the heap and the free list and validates all invariants
    (header sanity, no overlap, free list sorted and acyclic, no two
    adjacent free blocks). @raise Corrupted on violation. *)

val iter_blocks :
  t -> (addr:Nvmpi_addr.Kinds.Vaddr.t -> size:int -> free:bool -> unit) -> unit
(** Physical-order walk over all blocks; [addr]/[size] describe the
    payload. *)
