(** The per-address-space NVRegion manager.

    Opening a region maps its image from the {!Store} into a randomly
    chosen NV segment of the data area — modelling both address-space
    randomization and the fact that nothing guarantees a region the same
    virtual address from one run to the next. Closing a region writes
    the (possibly modified) image back to the store and unmaps it.

    The manager performs its image copies with memory observers disabled:
    mapping is an OS-level operation whose cost is not part of any of the
    paper's measured pointer operations. *)

type t

val create :
  ?seed:int ->
  layout:Nvmpi_addr.Layout.t ->
  mem:Nvmpi_memsim.Memsim.t ->
  store:Store.t ->
  unit ->
  t

val layout : t -> Nvmpi_addr.Layout.t
val store : t -> Store.t
val mem : t -> Nvmpi_memsim.Memsim.t

val create_region : t -> size:int -> Nvmpi_addr.Kinds.Rid.t
(** Creates a new (closed) region image in the store; returns its ID. *)

val open_region :
  ?at_nvbase:Nvmpi_addr.Kinds.Seg.t -> t -> Nvmpi_addr.Kinds.Rid.t -> Region.t
(** [open_region t rid] maps region [rid] at a fresh random NV segment
    and returns the handle; if the region is already open the existing
    handle is returned. [at_nvbase] pins the segment (used by tests and
    by the "what if the region moved" demonstrations).
    @raise Invalid_argument if the region does not exist, is larger than
    a segment, or [at_nvbase] is occupied/not in the data area. *)

val close_region : t -> Nvmpi_addr.Kinds.Rid.t -> unit
(** Persists the image back to the store and unmaps it. *)

val save_region : t -> Nvmpi_addr.Kinds.Rid.t -> unit
(** Persists without unmapping (a checkpoint). *)

val close_all : t -> unit

val region : t -> Nvmpi_addr.Kinds.Rid.t -> Region.t option
val region_exn : t -> Nvmpi_addr.Kinds.Rid.t -> Region.t
val is_open : t -> Nvmpi_addr.Kinds.Rid.t -> bool
val open_regions : t -> Region.t list
(** Open regions sorted by ID. *)

val region_of_addr : t -> Nvmpi_addr.Kinds.Vaddr.t -> Region.t option
(** The open region containing the given address, if any. *)
