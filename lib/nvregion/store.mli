(** The persistent NVM device: holds the canonical images of all
    NVRegions that exist in the system, independent of any address
    space.

    A {!t} outlives the simulated machines ("runs") that open regions
    from it: run A creates and populates a region, run B opens the same
    store and maps the region at a different virtual address — which is
    exactly the scenario position independence must survive.

    Images can also be saved to / loaded from files so that examples can
    demonstrate persistence across processes. *)

type t

type blob = {
  rid : Nvmpi_addr.Kinds.Rid.t;
  size : int;  (** usable region size in bytes, header included *)
  data : Bytes.t;
}

val create : unit -> t

val add : t -> size:int -> Nvmpi_addr.Kinds.Rid.t
(** [add t ~size] creates a fresh region image of [size] bytes with an
    initialized header and returns its region ID. IDs are allocated
    densely starting at 1 (ID 0 is reserved as "no region"). *)

val add_with_rid : t -> rid:Nvmpi_addr.Kinds.Rid.t -> size:int -> unit
(** Like {!add} with an explicit ID. Raises [Invalid_argument] if the ID
    is taken or is 0. *)

val grow : t -> rid:Nvmpi_addr.Kinds.Rid.t -> size:int -> unit
(** [grow t ~rid ~size] enlarges a region image to [size] bytes,
    preserving its contents (the tail is zeroed). The region must not be
    open anywhere. Raises [Invalid_argument] if [size] is not strictly
    larger or the region does not exist. *)

val find : t -> Nvmpi_addr.Kinds.Rid.t -> blob option
val find_exn : t -> Nvmpi_addr.Kinds.Rid.t -> blob
val mem : t -> Nvmpi_addr.Kinds.Rid.t -> bool
val remove : t -> Nvmpi_addr.Kinds.Rid.t -> unit
val ids : t -> Nvmpi_addr.Kinds.Rid.t list
(** All region IDs, sorted. *)

val next_rid : t -> Nvmpi_addr.Kinds.Rid.t

(** {1 File persistence} *)

val save_file : t -> string -> unit
(** Serializes every region image to the given file. *)

val load_file : string -> t
(** Loads a store previously written by {!save_file}. Raises [Failure]
    on a malformed file. *)

(** {1 Region-image header}

    The header occupies the first {!header_bytes} of every region image:
    magic, region ID, size, persisted heap cursor, and a root table of up
    to {!max_roots} named roots. It is read and written through the
    simulated memory once a region is mapped; the helpers here operate on
    raw images for store-level invariants. *)

val header_bytes : int
val max_roots : int
val magic : int

val blob_rid : blob -> Nvmpi_addr.Kinds.Rid.t
(** Region ID as recorded inside the image header (must match [rid]). *)
