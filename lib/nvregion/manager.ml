module Layout = Nvmpi_addr.Layout
module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Rid = K.Rid
module Seg = K.Seg
module Memsim = Nvmpi_memsim.Memsim

let log_src = Logs.Src.create "nvmpi.region" ~doc:"NVRegion lifecycle"

module Log = (val Logs.src_log log_src)

(* The two tables index by raw ints (hash keys); every public entry
   point converts at the boundary. *)
type t = {
  layout : Layout.t;
  mem : Memsim.t;
  store : Store.t;
  rng : Random.State.t;
  open_tbl : (int, Region.t) Hashtbl.t;
  used_nvbases : (int, int) Hashtbl.t; (* nvbase -> rid *)
}

let create ?seed ~layout ~mem ~store () =
  let rng =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  {
    layout;
    mem;
    store;
    rng;
    open_tbl = Hashtbl.create 16;
    used_nvbases = Hashtbl.create 16;
  }

let layout t = t.layout
let store t = t.store
let mem t = t.mem
let create_region t ~size = Store.add t.store ~size

let pick_nvbase t =
  let lo = Layout.data_nvbase_min t.layout in
  let n = Layout.usable_segments t.layout in
  let rec go attempts =
    if attempts > 10_000 then
      failwith "Manager.open_region: no free NV segment found"
    else
      let nb = lo + Random.State.int t.rng n in
      if Hashtbl.mem t.used_nvbases nb then go (attempts + 1) else nb
  in
  go 0

let open_region ?at_nvbase t (rid : Rid.t) =
  match Hashtbl.find_opt t.open_tbl (rid :> int) with
  | Some r -> r
  | None ->
      let blob = Store.find_exn t.store rid in
      if blob.Store.size > Layout.segment_size t.layout then
        invalid_arg
          (Printf.sprintf
             "Manager.open_region: region %d (%d bytes) exceeds segment size"
             (rid :> int)
             blob.Store.size);
      let nvbase =
        match at_nvbase with
        | None -> pick_nvbase t
        | Some (nb : Seg.t) ->
            let nb = (nb :> int) in
            if nb < Layout.data_nvbase_min t.layout
               || nb > Nvmpi_addr.Bitops.mask t.layout.Layout.l2
            then invalid_arg "Manager.open_region: nvbase not in data area";
            if Hashtbl.mem t.used_nvbases nb then
              invalid_arg "Manager.open_region: nvbase occupied";
            nb
      in
      let base = K.vaddr_of_seg t.layout (Seg.v nvbase) in
      Memsim.map t.mem ~addr:base ~size:blob.Store.size;
      Memsim.observed t.mem false;
      Memsim.blit_from_bytes t.mem ~addr:base blob.Store.data;
      Memsim.observed t.mem true;
      let r = Region.make ~mem:t.mem ~rid ~base ~size:blob.Store.size in
      Region.check_header r;
      Hashtbl.add t.open_tbl (rid :> int) r;
      Hashtbl.add t.used_nvbases nvbase (rid :> int);
      Log.debug (fun m ->
          m "opened region %d (%d bytes) at %a (nvbase 0x%x)" (rid :> int)
            blob.Store.size Vaddr.pp base nvbase);
      r

let region t (rid : Rid.t) = Hashtbl.find_opt t.open_tbl (rid :> int)

let region_exn t (rid : Rid.t) =
  match region t rid with
  | Some r -> r
  | None ->
      invalid_arg (Printf.sprintf "Manager: region %d not open" (rid :> int))

let is_open t (rid : Rid.t) = Hashtbl.mem t.open_tbl (rid :> int)

let save_region t rid =
  let r = region_exn t rid in
  let blob = Store.find_exn t.store rid in
  Memsim.observed t.mem false;
  let data =
    Memsim.blit_to_bytes t.mem ~addr:(Region.base r) ~len:(Region.size r)
  in
  Memsim.observed t.mem true;
  Bytes.blit data 0 blob.Store.data 0 (Bytes.length data)

let close_region t (rid : Rid.t) =
  let r = region_exn t rid in
  save_region t rid;
  Memsim.unmap t.mem ~addr:(Region.base r);
  Hashtbl.remove t.open_tbl (rid :> int);
  Hashtbl.remove t.used_nvbases
    (Seg.to_int (K.seg_of_vaddr t.layout (Region.base r)));
  Log.debug (fun m -> m "closed region %d (image persisted)" (rid :> int))

let close_all t =
  List.iter (fun rid -> close_region t (Rid.v rid))
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.open_tbl [])

let open_regions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.open_tbl []
  |> List.sort (fun a b -> Rid.compare (Region.rid a) (Region.rid b))

let region_of_addr t a =
  let found = ref None in
  Hashtbl.iter (fun _ r -> if Region.contains r a then found := Some r)
    t.open_tbl;
  !found
