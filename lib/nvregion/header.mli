(** Layout of the per-region header (the paper's per-NVRegion metadata:
    region ID at the start of the region, root locations, and type
    attributes).

    All quantities are byte offsets from the start of the region. *)

val bytes : int
(** Total header size; the region heap starts here. *)

val max_roots : int
val magic : int

val off_magic : int
val off_rid : int
val off_size : int
val off_heap_top : int
val off_nroots : int

val root_table_off : int
(** Offset of the first root entry. *)

val root_entry_bytes : int
(** One root entry: 32-byte zero-padded name, 8-byte offset, 8-byte type
    tag. *)

val root_name_bytes : int
val root_entry_off : int -> int
(** Offset of the [i]-th root entry. *)

val root_off_in_entry : int
val root_tag_in_entry : int
