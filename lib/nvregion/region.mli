(** An NVRegion mapped into a simulated address space.

    A region is a consecutive chunk of the NV-space data area, mapped at
    the base of an NV segment. All header and root operations go through
    the simulated memory, so they observe exactly what a program on the
    simulated machine would. *)

type t

exception Out_of_region_memory of { rid : Nvmpi_addr.Kinds.Rid.t; requested : int }

val make :
  mem:Nvmpi_memsim.Memsim.t ->
  rid:Nvmpi_addr.Kinds.Rid.t ->
  base:Nvmpi_addr.Kinds.Vaddr.t ->
  size:int ->
  t
(** Wraps an already-mapped range as a region handle. Used by the
    manager; library users obtain regions from
    {!Manager.open_region}. *)

val rid : t -> Nvmpi_addr.Kinds.Rid.t
val base : t -> Nvmpi_addr.Kinds.Vaddr.t
val size : t -> int
val mem : t -> Nvmpi_memsim.Memsim.t

val addr_of_offset : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Absolute address of an intra-region offset. Raises
    [Invalid_argument] if the offset is outside the region. *)

val offset_of_addr : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Inverse of {!addr_of_offset}. *)

val contains : t -> Nvmpi_addr.Kinds.Vaddr.t -> bool

val check_header : t -> unit
(** Validates magic and recorded region ID against the handle.
    @raise Failure on mismatch (a corrupted or mis-mapped image). *)

(** {1 Persisted heap cursor} *)

val heap_top : t -> int
(** Current bump-allocation cursor (an intra-region offset). *)

val set_heap_top : t -> int -> unit

val alloc : t -> ?align:int -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** [alloc t n] bump-allocates [n] bytes from the region heap and
    returns the {e absolute address} of the block, aligned to [align]
    (default 8). The cursor is persisted in the region header, so
    allocation state survives close/reopen.
    @raise Out_of_region_memory when the region is full. *)

val free_bytes : t -> int

(** {1 Named roots}

    Roots are stored as intra-region offsets, hence position
    independent. *)

val set_root : t -> ?tag:int -> string -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** [set_root t name addr] records [addr] (an absolute address inside
    the region) under [name]. Replaces an existing root of the same
    name. [tag] is an optional type attribute stored alongside.
    @raise Invalid_argument if the name exceeds 31 bytes, the address is
    outside the region, or the root table is full. *)

val root : t -> string -> Nvmpi_addr.Kinds.Vaddr.t option
(** Absolute address of the named root under the current mapping. *)

val root_tag : t -> string -> int option
val roots : t -> (string * Nvmpi_addr.Kinds.Vaddr.t) list
(** All roots as [(name, absolute address)], in table order. *)
