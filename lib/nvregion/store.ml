module K = Nvmpi_addr.Kinds
module Rid = K.Rid

type blob = { rid : Rid.t; size : int; data : Bytes.t }

(* The store indexes blobs by raw ID: it models the NVM device, below
   the typed discipline; [Rid.t] appears at the interface. *)
type t = { blobs : (int, blob) Hashtbl.t; mutable next : int }

let header_bytes = Header.bytes
let max_roots = Header.max_roots
let magic = Header.magic

let create () = { blobs = Hashtbl.create 16; next = 1 }

let init_header b ~rid ~size =
  Bytes.set_int64_le b Header.off_magic (Int64.of_int magic);
  Bytes.set_int64_le b Header.off_rid (Int64.of_int rid);
  Bytes.set_int64_le b Header.off_size (Int64.of_int size);
  Bytes.set_int64_le b Header.off_heap_top (Int64.of_int header_bytes);
  Bytes.set_int64_le b Header.off_nroots 0L

let add_with_rid t ~rid:(rid' : Rid.t) ~size =
  let rid = (rid' :> int) in
  if rid <= 0 then invalid_arg "Store.add_with_rid: rid must be positive";
  if Hashtbl.mem t.blobs rid then
    invalid_arg (Printf.sprintf "Store.add_with_rid: rid %d exists" rid);
  if size < header_bytes then
    invalid_arg
      (Printf.sprintf "Store.add_with_rid: size %d < header %d" size
         header_bytes);
  let data = Bytes.make size '\000' in
  init_header data ~rid ~size;
  Hashtbl.add t.blobs rid { rid = rid'; size; data };
  if rid >= t.next then t.next <- rid + 1

let add t ~size =
  let rid = Rid.v t.next in
  add_with_rid t ~rid ~size;
  rid

let find t (rid : Rid.t) = Hashtbl.find_opt t.blobs (rid :> int)

let grow t ~rid:(rid : Rid.t) ~size =
  match Hashtbl.find_opt t.blobs (rid :> int) with
  | None ->
      invalid_arg (Printf.sprintf "Store.grow: no region %d" (rid :> int))
  | Some b ->
      if size <= b.size then
        invalid_arg "Store.grow: new size must exceed the current size";
      let data = Bytes.make size '\000' in
      Bytes.blit b.data 0 data 0 b.size;
      (* The header records the region size; update it in the image. *)
      Bytes.set_int64_le data Header.off_size (Int64.of_int size);
      Hashtbl.replace t.blobs (rid :> int) { b with size; data }

let find_exn t (rid : Rid.t) =
  match find t rid with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Store.find_exn: no region %d" (rid :> int))

let mem t (rid : Rid.t) = Hashtbl.mem t.blobs (rid :> int)
let remove t (rid : Rid.t) = Hashtbl.remove t.blobs (rid :> int)

let ids t =
  Hashtbl.fold (fun k _ acc -> Rid.v k :: acc) t.blobs []
  |> List.sort Rid.compare

let next_rid t = Rid.v t.next

let blob_rid b =
  Rid.v (Int64.to_int (Bytes.get_int64_le b.data Header.off_rid))

let file_magic = "NVMPI-STORE-1\n"

let save_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc file_magic;
      let ids = ids t in
      output_binary_int oc (List.length ids);
      List.iter
        (fun rid ->
          let b = find_exn t rid in
          output_binary_int oc (b.rid :> int);
          output_binary_int oc b.size;
          output_bytes oc b.data)
        ids)

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length file_magic) in
      if m <> file_magic then failwith "Store.load_file: bad magic";
      let n = input_binary_int ic in
      let t = create () in
      for _ = 1 to n do
        let rid = input_binary_int ic in
        let size = input_binary_int ic in
        let data = Bytes.create size in
        really_input ic data 0 size;
        Hashtbl.add t.blobs rid { rid = Rid.v rid; size; data };
        if rid >= t.next then t.next <- rid + 1
      done;
      t)
