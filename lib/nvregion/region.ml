module Memsim = Nvmpi_memsim.Memsim
module K = Nvmpi_addr.Kinds
module Vaddr = K.Vaddr
module Rid = K.Rid

type t = { rid : Rid.t; base : Vaddr.t; size : int; mem : Memsim.t }

exception Out_of_region_memory of { rid : Rid.t; requested : int }

let make ~mem ~rid ~base ~size = { rid; base; size; mem }
let rid t = t.rid
let base t = t.base
let size t = t.size
let mem t = t.mem

let addr_of_offset t off =
  if off < 0 || off >= t.size then
    invalid_arg
      (Printf.sprintf "Region.addr_of_offset: offset 0x%x outside region %d"
         off
         (t.rid :> int));
  Vaddr.add t.base off

let offset_of_addr t a =
  let off = Vaddr.offset_in a ~base:t.base in
  if off < 0 || off >= t.size then
    invalid_arg
      (Printf.sprintf "Region.offset_of_addr: 0x%x outside region %d"
         (a :> int)
         (t.rid :> int));
  off

let contains t a =
  let off = Vaddr.offset_in a ~base:t.base in
  off >= 0 && off < t.size

let check_header t =
  let m = Memsim.load64 t.mem (Vaddr.add t.base Header.off_magic) in
  if m <> Header.magic then
    failwith (Printf.sprintf "Region %d: bad magic 0x%x" (t.rid :> int) m);
  let r = Memsim.load64 t.mem (Vaddr.add t.base Header.off_rid) in
  if r <> (t.rid :> int) then
    failwith
      (Printf.sprintf "Region %d: header records rid %d" (t.rid :> int) r)

let heap_top t = Memsim.load64 t.mem (Vaddr.add t.base Header.off_heap_top)

let set_heap_top t v =
  Memsim.store64 t.mem (Vaddr.add t.base Header.off_heap_top) v

let alloc t ?(align = 8) n =
  if n <= 0 then invalid_arg "Region.alloc: non-positive size";
  let top = heap_top t in
  let start = Nvmpi_addr.Bitops.align_up top align in
  if start + n > t.size then
    raise (Out_of_region_memory { rid = t.rid; requested = n });
  set_heap_top t (start + n);
  Vaddr.add t.base start

let free_bytes t = t.size - heap_top t

let nroots t = Memsim.load64 t.mem (Vaddr.add t.base Header.off_nroots)
let set_nroots t v = Memsim.store64 t.mem (Vaddr.add t.base Header.off_nroots) v

let read_name t i =
  let entry = Vaddr.add t.base (Header.root_entry_off i) in
  let b = Buffer.create Header.root_name_bytes in
  (try
     for j = 0 to Header.root_name_bytes - 1 do
       let c = Memsim.load8 t.mem (Vaddr.add entry j) in
       if c = 0 then raise Exit;
       Buffer.add_char b (Char.chr c)
     done
   with Exit -> ());
  Buffer.contents b

let find_index t name =
  let n = nroots t in
  let rec go i = if i >= n then None
    else if String.equal (read_name t i) name then Some i
    else go (i + 1)
  in
  go 0

let set_root t ?(tag = 0) name addr =
  if String.length name >= Header.root_name_bytes then
    invalid_arg "Region.set_root: name too long";
  if String.length name = 0 then invalid_arg "Region.set_root: empty name";
  if not (contains t addr) then
    invalid_arg "Region.set_root: address outside region";
  let i =
    match find_index t name with
    | Some i -> i
    | None ->
        let n = nroots t in
        if n >= Header.max_roots then
          invalid_arg "Region.set_root: root table full";
        set_nroots t (n + 1);
        n
  in
  let entry = Vaddr.add t.base (Header.root_entry_off i) in
  for j = 0 to Header.root_name_bytes - 1 do
    let c = if j < String.length name then Char.code name.[j] else 0 in
    Memsim.store8 t.mem (Vaddr.add entry j) c
  done;
  (* Roots are persisted as intra-region offsets — the off-holder idea
     applied to the structure's entry point — hence position
     independent. *)
  Memsim.store64 t.mem
    (Vaddr.add entry Header.root_off_in_entry)
    (Vaddr.offset_in addr ~base:t.base);
  Memsim.store64 t.mem (Vaddr.add entry Header.root_tag_in_entry) tag

let root t name =
  match find_index t name with
  | None -> None
  | Some i ->
      let entry = Vaddr.add t.base (Header.root_entry_off i) in
      Some
        (Vaddr.add t.base
           (Memsim.load64 t.mem (Vaddr.add entry Header.root_off_in_entry)))

let root_tag t name =
  match find_index t name with
  | None -> None
  | Some i ->
      let entry = Vaddr.add t.base (Header.root_entry_off i) in
      Some (Memsim.load64 t.mem (Vaddr.add entry Header.root_tag_in_entry))

let roots t =
  List.init (nroots t) (fun i ->
      let entry = Vaddr.add t.base (Header.root_entry_off i) in
      ( read_name t i,
        Vaddr.add t.base
          (Memsim.load64 t.mem (Vaddr.add entry Header.root_off_in_entry)) ))
