(** Deterministic synthetic text corpus.

    Stands in for the paper's English input files to {e wordcount}: a
    syllable-built vocabulary of lowercase words with Zipf-distributed
    frequencies, so the generated stream has the frequency skew real text
    has (which is what drives the BST's insert/lookup mix). *)

val vocabulary : size:int -> seed:int -> string array
(** [vocabulary ~size ~seed] is [size] distinct lowercase words. *)

val words : n:int -> vocab:int -> seed:int -> string array
(** [words ~n ~vocab ~seed] is a stream of [n] word occurrences drawn
    from a [vocab]-word vocabulary under a Zipf(1.0) distribution. *)

val zipf_sampler : n:int -> s:float -> seed:int -> unit -> int
(** [zipf_sampler ~n ~s ~seed] draws ranks in [[0, n)] with
    P(k) proportional to 1/(k+1)^s. *)

val reference_counts : string array -> (string * int) list
(** Exact word counts of a stream, host-side, for validating the
    NVM-resident wordcount. Sorted by word. *)
