module Repr = Core.Repr
module Engine = Core.Engine
module Bstree = Nvmpi_structures.Bstree
module Node = Nvmpi_structures.Node

type result = { distinct : int; total : int }

let max_word_len = 12

let key_of_word w =
  let n = String.length w in
  if n = 0 || n > max_word_len then
    invalid_arg "Wordcount.key_of_word: word length";
  let k = ref 0 in
  String.iter
    (fun c ->
      let d = Char.code c - Char.code 'a' in
      if d < 0 || d > 25 then
        invalid_arg "Wordcount.key_of_word: words must be lowercase a-z";
      k := (!k * 27) + d + 1)
    w;
  !k

let word_of_key k =
  let b = Buffer.create 8 in
  let rec go k =
    if k > 0 then begin
      go (k / 27);
      Buffer.add_char b (Char.chr (Char.code 'a' + (k mod 27) - 1))
    end
  in
  go k;
  Buffer.contents b

(* Reading a word from the input file, tokenizing it and encoding the
   key is real work the paper's application performs per word (the input
   is a file on disk); charged as ALU cycles proportional to the word
   length. *)
let per_word_cost w = 40 + (30 * String.length w)

(* The word-count body over one representation, written once. The
   staged engine selects one of nine static applications below; the
   dispatch engine applies it to [(val Repr.m kind)] at the call — the
   historical per-call functor application. *)
module Of (P : Core.Repr_sig.S) = struct
  module B = Bstree.Make (P)

  let count_words node ~name stream =
    let machine = node.Node.machine in
    let t =
      match Nvmpi_nvregion.Region.root (Node.home_region node) name with
      | None -> B.create node ~name
      | Some _ -> B.attach node ~name
    in
    Array.iter
      (fun w ->
        Core.Machine.alu machine (per_word_cost w);
        B.insert_count t ~key:(key_of_word w))
      stream;
    { distinct = B.size t; total = Array.length stream }

  let lookup node ~name w =
    let t = B.attach node ~name in
    B.count t ~key:(key_of_word w)

  let counts node ~name =
    let t = B.attach node ~name in
    let out = ref [] in
    B.iter t (fun ~addr:_ ~key -> out := key :: !out);
    List.rev_map (fun k -> (word_of_key k, B.count t ~key:k)) !out
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

module type WC = sig
  val count_words : Node.t -> name:string -> string array -> result
  val lookup : Node.t -> name:string -> string -> int
  val counts : Node.t -> name:string -> (string * int) list
end

module W_normal = Of (Core.Normal_ptr)
module W_off_holder = Of (Core.Off_holder)
module W_riv = Of (Core.Riv)
module W_fat = Of (Core.Fat)
module W_fat_cached = Of (Core.Fat_cached)
module W_based = Of (Core.Based_ptr)
module W_swizzle = Of (Core.Swizzle)
module W_packed_fat = Of (Core.Packed_fat)
module W_hw_oid = Of (Core.Hw_oid)

let staged : Repr.kind -> (module WC) = function
  | Repr.Normal -> (module W_normal)
  | Repr.Off_holder -> (module W_off_holder)
  | Repr.Riv -> (module W_riv)
  | Repr.Fat -> (module W_fat)
  | Repr.Fat_cached -> (module W_fat_cached)
  | Repr.Based -> (module W_based)
  | Repr.Swizzle -> (module W_swizzle)
  | Repr.Packed_fat -> (module W_packed_fat)
  | Repr.Hw_oid -> (module W_hw_oid)

let wc repr : (module WC) =
  match Engine.mode () with
  | Engine.Staged -> staged repr
  | Engine.Dispatch ->
      let (module P : Core.Repr_sig.S) = Repr.m repr in
      (module Of (P))

let count_words node ~repr ~name stream =
  let (module W) = wc repr in
  W.count_words node ~name stream

let lookup node ~repr ~name w =
  let (module W) = wc repr in
  W.lookup node ~name w

let counts node ~repr ~name =
  let (module W) = wc repr in
  W.counts node ~name
