let syllables =
  [| "ba"; "be"; "bi"; "bo"; "bu"; "da"; "de"; "di"; "do"; "du"; "fa"; "fe";
     "ka"; "ke"; "ki"; "ko"; "ku"; "la"; "le"; "li"; "lo"; "lu"; "ma"; "me";
     "na"; "ne"; "ni"; "no"; "nu"; "pa"; "pe"; "pi"; "po"; "pu"; "ra"; "re";
     "sa"; "se"; "si"; "so"; "su"; "ta"; "te"; "ti"; "to"; "tu"; "va"; "ve";
     "za"; "ze" |]

let vocabulary ~size ~seed =
  if size <= 0 then invalid_arg "Text_gen.vocabulary";
  let st = Random.State.make [| seed; 0x7E57 |] in
  let seen = Hashtbl.create size in
  let out = Array.make size "" in
  let count = ref 0 in
  while !count < size do
    let parts = 2 + Random.State.int st 3 in
    let b = Buffer.create 8 in
    for _ = 1 to parts do
      Buffer.add_string b syllables.(Random.State.int st (Array.length syllables))
    done;
    let w = Buffer.contents b in
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out.(!count) <- w;
      incr count
    end
  done;
  out

let zipf_sampler ~n ~s ~seed =
  if n <= 0 then invalid_arg "Text_gen.zipf_sampler";
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. Float.of_int (k + 1) ** s);
    cumulative.(k) <- !total
  done;
  let st = Random.State.make [| seed; 0x21BF |] in
  fun () ->
    let u = Random.State.float st !total in
    (* Binary search for the first cumulative weight >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

let words ~n ~vocab ~seed =
  let v = vocabulary ~size:vocab ~seed in
  let sample = zipf_sampler ~n:vocab ~s:1.0 ~seed:(seed + 1) in
  Array.init n (fun _ -> v.(sample ()))

let reference_counts stream =
  let tbl = Hashtbl.create 1024 in
  Array.iter
    (fun w ->
      Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
    stream;
  Hashtbl.fold (fun w c acc -> (w, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
