(** The paper's {e wordcount} application (Section 6.3, Figure 15): word
    frequencies of an input stream accumulated in a binary search tree
    that lives on an NVRegion, under any pointer representation.

    Words are mapped to BST keys by an injective base-27 encoding (so no
    two words collide), and each tree node's first payload word is the
    occurrence counter. *)

type result = {
  distinct : int;  (** distinct words = BST nodes *)
  total : int;  (** total occurrences counted *)
}

val key_of_word : string -> int
(** Injective encoding of a lowercase word (at most 12 characters) into
    a key. Preserves nothing but identity; the BST only needs a total
    order. @raise Invalid_argument on empty/too-long/non-[a-z] words. *)

val word_of_key : int -> string
(** Inverse of {!key_of_word}. *)

val count_words :
  Nvmpi_structures.Node.t -> repr:Core.Repr.kind -> name:string -> string array -> result
(** Builds (or extends) the frequency tree named [name] with every word
    of the stream. *)

val lookup : Nvmpi_structures.Node.t -> repr:Core.Repr.kind -> name:string -> string -> int
(** Occurrence count recorded for a word (0 if never seen). *)

val counts :
  Nvmpi_structures.Node.t -> repr:Core.Repr.kind -> name:string -> (string * int) list
(** All recorded [(word, count)] pairs, sorted by word — comparable to
    {!Text_gen.reference_counts}. *)
