(** A crash-consistent persistent key-value store: the kind of
    application the paper's introduction motivates (key-value stores on
    NVM), combining the transactional object store with
    position-independent pointers.

    Layout: a chained hash index whose pointer slots use the chosen
    representation; values are variable-length byte objects
    ([length | bytes]) in the same object store.

    Two write paths ({!write_path}):
    - [`Tx] (the default): updates run inside undo-logged
      transactions, so a crash mid-[put]/[delete] rolls back to the
      previous state on the next {!attach}; replaced values are
      reclaimed only after commit (a crash can leak an object but
      never corrupt the index — the usual deferred-reclamation
      trade-off).
    - [`Plain] (snapshot durability, docs/SNAPSHOT.md): every store is
      un-instrumented — no undo logging, no flush, no fence — and the
      caller makes whole epochs durable with
      {!Nvmpi_snapshot.Snapshot.sync}. The default flips to [`Plain]
      when [Nvmpi_snapshot.Snapshot.enabled ()] (the [--durability
      snapshot] flag).

    The whole store is anchored at a named NVRoot and survives region
    remaps. *)

type t

val create :
  Nvmpi_tx.Objstore.t -> repr:Core.Repr.kind -> name:string ->
  ?buckets:int -> ?write_path:[ `Tx | `Plain ] -> unit -> t
(** Formats a fresh store (default 256 buckets) in the object store's
    region. *)

val attach :
  ?write_path:[ `Tx | `Plain ] -> Nvmpi_tx.Objstore.t ->
  repr:Core.Repr.kind -> name:string -> t
(** Re-opens a store (possibly after a remap/crash).
    @raise Failure if the root is missing or of the wrong kind. *)

val write_path : t -> [ `Tx | `Plain ]

val put : t -> key:int -> string -> unit
(** Inserts or replaces, atomically w.r.t. crashes. *)

val get : t -> key:int -> string option
val mem : t -> key:int -> bool

val delete : t -> key:int -> bool
(** Atomically removes; [false] if absent. *)

val size : t -> int
val keys : t -> int list
(** All keys, sorted. *)

val iter : t -> (key:int -> value:string -> unit) -> unit

val simulate_crash_during_put : t -> key:int -> string -> unit
(** Starts a [put] and drops power before commit (test/demo hook): the
    persisted undo log still holds the records, and the next
    {!attach} rolls back. [`Tx] write path only
    (@raise Invalid_argument under [`Plain]). *)
