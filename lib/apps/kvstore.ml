module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Memsim = Nvmpi_memsim.Memsim
module Objstore = Nvmpi_tx.Objstore
module Tx = Nvmpi_tx.Tx
module Repr = Core.Repr
module Engine = Core.Engine
module Vaddr = Nvmpi_addr.Kinds.Vaddr
module Bitops = Nvmpi_addr.Bitops

let kind_tag = 0x4B56 (* "KV" *)

(* Meta block: [kind | buckets | table-offset | reserved].
   Index entry: [next-slot | key (8) | value-slot]; the value slot
   points at a [length | bytes] object. *)

type t = {
  os : Objstore.t;
  tx : Tx.t;
  repr : Repr.kind;
  meta : Vaddr.t;
  table : Vaddr.t;
  buckets : int;
  write_path : [ `Tx | `Plain ];
}

let machine t = Objstore.machine t.os
let memory t = (machine t).Machine.mem
let slot t = Repr.slot_size t.repr

(* Slot operations go through the engine's per-kind direct dispatch:
   one match on the kind, no first-class module unpacked per call. *)
let load_slot t holder = Engine.load t.repr (machine t) ~holder

(* Index mutations are undo-logged before the representation writes the
   slot, so an interrupted transaction restores the previous encoding
   whatever the representation. Under the [`Plain] write path (snapshot
   durability, docs/SNAPSHOT.md) the store is un-instrumented: epochs
   are made durable wholesale by [Snapshot.sync], not per mutation. *)
let store_slot_tx t holder target =
  if t.write_path = `Tx then Tx.add_range t.tx ~addr:holder ~len:(slot t);
  Engine.store t.repr (machine t) ~holder target

let store_slot_raw t holder target =
  Engine.store t.repr (machine t) ~holder target

(* Objects allocated inside the current transaction are filled with
   plain stores; register their whole wrapped block so the commit
   flushes them — a committed pointer must never reference bytes that
   were still sitting in the cache when power failed. *)
let tx_fresh t payload ~size =
  if Tx.active t.tx then
    Tx.add_fresh t.tx
      ~addr:(Vaddr.add payload (-Objstore.header_bytes))
      ~len:(Bitops.align_up (Objstore.header_bytes + size) Objstore.wrap_unit)

let next_off = 0
let key_off t = slot t
let val_off t = slot t + 8
let entry_size t = (2 * slot t) + 8

let bucket_holder t i = Vaddr.add t.table (i * slot t)

let hash t ~key =
  Machine.alu (machine t) 4;
  let h = key * 0x2545F4914F6CDD1 in
  (h lxor (h lsr 31)) land max_int mod t.buckets

(* The process default follows the selected durability discipline:
   [--durability snapshot] flips every store to the plain path. *)
let default_write_path () =
  if Nvmpi_snapshot.Snapshot.enabled () then `Plain else `Tx

let create os ~repr ~name ?(buckets = 256) ?write_path () =
  if buckets <= 0 then invalid_arg "Kvstore.create: buckets";
  let write_path =
    match write_path with Some w -> w | None -> default_write_path ()
  in
  let machine = Objstore.machine os in
  let region = Objstore.region os in
  let meta = Objstore.alloc os ~tag:kind_tag ~size:32 () in
  let table =
    Objstore.alloc os ~tag:kind_tag ~size:(buckets * Repr.slot_size repr) ()
  in
  let t = { os; tx = Tx.create os; repr; meta; table; buckets; write_path } in
  Machine.store64_fast machine meta kind_tag;
  Machine.store64_fast machine (Vaddr.add meta 8) buckets;
  Machine.store64_fast machine (Vaddr.add meta 16)
    (Vaddr.offset_in table ~base:(Region.base region));
  Machine.store64_fast machine (Vaddr.add meta 24) 0;
  for i = 0 to buckets - 1 do
    store_slot_raw t (bucket_holder t i) Vaddr.null
  done;
  Region.set_root region ~tag:kind_tag name meta;
  t

let attach ?write_path os ~repr ~name =
  let write_path =
    match write_path with Some w -> w | None -> default_write_path ()
  in
  let machine = Objstore.machine os in
  let region = Objstore.region os in
  match Region.root region name with
  | None -> failwith (Printf.sprintf "Kvstore.attach: no root %S" name)
  | Some meta ->
      if Machine.load64_fast machine meta <> kind_tag then
        failwith "Kvstore.attach: root is not a key-value store";
      let buckets = Machine.load64_fast machine (Vaddr.add meta 8) in
      let table =
        Vaddr.add (Region.base region)
          (Machine.load64_fast machine (Vaddr.add meta 16))
      in
      { os; tx = Tx.create os; repr; meta; table; buckets; write_path }

(* Locate the entry for [key]: [`Found (prev_holder, entry)] or
   [`Missing last_holder]. *)
let locate t ~key =
  let rec go holder =
    let entry = load_slot t holder in
    if Vaddr.is_null entry then `Missing holder
    else begin
      Objstore.touch_read t.os;
      if Machine.load64_fast (machine t) (Vaddr.add entry (key_off t)) = key
      then
        `Found (holder, entry)
      else go (Vaddr.add entry next_off)
    end
  in
  go (bucket_holder t (hash t ~key))

let read_value t entry =
  let v = load_slot t (Vaddr.add entry (val_off t)) in
  if Vaddr.is_null v then ""
  else
    let len = Machine.load64_fast (machine t) v in
    Bytes.to_string
      (Memsim.blit_to_bytes (memory t) ~addr:(Vaddr.add v 8) ~len)

let alloc_value t data =
  let len = String.length data in
  let v = Objstore.alloc t.os ~tag:kind_tag ~size:(8 + len) () in
  tx_fresh t v ~size:(8 + len);
  Machine.store64_fast (machine t) v len;
  if len > 0 then
    Memsim.blit_from_bytes (memory t) ~addr:(Vaddr.add v 8)
      (Bytes.of_string data);
  v

let put_body t ~key data =
  let fresh_value = alloc_value t data in
  match locate t ~key with
  | `Found (_, entry) ->
      let old = load_slot t (Vaddr.add entry (val_off t)) in
      store_slot_tx t (Vaddr.add entry (val_off t)) fresh_value;
      old
  | `Missing holder ->
      let entry = Objstore.alloc t.os ~tag:kind_tag ~size:(entry_size t) () in
      tx_fresh t entry ~size:(entry_size t);
      store_slot_raw t (Vaddr.add entry next_off) Vaddr.null;
      Machine.store64_fast (machine t) (Vaddr.add entry (key_off t)) key;
      store_slot_raw t (Vaddr.add entry (val_off t)) fresh_value;
      store_slot_tx t holder entry;
      Vaddr.null

let put t ~key data =
  match t.write_path with
  | `Tx ->
      Tx.begin_tx t.tx;
      let old = put_body t ~key data in
      Tx.commit t.tx;
      (* Reclaim the replaced value only after the commit is durable. *)
      if not (Vaddr.is_null old) then Objstore.free t.os old
  | `Plain ->
      (* Snapshot mode: plain stores throughout, immediate reclamation —
         the whole epoch (index, values, allocator words) becomes
         durable atomically at the next sync, so intra-epoch ordering
         carries no durability obligations. *)
      let old = put_body t ~key data in
      if not (Vaddr.is_null old) then Objstore.free t.os old

let write_path t = t.write_path

let simulate_crash_during_put t ~key data =
  if t.write_path <> `Tx then
    invalid_arg "Kvstore.simulate_crash_during_put: plain write path";
  Tx.begin_tx t.tx;
  ignore (put_body t ~key data);
  Tx.simulate_crash t.tx

let delete t ~key =
  match locate t ~key with
  | `Missing _ -> false
  | `Found (prev_holder, entry) ->
      if t.write_path = `Tx then Tx.begin_tx t.tx;
      let next = load_slot t (Vaddr.add entry next_off) in
      store_slot_tx t prev_holder next;
      if t.write_path = `Tx then Tx.commit t.tx;
      let v = load_slot t (Vaddr.add entry (val_off t)) in
      if not (Vaddr.is_null v) then Objstore.free t.os v;
      Objstore.free t.os entry;
      true

let get t ~key =
  match locate t ~key with
  | `Missing _ -> None
  | `Found (_, entry) -> Some (read_value t entry)

let mem t ~key = match locate t ~key with `Found _ -> true | `Missing _ -> false

let iter t f =
  for i = 0 to t.buckets - 1 do
    let rec go holder =
      let entry = load_slot t holder in
      if Vaddr.is_null entry then ()
      else begin
        f ~key:(Machine.load64_fast (machine t) (Vaddr.add entry (key_off t)))
          ~value:(read_value t entry);
        go (Vaddr.add entry next_off)
      end
    in
    go (bucket_holder t i)
  done

let size t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n

let keys t =
  let out = ref [] in
  iter t (fun ~key ~value:_ -> out := key :: !out);
  List.sort compare !out
