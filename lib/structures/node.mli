(** Shared node plumbing for the persistent data structures: round-robin
    multi-region allocation, payload reads/writes, key accesses, and the
    per-structure metadata block each structure anchors at a named
    NVRoot.

    Nodes are allocated either directly from region heaps ([`Plain]) or
    as 128-byte wrapped objects from a transactional object store
    ([`Wrapped], the PMEM.IO-like mode of Section 6.3). *)

type alloc_mode =
  | Plain of Nvmpi_nvregion.Region.t array
  | Wrapped of Nvmpi_tx.Objstore.t array

type t = {
  machine : Core.Machine.t;
  mode : alloc_mode;
  payload : int;  (** payload bytes carried by each node *)
  durability : Durable.mode;
      (** persistence discipline for structures over this node source:
          [Eager] (the legacy behaviour — no persistence actions in
          structure code) or [Traverse] (link-and-persist; see
          {!Durable} and docs/DURABLE.md) *)
  mutable next_region : int;  (** round-robin cursor *)
}

val make :
  ?durability:Durable.mode ->
  Core.Machine.t ->
  mode:alloc_mode ->
  payload:int ->
  t
(** [durability] defaults to the process-wide {!Durable.mode} (set by
    the front-ends' [--durability] flag; [Eager] out of the box). *)

val regions : t -> Nvmpi_nvregion.Region.t array
(** The regions underlying either mode, in round-robin order. *)

val home_region : t -> Nvmpi_nvregion.Region.t
(** The first region: metadata and roots live here. *)

val alloc_node : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** [alloc_node t size] allocates [size] bytes for a node in the next
    region of the round-robin rotation and returns its absolute
    address. *)

val alloc_in_home : t -> int -> Nvmpi_addr.Kinds.Vaddr.t
(** Allocation pinned to the home region (metadata, bucket tables). *)

val touch : t -> unit
(** Per-node-visit bookkeeping charge; a no-op in [`Plain] mode, the
    PMEM.IO accessor overhead in [`Wrapped] mode. *)

(** {1 Payload} *)

val write_payload : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> seed:int -> unit
(** Fills the [payload]-byte area at [addr] with words derived from
    [seed]. *)

val read_payload : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> int
(** Reads the payload area word by word (charged) and returns a
    checksum. *)

val payload_checksum : payload:int -> seed:int -> int
(** The checksum {!read_payload} returns for an intact payload written
    with [seed]. *)

val copy_payload :
  t -> src:Nvmpi_addr.Kinds.Vaddr.t -> dst:Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Byte-for-byte copy of a payload area (node-replacing operations);
    preserves in-place mutations that [write_payload] would not. *)

(** {1 Structure metadata blocks}

    A metadata block is a small region-resident record:
    [kind | payload_size | aux | reserved | head slot (16 bytes)].
    The named NVRoot points at it; the head slot is a pointer slot in
    the structure's representation. *)

val meta_bytes : int
val head_slot_off : int

val write_meta : t -> name:string -> kind:int -> aux:int -> Nvmpi_addr.Kinds.Vaddr.t
(** Allocates a metadata block in the home region, registers the root,
    and returns the block's address. *)

val find_meta : Core.Machine.t -> Nvmpi_nvregion.Region.t -> name:string ->
  kind:int -> Nvmpi_addr.Kinds.Vaddr.t * int * int
(** [find_meta m r ~name ~kind] reads the metadata block back:
    [(addr, payload_size, aux)].
    @raise Failure if the root is missing or the kind tag differs. *)
