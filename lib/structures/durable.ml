(* Link-and-persist durability discipline (NVTraverse / "Efficient
   Lock-Free Durable Sets"): traversals issue plain fused loads with no
   persistence actions; only the modification window pays clwb+fence.

   A link made durable in the modification window is published with a
   dirty mark in bit 0 of its 8-byte slot word: the writer sets the
   mark, flushes the line, fences, then clears the mark with a plain
   (unflushed) store. Readers mask the mark; a reader that observes a
   still-marked link — in this sequential simulator that means a
   recovery pass over a crash image, where the unflushed clear never
   landed — helper-flushes the line before proceeding, so recoverability
   never depends on the clear reaching NVM.

   Bit 0 is free in every 8-byte slot encoding: nodes are 8-aligned
   bump allocations, so absolute addresses (normal, swizzle-unpacked),
   intra-region offsets (based, swizzle-packed, packed_fat's payload
   bits), holder-relative diffs (off_holder), RIV words and OID handles
   all store multiples of 8 (or 0 for null). The 16-byte fat encodings
   keep region IDs in word 0 and may straddle a cache line, so they are
   out of scope: [applicable] is false and those representations keep
   the eager discipline regardless of the selected mode.

   The discipline is selected per {!Node.t} (field [durability]); the
   process-wide default below mirrors [Engine.default_mode] and must be
   set before domains spawn. Catalogue of the [dur.*] counters:
   docs/METRICS.md. *)

module Machine = Core.Machine
module Timing = Nvmpi_cachesim.Timing
module Vaddr = Nvmpi_addr.Kinds.Vaddr

type mode = Eager | Traverse

let mode_to_string = function Eager -> "eager" | Traverse -> "traverse"

let mode_of_string = function
  | "eager" -> Some Eager
  | "traverse" -> Some Traverse
  | _ -> None

(* Process-wide default for [Node.make]'s [?durability]; set from the
   front-ends' [--durability] flag before any domain spawns, like
   [Engine.set_default_mode]. *)
let default_mode = ref Eager
let set_default_mode m = default_mode := m
let mode () = !default_mode

(* The mark bit only fits single-word slots; see the header comment. *)
let applicable ~slot_size = slot_size = 8

(* Fault-injection double (scenario [selftest-dropflush-*]): when set,
   every window flush and fence this module would issue is silently
   dropped, so completed operations are never made durable and the
   faultsim durable-set oracle MUST flag the resulting crash images.
   Only ever toggled around a scenario workload on the main domain. *)
let drop_window_flushes = ref false

let line_bytes = 64
let mark_bit = 1

let window_flush m ~addr =
  if not !drop_window_flushes then begin
    Timing.flush m.Machine.timing ~addr;
    Machine.bump m Machine.Cell.dur_window_flushes "dur.window_flushes"
  end

let fence m =
  if not !drop_window_flushes then Timing.fence m.Machine.timing

(* Flush every cache line of [addr, addr+len): the modification window's
   clwb over a freshly built node, issued before the node is linked. *)
let flush_range m ~addr ~len =
  if len > 0 then begin
    let a = (addr : Vaddr.t :> int) in
    let first = a land lnot (line_bytes - 1) in
    let last = (a + len - 1) land lnot (line_bytes - 1) in
    let l = ref first in
    while !l <= last do
      window_flush m ~addr:!l;
      l := !l + line_bytes
    done
  end

(* The traversal-side read barrier: one plain fused load of the raw slot
   word to test the mark. Almost always clean (one extra load per link
   followed); on a marked link — a crash image whose clear store never
   landed — helper-flush the line, fence, and clear the mark before the
   representation decodes the word. *)
let check_mark m ~holder =
  Machine.bump m Machine.Cell.dur_traversal_loads "dur.traversal_loads";
  let raw = Machine.load64_fast m holder in
  if raw land mark_bit <> 0 then begin
    Timing.flush m.Machine.timing ~addr:(holder : Vaddr.t :> int);
    Timing.fence m.Machine.timing;
    Machine.bump m Machine.Cell.dur_helper_flushes "dur.helper_flushes";
    Machine.store64_fast m holder (raw land lnot mark_bit);
    Machine.bump m Machine.Cell.dur_marks_cleared "dur.marks_cleared"
  end

(* The modification window's link-and-persist: the representation has
   already stored the (clean) link word at [holder]; set the dirty mark,
   flush the line while marked, fence, then clear the mark with a plain
   store that is deliberately never flushed. A crash image therefore
   either misses the whole store (the old durable link survives) or
   carries the marked link (which {!check_mark} repairs on first read),
   so the link transition is failure-atomic. *)
let persist_link m ~holder =
  let raw = Machine.load64_fast m holder in
  Machine.store64_fast m holder (raw lor mark_bit);
  Machine.bump m Machine.Cell.dur_marks_set "dur.marks_set";
  window_flush m ~addr:(holder : Vaddr.t :> int);
  fence m;
  let marked = Machine.load64_fast m holder in
  Machine.store64_fast m holder (marked land lnot mark_bit);
  Machine.bump m Machine.Cell.dur_marks_cleared "dur.marks_cleared"
