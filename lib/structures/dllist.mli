(** Doubly linked list over NVM, generic in the pointer representation.

    Node layout: [next-slot | prev-slot | key (8 bytes) | payload]. The
    backward links make this the structure that stresses negative
    off-holder offsets and pointer updates on unlink; the paper lists
    doubly-linked structures among those "subject to this issue". *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> t
  val attach : Node.t -> name:string -> t

  val push_front : t -> key:int -> unit
  val push_back : t -> key:int -> unit

  val remove : t -> key:int -> bool
  (** Unlinks the first node carrying [key]; returns [false] if absent. *)

  val length : t -> int
  val to_list : t -> int list
  val to_list_rev : t -> int list
  (** Backward walk from the tail; must mirror {!to_list}. *)

  val traverse : t -> int * int
  val find : t -> key:int -> bool
  val check : t -> unit
  (** Validates [prev]/[next] mutual consistency along the whole list.
      @raise Failure on a broken link. *)

  val swizzle : t -> unit
  val unswizzle : t -> unit
end
