(** Directed graph over NVM (adjacency lists), generic in the pointer
    representation — the "graphs" entry of the paper's list of affected
    structures, and the structure with the highest pointer density:
    every edge is a pointer to another vertex.

    Vertex layout: [vnext-slot | adj-slot | key (8) | payload];
    edge layout:   [enext-slot | target-vertex-slot].

    Vertices live on a singly linked registry list; each vertex chains
    its out-edges, and every edge's target slot points straight at the
    destination vertex. With round-robin multi-region placement, edges
    routinely cross regions. *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> t
  val attach : Node.t -> name:string -> t

  val add_vertex : t -> key:int -> bool
  (** [false] if the key already exists. *)

  val add_edge : t -> src:int -> dst:int -> unit
  (** @raise Failure if either endpoint is missing. *)

  val vertex_count : t -> int
  val edge_count : t -> int
  val mem_vertex : t -> key:int -> bool
  val successors : t -> key:int -> int list
  (** Keys of direct successors, most recently added first. *)

  val reachable : t -> from:int -> int
  (** Number of vertices reachable from [from] (inclusive), by BFS. *)

  val traverse : t -> int * int
  (** Visits every vertex and follows every edge to its target's key;
      [(vertices + edges, checksum)]. *)

  val swizzle : t -> unit
  val unswizzle : t -> unit
end
