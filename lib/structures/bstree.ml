module Memsim = Nvmpi_memsim.Memsim
module Machine = Core.Machine
module Swizzle = Core.Swizzle
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x12

module Make (P : Core.Repr_sig.S) = struct
  type t = { node : Node.t; meta : Vaddr.t }

  let slot = P.slot_size
  let left_off = 0
  let right_off = slot
  let key_off = 2 * slot
  let payload_off = (2 * slot) + 8
  let node_size t = payload_off + t.node.Node.payload
  let m t = t.node.Node.machine
  let head_holder t = Vaddr.add t.meta Node.head_slot_off

  (* Link-and-persist discipline (docs/DURABLE.md): child links and the
     head link go through [load_link]/[store_link]; under [Eager] both
     are exactly the legacy plain accesses. *)
  let durable t =
    t.node.Node.durability = Durable.Traverse
    && Durable.applicable ~slot_size:P.slot_size

  let load_link t ~holder =
    if durable t then Durable.check_mark (m t) ~holder;
    P.load (m t) ~holder

  let store_link t ~holder target =
    P.store (m t) ~holder target;
    if durable t then Durable.persist_link (m t) ~holder

  (* Modification window, part one: make freshly built (still
     unreachable) nodes durable before the single link switch that
     publishes them. *)
  let persist_fresh t fresh =
    if durable t then begin
      List.iter
        (fun a -> Durable.flush_range (m t) ~addr:a ~len:(node_size t))
        fresh;
      Durable.fence (m t)
    end

  let create node ~name =
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:0 in
    { node; meta }

  let attach node ~name =
    let meta, payload, _ =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Bstree.attach: payload size mismatch";
    { node; meta }

  let new_node t ~key =
    let a = Node.alloc_node t.node (node_size t) in
    P.store (m t) ~holder:(Vaddr.add a left_off) Vaddr.null;
    P.store (m t) ~holder:(Vaddr.add a right_off) Vaddr.null;
    Machine.store64_fast (m t) (Vaddr.add a key_off) key;
    Node.write_payload t.node ~addr:(Vaddr.add a payload_off) ~seed:key;
    a

  (* Descends to the node holding [key], or to the slot where it should
     be linked. Returns [`Found addr] or [`Slot holder]. *)
  let locate t ~key =
    let rec go holder =
      let cur = load_link t ~holder in
      if Vaddr.is_null cur then `Slot holder
      else begin
        Node.touch t.node;
        let k = Machine.load64_fast (m t) (Vaddr.add cur key_off) in
        if key = k then `Found cur
        else if key < k then go (Vaddr.add cur left_off)
        else go (Vaddr.add cur right_off)
      end
    in
    go (head_holder t)

  let insert t ~key =
    match locate t ~key with
    | `Found _ -> false
    | `Slot holder ->
        let a = new_node t ~key in
        persist_fresh t [ a ];
        store_link t ~holder a;
        true

  let insert_count t ~key =
    if t.node.Node.payload < 8 then
      invalid_arg "Bstree.insert_count: payload too small for a counter";
    match locate t ~key with
    | `Found cur ->
        let c = Machine.load64_fast (m t) (Vaddr.add cur payload_off) in
        Machine.store64_fast (m t) (Vaddr.add cur payload_off) (c + 1)
    | `Slot holder ->
        let a = new_node t ~key in
        Machine.store64_fast (m t) (Vaddr.add a payload_off) 1;
        persist_fresh t [ a ];
        store_link t ~holder a

  (* Copies [src]'s key and payload into a fresh node with the given
     children — the building block of [remove]'s path-copying. *)
  let copy_node t ~src ~left ~right =
    let a = Node.alloc_node t.node (node_size t) in
    P.store (m t) ~holder:(Vaddr.add a left_off) left;
    P.store (m t) ~holder:(Vaddr.add a right_off) right;
    Machine.store64_fast (m t) (Vaddr.add a key_off)
      (Machine.load64_fast (m t) (Vaddr.add src key_off));
    Node.copy_payload t.node ~src:(Vaddr.add src payload_off)
      ~dst:(Vaddr.add a payload_off);
    a

  (* Removes the minimum of the non-empty subtree rooted at [cur] by
     path-copying: returns the minimum's address, the new subtree root
     and the fresh copies made along the spine. Nothing reachable is
     mutated, so the caller can publish the whole rewrite with a single
     link switch — the property the durable modification window needs
     (and, in eager mode, what keeps the operation a one-store splice). *)
  let rec remove_min t cur =
    let l = load_link t ~holder:(Vaddr.add cur left_off) in
    if Vaddr.is_null l then
      (cur, load_link t ~holder:(Vaddr.add cur right_off), [])
    else begin
      Node.touch t.node;
      let min, l', fresh = remove_min t l in
      let r = load_link t ~holder:(Vaddr.add cur right_off) in
      let copy = copy_node t ~src:cur ~left:l' ~right:r in
      (min, copy, copy :: fresh)
    end

  (* Unlinks [cur] (pointed at by [holder]): leaf and one-child cases
     splice with a single link store; the two-child case replaces [cur]
     by a copy of its successor over a path-copied right subtree, again
     published by one link store. Displaced nodes are leaked — region
     heaps are bump allocators. *)
  let unlink t ~holder ~cur =
    let l = load_link t ~holder:(Vaddr.add cur left_off) in
    let r = load_link t ~holder:(Vaddr.add cur right_off) in
    if Vaddr.is_null l then store_link t ~holder r
    else if Vaddr.is_null r then store_link t ~holder l
    else begin
      let succ, r', fresh = remove_min t r in
      let repl = copy_node t ~src:succ ~left:l ~right:r' in
      persist_fresh t (repl :: fresh);
      store_link t ~holder repl
    end

  let remove t ~key =
    let rec go holder =
      let cur = load_link t ~holder in
      if Vaddr.is_null cur then false
      else begin
        Node.touch t.node;
        let k = Machine.load64_fast (m t) (Vaddr.add cur key_off) in
        if key = k then begin
          unlink t ~holder ~cur;
          true
        end
        else if key < k then go (Vaddr.add cur left_off)
        else go (Vaddr.add cur right_off)
      end
    in
    go (head_holder t)

  let count t ~key =
    match locate t ~key with
    | `Found cur -> Machine.load64_fast (m t) (Vaddr.add cur payload_off)
    | `Slot _ -> 0

  let search t ~key =
    match locate t ~key with `Found _ -> true | `Slot _ -> false

  let iter t f =
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        Node.touch t.node;
        f ~addr:cur ~key:(Machine.load64_fast (m t) (Vaddr.add cur key_off));
        go (load_link t ~holder:(Vaddr.add cur left_off));
        go (load_link t ~holder:(Vaddr.add cur right_off))
      end
    in
    go (load_link t ~holder:(head_holder t))

  let size t =
    let n = ref 0 in
    iter t (fun ~addr:_ ~key:_ -> incr n);
    !n

  let depth t =
    let rec go cur =
      if Vaddr.is_null cur then 0
      else
        1
        + max
            (go (load_link t ~holder:(Vaddr.add cur left_off)))
            (go (load_link t ~holder:(Vaddr.add cur right_off)))
    in
    go (load_link t ~holder:(head_holder t))

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        Node.touch t.node;
        incr n;
        sum := !sum + Machine.load64_fast (m t) (Vaddr.add cur key_off);
        sum := !sum + Node.read_payload t.node ~addr:(Vaddr.add cur payload_off);
        go (load_link t ~holder:(Vaddr.add cur left_off));
        go (load_link t ~holder:(Vaddr.add cur right_off))
      end
    in
    go (load_link t ~holder:(head_holder t));
    (!n, !sum)

  let digest t = Digest_obs.v (traverse t)

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Bstree: swizzle pass on a non-swizzle representation"

  let swizzle t =
    check_swizzle ();
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        go (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add cur left_off));
        go (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add cur right_off))
      end
    in
    go (Swizzle.swizzle_slot (m t) ~holder:(head_holder t))

  let unswizzle t =
    check_swizzle ();
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        go (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add cur left_off));
        go (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add cur right_off))
      end
    in
    go (Swizzle.unswizzle_slot (m t) ~holder:(head_holder t))
end
