module Memsim = Nvmpi_memsim.Memsim
module Machine = Core.Machine
module Swizzle = Core.Swizzle
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x15

module Make (P : Core.Repr_sig.S) = struct
  (* The metadata block's single slot points at an anchor carrying the
     head and tail slots (two representation-sized slots). *)
  type t = { node : Node.t; meta : Vaddr.t; anchor : Vaddr.t }

  let slot = P.slot_size
  let next_off = 0
  let prev_off = slot
  let key_off = 2 * slot
  let payload_off = (2 * slot) + 8
  let node_size t = payload_off + t.node.Node.payload
  let m t = t.node.Node.machine
  let head_holder t = t.anchor
  let tail_holder t = Vaddr.add t.anchor slot

  let create node ~name =
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:0 in
    let anchor = Node.alloc_in_home node (2 * slot) in
    let t = { node; meta; anchor } in
    P.store t.node.Node.machine ~holder:anchor Vaddr.null;
    P.store t.node.Node.machine ~holder:(Vaddr.add anchor slot) Vaddr.null;
    Machine.store64_fast t.node.Node.machine
      (Vaddr.add meta Node.head_slot_off) (Vaddr.offset_in anchor ~base:meta);
    t

  let attach node ~name =
    let meta, payload, _ =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Dllist.attach: payload size mismatch";
    let anchor =
      Vaddr.add meta
        (Machine.load64_fast node.Node.machine
           (Vaddr.add meta Node.head_slot_off))
    in
    { node; meta; anchor }

  let new_node t ~key =
    let a = Node.alloc_node t.node (node_size t) in
    P.store (m t) ~holder:(Vaddr.add a next_off) Vaddr.null;
    P.store (m t) ~holder:(Vaddr.add a prev_off) Vaddr.null;
    Machine.store64_fast (m t) (Vaddr.add a key_off) key;
    Node.write_payload t.node ~addr:(Vaddr.add a payload_off) ~seed:key;
    a

  let push_front t ~key =
    let a = new_node t ~key in
    let old = P.load (m t) ~holder:(head_holder t) in
    P.store (m t) ~holder:(Vaddr.add a next_off) old;
    if Vaddr.is_null old then P.store (m t) ~holder:(tail_holder t) a
    else P.store (m t) ~holder:(Vaddr.add old prev_off) a;
    P.store (m t) ~holder:(head_holder t) a

  let push_back t ~key =
    let a = new_node t ~key in
    let old = P.load (m t) ~holder:(tail_holder t) in
    P.store (m t) ~holder:(Vaddr.add a prev_off) old;
    if Vaddr.is_null old then P.store (m t) ~holder:(head_holder t) a
    else P.store (m t) ~holder:(Vaddr.add old next_off) a;
    P.store (m t) ~holder:(tail_holder t) a

  let find_node t ~key =
    let rec go cur =
      if Vaddr.is_null cur then Vaddr.null
      else begin
        Node.touch t.node;
        if Machine.load64_fast (m t) (Vaddr.add cur key_off) = key then cur
        else go (P.load (m t) ~holder:(Vaddr.add cur next_off))
      end
    in
    go (P.load (m t) ~holder:(head_holder t))

  let remove t ~key =
    let a = find_node t ~key in
    if Vaddr.is_null a then false
    else begin
      let next = P.load (m t) ~holder:(Vaddr.add a next_off) in
      let prev = P.load (m t) ~holder:(Vaddr.add a prev_off) in
      (if Vaddr.is_null prev then P.store (m t) ~holder:(head_holder t) next
       else P.store (m t) ~holder:(Vaddr.add prev next_off) next);
      (if Vaddr.is_null next then P.store (m t) ~holder:(tail_holder t) prev
       else P.store (m t) ~holder:(Vaddr.add next prev_off) prev);
      true
    end

  let fold_forward t f acc =
    let rec go cur acc =
      if Vaddr.is_null cur then acc
      else begin
        Node.touch t.node;
        go
          (P.load (m t) ~holder:(Vaddr.add cur next_off))
          (f acc cur (Machine.load64_fast (m t) (Vaddr.add cur key_off)))
      end
    in
    go (P.load (m t) ~holder:(head_holder t)) acc

  let length t = fold_forward t (fun n _ _ -> n + 1) 0
  let to_list t = List.rev (fold_forward t (fun acc _ k -> k :: acc) [])
  let find t ~key = not (Vaddr.is_null (find_node t ~key))

  (* Walking tail-to-head while consing yields head-to-tail order, so
     the result can be compared with {!to_list} directly. *)
  let to_list_rev t =
    let rec go cur acc =
      if Vaddr.is_null cur then acc
      else begin
        Node.touch t.node;
        go
          (P.load (m t) ~holder:(Vaddr.add cur prev_off))
          (Machine.load64_fast (m t) (Vaddr.add cur key_off) :: acc)
      end
    in
    go (P.load (m t) ~holder:(tail_holder t)) []

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    fold_forward t
      (fun () cur _ ->
        incr n;
        sum := !sum + Machine.load64_fast (m t) (Vaddr.add cur key_off);
        sum := !sum + Node.read_payload t.node ~addr:(Vaddr.add cur payload_off))
      ();
    (!n, !sum)

  let check t =
    let rec go prev cur =
      if not (Vaddr.is_null cur) then begin
        let p = P.load (m t) ~holder:(Vaddr.add cur prev_off) in
        if not (Vaddr.equal p prev) then
          failwith
            (Printf.sprintf "Dllist.check: node 0x%x has prev 0x%x, expected \
                             0x%x" (cur :> int) (p :> int) (prev :> int));
        go cur (P.load (m t) ~holder:(Vaddr.add cur next_off))
      end
      else if not (Vaddr.equal (P.load (m t) ~holder:(tail_holder t)) prev)
      then failwith "Dllist.check: tail does not match the last node"
    in
    go Vaddr.null (P.load (m t) ~holder:(head_holder t))

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Dllist: swizzle pass on a non-swizzle representation"

  (* Forward walk converting next+prev+the two anchor slots, each slot
     exactly once. *)
  let swizzle t =
    check_swizzle ();
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        ignore (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add cur prev_off));
        go (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add cur next_off))
      end
    in
    go (Swizzle.swizzle_slot (m t) ~holder:(head_holder t));
    ignore (Swizzle.swizzle_slot (m t) ~holder:(tail_holder t))

  let unswizzle t =
    check_swizzle ();
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        ignore (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add cur prev_off));
        go (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add cur next_off))
      end
    in
    go (Swizzle.unswizzle_slot (m t) ~holder:(head_holder t));
    ignore (Swizzle.unswizzle_slot (m t) ~holder:(tail_holder t))
end
