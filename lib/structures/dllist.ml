module Memsim = Nvmpi_memsim.Memsim
module Swizzle = Core.Swizzle

let kind_tag = 0x15

module Make (P : Core.Repr_sig.S) = struct
  (* The metadata block's single slot points at an anchor carrying the
     head and tail slots (two representation-sized slots). *)
  type t = { node : Node.t; meta : int; anchor : int }

  let slot = P.slot_size
  let next_off = 0
  let prev_off = slot
  let key_off = 2 * slot
  let payload_off = (2 * slot) + 8
  let node_size t = payload_off + t.node.Node.payload
  let mem t = t.node.Node.machine.Core.Machine.mem
  let m t = t.node.Node.machine
  let head_holder t = t.anchor
  let tail_holder t = t.anchor + slot

  let create node ~name =
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:0 in
    let anchor = Node.alloc_in_home node (2 * slot) in
    let t = { node; meta; anchor } in
    P.store t.node.Node.machine ~holder:anchor 0;
    P.store t.node.Node.machine ~holder:(anchor + slot) 0;
    Memsim.store64 t.node.Node.machine.Core.Machine.mem
      (meta + Node.head_slot_off) (anchor - meta);
    t

  let attach node ~name =
    let meta, payload, _ =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Dllist.attach: payload size mismatch";
    let anchor =
      meta
      + Memsim.load64 node.Node.machine.Core.Machine.mem
          (meta + Node.head_slot_off)
    in
    { node; meta; anchor }

  let new_node t ~key =
    let a = Node.alloc_node t.node (node_size t) in
    P.store (m t) ~holder:(a + next_off) 0;
    P.store (m t) ~holder:(a + prev_off) 0;
    Memsim.store64 (mem t) (a + key_off) key;
    Node.write_payload t.node ~addr:(a + payload_off) ~seed:key;
    a

  let push_front t ~key =
    let a = new_node t ~key in
    let old = P.load (m t) ~holder:(head_holder t) in
    P.store (m t) ~holder:(a + next_off) old;
    if old = 0 then P.store (m t) ~holder:(tail_holder t) a
    else P.store (m t) ~holder:(old + prev_off) a;
    P.store (m t) ~holder:(head_holder t) a

  let push_back t ~key =
    let a = new_node t ~key in
    let old = P.load (m t) ~holder:(tail_holder t) in
    P.store (m t) ~holder:(a + prev_off) old;
    if old = 0 then P.store (m t) ~holder:(head_holder t) a
    else P.store (m t) ~holder:(old + next_off) a;
    P.store (m t) ~holder:(tail_holder t) a

  let find_node t ~key =
    let rec go cur =
      if cur = 0 then 0
      else begin
        Node.touch t.node;
        if Memsim.load64 (mem t) (cur + key_off) = key then cur
        else go (P.load (m t) ~holder:(cur + next_off))
      end
    in
    go (P.load (m t) ~holder:(head_holder t))

  let remove t ~key =
    match find_node t ~key with
    | 0 -> false
    | a ->
        let next = P.load (m t) ~holder:(a + next_off) in
        let prev = P.load (m t) ~holder:(a + prev_off) in
        (if prev = 0 then P.store (m t) ~holder:(head_holder t) next
         else P.store (m t) ~holder:(prev + next_off) next);
        (if next = 0 then P.store (m t) ~holder:(tail_holder t) prev
         else P.store (m t) ~holder:(next + prev_off) prev);
        true

  let fold_forward t f acc =
    let rec go cur acc =
      if cur = 0 then acc
      else begin
        Node.touch t.node;
        go
          (P.load (m t) ~holder:(cur + next_off))
          (f acc cur (Memsim.load64 (mem t) (cur + key_off)))
      end
    in
    go (P.load (m t) ~holder:(head_holder t)) acc

  let length t = fold_forward t (fun n _ _ -> n + 1) 0
  let to_list t = List.rev (fold_forward t (fun acc _ k -> k :: acc) [])
  let find t ~key = find_node t ~key <> 0

  (* Walking tail-to-head while consing yields head-to-tail order, so
     the result can be compared with {!to_list} directly. *)
  let to_list_rev t =
    let rec go cur acc =
      if cur = 0 then acc
      else begin
        Node.touch t.node;
        go
          (P.load (m t) ~holder:(cur + prev_off))
          (Memsim.load64 (mem t) (cur + key_off) :: acc)
      end
    in
    go (P.load (m t) ~holder:(tail_holder t)) []

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    fold_forward t
      (fun () cur _ ->
        incr n;
        sum := !sum + Memsim.load64 (mem t) (cur + key_off);
        sum := !sum + Node.read_payload t.node ~addr:(cur + payload_off))
      ();
    (!n, !sum)

  let check t =
    let rec go prev cur =
      if cur <> 0 then begin
        let p = P.load (m t) ~holder:(cur + prev_off) in
        if p <> prev then
          failwith
            (Printf.sprintf "Dllist.check: node 0x%x has prev 0x%x, expected \
                             0x%x" cur p prev);
        go cur (P.load (m t) ~holder:(cur + next_off))
      end
      else if P.load (m t) ~holder:(tail_holder t) <> prev then
        failwith "Dllist.check: tail does not match the last node"
    in
    go 0 (P.load (m t) ~holder:(head_holder t))

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Dllist: swizzle pass on a non-swizzle representation"

  (* Forward walk converting next+prev+the two anchor slots, each slot
     exactly once. *)
  let swizzle t =
    check_swizzle ();
    let rec go cur =
      if cur <> 0 then begin
        ignore (Swizzle.swizzle_slot (m t) ~holder:(cur + prev_off));
        go (Swizzle.swizzle_slot (m t) ~holder:(cur + next_off))
      end
    in
    go (Swizzle.swizzle_slot (m t) ~holder:(head_holder t));
    ignore (Swizzle.swizzle_slot (m t) ~holder:(tail_holder t))

  let unswizzle t =
    check_swizzle ();
    let rec go cur =
      if cur <> 0 then begin
        ignore (Swizzle.unswizzle_slot (m t) ~holder:(cur + prev_off));
        go (Swizzle.unswizzle_slot (m t) ~holder:(cur + next_off))
      end
    in
    go (Swizzle.unswizzle_slot (m t) ~holder:(head_holder t));
    ignore (Swizzle.unswizzle_slot (m t) ~holder:(tail_holder t))
end
