module Memsim = Nvmpi_memsim.Memsim
module Machine = Core.Machine
module Swizzle = Core.Swizzle
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x11

module Make (P : Core.Repr_sig.S) = struct
  type t = {
    node : Node.t;
    meta : Vaddr.t;
    mutable tail : Vaddr.t;
        (* host cache of the last node; null = unknown/empty *)
  }

  let slot = P.slot_size
  let key_off = slot
  let payload_off = slot + 8
  let node_size t = payload_off + t.node.Node.payload
  let m t = t.node.Node.machine
  let head_holder t = Vaddr.add t.meta Node.head_slot_off

  let create node ~name =
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:0 in
    { node; meta; tail = Vaddr.null }

  let attach node ~name =
    let meta, payload, _ =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Linked_list.attach: payload size mismatch";
    { node; meta; tail = Vaddr.null }

  let new_node t ~key =
    let a = Node.alloc_node t.node (node_size t) in
    Machine.store64_fast (m t) (Vaddr.add a key_off) key;
    Node.write_payload t.node ~addr:(Vaddr.add a payload_off) ~seed:key;
    a

  let push_front t ~key =
    let a = new_node t ~key in
    let old_head = P.load (m t) ~holder:(head_holder t) in
    P.store (m t) ~holder:a old_head;
    P.store (m t) ~holder:(head_holder t) a;
    if Vaddr.is_null old_head then t.tail <- a

  let find_tail t =
    let rec go cur =
      let next = P.load (m t) ~holder:cur in
      if Vaddr.is_null next then cur else go next
    in
    let h = P.load (m t) ~holder:(head_holder t) in
    if Vaddr.is_null h then Vaddr.null else go h

  let append t ~key =
    let a = new_node t ~key in
    P.store (m t) ~holder:a Vaddr.null;
    let tail = if not (Vaddr.is_null t.tail) then t.tail else find_tail t in
    if Vaddr.is_null tail then P.store (m t) ~holder:(head_holder t) a
    else P.store (m t) ~holder:tail a;
    t.tail <- a

  let iter t f =
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        Node.touch t.node;
        f ~addr:cur ~key:(Machine.load64_fast (m t) (Vaddr.add cur key_off));
        go (P.load (m t) ~holder:cur)
      end
    in
    go (P.load (m t) ~holder:(head_holder t))

  let length t =
    let n = ref 0 in
    iter t (fun ~addr:_ ~key:_ -> incr n);
    !n

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    let rec go cur =
      if not (Vaddr.is_null cur) then begin
        Node.touch t.node;
        incr n;
        sum := !sum + Machine.load64_fast (m t) (Vaddr.add cur key_off);
        sum := !sum + Node.read_payload t.node ~addr:(Vaddr.add cur payload_off);
        go (P.load (m t) ~holder:cur)
      end
    in
    go (P.load (m t) ~holder:(head_holder t));
    (!n, !sum)

  let digest t = Digest_obs.v (traverse t)

  let find t ~key =
    let rec go cur =
      (not (Vaddr.is_null cur))
      &&
      (Node.touch t.node;
       Machine.load64_fast (m t) (Vaddr.add cur key_off) = key
       || go (P.load (m t) ~holder:cur))
    in
    go (P.load (m t) ~holder:(head_holder t))

  let remove t ~key =
    let rec go prev_holder cur =
      if Vaddr.is_null cur then false
      else begin
        Node.touch t.node;
        if Machine.load64_fast (m t) (Vaddr.add cur key_off) = key then begin
          let next = P.load (m t) ~holder:cur in
          P.store (m t) ~holder:prev_holder next;
          (* Node storage is leaked: region heaps are bump allocators. *)
          t.tail <- Vaddr.null;
          true
        end
        else go cur (P.load (m t) ~holder:cur)
      end
    in
    go (head_holder t) (P.load (m t) ~holder:(head_holder t))

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Linked_list: swizzle pass on a non-swizzle representation"

  let swizzle t =
    check_swizzle ();
    let rec go cur =
      if not (Vaddr.is_null cur) then
        go (Swizzle.swizzle_slot (m t) ~holder:cur)
    in
    go (Swizzle.swizzle_slot (m t) ~holder:(head_holder t))

  let unswizzle t =
    check_swizzle ();
    let rec go cur =
      if not (Vaddr.is_null cur) then
        go (Swizzle.unswizzle_slot (m t) ~holder:cur)
    in
    go (Swizzle.unswizzle_slot (m t) ~holder:(head_holder t))
end
