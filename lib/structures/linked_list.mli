(** Singly linked list over NVM, generic in the pointer representation.

    Node layout: [next-slot | key (8 bytes) | payload]. The head pointer
    lives in the slot of a metadata block anchored at a named NVRoot, so
    the whole structure — including its entry point — is stored in the
    chosen representation and can be re-{!Make.attach}ed after a
    remap. *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> t
  (** Creates an empty list anchored at root [name]. *)

  val attach : Node.t -> name:string -> t
  (** Re-opens a list previously created under [name].
      @raise Failure if the root is missing or is not a list. *)

  val append : t -> key:int -> unit
  (** Adds a node carrying [key] (and a payload seeded by it) at the
      tail. *)

  val push_front : t -> key:int -> unit

  val length : t -> int

  val traverse : t -> int * int
  (** Full walk; returns [(node count, payload checksum)]. Every node
      visit costs one pointer load, a key read and a payload read. *)

  val digest : t -> Digest_obs.t
  (** {!traverse} packaged as the uniform observable digest the
      conformance harness compares across representations. *)

  val find : t -> key:int -> bool
  (** Linear search by key. *)

  val remove : t -> key:int -> bool
  (** Unlinks the first node carrying [key]; returns whether one
      existed. The node's storage is not reclaimed (region heaps are
      bump allocators). *)

  val iter : t -> (addr:Nvmpi_addr.Kinds.Vaddr.t -> key:int -> unit) -> unit
  (** Host-side iteration (uncharged pointer chasing is still charged;
      the callback itself runs outside the simulation). *)

  val swizzle : t -> unit
  (** Converts every pointer slot from packed to absolute form, head
      first. Only valid when [P] is the swizzle representation. *)

  val unswizzle : t -> unit
end
