(** Binary search tree over NVM, generic in the pointer representation.

    Node layout: [left-slot | right-slot | key (8 bytes) | payload].
    Keys are distinct integers; equal keys update nothing. Used by the
    tree traversal/search experiments and by the wordcount application
    (with word hashes as keys). *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> t
  val attach : Node.t -> name:string -> t

  val insert : t -> key:int -> bool
  (** Adds [key]; returns [false] if it was already present. *)

  val insert_count : t -> key:int -> unit
  (** Wordcount-style insert: a fresh key gets a node with counter 1
      (stored in the first payload word); an existing key increments its
      counter. Requires a payload of at least 8 bytes. *)

  val count : t -> key:int -> int
  (** Counter value stored at [key] (0 if absent). *)

  val remove : t -> key:int -> bool
  (** Unlinks [key]'s node; returns [false] if it was absent. Leaf and
      one-child nodes are spliced out with a single link store; a
      two-child node is replaced by a copy of its in-order successor
      over a path-copied right-subtree spine, so the whole rewrite is
      published by one link switch (failure-atomic under the durable
      discipline, docs/DURABLE.md). Displaced nodes are leaked: region
      heaps are bump allocators. *)

  val search : t -> key:int -> bool
  val size : t -> int
  val depth : t -> int

  val traverse : t -> int * int
  (** Depth-first walk; [(node count, checksum)]. *)

  val digest : t -> Digest_obs.t
  (** {!traverse} packaged as the uniform observable digest the
      conformance harness compares across representations. *)

  val iter : t -> (addr:Nvmpi_addr.Kinds.Vaddr.t -> key:int -> unit) -> unit

  val swizzle : t -> unit
  val unswizzle : t -> unit
end
