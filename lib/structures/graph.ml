module Memsim = Nvmpi_memsim.Memsim
module Machine = Core.Machine
module Swizzle = Core.Swizzle
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x16

module Make (P : Core.Repr_sig.S) = struct
  type t = { node : Node.t; meta : Vaddr.t }

  let slot = P.slot_size

  (* Vertex fields *)
  let vnext_off = 0
  let adj_off = slot
  let key_off = 2 * slot
  let payload_off = (2 * slot) + 8
  let vertex_size t = payload_off + t.node.Node.payload

  (* Edge fields *)
  let enext_off = 0
  let target_off = slot
  let edge_size = 2 * slot

  let m t = t.node.Node.machine
  let head_holder t = Vaddr.add t.meta Node.head_slot_off

  let create node ~name =
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:0 in
    { node; meta }

  let attach node ~name =
    let meta, payload, _ =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Graph.attach: payload size mismatch";
    { node; meta }

  let find_vertex t ~key =
    let rec go cur =
      if Vaddr.is_null cur then Vaddr.null
      else begin
        Node.touch t.node;
        if Machine.load64_fast (m t) (Vaddr.add cur key_off) = key then cur
        else go (P.load (m t) ~holder:(Vaddr.add cur vnext_off))
      end
    in
    go (P.load (m t) ~holder:(head_holder t))

  let mem_vertex t ~key = not (Vaddr.is_null (find_vertex t ~key))

  let add_vertex t ~key =
    if mem_vertex t ~key then false
    else begin
      let v = Node.alloc_node t.node (vertex_size t) in
      P.store (m t) ~holder:(Vaddr.add v vnext_off)
        (P.load (m t) ~holder:(head_holder t));
      P.store (m t) ~holder:(Vaddr.add v adj_off) Vaddr.null;
      Machine.store64_fast (m t) (Vaddr.add v key_off) key;
      Node.write_payload t.node ~addr:(Vaddr.add v payload_off) ~seed:key;
      P.store (m t) ~holder:(head_holder t) v;
      true
    end

  let add_edge t ~src ~dst =
    let sv = find_vertex t ~key:src in
    let dv = find_vertex t ~key:dst in
    if Vaddr.is_null sv then
      failwith (Printf.sprintf "Graph.add_edge: no vertex %d" src);
    if Vaddr.is_null dv then
      failwith (Printf.sprintf "Graph.add_edge: no vertex %d" dst);
    let e = Node.alloc_node t.node edge_size in
    P.store (m t) ~holder:(Vaddr.add e enext_off) (P.load (m t) ~holder:(Vaddr.add sv adj_off));
    P.store (m t) ~holder:(Vaddr.add e target_off) dv;
    P.store (m t) ~holder:(Vaddr.add sv adj_off) e

  let fold_vertices t f acc =
    let rec go cur acc =
      if Vaddr.is_null cur then acc
      else begin
        Node.touch t.node;
        go (P.load (m t) ~holder:(Vaddr.add cur vnext_off)) (f acc cur)
      end
    in
    go (P.load (m t) ~holder:(head_holder t)) acc

  let fold_edges t v f acc =
    let rec go cur acc =
      if Vaddr.is_null cur then acc
      else begin
        Node.touch t.node;
        go (P.load (m t) ~holder:(Vaddr.add cur enext_off)) (f acc cur)
      end
    in
    go (P.load (m t) ~holder:(Vaddr.add v adj_off)) acc

  let vertex_count t = fold_vertices t (fun n _ -> n + 1) 0

  let edge_count t =
    fold_vertices t (fun n v -> fold_edges t v (fun n _ -> n + 1) n) 0

  let successors t ~key =
    let v = find_vertex t ~key in
    if Vaddr.is_null v then []
    else
        List.rev
          (fold_edges t v
             (fun acc e ->
               let dv = P.load (m t) ~holder:(Vaddr.add e target_off) in
               Machine.load64_fast (m t) (Vaddr.add dv key_off) :: acc)
             [])

  let reachable t ~from =
    let start = find_vertex t ~key:from in
    if Vaddr.is_null start then 0
    else begin
        let visited = Hashtbl.create 64 in
        let queue = Queue.create () in
        Hashtbl.replace visited start ();
        Queue.push start queue;
        let n = ref 0 in
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          incr n;
          fold_edges t v
            (fun () e ->
              let dv = P.load (m t) ~holder:(Vaddr.add e target_off) in
              if not (Hashtbl.mem visited dv) then begin
                Hashtbl.replace visited dv ();
                Queue.push dv queue
              end)
            ()
        done;
        !n
    end

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    fold_vertices t
      (fun () v ->
        incr n;
        sum := !sum + Machine.load64_fast (m t) (Vaddr.add v key_off);
        sum := !sum + Node.read_payload t.node ~addr:(Vaddr.add v payload_off);
        fold_edges t v
          (fun () e ->
            incr n;
            let dv = P.load (m t) ~holder:(Vaddr.add e target_off) in
            sum := !sum + Machine.load64_fast (m t) (Vaddr.add dv key_off))
          ())
      ();
    (!n, !sum)

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Graph: swizzle pass on a non-swizzle representation"

  (* Every slot is visited exactly once: each vertex's vnext and adj,
     each edge's enext and target. *)
  let swizzle t =
    check_swizzle ();
    let rec go_edges e =
      if not (Vaddr.is_null e) then begin
        ignore (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add e target_off));
        go_edges (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add e enext_off))
      end
    in
    let rec go_vertices v =
      if not (Vaddr.is_null v) then begin
        go_edges (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add v adj_off));
        go_vertices (Swizzle.swizzle_slot (m t) ~holder:(Vaddr.add v vnext_off))
      end
    in
    go_vertices (Swizzle.swizzle_slot (m t) ~holder:(head_holder t))

  let unswizzle t =
    check_swizzle ();
    let rec go_edges e =
      if not (Vaddr.is_null e) then begin
        ignore (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add e target_off));
        go_edges (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add e enext_off))
      end
    in
    let rec go_vertices v =
      if not (Vaddr.is_null v) then begin
        go_edges (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add v adj_off));
        go_vertices (Swizzle.unswizzle_slot (m t) ~holder:(Vaddr.add v vnext_off))
      end
    in
    go_vertices (Swizzle.unswizzle_slot (m t) ~holder:(head_holder t))
end
