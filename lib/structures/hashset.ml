module Memsim = Nvmpi_memsim.Memsim
module Swizzle = Core.Swizzle
module Machine = Core.Machine
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x13

module Make (P : Core.Repr_sig.S) = struct
  type t = { node : Node.t; meta : Vaddr.t; buckets : int }

  let slot = P.slot_size
  let key_off = slot
  let payload_off = slot + 8
  let node_size t = payload_off + t.node.Node.payload
  let m t = t.node.Node.machine
  let table_holder t = Vaddr.add t.meta Node.head_slot_off

  let hash_key t ~key =
    Machine.alu (m t) 4;
    let h = key * 0x2545F4914F6CDD1 in
    (h lxor (h lsr 31)) land max_int mod t.buckets

  let bucket_holder table i = Vaddr.add table (i * slot)

  (* Link-and-persist discipline (docs/DURABLE.md): chain links — bucket
     slots and node next-slots — go through [load_link]/[store_link].
     Under [Durable.Traverse] (and an 8-byte slot encoding) stores are
     published with a marked flush+fence window and loads repair marked
     links; under [Eager] both are exactly the legacy plain accesses. *)
  let durable t =
    t.node.Node.durability = Durable.Traverse
    && Durable.applicable ~slot_size:P.slot_size

  let load_link t ~holder =
    if durable t then Durable.check_mark (m t) ~holder;
    P.load (m t) ~holder

  let store_link t ~holder target =
    P.store (m t) ~holder target;
    if durable t then Durable.persist_link (m t) ~holder

  let create node ~name ~buckets =
    if buckets <= 0 then invalid_arg "Hashset.create: buckets";
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:buckets in
    let table = Node.alloc_in_home node (buckets * slot) in
    let t = { node; meta; buckets } in
    for i = 0 to buckets - 1 do
      P.store (m t) ~holder:(bucket_holder table i) Vaddr.null
    done;
    P.store (m t) ~holder:(table_holder t) table;
    t

  let attach node ~name =
    let meta, payload, buckets =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Hashset.attach: payload size mismatch";
    { node; meta; buckets }

  let table t = P.load (m t) ~holder:(table_holder t)

  (* Walks the chain of [key]'s bucket to its end; [`Found addr] or
     [`Slot holder] (the null slot to append at). *)
  let locate t ~key =
    let tbl = table t in
    let rec go holder =
      let cur = load_link t ~holder in
      if Vaddr.is_null cur then `Slot holder
      else begin
        Node.touch t.node;
        if Machine.load64_fast (m t) (Vaddr.add cur key_off) = key then `Found cur
        else go cur
      end
    in
    go (bucket_holder tbl (hash_key t ~key))

  let add t ~key =
    match locate t ~key with
    | `Found _ -> false
    | `Slot holder ->
        let a = Node.alloc_node t.node (node_size t) in
        P.store (m t) ~holder:a Vaddr.null;
        Machine.store64_fast (m t) (Vaddr.add a key_off) key;
        Node.write_payload t.node ~addr:(Vaddr.add a payload_off) ~seed:key;
        (* Modification window: the fresh node must be durable before it
           becomes reachable, so its lines are flushed (and fenced) ahead
           of the single link-and-persist store below. *)
        if durable t then begin
          Durable.flush_range (m t) ~addr:a ~len:(node_size t);
          Durable.fence (m t)
        end;
        store_link t ~holder a;
        true

  let contains t ~key =
    match locate t ~key with `Found _ -> true | `Slot _ -> false

  let remove t ~key =
    let tbl = table t in
    let rec go holder =
      let cur = load_link t ~holder in
      if Vaddr.is_null cur then false
      else begin
        Node.touch t.node;
        if Machine.load64_fast (m t) (Vaddr.add cur key_off) = key then begin
          store_link t ~holder (load_link t ~holder:cur);
          (* Node storage is leaked: region heaps are bump allocators. *)
          true
        end
        else go cur
      end
    in
    go (bucket_holder tbl (hash_key t ~key))

  let iter t f =
    let tbl = table t in
    for i = 0 to t.buckets - 1 do
      let rec go cur =
        if not (Vaddr.is_null cur) then begin
          Node.touch t.node;
          f ~addr:cur ~key:(Machine.load64_fast (m t) (Vaddr.add cur key_off));
          go (load_link t ~holder:cur)
        end
      in
      go (load_link t ~holder:(bucket_holder tbl i))
    done

  let size t =
    let n = ref 0 in
    iter t (fun ~addr:_ ~key:_ -> incr n);
    !n

  let buckets t = t.buckets

  let traverse t =
    let tbl = table t in
    let n = ref 0 and sum = ref 0 in
    for i = 0 to t.buckets - 1 do
      let rec go cur =
        if not (Vaddr.is_null cur) then begin
          Node.touch t.node;
          incr n;
          sum := !sum + Machine.load64_fast (m t) (Vaddr.add cur key_off);
          sum := !sum + Node.read_payload t.node ~addr:(Vaddr.add cur payload_off);
          go (load_link t ~holder:cur)
        end
      in
      go (load_link t ~holder:(bucket_holder tbl i))
    done;
    (!n, !sum)

  let digest t = Digest_obs.v (traverse t)

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Hashset: swizzle pass on a non-swizzle representation"

  let swizzle t =
    check_swizzle ();
    let tbl = Swizzle.swizzle_slot (m t) ~holder:(table_holder t) in
    for i = 0 to t.buckets - 1 do
      let rec go cur =
        if not (Vaddr.is_null cur) then go (Swizzle.swizzle_slot (m t) ~holder:cur)
      in
      go (Swizzle.swizzle_slot (m t) ~holder:(bucket_holder tbl i))
    done

  let unswizzle t =
    check_swizzle ();
    (* Read the table address before unswizzling its holder. *)
    let tbl = Swizzle.unswizzle_slot (m t) ~holder:(table_holder t) in
    for i = 0 to t.buckets - 1 do
      let rec go cur =
        if not (Vaddr.is_null cur) then go (Swizzle.unswizzle_slot (m t) ~holder:cur)
      in
      go (Swizzle.unswizzle_slot (m t) ~holder:(bucket_holder tbl i))
    done
end
