module Memsim = Nvmpi_memsim.Memsim
module Machine = Core.Machine
module Swizzle = Core.Swizzle
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x14
let fanout = 26

module Make (P : Core.Repr_sig.S) = struct
  type t = { node : Node.t; meta : Vaddr.t }

  let slot = P.slot_size
  let flag_off = fanout * slot
  let payload_off = flag_off + 8
  let node_size t = payload_off + t.node.Node.payload
  let m t = t.node.Node.machine
  let head_holder t = Vaddr.add t.meta Node.head_slot_off
  let child_holder a c = Vaddr.add a (c * slot)

  let create node ~name =
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:0 in
    { node; meta }

  let attach node ~name =
    let meta, payload, _ =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    if payload <> node.Node.payload then
      failwith "Trie.attach: payload size mismatch";
    { node; meta }

  let letter word i =
    let c = Char.code word.[i] - Char.code 'a' in
    if c < 0 || c >= fanout then
      invalid_arg "Trie: words must be lowercase a-z";
    c

  let new_node t ~seed =
    let a = Node.alloc_node t.node (node_size t) in
    for c = 0 to fanout - 1 do
      P.store (m t) ~holder:(child_holder a c) Vaddr.null
    done;
    Machine.store64_fast (m t) (Vaddr.add a flag_off) 0;
    Node.write_payload t.node ~addr:(Vaddr.add a payload_off) ~seed;
    a

  (* The root node is created lazily on first insert. *)
  let root t ~create_missing =
    let a = P.load (m t) ~holder:(head_holder t) in
    if Vaddr.is_null a && create_missing then begin
      let a = new_node t ~seed:0 in
      P.store (m t) ~holder:(head_holder t) a;
      a
    end
    else a

  let insert t word =
    if String.length word = 0 then invalid_arg "Trie.insert: empty word";
    let rec go a i =
      if i = String.length word then begin
        let fresh = Machine.load64_fast (m t) (Vaddr.add a flag_off) = 0 in
        Machine.store64_fast (m t) (Vaddr.add a flag_off) 1;
        fresh
      end
      else begin
        Node.touch t.node;
        let c = letter word i in
        let holder = child_holder a c in
        let next =
          let b = P.load (m t) ~holder in
          if Vaddr.is_null b then begin
            let b = new_node t ~seed:((i * 31) + c) in
            P.store (m t) ~holder b;
            b
          end
          else b
        in
        go next (i + 1)
      end
    in
    go (root t ~create_missing:true) 0

  let contains t word =
    if String.length word = 0 then invalid_arg "Trie.contains: empty word";
    let rec go a i =
      (not (Vaddr.is_null a))
      &&
      if i = String.length word then (
        Node.touch t.node;
        Machine.load64_fast (m t) (Vaddr.add a flag_off) = 1)
      else begin
        Node.touch t.node;
        go (P.load (m t) ~holder:(child_holder a (letter word i))) (i + 1)
      end
    in
    go (root t ~create_missing:false) 0

  let fold t f acc =
    let buf = Buffer.create 16 in
    let rec go a acc =
      if Vaddr.is_null a then acc
      else begin
        Node.touch t.node;
        let acc =
          if Machine.load64_fast (m t) (Vaddr.add a flag_off) = 1 then
            f acc (Buffer.contents buf)
          else acc
        in
        let acc = ref acc in
        for c = 0 to fanout - 1 do
          let child = P.load (m t) ~holder:(child_holder a c) in
          if not (Vaddr.is_null child) then begin
            Buffer.add_char buf (Char.chr (Char.code 'a' + c));
            acc := go child !acc;
            Buffer.truncate buf (Buffer.length buf - 1)
          end
        done;
        !acc
      end
    in
    go (root t ~create_missing:false) acc

  let iter_words t f = fold t (fun () w -> f w) ()
  let word_count t = fold t (fun n _ -> n + 1) 0

  let node_count t =
    let rec go a =
      if Vaddr.is_null a then 0
      else begin
        let n = ref 1 in
        for c = 0 to fanout - 1 do
          n := !n + go (P.load (m t) ~holder:(child_holder a c))
        done;
        !n
      end
    in
    go (root t ~create_missing:false)

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    let rec go a =
      if not (Vaddr.is_null a) then begin
        Node.touch t.node;
        incr n;
        sum := !sum + Machine.load64_fast (m t) (Vaddr.add a flag_off);
        sum := !sum + Node.read_payload t.node ~addr:(Vaddr.add a payload_off);
        for c = 0 to fanout - 1 do
          go (P.load (m t) ~holder:(child_holder a c))
        done
      end
    in
    go (root t ~create_missing:false);
    (!n, !sum)

  let digest t = Digest_obs.v (traverse t)

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Trie: swizzle pass on a non-swizzle representation"

  let swizzle t =
    check_swizzle ();
    let rec go a =
      if not (Vaddr.is_null a) then
        for c = 0 to fanout - 1 do
          go (Swizzle.swizzle_slot (m t) ~holder:(child_holder a c))
        done
    in
    go (Swizzle.swizzle_slot (m t) ~holder:(head_holder t))

  let unswizzle t =
    check_swizzle ();
    let rec go a =
      if not (Vaddr.is_null a) then
        for c = 0 to fanout - 1 do
          go (Swizzle.unswizzle_slot (m t) ~holder:(child_holder a c))
        done
    in
    go (Swizzle.unswizzle_slot (m t) ~holder:(head_holder t))
end
