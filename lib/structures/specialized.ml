(** Pre-instantiated (structure × representation) bundles.

    [Spec (P)] applies every structure functor in this library to one
    pointer representation, yielding the full specialized structure set
    for that representation in a single application. The staged
    instance layer ([Nvmpi_experiments.Instance]) applies it statically
    to each of the nine representations at program start, so steady-state
    instance construction selects a pre-built module by kind instead of
    running a functor application (and unpacking a first-class module)
    per instance. The dynamic path still exists: applying [Spec] to
    [(val Repr.m kind)] is exactly the historical dispatch behaviour. *)

module Spec (P : Core.Repr_sig.S) = struct
  module List = Linked_list.Make (P)
  module Btree = Bstree.Make (P)
  module Hashset = Hashset.Make (P)
  module Trie = Trie.Make (P)
  module Dllist = Dllist.Make (P)
  module Graph = Graph.Make (P)
  module Bplus = Bplus.Make (P)
end
