module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Memsim = Nvmpi_memsim.Memsim
module Objstore = Nvmpi_tx.Objstore
module Vaddr = Nvmpi_addr.Kinds.Vaddr

type alloc_mode = Plain of Region.t array | Wrapped of Objstore.t array

type t = {
  machine : Machine.t;
  mode : alloc_mode;
  payload : int;
  durability : Durable.mode;
  mutable next_region : int;
}

let make ?durability machine ~mode ~payload =
  (match mode with
  | Plain [||] | Wrapped [||] -> invalid_arg "Node.make: no regions"
  | _ -> ());
  if payload < 0 then invalid_arg "Node.make: negative payload";
  let durability =
    match durability with Some d -> d | None -> Durable.mode ()
  in
  { machine; mode; payload; durability; next_region = 0 }

let regions t =
  match t.mode with
  | Plain rs -> rs
  | Wrapped oss -> Array.map Objstore.region oss

let home_region t = (regions t).(0)

let alloc_node t size =
  let i = t.next_region in
  let n =
    match t.mode with Plain rs -> Array.length rs | Wrapped os -> Array.length os
  in
  t.next_region <- (i + 1) mod n;
  match t.mode with
  | Plain rs -> Region.alloc rs.(i) size
  | Wrapped oss -> Objstore.alloc oss.(i) ~size ()

let alloc_in_home t size =
  match t.mode with
  | Plain rs -> Region.alloc rs.(0) size
  | Wrapped oss -> Objstore.alloc oss.(0) ~size ()

let touch t =
  match t.mode with
  | Plain _ -> ()
  | Wrapped oss -> Objstore.touch_read oss.(0)

let mem t = t.machine.Machine.mem

(* Payload contents are a simple word sequence derived from the seed, so
   a checksum mismatch reveals any corruption (e.g. via a dangling
   pointer that happens to land in mapped memory). *)

let payload_word ~seed i =
  ((seed * 0x9E3779B1) lxor (i * 0x85EBCA77)) land 0x3FFF_FFFF_FFFF

let write_payload t ~addr ~seed =
  let words = t.payload / 8 in
  for i = 0 to words - 1 do
    Machine.store64_fast t.machine (Vaddr.add addr (i * 8)) (payload_word ~seed i)
  done;
  for j = words * 8 to t.payload - 1 do
    Memsim.store8 (mem t) (Vaddr.add addr j) ((seed + j) land 0xFF)
  done

let read_payload t ~addr =
  let words = t.payload / 8 in
  let sum = ref 0 in
  for i = 0 to words - 1 do
    sum := !sum + Machine.load64_fast t.machine (Vaddr.add addr (i * 8))
  done;
  for j = words * 8 to t.payload - 1 do
    sum := !sum + Memsim.load8 (mem t) (Vaddr.add addr j)
  done;
  !sum

(* Byte-for-byte payload copy, for node-replacing operations (bstree's
   two-child remove builds replacement nodes): payloads may have been
   mutated since [write_payload] (e.g. [insert_count]'s word 0), so the
   copy preserves bytes rather than regenerating from a seed. *)
let copy_payload t ~src ~dst =
  let words = t.payload / 8 in
  for i = 0 to words - 1 do
    Machine.store64_fast t.machine
      (Vaddr.add dst (i * 8))
      (Machine.load64_fast t.machine (Vaddr.add src (i * 8)))
  done;
  for j = words * 8 to t.payload - 1 do
    Memsim.store8 (mem t) (Vaddr.add dst j) (Memsim.load8 (mem t) (Vaddr.add src j))
  done

let payload_checksum ~payload ~seed =
  let words = payload / 8 in
  let sum = ref 0 in
  for i = 0 to words - 1 do
    sum := !sum + payload_word ~seed i
  done;
  for j = words * 8 to payload - 1 do
    sum := !sum + ((seed + j) land 0xFF)
  done;
  !sum

(* Metadata blocks: [kind | payload | aux | reserved | head slot]. *)

let meta_bytes = 48
let head_slot_off = 32

let write_meta t ~name ~kind ~aux =
  let addr = alloc_in_home t meta_bytes in
  Memsim.store64 (mem t) addr kind;
  Memsim.store64 (mem t) (Vaddr.add addr 8) t.payload;
  Memsim.store64 (mem t) (Vaddr.add addr 16) aux;
  Memsim.store64 (mem t) (Vaddr.add addr 24) 0;
  Memsim.store64 (mem t) (Vaddr.add addr head_slot_off) 0;
  Memsim.store64 (mem t) (Vaddr.add addr (head_slot_off + 8)) 0;
  Region.set_root (home_region t) ~tag:kind name addr;
  addr

let find_meta machine region ~name ~kind =
  match Region.root region name with
  | None -> failwith (Printf.sprintf "Node.find_meta: no root %S" name)
  | Some addr ->
      let mem = machine.Machine.mem in
      let k = Memsim.load64 mem addr in
      if k <> kind then
        failwith
          (Printf.sprintf "Node.find_meta: root %S has kind %d, expected %d"
             name k kind);
      ( addr,
        Memsim.load64 mem (Vaddr.add addr 8),
        Memsim.load64 mem (Vaddr.add addr 16) )
