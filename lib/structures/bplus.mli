(** B+ tree over NVM, generic in the pointer representation: the
    "maps" entry of the paper's list of pointer-based structures, and
    the index shape most NVM storage systems actually use.

    Classic order-[m] B+ tree: internal nodes hold up to [m] keys and
    [m+1] child pointers; leaves hold up to [m] key/value pairs and are
    chained through next-leaf pointers for range scans. All child and
    leaf-chain pointers are representation slots, so the whole index is
    position independent under off-holder/RIV/etc.

    Deletion removes from the leaf without rebalancing (nodes may
    underflow but never violate ordering or depth invariants) — the
    common write-optimized simplification; {!Make.check} validates the
    full invariant set either way. *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> ?order:int -> unit -> t
  (** [order] is the max keys per node (default 8, minimum 3). *)

  val attach : Node.t -> name:string -> t

  val insert : t -> key:int -> value:int -> unit
  (** Inserts or overwrites. *)

  val lookup : t -> key:int -> int option
  val delete : t -> key:int -> bool
  val size : t -> int
  val depth : t -> int

  val range : t -> lo:int -> hi:int -> (int * int) list
  (** All [(key, value)] with [lo <= key <= hi], ascending, via the leaf
      chain. *)

  val min_binding : t -> (int * int) option
  val to_list : t -> (int * int) list

  val traverse : t -> int * int
  (** Charged walk over every node; [(node count, checksum)]. *)

  val check : t -> unit
  (** Validates: keys sorted in every node, children counts, uniform
      leaf depth, leaf chain complete and ascending.
      @raise Failure on violation. *)

  val swizzle : t -> unit
  val unswizzle : t -> unit
end
