(** The uniform observable digest of a persistent structure: what a full
    walk sees, reduced to a comparable value. This is the hook the
    conformance harness ([lib/conform]) checks structures through — two
    executions agree exactly when their digests (plus membership
    answers) agree — and it is deliberately representation-free: only
    node count and content checksum, never addresses. *)

type t = { nodes : int; checksum : int }

let v (nodes, checksum) = { nodes; checksum }
let equal a b = a.nodes = b.nodes && a.checksum = b.checksum

let to_string d =
  Printf.sprintf "(nodes %d checksum %d)" d.nodes d.checksum
