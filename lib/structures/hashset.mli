(** Chained hash set over NVM, generic in the pointer representation.

    A bucket table of pointer slots lives in the home region; each
    bucket chains nodes of layout [next-slot | key (8 bytes) | payload].
    New keys are appended at the end of their chain, as in the paper's
    setup. The bucket count is fixed at creation and recorded in the
    metadata block. *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> buckets:int -> t
  val attach : Node.t -> name:string -> t

  val add : t -> key:int -> bool
  (** Appends [key] to its chain; returns [false] if already present. *)

  val contains : t -> key:int -> bool

  val remove : t -> key:int -> bool
  (** Unlinks [key]'s node from its bucket chain; returns whether it was
      present. Storage is not reclaimed (bump allocators). *)

  val size : t -> int
  val buckets : t -> int

  val traverse : t -> int * int
  (** Walks every chain; [(node count, checksum)]. *)

  val digest : t -> Digest_obs.t
  (** {!traverse} packaged as the uniform observable digest the
      conformance harness compares across representations. *)

  val iter : t -> (addr:Nvmpi_addr.Kinds.Vaddr.t -> key:int -> unit) -> unit
  val swizzle : t -> unit
  val unswizzle : t -> unit
end
