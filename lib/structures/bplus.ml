module Memsim = Nvmpi_memsim.Memsim
module Machine = Core.Machine
module Swizzle = Core.Swizzle
module Vaddr = Nvmpi_addr.Kinds.Vaddr

let kind_tag = 0x17

module Make (P : Core.Repr_sig.S) = struct
  type t = { node : Node.t; meta : Vaddr.t; order : int }

  let slot = P.slot_size
  let m t = t.node.Node.machine
  let m_ t = t.node.Node.machine
  let root_holder t = Vaddr.add t.meta Node.head_slot_off

  (* Node layout (arrays are sized order+1 so a node can temporarily
     hold one extra entry between insertion and split):
       0: is_leaf, 8: nkeys, 16: keys[order+1]
       leaves:    values[order+1] then the next-leaf slot
       internal:  children[order+2] slots *)
  let keys_off = 16
  let key_addr a i = Vaddr.add a (keys_off + (8 * i))
  let arrays_off t = keys_off + (8 * (t.order + 1))
  let value_addr t a i = Vaddr.add a (arrays_off t + (8 * i))
  let next_holder t a = Vaddr.add a (arrays_off t + (8 * (t.order + 1)))
  let child_holder t a i = Vaddr.add a (arrays_off t + (i * slot))
  let leaf_size t = arrays_off t + (8 * (t.order + 1)) + slot
  let internal_size t = arrays_off t + ((t.order + 2) * slot)

  let is_leaf t a = Machine.load64_fast (m t) a = 1
  let nkeys t a = Machine.load64_fast (m t) (Vaddr.add a 8)
  let set_nkeys t a n = Machine.store64_fast (m t) (Vaddr.add a 8) n
  let get_key t a i = Machine.load64_fast (m t) (key_addr a i)
  let set_key t a i v = Machine.store64_fast (m t) (key_addr a i) v
  let get_value t a i = Machine.load64_fast (m t) (value_addr t a i)
  let set_value t a i v = Machine.store64_fast (m t) (value_addr t a i) v
  let get_child t a i = P.load (m_ t) ~holder:(child_holder t a i)
  let set_child t a i v = P.store (m_ t) ~holder:(child_holder t a i) v
  let get_next t a = P.load (m_ t) ~holder:(next_holder t a)
  let set_next t a v = P.store (m_ t) ~holder:(next_holder t a) v

  let create node ~name ?(order = 8) () =
    if order < 3 then invalid_arg "Bplus.create: order must be >= 3";
    let meta = Node.write_meta node ~name ~kind:kind_tag ~aux:order in
    { node; meta; order }

  let attach node ~name =
    let meta, _, order =
      Node.find_meta node.Node.machine (Node.home_region node) ~name
        ~kind:kind_tag
    in
    { node; meta; order }

  let new_leaf t =
    let a = Node.alloc_node t.node (leaf_size t) in
    Machine.store64_fast (m t) a 1;
    set_nkeys t a 0;
    set_next t a Vaddr.null;
    a

  let new_internal t =
    let a = Node.alloc_node t.node (internal_size t) in
    Machine.store64_fast (m t) a 0;
    set_nkeys t a 0;
    a

  (* First index whose key is >= [key] (linear, charged). *)
  let find_pos t a ~key =
    let n = nkeys t a in
    let rec go i = if i >= n || get_key t a i >= key then i else go (i + 1) in
    go 0

  let leaf_insert_at t a pos ~key ~value =
    let n = nkeys t a in
    for i = n downto pos + 1 do
      set_key t a i (get_key t a (i - 1));
      set_value t a i (get_value t a (i - 1))
    done;
    set_key t a pos key;
    set_value t a pos value;
    set_nkeys t a (n + 1)

  let internal_insert_at t a pos ~key ~child =
    let n = nkeys t a in
    for i = n downto pos + 1 do
      set_key t a i (get_key t a (i - 1))
    done;
    for i = n + 1 downto pos + 2 do
      set_child t a i (get_child t a (i - 1))
    done;
    set_key t a pos key;
    set_child t a (pos + 1) child;
    set_nkeys t a (n + 1)

  let split_leaf t a =
    let n = nkeys t a in
    let mid = n / 2 in
    let right = new_leaf t in
    for i = mid to n - 1 do
      set_key t right (i - mid) (get_key t a i);
      set_value t right (i - mid) (get_value t a i)
    done;
    set_nkeys t right (n - mid);
    set_nkeys t a mid;
    set_next t right (get_next t a);
    set_next t a right;
    (get_key t right 0, right)

  let split_internal t a =
    let n = nkeys t a in
    let mid = n / 2 in
    let sep = get_key t a mid in
    let right = new_internal t in
    for i = mid + 1 to n - 1 do
      set_key t right (i - mid - 1) (get_key t a i)
    done;
    for i = mid + 1 to n do
      set_child t right (i - mid - 1) (get_child t a i)
    done;
    set_nkeys t right (n - mid - 1);
    set_nkeys t a mid;
    (sep, right)

  let rec insert_rec t a ~key ~value =
    if is_leaf t a then begin
      let pos = find_pos t a ~key in
      if pos < nkeys t a && get_key t a pos = key then begin
        set_value t a pos value;
        None
      end
      else begin
        leaf_insert_at t a pos ~key ~value;
        if nkeys t a > t.order then Some (split_leaf t a) else None
      end
    end
    else begin
      let pos = find_pos t a ~key in
      (* Separator keys equal to [key] route right (keys >= separator
         live in the right child under our split convention). *)
      let pos = if pos < nkeys t a && get_key t a pos = key then pos + 1 else pos in
      let child = get_child t a pos in
      match insert_rec t child ~key ~value with
      | None -> None
      | Some (sep, right) ->
          internal_insert_at t a pos ~key:sep ~child:right;
          if nkeys t a > t.order then Some (split_internal t a) else None
    end

  let insert t ~key ~value =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if Vaddr.is_null root then begin
      let leaf = new_leaf t in
      leaf_insert_at t leaf 0 ~key ~value;
      P.store (m_ t) ~holder:(root_holder t) leaf
    end
    else
      match insert_rec t root ~key ~value with
      | None -> ()
      | Some (sep, right) ->
          let new_root = new_internal t in
          set_key t new_root 0 sep;
          set_child t new_root 0 root;
          set_child t new_root 1 right;
          set_nkeys t new_root 1;
          P.store (m_ t) ~holder:(root_holder t) new_root

  let rec descend t a ~key =
    Node.touch t.node;
    if is_leaf t a then a
    else begin
      let pos = find_pos t a ~key in
      let pos =
        if pos < nkeys t a && get_key t a pos = key then pos + 1 else pos
      in
      descend t (get_child t a pos) ~key
    end

  let lookup t ~key =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if Vaddr.is_null root then None
    else
      let leaf = descend t root ~key in
      let pos = find_pos t leaf ~key in
      if pos < nkeys t leaf && get_key t leaf pos = key then
        Some (get_value t leaf pos)
      else None

  let delete t ~key =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if Vaddr.is_null root then false
    else
      let leaf = descend t root ~key in
      let pos = find_pos t leaf ~key in
      if pos < nkeys t leaf && get_key t leaf pos = key then begin
        let n = nkeys t leaf in
        for i = pos to n - 2 do
          set_key t leaf i (get_key t leaf (i + 1));
          set_value t leaf i (get_value t leaf (i + 1))
        done;
        set_nkeys t leaf (n - 1);
        true
      end
      else false

  let leftmost_leaf t =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if Vaddr.is_null root then Vaddr.null
    else
      let rec go a = if is_leaf t a then a else go (get_child t a 0) in
      go root

  let fold_leaves t f acc =
    let rec go leaf acc =
      if Vaddr.is_null leaf then acc
      else begin
        Node.touch t.node;
        let acc = ref acc in
        for i = 0 to nkeys t leaf - 1 do
          acc := f !acc (get_key t leaf i) (get_value t leaf i)
        done;
        go (get_next t leaf) !acc
      end
    in
    go (leftmost_leaf t) acc

  let size t = fold_leaves t (fun n _ _ -> n + 1) 0
  let to_list t = List.rev (fold_leaves t (fun acc k v -> (k, v) :: acc) [])

  let min_binding t =
    let rec first leaf =
      if Vaddr.is_null leaf then None
      else if nkeys t leaf > 0 then Some (get_key t leaf 0, get_value t leaf 0)
      else first (get_next t leaf)
    in
    first (leftmost_leaf t)

  let range t ~lo ~hi =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if Vaddr.is_null root then []
    else
      let rec collect leaf acc =
        if Vaddr.is_null leaf then acc
        else begin
          Node.touch t.node;
          let stop = ref false in
          let acc = ref acc in
          for i = 0 to nkeys t leaf - 1 do
            let k = get_key t leaf i in
            if k > hi then stop := true
            else if k >= lo then acc := (k, get_value t leaf i) :: !acc
          done;
          if !stop then !acc else collect (get_next t leaf) !acc
        end
      in
      List.rev (collect (descend t root ~key:lo) [])

  let depth t =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if Vaddr.is_null root then 0
    else
      let rec go a = if is_leaf t a then 1 else 1 + go (get_child t a 0) in
      go root

  let traverse t =
    let n = ref 0 and sum = ref 0 in
    let rec go a =
      Node.touch t.node;
      incr n;
      let k = nkeys t a in
      for i = 0 to k - 1 do
        sum := !sum + get_key t a i
      done;
      if is_leaf t a then
        for i = 0 to k - 1 do
          sum := !sum + get_value t a i
        done
      else
        for i = 0 to k do
          go (get_child t a i)
        done
    in
    (let root = P.load (m_ t) ~holder:(root_holder t) in
     if not (Vaddr.is_null root) then go root);
    (!n, !sum)

  let fail fmt = Printf.ksprintf failwith ("Bplus.check: " ^^ fmt)

  let check t =
    let root = P.load (m_ t) ~holder:(root_holder t) in
    if not (Vaddr.is_null root) then begin
        (* Structural walk: sorted keys, child separation, uniform
           depth; collect leaves left to right. *)
        let leaves = ref [] in
        let rec go a ~lo ~hi =
          let n = nkeys t a in
          if (not (Vaddr.equal a root)) && n = 0 && not (is_leaf t a) then
            fail "empty internal node 0x%x" (a :> int);
          for i = 0 to n - 1 do
            let k = get_key t a i in
            (match lo with Some l when k < l -> fail "key %d below bound" k | _ -> ());
            (match hi with Some h when k >= h -> fail "key %d above bound" k | _ -> ());
            if i > 0 && get_key t a (i - 1) >= k then
              fail "unsorted keys in 0x%x" (a :> int)
          done;
          if is_leaf t a then begin
            leaves := a :: !leaves;
            1
          end
          else begin
            let depths =
              List.init (n + 1) (fun i ->
                  let lo' = if i = 0 then lo else Some (get_key t a (i - 1)) in
                  let hi' = if i = n then hi else Some (get_key t a i) in
                  go (get_child t a i) ~lo:lo' ~hi:hi')
            in
            match depths with
            | d :: rest ->
                if List.exists (fun d' -> d' <> d) rest then
                  fail "non-uniform leaf depth under 0x%x" (a :> int);
                d + 1
            | [] -> assert false
          end
        in
        ignore (go root ~lo:None ~hi:None);
        (* The leaf chain must enumerate exactly the structural leaves,
           left to right. *)
        let structural = List.rev !leaves in
        let chained =
          let rec follow leaf acc =
            if Vaddr.is_null leaf then List.rev acc
            else follow (get_next t leaf) (leaf :: acc)
          in
          follow (leftmost_leaf t) []
        in
        if not (List.equal Vaddr.equal structural chained) then
          fail "leaf chain disagrees with tree";
        (* Keys across the chain are globally ascending. *)
        ignore
          (fold_leaves t
             (fun prev k _ ->
               (match prev with
               | Some p when p >= k -> fail "leaf chain not ascending at %d" k
               | _ -> ());
               Some k)
             None)
    end

  let check_swizzle () =
    if not (String.equal P.name Swizzle.name) then
      invalid_arg "Bplus: swizzle pass on a non-swizzle representation"

  let swizzle t =
    check_swizzle ();
    let rec go a =
      if is_leaf t a then ignore (Swizzle.swizzle_slot (m_ t) ~holder:(next_holder t a))
      else
        for i = 0 to nkeys t a do
          go (Swizzle.swizzle_slot (m_ t) ~holder:(child_holder t a i))
        done
    in
    let root = Swizzle.swizzle_slot (m_ t) ~holder:(root_holder t) in
    if not (Vaddr.is_null root) then go root

  let unswizzle t =
    check_swizzle ();
    let rec go a =
      if is_leaf t a then
        ignore (Swizzle.unswizzle_slot (m_ t) ~holder:(next_holder t a))
      else
        for i = 0 to nkeys t a do
          go (Swizzle.unswizzle_slot (m_ t) ~holder:(child_holder t a i))
        done
    in
    let root = Swizzle.unswizzle_slot (m_ t) ~holder:(root_holder t) in
    if not (Vaddr.is_null root) then go root
end
