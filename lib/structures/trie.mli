(** Trie over lowercase words, generic in the pointer representation.

    Node layout: [26 child slots | terminal flag (8 bytes) | payload];
    each node is one letter, and a root-to-flagged-node path spells a
    word, with shared prefixes sharing subpaths — the paper's fourth
    evaluated structure. *)

module Make (P : Core.Repr_sig.S) : sig
  type t

  val create : Node.t -> name:string -> t
  val attach : Node.t -> name:string -> t

  val insert : t -> string -> bool
  (** Adds a word of characters in [a-z]; returns [false] if present.
      @raise Invalid_argument on an empty word or other characters. *)

  val contains : t -> string -> bool
  val word_count : t -> int
  val node_count : t -> int

  val traverse : t -> int * int
  (** Full DFS; [(node count, checksum over payloads and flags)]. *)

  val digest : t -> Digest_obs.t
  (** {!traverse} packaged as the uniform observable digest the
      conformance harness compares across representations. *)

  val iter_words : t -> (string -> unit) -> unit
  val swizzle : t -> unit
  val unswizzle : t -> unit
end
