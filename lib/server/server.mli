(** The multi-tenant region server: tens of thousands of
    NVRegion-backed kvstore tenants behind a deterministic request
    loop, driven by a YCSB-style zipfian workload across every pointer
    representation.

    One run executes the same request stream once per representation.
    Tenants are statically sharded ([tenant mod shards]); each
    (representation, shard) pair is an independent work item with its
    own store, machine, metrics registry and seeded RNG, so the items
    can execute on a {!Nvmpi_parsweep.Pool} in any order — the report
    (and its JSON) is byte-identical at any [jobs], the same contract
    the bench suite and the faultsim sweep already keep. The shard
    count is a workload parameter, {e never} derived from [jobs].

    Request loop per op: draw a tenant (zipfian over the shard's
    tenants), ensure it is resident ({!Residency}: lazy provisioning,
    LRU eviction, remap-on-reopen), draw an operation from the mix,
    draw a key (zipfian over the tenant's keyspace), execute it against
    the tenant's kvstore, and record the op's simulated-cycle cost.
    Documentation: [docs/SERVER.md] (request loop, residency,
    counters), [docs/WORKLOADS.md] (generator math, mixes, seeding). *)

(** {1 Operation mixes} *)

type mix = { read : float; update : float; insert : float; delete : float }
(** Probabilities of each op class; must be non-negative and sum to 1
    (within 1e-9). Reads are [get]s; updates are [put]s over the
    tenant's base keyspace; inserts are [put]s of fresh keys from an
    extension window of the same size; deletes remove zipfian keys from
    the base keyspace, releasing their value blocks back to the
    allocator (see [docs/WORKLOADS.md]). Deleting mixes also churn the
    value size per (key, version) so overwrites cross allocator size
    classes. *)

val mix_a : mix
(** YCSB A, update-heavy: 50% read / 50% update. *)

val mix_b : mix
(** YCSB B, read-heavy: 95% read / 5% update. *)

val mix_c : mix
(** YCSB C, read-only. *)

val mix_insert : mix
(** Insert-heavy: 50% read / 25% update / 25% insert. *)

val mix_churn : mix
(** Allocator churn: 30% read / 40% update / 15% insert / 15% delete,
    with value-size churn — the [nvmpi serve --churn] mix. *)

val mix_of_string : string -> (mix, string) result
(** Accepts a preset name ([a], [b], [c], [insert], [churn]) or an
    explicit [read:F,update:F,insert:F\[,delete:F\]] list. *)

val mix_to_string : mix -> string
(** Canonical [read:F,update:F,insert:F\[,delete:F\]] form (what JSON
    records); the delete part is omitted when zero, so delete-free
    reports render exactly as before. *)

(** {1 Configuration} *)

type config = {
  tenants : int;  (** total tenant count across all shards *)
  theta : float;  (** zipfian skew for tenant and key popularity *)
  mix : mix;
  ops : int;  (** total requests per representation *)
  seed : int;
  shards : int;  (** static tenant shards (a workload parameter) *)
  resident : int;  (** LRU residency capacity per shard *)
  keys_per_tenant : int;  (** base keyspace size per tenant *)
  value_bytes : int;  (** payload size of every value *)
  region_size : int;  (** per-tenant region image size in bytes *)
  buckets : int;  (** kvstore hash buckets per tenant *)
  log_cap : int;  (** per-tenant undo-log capacity in bytes *)
  reprs : Core.Repr.kind list;  (** representations to drive, in order *)
}

val default : config
(** 1000 tenants, theta 0.99, mix B, 5000 ops, seed 42, 4 shards,
    64 resident, 48 keys/tenant, 64-byte values, 64 KiB regions,
    32 buckets, 4 KiB log, all nine representations. *)

val validate : config -> (unit, string) result

(** {1 Running} *)

type tail = { p50 : int; p90 : int; p99 : int; max : int }
(** Simulated-cycle per-op latency percentiles (nearest-rank over all
    non-provisioning ops, merged across shards). *)

type repr_result = {
  repr : Core.Repr.kind;
  requests : int;
  total_cycles : int;  (** summed final machine cycles over the shards *)
  tail : tail;
  counters : (string * int) list;
      (** merged (summed per name) registries of the representation's
          shard machines — [server.*] plus every machine counter the
          workload touched — with the merge-computed
          [server.tail.*_cycles] values appended; sorted by name *)
}

type report = { config : config; results : repr_result list }

val run : ?jobs:int -> config -> report
(** Runs the full matrix. [jobs] only changes wall-clock; the report is
    byte-identical at any value (and across reruns).
    @raise Invalid_argument if {!validate} rejects the config. *)

val report_to_json : report -> Nvmpi_obs.Json.t
(** The deterministic [kind: "server"] document (schema in
    [docs/SERVER.md]). *)

val print_report : report -> unit
(** Human-readable per-representation summary table. *)
