(** Per-shard tenant residency: one NVRegion-backed {!Nvmpi_apps.Kvstore}
    per tenant, kept mapped under an LRU policy with a fixed capacity.

    This is the mechanism that turns the server workload into a
    cross-region pointer-machinery stress: every residency miss closes
    the least-recently-used tenant's region (persisting its image,
    dropping it from the RIV tables and the fat-pointer runtime,
    invalidating the one-entry fat cache) and opens the requested one —
    at a {e fresh randomized segment} for the self-contained
    representations, so RIV table entries churn and fat-cached state is
    adversarially invalidated thousands of times per run.

    Representations whose persisted slots do not survive a move
    ([Repr.remap_safety <> `Self_contained], i.e. normal and swizzle in
    its steady swizzled state) are {e pinned}: each tenant is assigned a
    fixed NV segment derived from its ID and every reopen maps it back
    there. A real multi-tenant server could not relocate those tenants
    either — that asymmetry is the paper's problem statement at fleet
    scale (see [docs/SERVER.md]).

    Tenants are provisioned lazily: the first touch creates the region,
    formats a transactional object store in it and creates the kvstore.

    All counters go to the owning machine's registry under [server.*]
    (catalogue in [docs/METRICS.md]). *)

type t

val create :
  machine:Core.Machine.t ->
  repr:Core.Repr.kind ->
  cap:int ->
  region_size:int ->
  buckets:int ->
  log_cap:int ->
  unit ->
  t
(** [cap] is the maximum number of concurrently resident (mapped)
    tenants; [region_size] the per-tenant region image size in bytes;
    [buckets]/[log_cap] are passed to the kvstore / object store.
    @raise Invalid_argument if [cap < 1]. *)

val repr : t -> Core.Repr.kind
val resident_count : t -> int

val kv : t -> tenant:int -> Nvmpi_apps.Kvstore.t * bool
(** [kv t ~tenant] returns the tenant's kvstore handle, provisioning
    and/or mapping the tenant as needed and evicting the LRU tenant if
    the residency set is full. The boolean is [true] iff this call
    {e provisioned} the tenant (first touch: region creation plus
    object-store and kvstore formatting — a cost the request loop
    excludes from per-op tail samples). For the based representation
    the machine's base register is retargeted to the tenant's region
    before returning. *)

val is_resident : t -> tenant:int -> bool
val is_provisioned : t -> tenant:int -> bool

val region_base : t -> tenant:int -> Nvmpi_addr.Kinds.Vaddr.t option
(** Current base of the tenant's region, if resident — lets tests
    assert that an evicted-and-reaccessed tenant really moved (or, for
    pinned representations, really did not). *)

val close_all : t -> unit
(** Drains the residency set (shutdown): closes every resident region,
    counting [server.unmaps] but not [server.evictions]. *)
