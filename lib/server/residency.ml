module Machine = Core.Machine
module Repr = Core.Repr
module Region = Nvmpi_nvregion.Region
module Objstore = Nvmpi_tx.Objstore
module Kvstore = Nvmpi_apps.Kvstore
module Metrics = Nvmpi_obs.Metrics
module Layout = Nvmpi_addr.Layout
module K = Nvmpi_addr.Kinds

type entry = {
  rid : K.Rid.t;
  mutable kv : Kvstore.t option;  (* Some iff resident (mapped) *)
  mutable last : int;  (* LRU stamp; strictly increasing, so unique *)
}

type t = {
  machine : Machine.t;
  repr : Repr.kind;
  cap : int;
  region_size : int;
  buckets : int;
  log_cap : int;
  pinned : bool;
  tenants : (int, entry) Hashtbl.t;
  mutable resident : int;
  mutable clock : int;
  (* hot counters, resolved once *)
  c_maps : int ref;
  c_unmaps : int ref;
  c_evictions : int ref;
  c_creates : int ref;
  c_hits : int ref;
  c_misses : int ref;
  c_pinned_reopens : int ref;
}

let create ~machine ~repr ~cap ~region_size ~buckets ~log_cap () =
  if cap < 1 then invalid_arg "Residency.create: cap must be >= 1";
  let m = Machine.metrics machine in
  {
    machine;
    repr;
    cap;
    region_size;
    buckets;
    log_cap;
    pinned = Repr.remap_safety repr <> `Self_contained;
    tenants = Hashtbl.create 64;
    resident = 0;
    clock = 0;
    c_maps = Metrics.counter m "server.maps";
    c_unmaps = Metrics.counter m "server.unmaps";
    c_evictions = Metrics.counter m "server.evictions";
    c_creates = Metrics.counter m "server.tenant_creates";
    c_hits = Metrics.counter m "server.residency_hits";
    c_misses = Metrics.counter m "server.residency_misses";
    c_pinned_reopens = Metrics.counter m "server.pinned_reopens";
  }

let repr t = t.repr
let resident_count t = t.resident

let touch t e =
  t.clock <- t.clock + 1;
  e.last <- t.clock

(* Pinned tenants always map at the same segment, derived from the
   tenant ID: segment numbers are unique per tenant, so a reopen can
   never find its slot occupied. *)
let pinned_seg t ~tenant =
  K.Seg.v (Layout.data_nvbase_min t.machine.Machine.layout + 1 + tenant)

(* The LRU victim: the resident entry with the smallest stamp. Stamps
   are unique (the clock is strictly increasing), so the minimum is
   unique and the fold is deterministic whatever the hashtable's
   iteration order. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match (e.kv, acc) with
        | None, _ -> acc
        | Some _, Some v when v.last <= e.last -> acc
        | Some _, _ -> Some e)
      t.tenants None
  in
  match victim with
  | None -> failwith "Residency.evict_lru: no resident tenant"
  | Some e ->
      Machine.close_region t.machine e.rid;
      e.kv <- None;
      t.resident <- t.resident - 1;
      incr t.c_unmaps;
      incr t.c_evictions

let make_room t = if t.resident >= t.cap then evict_lru t

let open_tenant t ~tenant e =
  let at_nvbase = if t.pinned then Some (pinned_seg t ~tenant) else None in
  let region = Machine.open_region ?at_nvbase t.machine e.rid in
  if t.pinned then incr t.c_pinned_reopens;
  incr t.c_maps;
  if t.repr = Repr.Based then Machine.set_based_region t.machine e.rid;
  let os = Objstore.attach t.machine region in
  let kv = Kvstore.attach os ~repr:t.repr ~name:"kv" in
  e.kv <- Some kv;
  t.resident <- t.resident + 1;
  kv

let provision t ~tenant =
  make_room t;
  let rid = Machine.create_region t.machine ~size:t.region_size in
  let at_nvbase = if t.pinned then Some (pinned_seg t ~tenant) else None in
  let region = Machine.open_region ?at_nvbase t.machine rid in
  if t.pinned then incr t.c_pinned_reopens;
  incr t.c_maps;
  incr t.c_creates;
  if t.repr = Repr.Based then Machine.set_based_region t.machine rid;
  (* Under snapshot durability (docs/SNAPSHOT.md) tenants run the
     un-instrumented write path: the flush-free freelist heap instead of
     palloc's logged one, and [Kvstore.create]'s default picks the plain
     (no undo-log) store path. *)
  let heap =
    if Nvmpi_snapshot.Snapshot.enabled () then `Freelist else `Palloc
  in
  let os = Objstore.create t.machine region ~log_cap:t.log_cap ~heap () in
  let kv = Kvstore.create os ~repr:t.repr ~name:"kv" ~buckets:t.buckets () in
  let e = { rid; kv = Some kv; last = 0 } in
  Hashtbl.replace t.tenants tenant e;
  t.resident <- t.resident + 1;
  touch t e;
  kv

let kv t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | None ->
      incr t.c_misses;
      (provision t ~tenant, true)
  | Some e -> (
      touch t e;
      match e.kv with
      | Some kv ->
          incr t.c_hits;
          (* The based base register is machine-global: another resident
             tenant may have claimed it since this tenant's last op. *)
          if t.repr = Repr.Based then Machine.set_based_region t.machine e.rid;
          (kv, false)
      | None ->
          incr t.c_misses;
          make_room t;
          (open_tenant t ~tenant e, false))

let is_resident t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some { kv = Some _; _ } -> true
  | _ -> false

let is_provisioned t ~tenant = Hashtbl.mem t.tenants tenant

let region_base t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some { kv = Some _; rid; _ } ->
      Option.map Region.base (Machine.region t.machine rid)
  | _ -> None

let close_all t =
  (* Deterministic drain order: by tenant ID. *)
  let resident =
    Hashtbl.fold
      (fun tenant e acc ->
        match e.kv with Some _ -> (tenant, e) :: acc | None -> acc)
      t.tenants []
  in
  List.iter
    (fun (_, e) ->
      Machine.close_region t.machine e.rid;
      e.kv <- None;
      t.resident <- t.resident - 1;
      incr t.c_unmaps)
    (List.sort (fun (a, _) (b, _) -> compare a b) resident)
