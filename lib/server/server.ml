module Machine = Core.Machine
module Repr = Core.Repr
module Store = Nvmpi_nvregion.Store
module Kvstore = Nvmpi_apps.Kvstore
module Metrics = Nvmpi_obs.Metrics
module Json = Nvmpi_obs.Json
module Pool = Nvmpi_parsweep.Pool

(* Operation mixes ---------------------------------------------------- *)

type mix = { read : float; update : float; insert : float; delete : float }

let mix_a = { read = 0.5; update = 0.5; insert = 0.0; delete = 0.0 }
let mix_b = { read = 0.95; update = 0.05; insert = 0.0; delete = 0.0 }
let mix_c = { read = 1.0; update = 0.0; insert = 0.0; delete = 0.0 }
let mix_insert = { read = 0.5; update = 0.25; insert = 0.25; delete = 0.0 }

(* Allocator-churn mix: heavy overwrites plus real deletes, so value
   blocks are freed and reallocated all run long. Deleting mixes also
   churn the value {e size} (see [value_for]), exercising every size
   class of the palloc heap behind the tenants' object stores. *)
let mix_churn = { read = 0.3; update = 0.4; insert = 0.15; delete = 0.15 }

let mix_valid m =
  m.read >= 0.0 && m.update >= 0.0 && m.insert >= 0.0 && m.delete >= 0.0
  && Float.abs (m.read +. m.update +. m.insert +. m.delete -. 1.0) < 1e-9

let mix_to_string m =
  (* The delete component is omitted when zero so reports from
     pre-delete configurations render byte-identically. *)
  Printf.sprintf "read:%g,update:%g,insert:%g" m.read m.update m.insert
  ^ (if m.delete > 0.0 then Printf.sprintf ",delete:%g" m.delete else "")

let mix_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "a" -> Ok mix_a
  | "b" -> Ok mix_b
  | "c" -> Ok mix_c
  | "insert" -> Ok mix_insert
  | "churn" -> Ok mix_churn
  | s -> (
      (* read:F,update:F,insert:F — order-insensitive, all parts required *)
      let parts = String.split_on_char ',' s in
      let parse_part acc part =
        match (acc, String.split_on_char ':' part) with
        | Error _, _ -> acc
        | Ok m, [ key; v ] -> (
            match float_of_string_opt v with
            | None -> Error (Printf.sprintf "mix: %S is not a number" v)
            | Some f -> (
                match String.trim key with
                | "read" -> Ok { m with read = f }
                | "update" -> Ok { m with update = f }
                | "insert" -> Ok { m with insert = f }
                | "delete" -> Ok { m with delete = f }
                | k -> Error (Printf.sprintf "mix: unknown op class %S" k)))
        | Ok _, _ ->
            Error (Printf.sprintf "mix: expected class:prob, got %S" part)
      in
      match
        List.fold_left parse_part
          (Ok { read = 0.0; update = 0.0; insert = 0.0; delete = 0.0 })
          parts
      with
      | Error _ as e -> e
      | Ok m ->
          if mix_valid m then Ok m
          else
            Error
              (Printf.sprintf
                 "mix: probabilities must be non-negative and sum to 1 (got %s)"
                 (mix_to_string m)))

(* Configuration ------------------------------------------------------ *)

type config = {
  tenants : int;
  theta : float;
  mix : mix;
  ops : int;
  seed : int;
  shards : int;
  resident : int;
  keys_per_tenant : int;
  value_bytes : int;
  region_size : int;
  buckets : int;
  log_cap : int;
  reprs : Repr.kind list;
}

let default =
  {
    tenants = 1000;
    theta = 0.99;
    mix = mix_b;
    ops = 5000;
    seed = 42;
    shards = 4;
    resident = 64;
    keys_per_tenant = 48;
    value_bytes = 64;
    region_size = 64 * 1024;
    buckets = 32;
    log_cap = 4096;
    reprs = Repr.all;
  }

let validate c =
  let err fmt = Printf.ksprintf Result.error fmt in
  if c.tenants < 1 then err "tenants must be >= 1"
  else if c.theta < 0.0 || c.theta >= 1.0 then err "theta must be in [0, 1)"
  else if not (mix_valid c.mix) then
    err "mix probabilities must be non-negative and sum to 1"
  else if c.ops < 0 then err "ops must be >= 0"
  else if c.shards < 1 then err "shards must be >= 1"
  else if c.shards > c.tenants then
    err "shards (%d) must not exceed tenants (%d)" c.shards c.tenants
  else if c.resident < 1 then err "resident capacity must be >= 1"
  else if c.keys_per_tenant < 1 then err "keys-per-tenant must be >= 1"
  else if c.value_bytes < 1 || c.value_bytes > 1024 then
    err "value-bytes must be in [1, 1024]"
  else if c.buckets < 1 then err "buckets must be >= 1"
  else if c.log_cap < 512 then err "log-cap must be >= 512"
  else if c.region_size < Store.header_bytes + c.log_cap + 8192 then
    err "region-size %d too small for header + log + heap" c.region_size
  else if c.reprs = [] then err "at least one representation is required"
  else Ok ()

(* Sharding ----------------------------------------------------------- *)

(* Tenant [t] lives on shard [t mod shards]; the shard's rank [r]
   (zipfian popularity rank within the shard) maps back to the global
   tenant ID [r * shards + sh]. *)
let shard_tenants c sh = (c.tenants - sh + c.shards - 1) / c.shards
let shard_ops c sh = (c.ops / c.shards) + (if sh < c.ops mod c.shards then 1 else 0)

(* One shard of one representation: an independent work item. *)
type shard_out = {
  o_counters : (string * int) list;
  o_samples : int array;  (* per-op simulated cycles, op order *)
  o_cycles : int;
}

let value_for c ~tenant ~key ~version =
  (* Under a deleting (churn) mix the value size itself churns —
     deterministically per (key, version) — so overwrites move blocks
     across allocator size classes instead of reusing one class. *)
  let len =
    if c.mix.delete > 0.0 then 1 + (((version * 37) + (key * 11)) mod c.value_bytes)
    else c.value_bytes
  in
  let base = Printf.sprintf "t%d.k%d.v%d." tenant key version in
  let n = String.length base in
  if n >= len then String.sub base 0 len
  else base ^ String.make (len - n) 'x'

let run_shard c ~repr ~sh () =
  let n_sh = shard_tenants c sh in
  let ops_sh = shard_ops c sh in
  (* Seeded per shard, NOT per representation: every representation
     replays the identical request stream (and identical region
     placement draws), so cross-representation numbers are
     apples-to-apples. *)
  let st = Random.State.make [| c.seed; sh; 0x53E6 |] in
  let machine_seed = (c.seed * 0x1F3F5) lxor (sh * 0x61) land max_int in
  let store = Store.create () in
  let machine = Machine.create ~seed:machine_seed ~store () in
  let res =
    Residency.create ~machine ~repr ~cap:c.resident
      ~region_size:c.region_size ~buckets:c.buckets ~log_cap:c.log_cap ()
  in
  let metrics = Machine.metrics machine in
  let c_requests = Metrics.counter metrics "server.requests" in
  let c_reads = Metrics.counter metrics "server.reads" in
  let c_read_misses = Metrics.counter metrics "server.read_misses" in
  let c_updates = Metrics.counter metrics "server.updates" in
  let c_inserts = Metrics.counter metrics "server.inserts" in
  let c_deletes = Metrics.counter metrics "server.deletes" in
  let c_delete_misses = Metrics.counter metrics "server.delete_misses" in
  let zt = Zipf.v ~n:n_sh ~theta:c.theta in
  let zk = Zipf.v ~n:c.keys_per_tenant ~theta:c.theta in
  let insert_cursor = Hashtbl.create 64 in
  let versions = Hashtbl.create 64 in
  let samples = Array.make (max ops_sh 1) 0 in
  let n_samples = ref 0 in
  for _ = 1 to ops_sh do
    let rank = Zipf.next zt st in
    let tenant = (rank * c.shards) + sh in
    let c0 = Machine.cycles machine in
    let kv, provisioned = Residency.kv res ~tenant in
    let r = Random.State.float st 1.0 in
    incr c_requests;
    if r < c.mix.read then begin
      let key = 1 + Zipf.next zk st in
      incr c_reads;
      if Kvstore.get kv ~key = None then incr c_read_misses
    end
    else if r < c.mix.read +. c.mix.update then begin
      let key = 1 + Zipf.next zk st in
      incr c_updates;
      let v =
        match Hashtbl.find_opt versions (tenant, key) with
        | Some v -> v + 1
        | None -> 0
      in
      Hashtbl.replace versions (tenant, key) v;
      Kvstore.put kv ~key (value_for c ~tenant ~key ~version:v)
    end
    else if
      c.mix.delete > 0.0 && r >= c.mix.read +. c.mix.update +. c.mix.insert
    then begin
      (* Delete: zipfian key from the base keyspace; misses count. The
         guard keeps delete-free mixes on exactly the pre-delete branch
         structure (float sums need not hit 1.0 exactly). *)
      let key = 1 + Zipf.next zk st in
      incr c_deletes;
      if not (Kvstore.delete kv ~key) then incr c_delete_misses
      else Hashtbl.remove versions (tenant, key)
    end
    else begin
      (* Insert: fresh keys from an extension window of the keyspace's
         own size, wrapping when exhausted (the region stays bounded). *)
      let cur =
        match Hashtbl.find_opt insert_cursor tenant with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add insert_cursor tenant r;
            r
      in
      let key = c.keys_per_tenant + 1 + (!cur mod c.keys_per_tenant) in
      incr cur;
      incr c_inserts;
      Kvstore.put kv ~key (value_for c ~tenant ~key ~version:!cur)
    end;
    let dc = Machine.cycles machine - c0 in
    (* Provisioning (region creation + object-store/kvstore formatting)
       is a one-time setup cost, not a steady-state op: it is excluded
       from the tail samples but stays in the cycle/counter totals. *)
    if not provisioned then begin
      samples.(!n_samples) <- dc;
      incr n_samples
    end
  done;
  Residency.close_all res;
  {
    o_counters = Metrics.snapshot metrics;
    o_samples = Array.sub samples 0 !n_samples;
    o_cycles = Machine.cycles machine;
  }

(* Merging ------------------------------------------------------------ *)

type tail = { p50 : int; p90 : int; p99 : int; max : int }

type repr_result = {
  repr : Repr.kind;
  requests : int;
  total_cycles : int;
  tail : tail;
  counters : (string * int) list;
}

type report = { config : config; results : repr_result list }

let percentile sorted pct =
  let len = Array.length sorted in
  if len = 0 then 0
  else
    let rank = max 1 (((len * pct) + 99) / 100) in
    sorted.(rank - 1)

let tail_of_samples samples =
  if Array.length samples = 0 then { p50 = 0; p90 = 0; p99 = 0; max = 0 }
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    {
      p50 = percentile sorted 50;
      p90 = percentile sorted 90;
      p99 = percentile sorted 99;
      max = sorted.(Array.length sorted - 1);
    }
  end

let merge_counters outs =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun o ->
      List.iter
        (fun (name, v) ->
          Hashtbl.replace tbl name
            (v + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
        o.o_counters)
    outs;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let merge_repr config repr outs =
  let samples = Array.concat (List.map (fun o -> o.o_samples) outs) in
  let tail = tail_of_samples samples in
  let counters = merge_counters outs in
  let requests = Option.value ~default:0 (List.assoc_opt "server.requests" counters) in
  (* The tail values are merge-computed (percentiles cannot be summed);
     they join the counter list so one catalogue covers the whole
     server surface, but only exist at this level. *)
  let counters =
    List.sort compare
      (("server.tail.p50_cycles", tail.p50)
      :: ("server.tail.p90_cycles", tail.p90)
      :: ("server.tail.p99_cycles", tail.p99)
      :: ("server.tail.max_cycles", tail.max)
      :: counters)
  in
  ignore config;
  {
    repr;
    requests;
    total_cycles = List.fold_left (fun a o -> a + o.o_cycles) 0 outs;
    tail;
    counters;
  }

let run ?(jobs = 1) c =
  (match validate c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Server.run: " ^ msg));
  let reprs = Array.of_list c.reprs in
  let tasks =
    List.concat
      (List.init (Array.length reprs) (fun ri ->
           List.init c.shards (fun sh -> run_shard c ~repr:reprs.(ri) ~sh)))
  in
  let outs = Pool.map ~jobs tasks in
  let rec group ri outs acc =
    if ri >= Array.length reprs then List.rev acc
    else
      let mine, rest =
        (List.filteri (fun i _ -> i < c.shards) outs,
         List.filteri (fun i _ -> i >= c.shards) outs)
      in
      group (ri + 1) rest (merge_repr c reprs.(ri) mine :: acc)
  in
  { config = c; results = group 0 outs [] }

(* JSON --------------------------------------------------------------- *)

let schema_version = 1

let config_to_json c =
  Json.Obj
    [
      ("tenants", Json.Int c.tenants);
      ("theta", Json.Float c.theta);
      ("mix", Json.String (mix_to_string c.mix));
      ("ops", Json.Int c.ops);
      ("seed", Json.Int c.seed);
      ("shards", Json.Int c.shards);
      ("resident", Json.Int c.resident);
      ("keys_per_tenant", Json.Int c.keys_per_tenant);
      ("value_bytes", Json.Int c.value_bytes);
      ("region_size", Json.Int c.region_size);
      ("buckets", Json.Int c.buckets);
      ("log_cap", Json.Int c.log_cap);
      ( "reprs",
        Json.List
          (List.map (fun r -> Json.String (Repr.to_string r)) c.reprs) );
    ]

let report_to_json r =
  Json.Obj
    [
      ("kind", Json.String "server");
      ("schema_version", Json.Int schema_version);
      ("params", config_to_json r.config);
      ( "reprs",
        Json.List
          (List.map
             (fun res ->
               Json.Obj
                 [
                   ("name", Json.String (Repr.to_string res.repr));
                   ("requests", Json.Int res.requests);
                   ("total_cycles", Json.Int res.total_cycles);
                   ( "tail_cycles",
                     Json.Obj
                       [
                         ("p50", Json.Int res.tail.p50);
                         ("p90", Json.Int res.tail.p90);
                         ("p99", Json.Int res.tail.p99);
                         ("max", Json.Int res.tail.max);
                       ] );
                   ("counters", Metrics.json_of_counters res.counters);
                 ])
             r.results) );
    ]

(* Human-readable summary --------------------------------------------- *)

let get_counter res name =
  Option.value ~default:0 (List.assoc_opt name res.counters)

let print_report r =
  let c = r.config in
  Printf.printf
    "server: %d tenants on %d shard(s), %d ops/repr, theta %g, mix %s, \
     resident %d, seed %d\n"
    c.tenants c.shards c.ops c.theta (mix_to_string c.mix) c.resident c.seed;
  Printf.printf "  %-11s %9s %8s %8s %8s %9s %10s %10s %12s\n" "repr"
    "requests" "creates" "maps" "evicts" "p50cyc" "p99cyc" "maxcyc"
    "total cyc";
  List.iter
    (fun res ->
      Printf.printf "  %-11s %9d %8d %8d %8d %9d %10d %10d %12d\n"
        (Repr.to_string res.repr) res.requests
        (get_counter res "server.tenant_creates")
        (get_counter res "server.maps")
        (get_counter res "server.evictions")
        res.tail.p50 res.tail.p99 res.tail.max res.total_cycles)
    r.results
