type t = {
  n : int;
  theta : float;
  zetan : float;  (* zeta(n, theta) *)
  cdf : float array;  (* cdf.(r) = P(rank <= r); empty when theta = 0 *)
}

let v ~n ~theta =
  if n < 1 then invalid_arg "Zipf.v: n must be >= 1";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.v: theta must be in [0, 1)";
  if theta = 0.0 then { n; theta; zetan = 0.0; cdf = [||] }
  else begin
    let cdf = Array.make n 0.0 in
    let s = ref 0.0 in
    for r = 0 to n - 1 do
      s := !s +. (1.0 /. (float_of_int (r + 1) ** theta));
      cdf.(r) <- !s
    done;
    let zetan = !s in
    for r = 0 to n - 1 do
      cdf.(r) <- cdf.(r) /. zetan
    done;
    (* Make the final bucket absorb any accumulated rounding, so every
       u in [0, 1) finds a rank. *)
    cdf.(n - 1) <- 1.0;
    { n; theta; zetan; cdf }
  end

let n t = t.n
let theta t = t.theta

let next t st =
  if t.theta = 0.0 then Random.State.int st t.n
  else begin
    let u = Random.State.float st 1.0 in
    (* Smallest rank with cdf.(rank) > u. *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo
  end

let expected_prob t r =
  if r < 0 || r >= t.n then invalid_arg "Zipf.expected_prob: rank out of range";
  if t.theta = 0.0 then 1.0 /. float_of_int t.n
  else 1.0 /. (float_of_int (r + 1) ** t.theta) /. t.zetan
