(** The zipfian request-popularity generator behind the server's
    YCSB-style workload.

    Rank [r] (0-based) is drawn with probability exactly
    [1 / (r+1)^theta / zeta(n, theta)] — sampled by inverting the
    precomputed cumulative distribution with a binary search, so draws
    match {!expected_prob} exactly (no continuous-approximation bias,
    unlike the classic Gray et al. SIGMOD'94 O(1) inversion YCSB uses,
    whose per-rank error at small [n] defeats a chi-square check).
    Construction is O(n), a draw is O(log n). [theta = 0] degenerates
    to the uniform distribution and is special-cased to an exact
    [Random.State.int] draw.

    Draws consume exactly one [Random.State] value, so a generator is
    deterministic under a seeded state — the property the server's
    [--jobs]-independent sharding relies on (see [docs/WORKLOADS.md]
    for the math and the seeding discipline). *)

type t

val v : n:int -> theta:float -> t
(** Generator over ranks [0 .. n-1] with skew [theta].
    @raise Invalid_argument unless [n >= 1] and [0 <= theta < 1]
    (the harmonic normalization diverges at [theta = 1]). *)

val n : t -> int
val theta : t -> float

val next : t -> Random.State.t -> int
(** One draw: a rank in [0 .. n-1], most popular first (rank 0 is the
    hottest item). *)

val expected_prob : t -> int -> float
(** [expected_prob t r] is the probability of rank [r]
    ([1/(r+1)^theta / zeta(n, theta)]) — what the chi-square test in
    [test/test_server.ml] checks draws against. *)
