(** Type checking and lowering for the NVC mini-language.

    Implements the semantics of Figure 8: pointer values in flight
    (locals, parameters, returns) are absolute addresses; the class of a
    {e memory slot} ([persistentI], [persistentX], [persistent]/normal)
    determines the conversion code generated at each load and store of
    that slot. The checker enforces:

    - assignment between any pointer classes with equal pointee types
      (the implicit conversions of Figure 8 (c)), null and [root_get]
      results being assignable to any pointer type;
    - [persistentI]/[persistentX] only on NVM-resident holders: struct
      fields may carry them, locals and parameters may not (their
      holders live in volatile frames);
    - pointer arithmetic preserving the pointer's type, scaled by the
      pointee size;
    - no address-of on locals, no struct-by-value operations.

    Stores into [persistentI] slots lower to checked [SlotStore]s: the
    off-holder encoding itself raises if the target is not in the
    holder's region (the dynamic safety check of Section 4.4). *)

exception Error of string

val program : Ast.program -> Types.t * Ir.program
(** @raise Error with a human-readable message on any type violation. *)
