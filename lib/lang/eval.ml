module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Memsim = Nvmpi_memsim.Memsim
module Vaddr = Nvmpi_addr.Kinds.Vaddr
module Rid = Nvmpi_addr.Kinds.Rid

exception Runtime_error of string

type outcome = { result : int option; output : string }

exception Return_exn of int option

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type ctx = {
  machine : Machine.t;
  funcs : (string, Ir.func) Hashtbl.t;
  out : Buffer.t;
}

let truthy v = v <> 0

(* Language-level values are plain machine words; the conversion to a
   typed address at each memory touch is the evaluator's Figure 8 trust
   boundary (the same place the paper's compiler inserts conversions). *)
let slot_load ctx cls holder =
  if holder = 0 then err "null dereference (pointer slot load)";
  let holder = Vaddr.v holder in
  (match cls with
   | Ast.Normal | Ast.Persistent -> Core.Normal_ptr.load ctx.machine ~holder
   | Ast.PersistentI -> Core.Off_holder.load ctx.machine ~holder
   | Ast.PersistentX -> Core.Riv.load ctx.machine ~holder
    :> int)

let slot_store ctx cls holder value =
  if holder = 0 then err "null dereference (pointer slot store)";
  let holder = Vaddr.v holder and value = Vaddr.v value in
  try
    match cls with
    | Ast.Normal | Ast.Persistent ->
        Core.Normal_ptr.store ctx.machine ~holder value
    | Ast.PersistentI -> Core.Off_holder.store ctx.machine ~holder value
    | Ast.PersistentX -> Core.Riv.store ctx.machine ~holder value
  with
  | Machine.Cross_region_store { holder; target; _ } ->
      err
        "dynamic check failed: persistentI slot at 0x%x cannot point to \
         0x%x (different NVRegion)"
        (holder :> int)
        (target :> int)
  | Core.Nvspace.Not_nv_data { addr } ->
      err "persistentX slot cannot point to non-NVM address 0x%x"
        (addr :> int)

let rec eval ctx frame (e : Ir.expr) : int =
  match e with
  | Ir.Const n -> n
  | Ir.LocalGet x -> begin
      match Hashtbl.find_opt frame x with
      | Some v -> v
      | None -> err "unbound local %s" x
    end
  | Ir.LoadInt a ->
      let addr = eval ctx frame a in
      if addr = 0 then err "null dereference (int load)";
      Memsim.load64 ctx.machine.Machine.mem (Vaddr.v addr)
  | Ir.SlotLoad (cls, a) -> slot_load ctx cls (eval ctx frame a)
  | Ir.Bin (op, a, b) -> begin
      match op with
      | Ast.And -> if truthy (eval ctx frame a) then
            (if truthy (eval ctx frame b) then 1 else 0)
          else 0
      | Ast.Or ->
          if truthy (eval ctx frame a) then 1
          else if truthy (eval ctx frame b) then 1
          else 0
      | _ ->
          let x = eval ctx frame a in
          let y = eval ctx frame b in
          (match op with
          | Ast.Add -> x + y
          | Ast.Sub -> x - y
          | Ast.Mul -> x * y
          | Ast.Div -> if y = 0 then err "division by zero" else x / y
          | Ast.Mod -> if y = 0 then err "modulo by zero" else x mod y
          | Ast.Eq -> if x = y then 1 else 0
          | Ast.Neq -> if x <> y then 1 else 0
          | Ast.Lt -> if x < y then 1 else 0
          | Ast.Gt -> if x > y then 1 else 0
          | Ast.Le -> if x <= y then 1 else 0
          | Ast.Ge -> if x >= y then 1 else 0
          | Ast.And | Ast.Or -> assert false)
    end
  | Ir.Un (Ast.Neg, e) -> -eval ctx frame e
  | Ir.Un (Ast.Not, e) -> if truthy (eval ctx frame e) then 0 else 1
  | Ir.Call (name, args) -> begin
      let vals = List.map (eval ctx frame) args in
      match call ctx name vals with
      | Some v -> v
      | None -> err "void function %s used as a value" name
    end
  | Ir.RegionCreate size ->
      let size = eval ctx frame size in
      if size <= 0 then err "region_create: non-positive size %d" size;
      (Machine.create_region ctx.machine ~size :> int)
  | Ir.RegionOpen rid -> begin
      let rid = eval ctx frame rid in
      try (Region.rid (Machine.open_region ctx.machine (Rid.v rid)) :> int)
      with Invalid_argument m | Failure m -> err "region_open: %s" m
    end
  | Ir.RootGet (rid, name) -> begin
      let rid = eval ctx frame rid in
      match Machine.region ctx.machine (Rid.v rid) with
      | None -> err "root_get: region %d is not open" rid
      | Some r -> (
          match Region.root r name with
          | Some a -> (a :> int)
          | None -> err "root_get: region %d has no root %S" rid name)
    end
  | Ir.RegionMigrate (rid, size) -> begin
      let rid = eval ctx frame rid in
      let size = eval ctx frame size in
      try
        (Region.rid (Machine.migrate_region ctx.machine (Rid.v rid) ~size)
          :> int)
      with Invalid_argument m | Failure m -> err "region_migrate: %s" m
    end
  | Ir.NewArray (rid, elem_size, count) ->
      let count = eval ctx frame count in
      if count <= 0 then err "new: non-positive array length %d" count;
      alloc_zeroed ctx frame rid (elem_size * count)
  | Ir.New (rid, size) -> alloc_zeroed ctx frame rid size

and alloc_zeroed ctx frame rid size =
  begin
      let rid = eval ctx frame rid in
      match Machine.region ctx.machine (Rid.v rid) with
      | None -> err "new: region %d is not open" rid
      | Some r ->
          let a =
            try Region.alloc r size
            with Region.Out_of_region_memory _ ->
              err "new: region %d is out of memory" rid
          in
          (* Zero-initialize so pointer fields start null. *)
          let w = ref 0 in
          while !w < size do
            Memsim.store64 ctx.machine.Machine.mem (Vaddr.add a !w) 0;
            w := !w + 8
          done;
          (a :> int)
    end

and exec ctx frame (s : Ir.stmt) : unit =
  match s with
  | Ir.Let (x, e) | Ir.SetLocal (x, e) ->
      Hashtbl.replace frame x (eval ctx frame e)
  | Ir.StoreInt { addr; value } ->
      let a = eval ctx frame addr in
      if a = 0 then err "null dereference (int store)";
      let v = eval ctx frame value in
      Memsim.store64 ctx.machine.Machine.mem (Vaddr.v a) v
  | Ir.SlotStore { cls; holder; value } ->
      let h = eval ctx frame holder in
      let v = eval ctx frame value in
      slot_store ctx cls h v
  | Ir.RegionClose rid -> begin
      let rid = eval ctx frame rid in
      try Machine.close_region ctx.machine (Rid.v rid)
      with Invalid_argument m -> err "region_close: %s" m
    end
  | Ir.RootSet { rid; name; value } -> begin
      let rid = eval ctx frame rid in
      let v = eval ctx frame value in
      match Machine.region ctx.machine (Rid.v rid) with
      | None -> err "root_set: region %d is not open" rid
      | Some r -> (
          try Region.set_root r name (Vaddr.v v)
          with Invalid_argument m -> err "root_set: %s" m)
    end
  | Ir.If (c, t, e) ->
      if truthy (eval ctx frame c) then exec_block ctx frame t
      else exec_block ctx frame e
  | Ir.While (c, body) ->
      while truthy (eval ctx frame c) do
        exec_block ctx frame body
      done
  | Ir.Return None -> raise (Return_exn None)
  | Ir.Return (Some e) -> raise (Return_exn (Some (eval ctx frame e)))
  | Ir.ExprStmt e -> begin
      (* Void calls execute for effect; other expressions for their
         (charged) evaluation. *)
      match e with
      | Ir.Call (name, args) ->
          let vals = List.map (eval ctx frame) args in
          ignore (call ctx name vals)
      | _ -> ignore (eval ctx frame e)
    end
  | Ir.Print e ->
      Buffer.add_string ctx.out (string_of_int (eval ctx frame e));
      Buffer.add_char ctx.out '\n'

and exec_block ctx frame stmts = List.iter (exec ctx frame) stmts

and call ctx name vals : int option =
  match Hashtbl.find_opt ctx.funcs name with
  | None -> err "unknown function %s" name
  | Some f ->
      if List.length vals <> List.length f.Ir.params then
        err "%s expects %d arguments, got %d" name (List.length f.Ir.params)
          (List.length vals);
      let frame = Hashtbl.create 16 in
      List.iter2 (fun p v -> Hashtbl.replace frame p v) f.Ir.params vals;
      (try
         exec_block ctx frame f.Ir.body;
         None
       with Return_exn v -> v)

let run machine (p : Ir.program) ?(entry = "main") ?(args = []) () =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (name, f) -> Hashtbl.replace funcs name f) p.Ir.funcs;
  if not (Hashtbl.mem funcs entry) then err "no entry function %s" entry;
  let ctx = { machine; funcs; out = Buffer.create 256 } in
  let result =
    try call ctx entry args
    with Memsim.Fault { addr; _ } ->
      err "invalid memory access at 0x%x (dangling or null pointer)" addr
  in
  { result; output = Buffer.contents ctx.out }
