let pp_ty ppf ty = Format.pp_print_string ppf (Ast.ty_to_string ty)

(* Expressions print fully parenthesized, so the round-trip never
   depends on precedence subtleties. *)
let rec pp_expr ppf (e : Ast.expr) =
  match e with
  | Ast.Int n ->
      if n < 0 then Format.fprintf ppf "(0 - %d)" (-n)
      else Format.fprintf ppf "%d" n
  | Ast.Str s -> Format.fprintf ppf "%S" s
  | Ast.Null -> Format.pp_print_string ppf "null"
  | Ast.Var x -> Format.pp_print_string ppf x
  | Ast.Bin (op, a, b) ->
      let s =
        match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
        | Ast.Mod -> "%" | Ast.Eq -> "==" | Ast.Neq -> "!=" | Ast.Lt -> "<"
        | Ast.Gt -> ">" | Ast.Le -> "<=" | Ast.Ge -> ">=" | Ast.And -> "&&"
        | Ast.Or -> "||"
      in
      Format.fprintf ppf "(%a %s %a)" pp_expr a s pp_expr b
  | Ast.Un (Ast.Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Ast.Un (Ast.Not, e) -> Format.fprintf ppf "(!%a)" pp_expr e
  | Ast.Deref e -> Format.fprintf ppf "(*%a)" pp_expr e
  | Ast.AddrOf e -> Format.fprintf ppf "(&%a)" pp_expr e
  | Ast.Arrow (e, f) -> Format.fprintf ppf "%a->%s" pp_expr e f
  | Ast.Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        args
  | Ast.New (rid, ty) -> Format.fprintf ppf "new(%a, %a)" pp_expr rid pp_ty ty
  | Ast.NewArray (rid, ty, n) ->
      Format.fprintf ppf "new(%a, %a, %a)" pp_expr rid pp_ty ty pp_expr n

let rec pp_stmt ppf (s : Ast.stmt) =
  match s with
  | Ast.Decl (ty, x, None) -> Format.fprintf ppf "%a %s;" pp_ty ty x
  | Ast.Decl (ty, x, Some e) ->
      Format.fprintf ppf "%a %s = %a;" pp_ty ty x pp_expr e
  | Ast.Assign (lhs, rhs) ->
      Format.fprintf ppf "%a = %a;" pp_expr lhs pp_expr rhs
  | Ast.If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_block t
  | Ast.If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}"
        pp_expr c pp_block t pp_block e
  | Ast.While (c, b) ->
      Format.fprintf ppf "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_block b
  | Ast.Return None -> Format.pp_print_string ppf "return;"
  | Ast.Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Ast.Expr e -> Format.fprintf ppf "%a;" pp_expr e
  | Ast.Print e -> Format.fprintf ppf "print(%a);" pp_expr e

and pp_block ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_struct ppf (d : Ast.struct_def) =
  Format.fprintf ppf "@[<v 2>struct %s {" d.Ast.sname;
  List.iter
    (fun (ty, f) -> Format.fprintf ppf "@,%a %s;" pp_ty ty f)
    d.Ast.fields;
  Format.fprintf ppf "@]@,}@,"

let pp_func ppf (f : Ast.func) =
  let ret ppf = function
    | None -> Format.pp_print_string ppf "void"
    | Some ty -> pp_ty ppf ty
  in
  Format.fprintf ppf "@[<v 2>%a %s(%s) {%a@]@,}@," ret f.Ast.ret f.Ast.fname
    (String.concat ", "
       (List.map
          (fun (ty, x) -> Format.asprintf "%a %s" pp_ty ty x)
          f.Ast.params))
    pp_block f.Ast.body

let pp_program ppf (p : Ast.program) =
  Format.fprintf ppf "@[<v>";
  List.iter (pp_struct ppf) p.Ast.structs;
  List.iter (pp_func ppf) p.Ast.funcs;
  Format.fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
let expr_to_string e = Format.asprintf "%a" pp_expr e
