(** Tokens of the NVC mini-language (C subset + the paper's type
    qualifiers). *)

type t =
  | INT of int
  | IDENT of string
  | STRING of string
  (* keywords *)
  | KW_INT
  | KW_STRUCT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_VOID
  | KW_NULL
  | KW_PERSISTENT
  | KW_PERSISTENT_I
  | KW_PERSISTENT_X
  | KW_NEW
  | KW_PRINT
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | STAR
  | AMP
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | ASSIGN
  | EQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | ANDAND
  | OROR
  | BANG
  | ARROW
  | DOT
  | EOF

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | "void" -> Some KW_VOID
  | "null" | "NULL" -> Some KW_NULL
  | "persistent" -> Some KW_PERSISTENT
  | "persistentI" -> Some KW_PERSISTENT_I
  | "persistentX" -> Some KW_PERSISTENT_X
  | "new" -> Some KW_NEW
  | "print" -> Some KW_PRINT
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW_INT -> "int"
  | KW_STRUCT -> "struct"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_VOID -> "void"
  | KW_NULL -> "null"
  | KW_PERSISTENT -> "persistent"
  | KW_PERSISTENT_I -> "persistentI"
  | KW_PERSISTENT_X -> "persistentX"
  | KW_NEW -> "new"
  | KW_PRINT -> "print"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | STAR -> "*"
  | AMP -> "&"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ASSIGN -> "="
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | ARROW -> "->"
  | DOT -> "."
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
