exception Error of { line : int; msg : string }

type state = { toks : (Token.t * int) array; mutable pos : int }

let cur st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1
let err st fmt =
  Printf.ksprintf (fun msg -> raise (Error { line = line st; msg })) fmt

let expect st tok =
  if cur st = tok then advance st
  else
    err st "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (cur st))

let expect_ident st =
  match cur st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> err st "expected identifier, found %s" (Token.to_string t)

(* Types: qualifier? base stars. The qualifier names the class of the
   outermost pointer; inner pointer levels are normal. *)

let qualifier_of_token = function
  | Token.KW_PERSISTENT -> Some Ast.Persistent
  | Token.KW_PERSISTENT_I -> Some Ast.PersistentI
  | Token.KW_PERSISTENT_X -> Some Ast.PersistentX
  | _ -> None

let starts_type st =
  match cur st with
  | Token.KW_INT | Token.KW_STRUCT | Token.KW_PERSISTENT
  | Token.KW_PERSISTENT_I | Token.KW_PERSISTENT_X ->
      true
  | _ -> false

let parse_base st =
  match cur st with
  | Token.KW_INT ->
      advance st;
      Ast.Tint
  | Token.KW_STRUCT ->
      advance st;
      Ast.Tstruct (expect_ident st)
  | t -> err st "expected a type, found %s" (Token.to_string t)

let parse_type st =
  let qual = qualifier_of_token (cur st) in
  if qual <> None then advance st;
  let base = parse_base st in
  let rec stars t =
    if cur st = Token.STAR then begin
      advance st;
      stars (Ast.Tptr (Ast.Normal, t))
    end
    else t
  in
  let t = stars base in
  match (qual, t) with
  | None, _ -> t
  | Some q, Ast.Tptr (Ast.Normal, inner) -> Ast.Tptr (q, inner)
  | Some _, _ -> err st "pointer qualifier on a non-pointer type"

(* Expressions *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if cur st = Token.OROR then begin
    advance st;
    Ast.Bin (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if cur st = Token.ANDAND then begin
    advance st;
    Ast.Bin (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match cur st with
    | Token.EQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Neq
    | Token.LT -> Some Ast.Lt
    | Token.GT -> Some Ast.Gt
    | Token.LE -> Some Ast.Le
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Bin (op, lhs, parse_add st)

and parse_add st =
  let rec go lhs =
    match cur st with
    | Token.PLUS ->
        advance st;
        go (Ast.Bin (Ast.Add, lhs, parse_mul st))
    | Token.MINUS ->
        advance st;
        go (Ast.Bin (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match cur st with
    | Token.STAR ->
        advance st;
        go (Ast.Bin (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
        advance st;
        go (Ast.Bin (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT ->
        advance st;
        go (Ast.Bin (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match cur st with
  | Token.STAR ->
      advance st;
      Ast.Deref (parse_unary st)
  | Token.AMP ->
      advance st;
      Ast.AddrOf (parse_unary st)
  | Token.MINUS ->
      advance st;
      Ast.Un (Ast.Neg, parse_unary st)
  | Token.BANG ->
      advance st;
      Ast.Un (Ast.Not, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match cur st with
    | Token.ARROW ->
        advance st;
        go (Ast.Arrow (e, expect_ident st))
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        (* e[i] desugars to *(e + i); the pointer arithmetic rule scales
           by the pointee size. *)
        go (Ast.Deref (Ast.Bin (Ast.Add, e, idx)))
    | Token.DOT -> err st "use -> for field access (structs live behind pointers)"
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  match cur st with
  | Token.INT n ->
      advance st;
      Ast.Int n
  | Token.STRING s ->
      advance st;
      Ast.Str s
  | Token.KW_NULL ->
      advance st;
      Ast.Null
  | Token.KW_NEW ->
      advance st;
      expect st Token.LPAREN;
      let rid = parse_expr st in
      expect st Token.COMMA;
      let ty = parse_type st in
      if cur st = Token.COMMA then begin
        advance st;
        let count = parse_expr st in
        expect st Token.RPAREN;
        Ast.NewArray (rid, ty, count)
      end
      else begin
        expect st Token.RPAREN;
        Ast.New (rid, ty)
      end
  | Token.IDENT name ->
      advance st;
      if cur st = Token.LPAREN then begin
        advance st;
        let args = ref [] in
        if cur st <> Token.RPAREN then begin
          args := [ parse_expr st ];
          while cur st = Token.COMMA do
            advance st;
            args := parse_expr st :: !args
          done
        end;
        expect st Token.RPAREN;
        Ast.Call (name, List.rev !args)
      end
      else Ast.Var name
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | t -> err st "unexpected token %s in expression" (Token.to_string t)

(* Statements *)

let rec parse_stmt st =
  match cur st with
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_block st in
      let else_ =
        if cur st = Token.KW_ELSE then begin
          advance st;
          parse_block st
        end
        else []
      in
      Ast.If (cond, then_, else_)
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      Ast.While (cond, parse_block st)
  | Token.KW_RETURN ->
      advance st;
      if cur st = Token.SEMI then begin
        advance st;
        Ast.Return None
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Ast.Return (Some e)
      end
  | Token.KW_PRINT ->
      advance st;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      Ast.Print e
  | _ when starts_type st ->
      let ty = parse_type st in
      let name = expect_ident st in
      let init =
        if cur st = Token.ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Token.SEMI;
      Ast.Decl (ty, name, init)
  | _ ->
      let e = parse_expr st in
      if cur st = Token.ASSIGN then begin
        advance st;
        let rhs = parse_expr st in
        expect st Token.SEMI;
        Ast.Assign (e, rhs)
      end
      else begin
        expect st Token.SEMI;
        Ast.Expr e
      end

and parse_block st =
  expect st Token.LBRACE;
  let stmts = ref [] in
  while cur st <> Token.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

(* Top level *)

let parse_struct st =
  expect st Token.KW_STRUCT;
  let sname = expect_ident st in
  expect st Token.LBRACE;
  let fields = ref [] in
  while cur st <> Token.RBRACE do
    let ty = parse_type st in
    let name = expect_ident st in
    expect st Token.SEMI;
    fields := (ty, name) :: !fields
  done;
  advance st;
  if cur st = Token.SEMI then advance st;
  { Ast.sname; fields = List.rev !fields }

let parse_func st =
  let ret =
    if cur st = Token.KW_VOID then begin
      advance st;
      None
    end
    else Some (parse_type st)
  in
  let fname = expect_ident st in
  expect st Token.LPAREN;
  let params = ref [] in
  if cur st <> Token.RPAREN then begin
    let param () =
      let ty = parse_type st in
      let name = expect_ident st in
      (ty, name)
    in
    params := [ param () ];
    while cur st = Token.COMMA do
      advance st;
      params := param () :: !params
    done
  end;
  expect st Token.RPAREN;
  let body = parse_block st in
  { Ast.fname; params = List.rev !params; ret; body }

let is_struct_def st =
  (* "struct S {" is a definition; "struct S *" or "struct S name("
     starts a function return type. *)
  cur st = Token.KW_STRUCT
  && st.pos + 2 < Array.length st.toks
  && fst st.toks.(st.pos + 2) = Token.LBRACE

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let structs = ref [] and funcs = ref [] in
  while cur st <> Token.EOF do
    if is_struct_def st then structs := parse_struct st :: !structs
    else funcs := parse_func st :: !funcs
  done;
  { Ast.structs = List.rev !structs; funcs = List.rev !funcs }

let parse_expr_string src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expr st in
  expect st Token.EOF;
  e
