(** NVC: the paper's C-like language extension (Section 4.4) as a small
    standalone compiler + interpreter over the simulated NVM machine.

    Pipeline: {!Lexer} -> {!Parser} -> {!Typecheck} (checks the
    [persistentI]/[persistentX] rules of Figure 8 and lowers to {!Ir}
    with explicit slot conversions) -> {!Eval} (executes against a
    {!Core.Machine.t}, charging conversion costs to its timing model).

    {[
      let store = Core.Store.create () in
      let m = Core.Machine.create ~store () in
      match Lang.compile source with
      | Error msg -> prerr_endline msg
      | Ok prog ->
          let { Lang.Eval.result; output } = Lang.Eval.run m prog () in
          print_string output
    ]} *)

module Token = Token
module Lexer = Lexer
module Ast = Ast
module Types = Types
module Parser = Parser
module Typecheck = Typecheck
module Pretty = Pretty
module Ir = Ir
module Eval = Eval

let compile src : (Ir.program, string) result =
  match Typecheck.program (Parser.parse src) with
  | _, prog -> Ok prog
  | exception Lexer.Error { line; msg } ->
      Error (Printf.sprintf "lexical error (line %d): %s" line msg)
  | exception Parser.Error { line; msg } ->
      Error (Printf.sprintf "syntax error (line %d): %s" line msg)
  | exception Typecheck.Error msg -> Error (Printf.sprintf "type error: %s" msg)

let compile_exn src =
  match compile src with Ok p -> p | Error msg -> failwith msg

let run_string machine ?entry ?args src =
  match compile src with
  | Error msg -> Error msg
  | Ok prog -> begin
      match Eval.run machine prog ?entry ?args () with
      | outcome -> Ok outcome
      | exception Eval.Runtime_error msg ->
          Error (Printf.sprintf "runtime error: %s" msg)
    end
