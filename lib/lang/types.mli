(** Type environment and data layout for the NVC mini-language.

    Every scalar and pointer slot is 8 bytes (all of the paper's
    position-independent representations are pointer-sized by design);
    struct fields are laid out in declaration order. *)

type field = { fld_name : string; fld_ty : Ast.ty; fld_off : int }

type t
(** The struct environment. *)

exception Error of string

val build : Ast.struct_def list -> t
(** Computes layouts for all declared structs.
    @raise Error on duplicate names/fields, unknown field struct types,
    or directly recursive (non-pointer) struct fields. *)

val slot_size : int
(** Size of every scalar/pointer slot (8). *)

val size_of : t -> Ast.ty -> int
val struct_size : t -> string -> int
val field : t -> string -> string -> field
(** [field env s f] looks up field [f] of [struct s].
    @raise Error if missing. *)

val fields : t -> string -> field list
val has_struct : t -> string -> bool

val ty_equal : Ast.ty -> Ast.ty -> bool
(** Structural equality of types (classes included). *)

val pointee_equal : Ast.ty -> Ast.ty -> bool
(** Equality up to the outermost pointer class: the assignment
    compatibility the Figure 8 conversions require. *)
