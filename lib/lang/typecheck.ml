exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type ety = Ty of Ast.ty | AnyPtr

let ety_to_string = function
  | Ty t -> Ast.ty_to_string t
  | AnyPtr -> "nullable pointer"

type env = {
  types : Types.t;
  funcs : (string, Ast.ty option * (Ast.ty * string) list) Hashtbl.t;
  mutable locals : (string * Ast.ty) list;
  ret : Ast.ty option;
}

let builtin_names =
  [ "region_create"; "region_open"; "region_close"; "region_migrate";
    "root_get"; "root_set" ]

let is_ptr = function Ty (Ast.Tptr _) | AnyPtr -> true | _ -> false
let is_int = function Ty Ast.Tint -> true | _ -> false

(* Volatile holders (locals, parameters, return slots) cannot carry the
   NV-resident-only classes. *)
let check_volatile_holder what name = function
  | Ast.Tptr (Ast.PersistentI, _) ->
      err
        "%s %s cannot be persistentI: its holder lives in a volatile frame, \
         but a persistentI pointer's holder must reside in an NVRegion"
        what name
  | Ast.Tptr (Ast.PersistentX, _) ->
      err
        "%s %s cannot be persistentX: its holder lives in a volatile frame, \
         but a persistentX pointer's holder must reside in an NVRegion"
        what name
  | Ast.Tstruct s -> err "%s %s cannot hold struct %s by value" what name s
  | _ -> ()

let check_known_struct env what = function
  | Ast.Tstruct s | Ast.Tptr (_, Ast.Tstruct s) ->
      if not (Types.has_struct env.types s) then
        err "%s references unknown struct %s" what s
  | _ -> ()

let local_ty env name =
  match List.assoc_opt name env.locals with
  | Some t -> t
  | None -> err "unknown variable %s" name

let assignable env ~lhs ~rhs =
  ignore env;
  match (lhs, rhs) with
  | Ast.Tint, Ty Ast.Tint -> true
  | Ast.Tptr _, AnyPtr -> true
  | Ast.Tptr (_, p1), Ty (Ast.Tptr (_, p2)) -> Types.ty_equal p1 p2
  | _ -> false

let require_assignable env ~what ~lhs ~rhs =
  if not (assignable env ~lhs ~rhs) then
    err "%s: cannot assign %s to %s" what (ety_to_string rhs)
      (Ast.ty_to_string lhs)

(* Expression inference: returns the lowered IR (pointers as absolute
   addresses) and the static type. *)
let rec infer env (e : Ast.expr) : Ir.expr * ety =
  match e with
  | Ast.Int n -> (Ir.Const n, Ty Ast.Tint)
  | Ast.Null -> (Ir.Const 0, AnyPtr)
  | Ast.Str _ -> err "string literals are only valid as root names"
  | Ast.Var x -> (Ir.LocalGet x, Ty (local_ty env x))
  | Ast.New (rid, ty) -> begin
      match ty with
      | Ast.Tstruct s ->
          if not (Types.has_struct env.types s) then
            err "new: unknown struct %s" s;
          let rid_ir = infer_int env "new region id" rid in
          ( Ir.New (rid_ir, Types.struct_size env.types s),
            Ty (Ast.Tptr (Ast.Persistent, ty)) )
      | _ -> err "new allocates struct types only"
    end
  | Ast.NewArray (rid, ty, count) -> begin
      (match ty with
      | Ast.Tstruct s when not (Types.has_struct env.types s) ->
          err "new: unknown struct %s" s
      | Ast.Tint | Ast.Tstruct _ -> ()
      | Ast.Tptr _ ->
          err
            "new: arrays of persistent pointers must live inside structs \
             (the element slots need a declared pointer class)");
      let rid_ir = infer_int env "new region id" rid in
      let count_ir = infer_int env "new element count" count in
      ( Ir.NewArray (rid_ir, Types.size_of env.types ty, count_ir),
        Ty (Ast.Tptr (Ast.Persistent, ty)) )
    end
  | Ast.Deref e -> begin
      match lvalue env (Ast.Deref e) with
      | `Mem (addr, ty) -> load_from env addr ty
      | `Local _ -> assert false
    end
  | Ast.Arrow (_, _) -> begin
      match lvalue env e with
      | `Mem (addr, ty) -> load_from env addr ty
      | `Local _ -> assert false
    end
  | Ast.AddrOf inner -> begin
      match lvalue env inner with
      | `Local (x, _) ->
          err "cannot take the address of local %s (volatile frame)" x
      | `Mem (addr, ty) -> (addr, Ty (Ast.Tptr (Ast.Persistent, ty)))
    end
  | Ast.Un (Ast.Neg, e) ->
      let ir = infer_int env "negation" e in
      (Ir.Un (Ast.Neg, ir), Ty Ast.Tint)
  | Ast.Un (Ast.Not, e) ->
      let ir, ty = infer env e in
      if not (is_int ty || is_ptr ty) then err "! expects int or pointer";
      (Ir.Un (Ast.Not, ir), Ty Ast.Tint)
  | Ast.Bin (op, a, b) -> infer_bin env op a b
  | Ast.Call (name, args) -> infer_call env name args

and load_from env addr ty =
  ignore env;
  match ty with
  | Ast.Tint -> (Ir.LoadInt addr, Ty Ast.Tint)
  | Ast.Tptr (cls, _) -> (Ir.SlotLoad (cls, addr), Ty ty)
  | Ast.Tstruct s -> err "cannot load struct %s by value" s

and infer_int env what e =
  let ir, ty = infer env e in
  if not (is_int ty) then
    err "%s expects int, found %s" what (ety_to_string ty);
  ir

and infer_bin env op a b =
  let a_ir, a_ty = infer env a in
  let b_ir, b_ty = infer env b in
  let pointee_size = function
    | Ty (Ast.Tptr (_, p)) -> Types.size_of env.types p
    | _ -> assert false
  in
  match op with
  | Ast.Add | Ast.Sub -> begin
      match (a_ty, b_ty) with
      | Ty Ast.Tint, Ty Ast.Tint -> (Ir.Bin (op, a_ir, b_ir), Ty Ast.Tint)
      | Ty (Ast.Tptr _ as pt), Ty Ast.Tint ->
          (* Figure 8's "i op v" / "x op v": the result keeps the
             pointer's type; C-style element scaling. *)
          let scaled = Ir.Bin (Ast.Mul, b_ir, Ir.Const (pointee_size a_ty)) in
          (Ir.Bin (op, a_ir, scaled), Ty pt)
      | Ty Ast.Tint, Ty (Ast.Tptr _ as pt) when op = Ast.Add ->
          let scaled = Ir.Bin (Ast.Mul, a_ir, Ir.Const (pointee_size b_ty)) in
          (Ir.Bin (Ast.Add, b_ir, scaled), Ty pt)
      | Ty (Ast.Tptr (_, p1)), Ty (Ast.Tptr (_, p2))
        when op = Ast.Sub && Types.ty_equal p1 p2 ->
          ( Ir.Bin
              (Ast.Div, Ir.Bin (Ast.Sub, a_ir, b_ir),
               Ir.Const (Types.size_of env.types p1)),
            Ty Ast.Tint )
      | _ ->
          err "invalid operands to %s" (if op = Ast.Add then "+" else "-")
    end
  | Ast.Mul | Ast.Div | Ast.Mod ->
      if not (is_int a_ty && is_int b_ty) then
        err "arithmetic expects int operands";
      (Ir.Bin (op, a_ir, b_ir), Ty Ast.Tint)
  | Ast.Eq | Ast.Neq ->
      let ok =
        (is_int a_ty && is_int b_ty)
        || (is_ptr a_ty && is_ptr b_ty
           &&
           match (a_ty, b_ty) with
           | Ty t1, Ty t2 -> Types.pointee_equal t1 t2
           | _ -> true)
      in
      if not ok then
        err "cannot compare %s with %s" (ety_to_string a_ty)
          (ety_to_string b_ty);
      (Ir.Bin (op, a_ir, b_ir), Ty Ast.Tint)
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge ->
      let ok =
        (is_int a_ty && is_int b_ty)
        ||
        match (a_ty, b_ty) with
        | Ty (Ast.Tptr (_, p1)), Ty (Ast.Tptr (_, p2)) ->
            Types.ty_equal p1 p2
        | _ -> false
      in
      if not ok then err "invalid comparison operands";
      (Ir.Bin (op, a_ir, b_ir), Ty Ast.Tint)
  | Ast.And | Ast.Or ->
      let cond ty = is_int ty || is_ptr ty in
      if not (cond a_ty && cond b_ty) then
        err "logical operators expect int or pointer operands";
      (Ir.Bin (op, a_ir, b_ir), Ty Ast.Tint)

and infer_call env name args =
  match name with
  | "region_create" -> begin
      match args with
      | [ size ] ->
          (Ir.RegionCreate (infer_int env "region_create" size), Ty Ast.Tint)
      | _ -> err "region_create(size) takes one argument"
    end
  | "region_open" -> begin
      match args with
      | [ rid ] -> (Ir.RegionOpen (infer_int env "region_open" rid), Ty Ast.Tint)
      | _ -> err "region_open(rid) takes one argument"
    end
  | "root_get" -> begin
      match args with
      | [ rid; Ast.Str n ] ->
          (Ir.RootGet (infer_int env "root_get" rid, n), AnyPtr)
      | _ -> err "root_get(rid, \"name\") takes a region id and a root name"
    end
  | "region_migrate" -> begin
      match args with
      | [ rid; size ] ->
          ( Ir.RegionMigrate
              (infer_int env "region_migrate" rid,
               infer_int env "region_migrate size" size),
            Ty Ast.Tint )
      | _ -> err "region_migrate(rid, new_size) takes two arguments"
    end
  | "region_close" | "root_set" ->
      err "%s is a statement, not an expression" name
  | _ -> begin
      match Hashtbl.find_opt env.funcs name with
      | None -> err "unknown function %s" name
      | Some (ret, params) ->
          if List.length args <> List.length params then
            err "%s expects %d arguments, got %d" name (List.length params)
              (List.length args);
          let args_ir =
            List.map2
              (fun arg (pty, pname) ->
                let ir, ty = infer env arg in
                require_assignable env
                  ~what:(Printf.sprintf "argument %s of %s" pname name)
                  ~lhs:pty ~rhs:ty;
                ir)
              args params
          in
          let ret_ty =
            match ret with
            | None -> err "void function %s used as a value" name
            | Some t -> Ty t
          in
          (Ir.Call (name, args_ir), ret_ty)
    end

(* Lvalues: where a store lands and what conversion its slot needs. *)
and lvalue env (e : Ast.expr) :
    [ `Local of string * Ast.ty | `Mem of Ir.expr * Ast.ty ] =
  match e with
  | Ast.Var x -> `Local (x, local_ty env x)
  | Ast.Deref inner -> begin
      let ir, ty = infer env inner in
      match ty with
      | Ty (Ast.Tptr (_, pointee)) -> `Mem (ir, pointee)
      | AnyPtr -> err "cannot dereference a value of unknown pointee type"
      | _ -> err "cannot dereference %s" (ety_to_string ty)
    end
  | Ast.Arrow (base, f) -> begin
      let ir, ty = infer env base in
      match ty with
      | Ty (Ast.Tptr (_, Ast.Tstruct s)) ->
          let fld = Types.field env.types s f in
          `Mem
            ( Ir.Bin (Ast.Add, ir, Ir.Const fld.Types.fld_off),
              fld.Types.fld_ty )
      | _ -> err "-> expects a pointer to a struct, found %s" (ety_to_string ty)
    end
  | _ -> err "expression is not an lvalue"

(* Statements *)

let rec stmt env (s : Ast.stmt) : Ir.stmt list =
  match s with
  | Ast.Decl (ty, name, init) ->
      check_volatile_holder "local" name ty;
      check_known_struct env ("declaration of " ^ name) ty;
      if List.mem_assoc name env.locals then
        err "duplicate local %s" name;
      let init_ir =
        match init with
        | None -> Ir.Const 0
        | Some e ->
            let ir, ety = infer env e in
            require_assignable env
              ~what:(Printf.sprintf "initialization of %s" name)
              ~lhs:ty ~rhs:ety;
            ir
      in
      env.locals <- (name, ty) :: env.locals;
      [ Ir.Let (name, init_ir) ]
  | Ast.Assign (lhs, rhs) -> begin
      let rhs_ir, rhs_ty = infer env rhs in
      match lvalue env lhs with
      | `Local (x, ty) ->
          require_assignable env ~what:("assignment to " ^ x) ~lhs:ty
            ~rhs:rhs_ty;
          [ Ir.SetLocal (x, rhs_ir) ]
      | `Mem (addr, Ast.Tint) ->
          require_assignable env ~what:"assignment" ~lhs:Ast.Tint ~rhs:rhs_ty;
          [ Ir.StoreInt { addr; value = rhs_ir } ]
      | `Mem (addr, (Ast.Tptr (cls, _) as ty)) ->
          require_assignable env ~what:"assignment" ~lhs:ty ~rhs:rhs_ty;
          [ Ir.SlotStore { cls; holder = addr; value = rhs_ir } ]
      | `Mem (_, Ast.Tstruct s) -> err "cannot assign struct %s by value" s
    end
  | Ast.If (cond, then_, else_) ->
      let cond_ir = condition env cond in
      [ Ir.If (cond_ir, block env then_, block env else_) ]
  | Ast.While (cond, body) ->
      let cond_ir = condition env cond in
      [ Ir.While (cond_ir, block env body) ]
  | Ast.Return None ->
      if env.ret <> None then err "return without a value in a non-void function";
      [ Ir.Return None ]
  | Ast.Return (Some e) -> begin
      match env.ret with
      | None -> err "return with a value in a void function"
      | Some rty ->
          let ir, ty = infer env e in
          require_assignable env ~what:"return" ~lhs:rty ~rhs:ty;
          [ Ir.Return (Some ir) ]
    end
  | Ast.Print e ->
      let ir, ty = infer env e in
      if not (is_int ty || is_ptr ty) then err "print expects int or pointer";
      [ Ir.Print ir ]
  | Ast.Expr (Ast.Call ("region_close", [ rid ])) ->
      [ Ir.RegionClose (infer_int env "region_close" rid) ]
  | Ast.Expr (Ast.Call ("root_set", [ rid; Ast.Str n; v ])) ->
      let v_ir, v_ty = infer env v in
      if not (is_ptr v_ty) then err "root_set expects a pointer value";
      [ Ir.RootSet { rid = infer_int env "root_set" rid; name = n; value = v_ir } ]
  | Ast.Expr (Ast.Call (("region_close" | "root_set") as n, _)) ->
      err "wrong arguments to %s" n
  | Ast.Expr (Ast.Call (name, args))
    when (not (List.mem name builtin_names))
         && Hashtbl.mem env.funcs name
         && fst (Hashtbl.find env.funcs name) = None ->
      (* void call in statement position *)
      let _, params = Hashtbl.find env.funcs name in
      if List.length args <> List.length params then
        err "%s expects %d arguments" name (List.length params);
      let args_ir =
        List.map2
          (fun arg (pty, pname) ->
            let ir, ty = infer env arg in
            require_assignable env
              ~what:(Printf.sprintf "argument %s of %s" pname name)
              ~lhs:pty ~rhs:ty;
            ir)
          args params
      in
      [ Ir.ExprStmt (Ir.Call (name, args_ir)) ]
  | Ast.Expr e ->
      let ir, _ = infer env e in
      [ Ir.ExprStmt ir ]

and condition env e =
  let ir, ty = infer env e in
  if not (is_int ty || is_ptr ty) then
    err "condition must be int or pointer, found %s" (ety_to_string ty);
  ir

and block env stmts =
  (* Blocks share the enclosing function scope (declarations are
     function-wide, C89 style); restore the scope afterwards so sibling
     blocks can reuse names. *)
  let saved = env.locals in
  let out = List.concat_map (stmt env) stmts in
  env.locals <- saved;
  out

let func env (f : Ast.func) : Ir.func =
  List.iter
    (fun (ty, name) ->
      check_volatile_holder "parameter" name ty;
      check_known_struct env ("parameter " ^ name) ty)
    f.Ast.params;
  (match f.Ast.ret with
  | Some rty ->
      check_volatile_holder "return type of" f.Ast.fname rty;
      check_known_struct env ("return type of " ^ f.Ast.fname) rty
  | None -> ());
  let env =
    { env with locals = List.map (fun (t, n) -> (n, t)) f.Ast.params;
      ret = f.Ast.ret }
  in
  let params = List.map snd f.Ast.params in
  (match
     List.fold_left
       (fun seen p ->
         if List.mem p seen then err "duplicate parameter %s" p else p :: seen)
       [] params
   with
  | _ -> ());
  { Ir.name = f.Ast.fname; params; body = block env f.Ast.body }

let program (p : Ast.program) =
  let types =
    try Types.build p.Ast.structs
    with Types.Error m -> raise (Error m)
  in
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.Ast.fname then
        err "duplicate function %s" f.Ast.fname;
      if List.mem f.Ast.fname builtin_names then
        err "%s shadows a builtin" f.Ast.fname;
      Hashtbl.add funcs f.Ast.fname (f.Ast.ret, f.Ast.params))
    p.Ast.funcs;
  let env = { types; funcs; locals = []; ret = None } in
  let lowered =
    try List.map (fun f -> (f.Ast.fname, func env f)) p.Ast.funcs
    with Types.Error m -> raise (Error m)
  in
  (types, { Ir.funcs = lowered })
