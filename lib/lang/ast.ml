(** Untyped abstract syntax of the NVC mini-language: a C subset
    extended with the paper's pointer qualifiers ([persistentI],
    [persistentX], [persistent]) and NVM builtins. *)

type ptr_class =
  | Normal  (** plain volatile pointer *)
  | Persistent  (** volatile pointer to a persistent location (Section 4.4) *)
  | PersistentI  (** off-holder, intra-region (the paper's [persistentI]) *)
  | PersistentX  (** RIV, cross-region capable (the paper's [persistentX]) *)

type ty =
  | Tint
  | Tstruct of string
  | Tptr of ptr_class * ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or

type unop = Neg | Not

type expr =
  | Int of int
  | Str of string  (** only valid as a root-name builtin argument *)
  | Null
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Deref of expr
  | AddrOf of expr
  | Arrow of expr * string
  | Call of string * expr list
  | New of expr * ty  (** [new(region_id, struct S)] *)
  | NewArray of expr * ty * expr
      (** [new(region_id, T, count)]: a zeroed array of [count]
          elements; the NVSet-style "array elements reached through
          regular strides" *)

type stmt =
  | Decl of ty * string * expr option
  | Assign of expr * expr  (** lvalue = expr *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr
  | Print of expr

type func = {
  fname : string;
  params : (ty * string) list;
  ret : ty option;  (** [None] = void *)
  body : stmt list;
}

type struct_def = { sname : string; fields : (ty * string) list }

type program = { structs : struct_def list; funcs : func list }

let class_name = function
  | Normal -> "normal"
  | Persistent -> "persistent"
  | PersistentI -> "persistentI"
  | PersistentX -> "persistentX"

let rec ty_to_string = function
  | Tint -> "int"
  | Tstruct s -> "struct " ^ s
  | Tptr (Normal, t) -> ty_to_string t ^ "*"
  | Tptr (c, t) -> class_name c ^ " " ^ ty_to_string t ^ "*"
