exception Error of { line : int; msg : string }

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit t = out := (t, !line) :: !out in
  let err msg = raise (Error { line = !line; msg }) in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then err "unterminated block comment"
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        i := !i + 2;
        while !i < n && is_hex src.[!i] do
          incr i
        done;
        emit (Token.INT (int_of_string (String.sub src start (!i - start))))
      end
      else begin
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        emit (Token.INT (int_of_string (String.sub src start (!i - start))))
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match Token.keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (Token.IDENT word)
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else if src.[!i] = '\n' then err "newline in string literal"
        else begin
          Buffer.add_char b src.[!i];
          incr i
        end
      done;
      if not !closed then err "unterminated string literal";
      emit (Token.STRING (Buffer.contents b))
    end
    else begin
      let two tok = emit tok; i := !i + 2 in
      let one tok = emit tok; incr i in
      match (c, peek 1) with
      | '=', Some '=' -> two Token.EQ
      | '!', Some '=' -> two Token.NEQ
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | '&', Some '&' -> two Token.ANDAND
      | '|', Some '|' -> two Token.OROR
      | '-', Some '>' -> two Token.ARROW
      | '=', _ -> one Token.ASSIGN
      | '!', _ -> one Token.BANG
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '&', _ -> one Token.AMP
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | ';', _ -> one Token.SEMI
      | ',', _ -> one Token.COMMA
      | '*', _ -> one Token.STAR
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | '.', _ -> one Token.DOT
      | _ -> err (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit Token.EOF;
  List.rev !out
