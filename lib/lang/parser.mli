(** Recursive-descent parser for the NVC mini-language.

    Grammar sketch:
    {v
    program  := (struct | func)*
    struct   := "struct" IDENT "{" (type IDENT ";")* "}" ";"?
    func     := rettype IDENT "(" params ")" "{" stmt* "}"
    type     := qualifier? base "*"*          (qualifier binds the
                                               outermost pointer)
    stmt     := type IDENT ("=" expr)? ";"
              | expr ("=" expr)? ";"
              | "if" "(" expr ")" block ("else" block)?
              | "while" "(" expr ")" block
              | "return" expr? ";"
              | "print" "(" expr ")" ";"
    expr     := C-like precedence with unary * & - ! and postfix "->"
    v} *)

exception Error of { line : int; msg : string }

val parse : string -> Ast.program
(** @raise Error on a syntax error, with the offending line. *)

val parse_expr_string : string -> Ast.expr
(** Parses a single expression (used by tests). *)
