type field = { fld_name : string; fld_ty : Ast.ty; fld_off : int }

type info = { mutable size : int; fields : field list }

type t = (string, info) Hashtbl.t

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
let slot_size = 8

let rec size_of env = function
  | Ast.Tint -> slot_size
  | Ast.Tptr _ -> slot_size
  | Ast.Tstruct s -> struct_size env s

and struct_size env s =
  match Hashtbl.find_opt env s with
  | None -> err "unknown struct %s" s
  | Some { size = -1; _ } -> err "struct %s is directly recursive" s
  | Some info -> info.size

let build defs =
  let env : t = Hashtbl.create 16 in
  (* First pass: names and field lists with placeholder offsets. *)
  List.iter
    (fun (d : Ast.struct_def) ->
      if Hashtbl.mem env d.Ast.sname then
        err "duplicate struct %s" d.Ast.sname;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (_, f) ->
          if Hashtbl.mem seen f then
            err "duplicate field %s in struct %s" f d.Ast.sname;
          Hashtbl.add seen f ())
        d.Ast.fields;
      Hashtbl.add env d.Ast.sname
        {
          size = -1;
          fields =
            List.map
              (fun (ty, f) -> { fld_name = f; fld_ty = ty; fld_off = -1 })
              d.Ast.fields;
        })
    defs;
  (* Second pass: compute offsets; [size = -1] marks in-progress structs,
     so direct recursion is reported rather than looping. *)
  let visiting = Hashtbl.create 8 in
  let rec resolve name =
    let info =
      match Hashtbl.find_opt env name with
      | Some i -> i
      | None -> err "unknown struct %s" name
    in
    if info.size >= 0 then info
    else if Hashtbl.mem visiting name then
      err "struct %s is recursive (use a pointer)" name
    else begin
      Hashtbl.add visiting name ();
      let off = ref 0 in
      let fields =
        List.map
          (fun f ->
            let sz =
              match f.fld_ty with
              | Ast.Tint | Ast.Tptr _ -> slot_size
              | Ast.Tstruct s ->
                  if s = name then
                    err "struct %s is directly recursive (use a pointer)" name;
                  (resolve s).size
            in
            let this = { f with fld_off = !off } in
            off := !off + sz;
            this)
          info.fields
      in
      let resolved = { size = max slot_size !off; fields } in
      Hashtbl.replace env name resolved;
      Hashtbl.remove visiting name;
      resolved
    end
  in
  List.iter (fun (d : Ast.struct_def) -> ignore (resolve d.Ast.sname)) defs;
  (* Validate pointer fields reference known structs. *)
  let rec check_ty = function
    | Ast.Tint -> ()
    | Ast.Tstruct s | Ast.Tptr (_, Ast.Tstruct s) ->
        if not (Hashtbl.mem env s) then err "unknown struct %s" s
    | Ast.Tptr (_, t) -> check_ty t
  in
  Hashtbl.iter
    (fun _ info -> List.iter (fun f -> check_ty f.fld_ty) info.fields)
    env;
  env

let has_struct env s = Hashtbl.mem env s

let fields env s =
  match Hashtbl.find_opt env s with
  | None -> err "unknown struct %s" s
  | Some i -> i.fields

let field env s f =
  match List.find_opt (fun fl -> fl.fld_name = f) (fields env s) with
  | Some fl -> fl
  | None -> err "struct %s has no field %s" s f

let rec ty_equal a b =
  match (a, b) with
  | Ast.Tint, Ast.Tint -> true
  | Ast.Tstruct x, Ast.Tstruct y -> String.equal x y
  | Ast.Tptr (c1, t1), Ast.Tptr (c2, t2) -> c1 = c2 && ty_equal t1 t2
  | _ -> false

let pointee_equal a b =
  match (a, b) with
  | Ast.Tptr (_, t1), Ast.Tptr (_, t2) -> ty_equal t1 t2
  | _ -> ty_equal a b
