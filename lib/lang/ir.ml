(** Lowered intermediate representation.

    The type checker erases the surface type system into explicit
    conversion points: every pointer held in a local or passed between
    functions is an {e absolute address}; a [SlotLoad]/[SlotStore] with
    a pointer class is the explicit decode/encode the compiler generates
    at each access of a [persistentI]/[persistentX] slot (Figure 8's
    evaluation rules). A [SlotStore] into a [PersistentI] slot performs
    the dynamic same-region check of Section 4.4. *)

type expr =
  | Const of int
  | LocalGet of string
  | LoadInt of expr  (** 8-byte integer load *)
  | SlotLoad of Ast.ptr_class * expr
      (** decode the pointer slot at the address: off-holder add for
          [PersistentI], RIV [x2p] for [PersistentX], plain load
          otherwise *)
  | Bin of Ast.binop * expr * expr
  | Un of Ast.unop * expr
  | Call of string * expr list
  | RegionCreate of expr  (** size -> region id *)
  | RegionOpen of expr  (** region id -> region id *)
  | RegionMigrate of expr * expr
      (** region id, new size -> region id (Section 4.4 migration) *)
  | RootGet of expr * string  (** region id, root name -> address *)
  | New of expr * int  (** region id, byte size -> zeroed allocation *)
  | NewArray of expr * int * expr
      (** region id, element byte size, element count *)

type stmt =
  | Let of string * expr
  | SetLocal of string * expr
  | StoreInt of { addr : expr; value : expr }
  | SlotStore of { cls : Ast.ptr_class; holder : expr; value : expr }
      (** encode an absolute address into the slot; the inverse
          conversions of [SlotLoad] *)
  | RegionClose of expr
  | RootSet of { rid : expr; name : string; value : expr }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | ExprStmt of expr
  | Print of expr

type func = { name : string; params : string list; body : stmt list }

type program = { funcs : (string * func) list }

(* Pretty-printing, used by tests to assert which conversions the
   lowering inserted. *)

let rec pp_expr ppf = function
  | Const n -> Format.fprintf ppf "%d" n
  | LocalGet x -> Format.fprintf ppf "%s" x
  | LoadInt e -> Format.fprintf ppf "load[%a]" pp_expr e
  | SlotLoad (c, e) ->
      Format.fprintf ppf "slotload<%s>[%a]" (Ast.class_name c) pp_expr e
  | Bin (op, a, b) ->
      let s =
        match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
        | Ast.Mod -> "%" | Ast.Eq -> "==" | Ast.Neq -> "!=" | Ast.Lt -> "<"
        | Ast.Gt -> ">" | Ast.Le -> "<=" | Ast.Ge -> ">=" | Ast.And -> "&&"
        | Ast.Or -> "||"
      in
      Format.fprintf ppf "(%a %s %a)" pp_expr a s pp_expr b
  | Un (Ast.Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Un (Ast.Not, e) -> Format.fprintf ppf "(!%a)" pp_expr e
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        args
  | RegionCreate e -> Format.fprintf ppf "region_create(%a)" pp_expr e
  | RegionOpen e -> Format.fprintf ppf "region_open(%a)" pp_expr e
  | RegionMigrate (e, s) ->
      Format.fprintf ppf "region_migrate(%a, %a)" pp_expr e pp_expr s
  | RootGet (e, n) -> Format.fprintf ppf "root_get(%a, %S)" pp_expr e n
  | New (e, sz) -> Format.fprintf ppf "new(%a, %d)" pp_expr e sz
  | NewArray (e, sz, n) ->
      Format.fprintf ppf "new_array(%a, %d, %a)" pp_expr e sz pp_expr n

let rec pp_stmt ppf = function
  | Let (x, e) -> Format.fprintf ppf "let %s = %a" x pp_expr e
  | SetLocal (x, e) -> Format.fprintf ppf "%s = %a" x pp_expr e
  | StoreInt { addr; value } ->
      Format.fprintf ppf "store[%a] = %a" pp_expr addr pp_expr value
  | SlotStore { cls; holder; value } ->
      Format.fprintf ppf "slotstore<%s>[%a] = %a" (Ast.class_name cls)
        pp_expr holder pp_expr value
  | RegionClose e -> Format.fprintf ppf "region_close(%a)" pp_expr e
  | RootSet { rid; name; value } ->
      Format.fprintf ppf "root_set(%a, %S, %a)" pp_expr rid name pp_expr value
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if %a {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c
        pp_block t pp_block e
  | While (c, b) ->
      Format.fprintf ppf "@[<v 2>while %a {%a@]@,}" pp_expr c pp_block b
  | Return None -> Format.fprintf ppf "return"
  | Return (Some e) -> Format.fprintf ppf "return %a" pp_expr e
  | ExprStmt e -> pp_expr ppf e
  | Print e -> Format.fprintf ppf "print(%a)" pp_expr e

and pp_block ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>func %s(%s) {%a@]@,}" f.name
    (String.concat ", " f.params)
    pp_block f.body

let pp ppf p =
  List.iter (fun (_, f) -> Format.fprintf ppf "%a@," pp_func f) p.funcs

let to_string p = Format.asprintf "@[<v>%a@]" pp p
