(** Surface-syntax pretty-printer for NVC programs.

    [program_to_string p] emits source text that parses back to an AST
    equal to [p] (the parse/print round-trip is property-tested), which
    makes it suitable for error reporting and for dumping desugared
    programs ([e[i]] prints as [*(e + i)]). *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
