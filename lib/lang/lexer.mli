(** Hand-written lexer for the NVC mini-language.

    Supports decimal and [0x] hexadecimal integers, [//] line comments
    and [/* */] block comments. *)

exception Error of { line : int; msg : string }

val tokenize : string -> (Token.t * int) list
(** [(token, line)] pairs, ending with [(EOF, _)].
    @raise Error on an unrecognized character or unterminated
    comment/string. *)
