(** IR evaluator: executes a lowered NVC program against a simulated
    machine.

    Pointer-slot accesses use the core representations directly —
    [persistentI] slots decode/encode through {!Core.Off_holder},
    [persistentX] through {!Core.Riv} (so their conversion costs are
    charged to the machine's timing model), and the dynamic same-region
    checks of risky conversions surface as {!Runtime_error}. *)

exception Runtime_error of string

type outcome = {
  result : int option;  (** the entry function's return value *)
  output : string;  (** everything [print] produced, one value per line *)
}

val run :
  Core.Machine.t -> Ir.program -> ?entry:string -> ?args:int list -> unit ->
  outcome
(** Runs [entry] (default ["main"]) with the given integer arguments.
    @raise Runtime_error on null dereference, cross-region violation,
    bad region/root operations, missing entry point, or arity
    mismatch. *)
