let split_n lst n =
  let rec go acc k = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (k - 1) rest
  in
  go [] n lst

let chunks ~jobs lst =
  let n = List.length lst in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then if n = 0 then [] else [ lst ]
  else
    (* First [n mod jobs] chunks get one extra element, so sizes differ by
       at most one and concatenation preserves the original order. *)
    let base = n / jobs and extra = n mod jobs in
    let rec go i rest =
      if i = jobs then []
      else
        let size = base + if i < extra then 1 else 0 in
        let chunk, rest = split_n rest size in
        chunk :: go (i + 1) rest
    in
    go 0 lst

let map ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map (fun f -> f ()) tasks)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match tasks.(i) () with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    (* Deterministic index-ordered merge: errors re-raise in task order
       regardless of which domain hit them first. *)
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end
