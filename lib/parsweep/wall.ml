let now_ns () = Int64.to_int (Monotonic_clock.now ())

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, now_ns () - t0)

let ns_to_ms ns = float_of_int ns /. 1e6
let ns_to_s ns = float_of_int ns /. 1e9
