(** A small Domain pool for embarrassingly parallel sweeps.

    Work items must be independent: each task builds its own machines,
    metrics registries and cursors, and the caller folds the returned
    list — in input order — into shared state on the calling domain.
    That discipline is what makes [--jobs N] byte-identical to the
    serial run (see [docs/PERF.md]). *)

val map : jobs:int -> (unit -> 'a) list -> 'a list
(** [map ~jobs tasks] runs every task and returns their results in
    input order. At most [jobs] domains run concurrently (the calling
    domain participates as a worker; [jobs <= 1] runs everything
    serially in order on the calling domain with no spawns). If any
    task raises, the exception of the {e lowest-indexed} failing task
    is re-raised with its backtrace after all domains have joined. *)

val chunks : jobs:int -> 'a list -> 'a list list
(** [chunks ~jobs lst] splits [lst] into at most [jobs] contiguous
    chunks whose sizes differ by at most one;
    [List.concat (chunks ~jobs lst) = lst]. Empty input yields no
    chunks. *)
