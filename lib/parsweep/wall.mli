(** Monotonic wall-clock measurement for the sweep engine and the
    benchmark harness.

    Simulated cycle counts are deterministic and live in the table
    cells; wall-clock nanoseconds measure the {e simulator} and are
    inherently nondeterministic, so they are kept strictly out of any
    data a regression check or determinism test compares (see
    [docs/PERF.md]). *)

val now_ns : unit -> int
(** Nanoseconds on the OS monotonic clock ([CLOCK_MONOTONIC]). Only
    differences are meaningful. A native [int] holds monotonic
    nanoseconds for ~292 years. *)

val time : (unit -> 'a) -> 'a * int
(** [time f] runs [f] and returns its result with the elapsed
    nanoseconds. *)

val ns_to_ms : int -> float
val ns_to_s : int -> float
