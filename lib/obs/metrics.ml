type t = { cells : (string, int ref) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let counter t name =
  match Hashtbl.find_opt t.cells name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.cells name r;
      r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

(* Pre-resolved counter handles for staged hot paths. A handle is just
   the registry cell, plus a distinguished [unresolved] sentinel so a
   caller can keep a table of lazily resolved handles: start every slot
   at [unresolved], and on first bump replace it with [counter t name].
   The sentinel is compared by physical identity, so resolution happens
   exactly when the counter would first have been registered by
   [incr] — a counter is never registered (and never appears in
   {!snapshot}) before its first increment. *)
module Handle = struct
  type nonrec t = int ref

  let unresolved : t = ref min_int
  let[@inline] resolved c = c != unresolved
  let[@inline] bump (c : t) = Stdlib.incr c
  let[@inline] add (c : t) n = c := !c + n
end

let handle = counter

let get t name =
  match Hashtbl.find_opt t.cells name with Some r -> !r | None -> 0

let reset t = Hashtbl.iter (fun _ r -> r := 0) t.cells

let snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.cells []
  |> List.sort compare

let diff ~before ~after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name (-v)) before;
  List.iter
    (fun (name, v) ->
      let prior = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
      Hashtbl.replace tbl name (prior + v))
    after;
  Hashtbl.fold (fun name v acc -> if v = 0 then acc else (name, v) :: acc) tbl []
  |> List.sort compare

let json_of_counters counters =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) counters)

let to_json t = json_of_counters (snapshot t)

let counters_of_json = function
  | Json.Obj fields ->
      let rec decode acc = function
        | [] -> Ok (List.rev acc)
        | (name, v) :: rest -> (
            match Json.as_int v with
            | Some n -> decode ((name, n) :: acc) rest
            | None -> Error (Printf.sprintf "counter %S is not an integer" name))
      in
      decode [] fields
  | _ -> Error "expected a JSON object of counters"
