(** The simulator's counter registry.

    One {!t} is owned by each simulated machine and threaded through
    every layer that incurs cost: the paged memory ({!mem.loads} style
    raw access counts), the cache/timing model (per-level hits and
    misses, DRAM/NVM traffic, ALU cycles, flushes, fences) and the
    pointer representations (conversions, table lookups, fat-cache
    hits, swizzle passes, cross-region faults).

    Counters are named with dotted paths ([cache.l1.hits],
    [riv.base_table_loads], [repr.fat.loads]); the full catalogue and
    the invariants relating counters to cycle totals live in
    [docs/METRICS.md]. A counter exists from the moment something asks
    for it and reads 0 until first incremented.

    Hot paths (one increment per simulated memory access) resolve their
    counter once with {!counter} and bump the returned [int ref]
    directly; occasional increments can use {!incr}. *)

type t

val create : unit -> t
(** Fresh registry with no counters. *)

val counter : t -> string -> int ref
(** The cell behind [name], registering it at 0 on first use. The same
    name always returns the same cell. *)

val incr : ?by:int -> t -> string -> unit
(** [incr t name] adds [by] (default 1) to the counter. *)

(** {1 Pre-resolved handles (staged hot paths)}

    A handle is the registry cell itself; bumping it is one memory
    increment, with no name lookup. The staged per-representation
    engines keep per-machine tables of handles, initialised to
    {!Handle.unresolved} and resolved on first bump — so a counter is
    registered (and becomes visible in {!snapshot}) at exactly the same
    moment the string-keyed [incr] path would have registered it. *)
module Handle : sig
  type nonrec t = int ref

  val unresolved : t
  (** Distinguished sentinel cell, compared by physical identity: a
      table slot equal ([==]) to [unresolved] has not been resolved yet.
      Never bump the sentinel itself. *)

  val resolved : t -> bool
  (** [resolved c] is [c != unresolved]. *)

  val bump : t -> unit
  val add : t -> int -> unit
end

val handle : t -> string -> Handle.t
(** [handle t name] resolves the handle behind [name] (same cell as
    {!counter}; the alias documents call sites that cache it). *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val reset : t -> unit
(** Zeroes every registered counter (cells stay valid). *)

val snapshot : t -> (string * int) list
(** All registered counters with their current values, sorted by name.
    The list is a value copy: later increments don't affect it. *)

val diff : before:(string * int) list -> after:(string * int) list ->
  (string * int) list
(** Per-counter [after - before], dropping zero deltas; counters absent
    on one side count as 0. Used to attribute counters to a measured
    phase: snapshot, run, snapshot, diff. *)

(** {1 JSON} *)

val to_json : t -> Json.t
(** The {!snapshot} as a JSON object [{"name": value, ...}]. *)

val json_of_counters : (string * int) list -> Json.t

val counters_of_json : Json.t -> ((string * int) list, string) result
(** Inverse of {!json_of_counters}; rejects non-object input and
    non-integer values. *)
