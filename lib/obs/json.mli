(** A minimal, dependency-free JSON tree with an encoder and a strict
    parser — enough for the benchmark snapshots ({!Metrics} counter
    dumps, {!val:to_file}d [BENCH_*.json] baselines) without pulling a
    JSON library into the simulator's dependency cone.

    Numbers are split into [Int] and [Float]: counters stay exact
    OCaml [int]s through a round-trip, while ratios (slowdowns) are
    printed with enough digits to read back equal. Non-finite floats
    encode as [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Encoding} *)

val to_string : ?compact:bool -> t -> string
(** Renders the tree as JSON text. The default is pretty-printed with
    two-space indentation (stable, diff-friendly output for committed
    baselines); [compact] produces a single line. *)

val to_file : string -> t -> unit
(** Writes {!to_string} (pretty, with a trailing newline) to a file. *)

(** {1 Parsing} *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document: rejects trailing input,
    unterminated constructs and malformed escapes. Errors carry a byte
    offset. Numbers with a fraction or exponent parse as [Float],
    anything else as [Int] (falling back to [Float] on overflow). *)

val of_file : string -> (t, string) result

(** {1 Accessors}

    All accessors are total: they return [None] on a type or key
    mismatch, so schema-reading code ({!Suite}-style checkers) can
    validate as it descends. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for other constructors or missing keys. *)

val as_int : t -> int option
(** [Int n] and integral [Float]s. *)

val as_float : t -> float option
(** [Float] and [Int] (widened). *)

val as_string : t -> string option
val as_bool : t -> bool option
val as_list : t -> t list option
val as_obj : t -> (string * t) list option
