type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Encoding --------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that still reads back equal; a trailing ".0"
   keeps integral floats from decoding as [Int]. *)
let float_literal f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(compact = false) v =
  let buf = Buffer.create 256 in
  let indent level = Buffer.add_string buf (String.make (2 * level) ' ') in
  let sep level =
    if compact then ()
    else begin
      Buffer.add_char buf '\n';
      indent level
    end
  in
  let rec write level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            sep (level + 1);
            write (level + 1) item)
          items;
        sep level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            sep (level + 1);
            escape buf k;
            Buffer.add_string buf (if compact then ":" else ": ");
            write (level + 1) item)
          fields;
        sep level;
        Buffer.add_char buf '}'
  in
  write 0 v;
  Buffer.contents buf

let to_file path v =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string v);
      Out_channel.output_char oc '\n')

(* Parsing ---------------------------------------------------------- *)

exception Error_at of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Error_at (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else err (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else err (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then err "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> err "malformed \\u escape"
  in
  let add_utf8 buf cp =
    (* Encodes one Unicode scalar value. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then err "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then err "unterminated escape";
          (match s.[!pos] with
          | '"' -> incr pos; Buffer.add_char buf '"'
          | '\\' -> incr pos; Buffer.add_char buf '\\'
          | '/' -> incr pos; Buffer.add_char buf '/'
          | 'b' -> incr pos; Buffer.add_char buf '\b'
          | 'f' -> incr pos; Buffer.add_char buf '\012'
          | 'n' -> incr pos; Buffer.add_char buf '\n'
          | 'r' -> incr pos; Buffer.add_char buf '\r'
          | 't' -> incr pos; Buffer.add_char buf '\t'
          | 'u' ->
              incr pos;
              let cp = hex4 () in
              let cp =
                (* Surrogate pair: combine if the low half follows. *)
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else err "unpaired surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | c -> err (Printf.sprintf "bad escape '\\%c'" c));
          loop ()
      | c ->
          incr pos;
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      if !pos = d0 then err "expected digit"
    in
    digits ();
    let is_float = ref false in
    if !pos < n && s.[!pos] = '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      is_float := true;
      incr pos;
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
      digits ()
    end;
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec value () =
    skip_ws ();
    if !pos >= n then err "unexpected end of input";
    match s.[!pos] with
    | '{' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            if !pos >= n then err "unterminated object"
            else if s.[!pos] = ',' then begin
              incr pos;
              fields ((k, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((k, v) :: acc)
            end
          in
          Obj (fields [])
    | '[' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            if !pos >= n then err "unterminated array"
            else if s.[!pos] = ',' then begin
              incr pos;
              items (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          List (items [])
    | '"' -> String (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> number ()
    | c -> err (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then err "trailing input";
    v
  with
  | v -> Ok v
  | exception Error_at (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

(* Accessors -------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let as_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let as_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let as_string = function String s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List l -> Some l | _ -> None
let as_obj = function Obj o -> Some o | _ -> None
