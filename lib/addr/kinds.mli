(** Typed address discipline: the paper's Figure 8 static semantics as
    OCaml types.

    The paper's second contribution is a static type system —
    [persistentI]/[persistentX] pointer classes with formal conversion
    rules (Figure 8) — that makes it a compile-time error to confuse the
    different address-like value kinds a position-independence runtime
    juggles. This module lifts that discipline into the simulator's own
    implementation: each of the five kinds is an abstract wrapper around
    [int] ([private int], so unwrapping is the no-op coercion
    [(v :> int)] and every wrapper is guaranteed cost-free at runtime),
    and each Figure 8 conversion is a named function whose signature
    states exactly which kinds it consumes and produces.

    The five kinds:

    - {!Vaddr.t} — an {e absolute virtual address}: the in-flight form
      of every pointer (Figure 8 keeps locals, parameters and returns
      absolute; only memory slots hold encoded forms).
    - {!Off.t} — a {e self-relative off-holder delta}: the stored form
      of a [persistentI] slot, [target - holder] (Section 4.2).
    - {!Riv.t} — a packed {e region-ID-in-value}: the stored form of a
      [persistentX] slot, [{rid | offset}] (Section 4.3, Figure 5).
    - {!Rid.t} — an {e NVRegion ID}: the key of the base table and the
      value of the RID table.
    - {!Seg.t} — an {e NV segment number} ([nvbase]): the [l2]-bit field
      of a data-area address (Figure 6) and the value of the base table.

    {!Nvmpi_addr.Layout} remains the untyped bit-math substrate (the
    "hardware" view, where everything really is a word); this module is
    the type checker sitting on top of it, exactly as the paper's
    compiler sits on top of untyped machine words. Layers above
    [lib/addr] convert through these functions only, so feeding a RIV
    where a virtual address is expected — the bug class Figure 8
    eliminates in user programs — is a compile-time error inside the
    simulator too.

    Blessing a raw [int] into a kind ([Vaddr.v] and friends) is the
    trust boundary. It is legitimate exactly where Figure 8 places a
    decode: at the point a value leaves simulated memory or enters from
    the host (test inputs, literals). *)

(** An absolute virtual address (Figure 8's in-flight pointer form). *)
module Vaddr : sig
  type t = private int

  val v : int -> t
  (** Blesses a raw integer as an absolute virtual address. *)

  val to_int : t -> int

  val null : t
  (** The null pointer (address 0), assignable to every pointer class
      (Figure 8's [null] rule). *)

  val is_null : t -> bool

  val add : t -> int -> t
  (** [add a k] is the address [k] bytes above [a] — Figure 8's pointer
      arithmetic rule: [p + k] keeps the pointer's kind. *)

  val diff : t -> t -> int
  (** [diff a b] is the byte distance [a - b] (pointer subtraction
      yields a plain integer, not an address). *)

  val offset_in : t -> base:t -> int
  (** [offset_in a ~base] is [diff a base], named for the common case of
      computing an intra-region offset from a region base. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_hex : t -> string
end

(** A self-relative off-holder delta (Section 4.2): what a [persistentI]
    slot stores. Meaningless without the holder's address; may be
    negative (a backward link). *)
module Off : sig
  type t = private int

  val v : int -> t
  (** Blesses a raw integer (e.g. just loaded from a slot) as a delta. *)

  val to_int : t -> int

  val null : t
  (** The stored-null encoding: delta 0 (no live pointer can target its
      own slot). *)

  val is_null : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** A packed region-ID-in-value (Section 4.3, Figure 5 (a)): what a
    [persistentX] slot stores — [{rid | offset}] in one word. *)
module Riv : sig
  type t = private int

  val v : int -> t
  (** Blesses a raw integer (e.g. just loaded from a slot) as a packed
      RIV value. *)

  val to_int : t -> int

  val null : t
  (** The null RIV (region ID 0, offset 0). *)

  val is_null : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** An NVRegion ID: index into the base table, value of the RID table. *)
module Rid : sig
  type t = private int

  val v : int -> t
  val to_int : t -> int

  val none : t
  (** ID 0, reserved as "no region". *)

  val is_none : t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

(** An NV segment number — the [nvbase] field of a data-area address
    (Figure 6) and the value stored in a base-table entry. *)
module Seg : sig
  type t = private int

  val v : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** {1 Off-holder conversions (Section 4.2; Figure 8's [persistentI]
    rules)}

    These two are layout-independent: the off-holder encoding needs no
    table and no field widths, which is why it is the cheapest
    position-independent representation. *)

val off_of_vaddr : holder:Vaddr.t -> Vaddr.t -> Off.t
(** [off_of_vaddr ~holder target] is [target - holder] — Figure 8's
    {e encode on store to a [persistentI] slot} ([i = p]): the compiler
    subtracts the holder's address from the absolute target. The
    same-region requirement is a {e dynamic} check (Section 4.4) and is
    enforced by the caller ({!Core.Off_holder.store}), not here. *)

val vaddr_of_off : holder:Vaddr.t -> Off.t -> Vaddr.t
(** [vaddr_of_off ~holder off] is [holder + off] — Figure 8's
    {e decode on load from a [persistentI] slot} ([p = i]): the absolute
    target is rebuilt by adding the holder's own address. *)

(** {1 RIV conversions (Section 4.3; Figure 8's [persistentX] rules)}

    The packed format depends on the layout's field widths, and the
    ID/base translations go through the direct-mapped tables — the table
    {e loads} stay in {!Core.Nvspace} (they cost simulated memory
    accesses); the pure bit transformations live here. *)

val riv_of_rid_off : Layout.t -> rid:Rid.t -> offset:int -> Riv.t
(** [riv_of_rid_off l ~rid ~offset] packs [{rid | offset}] into one
    word (Figure 5 (a)) — the final step of Figure 8's {e encode on
    store to a [persistentX] slot} ([x = p]), after [addr2id] produced
    the region ID. Requires [1 <= rid <= max_rid] and
    [0 <= offset < 2^l3]. *)

val rid_of_riv : Layout.t -> Riv.t -> Rid.t
(** [rid_of_riv l v] extracts the region-ID field of a packed value —
    the first step of Figure 8's {e decode on load from a [persistentX]
    slot} ([p = x]), producing the key for the base-table lookup. *)

val offset_of_riv : Layout.t -> Riv.t -> int
(** [offset_of_riv l v] extracts the intra-segment offset field — the
    companion step of the [persistentX] decode. *)

val vaddr_of_riv : Layout.t -> via:Vaddr.t -> Riv.t -> Vaddr.t
(** [vaddr_of_riv l ~via v] is [via lor offset_of_riv l v] — the final
    step of Figure 8's [persistentX] decode: [via] is the segment base
    address that [id2addr] (the base-table lookup,
    {!Core.Nvspace.id2addr}) returned for the value's region ID. *)

(** {1 Segment-number conversions (Figures 6 and 7)} *)

val seg_of_vaddr : Layout.t -> Vaddr.t -> Seg.t
(** [seg_of_vaddr l a] is the [l2]-bit [nvbase] field of NV-space
    address [a] (Figure 6's address decomposition) — what [addr2id]
    shifts to index the RID table. *)

val vaddr_of_seg : Layout.t -> Seg.t -> Vaddr.t
(** [vaddr_of_seg l s] rebuilds the segment base address from a segment
    number (Figure 7): the form a base-table entry is decoded into
    during [id2addr]. *)

val base_of_vaddr : Layout.t -> Vaddr.t -> Vaddr.t
(** [base_of_vaddr l a] masks the low [l3] bits: the paper's [getBase]
    helper used by Figure 8's [persistentX] encode to find the segment
    containing the target. *)

val seg_offset : Layout.t -> Vaddr.t -> int
(** [seg_offset l a] is the low-[l3]-bit intra-segment offset of [a] —
    the offset half of Figure 8's [persistentX] encode. *)

val vaddr_in_segment : Layout.t -> base:Vaddr.t -> offset:int -> Vaddr.t
(** [vaddr_in_segment l ~base ~offset] is [base lor offset]: rebuilding
    an absolute address from a segment base and an intra-segment offset
    (the closing step shared by [id2addr]-based decodes). *)

(** {1 Direct-mapped table addressing (Figure 7)}

    Entry addresses are pure bit transformations of the key — no
    hashing, no indirection — which is what makes the Figure 8
    [persistentX] conversions cheap. *)

val rid_entry_vaddr : Layout.t -> Vaddr.t -> Vaddr.t
(** [rid_entry_vaddr l a] is the address of the RID-table entry for the
    segment containing [a] (Figure 7): used by [addr2id] during the
    [persistentX] encode. *)

val base_entry_vaddr : Layout.t -> rid:Rid.t -> Vaddr.t
(** [base_entry_vaddr l ~rid] is the address of the base-table entry for
    region [rid] (Figure 7): used by [id2addr] during the [persistentX]
    decode. *)

(** {1 Typed address classification}

    {!Layout}'s predicates on {!Vaddr.t}, so client layers never unwrap
    an address just to classify it. *)

val in_nv_space : Layout.t -> Vaddr.t -> bool
val is_volatile : Layout.t -> Vaddr.t -> bool
val is_data_addr : Layout.t -> Vaddr.t -> bool
val is_rid_table_addr : Layout.t -> Vaddr.t -> bool
val is_base_table_addr : Layout.t -> Vaddr.t -> bool

val nv_start : Layout.t -> Vaddr.t
(** Lowest NV-space address, as a typed address. *)
