type cls = Small | Large

type sub = { l2 : int; l3 : int }

type t = { word_bits : int; l1 : int; l4 : int; small : sub; large : sub }

let rid_entry_bytes t = Bitops.next_pow2 (Bitops.ceil_div t.l4 8)
let base_entry_bytes sub = Bitops.next_pow2 (Bitops.ceil_div sub.l2 8)
let s_r t = Bitops.log2_exact (rid_entry_bytes t)
let s_b sub = Bitops.log2_exact (base_entry_bytes sub)

(* Per-class validity. The base table must not overlap the RID table's
   occupied entries: either it sits entirely above the whole RID table
   (the single-level constraint) or entirely below its occupied half
   (only data-area nvbases — leading flag bit set — have entries). In
   both cases it must also sit below the data area. *)
let check_sub t sub =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if sub.l2 < 3 then err "l2 = %d too small" sub.l2
  else if sub.l3 < 4 then err "l3 = %d too small" sub.l3
  else
    let above = t.l4 + s_b sub >= sub.l2 + s_r t in
    let below = t.l4 + s_b sub + 1 <= sub.l2 - 1 + s_r t in
    if not (above || below) then
      err "base table overlaps RID table (l4=%d l2=%d)" t.l4 sub.l2
    else if t.l4 + s_b sub + 1 > sub.l2 + sub.l3 - 1 then
      err "base table overlaps the data area"
    else Ok ()

let check t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nv_bits = t.word_bits - t.l1 - 1 in
  if t.word_bits < 24 || t.word_bits > 62 then err "bad word_bits"
  else if t.l1 < 1 then err "bad l1"
  else if t.small.l2 + t.small.l3 <> nv_bits then
    err "small class: l2 + l3 = %d, expected %d" (t.small.l2 + t.small.l3)
      nv_bits
  else if t.large.l2 + t.large.l3 <> nv_bits then
    err "large class: l2 + l3 = %d, expected %d" (t.large.l2 + t.large.l3)
      nv_bits
  else if t.large.l3 <= t.small.l3 then
    err "large segments (2^%d) must exceed small segments (2^%d)" t.large.l3
      t.small.l3
  else if 1 + t.l4 + t.large.l3 > t.word_bits then
    err "packed value does not fit: 1 + l4 + large.l3 = %d > %d"
      (1 + t.l4 + t.large.l3)
      t.word_bits
  else
    match check_sub t t.small with
    | Error e -> err "small class: %s" e
    | Ok () -> (
        match check_sub t t.large with
        | Error e -> err "large class: %s" e
        | Ok () -> Ok t)

let v ?(word_bits = 62) ~l1 ~l4 ~small_l3 ~large_l3 () =
  let nv_bits = word_bits - l1 - 1 in
  check
    {
      word_bits;
      l1;
      l4;
      small = { l2 = nv_bits - small_l3; l3 = small_l3 };
      large = { l2 = nv_bits - large_l3; l3 = large_l3 };
    }

let v_exn ?word_bits ~l1 ~l4 ~small_l3 ~large_l3 () =
  match v ?word_bits ~l1 ~l4 ~small_l3 ~large_l3 () with
  | Ok t -> t
  | Error e -> invalid_arg ("Two_level.v_exn: " ^ e)

let default = v_exn ~l1:2 ~l4:26 ~small_l3:28 ~large_l3:34 ()

let pp ppf t =
  Format.fprintf ppf
    "{word=%d; l1=%d; l0=1; l4=%d; small l2/l3=%d/%d; large l2/l3=%d/%d}"
    t.word_bits t.l1 t.l4 t.small.l2 t.small.l3 t.large.l2 t.large.l3

let nv_bits t = t.word_bits - t.l1
let nv_start t = Bitops.mask t.l1 lsl nv_bits t
let cls_bit_pos t = nv_bits t - 1
let in_nv_space t a = a lsr nv_bits t = Bitops.mask t.l1

let class_of t a =
  if (a lsr cls_bit_pos t) land 1 = 1 then Large else Small

let sub_of t = function Small -> t.small | Large -> t.large
let cls_bit t = function Small -> 0 | Large -> 1 lsl cls_bit_pos t
let segment_size t c = 1 lsl (sub_of t c).l3
let usable_segments t c = 1 lsl ((sub_of t c).l2 - 1)
let max_rid t = Bitops.mask t.l4
let data_nvbase_min t c = 1 lsl ((sub_of t c).l2 - 1)

let nvbase t a =
  let sub = sub_of t (class_of t a) in
  Bitops.extract a ~lo:sub.l3 ~len:sub.l2

let seg_offset t a = a land Bitops.mask (sub_of t (class_of t a)).l3
let get_base t a = a land lnot (Bitops.mask (sub_of t (class_of t a)).l3)

let segment_base t c ~nvbase =
  let sub = sub_of t c in
  if nvbase < data_nvbase_min t c || nvbase > Bitops.mask sub.l2 then
    invalid_arg "Two_level.segment_base: nvbase outside the data area";
  nv_start t lor cls_bit t c lor (nvbase lsl sub.l3)

let is_data_addr t a =
  in_nv_space t a && nvbase t a >= data_nvbase_min t (class_of t a)

let sub_offset t a =
  (* offset within the class's half of the NV space *)
  a land Bitops.mask (cls_bit_pos t)

let is_rid_table_addr t a =
  in_nv_space t a
  &&
  let c = class_of t a in
  let sub = sub_of t c in
  let off = sub_offset t a in
  off >= data_nvbase_min t c lsl s_r t && off < 1 lsl (sub.l2 + s_r t)

let is_base_table_addr t a =
  in_nv_space t a
  &&
  let c = class_of t a in
  let sub = sub_of t c in
  let off = sub_offset t a in
  off >= 1 lsl (t.l4 + s_b sub) && off < 1 lsl (t.l4 + s_b sub + 1)

let rid_entry_addr t a =
  let c = class_of t a in
  nv_start t lor cls_bit t c lor (nvbase t a lsl s_r t)

let base_entry_addr t c ~rid =
  let sub = sub_of t c in
  nv_start t lor cls_bit t c
  lor (1 lsl (t.l4 + s_b sub))
  lor (rid lsl s_b sub)

(* Packed values: [class | rid | offset]; the class bit sits at the
   fixed position [l4 + large.l3], above any offset of either class. *)
let value_cls_pos t = t.l4 + t.large.l3

let pack t c ~rid ~offset =
  let sub = sub_of t c in
  if rid < 1 || rid > max_rid t then invalid_arg "Two_level.pack: bad rid";
  if offset < 0 || offset >= 1 lsl sub.l3 then
    invalid_arg "Two_level.pack: bad offset";
  ((match c with Small -> 0 | Large -> 1) lsl value_cls_pos t)
  lor (rid lsl sub.l3) lor offset

let unpack_cls t v =
  if (v lsr value_cls_pos t) land 1 = 1 then Large else Small

let unpack_rid t v =
  let sub = sub_of t (unpack_cls t v) in
  Bitops.extract v ~lo:sub.l3 ~len:t.l4

let unpack_offset t v =
  let sub = sub_of t (unpack_cls t v) in
  v land Bitops.mask sub.l3

let fits t c size = size > 0 && size <= segment_size t c

let class_for_size t size =
  if fits t Small size then Ok Small
  else if fits t Large size then Ok Large
  else
    Error
      (Printf.sprintf
         "size %d exceeds even large segments (%d bytes); the region \
          cannot be migrated"
         size (segment_size t Large))

(* Typed facade (Kinds discipline): the public signature exposes the
   address/ID/packed-value kinds; each wrapper is a zero-cost coercion
   over the bit math above. *)

module K = Kinds

let in_nv_space t (a : K.Vaddr.t) = in_nv_space t (a :> int)
let class_of t (a : K.Vaddr.t) = class_of t (a :> int)
let is_data_addr t (a : K.Vaddr.t) = is_data_addr t (a :> int)
let is_rid_table_addr t (a : K.Vaddr.t) = is_rid_table_addr t (a :> int)
let is_base_table_addr t (a : K.Vaddr.t) = is_base_table_addr t (a :> int)

let segment_base t c ~(nvbase : K.Seg.t) =
  K.Vaddr.v (segment_base t c ~nvbase:(nvbase :> int))

let get_base t (a : K.Vaddr.t) = K.Vaddr.v (get_base t (a :> int))
let nvbase t (a : K.Vaddr.t) = K.Seg.v (nvbase t (a :> int))
let seg_offset t (a : K.Vaddr.t) = seg_offset t (a :> int)
let rid_entry_addr t (a : K.Vaddr.t) = K.Vaddr.v (rid_entry_addr t (a :> int))

let base_entry_addr t c ~(rid : K.Rid.t) =
  K.Vaddr.v (base_entry_addr t c ~rid:(rid :> int))

let pack t c ~(rid : K.Rid.t) ~offset =
  K.Riv.v (pack t c ~rid:(rid :> int) ~offset)

let unpack_cls t (v : K.Riv.t) = unpack_cls t (v :> int)
let unpack_rid t (v : K.Riv.t) = K.Rid.v (unpack_rid t (v :> int))
let unpack_offset t (v : K.Riv.t) = unpack_offset t (v :> int)
