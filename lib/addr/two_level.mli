(** Two-level NVRegions (the extension discussed at the end of
    Section 4.3): one extra address bit (L0) splits the NV space into a
    {e small}-region class and a {e large}-region class, each with its
    own segment size and its own pair of direct-mapped tables, so a
    system can host many small regions and a few very large ones at
    once.

    Address format: [ones(l1) | class(1) | nvbase(l2_c) | offset(l3_c)]
    where the widths after the class bit depend on the class. Packed
    two-level RIV values carry the class bit too:
    [class(1) | rid(l4) | offset(l3_c)].

    This module provides the complete address/table math and its
    validity conditions; {!Nvmpi_addr.Layout} remains the single-level
    layout the rest of the system uses by default. *)

type cls = Small | Large

type sub = { l2 : int; l3 : int }
(** Field widths of one class; [l2 + l3 = word_bits - l1 - 1]. *)

type t = private {
  word_bits : int;
  l1 : int;
  l4 : int;  (** region-ID width, shared by both classes *)
  small : sub;
  large : sub;
}

val v :
  ?word_bits:int -> l1:int -> l4:int -> small_l3:int -> large_l3:int ->
  unit -> (t, string) result
(** Builds and validates a two-level layout; each class must satisfy the
    same non-overlap constraints as a single-level layout, and
    [large_l3 > small_l3]. *)

val v_exn :
  ?word_bits:int -> l1:int -> l4:int -> small_l3:int -> large_l3:int ->
  unit -> t

val default : t
(** 62-bit words, [l1 = 2], 26-bit region IDs; small segments of 256 MiB
    and large segments of 16 GiB. *)

val pp : Format.formatter -> t -> unit

(** {1 Address classification} *)

val in_nv_space : t -> Kinds.Vaddr.t -> bool
val class_of : t -> Kinds.Vaddr.t -> cls
(** Class bit of an NV-space address. *)

val sub_of : t -> cls -> sub
val segment_size : t -> cls -> int
val usable_segments : t -> cls -> int
val max_rid : t -> int

val is_data_addr : t -> Kinds.Vaddr.t -> bool
val is_rid_table_addr : t -> Kinds.Vaddr.t -> bool
val is_base_table_addr : t -> Kinds.Vaddr.t -> bool

(** {1 Segments} *)

val segment_base : t -> cls -> nvbase:Kinds.Seg.t -> Kinds.Vaddr.t
(** Base address of segment [nvbase] in the given class. The [nvbase]
    must have its leading flag bit set (data area). *)

val data_nvbase_min : t -> cls -> int
val get_base : t -> Kinds.Vaddr.t -> Kinds.Vaddr.t
(** Segment base of a data-area address (class-dependent mask). *)

val nvbase : t -> Kinds.Vaddr.t -> Kinds.Seg.t
val seg_offset : t -> Kinds.Vaddr.t -> int

(** {1 Tables}

    Each class owns a RID table and a base table inside its own half of
    the NV space; entry addresses are bit transformations exactly as in
    the single-level design. *)

val rid_entry_addr : t -> Kinds.Vaddr.t -> Kinds.Vaddr.t
(** RID-table entry for the segment containing the given data-area
    address. *)

val base_entry_addr : t -> cls -> rid:Kinds.Rid.t -> Kinds.Vaddr.t

(** {1 Packed values} *)

val pack : t -> cls -> rid:Kinds.Rid.t -> offset:int -> Kinds.Riv.t
val unpack_cls : t -> Kinds.Riv.t -> cls
val unpack_rid : t -> Kinds.Riv.t -> Kinds.Rid.t
val unpack_offset : t -> Kinds.Riv.t -> int

(** {1 Migration support (Section 4.4)}

    "If a tree grows too large to fit into a basic NVRegion, it could be
    migrated to a higher-level larger NVRegion." *)

val fits : t -> cls -> int -> bool
(** Whether a region of the given byte size fits a segment of the
    class. *)

val class_for_size : t -> int -> (cls, string) result
(** Smallest class whose segments hold the given size, or an error if
    even large segments cannot. *)
