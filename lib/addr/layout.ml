type t = {
  word_bits : int;
  l1 : int;
  l2 : int;
  l3 : int;
  l4 : int;
}

let rid_entry_bytes t = Bitops.next_pow2 (Bitops.ceil_div t.l4 8)
let base_entry_bytes t = Bitops.next_pow2 (Bitops.ceil_div t.l2 8)
let s_r t = Bitops.log2_exact (rid_entry_bytes t)
let s_b t = Bitops.log2_exact (base_entry_bytes t)

(* Validity constraints. (3) and (4) are the paper's non-overlap conditions
   restated for our concrete table placement:
   - RID table occupies sub-offsets [0, 2^(l2 + s_r));
   - base table occupies [2^(l4 + s_b), 2^(l4 + s_b + 1));
   - data area starts at sub-offset 2^(l2 + l3 - 1) (leading nvbase flag
     bit set). *)
let check t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.word_bits < 16 || t.word_bits > 62 then
    err "word_bits must be in [16, 62], got %d" t.word_bits
  else if t.l1 < 1 || t.l2 < 3 || t.l3 < 4 || t.l4 < 1 then
    err "field widths too small: l1=%d l2=%d l3=%d l4=%d" t.l1 t.l2 t.l3 t.l4
  else if t.l1 + t.l2 + t.l3 <> t.word_bits then
    err "l1 + l2 + l3 = %d, expected word_bits = %d" (t.l1 + t.l2 + t.l3)
      t.word_bits
  else if t.l4 < t.l2 then err "l4 (%d) must be >= l2 (%d)" t.l4 t.l2
  else if t.l4 + s_b t < t.l2 + s_r t then
    err "base table would overlap the RID table: l4 + s_b = %d < l2 + s_r = %d"
      (t.l4 + s_b t) (t.l2 + s_r t)
  else if t.l4 + s_b t + 1 > t.l2 + t.l3 - 1 then
    err "base table would overlap the data area: l4 + s_b + 1 = %d > %d"
      (t.l4 + s_b t + 1)
      (t.l2 + t.l3 - 1)
  else if t.l4 + t.l3 > t.word_bits then
    err "a RIV value would not fit in a word: l4 + l3 = %d > %d" (t.l4 + t.l3)
      t.word_bits
  else Ok t

let v ?(word_bits = 62) ~l1 ~l2 ~l3 ~l4 () =
  check { word_bits; l1; l2; l3; l4 }

let v_exn ?word_bits ~l1 ~l2 ~l3 ~l4 () =
  match v ?word_bits ~l1 ~l2 ~l3 ~l4 () with
  | Ok t -> t
  | Error msg -> invalid_arg ("Layout.v_exn: " ^ msg)

let default = v_exn ~l1:4 ~l2:26 ~l3:32 ~l4:30 ()
let small = v_exn ~word_bits:30 ~l1:2 ~l2:8 ~l3:20 ~l4:10 ()
let large_segments = v_exn ~l1:2 ~l2:24 ~l3:36 ~l4:26 ()

let pp ppf t =
  Format.fprintf ppf "{word=%d; l1=%d; l2=%d; l3=%d; l4=%d}" t.word_bits t.l1
    t.l2 t.l3 t.l4

let nv_bits t = t.word_bits - t.l1
let nv_start t = Bitops.mask t.l1 lsl nv_bits t
let segment_size t = 1 lsl t.l3
let data_nvbase_min t = 1 lsl (t.l2 - 1)
let usable_segments t = 1 lsl (t.l2 - 1)
let max_rid t = Bitops.mask t.l4

let table_virtual_bytes t =
  ((1 lsl t.l4) * base_entry_bytes t) + ((1 lsl t.l2) * rid_entry_bytes t)

let physical_overhead_bytes t ~regions =
  regions * (rid_entry_bytes t + base_entry_bytes t)

let in_nv_space t a = a lsr nv_bits t = Bitops.mask t.l1
let is_volatile t a = not (in_nv_space t a)
let sub t a = a land Bitops.mask (nv_bits t)
let nvbase t a = Bitops.extract a ~lo:t.l3 ~len:t.l2
let get_base t a = a land lnot ((1 lsl t.l3) - 1)
let seg_offset t a = a land Bitops.mask t.l3
let segment_base_of_nvbase t nb = nv_start t lor (nb lsl t.l3)
let is_data_addr t a = in_nv_space t a && nvbase t a >= data_nvbase_min t

let is_rid_table_addr t a =
  in_nv_space t a
  &&
  let off = sub t a in
  off >= data_nvbase_min t lsl s_r t && off < 1 lsl (t.l2 + s_r t)

let is_base_table_addr t a =
  in_nv_space t a
  &&
  let off = sub t a in
  off >= 1 lsl (t.l4 + s_b t) && off < 1 lsl (t.l4 + s_b t + 1)

let rid_entry_addr t a = nv_start t lor (nvbase t a lsl s_r t)

let base_entry_addr t ~rid =
  nv_start t lor (1 lsl (t.l4 + s_b t)) lor (rid lsl s_b t)

let riv_null = 0

let riv_pack t ~rid ~offset =
  if rid < 1 || rid > max_rid t then invalid_arg "Layout.riv_pack: bad rid";
  if offset < 0 || offset >= segment_size t then
    invalid_arg "Layout.riv_pack: bad offset";
  (rid lsl t.l3) lor offset

let riv_rid t v = v lsr t.l3
let riv_offset t v = v land Bitops.mask t.l3
