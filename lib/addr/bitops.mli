(** Bit-level utilities used by the NV-space layout and the pointer
    representations.

    All functions operate on non-negative OCaml [int] values unless stated
    otherwise. The simulated machine word is narrower than 63 bits, so every
    quantity of interest fits in a native [int]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded towards positive infinity.
    Requires [a >= 0] and [b > 0]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two. *)

val next_pow2 : int -> int
(** [next_pow2 n] is the smallest power of two [>= n]. Requires [n >= 1]. *)

val log2_exact : int -> int
(** [log2_exact n] is [log2 n] for a positive power of two [n].
    @raise Invalid_argument if [n] is not a positive power of two. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [2^k >= n]. Requires [n >= 1]. *)

val mask : int -> int
(** [mask k] is a value with the low [k] bits set ([0 <= k <= 62]). *)

val extract : int -> lo:int -> len:int -> int
(** [extract v ~lo ~len] is the [len]-bit field of [v] starting at bit
    [lo] (bit 0 is least significant). *)

val deposit : int -> lo:int -> len:int -> field:int -> int
(** [deposit v ~lo ~len ~field] overwrites the [len]-bit field of [v] at
    [lo] with the low [len] bits of [field]. *)

val align_up : int -> int -> int
(** [align_up v a] rounds [v] up to the next multiple of [a], where [a]
    is a power of two. *)

val is_aligned : int -> int -> bool
(** [is_aligned v a] is [true] iff [v] is a multiple of the power of two
    [a]. *)

val popcount : int -> int
(** [popcount v] is the number of set bits in [v] (which must be
    non-negative). *)

val pp_hex : Format.formatter -> int -> unit
(** Prints an address-like value as [0x%x]. *)

val to_hex : int -> string
(** [to_hex v] is [v] rendered as a [0x]-prefixed hexadecimal string. *)
