(* Every wrapper is [private int] and every function below is a thin
   alias for the corresponding Layout bit transformation, so the whole
   module erases at runtime: the typed discipline is observable only to
   the type checker (verified by the zero-drift check against
   BENCH_seed.json). *)

module Vaddr = struct
  type t = int

  let v a = a
  let to_int a = a
  let null = 0
  let is_null a = a = 0
  let add a k = a + k
  let diff a b = a - b
  let offset_in a ~base = a - base
  let equal = Int.equal
  let compare = Int.compare
  let pp = Bitops.pp_hex
  let to_hex = Bitops.to_hex
end

module Off = struct
  type t = int

  let v o = o
  let to_int o = o
  let null = 0
  let is_null o = o = 0
  let equal = Int.equal
  let pp ppf o = Format.fprintf ppf "%+d" o
end

module Riv = struct
  type t = int

  let v x = x
  let to_int x = x
  let null = Layout.riv_null
  let is_null x = x = Layout.riv_null
  let equal = Int.equal
  let pp = Bitops.pp_hex
end

module Rid = struct
  type t = int

  let v r = r
  let to_int r = r
  let none = 0
  let is_none r = r = 0
  let equal = Int.equal
  let compare = Int.compare
  let pp ppf r = Format.fprintf ppf "%d" r
end

module Seg = struct
  type t = int

  let v s = s
  let to_int s = s
  let equal = Int.equal
  let pp = Bitops.pp_hex
end

(* Off-holder (Figure 8, persistentI encode/decode). *)

let off_of_vaddr ~holder target = target - holder
let vaddr_of_off ~holder off = holder + off

(* RIV (Figure 8, persistentX encode/decode; Figure 5 packing). *)

let riv_of_rid_off l ~rid ~offset = Layout.riv_pack l ~rid ~offset
let rid_of_riv l v = Layout.riv_rid l v
let offset_of_riv l v = Layout.riv_offset l v
let vaddr_of_riv l ~via v = via lor Layout.riv_offset l v

(* Segment numbers (Figures 6 and 7). *)

let seg_of_vaddr l a = Layout.nvbase l a
let vaddr_of_seg l s = Layout.segment_base_of_nvbase l s
let base_of_vaddr l a = Layout.get_base l a
let seg_offset l a = Layout.seg_offset l a
let vaddr_in_segment _l ~base ~offset = base lor offset

(* Direct-mapped table addressing (Figure 7). *)

let rid_entry_vaddr l a = Layout.rid_entry_addr l a
let base_entry_vaddr l ~rid = Layout.base_entry_addr l ~rid

(* Typed classification. *)

let in_nv_space = Layout.in_nv_space
let is_volatile = Layout.is_volatile
let is_data_addr = Layout.is_data_addr
let is_rid_table_addr = Layout.is_rid_table_addr
let is_base_table_addr = Layout.is_base_table_addr
let nv_start = Layout.nv_start
