(** NV-space layout: the bit-level partitioning of the simulated virtual
    address space described in Section 4.3 (Figures 6 and 7) of the paper.

    The top of the virtual address space — every address whose leading [l1]
    bits are all ones — is reserved as the {e NV space}. The NV space holds
    three areas:

    - the {e data area}: equal-sized NV segments, each hosting at most one
      NVRegion. A data-area address decomposes as
      [ones(l1) | nvbase(l2) | offset(l3)], and the two leading bits of the
      [nvbase] field are the flagging bits ["10"] or ["11"];
    - the {e base table}: a direct-mapped table from region ID to [nvbase],
      flagged by a single bit at position [l4 + log2(base entry size)];
    - the {e RID table}: a direct-mapped table from [nvbase] to region ID,
      occupying the low part of the NV space.

    Entry addresses in both tables are pure bit transformations of the key
    (no hashing, no indirection), which is what makes RIV conversions cheap.

    The paper uses 64-bit words; the simulated machine uses [word_bits]
    (62 by default, so that addresses are non-negative native OCaml ints).
    All constraints from the paper are re-instantiated at that width and
    checked by {!validate}. *)

type t = private {
  word_bits : int;  (** total virtual-address width in bits *)
  l1 : int;  (** leading all-ones bits marking the NV space *)
  l2 : int;  (** bits of the [nvbase] field (segment number) *)
  l3 : int;  (** bits of the byte offset within an NV segment *)
  l4 : int;  (** bits of an NVRegion ID *)
}

val v :
  ?word_bits:int -> l1:int -> l2:int -> l3:int -> l4:int -> unit ->
  (t, string) result
(** [v ~l1 ~l2 ~l3 ~l4 ()] builds and validates a layout.
    [word_bits] defaults to 62. *)

val v_exn :
  ?word_bits:int -> l1:int -> l2:int -> l3:int -> l4:int -> unit -> t
(** Like {!v} but raises [Invalid_argument] on an invalid layout. *)

val default : t
(** [{word_bits = 62; l1 = 4; l2 = 26; l3 = 32; l4 = 30}]: 4 GiB segments,
    2^25 concurrently loadable regions, 2^30 - 1 region IDs. *)

val small : t
(** A reduced layout ([word_bits = 30], 1 MiB segments) used by tests that
    want to exercise boundary conditions exhaustively. *)

val large_segments : t
(** A layout with 64 GiB segments, analogous to the paper's
    [{L1=2; L2=24; L3=38; L4=58}] example rescaled to 62 bits. *)

val pp : Format.formatter -> t -> unit

(** {1 Derived constants} *)

val nv_bits : t -> int
(** Bits of an offset within the NV space ([word_bits - l1]). *)

val nv_start : t -> int
(** Lowest NV-space address (top [l1] bits ones, rest zero). *)

val segment_size : t -> int
(** Bytes per NV segment ([2^l3]). *)

val data_nvbase_min : t -> int
(** Smallest [nvbase] belonging to the data area ([2^(l2-1)], i.e. the
    leading flag bit of the [nvbase] field set). *)

val usable_segments : t -> int
(** Number of NV segments in the data area ([2^(l2-1)]). *)

val max_rid : t -> int
(** Largest valid region ID ([2^l4 - 1]); ID 0 is reserved as "no region". *)

val rid_entry_bytes : t -> int
(** Size of one RID-table entry, rounded to a power of two. *)

val base_entry_bytes : t -> int
(** Size of one base-table entry, rounded to a power of two. *)

val table_virtual_bytes : t -> int
(** Total virtual address space consumed by the two tables
    (paper: [2^L4 * ceil(L2/8) + 2^L2 * ceil(L4/8)], with entry sizes
    rounded to powers of two here). *)

val physical_overhead_bytes : t -> regions:int -> int
(** Physical memory consumed by table entries for [regions] open regions. *)

(** {1 Address classification} *)

val in_nv_space : t -> int -> bool
(** True iff the top [l1] bits of the address are all ones. *)

val is_volatile : t -> int -> bool
(** Negation of {!in_nv_space} (the DRAM part of the address space). *)

val is_data_addr : t -> int -> bool
(** True iff the address lies in the data area of the NV space. *)

val is_rid_table_addr : t -> int -> bool
val is_base_table_addr : t -> int -> bool

(** {1 Field extraction (Figure 5/6)} *)

val nvbase : t -> int -> int
(** [nvbase t a] is the [l2]-bit segment-number field of NV-space address
    [a]. *)

val get_base : t -> int -> int
(** [get_base t a] masks off the low [l3] bits: the base address of the NV
    segment containing [a] (paper's [getBase]). *)

val seg_offset : t -> int -> int
(** [seg_offset t a] is the low-[l3]-bits offset of [a] in its segment. *)

val segment_base_of_nvbase : t -> int -> int
(** Rebuilds a segment base address from an [nvbase] field value. *)

(** {1 Direct-mapped table addressing (Figure 7)} *)

val rid_entry_addr : t -> int -> int
(** [rid_entry_addr t a] is the address of the RID-table entry for the
    segment containing [a]. The same bit transformation applies to the
    segment base and to any address within the segment. *)

val base_entry_addr : t -> rid:int -> int
(** [base_entry_addr t ~rid] is the address of the base-table entry for
    region [rid]. *)

(** {1 RIV value packing (Figure 5)} *)

val riv_null : int
(** The null RIV value (region ID 0, offset 0). *)

val riv_pack : t -> rid:int -> offset:int -> int
(** [riv_pack t ~rid ~offset] packs a region ID and an intra-region offset
    into a single pointer-sized value. Requires [0 <= offset < 2^l3] and
    [1 <= rid <= max_rid t]. *)

val riv_rid : t -> int -> int
(** Region-ID field of a packed RIV value. *)

val riv_offset : t -> int -> int
(** Offset field of a packed RIV value. *)
