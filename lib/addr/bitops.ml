let ceil_div a b =
  if a < 0 || b <= 0 then invalid_arg "Bitops.ceil_div";
  (a + b - 1) / b

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n < 1 then invalid_arg "Bitops.next_pow2";
  let rec go p = if p >= n then p else go (p lsl 1) in
  go 1

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Bitops.log2_exact";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let ceil_log2 n = log2_exact (next_pow2 n)

let mask k =
  if k < 0 || k > 62 then invalid_arg "Bitops.mask";
  (1 lsl k) - 1

let extract v ~lo ~len = (v lsr lo) land mask len

let deposit v ~lo ~len ~field =
  let m = mask len in
  v land lnot (m lsl lo) lor ((field land m) lsl lo)

let align_up v a =
  if not (is_pow2 a) then invalid_arg "Bitops.align_up";
  (v + a - 1) land lnot (a - 1)

let is_aligned v a =
  if not (is_pow2 a) then invalid_arg "Bitops.is_aligned";
  v land (a - 1) = 0

let popcount v =
  if v < 0 then invalid_arg "Bitops.popcount";
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let pp_hex ppf v = Format.fprintf ppf "0x%x" v
let to_hex v = Printf.sprintf "0x%x" v
