module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Freelist = Nvmpi_alloc.Freelist
module Palloc = Nvmpi_palloc.Palloc
module Bitops = Nvmpi_addr.Bitops
module Vaddr = Nvmpi_addr.Kinds.Vaddr

(* Two heap backends share the [heap_lo, heap_hi) window recorded in
   the metadata block: the legacy first-fit freelist and the
   recoverable size-class palloc. Which one a region uses is
   self-describing — palloc heaps start with their superblock magic —
   so the metadata layout (and with it the pinned placement of every
   object in the committed bench baseline) never changed. *)
type heap = Fl of Freelist.t | Pa of Palloc.t

type t = {
  machine : Machine.t;
  region : Region.t;
  meta : Vaddr.t; (* absolute address of the store's metadata block *)
  heap : heap;
}

let wrap_unit = 128
let header_bytes = 32
let read_overhead_cycles = 12
let magic = 0x4F424A53544F5245 land ((1 lsl 62) - 1) (* "OBJSTORE" truncated *)

(* Metadata block layout (offsets from [meta]); all region-relative
   offsets so the store is position independent. *)
let m_magic = 0
let m_log_off = 8
let m_log_cap = 16
let m_log_len = 24
let m_heap_lo = 32
let m_heap_hi = 40
let m_alive = 48
let meta_bytes = 56

let root_name = "__objstore"

let machine t = t.machine
let region t = t.region
let mem t = t.machine.Machine.mem

let meta_get t field = Memsim.load64 (mem t) (Vaddr.add t.meta field)
let meta_set t field v = Memsim.store64 (mem t) (Vaddr.add t.meta field) v

let create machine region ?(log_cap = 256 * 1024) ?(heap = `Palloc) () =
  let mem = machine.Machine.mem in
  let meta = Region.alloc region meta_bytes in
  let log = Region.alloc region log_cap in
  (* Everything left in the region becomes the object heap. *)
  let base = (Region.base region :> int) in
  let heap_lo = base + Region.heap_top region in
  let heap_lo = Bitops.align_up heap_lo 8 in
  let heap_hi = base + Region.size region in
  let heap_hi = heap_hi land lnot 7 in
  Region.set_heap_top region (heap_hi - base);
  let heap =
    match heap with
    | `Freelist ->
        Fl (Freelist.init mem ~lo:(Vaddr.v heap_lo) ~hi:(Vaddr.v heap_hi))
    | `Palloc ->
        Pa
          (Palloc.init ~mem ~timing:machine.Machine.timing
             ~metrics:(Machine.metrics machine) ~lo:(Vaddr.v heap_lo)
             ~hi:(Vaddr.v heap_hi))
  in
  let t = { machine; region; meta; heap } in
  Memsim.store64 mem (Vaddr.add meta m_magic) magic;
  meta_set t m_log_off (Vaddr.offset_in log ~base:(Region.base region));
  meta_set t m_log_cap log_cap;
  meta_set t m_log_len 0;
  meta_set t m_heap_lo (heap_lo - base);
  meta_set t m_heap_hi (heap_hi - base);
  meta_set t m_alive 0;
  Region.set_root region root_name meta;
  t

(* The log is addressed region-relative in its persisted form; these
   helpers rebuild absolute addresses from the region base. *)
let log_base t = Vaddr.add (Region.base t.region) (meta_get t m_log_off)

let log_entries_of t =
  (* Count entries by walking the log. *)
  let log = log_base t in
  let len = meta_get t m_log_len in
  let rec go pos n =
    if pos >= len then n
    else
      let elen = Memsim.load64 (mem t) (Vaddr.add log (pos + 8)) in
      go (pos + 16 + Bitops.align_up elen 8) (n + 1)
  in
  go 0 0

let log_entries t = log_entries_of t

let log_reset t =
  meta_set t m_log_len 0;
  Timing.flush t.machine.Machine.timing ~addr:((t.meta :> int) + m_log_len);
  Timing.fence t.machine.Machine.timing

let log_rollback t =
  let base = Region.base t.region in
  let log = log_base t in
  let len = meta_get t m_log_len in
  (* Collect entry positions, then restore newest-first. *)
  let rec collect pos acc =
    if pos >= len then acc
    else
      let elen = Memsim.load64 (mem t) (Vaddr.add log (pos + 8)) in
      collect (pos + 16 + Bitops.align_up elen 8) ((pos, elen) :: acc)
  in
  List.iter
    (fun (pos, elen) ->
      let off = Memsim.load64 (mem t) (Vaddr.add log pos) in
      let data =
        Memsim.blit_to_bytes (mem t) ~addr:(Vaddr.add log (pos + 16)) ~len:elen
      in
      Memsim.blit_from_bytes (mem t) ~addr:(Vaddr.add base off) data)
    (collect 0 []);
  log_reset t

let attach machine region =
  match Region.root region root_name with
  | None -> failwith "Objstore.attach: region holds no object store"
  | Some meta ->
      let mem = machine.Machine.mem in
      if Memsim.load64 mem (Vaddr.add meta m_magic) <> magic then
        failwith "Objstore.attach: bad object-store magic";
      let base = Region.base region in
      let heap_lo = Vaddr.add base (Memsim.load64 mem (Vaddr.add meta m_heap_lo)) in
      let heap_hi = Vaddr.add base (Memsim.load64 mem (Vaddr.add meta m_heap_hi)) in
      (* The heap window self-describes its backend. Palloc heaps go
         through [recover] — a no-op resolve plus list rebuild on a
         clean image, and the only correct entry after a crash. *)
      let heap =
        if Palloc.is_formatted mem ~lo:heap_lo then
          Pa
            (Palloc.recover ~mem ~timing:machine.Machine.timing
               ~metrics:(Machine.metrics machine) ~lo:heap_lo ~hi:heap_hi)
        else Fl (Freelist.attach mem ~lo:heap_lo ~hi:heap_hi)
      in
      let t = { machine; region; meta; heap } in
      (* A non-empty persisted log means a transaction was interrupted:
         roll it back before anyone reads torn data. *)
      if meta_get t m_log_len > 0 then log_rollback t;
      t

let log_append t ~addr ~len =
  let log = log_base t in
  let pos = meta_get t m_log_len in
  let entry_len = 16 + Bitops.align_up len 8 in
  if pos + entry_len > meta_get t m_log_cap then
    failwith "Objstore.log_append: undo log full";
  Memsim.store64 (mem t) (Vaddr.add log pos)
    (Vaddr.offset_in addr ~base:(Region.base t.region));
  Memsim.store64 (mem t) (Vaddr.add log (pos + 8)) len;
  let data = Memsim.blit_to_bytes (mem t) ~addr ~len in
  Memsim.blit_from_bytes (mem t) ~addr:(Vaddr.add log (pos + 16)) data;
  (* Persist the entry before the in-place store may happen. *)
  let timing = t.machine.Machine.timing in
  let line = 1 lsl (Timing.cfg timing).Nvmpi_cachesim.Timing_config.line_bits in
  let first = ((log :> int) + pos) land lnot (line - 1) in
  let last = ((log :> int) + pos + entry_len - 1) land lnot (line - 1) in
  let a = ref first in
  while !a <= last do
    Timing.flush timing ~addr:!a;
    a := !a + line
  done;
  Timing.fence timing;
  meta_set t m_log_len (pos + entry_len);
  Timing.flush timing ~addr:((t.meta :> int) + m_log_len);
  Timing.fence timing

(* Objects: [header | payload], allocated from the freelist in
   multiples of [wrap_unit]. Header: tag, payload size, version, flags. *)

let heap_kind t = match t.heap with Fl _ -> `Freelist | Pa _ -> `Palloc

let heap_alloc t n =
  match t.heap with Fl h -> Freelist.alloc h n | Pa h -> Palloc.alloc h n

let heap_free t addr =
  match t.heap with Fl h -> Freelist.free h addr | Pa h -> Palloc.free h addr

let heap_block_count t =
  match t.heap with
  | Fl h -> Freelist.block_count h
  | Pa h -> Palloc.block_count h

let heap_check t =
  match t.heap with Fl h -> Freelist.check h | Pa h -> Palloc.check h

let alloc t ?(tag = 0) ~size () =
  if size <= 0 then invalid_arg "Objstore.alloc: non-positive size";
  let total = Bitops.align_up (header_bytes + size) wrap_unit in
  let block = heap_alloc t total in
  Memsim.store64 (mem t) block tag;
  Memsim.store64 (mem t) (Vaddr.add block 8) size;
  Memsim.store64 (mem t) (Vaddr.add block 16) 1;
  Memsim.store64 (mem t) (Vaddr.add block 24) 0;
  meta_set t m_alive (meta_get t m_alive + 1);
  Vaddr.add block header_bytes

let free t payload =
  heap_free t (Vaddr.add payload (-header_bytes));
  meta_set t m_alive (meta_get t m_alive - 1)

let obj_tag t payload = Memsim.load64 (mem t) (Vaddr.add payload (-header_bytes))

let obj_size t payload =
  Memsim.load64 (mem t) (Vaddr.add payload (-header_bytes + 8))

let touch_read t = Machine.alu t.machine read_overhead_cycles
let objects_alive t = meta_get t m_alive
