(** Undo-log transactions over an {!Objstore}, in the style of
    PMEM.IO's [TX_BEGIN]/[TX_ADD]/[TX_END].

    The first store to each 8-byte word inside a transaction snapshots
    the old contents into the region's persisted undo log (data copy +
    cache-line flush + persist fence, charged to the timing model), so
    that an interrupted transaction can be rolled back on recovery.

    Typical use:
    {[
      let tx = Tx.create os in
      Tx.run tx (fun () ->
          Tx.store64 tx a 1;
          Tx.store64 tx b 2)
    ]}

    A crash is simulated with {!simulate_crash}, which models a full
    cache-loss power failure; the next {!Objstore.attach} rolls the
    persisted log back. *)

type t

exception Not_in_transaction
exception Already_in_transaction

val create : Objstore.t -> t
val objstore : t -> Objstore.t

val active : t -> bool

val begin_tx : t -> unit
val commit : t -> unit
(** Flushes every line dirtied by the transaction, fences, and truncates
    the undo log. *)

val abort : t -> unit
(** Rolls the undo log back (restoring all pre-transaction contents) and
    truncates it. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] wraps [f] in begin/commit; any exception aborts and is
    re-raised. *)

val store64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
(** Transactional store: undo-logs the word on first touch, then writes.
    Outside a transaction it behaves as a plain store. *)

val load64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Plain load (reads need no logging), charged with the object-store
    read-accessor overhead. *)

val add_range : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> unit
(** Pre-logs an arbitrary byte range (PMEM.IO's [TX_ADD]); subsequent
    plain stores to it are then crash-safe within this transaction. *)

val add_fresh : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> unit
(** Registers a {e freshly allocated} byte range with the transaction:
    no undo record is written (there is no old data to restore — on
    rollback the allocation is simply garbage), but every covered cache
    line is flushed by {!commit}, so objects built with plain stores are
    durable exactly when the pointers committed to them are. Raises
    {!Not_in_transaction} outside a transaction and [Invalid_argument]
    on an empty range. *)

val simulate_crash : t -> unit
(** Models a full cache-loss power failure in the middle of the
    transaction: no commit, no rollback, host transaction state cleared.
    When a fault-injection tracker is attached to the machine
    ([Core.Machine.crash_hook]), live memory is reverted to its durable
    bytes — exactly the contents an [Nvmpi_faultsim] crash image would
    hold — and the caches are cold-started; without a tracker memory is
    conservatively left as-is (every dirty line "reached" NVM). The
    persisted undo log keeps its records either way; recovery happens at
    the next {!Objstore.attach}. *)
