(** Undo-log transactions over an {!Objstore}, in the style of
    PMEM.IO's [TX_BEGIN]/[TX_ADD]/[TX_END].

    The first store to each 8-byte word inside a transaction snapshots
    the old contents into the region's persisted undo log (data copy +
    cache-line flush + persist fence, charged to the timing model), so
    that an interrupted transaction can be rolled back on recovery.

    Typical use:
    {[
      let tx = Tx.create os in
      Tx.run tx (fun () ->
          Tx.store64 tx a 1;
          Tx.store64 tx b 2)
    ]}

    A crash is simulated by dropping the host-side transaction state
    without committing ({!simulate_crash}); the next {!Objstore.attach}
    rolls the persisted log back. *)

type t

exception Not_in_transaction
exception Already_in_transaction

val create : Objstore.t -> t
val objstore : t -> Objstore.t

val active : t -> bool

val begin_tx : t -> unit
val commit : t -> unit
(** Flushes every line dirtied by the transaction, fences, and truncates
    the undo log. *)

val abort : t -> unit
(** Rolls the undo log back (restoring all pre-transaction contents) and
    truncates it. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] wraps [f] in begin/commit; any exception aborts and is
    re-raised. *)

val store64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int -> unit
(** Transactional store: undo-logs the word on first touch, then writes.
    Outside a transaction it behaves as a plain store. *)

val load64 : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Plain load (reads need no logging), charged with the object-store
    read-accessor overhead. *)

val add_range : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> unit
(** Pre-logs an arbitrary byte range (PMEM.IO's [TX_ADD]); subsequent
    plain stores to it are then crash-safe within this transaction. *)

val simulate_crash : t -> unit
(** Drops the in-flight transaction as a power failure would: no commit,
    no rollback, host state cleared. The persisted undo log keeps its
    records; recovery happens at the next {!Objstore.attach}. *)
