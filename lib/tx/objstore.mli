(** A PMEM.IO-like transactional object store over one NVRegion.

    Mirrors the setup of the paper's "transactional" experiments
    (Section 6.3): every data item is wrapped with metadata — type tag,
    size, version, flags — and the wrapped allocation is rounded to
    {!wrap_unit} (128 bytes, the item size the paper reports). Reads go
    through an accessor that charges the library's bookkeeping overhead;
    writes inside a transaction are undo-logged by {!Tx}.

    The store formats the region's free space with the position-
    independent {!Nvmpi_alloc.Freelist}, reserves an undo-log buffer, and
    anchors its metadata at the ["__objstore"] NVRoot — so a store can be
    re-{!attach}ed after the region is remapped in a later run. *)

type t

val wrap_unit : int
(** Wrapped objects are multiples of this size (128 bytes). *)

val header_bytes : int
(** Per-object metadata preceding the payload (32 bytes). *)

val read_overhead_cycles : int
(** ALU cycles charged per {!touch_read} (library accessor cost). *)

val create : Core.Machine.t -> Nvmpi_nvregion.Region.t -> ?log_cap:int ->
  ?heap:[ `Palloc | `Freelist ] -> unit -> t
(** Formats the region's remaining free space as an object heap with a
    [log_cap]-byte undo-log buffer (default 256 KiB). The region must be
    freshly created (or at least have enough free space). [heap] picks
    the allocator backend: the recoverable size-class
    {!Nvmpi_palloc.Palloc} (default) or the legacy first-fit
    {!Nvmpi_alloc.Freelist} (used by the bench runner to keep the
    committed cycle baseline's object placement). *)

val attach : Core.Machine.t -> Nvmpi_nvregion.Region.t -> t
(** Re-attaches to a formatted region (after a remap or in a new run).
    The heap backend is self-describing (palloc heaps start with their
    superblock magic); palloc heaps are re-opened through
    {!Nvmpi_palloc.Palloc.recover}, so attaching a post-crash image
    yields a consistent heap. If the persisted undo log is non-empty —
    a crash interrupted a transaction — it is rolled back after the
    heap recovery.
    @raise Failure if the region holds no object store. *)

val heap_kind : t -> [ `Palloc | `Freelist ]

val heap_block_count : t -> int * int
(** [(allocated, free)] wrapped-block counts straight from the heap
    backend — the leak oracle behind the kvstore overwrite-storm test. *)

val heap_check : t -> unit
(** Runs the backend's full invariant check.
    @raise Nvmpi_palloc.Palloc.Corrupted (or
    [Nvmpi_alloc.Freelist.Corrupted]) on violation. *)

val machine : t -> Core.Machine.t
val region : t -> Nvmpi_nvregion.Region.t

val alloc : t -> ?tag:int -> size:int -> unit -> Nvmpi_addr.Kinds.Vaddr.t
(** Allocates a wrapped object with a [size]-byte payload and returns
    the {e payload} address. *)

val free : t -> Nvmpi_addr.Kinds.Vaddr.t -> unit
(** Frees an object by payload address. *)

val obj_tag : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
val obj_size : t -> Nvmpi_addr.Kinds.Vaddr.t -> int
(** Metadata of the object owning the given payload address. *)

val touch_read : t -> unit
(** Charges the per-access read-accessor overhead. *)

val objects_alive : t -> int

(** {1 Undo log plumbing (used by {!Tx})} *)

val log_append : t -> addr:Nvmpi_addr.Kinds.Vaddr.t -> len:int -> unit
(** Persists an undo record of [len] bytes at [addr] (current contents)
    into the log: data copy, log-head update, flush, fence. *)

val log_entries : t -> int
val log_rollback : t -> unit
(** Applies all undo records newest-first, then truncates the log. *)

val log_reset : t -> unit
(** Truncates the log (transaction committed). *)
