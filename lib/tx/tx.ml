module Machine = Core.Machine
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Vaddr = Nvmpi_addr.Kinds.Vaddr

type t = {
  os : Objstore.t;
  mutable active : bool;
  logged : (int, unit) Hashtbl.t; (* word addresses undo-logged this tx *)
  dirty : (int, unit) Hashtbl.t; (* line addresses dirtied this tx *)
}

exception Not_in_transaction
exception Already_in_transaction

let create os =
  { os; active = false; logged = Hashtbl.create 64; dirty = Hashtbl.create 64 }

let objstore t = t.os
let active t = t.active
let mem t = (Objstore.machine t.os).Machine.mem
let timing t = (Objstore.machine t.os).Machine.timing

let line_of t a =
  let bits = (Timing.cfg (timing t)).Nvmpi_cachesim.Timing_config.line_bits in
  a land lnot ((1 lsl bits) - 1)

let begin_tx t =
  if t.active then raise Already_in_transaction;
  t.active <- true;
  Hashtbl.reset t.logged;
  Hashtbl.reset t.dirty

let commit t =
  if not t.active then raise Not_in_transaction;
  Hashtbl.iter (fun line () -> Timing.flush (timing t) ~addr:line) t.dirty;
  Timing.fence (timing t);
  Objstore.log_reset t.os;
  t.active <- false;
  Hashtbl.reset t.logged;
  Hashtbl.reset t.dirty

let abort t =
  if not t.active then raise Not_in_transaction;
  Objstore.log_rollback t.os;
  t.active <- false;
  Hashtbl.reset t.logged;
  Hashtbl.reset t.dirty

let simulate_crash t =
  if not t.active then raise Not_in_transaction;
  t.active <- false;
  Hashtbl.reset t.logged;
  Hashtbl.reset t.dirty;
  (* With a faultsim tracker attached, materialize the full-cache-loss
     crash: live memory reverts to its durable (flushed-and-fenced)
     bytes. Without one there is no durability record, so memory is
     conservatively left as-is — every dirty line "happened" to reach
     NVM, the worst torn state the undo log must recover from. *)
  match (Objstore.machine t.os).Machine.crash_hook with
  | Some materialize -> materialize ()
  | None -> ()

let run t f =
  begin_tx t;
  match f () with
  | v ->
      commit t;
      v
  | exception e ->
      abort t;
      raise e

let add_range t ~addr:(addr : Vaddr.t) ~len =
  if not t.active then raise Not_in_transaction;
  Objstore.log_append t.os ~addr ~len;
  let addr = (addr :> int) in
  let rec mark a =
    if a < addr + len then begin
      Hashtbl.replace t.logged (a land lnot 7) ();
      mark (a + 8)
    end
  in
  mark (addr land lnot 7);
  Hashtbl.replace t.dirty (line_of t addr) ();
  Hashtbl.replace t.dirty (line_of t (addr + len - 1)) ()

(* Freshly allocated ranges hold no old data worth undo-logging, but
   their bytes still have to reach NVM when the transaction commits —
   otherwise a crash after commit leaves durable pointers into
   never-persisted objects. Marking the words as logged suppresses
   per-store log records; marking every covered line dirty makes
   [commit] flush them. *)
let add_fresh t ~addr:(addr : Vaddr.t) ~len =
  if not t.active then raise Not_in_transaction;
  if len <= 0 then invalid_arg "Tx.add_fresh";
  let addr = (addr :> int) in
  let rec mark a =
    if a < addr + len then begin
      Hashtbl.replace t.logged (a land lnot 7) ();
      mark (a + 8)
    end
  in
  mark (addr land lnot 7);
  let line = line_of t addr in
  let last = line_of t (addr + len - 1) in
  let step = 1 lsl (Timing.cfg (timing t)).Nvmpi_cachesim.Timing_config.line_bits in
  let rec cover l =
    if l <= last then begin
      Hashtbl.replace t.dirty l ();
      cover (l + step)
    end
  in
  cover line

let store64 t (a : Vaddr.t) v =
  if t.active then begin
    if not (Hashtbl.mem t.logged (a :> int)) then begin
      Objstore.log_append t.os ~addr:a ~len:8;
      Hashtbl.replace t.logged (a :> int) ()
    end;
    Hashtbl.replace t.dirty (line_of t (a :> int)) ()
  end;
  Memsim.store64 (mem t) a v

let load64 t (a : Vaddr.t) =
  Objstore.touch_read t.os;
  Memsim.load64 (mem t) a
