(** Failure-atomic snapshot durability (FAMS/WAL, docs/SNAPSHOT.md).

    The second durability discipline alongside undo-log
    {!Nvmpi_tx.Tx}: mutations between {!sync} calls run completely
    un-instrumented — plain stores, no per-op flush or fence — while a
    {!Nvmpi_memsim.Memsim} observer records which cache lines {e and}
    which pages of the watched region were touched. {!sync} then makes
    the whole epoch durable in one failure-atomic step: it appends an
    [(offset, payload)] record per dirty unit to a persistent
    write-ahead log carved from the region, fences a commit record,
    writes the dirty lines back in place, and truncates the log.
    {!attach} replays any committed-but-untruncated log idempotently,
    so every crash point recovers to exactly the last synced epoch.

    The tracked granularity selects what gets logged and written back:
    [Line] (64 B units) or [Page] (4 KiB units) — the FAMS
    write-amplification trade-off the [snapshot] experiment measures.
    Both dirty sets are always maintained, so the [snap.dirty_lines] /
    [snap.dirty_pages] counters expose the amplification ratio
    regardless of the granularity in force.

    Region offsets in the dirty set and the log are region-relative,
    so an epoch (and its recovery log) survives a region remap —
    {!retarget} just swaps the watched base.

    Observers cannot be detached from a memory, so create at most a
    handful of snapshots per machine ({!disable} makes one inert). *)

type granularity = Line | Page

val granularity_to_string : granularity -> string
val granularity_of_string : string -> granularity option

(** {1 Process-wide mode}

    Mirrors [Engine.set_default_mode] / [Durable.set_default_mode]:
    the front-ends' [--durability snapshot]/[snapshot-page] flag sets
    this before any domain spawns. [Some g] switches the default
    kvstore write path to [`Plain] and the object-store heap choice to
    the flush-free freelist (docs/SNAPSHOT.md). *)

val set_default : granularity option -> unit
val default : unit -> granularity option

val enabled : unit -> bool
(** [enabled ()] is [true] iff the process default is [Some _]. *)

(** {1 Snapshots} *)

type t

val create :
  Core.Machine.t ->
  Nvmpi_nvregion.Region.t ->
  ?granularity:granularity ->
  ?log_cap:int ->
  unit ->
  t
(** Carves the snapshot metadata page and a write-ahead log of
    [log_cap] bytes (default 64 KiB, rounded up to whole pages) out of
    the region, anchors them at the ["__snapshot"] root, and starts
    dirty tracking. [granularity] defaults to the process default's
    granularity, or [Line]. *)

val attach : Core.Machine.t -> Nvmpi_nvregion.Region.t -> t
(** Re-opens a snapshot (possibly after a crash or remap): reads the
    persisted granularity and log geometry, {e replays any committed
    log} ({!replay}), and resumes tracking with an empty dirty set.
    @raise Failure if the root is missing or the magic is wrong. *)

val retarget : t -> Nvmpi_nvregion.Region.t -> unit
(** Points the tracker at the region's new mapping after a
    [remap_region]/[migrate_region]. The (region-relative) dirty set
    is preserved — the epoch continues across the move. *)

val granularity : t -> granularity
val region : t -> Nvmpi_nvregion.Region.t

val dirty_lines : t -> int
val dirty_pages : t -> int
(** Distinct lines / pages dirtied in the current epoch. *)

val pending_log_bytes : t -> int
(** Log bytes the current dirty set will need at the next {!sync}
    (records at the tracked granularity, headers included) — compare
    against {!log_capacity} to sync before the log can overflow. *)

val log_capacity : t -> int
val committed_bytes : t -> int
(** Committed-but-untruncated log length (non-zero only between a
    crash and {!replay}, or after [sync ~stop_after:`Commit]). *)

val sync : ?stop_after:[ `Commit ] -> t -> unit
(** Makes the current epoch failure-atomically durable:

    + append one [(offset, len, payload)] record per dirty unit (in
      ascending offset order), flush the log lines, fence;
    + write the commit record (the total log length), flush, fence —
      the commit point;
    + flush every dirty unit's lines in place, fence;
    + truncate (zero the commit record), flush, fence.

    A crash before step 2's fence recovers the previous epoch (the
    uncommitted log is ignored); after it, {!replay} reinstalls this
    epoch from the log, idempotently, however often it is cut short.
    [~stop_after:`Commit] returns right after step 2 with the log
    still committed — the fault-injection scenario uses it to drive
    {!replay} as a tracked workload and crash mid-replay.
    An epoch with an empty dirty set is a no-op.
    @raise Failure if the dirty set does not fit the log. *)

val replay : t -> unit
(** Replays a committed log — copies every record's payload back in
    place, flushes, fences, then truncates. Idempotent; a no-op when
    nothing is committed. @raise Failure on a corrupt log. *)

val disable : t -> unit
(** Stops tracking permanently (the observer stays registered but
    inert). *)

val drop_writeback : bool ref
(** Fault-injection double (scenario [selftest-snapshot-nowb]): when
    set, {!sync} skips step 3 entirely — the epoch's data lines are
    never flushed, yet step 4 still durably truncates the commit
    record, violating the protocol's ordering discipline. The epoch is
    silently lost on the next crash and the faultsim snapshot oracle
    MUST flag it. Only toggled around a scenario workload. *)
