(* Failure-atomic snapshot durability (FAMS/WAL): see snapshot.mli and
   docs/SNAPSHOT.md for the protocol. The log record format and the
   clwb+fence choreography mirror lib/tx's undo log and lib/palloc's
   operation log: every record is [offset(8) | len(8) | payload], all
   offsets region-relative so the persisted state is position
   independent. *)

module Machine = Core.Machine
module Region = Nvmpi_nvregion.Region
module Memsim = Nvmpi_memsim.Memsim
module Timing = Nvmpi_cachesim.Timing
module Metrics = Nvmpi_obs.Metrics
module Vaddr = Nvmpi_addr.Kinds.Vaddr
module Bitops = Nvmpi_addr.Bitops

type granularity = Line | Page

let granularity_to_string = function Line -> "line" | Page -> "page"

let granularity_of_string = function
  | "line" -> Some Line
  | "page" -> Some Page
  | _ -> None

(* Process-wide default, set from the front-ends' [--durability
   snapshot]/[snapshot-page] flag before domains spawn — mirrors
   [Engine.set_default_mode]. *)
let default_granularity : granularity option ref = ref None
let set_default g = default_granularity := g
let default () = !default_granularity
let enabled () = !default_granularity <> None

(* Fault-injection double: drop the in-place write-back (step 3) while
   still truncating the commit record (step 4). See snapshot.mli. *)
let drop_writeback = ref false

let magic = 0x534E415053484F54 land ((1 lsl 62) - 1) (* "SNAPSHOT" truncated *)
let root_name = "__snapshot"

(* Metadata word layout (offsets from the meta page). The meta page and
   the log are whole, page-aligned pages so no protocol line or page is
   ever shared with tracked data — flushing the log must never stage a
   neighbouring data byte mid-epoch (that would leak part of an epoch
   past the commit point). *)
let m_magic = 0
let m_gran = 8
let m_log_off = 16
let m_log_cap = 24
let m_commit = 32

type t = {
  machine : Machine.t;
  mutable region : Region.t;
  mutable base : int; (* current absolute base of the watched region *)
  size : int;
  meta_off : int; (* region-relative; the meta page *)
  log_off : int;
  log_cap : int;
  gran : granularity;
  line : int;
  line_bits : int;
  page : int;
  page_bits : int;
  (* Dirty units of the current epoch, keyed by region-relative unit
     index. Both granularities are always tracked (the counters expose
     the amplification ratio); [gran] only selects what sync logs. *)
  lines : (int, unit) Hashtbl.t;
  pages : (int, unit) Hashtbl.t;
  mutable pending : int; (* log bytes the dirty set needs at [gran] *)
  mutable tracking : bool; (* false inside protocol code *)
  mutable dead : bool; (* [disable]d: the observer stays inert *)
  c_syncs : int ref;
  c_dirty_lines : int ref;
  c_dirty_pages : int ref;
  c_log_records : int ref;
  c_log_bytes : int ref;
  c_commits : int ref;
  c_wb_flushes : int ref;
  c_truncates : int ref;
  c_replays : int ref;
  c_replayed_bytes : int ref;
}

let granularity t = t.gran
let region t = t.region
let dirty_lines t = Hashtbl.length t.lines
let dirty_pages t = Hashtbl.length t.pages
let pending_log_bytes t = t.pending
let log_capacity t = t.log_cap
let mem t = t.machine.Machine.mem
let timing t = t.machine.Machine.timing

let meta_addr t field = Vaddr.v (t.base + t.meta_off + field)
let meta_get t field = Memsim.load64 (mem t) (meta_addr t field)
let meta_set t field v = Memsim.store64 (mem t) (meta_addr t field) v
let committed_bytes t = meta_get t m_commit

(* Flush every cache line of the absolute range [addr, addr+len). *)
let flush_range t ~addr ~len =
  if len > 0 then begin
    let first = addr land lnot (t.line - 1) in
    let last = (addr + len - 1) land lnot (t.line - 1) in
    let a = ref first in
    while !a <= last do
      Timing.flush (timing t) ~addr:!a;
      a := !a + t.line
    done
  end

(* The access observer: record which lines and pages of the watched
   window a store touches. Protocol pages (meta + log) are excluded —
   sync must not track its own log appends — and protocol code runs
   with [tracking] off so replay's in-place copies don't re-dirty the
   data they repair. Pure host-side bookkeeping: no simulated access,
   no charge. *)
let observe t ~write ~addr ~size =
  if write && t.tracking then begin
    let rel = addr - t.base in
    if
      rel >= 0 && rel < t.size
      && not (rel >= t.meta_off && rel < t.log_off + t.log_cap)
    then begin
      let l0 = rel lsr t.line_bits and l1 = (rel + size - 1) lsr t.line_bits in
      for l = l0 to l1 do
        if not (Hashtbl.mem t.lines l) then begin
          Hashtbl.add t.lines l ();
          incr t.c_dirty_lines;
          if t.gran = Line then t.pending <- t.pending + 16 + t.line
        end
      done;
      let p0 = rel lsr t.page_bits and p1 = (rel + size - 1) lsr t.page_bits in
      for p = p0 to p1 do
        if not (Hashtbl.mem t.pages p) then begin
          Hashtbl.add t.pages p ();
          incr t.c_dirty_pages;
          if t.gran = Page then t.pending <- t.pending + 16 + t.page
        end
      done
    end
  end

let log2 n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 0

let make machine region ~meta_off ~log_off ~log_cap ~gran =
  let m = Machine.metrics machine in
  let cfg = Timing.cfg machine.Machine.timing in
  let line_bits = cfg.Nvmpi_cachesim.Timing_config.line_bits in
  let page = Memsim.page_size machine.Machine.mem in
  let t =
    {
      machine;
      region;
      base = (Region.base region :> int);
      size = Region.size region;
      meta_off;
      log_off;
      log_cap;
      gran;
      line = 1 lsl line_bits;
      line_bits;
      page;
      page_bits = log2 page;
      lines = Hashtbl.create 256;
      pages = Hashtbl.create 64;
      pending = 0;
      tracking = false;
      dead = false;
      c_syncs = Metrics.counter m "snap.syncs";
      c_dirty_lines = Metrics.counter m "snap.dirty_lines";
      c_dirty_pages = Metrics.counter m "snap.dirty_pages";
      c_log_records = Metrics.counter m "snap.log_records";
      c_log_bytes = Metrics.counter m "snap.log_bytes";
      c_commits = Metrics.counter m "snap.commits";
      c_wb_flushes = Metrics.counter m "snap.wb_flushes";
      c_truncates = Metrics.counter m "snap.truncates";
      c_replays = Metrics.counter m "snap.replays";
      c_replayed_bytes = Metrics.counter m "snap.replayed_bytes";
    }
  in
  Memsim.add_observer machine.Machine.mem (fun ~write ~addr ~size ->
      observe t ~write ~addr ~size);
  t

let create machine region ?granularity ?(log_cap = 64 * 1024) () =
  let gran =
    match granularity with
    | Some g -> g
    | None -> ( match !default_granularity with Some g -> g | None -> Line)
  in
  let page = Memsim.page_size machine.Machine.mem in
  let log_cap = Bitops.align_up log_cap page in
  let meta = Region.alloc region ~align:page page in
  let log = Region.alloc region ~align:page log_cap in
  let base = Region.base region in
  let meta_off = Vaddr.offset_in meta ~base in
  let log_off = Vaddr.offset_in log ~base in
  let t = make machine region ~meta_off ~log_off ~log_cap ~gran in
  meta_set t m_magic magic;
  meta_set t m_gran (match gran with Line -> 0 | Page -> 1);
  meta_set t m_log_off log_off;
  meta_set t m_log_cap log_cap;
  meta_set t m_commit 0;
  Region.set_root region root_name meta;
  t.tracking <- true;
  t

(* Run [f] with tracking off; protocol code (sync, replay) must never
   observe its own accesses. *)
let untracked t f =
  t.tracking <- false;
  Fun.protect ~finally:(fun () -> t.tracking <- not t.dead) f

let log_addr t pos = Vaddr.v (t.base + t.log_off + pos)
let data_addr t off = Vaddr.v (t.base + off)

(* Observed byte-exact copy between two simulated addresses. This must
   NOT round-trip words through load64/store64: a 63-bit OCaml int
   sign-extends into memory bit 63 on store, so any word whose bit 62
   is set (e.g. a root name or string byte >= 0x40 in the top byte)
   would come back altered. The blits are observed like a word-wise
   copy but move raw bytes. *)
let copy t ~src ~dst ~len =
  Memsim.blit_from_bytes (mem t) ~addr:dst
    (Memsim.blit_to_bytes (mem t) ~addr:src ~len)

(* The dirty units sync will log, as sorted (offset, len) pairs —
   ascending offsets keep the log (and so every downstream report)
   deterministic whatever the hashtable iteration order. *)
let units t =
  let unit_size, tbl, bits =
    match t.gran with
    | Line -> (t.line, t.lines, t.line_bits)
    | Page -> (t.page, t.pages, t.page_bits)
  in
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort compare
  |> List.map (fun k ->
         let off = k lsl bits in
         (off, min unit_size (t.size - off)))

let clear_dirty t =
  Hashtbl.reset t.lines;
  Hashtbl.reset t.pages;
  t.pending <- 0

(* Step 4: durably zero the commit record. Shared by sync and replay. *)
let truncate t =
  meta_set t m_commit 0;
  Timing.flush (timing t) ~addr:((meta_addr t m_commit :> int));
  Timing.fence (timing t);
  incr t.c_truncates

let replay_committed t =
  let committed = meta_get t m_commit in
  if committed > 0 then begin
    if committed > t.log_cap then failwith "Snapshot.replay: corrupt log length";
    let pos = ref 0 in
    while !pos < committed do
      let off = Memsim.load64 (mem t) (log_addr t !pos) in
      let len = Memsim.load64 (mem t) (log_addr t (!pos + 8)) in
      if
        len <= 0 || len > t.page || off < 0
        || off + len > t.size
        || !pos + 16 + len > committed
      then failwith "Snapshot.replay: corrupt log record";
      copy t ~src:(log_addr t (!pos + 16)) ~dst:(data_addr t off) ~len;
      flush_range t ~addr:(t.base + off) ~len;
      pos := !pos + 16 + len
    done;
    Timing.fence (timing t);
    truncate t;
    incr t.c_replays;
    t.c_replayed_bytes := !(t.c_replayed_bytes) + committed
  end

let replay t = untracked t (fun () -> replay_committed t)

let attach machine region =
  match Region.root region root_name with
  | None -> failwith "Snapshot.attach: region holds no snapshot"
  | Some meta ->
      let mem = machine.Machine.mem in
      if Memsim.load64 mem meta <> magic then
        failwith "Snapshot.attach: bad snapshot magic";
      let base = Region.base region in
      let meta_off = Vaddr.offset_in meta ~base in
      let gran =
        if Memsim.load64 mem (Vaddr.add meta m_gran) = 0 then Line else Page
      in
      let log_off = Memsim.load64 mem (Vaddr.add meta m_log_off) in
      let log_cap = Memsim.load64 mem (Vaddr.add meta m_log_cap) in
      let t = make machine region ~meta_off ~log_off ~log_cap ~gran in
      (* Recovery: a committed-but-untruncated log means a sync (or an
         earlier replay) was cut short — reinstall the epoch. *)
      replay t;
      t.tracking <- true;
      t

let retarget t region =
  t.region <- region;
  t.base <- (Region.base region :> int)

let disable t =
  t.dead <- true;
  t.tracking <- false

let sync ?stop_after t =
  incr t.c_syncs;
  let us = units t in
  if us <> [] then
    untracked t (fun () ->
        (* Step 1: append one record per dirty unit, flush, fence. *)
        let pos = ref 0 in
        List.iter
          (fun (off, len) ->
            if !pos + 16 + len > t.log_cap then
              failwith "Snapshot.sync: write-ahead log full";
            Memsim.store64 (mem t) (log_addr t !pos) off;
            Memsim.store64 (mem t) (log_addr t (!pos + 8)) len;
            copy t ~src:(data_addr t off) ~dst:(log_addr t (!pos + 16)) ~len;
            incr t.c_log_records;
            t.c_log_bytes := !(t.c_log_bytes) + 16 + len;
            pos := !pos + 16 + len)
          us;
        flush_range t ~addr:(t.base + t.log_off) ~len:!pos;
        Timing.fence (timing t);
        (* Step 2: the commit record — after this fence the epoch is
           durable (via replay) whatever happens. *)
        meta_set t m_commit !pos;
        Timing.flush (timing t) ~addr:((meta_addr t m_commit :> int));
        Timing.fence (timing t);
        incr t.c_commits;
        clear_dirty t;
        match stop_after with
        | Some `Commit -> ()
        | None ->
            (* Step 3: write the epoch back in place. The fault double
               drops this entirely — including the fence — while step 4
               still durably truncates: the protocol-ordering bug the
               snapshot oracle must catch. *)
            if not !drop_writeback then begin
              List.iter
                (fun (off, len) ->
                  flush_range t ~addr:(t.base + off) ~len;
                  t.c_wb_flushes :=
                    !(t.c_wb_flushes) + ((len + t.line - 1) / t.line))
                us;
              Timing.fence (timing t)
            end;
            (* Step 4: truncate. *)
            truncate t)
