type stats = { mutable hits : int; mutable misses : int }

type t = {
  line_bits : int;
  sets : int;
  ways : int;
  tags : int array; (* sets * ways; -1 = invalid *)
  dirty : bool array;
  age : int array;
  mutable tick : int;
  stats : stats;
}

(* Unboxed result encoding for [access]: negative values are the two
   allocation-free outcomes, any value >= 0 is the line-aligned address
   of a dirty victim that must be written back. *)
let hit = -1
let miss_clean = -2

let create ~size_bytes ~ways ~line_bits =
  let line = 1 lsl line_bits in
  if not (Nvmpi_addr.Bitops.is_pow2 size_bytes && Nvmpi_addr.Bitops.is_pow2 ways)
  then invalid_arg "Cache_level.create: sizes must be powers of two";
  let sets = size_bytes / (ways * line) in
  if sets < 1 || not (Nvmpi_addr.Bitops.is_pow2 sets) then
    invalid_arg "Cache_level.create: inconsistent geometry";
  {
    line_bits;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    dirty = Array.make (sets * ways) false;
    age = Array.make (sets * ways) 0;
    tick = 0;
    stats = { hits = 0; misses = 0 };
  }

let sets t = t.sets
let ways t = t.ways
let line_bytes t = 1 lsl t.line_bits
let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0

let set_of t line = line land (t.sets - 1)

let access t ~addr ~write =
  let line = addr lsr t.line_bits in
  let s = set_of t line in
  let base = s * t.ways in
  t.tick <- t.tick + 1;
  let found = ref (-1) in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line then found := w
  done;
  if !found >= 0 then begin
    let i = base + !found in
    t.age.(i) <- t.tick;
    if write then t.dirty.(i) <- true;
    t.stats.hits <- t.stats.hits + 1;
    hit
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    (* Choose victim: an invalid way if any, else LRU. *)
    let victim = ref 0 in
    let best_age = ref max_int in
    (try
       for w = 0 to t.ways - 1 do
         if t.tags.(base + w) = -1 then begin
           victim := w;
           raise Exit
         end
         else if t.age.(base + w) < !best_age then begin
           best_age := t.age.(base + w);
           victim := w
         end
       done
     with Exit -> ());
    let i = base + !victim in
    let result =
      if t.tags.(i) >= 0 && t.dirty.(i) then t.tags.(i) lsl t.line_bits
      else miss_clean
    in
    t.tags.(i) <- line;
    t.dirty.(i) <- write;
    t.age.(i) <- t.tick;
    result
  end

let flush_line t ~addr =
  let line = addr lsr t.line_bits in
  let s = set_of t line in
  let base = s * t.ways in
  let result = ref false in
  for w = 0 to t.ways - 1 do
    let i = base + w in
    if t.tags.(i) = line then begin
      result := t.dirty.(i);
      t.tags.(i) <- -1;
      t.dirty.(i) <- false
    end
  done;
  !result

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false
