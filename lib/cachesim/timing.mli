(** The machine timing model: a three-level cache hierarchy in front of
    DRAM and emulated NVM, driven by {!Memsim} access events.

    Attach an instance to a {!Memsim.t} with {!attach}; from then on every
    simulated load/store is charged to the shared {!Clock.t}:

    - L1 hit: [l1_hit] cycles;
    - L2/L3 hit: the corresponding hit latency;
    - miss everywhere: the DRAM or NVM read latency, chosen by the
      address classifier (the NV space is NVM, everything else DRAM);
    - dirty evictions from L3 are charged the destination write latency.

    The model also exposes explicit charges used by the pointer
    representations and the transactional store: {!alu} for register
    arithmetic, {!flush} for cache-line write-back ([clflush]) and
    {!fence} for persist barriers ([wbarrier], 115 ns in the paper's PMEP
    configuration). *)

type t

type mem_stats = {
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable nvm_reads : int;
  mutable nvm_writes : int;
  mutable flushes : int;
  mutable fences : int;
  mutable alu_cycles : int;
}

val create :
  ?cfg:Timing_config.t ->
  ?metrics:Nvmpi_obs.Metrics.t ->
  clock:Clock.t ->
  is_nvm:(int -> bool) ->
  unit ->
  t
(** [create ~clock ~is_nvm ()] builds a timing model charging to [clock];
    [is_nvm addr] decides whether a missed line is served by NVM or
    DRAM. Every charge is mirrored into [metrics] (a private registry if
    none is given): per-level [cache.l*.hits]/[cache.l*.misses],
    [mem.dram_reads]/[mem.dram_writes]/[mem.nvm_reads]/[mem.nvm_writes]
    line transfers, and [timing.alu_cycles]/[timing.flushes]/
    [timing.fences]. Unlike {!mem_stats} these counters are cumulative —
    {!reset_stats} does not clear them; attribute phases by snapshot and
    diff ({!Nvmpi_obs.Metrics.diff}). *)

val attach : t -> Nvmpi_memsim.Memsim.t -> unit
(** Registers the model as an access observer of the given memory. *)

val cfg : t -> Timing_config.t
val clock : t -> Clock.t

val access : t -> addr:int -> size:int -> write:bool -> unit
(** Charge one access explicitly (the observer calls this). *)

val access_line : t -> addr:int -> write:bool -> unit
(** Charge a single-line access: exactly what {!access} does for any
    naturally aligned power-of-two access of at most a cache line (such
    an access never straddles a line). The staged engine's fused deref
    path calls this directly after a [Memsim.*_fused] data access,
    bypassing the observer closure; using it for an access that could
    span lines would undercharge. *)

val alu : t -> int -> unit
(** [alu t n] charges [n] cycles of register-only computation. *)

val flush : t -> addr:int -> unit
(** Cache-line write-back of the line containing [addr] (clflush): the
    line is invalidated in all levels and, if dirty, a memory write is
    charged at the destination latency. *)

val fence : t -> unit
(** Persist barrier ([wbarrier]). *)

(** {1 Persistence observers} *)

type persist_event =
  | Flushed of int  (** a {!flush} retired for the line holding this address *)
  | Fenced  (** a {!fence} retired *)

val set_persist_hook : t -> (persist_event -> unit) option -> unit
(** Installs (or, with [None], removes) a callback invoked after each
    {!flush}/{!fence} is charged — the attachment point the
    fault-injection subsystem uses to derive durability state from the
    persist-instruction stream. The hook only observes: with no hook
    installed (the default) behaviour and cycle accounting are
    bit-for-bit unchanged, and the hook itself must not issue charges. *)

val l1 : t -> Cache_level.t
val l2 : t -> Cache_level.t
val l3 : t -> Cache_level.t
val mem_stats : t -> mem_stats

val reset_stats : t -> unit
(** Clears hit/miss and memory counters (does not touch the clock or the
    cache contents). *)

val invalidate_caches : t -> unit
(** Empties all cache levels (simulates a cold start). *)

val pp_stats : Format.formatter -> t -> unit
