(** One level of a set-associative, write-back, write-allocate cache with
    LRU replacement. Used as a building block by {!module:Timing}. *)

type t

type result =
  | Hit
  | Miss of { evicted_dirty : int option }
      (** [evicted_dirty] is the line-aligned address of a dirty line that
          had to be written back to make room, if any. *)

val create : size_bytes:int -> ways:int -> line_bits:int -> t
(** [create ~size_bytes ~ways ~line_bits] builds a cache of
    [size_bytes / (ways * 2^line_bits)] sets. All parameters must be
    powers of two and consistent. *)

val access : t -> addr:int -> write:bool -> result
(** Looks up the line containing [addr]; on a miss the line is filled
    (allocated) and the LRU victim evicted. [write] marks the line
    dirty. *)

val flush_line : t -> addr:int -> bool
(** [flush_line t ~addr] invalidates the line containing [addr] if
    present, returning [true] iff it was present and dirty (i.e. a
    write-back to memory is needed). *)

val invalidate_all : t -> unit

val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

type stats = { mutable hits : int; mutable misses : int }

val stats : t -> stats
val reset_stats : t -> unit
