(** One level of a set-associative, write-back, write-allocate cache with
    LRU replacement. Used as a building block by {!module:Timing}. *)

type t

(** {1 Access result encoding}

    [access] returns an unboxed [int] so the per-access path allocates
    nothing: {!hit} for a hit, {!miss_clean} for a miss whose victim
    needed no write-back, and any value [>= 0] — the line-aligned
    address of the evicted dirty line — for a miss that displaced dirty
    data. Both sentinels are negative; simulated addresses are never. *)

val hit : int
(** [-1]: the line was resident. *)

val miss_clean : int
(** [-2]: a miss that evicted nothing dirty. *)

val create : size_bytes:int -> ways:int -> line_bits:int -> t
(** [create ~size_bytes ~ways ~line_bits] builds a cache of
    [size_bytes / (ways * 2^line_bits)] sets. All parameters must be
    powers of two and consistent. *)

val access : t -> addr:int -> write:bool -> int
(** Looks up the line containing [addr]; on a miss the line is filled
    (allocated) and the LRU victim evicted. [write] marks the line
    dirty. Returns {!hit}, {!miss_clean}, or the evicted dirty line's
    address (see the encoding above). *)

val flush_line : t -> addr:int -> bool
(** [flush_line t ~addr] invalidates the line containing [addr] if
    present, returning [true] iff it was present and dirty (i.e. a
    write-back to memory is needed). *)

val invalidate_all : t -> unit

val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

type stats = { mutable hits : int; mutable misses : int }

val stats : t -> stats
val reset_stats : t -> unit
