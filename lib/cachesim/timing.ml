module Memsim = Nvmpi_memsim.Memsim
module Metrics = Nvmpi_obs.Metrics

type mem_stats = {
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable nvm_reads : int;
  mutable nvm_writes : int;
  mutable flushes : int;
  mutable fences : int;
  mutable alu_cycles : int;
}

(* Counter cells resolved once at creation; the observer path runs on
   every simulated access. *)
type counters = {
  c_dram_r : int ref;
  c_dram_w : int ref;
  c_nvm_r : int ref;
  c_nvm_w : int ref;
  c_flushes : int ref;
  c_fences : int ref;
  c_alu : int ref;
  c_l1_h : int ref;
  c_l1_m : int ref;
  c_l2_h : int ref;
  c_l2_m : int ref;
  c_l3_h : int ref;
  c_l3_m : int ref;
}

type persist_event = Flushed of int | Fenced

type t = {
  cfg : Timing_config.t;
  line : int; (* 1 lsl cfg.line_bits, precomputed for the access path *)
  line_mask : int; (* lnot (line - 1): line-aligns an address *)
  clock : Clock.t;
  is_nvm : int -> bool;
  l1 : Cache_level.t;
  l2 : Cache_level.t;
  l3 : Cache_level.t;
  stats : mem_stats;
  c : counters;
  mutable persist_hook : (persist_event -> unit) option;
}

let create ?(cfg = Timing_config.default) ?metrics ~clock ~is_nvm () =
  let lvl size ways =
    Cache_level.create ~size_bytes:size ~ways ~line_bits:cfg.line_bits
  in
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let c name = Metrics.counter metrics name in
  {
    cfg;
    line = 1 lsl cfg.line_bits;
    line_mask = lnot ((1 lsl cfg.line_bits) - 1);
    clock;
    is_nvm;
    l1 = lvl cfg.l1_size cfg.l1_ways;
    l2 = lvl cfg.l2_size cfg.l2_ways;
    l3 = lvl cfg.l3_size cfg.l3_ways;
    stats =
      {
        dram_reads = 0;
        dram_writes = 0;
        nvm_reads = 0;
        nvm_writes = 0;
        flushes = 0;
        fences = 0;
        alu_cycles = 0;
      };
    c =
      {
        c_dram_r = c "mem.dram_reads";
        c_dram_w = c "mem.dram_writes";
        c_nvm_r = c "mem.nvm_reads";
        c_nvm_w = c "mem.nvm_writes";
        c_flushes = c "timing.flushes";
        c_fences = c "timing.fences";
        c_alu = c "timing.alu_cycles";
        c_l1_h = c "cache.l1.hits";
        c_l1_m = c "cache.l1.misses";
        c_l2_h = c "cache.l2.hits";
        c_l2_m = c "cache.l2.misses";
        c_l3_h = c "cache.l3.hits";
        c_l3_m = c "cache.l3.misses";
      };
    persist_hook = None;
  }

let set_persist_hook t hook = t.persist_hook <- hook

let cfg t = t.cfg
let clock t = t.clock
let l1 t = t.l1
let l2 t = t.l2
let l3 t = t.l3
let mem_stats t = t.stats

let charge_mem_read t addr =
  if t.is_nvm addr then begin
    t.stats.nvm_reads <- t.stats.nvm_reads + 1;
    incr t.c.c_nvm_r;
    Clock.tick t.clock t.cfg.nvm_read
  end
  else begin
    t.stats.dram_reads <- t.stats.dram_reads + 1;
    incr t.c.c_dram_r;
    Clock.tick t.clock t.cfg.dram_read
  end

let charge_mem_write t addr =
  if t.is_nvm addr then begin
    t.stats.nvm_writes <- t.stats.nvm_writes + 1;
    incr t.c.c_nvm_w;
    Clock.tick t.clock t.cfg.nvm_write
  end
  else begin
    t.stats.dram_writes <- t.stats.dram_writes + 1;
    incr t.c.c_dram_w;
    Clock.tick t.clock t.cfg.dram_write
  end

(* A dirty line evicted from L3 is written back; lower-level dirty
   evictions land in the next level (modelled by re-accessing it there).
   One specialized function per level — no level-tag dispatch on the
   per-line path — consuming Cache_level's unboxed result encoding. *)
let access_l3 t ~addr ~write =
  let r = Cache_level.access t.l3 ~addr ~write in
  if r = Cache_level.hit then begin
    incr t.c.c_l3_h;
    Clock.tick t.clock t.cfg.l3_hit
  end
  else begin
    incr t.c.c_l3_m;
    Clock.tick t.clock t.cfg.l3_hit;
    if r >= 0 then charge_mem_write t r;
    charge_mem_read t addr
  end

let access_l2 t ~addr ~write =
  let r = Cache_level.access t.l2 ~addr ~write in
  if r = Cache_level.hit then begin
    incr t.c.c_l2_h;
    Clock.tick t.clock t.cfg.l2_hit
  end
  else begin
    incr t.c.c_l2_m;
    Clock.tick t.clock t.cfg.l2_hit;
    if r >= 0 then access_l3 t ~addr:r ~write:true;
    access_l3 t ~addr ~write:false
  end

let access_l1 t ~addr ~write =
  let r = Cache_level.access t.l1 ~addr ~write in
  if r = Cache_level.hit then begin
    incr t.c.c_l1_h;
    Clock.tick t.clock t.cfg.l1_hit
  end
  else begin
    incr t.c.c_l1_m;
    Clock.tick t.clock t.cfg.l1_hit;
    if r >= 0 then access_l2 t ~addr:r ~write:true;
    access_l2 t ~addr ~write:false
  end

(* Fused single-line entry (staged engine): a naturally aligned
   power-of-two access of at most a line never crosses a line boundary,
   so the general [access] below always takes its [first = last] branch
   and charges [access_l1 ~addr:(addr land line_mask)]. This entry is
   that branch, callable directly from a fused Memsim access with no
   size loop and no observer closure in between. *)
let[@inline] access_line t ~addr ~write =
  access_l1 t ~addr:(addr land t.line_mask) ~write

let access t ~addr ~size ~write =
  let first = addr land t.line_mask in
  let last = (addr + size - 1) land t.line_mask in
  if first = last then access_l1 t ~addr:first ~write
  else begin
    let a = ref first in
    while !a <= last do
      access_l1 t ~addr:!a ~write;
      a := !a + t.line
    done
  end

let attach t mem =
  Memsim.add_observer mem (fun ~write ~addr ~size -> access t ~addr ~size ~write)

let alu t n =
  t.stats.alu_cycles <- t.stats.alu_cycles + n;
  t.c.c_alu := !(t.c.c_alu) + n;
  Clock.tick t.clock n

let flush t ~addr =
  t.stats.flushes <- t.stats.flushes + 1;
  incr t.c.c_flushes;
  Clock.tick t.clock t.cfg.clflush;
  let d1 = Cache_level.flush_line t.l1 ~addr in
  let d2 = Cache_level.flush_line t.l2 ~addr in
  let d3 = Cache_level.flush_line t.l3 ~addr in
  if d1 || d2 || d3 then charge_mem_write t addr;
  match t.persist_hook with Some f -> f (Flushed addr) | None -> ()

let fence t =
  t.stats.fences <- t.stats.fences + 1;
  incr t.c.c_fences;
  Clock.tick t.clock t.cfg.wbarrier;
  match t.persist_hook with Some f -> f Fenced | None -> ()

let reset_stats t =
  Cache_level.reset_stats t.l1;
  Cache_level.reset_stats t.l2;
  Cache_level.reset_stats t.l3;
  let s = t.stats in
  s.dram_reads <- 0;
  s.dram_writes <- 0;
  s.nvm_reads <- 0;
  s.nvm_writes <- 0;
  s.flushes <- 0;
  s.fences <- 0;
  s.alu_cycles <- 0

let invalidate_caches t =
  Cache_level.invalidate_all t.l1;
  Cache_level.invalidate_all t.l2;
  Cache_level.invalidate_all t.l3

let pp_stats ppf t =
  let s = t.stats in
  let lvl name c =
    let st = Cache_level.stats c in
    Format.fprintf ppf "%s: %d hits / %d misses@ " name st.Cache_level.hits
      st.Cache_level.misses
  in
  Format.fprintf ppf "@[<v>";
  lvl "L1" t.l1;
  lvl "L2" t.l2;
  lvl "L3" t.l3;
  Format.fprintf ppf
    "DRAM r/w: %d/%d; NVM r/w: %d/%d; flushes: %d; fences: %d; alu: %d@]"
    s.dram_reads s.dram_writes s.nvm_reads s.nvm_writes s.flushes s.fences
    s.alu_cycles
