type t = {
  line_bits : int;
  l1_size : int;
  l1_ways : int;
  l1_hit : int;
  l2_size : int;
  l2_ways : int;
  l2_hit : int;
  l3_size : int;
  l3_ways : int;
  l3_hit : int;
  dram_read : int;
  dram_write : int;
  nvm_read : int;
  nvm_write : int;
  wbarrier : int;
  clflush : int;
}

let default =
  {
    line_bits = 6;
    l1_size = 32 * 1024;
    l1_ways = 8;
    l1_hit = 4;
    l2_size = 2 * 1024 * 1024;
    l2_ways = 16;
    l2_hit = 14;
    l3_size = 32 * 1024 * 1024;
    l3_ways = 16;
    l3_hit = 42;
    dram_read = 180;
    dram_write = 180;
    nvm_read = 300;
    nvm_write = 500;
    wbarrier = 300;
    clflush = 60;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>L1 %dKiB/%d-way %dcyc; L2 %dKiB/%d-way %dcyc; L3 %dMiB/%d-way \
     %dcyc;@ DRAM r%d/w%d; NVM r%d/w%d; wbarrier %d; clflush %d@]"
    (t.l1_size / 1024) t.l1_ways t.l1_hit (t.l2_size / 1024) t.l2_ways t.l2_hit
    (t.l3_size / 1024 / 1024)
    t.l3_ways t.l3_hit t.dram_read t.dram_write t.nvm_read t.nvm_write
    t.wbarrier t.clflush
