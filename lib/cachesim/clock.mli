(** A cycle counter for the simulated machine.

    All timing-model components charge cycles to a shared clock; the
    experiment harness measures workloads as clock deltas. *)

type t

val create : unit -> t
val tick : t -> int -> unit
(** [tick t n] advances the clock by [n] cycles ([n >= 0]). *)

val cycles : t -> int
val reset : t -> unit

val delta : t -> (unit -> 'a) -> 'a * int
(** [delta t f] runs [f] and returns its result together with the number
    of cycles it consumed. *)

val to_seconds : ?ghz:float -> t -> float
(** Wall-clock seconds at the given core frequency (default 2.6 GHz, the
    PMEP clock used in the paper). *)

val seconds_of_cycles : ?ghz:float -> int -> float
