(** Timing-model parameters: the simulated analogue of Intel PMEP.

    PMEP partitions DRAM into a volatile range and an emulated-NVM range
    with configurable latencies and a 115 ns write barrier; this record
    captures the same knobs as core-cycle costs (2.6 GHz core as in the
    paper, so 1 ns is 2.6 cycles). *)

type t = {
  line_bits : int;  (** cache line size, log2 bytes (6 = 64 B) *)
  l1_size : int;
  l1_ways : int;
  l1_hit : int;  (** L1 hit latency, cycles *)
  l2_size : int;
  l2_ways : int;
  l2_hit : int;
  l3_size : int;
  l3_ways : int;
  l3_hit : int;
  dram_read : int;  (** DRAM miss latency, cycles *)
  dram_write : int;
  nvm_read : int;  (** emulated-NVM read latency, cycles *)
  nvm_write : int;
  wbarrier : int;  (** persist fence; paper sets 115 ns ~= 300 cycles *)
  clflush : int;  (** optimized cache-line flush issue cost *)
}

val default : t
(** PMEP-like defaults: 32 KiB/8-way L1 (4 cyc), 2 MiB/16-way L2
    (14 cyc), 32 MiB/16-way L3 (42 cyc), DRAM 180 cyc, NVM read 300 cyc,
    NVM write 500 cyc, wbarrier 300 cyc, clflush 60 cyc. *)

val pp : Format.formatter -> t -> unit
