type t = { mutable cycles : int }

let create () = { cycles = 0 }

let tick t n =
  if n < 0 then invalid_arg "Clock.tick";
  t.cycles <- t.cycles + n

let cycles t = t.cycles
let reset t = t.cycles <- 0

let delta t f =
  let before = t.cycles in
  let r = f () in
  (r, t.cycles - before)

let seconds_of_cycles ?(ghz = 2.6) c = float_of_int c /. (ghz *. 1e9)
let to_seconds ?ghz t = seconds_of_cycles ?ghz t.cycles
